// Extension experiment: row retirement as a finer-grained alternative to
// Fig 6's PC-granularity trade-off.
//
// For each voltage below the guardband, retire exactly the DRAM rows
// containing stuck cells and report the surviving capacity -- per device
// and for the weak PCs -- and compare against (a) PC-granularity
// disabling (Fig 6's zero-tolerance series) and (b) a uniform-placement
// ablation, quantifying how much the paper's observed clustering reduces
// the retirement bill.

#include <cstdio>

#include "bench_common.hpp"
#include "core/reliability_tester.hpp"
#include "core/tradeoff.hpp"
#include "mitigate/row_retirement.hpp"

using namespace hbmvolt;

int main() {
  bench::print_banner("Extension: row retirement vs PC disabling");

  board::Vcu128Board board(bench::default_board_config());

  // Fig 6 baseline: PC-granularity zero-tolerance capacity.
  auto rel_config = bench::full_sweep_config(/*batch=*/1);
  core::ReliabilityTester tester(board, rel_config);
  const auto map = std::move(tester.run()).value();
  core::TradeoffAnalyzer analyzer(map, Millivolts{1200});

  // Uniform-placement ablation injector.
  faults::WeakCellConfig uniform;
  uniform.cluster_count = 0;
  faults::FaultModelConfig fault_config;
  fault_config.seed = mix_seed(board.config().seed, 0xFA017);
  faults::FaultInjector uniform_injector(
      faults::FaultModel(board.geometry(), fault_config), uniform);

  std::printf("%-8s  %-22s  %-24s  %-22s\n", "voltage",
              "PC-disable capacity", "row-retire capacity",
              "row-retire (uniform)");
  for (const int mv : {970, 950, 930, 910, 890, 870}) {
    const Millivolts v{mv};
    const unsigned usable = map.usable_pcs(v, 0.0);
    const double pc_capacity =
        static_cast<double>(usable) / board.geometry().total_pcs();
    const auto retired = mitigate::RetirementMap::build(board.injector(), v);
    const auto retired_uniform =
        mitigate::RetirementMap::build(uniform_injector, v);
    std::printf("%.2fV    %5.1f%% (%2u/32 PCs)      %6.2f%% (%llu rows)"
                "         %6.2f%% (%llu rows)\n",
                mv / 1000.0, pc_capacity * 100.0, usable,
                retired.capacity_fraction() * 100.0,
                static_cast<unsigned long long>(retired.rows_retired_total()),
                retired_uniform.capacity_fraction() * 100.0,
                static_cast<unsigned long long>(
                    retired_uniform.rows_retired_total()));
  }

  std::printf(
      "\nReading: at 0.93V, PC-granularity disabling (Fig 6) is already\n"
      "down to zero fault-free PCs, while row retirement keeps most of\n"
      "the device: the paper's clustering observation means few rows\n"
      "absorb most stuck cells.  The uniform ablation needs several times\n"
      "more retired rows for the same guarantee.  Deep in the bulk\n"
      "collapse, every row is dirty and retirement degenerates -- there\n"
      "the Fig 6 trade-off is the right tool.\n");
  return 0;
}
