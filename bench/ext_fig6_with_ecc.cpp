// Extension experiment: Fig 6 with SECDED under it.
//
// The paper's zero-tolerance Fig 6 series counts PCs with *no raw bit
// flips*.  With SECDED(72,64) beneath the application, the operative
// question becomes "no uncorrectable words" instead -- this bench
// regenerates the zero-tolerance staircase under both definitions and
// shows how the code shifts every step tens of millivolts deeper (at an
// 11% capacity cost for check storage).

#include <cstdio>

#include "bench_common.hpp"
#include "ecc/ecc_channel.hpp"

using namespace hbmvolt;

int main() {
  bench::print_banner("Extension: Fig 6 zero-tolerance series, raw vs ECC");

  board::Vcu128Board board(bench::default_board_config());
  const unsigned per_stack = board.geometry().pcs_per_stack();
  const unsigned total = board.geometry().total_pcs();

  std::printf("%-8s  %-22s %-22s %s\n", "voltage", "raw fault-free PCs",
              "ECC clean PCs", "savings");
  for (int mv = 980; mv >= 870; mv -= 10) {
    (void)board.set_hbm_voltage(Millivolts{mv});
    unsigned raw_clean = 0;
    unsigned ecc_clean = 0;
    for (unsigned pc = 0; pc < total; ++pc) {
      auto& stack = board.stack(pc / per_stack);
      const unsigned local = pc % per_stack;

      // Raw: any stuck cell disqualifies (white-box count is exactly what
      // the two-pattern test measures; see property_test).
      if (board.injector().overlay(pc).total_count() == 0) ++raw_clean;

      // ECC: run the protected channel over both patterns.
      ecc::EccChannel channel(stack, local);
      bool lost_data = false;
      for (const auto& pattern : {hbm::kBeatAllOnes, hbm::kBeatAllZeros}) {
        for (std::uint64_t beat = 0;
             beat < channel.data_beats() && !lost_data; ++beat) {
          (void)channel.write_beat(beat, pattern);
          auto outcome = channel.read_beat(beat);
          if (!outcome.is_ok() || outcome.value().uncorrectable > 0 ||
              outcome.value().data != pattern) {
            lost_data = true;
          }
        }
        if (lost_data) break;
      }
      if (!lost_data) ++ecc_clean;
    }
    const double savings = (1.2 / (mv / 1000.0)) * (1.2 / (mv / 1000.0));
    std::printf("%.2fV     %-22u %-22u %.2fx\n", mv / 1000.0, raw_clean,
                ecc_clean, savings);
  }

  std::printf(
      "\nReading: SECDED turns the sharp 0.97-0.94V collapse of the raw\n"
      "zero-tolerance series into a staircase reaching ~0.89V: roughly\n"
      "+60mV of fault-free undervolting (~0.2x extra savings) for the\n"
      "12.5%% storage overhead of the code.  Below ~0.88V multi-bit\n"
      "codeword collisions end the free ride and the paper's capacity\n"
      "trade-offs take over.\n");
  (void)board.set_hbm_voltage(Millivolts{1200});
  return 0;
}
