// Extension experiment: cross-validate the AXI-level bandwidth
// abstraction against command-level DRAM timing.
//
// The traffic generators model a flat sustained efficiency (0.673 of the
// 14.4 GB/s per-port peak -> the paper's 310 GB/s aggregate).  This bench
// replays the paper's workloads through the command-level scheduler
// (banks, tRCD/tRP/tRAS/tCCD, turnaround, refresh) and shows that DRAM
// timing itself sustains ~90+% of peak for Algorithm 1's sequential
// passes -- i.e. the 310-vs-429 GB/s gap comes from the AXI/port domain
// (clocking, packetization), not the DRAM, which is also what the paper's
// footnote 1 implies ("with more engineering effort, the peak performance
// is also achievable").

#include <cstdio>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "dram/scheduler.hpp"

using namespace hbmvolt;

namespace {

dram::AccessStats run_sequential(const hbm::HbmGeometry& geometry,
                                 bool writes_then_reads) {
  dram::PcScheduler scheduler(geometry, dram::DramTimings{});
  const std::uint64_t beats = geometry.beats_per_pc();
  if (writes_then_reads) {
    for (std::uint64_t b = 0; b < beats; ++b) scheduler.access(true, b);
    for (std::uint64_t b = 0; b < beats; ++b) scheduler.access(false, b);
  } else {
    for (std::uint64_t b = 0; b < beats * 2; ++b) {
      scheduler.access(false, b % beats);
    }
  }
  return scheduler.finish();
}

dram::AccessStats run_random(const hbm::HbmGeometry& geometry) {
  dram::PcScheduler scheduler(geometry, dram::DramTimings{});
  Xoshiro256 rng(7);
  const std::uint64_t beats = geometry.beats_per_pc();
  for (std::uint64_t i = 0; i < beats * 2; ++i) {
    scheduler.access(rng.bernoulli(0.5), rng.bounded(beats));
  }
  return scheduler.finish();
}

void report(const char* name, const dram::AccessStats& stats) {
  const dram::DramTimings t;
  std::printf("  %-28s %6.2f GB/s   %5.1f%% of peak   hits %5.1f%%   "
              "turnarounds %llu   refreshes %llu\n",
              name, stats.bandwidth_gbs(t),
              100.0 * stats.bandwidth_gbs(t) / t.peak_bandwidth().value,
              stats.requests
                  ? 100.0 * static_cast<double>(stats.row_hits) /
                        static_cast<double>(stats.requests)
                  : 0.0,
              static_cast<unsigned long long>(stats.turnarounds),
              static_cast<unsigned long long>(stats.refreshes));
}

}  // namespace

int main() {
  bench::print_banner(
      "Extension: command-level DRAM timing vs the flat port model");

  const auto geometry = hbm::HbmGeometry::simulation_default();
  const dram::DramTimings t;
  std::printf("One pseudo-channel: 64b @ %.0f MHz DDR (1800 MT/s), BL4 -> "
              "peak %.1f GB/s\n\n",
              t.clock_hz / 1e6, t.peak_bandwidth().value);

  std::printf("Command-level sustained bandwidth per workload:\n");
  report("Algorithm 1 (write pass + read pass)",
         run_sequential(geometry, true));
  report("sequential reads (streaming)", run_sequential(geometry, false));
  report("random mixed read/write", run_random(geometry));

  std::printf(
      "\nFlat AXI-port model used by the traffic generators: %.2f GB/s\n"
      "(= 14.4 GB/s x 0.673, calibrated to the paper's 310 GB/s aggregate)\n",
      axi::TrafficGenerator::kDefaultClockHz * 32 *
          axi::TrafficGenerator::kDefaultEfficiency / 1e9);

  std::printf(
      "\nReading: for the paper's sequential pattern tests the DRAM side\n"
      "sustains ~90+%% of peak -- comfortably above the 67%% the AXI port\n"
      "domain delivers, so the flat efficiency factor is a safe\n"
      "abstraction for every experiment in this repo, and the 310 vs 429\n"
      "GB/s gap lives in the FPGA-side interconnect (as the paper's own\n"
      "footnote suggests).  Random traffic, by contrast, would be\n"
      "DRAM-limited: row thrashing and turnarounds dominate.\n");
  return 0;
}
