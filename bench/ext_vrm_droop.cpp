// Extension experiment: load-line (VRM quality) vs effective guardband.
//
// The characterization sweeps regulator *setpoints*; the cells see the
// setpoint minus I*R_loadline.  With the VCU128's stiff rail (~0.2 mOhm)
// the difference is a few millivolts, but a soft load line erodes the
// usable guardband at full bandwidth -- and worse, makes the fault
// behavior load-dependent: a setpoint that is fault-free at idle can
// flip bits under full load.  This bench quantifies the erosion and the
// compensated setpoint a deployment should program instead.

#include <cstdio>

#include "bench_common.hpp"
#include "power/droop.hpp"

using namespace hbmvolt;

int main() {
  bench::print_banner("Extension: VRM load-line quality vs guardband");

  const faults::FaultModel model(hbm::HbmGeometry::simulation_default(),
                                 faults::FaultModelConfig{});
  const power::PowerModel power_model(
      power::PowerModelConfig{},
      [&model](Millivolts v) { return model.alpha_multiplier(v); });

  // The device's true fault-free floor (highest onset across PCs).
  Millivolts onset{0};
  for (unsigned pc = 0; pc < model.geometry().total_pcs(); ++pc) {
    onset = std::max(onset, model.onset_voltage(pc));
  }
  std::printf("Cell-level fault-free floor: > %.3fV (weakest PC onset)\n\n",
              onset.volts());

  std::printf("%-12s %-22s %-22s %-24s\n", "load line",
              "eff. V @0.98V idle", "eff. V @0.98V full",
              "safe setpoint @ full load");
  for (const double milliohm : {0.2, 1.0, 2.0, 5.0, 10.0}) {
    const Ohms load_line{milliohm / 1000.0};
    const Millivolts idle = power::effective_rail_voltage(
        Millivolts{980}, power_model, 0.0, load_line);
    const Millivolts full = power::effective_rail_voltage(
        Millivolts{980}, power_model, 1.0, load_line);
    // Lowest setpoint whose effective full-load voltage stays above the
    // weakest onset (one grid step of margin).
    const Millivolts safe = power::compensated_setpoint(
        Millivolts{onset.value + 10}, power_model, 1.0, load_line);
    std::printf("%5.1f mOhm   %.3fV                %.3fV                "
                "%.3fV (+%d mV)\n",
                milliohm, idle.volts(), full.volts(), safe.volts(),
                safe.value - (onset.value + 10));
  }

  std::printf(
      "\nReading: with the lab-grade ~0.2 mOhm rail the paper used, droop\n"
      "is a few millivolts and setpoint == cell voltage for all practical\n"
      "purposes.  A soft 5-10 mOhm embedded rail sags 80-120 mV at full\n"
      "load -- more than a third of the entire guardband -- so a setpoint\n"
      "that is fault-free at idle flips bits under load.  Deployments must\n"
      "either compensate the setpoint (last column) or re-characterize at\n"
      "their own worst-case load; a fault map taken at idle is optimistic.\n");
  return 0;
}
