// Extension experiment: SECDED ECC as an undervolting-fault mitigation
// (the direction the paper's related work points to: built-in ECC studies
// [57], DRAM undervolting mitigation [12]).
//
// For each voltage, compares the raw bit-flip rate of a weak and a strong
// PC against the post-ECC uncorrectable-word rate of the same PCs, and
// reports how many extra millivolts of undervolting SECDED buys before
// the first data loss ("effective V_min" per PC).  Also shows the dark
// side: clustered faults collide inside 72-bit codewords sooner than
// uniformly spread ones would.

#include <cstdio>

#include "bench_common.hpp"
#include "ecc/ecc_channel.hpp"
#include "faults/fault_overlay.hpp"

using namespace hbmvolt;

namespace {

struct Row {
  double raw_rate;
  double uncorrectable_rate;
  std::uint64_t corrected;
};

Row measure(board::Vcu128Board& board, unsigned pc_global, Millivolts v) {
  const unsigned per_stack = board.geometry().pcs_per_stack();
  auto& stack = board.stack(pc_global / per_stack);
  const unsigned local = pc_global % per_stack;
  (void)board.set_hbm_voltage(v);

  // Raw rate: Algorithm-1 style pattern test over the whole PC.
  std::uint64_t raw_flips = 0;
  std::uint64_t raw_bits = 0;
  for (const auto& pattern : {hbm::kBeatAllOnes, hbm::kBeatAllZeros}) {
    for (std::uint64_t beat = 0; beat < board.geometry().beats_per_pc();
         ++beat) {
      (void)stack.write_beat(local, beat, pattern);
      auto data = stack.read_beat(local, beat);
      if (!data.is_ok()) continue;
      std::uint64_t f10 = 0;
      std::uint64_t f01 = 0;
      axi::count_flips(data.value(), pattern, f10, f01);
      raw_flips += f10 + f01;
      raw_bits += 256;
    }
  }

  // ECC path over the same PC.
  ecc::EccChannel channel(stack, local);
  for (const auto& pattern : {hbm::kBeatAllOnes, hbm::kBeatAllZeros}) {
    for (std::uint64_t beat = 0; beat < channel.data_beats(); ++beat) {
      (void)channel.write_beat(beat, pattern);
      (void)channel.read_beat(beat);
    }
  }

  Row row;
  row.raw_rate = raw_bits ? static_cast<double>(raw_flips) / raw_bits : 0.0;
  row.uncorrectable_rate = channel.stats().uncorrectable_rate();
  row.corrected =
      channel.stats().corrected_data + channel.stats().corrected_check;
  return row;
}

void frontier(board::Vcu128Board& board, unsigned pc, const char* label) {
  std::printf("\nPC%u (%s):\n", pc, label);
  std::printf("  %-8s %-14s %-16s %-12s\n", "voltage", "raw flip rate",
              "ECC-uncorrectable", "corrected");
  int raw_vmin = 0;
  int ecc_vmin = 0;
  for (int mv = 980; mv >= 850; mv -= 10) {
    const Row row = measure(board, pc, Millivolts{mv});
    std::printf("  %.2fV   %-14.3e %-16.3e %llu\n", mv / 1000.0,
                row.raw_rate, row.uncorrectable_rate,
                static_cast<unsigned long long>(row.corrected));
    if (row.raw_rate == 0.0) raw_vmin = mv;
    if (row.uncorrectable_rate == 0.0) ecc_vmin = mv;
  }
  std::printf("  lowest clean voltage: raw %.2fV, with SECDED %.2fV "
              "(+%d mV of extra undervolt)\n",
              raw_vmin / 1000.0, ecc_vmin / 1000.0, raw_vmin - ecc_vmin);
}

}  // namespace

int main() {
  bench::print_banner(
      "Extension: SECDED(72,64) ECC under voltage underscaling");

  board::Vcu128Board board(bench::default_board_config());
  frontier(board, 18, "weakest PC");
  frontier(board, 0, "strong PC");

  std::printf(
      "\nReading: single stuck cells dominate the first ~60-80 mV below a\n"
      "PC's onset, so SECDED pushes the zero-error operating point tens of\n"
      "millivolts deeper (extra ~0.1x power savings for free).  Once the\n"
      "per-codeword fault count reaches two -- which clustering\n"
      "accelerates -- uncorrectable words appear and capacity-based\n"
      "trade-offs (Fig 6, row retirement) take over.\n");
  (void)board.set_hbm_voltage(Millivolts{1200});
  return 0;
}
