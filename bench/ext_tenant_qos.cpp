// Extension experiment: the per-tenant QoS frontier across the paper's
// undervolting range, under whole-PC kills.
//
// The Fig-6 trade-off picks one voltage for one device.  With the
// multi-tenant request plane (src/serve/) the question becomes
// per-tenant: at each voltage rung, how much *goodput* does each QoS
// class keep, at what p99 model latency, and how much demand is shed --
// while the chaos injector kills whole PCs and the stripe scheme
// rebuilds around them?  Guaranteed tenants should hold their latency
// SLO through the storm (hedging blown deadlines to the journal);
// best-effort tenants absorb the brownout (served stale, then shed).
//
// Reported per (voltage, QoS class): goodput (beats actually served,
// incl. stale), the shed fraction of total demand, stale and hedged
// beat counts, the class-worst p99 in model ns, and whether every
// tenant in the class met its SLO.  `corrupt` must read zero on every
// row -- the headline invariant survives the plane.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "chaos/chaos.hpp"
#include "runtime/fleet.hpp"
#include "serve/plane.hpp"
#include "serve/tenant.hpp"

using namespace hbmvolt;

namespace {

constexpr std::uint64_t kSeed = 0x7E4A;
constexpr std::uint64_t kOpsPerTenant = 1 << 14;

struct ClassRow {
  std::uint64_t demand = 0;
  std::uint64_t goodput = 0;  // served (incl. stale) beats
  std::uint64_t shed = 0;
  std::uint64_t stale = 0;
  std::uint64_t hedged = 0;
  std::uint64_t worst_p99 = 0;
  bool slo_ok = true;
};

}  // namespace

int main() {
  bench::print_banner(
      "Extension: per-tenant QoS frontier under undervolting + PC kills");

  std::printf("8 tenants (zipfian/streaming/pointer_chase/uniform, "
              "alternating QoS),\n%llu beats of demand each, stripe scheme, "
              "pc_kill_rate 5e-5\n\n",
              static_cast<unsigned long long>(kOpsPerTenant));
  std::printf("%-8s %-11s %12s %10s %8s %8s %12s %6s %8s\n", "voltage",
              "class", "goodput", "shed", "stale", "hedged", "worst p99",
              "slo", "corrupt");

  for (int mv = 1200; mv >= 900; mv -= 50) {
    board::Vcu128Board board(bench::default_board_config());
    if (!board.set_hbm_voltage(Millivolts{mv}).is_ok()) {
      std::printf("%.2fV    not operable (crash region)\n", mv / 1000.0);
      continue;
    }

    chaos::ChaosConfig chaos_config;
    chaos_config.seed = 404;
    chaos_config.bit_rot_rate = 1e-4;
    chaos_config.pc_kill_rate = 5e-5;
    chaos_config.tenant_surge_rate = 0.02;
    chaos::ChaosInjector injector(board, chaos_config);

    serve::PlaneConfig plane_config;
    plane_config.tenants = serve::make_tenant_set(
        8,
        {serve::WorkloadMix::kZipfian, serve::WorkloadMix::kStreaming,
         serve::WorkloadMix::kPointerChase, serve::WorkloadMix::kUniform},
        kOpsPerTenant, /*footprint_beats=*/2048, /*quota_per_epoch=*/512);
    plane_config.seed = kSeed;
    // Point-access mixes place ~1 request per beat, so the queue bound
    // must hold an epoch's admitted demand per slot (8 tenants x 512
    // beats / 32 slots = 128 requests mean) or queue shedding drowns the
    // signal this frontier is after (brownout + deadline behavior).
    plane_config.max_queue_per_slot = 512;
    plane_config.chaos = &injector;
    serve::RequestPlane plane(std::move(plane_config));

    runtime::FleetConfig config;
    config.scheme = mitigate::MitigationKind::kStripe;
    config.threads = 1;
    config.seed = kSeed;
    config.ops_per_epoch = 1024;
    config.source = &plane;
    config.channel.spare_fraction = 0.25;
    config.storm_hook = [&injector](unsigned pc, std::uint64_t tick) {
      return injector.storm_tick(pc, tick);
    };

    runtime::ServingFleet fleet(board, config);
    auto report = fleet.run();
    if (!report.is_ok()) {
      std::printf("%.2fV    fleet run failed: %s\n", mv / 1000.0,
                  report.status().to_string().c_str());
      continue;
    }

    ClassRow rows[2];
    for (std::size_t t = 0; t < plane.tenant_count(); ++t) {
      const serve::TenantSpec& spec = plane.spec(t);
      const serve::TenantStats& stats = plane.stats(t);
      ClassRow& row = rows[static_cast<unsigned>(spec.qos)];
      row.demand += stats.demand;
      row.goodput += stats.served_reads + stats.served_writes +
                     stats.hedged + stats.stale_served;
      row.shed += stats.shed_total();
      row.stale += stats.stale_served;
      row.hedged += stats.hedged;
      row.worst_p99 =
          std::max(row.worst_p99, plane.latency(t).quantiles().p99);
      row.slo_ok = row.slo_ok && plane.slo_met(t);
    }

    const char* names[2] = {"guaranteed", "best_effort"};
    for (unsigned qos = 0; qos < 2; ++qos) {
      const ClassRow& row = rows[qos];
      std::printf("%.2fV    %-11s %12llu %9.2f%% %8llu %8llu %9llu ns %6s "
                  "%8llu\n",
                  mv / 1000.0, names[qos],
                  static_cast<unsigned long long>(row.goodput),
                  row.demand == 0
                      ? 0.0
                      : 100.0 * static_cast<double>(row.shed) /
                            static_cast<double>(row.demand),
                  static_cast<unsigned long long>(row.stale),
                  static_cast<unsigned long long>(row.hedged),
                  static_cast<unsigned long long>(row.worst_p99),
                  row.slo_ok ? "ok" : "MISS",
                  static_cast<unsigned long long>(
                      report.value().corrupt_reads));
    }
  }

  std::printf(
      "\nGuaranteed rows keep `slo ok` and zero corrupt reads at every\n"
      "rung -- blown deadlines hedge to the journal copy instead of\n"
      "waiting out reconstruction.  Best-effort rows pay for that: once\n"
      "the kill storm puts the fleet into brownout they are served stale\n"
      "and then shed, and deeper undervolting only adds correction work\n"
      "under the same QoS split -- never a corrupt read.\n");
  return 0;
}
