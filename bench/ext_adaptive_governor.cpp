// Extension experiment: adaptive (closed-loop) undervolting vs the
// paper's static fault-map approach.
//
// The governor probes its way down from nominal, backs off on the first
// violation, and holds -- finding the same operating points Fig 6
// prescribes, but online, in a handful of quick probes instead of a full
// offline characterization.  The trace below shows the convergence path
// and the probe cost for several application tolerance levels.

#include <cstdio>

#include "bench_common.hpp"
#include "core/governor.hpp"

using namespace hbmvolt;

namespace {

const char* action_name(core::GovernorStep::Action action) {
  switch (action) {
    case core::GovernorStep::Action::kLower: return "lower";
    case core::GovernorStep::Action::kHold: return "hold";
    case core::GovernorStep::Action::kBackoff: return "BACKOFF";
    case core::GovernorStep::Action::kPowerCycle: return "POWER-CYCLE";
    case core::GovernorStep::Action::kRetry: return "retry";
  }
  return "?";
}

}  // namespace

int main() {
  bench::print_banner("Extension: adaptive undervolting governor");

  struct Scenario {
    const char* name;
    double tolerable;
    Millivolts floor;
  };
  const Scenario scenarios[] = {
      {"fault-intolerant (0 tolerance)", 0.0, Millivolts{820}},
      {"tolerant to 1e-4", 1e-4, Millivolts{820}},
      {"tolerant to 1e-2", 1e-2, Millivolts{820}},
      {"rides into the crash (tolerance 1.0)", 1.0, Millivolts{790}},
  };

  for (const auto& scenario : scenarios) {
    board::Vcu128Board board(bench::default_board_config());
    core::GovernorConfig config;
    config.tolerable_rate = scenario.tolerable;
    config.floor = scenario.floor;
    config.probe_beats = board.geometry().beats_per_pc();  // full probes
    core::UndervoltGovernor governor(board, config);
    auto result = governor.run();
    if (!result.is_ok()) {
      std::fprintf(stderr, "governor failed: %s\n",
                   result.status().to_string().c_str());
      return 1;
    }
    const auto& r = result.value();
    std::printf("\n%s:\n", scenario.name);
    std::printf("  settled at %.2fV after %u probes -> %.2fx savings "
                "(converged: %s)\n",
                r.settled.volts(), r.probes, r.savings_factor,
                r.converged ? "yes" : "no");
    std::printf("  trace: ");
    for (const auto& step : r.trace) {
      if (step.action != core::GovernorStep::Action::kLower) {
        std::printf("[%.2fV %s] ", step.voltage.volts(),
                    action_name(step.action));
      }
    }
    std::printf("\n");
  }

  std::printf(
      "\nReading: zero tolerance converges to 0.98V = the paper's V_min\n"
      "(1.5x); relaxed tolerances settle deeper, matching the Fig 6 rows\n"
      "-- each found with ~25 quick probes instead of a 40-point x\n"
      "130-batch offline sweep.  The crash scenario shows the recovery\n"
      "path: power-cycle, return above the last good point, hold.\n");
  return 0;
}
