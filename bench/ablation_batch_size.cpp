// Ablation: batch sizing (paper §II-C: "We run each test 130 times, which
// gives us a 7% error margin with 90% confidence interval", following the
// statistical fault injection method of Leveugle et al., DATE 2009).
//
// Part 1 reproduces the sizing table analytically.  Part 2 measures the
// empirical spread of INA226 power readings versus the number of averaged
// samples, showing the same error-vs-repetitions trade-off on the
// measurement path.

#include <cstdio>

#include "bench_common.hpp"
#include "common/stats.hpp"

using namespace hbmvolt;

int main() {
  bench::print_banner("Ablation: statistical sizing of test batches");

  std::printf("Required runs for target error margin (worst-case p=0.5):\n");
  std::printf("  %-14s %-12s %-12s\n", "error margin", "90% conf.",
              "95% conf.");
  for (const double e : {0.20, 0.10, 0.07, 0.05, 0.02, 0.01}) {
    std::printf("  %-14.2f %-12zu %-12zu\n", e, required_runs(e, 0.90),
                required_runs(e, 0.95));
  }
  std::printf("\nPaper's operating point: 130 runs -> %.1f%% error at 90%% "
              "confidence\n",
              achieved_error_margin(130, 0.90) * 100.0);

  std::printf("\nEmpirical power-measurement spread vs batch size\n");
  std::printf("(INA226 readings at 0.98V, full utilization):\n");
  board::BoardConfig config = bench::default_board_config();
  config.monitor_config.noise_sigma_amps = 0.05;  // exaggerated for clarity
  board::Vcu128Board board(config);
  board.set_active_ports(board.total_ports());
  (void)board.set_hbm_voltage(Millivolts{980});

  std::printf("  %-12s %-14s %-14s %-12s\n", "batch", "mean (W)",
              "std dev (W)", "90% CI half-width");
  for (const unsigned batch : {1u, 4u, 16u, 64u, 130u}) {
    RunningStats stats;
    for (unsigned trial = 0; trial < 40; ++trial) {
      auto power = board.measure_power_averaged(batch);
      if (power.is_ok()) stats.add(power.value().value);
    }
    const auto ci = mean_confidence_interval(stats, 0.90);
    std::printf("  %-12u %-14.4f %-14.4f %.4f\n", batch, stats.mean(),
                stats.stddev(), ci.half_width);
  }

  std::printf(
      "\nReading: spread shrinks ~1/sqrt(batch); 130 repetitions put the\n"
      "measurement error comfortably inside the paper's 7%% margin.  The\n"
      "simulation's fault counts are deterministic at fixed voltage, so\n"
      "the fig benches use small batches without losing fidelity.\n");
  return 0;
}
