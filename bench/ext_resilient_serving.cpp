// Extension experiment: serving through the resilient runtime vs a raw
// PC across the Fig-6 voltage range.
//
// The paper's Fig-6 trade-off picks a voltage offline from a lab fault
// map; the ReliableChannel runtime (src/runtime/) makes the call online
// instead.  This bench serves the same deterministic op stream two ways
// at each voltage:
//
//   raw       write/read straight at the stack -- whatever the overlay
//             corrupts is delivered to the caller;
//   reliable  through ReliableChannel -- SECDED + patrol scrub + error
//             budget + the degradation ladder.
//
// Reported per voltage: throughput for both paths (the runtime's ops/s
// price), the raw corrupted-read fraction, the runtime's corrected-word
// overhead, ladder actions, and the voltage the ladder actually ended
// at.  The `reliable corrupt` column is the headline: it must be zero on
// every row.

#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "runtime/reliable_channel.hpp"

using namespace hbmvolt;

namespace {

constexpr std::uint64_t kOps = 1 << 14;
constexpr std::uint64_t kSeed = 0x5E11E;

}  // namespace

int main() {
  bench::print_banner(
      "Extension: resilient runtime vs raw PC across Fig-6 voltages");

  // Pick the PC with the deepest fault exposure so every regime of the
  // ladder gets exercised as the sweep descends.
  unsigned pc = 0;
  {
    board::Vcu128Board probe(bench::default_board_config());
    (void)probe.set_hbm_voltage(Millivolts{870});
    std::uint64_t worst = 0;
    for (unsigned candidate = 0; candidate < probe.geometry().total_pcs();
         ++candidate) {
      const std::uint64_t count =
          probe.injector().overlay(candidate).total_count();
      if (count > worst) {
        worst = count;
        pc = candidate;
      }
    }
  }

  std::printf("PC%u, %llu ops per voltage (75%% reads)\n\n", pc,
              static_cast<unsigned long long>(kOps));
  std::printf("%-8s %10s %10s %12s %12s %10s %8s %9s\n", "voltage",
              "raw Mop/s", "rel Mop/s", "raw corrupt", "rel corrupt",
              "corr/kop", "retired", "final mV");

  for (int mv = 980; mv >= 870; mv -= 10) {
    // --- raw path: unprotected stack access.
    board::Vcu128Board raw_board(bench::default_board_config());
    (void)raw_board.set_hbm_voltage(Millivolts{mv});
    const unsigned per_stack = raw_board.geometry().pcs_per_stack();
    auto& stack = raw_board.stack(pc / per_stack);
    const unsigned local = pc % per_stack;
    const std::uint64_t beats = raw_board.geometry().beats_per_pc();
    const auto trace =
        workload::make_uniform_random(beats, kOps, 0.25, kSeed);

    std::uint64_t raw_corrupt = 0;
    std::vector<bool> written(beats, false);
    const auto raw_start = std::chrono::steady_clock::now();
    for (std::uint64_t op = 0; op < trace.size(); ++op) {
      const std::uint64_t beat = trace[op].beat % beats;
      if (trace[op].write || !written[beat]) {
        (void)stack.write_beat(local, beat,
                               runtime::make_payload(kSeed, pc, op));
        written[beat] = true;
      } else {
        auto data = stack.read_beat(local, beat);
        if (!data.is_ok()) continue;
        // The raw path has no journal; corruption = any flipped bit
        // relative to what this beat last stored (the overlay is the only
        // mutator, so a read-back mismatch is a delivered fault).
        auto stored = stack.array(local).read_beat(beat);
        if (data.value() != stored) ++raw_corrupt;
      }
    }
    const std::chrono::duration<double> raw_elapsed =
        std::chrono::steady_clock::now() - raw_start;

    // --- reliable path: the full runtime ladder, same op stream.
    board::Vcu128Board board(bench::default_board_config());
    (void)board.set_hbm_voltage(Millivolts{mv});
    runtime::ReliableChannelConfig config;
    config.spare_fraction = 0.25;
    runtime::ReliableChannel channel(board, pc, config);
    const auto rel_trace = workload::make_uniform_random(
        channel.capacity(), kOps, 0.25, kSeed);

    const auto rel_start = std::chrono::steady_clock::now();
    auto served = channel.serve(rel_trace, kSeed);
    const std::chrono::duration<double> rel_elapsed =
        std::chrono::steady_clock::now() - rel_start;
    if (!served.is_ok()) {
      std::printf("%.2fV    serve failed: %s\n", mv / 1000.0,
                  served.status().to_string().c_str());
      continue;
    }
    const runtime::ServeReport& r = served.value();
    const runtime::ChannelStats& stats = channel.stats();

    std::printf("%.2fV   %10.2f %10.2f %11.4f%% %11.4f%% %10.2f %8llu %9d\n",
                mv / 1000.0, kOps / raw_elapsed.count() / 1e6,
                kOps / rel_elapsed.count() / 1e6,
                100.0 * static_cast<double>(raw_corrupt) /
                    static_cast<double>(kOps),
                100.0 * static_cast<double>(r.corrupt_reads) /
                    static_cast<double>(r.ops),
                1000.0 * static_cast<double>(stats.corrected_words) /
                    static_cast<double>(r.ops),
                static_cast<unsigned long long>(stats.rows_retired),
                board.hbm_voltage().value);
  }

  std::printf(
      "\nThe raw path delivers corrupt beats as soon as the overlay is\n"
      "populated; the runtime's column stays zero at every voltage -- it\n"
      "spends throughput (scrub + verify + journal), spares (retired\n"
      "rows), and finally supply voltage (the `final mV` column walking\n"
      "back toward nominal) to keep it that way.\n");
  return 0;
}
