// Ablation: the AXI switching network the paper disabled (§II-C: "we
// disable the switching network [to remove] any impact ... on the
// results").  Quantifies what keeping it enabled would have cost: lower
// sustained bandwidth per port, and therefore longer test runs -- but no
// change in fault counts (faults live in the DRAM, not the interconnect).

#include <cstdio>

#include "bench_common.hpp"
#include "axi/controller.hpp"

using namespace hbmvolt;

int main() {
  bench::print_banner("Ablation: AXI switching network enabled vs disabled");

  board::Vcu128Board board(bench::default_board_config());
  board.set_active_ports(board.total_ports());
  (void)board.set_hbm_voltage(Millivolts{900});

  axi::TgCommand command{axi::MacroOp::kWriteRead, 0, 0, hbm::kBeatAllOnes,
                         true};

  struct Row {
    const char* label;
    double bandwidth_gbs;
    double elapsed_us;
    std::uint64_t flips;
  };
  std::vector<Row> rows;

  for (const bool enabled : {false, true}) {
    for (unsigned s = 0; s < 2; ++s) {
      board.controller(s).switch_network().set_enabled(enabled);
      board.controller(s).reset_ports();
    }
    double bandwidth = 0.0;
    SimTime elapsed = 0;
    std::uint64_t flips = 0;
    for (const auto& result : board.run_traffic(command)) {
      bandwidth += result.aggregate_bandwidth.value;
      elapsed = std::max(elapsed, result.elapsed);
      flips += result.totals().total_flips();
    }
    rows.push_back({enabled ? "switch enabled " : "switch disabled",
                    bandwidth, to_seconds(elapsed).value * 1e6, flips});
  }

  std::printf("%-18s %-22s %-16s %s\n", "configuration",
              "aggregate bandwidth", "sweep time", "bit flips @0.90V");
  for (const auto& row : rows) {
    std::printf("%-18s %8.1f GB/s          %8.1f us      %llu\n", row.label,
                row.bandwidth_gbs, row.elapsed_us,
                static_cast<unsigned long long>(row.flips));
  }

  const double cost =
      1.0 - rows[1].bandwidth_gbs / rows[0].bandwidth_gbs;
  std::printf(
      "\nEnabling the crossbar costs %.0f%% of sustained bandwidth and\n"
      "stretches every pattern test accordingly, while fault counts are\n"
      "identical -- which is why the paper ran with it disabled.\n",
      cost * 100.0);
  return 0;
}
