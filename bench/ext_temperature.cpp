// Extension experiment: temperature sensitivity of the voltage guardband.
//
// The paper pinned the stacks at 35 +/- 1 degC (its guardband numbers are
// specific to that point) and left thermal behavior to future work.  The
// model's thermal knob shifts fault onsets with temperature; this bench
// sweeps the operating temperature and reports the first-fault voltage,
// the guardband width, and the fault-free power savings available at each
// temperature -- the derating table a deployment would need.

#include <cstdio>

#include "bench_common.hpp"
#include "core/guardband.hpp"
#include "core/reliability_tester.hpp"

using namespace hbmvolt;

int main() {
  bench::print_banner("Extension: guardband vs operating temperature");

  std::printf("%-12s %-14s %-12s %-14s %-18s\n", "temperature",
              "first fault", "V_min", "guardband", "safe savings");
  for (const double temperature : {15.0, 25.0, 35.0, 55.0, 70.0, 85.0}) {
    board::BoardConfig config = bench::default_board_config();
    config.fault_config.temperature_c = temperature;
    config.regulator_config.temperature = Celsius{temperature};
    board::Vcu128Board board(config);

    core::ReliabilityConfig rel_config;
    rel_config.sweep = {Millivolts{1050}, Millivolts{900}, 10};  // paper grid
    rel_config.batch_size = 1;
    auto result = core::find_guardband(board, rel_config);
    if (!result.is_ok()) {
      std::fprintf(stderr, "sweep failed at %.0f degC\n", temperature);
      return 1;
    }
    const auto guardband = result.value();
    const double v_min = guardband.v_min.volts();
    const double savings = v_min > 0 ? (1.2 / v_min) * (1.2 / v_min) : 1.0;
    std::printf("%5.0f degC   %.3fV         %.3fV       %4.1f%%         "
                "%.2fx\n",
                temperature, guardband.v_first_fault.volts(), v_min,
                guardband.guardband_fraction * 100.0, savings);
  }

  std::printf(
      "\nReading: at the paper's 35 degC operating point the guardband is\n"
      "18.3%% (1.50x safe savings).  Hotter silicon loses margin at\n"
      "~0.25 mV/degC -- an 85 degC deployment gives up ~13 mV of\n"
      "undervolting headroom -- while cold operation gains it.  The paper\n"
      "held temperature constant precisely to exclude this axis; the\n"
      "model makes it explorable.\n");
  return 0;
}
