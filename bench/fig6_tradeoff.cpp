// Regenerates Fig 6: how many of the 32 pseudo-channels remain usable at
// each voltage for a range of tolerable fault rates -- the paper's
// three-factor trade-off among power, fault rate, and memory capacity.
// Paper landmarks: 32 PCs fault-free through the guardband (1.5x); 7
// fault-free PCs at 0.95 V (1.6x); ~half capacity at 0.90 V under a tiny
// tolerable rate (~1.8x); tolerant applications ride to 2.3x at 0.85 V.
//
// Note: tolerable rates are fractions of the *simulated* capacity.  Near
// the fault onset the model reproduces absolute fault counts, so a small
// threshold means "a handful of faulty cells", exactly as on silicon
// (DESIGN.md, "Scaled capacity").

#include <cstdio>

#include "bench_common.hpp"
#include "core/report.hpp"
#include "core/tradeoff.hpp"

using namespace hbmvolt;

int main() {
  bench::print_banner(
      "Fig 6: usable PCs vs voltage per tolerable fault rate");

  board::Vcu128Board board(bench::default_board_config());

  auto config = bench::full_sweep_config(/*batch=*/2);
  config.sweep.stop = Millivolts{800};
  config.crash_policy = core::CrashPolicy::kPowerCycleAndContinue;

  core::ReliabilityTester tester(board, config);
  auto result = tester.run();
  if (!result.is_ok()) {
    std::fprintf(stderr, "reliability sweep failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }
  const auto map = std::move(result).value();

  core::TradeoffAnalyzer analyzer(map, Millivolts{1200},
                                  &board.power_model());
  core::TradeoffConfig tradeoff_config;
  const auto points = analyzer.analyze(tradeoff_config);

  std::fputs(core::render_fig6(points, tradeoff_config).c_str(), stdout);

  std::printf("\nPaper's worked examples:\n");
  if (const auto plan = analyzer.plan(32, 0.0)) {
    std::printf("  whole 8GB, zero faults:    %.2fV, %.2fx savings "
                "(paper: 0.98V, 1.5x)\n",
                plan->voltage.volts(), plan->savings_factor);
  }
  if (const auto plan = analyzer.plan(7, 0.0)) {
    std::printf("  7 fault-free PCs:          %.2fV, %.2fx savings "
                "(paper: 0.95V, up to 1.6x)\n",
                plan->voltage.volts(), plan->savings_factor);
  }
  if (const auto plan = analyzer.plan(16, 1e-4)) {
    std::printf("  half capacity, tiny rate:  %.2fV, %.2fx savings "
                "(paper: 0.90V, ~1.8x)\n",
                plan->voltage.volts(), plan->savings_factor);
  }
  if (const auto plan = analyzer.plan(16, 0.5)) {
    std::printf("  half capacity, any rate:   %.2fV, %.2fx savings "
                "(paper: up to 2.3x at 0.85V)\n",
                plan->voltage.volts(), plan->savings_factor);
  }

  std::printf("\nCSV:\n%s",
              core::to_csv_fig6(points, tradeoff_config).c_str());
  return 0;
}
