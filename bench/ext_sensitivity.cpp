// Extension experiment: sensitivity of the headline conclusions to the
// calibration constants.
//
// Every model constant came from one paper's measurements of one board.
// This bench perturbs the most influential constants one at a time and
// recomputes the headline quantities analytically, showing which
// conclusions are robust (the 1.5x guardband savings depends on nothing
// but V^2) and which are calibration-sensitive (the 2.3x at 0.85V moves
// with the bulk-collapse midpoint).  This is the due diligence a reader
// should demand of any calibrated simulation.

#include <cstdio>

#include "bench_common.hpp"
#include "faults/fault_model.hpp"
#include "power/power_model.hpp"

using namespace hbmvolt;

namespace {

struct Headlines {
  double savings_at_vmin;
  double savings_at_850;
  double alpha_drop_850;
  double stuck_at_900;
  int first_fault_mv;
};

Headlines evaluate(const faults::FaultModelConfig& fault_config) {
  const faults::FaultModel model(hbm::HbmGeometry::simulation_default(),
                                 fault_config);
  const power::PowerModel power(
      power::PowerModelConfig{},
      [&model](Millivolts v) { return model.alpha_multiplier(v); });

  Headlines h;
  h.savings_at_vmin = power.power(Millivolts{1200}, 1.0).value /
                      power.power(Millivolts{980}, 1.0).value;
  h.savings_at_850 = power.power(Millivolts{1200}, 1.0).value /
                     power.power(Millivolts{850}, 1.0).value;
  h.alpha_drop_850 = 1.0 - model.alpha_multiplier(Millivolts{850});
  h.stuck_at_900 = model.device_stuck_fraction(Millivolts{900});
  h.first_fault_mv = 0;
  for (unsigned pc = 0; pc < 32; ++pc) {
    h.first_fault_mv =
        std::max(h.first_fault_mv, model.onset_voltage(pc).value);
  }
  return h;
}

void report(const char* label, const Headlines& h) {
  std::printf("  %-34s %6.2fx    %6.2fx    %5.1f%%    %9.2e    %d mV\n",
              label, h.savings_at_vmin, h.savings_at_850,
              h.alpha_drop_850 * 100.0, h.stuck_at_900, h.first_fault_mv);
}

}  // namespace

int main() {
  bench::print_banner(
      "Extension: sensitivity of conclusions to calibration constants");

  std::printf("  %-34s %-10s %-10s %-9s %-13s %s\n", "configuration",
              "@0.98V", "@0.85V", "a-drop", "stuck@0.90V", "first fault");

  report("baseline (paper calibration)", evaluate({}));

  {
    faults::FaultModelConfig config;
    config.bulk_mid_volts += 0.005;  // bulk collapse 5 mV later
    report("bulk midpoint +5 mV", evaluate(config));
  }
  {
    faults::FaultModelConfig config;
    config.bulk_mid_volts -= 0.005;
    report("bulk midpoint -5 mV", evaluate(config));
  }
  {
    faults::FaultModelConfig config;
    config.tail_k_weak *= 1.5;
    config.tail_k_medium *= 1.5;
    config.tail_k_strong *= 1.5;
    report("tail growth rates x1.5", evaluate(config));
  }
  {
    faults::FaultModelConfig config;
    config.tail_k_weak *= 0.67;
    config.tail_k_medium *= 0.67;
    config.tail_k_strong *= 0.67;
    report("tail growth rates x0.67", evaluate(config));
  }
  {
    faults::FaultModelConfig config;
    config.alpha_stuck_weight = 0.30;  // stronger power/fault coupling
    report("alpha coupling w=0.30", evaluate(config));
  }
  {
    faults::FaultModelConfig config;
    config.alpha_stuck_weight = 0.10;
    report("alpha coupling w=0.10", evaluate(config));
  }
  {
    faults::FaultModelConfig config;
    config.stuck_at_one_share = 0.5;  // no polarity asymmetry
    report("no polarity asymmetry", evaluate(config));
  }

  std::printf(
      "\nReading: the 1.5x guardband savings is invariant -- it is pure\n"
      "V^2 physics plus the measured guardband width.  The 2.3x at 0.85V\n"
      "moves by ~±0.1x per 5 mV of bulk-midpoint error and with the alpha\n"
      "coupling weight; the mid-region fault mass swings by orders of\n"
      "magnitude with the tail growth rate, which is why the paper sweeps\n"
      "at 10 mV resolution instead of extrapolating.  First-fault voltage\n"
      "and polarity share affect reliability conclusions, not power.\n");
  return 0;
}
