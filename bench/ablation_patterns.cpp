// Ablation: data-pattern sensitivity.
//
// The paper's Algorithm 1 uses solid all-1s / all-0s patterns because
// stuck-at faults are fully exposed by the two solids together.  This
// ablation verifies that property empirically and compares coverage and
// cost of the classic alternatives: one checkerboard pass sees ~half of
// each polarity's stuck cells (both directions in a single pass), and a
// pseudo-random pattern behaves like a coin-flip per stuck cell.

#include <cstdio>

#include "bench_common.hpp"
#include "faults/fault_overlay.hpp"

using namespace hbmvolt;

namespace {

struct PatternRun {
  const char* name;
  axi::TgCommand command;
  unsigned passes;  // pattern passes needed
};

}  // namespace

int main() {
  bench::print_banner("Ablation: test data patterns vs stuck-at coverage");

  board::Vcu128Board board(bench::default_board_config());
  (void)board.set_hbm_voltage(Millivolts{880});

  const unsigned pc = 18;
  const auto& overlay = board.injector().overlay(pc);
  const std::uint64_t stuck = overlay.total_count();
  std::printf("PC%u at 0.88V: %llu stuck cells (ground truth)\n\n", pc,
              static_cast<unsigned long long>(stuck));

  axi::TgCommand ones{axi::MacroOp::kWriteRead, 0, 0, hbm::kBeatAllOnes,
                      true};
  axi::TgCommand zeros{axi::MacroOp::kWriteRead, 0, 0, hbm::kBeatAllZeros,
                       true};
  axi::TgCommand checker;
  checker.kind = axi::PatternKind::kCheckerboard;
  axi::TgCommand addr;
  addr.kind = axi::PatternKind::kAddressAsData;
  axi::TgCommand random;
  random.kind = axi::PatternKind::kRandom;
  random.pattern_seed = 0x5EED;

  const PatternRun runs[] = {
      {"all-1s (solid)", ones, 1},
      {"all-0s (solid)", zeros, 1},
      {"checkerboard", checker, 1},
      {"address-as-data", addr, 1},
      {"pseudo-random", random, 1},
  };

  const unsigned per_stack = board.geometry().pcs_per_stack();
  auto& controller = board.controller(pc / per_stack);
  const unsigned local = pc % per_stack;

  std::printf("%-18s %-10s %-10s %-12s %s\n", "pattern", "1->0", "0->1",
              "total", "coverage of stuck cells");
  std::uint64_t solid_total = 0;
  for (const auto& run : runs) {
    controller.reset_ports();
    (void)controller.run_on_port(local, run.command);
    const auto& stats = controller.port(local).stats();
    const double coverage =
        stuck ? static_cast<double>(stats.total_flips()) /
                    static_cast<double>(stuck)
              : 0.0;
    std::printf("%-18s %-10llu %-10llu %-12llu %5.1f%%\n", run.name,
                static_cast<unsigned long long>(stats.flips_1to0),
                static_cast<unsigned long long>(stats.flips_0to1),
                static_cast<unsigned long long>(stats.total_flips()),
                coverage * 100.0);
    if (run.command.kind == axi::PatternKind::kSolid) {
      solid_total += stats.total_flips();
    }
  }

  std::printf("\nBoth solids together: %llu flips = %.1f%% of stuck cells "
              "(the paper's choice: complete coverage in two passes)\n",
              static_cast<unsigned long long>(solid_total),
              stuck ? 100.0 * static_cast<double>(solid_total) /
                          static_cast<double>(stuck)
                    : 0.0);
  return 0;
}
