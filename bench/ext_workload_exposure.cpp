// Extension experiment: application-level fault exposure per workload.
//
// The paper's fault map (Fig 5) is a property of the memory; what an
// application experiences also depends on its access pattern.  This
// bench replays four synthetic workloads against the weakest PC across
// the unsafe region and reports the corrupted-read fraction and how many
// of the PC's stuck cells the workload ever touches -- showing that
// small-footprint / skewed workloads ride much deeper than the raw fault
// map suggests, which is the mechanism behind the paper's claim that
// fault-tolerant applications "can save more power than others".

#include <cstdio>

#include "bench_common.hpp"
#include "faults/fault_overlay.hpp"
#include "workload/trace.hpp"

using namespace hbmvolt;

int main() {
  bench::print_banner("Extension: workload-dependent fault exposure");

  board::Vcu128Board board(bench::default_board_config());
  const unsigned pc = 18;
  const unsigned per_stack = board.geometry().pcs_per_stack();
  auto& stack = board.stack(pc / per_stack);
  const unsigned local = pc % per_stack;
  const std::uint64_t beats = board.geometry().beats_per_pc();

  struct Workload {
    const char* name;
    workload::AccessTrace trace;
  };
  const Workload workloads[] = {
      {"streaming scan (full footprint)", workload::make_streaming(beats, 2)},
      {"uniform random (70% reads)",
       workload::make_uniform_random(beats, beats * 2, 0.3, 42)},
      {"hot set (90% traffic on 5%)",
       workload::make_hot_set(beats, beats * 2, 0.05, 0.9, 42)},
      {"strided column walk",
       workload::make_strided(beats, beats * 2, 17)},
  };

  for (const int mv : {950, 920, 900, 880, 860}) {
    (void)board.set_hbm_voltage(Millivolts{mv});
    const std::uint64_t stuck = board.injector().overlay(pc).total_count();
    std::printf("\nPC%u at %.2fV -- %llu stuck cells in the PC:\n", pc,
                mv / 1000.0, static_cast<unsigned long long>(stuck));
    std::printf("  %-34s %-18s %-20s %s\n", "workload", "corrupted reads",
                "stuck cells touched", "footprint");
    for (const auto& w : workloads) {
      auto result = workload::replay_exposure(stack, local, w.trace);
      if (!result.is_ok()) {
        std::fprintf(stderr, "replay failed: %s\n",
                     result.status().to_string().c_str());
        return 1;
      }
      const auto& r = result.value();
      std::printf("  %-34s %7.4f%%           %5llu / %-5llu        %llu beats\n",
                  w.name, r.corrupted_read_fraction() * 100.0,
                  static_cast<unsigned long long>(
                      r.distinct_stuck_cells_touched),
                  static_cast<unsigned long long>(stuck),
                  static_cast<unsigned long long>(r.footprint_beats));
    }
  }

  std::printf(
      "\nReading: at any voltage, the streaming scan meets (about half of)\n"
      "the stuck cells -- random data disagrees with a stuck value with\n"
      "probability 1/2 -- while the skewed workload's exposure depends on\n"
      "whether its hot set overlaps a fault cluster at all.  Fig 6's\n"
      "tolerable-rate axis is therefore a *worst case* over workloads;\n"
      "footprint-aware placement (see mitigate::RemappedChannel) converts\n"
      "unused capacity directly into undervolting headroom.\n");
  (void)board.set_hbm_voltage(Millivolts{1200});
  return 0;
}
