// Regenerates the paper's headline numbers (abstract / §I / §V) in one
// table: guardband width, savings factors, voltage landmarks, stack and
// pattern variation, and the active-capacitance drop -- each next to the
// paper's reported value.

#include <cstdio>

#include "bench_common.hpp"
#include "core/fault_characterizer.hpp"
#include "core/guardband.hpp"
#include "core/power_characterizer.hpp"
#include "core/report.hpp"

using namespace hbmvolt;

int main() {
  bench::print_banner("Headline numbers: paper vs this reproduction");

  board::Vcu128Board board(bench::default_board_config());

  // Reliability sweep (crash row included).
  auto rel_config = bench::full_sweep_config(/*batch=*/2);
  rel_config.sweep.stop = Millivolts{800};
  rel_config.crash_policy = core::CrashPolicy::kPowerCycleAndContinue;
  core::ReliabilityTester tester(board, rel_config);
  auto map_result = tester.run();
  if (!map_result.is_ok()) {
    std::fprintf(stderr, "reliability sweep failed\n");
    return 1;
  }
  const auto map = std::move(map_result).value();

  // Power sweep.
  core::PowerSweepConfig power_config;
  power_config.sweep = {Millivolts{1200}, Millivolts{810}, 10};
  power_config.samples = 8;
  power_config.traffic_beats = 32;
  core::PowerCharacterizer characterizer(board, power_config);
  auto power_result = characterizer.run();
  if (!power_result.is_ok()) {
    std::fprintf(stderr, "power sweep failed\n");
    return 1;
  }
  const auto power = std::move(power_result).value();

  core::HeadlineNumbers numbers;
  numbers.guardband = core::analyze_guardband(map, Millivolts{1200});
  const auto& full_series = power.series.back();
  numbers.savings_at_vmin =
      power.savings_factor(full_series, Millivolts{980}).value_or(0.0);
  numbers.savings_at_850mv =
      power.savings_factor(full_series, Millivolts{850}).value_or(0.0);
  const auto idle_nominal =
      power.series.front().power_at(Millivolts{1200});
  numbers.idle_fraction =
      idle_nominal.has_value() && power.reference.value > 0
          ? idle_nominal->value / power.reference.value
          : 0.0;
  numbers.stack_variation = core::analyze_stack_variation(map);
  numbers.pattern_variation = core::analyze_pattern_variation(map);
  for (std::size_t i = 0; i < full_series.voltages.size(); ++i) {
    if (full_series.voltages[i] == Millivolts{850}) {
      numbers.alpha_drop_at_850mv =
          1.0 - power.alpha_clf_normalized(full_series, i);
    }
  }

  std::fputs(core::render_headline(numbers).c_str(), stdout);

  std::printf(
      "\nNotes:\n"
      "  * The paper rounds its 0.22V guardband to \"19%%\"; exactly it is\n"
      "    (1.20-0.98)/1.20 = 18.3%%, which this run reproduces.\n"
      "  * Savings factors use the same normalization as the paper\n"
      "    (equal bandwidth utilization at both voltages).\n");
  return 0;
}
