// Extension experiment: lot-to-lot process variation.
//
// The paper characterizes ONE board and reports its per-PC variation.
// Deployments care about the population: how much do the guardband and
// the Fig 6 capacity curves move from device to device?  This bench
// draws many process lots (seeds) from the calibrated model and reports
// the distribution of the key landmarks -- the numbers a fleet operator
// would need before rolling out a fixed undervolt setpoint, and the
// reason adaptive schemes (ext_adaptive_governor) exist.

#include <cstdio>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "faults/fault_model.hpp"

using namespace hbmvolt;

int main() {
  bench::print_banner("Extension: process variation across device lots");

  constexpr int kLots = 40;
  RunningStats first_fault_mv;
  RunningStats fault_free_950;
  RunningStats stuck_at_900;
  RunningStats alpha_at_850;
  Histogram onset_histogram(930.0, 975.0, 9);

  for (int lot = 0; lot < kLots; ++lot) {
    faults::FaultModelConfig config;
    config.seed = 0x107000 + static_cast<std::uint64_t>(lot);
    const faults::FaultModel model(hbm::HbmGeometry::simulation_default(),
                                   config);

    int device_first_fault = 0;
    unsigned fault_free = 0;
    for (unsigned pc = 0; pc < 32; ++pc) {
      const int onset = model.onset_voltage(pc).value;
      device_first_fault = std::max(device_first_fault, onset);
      onset_histogram.add(onset);
      if (model.stuck_fraction(pc, Millivolts{950}) == 0.0) ++fault_free;
    }
    first_fault_mv.add(device_first_fault);
    fault_free_950.add(fault_free);
    stuck_at_900.add(model.device_stuck_fraction(Millivolts{900}));
    alpha_at_850.add(model.alpha_multiplier(Millivolts{850}));
  }

  std::printf("%d simulated lots (paper hardware = one sample):\n\n", kLots);
  std::printf("  %-34s mean %8.4g   min %8.4g   max %8.4g\n",
              "device first-fault voltage (mV)", first_fault_mv.mean(),
              first_fault_mv.min(), first_fault_mv.max());
  std::printf("  %-34s mean %8.4g   min %8.4g   max %8.4g\n",
              "fault-free PCs at 0.95V", fault_free_950.mean(),
              fault_free_950.min(), fault_free_950.max());
  std::printf("  %-34s mean %8.3e   min %8.3e   max %8.3e\n",
              "device stuck fraction at 0.90V", stuck_at_900.mean(),
              stuck_at_900.min(), stuck_at_900.max());
  std::printf("  %-34s mean %8.4f   min %8.4f   max %8.4f\n",
              "alpha multiplier at 0.85V", alpha_at_850.mean(),
              alpha_at_850.min(), alpha_at_850.max());

  std::printf("\nPer-PC onset-voltage distribution across all lots "
              "(%llu PCs):\n", static_cast<unsigned long long>(
                                   onset_histogram.total()));
  for (std::size_t bin = 0; bin < onset_histogram.bins(); ++bin) {
    const auto count = onset_histogram.count(bin);
    std::printf("  %4.0f-%4.0f mV  %5llu  ",
                onset_histogram.bin_lower(bin),
                onset_histogram.bin_upper(bin),
                static_cast<unsigned long long>(count));
    for (std::uint64_t i = 0; i < count / 8; ++i) std::printf("#");
    std::printf("\n");
  }

  std::printf(
      "\nReading: the calibration anchors are class-level properties and\n"
      "hold in every lot (first fault at 0.97V, seven strong PCs clean at\n"
      "0.95V) -- but *which* PCs are weak, their exact onsets, and the\n"
      "mid-region fault mass (~+/-10%% at 0.90V here) move lot to lot.\n"
      "A fleet cannot blindly reuse one board's Fig 5 fault map: either\n"
      "re-characterize per device (Campaign) or govern adaptively\n"
      "(UndervoltGovernor).\n");
  return 0;
}
