// Ablation: spatial clustering of weak cells (DESIGN.md design choice).
//
// The paper observes that "most faults are clustered together in small
// regions of HBM layers".  This ablation runs the same fault population
// with clustering enabled (default) and disabled, showing that
//  * aggregate fault rates -- and therefore Figs 2/3/4/6 -- are unchanged
//    (clustering only moves faults, it does not add them), while
//  * the spatial metrics (density concentration, median gap) separate the
//    two configurations sharply.  Systems that remap or retire faulty
//    rows depend on this distinction.

#include <cstdio>

#include "bench_common.hpp"
#include "faults/fault_map.hpp"
#include "faults/fault_overlay.hpp"

using namespace hbmvolt;

namespace {

void report(const char* label, faults::WeakCellConfig weak_config) {
  const auto geometry = hbm::HbmGeometry::simulation_default();
  faults::FaultInjector injector(
      faults::FaultModel(geometry, faults::FaultModelConfig{}), weak_config);

  std::printf("%s\n", label);
  std::printf("  %-8s %-10s %-12s %-14s %-12s\n", "voltage", "faults",
              "top-5% rows", "median gap", "rows hit");
  for (const int mv : {940, 920, 900, 880}) {
    injector.set_voltage(Millivolts{mv});
    // Aggregate over the weak PCs, where clustering is most visible.
    std::uint64_t faults = 0;
    double top5 = 0.0;
    double median = 0.0;
    std::uint64_t rows = 0;
    int samples = 0;
    for (const unsigned pc : faults::paper_weak_pcs()) {
      const auto stats =
          analyze_clustering(geometry, injector.overlay(pc));
      if (stats.faults == 0) continue;
      faults += stats.faults;
      top5 += stats.fraction_in_densest_5pct_rows;
      median += stats.median_gap;
      rows += stats.rows_with_faults;
      ++samples;
    }
    if (samples == 0) continue;
    std::printf("  %.2fV   %-10llu %-12.2f %-14.0f %llu\n", mv / 1000.0,
                static_cast<unsigned long long>(faults), top5 / samples,
                median / samples, static_cast<unsigned long long>(rows));
  }
}

}  // namespace

int main() {
  bench::print_banner("Ablation: weak-cell clustering on/off");

  faults::WeakCellConfig clustered;  // defaults: 6 windows x 2 rows
  report("Clustered (default, matches the paper's observation):",
         clustered);

  faults::WeakCellConfig uniform;
  uniform.cluster_count = 0;
  report("\nUniform placement (ablated):", uniform);

  std::printf(
      "\nReading: per-voltage fault *counts* match between the two\n"
      "configurations (the rate model is independent of placement), but\n"
      "the clustered model concentrates faults in few rows with small\n"
      "median gaps -- the signature the paper reports, and the property a\n"
      "row-retirement mitigation would exploit.\n");
  return 0;
}
