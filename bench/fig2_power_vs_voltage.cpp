// Regenerates Fig 2: HBM power consumption vs supply voltage at 0/25/50/
// 75/100% bandwidth utilization, normalized to 1.2 V at maximum
// utilization.  Paper shape: all series scale with V^2; 1.5x savings at
// 0.98 V and 2.3x total at 0.85 V, independent of utilization; the idle
// series sits at ~1/3 of full load.

#include <cstdio>

#include "bench_common.hpp"
#include "core/power_characterizer.hpp"
#include "core/report.hpp"

using namespace hbmvolt;

int main() {
  bench::print_banner("Fig 2: normalized HBM power vs voltage per "
                      "bandwidth utilization");

  board::Vcu128Board board(bench::default_board_config());

  core::PowerSweepConfig config;
  config.sweep = {Millivolts{1200}, Millivolts{810}, 10};
  config.port_counts = {0, 8, 16, 24, 32};  // 0/25/50/75/100%
  config.samples = 8;
  config.traffic_beats = 32;

  core::PowerCharacterizer characterizer(board, config);
  auto result = characterizer.run();
  if (!result.is_ok()) {
    std::fprintf(stderr, "power sweep failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }
  const auto data = std::move(result).value();

  std::fputs(core::render_fig2(data, 50).c_str(), stdout);
  std::printf("\n");
  std::fputs(core::render_fig2_chart(data).c_str(), stdout);

  std::printf("\nSavings factors (paper: 1.5x at 0.98V, 2.3x at 0.85V):\n");
  for (const auto& series : data.series) {
    const auto at_vmin = data.savings_factor(series, Millivolts{980});
    const auto at_850 = data.savings_factor(series, Millivolts{850});
    std::printf("  %2u ports (%3.0f%% util): %.2fx @0.98V   %.2fx @0.85V\n",
                series.ports, series.utilization * 100.0,
                at_vmin.value_or(0.0), at_850.value_or(0.0));
  }

  const auto idle_at_nominal =
      data.series.front().power_at(Millivolts{1200});
  if (idle_at_nominal.has_value() && data.reference.value > 0) {
    std::printf("\nIdle/full-load power at 1.20V: %.2f (paper: ~0.33)\n",
                idle_at_nominal->value / data.reference.value);
  }

  std::printf("\nCSV (fig2.csv-compatible):\n%s",
              core::to_csv_fig2(data).c_str());
  return 0;
}
