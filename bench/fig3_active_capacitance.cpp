// Regenerates Fig 3: normalized alpha*C_L*f (measured power divided by
// V^2, normalized per-bandwidth at 1.2 V).  Paper shape: flat within 3%
// down to 0.98 V; below the guardband the active capacitance drops as
// cells stick, reaching ~14% below nominal at 0.85 V.

#include <cstdio>

#include "bench_common.hpp"
#include "core/power_characterizer.hpp"
#include "core/report.hpp"

using namespace hbmvolt;

int main() {
  bench::print_banner(
      "Fig 3: normalized alpha*C_L*f vs voltage per bandwidth");

  board::Vcu128Board board(bench::default_board_config());

  core::PowerSweepConfig config;
  config.sweep = {Millivolts{1200}, Millivolts{810}, 10};
  config.port_counts = {0, 8, 16, 24, 32};
  config.samples = 8;
  config.traffic_beats = 32;

  core::PowerCharacterizer characterizer(board, config);
  auto result = characterizer.run();
  if (!result.is_ok()) {
    std::fprintf(stderr, "power sweep failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }
  const auto data = std::move(result).value();

  std::fputs(core::render_fig3(data, 50).c_str(), stdout);

  // The two landmark checks the paper calls out.
  std::printf("\nLandmarks (full-utilization series):\n");
  const auto& full = data.series.back();
  for (std::size_t i = 0; i < full.voltages.size(); ++i) {
    const int mv = full.voltages[i].value;
    if (mv == 980 || mv == 850) {
      std::printf("  %.2fV: %.3f  (paper: %s)\n", mv / 1000.0,
                  data.alpha_clf_normalized(full, i),
                  mv == 980 ? "~1.00, guardband edge" : "~0.86, -14%");
    }
  }
  std::printf("\nInterpretation: below 0.98V stuck bits stop charging/"
              "discharging,\nlowering effective switched capacitance -- "
              "extra power savings beyond V^2.\n");
  return 0;
}
