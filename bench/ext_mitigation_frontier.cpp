// Extension experiment: the mitigation-efficiency frontier.
//
// The paper picks one protection story (crash-free undervolt down to the
// guardband, faults beyond it); the mitigation zoo (mitigate/scheme.hpp)
// makes the protection stack a knob.  This bench serves the same
// deterministic fleet soak under every scheme across the Fig-6 undervolt
// range and reports what each scheme pays -- check/parity/spare storage,
// serving throughput -- and what it buys: the supply voltage it can hold
// without the degradation ladder walking back toward nominal, and
// (stripe only) survival of whole-pseudo-channel death.
//
// Two artifacts:
//
//   sweep    per (scheme, start mV): ops/s, corrupted reads (must be 0),
//            ladder raises / power-cycles, and the voltage the run ended
//            at.  "V_min held" per scheme = the deepest start voltage the
//            scheme finished at without giving any voltage back.
//   drill    whole-PC death at 950 mV: a storm hook kills PC 0 mid-soak.
//            secded/dected degrade to journal-backed serving (correct,
//            but no silicon redundancy); stripe reconstructs reads from
//            parity + peers and rebuilds the dead PC onto a spare online.

#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "mitigate/scheme.hpp"
#include "runtime/fleet.hpp"

using namespace hbmvolt;

namespace {

constexpr std::uint64_t kOpsPerPc = 1 << 11;
constexpr std::uint64_t kSeed = 0xF207;

struct SoakRow {
  bool ok = false;
  double mops = 0.0;
  std::uint64_t corrupt = 0;
  std::uint64_t reconstructed = 0;
  std::uint64_t rebuilt = 0;
  std::uint64_t journal_served = 0;
  std::uint64_t raises = 0;
  std::uint64_t power_cycles = 0;
  int final_mv = 0;
  /// Parity + spare PCs as a fraction of serving PCs (0 unless striped).
  double stripe_overhead = 0.0;
};

runtime::FleetConfig frontier_config(mitigate::MitigationKind scheme) {
  runtime::FleetConfig config;
  config.scheme = scheme;
  config.ops_per_pc = kOpsPerPc;
  config.seed = kSeed;
  config.threads = 4;  // counters are thread-count invariant
  return config;
}

SoakRow run_soak(mitigate::MitigationKind scheme, int mv, bool kill_pc0) {
  board::Vcu128Board board(bench::default_board_config());
  (void)board.set_hbm_voltage(Millivolts{mv});
  // Force every PC's lazy fault-overlay build before the timed region --
  // at deep undervolt the builds cost more than the soak itself and
  // would swamp the throughput column.
  const unsigned per_stack = board.geometry().pcs_per_stack();
  for (unsigned pc = 0; pc < board.geometry().total_pcs(); ++pc) {
    (void)board.stack(pc / per_stack).read_beat(pc % per_stack, 0);
  }
  runtime::FleetConfig config = frontier_config(scheme);
  if (kill_pc0) {
    // Same PC-local kill discipline as ChaosInjector::storm_tick, on a
    // schedule the drill can reason about.
    config.storm_hook = [&board](unsigned pc, std::uint64_t tick) {
      if (pc == 0 && tick == 70) {
        board.stack(0).kill_pc(0);
      }
      return false;
    };
  }
  runtime::ServingFleet fleet(board, config);

  SoakRow row;
  const std::size_t serving = fleet.channels();
  const std::size_t total = board.geometry().total_pcs();
  row.stripe_overhead = serving == 0
                            ? 0.0
                            : static_cast<double>(total - serving) /
                                  static_cast<double>(serving);
  const auto start = std::chrono::steady_clock::now();
  auto result = fleet.run();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  if (!result.is_ok()) {
    std::printf("  %s @ %d mV: run failed: %s\n",
                mitigate::to_string(scheme), mv,
                result.status().to_string().c_str());
    return row;
  }
  const runtime::FleetReport& r = result.value();
  std::uint64_t journal = 0;
  for (std::size_t i = 0; i < fleet.channels(); ++i) {
    journal += fleet.channel(i).stats().journal_served_reads;
  }
  row.ok = true;
  row.mops = static_cast<double>(r.ops) / elapsed.count() / 1e6;
  row.corrupt = r.corrupt_reads;
  row.reconstructed = r.reconstructed_reads;
  row.rebuilt = r.rebuilt_beats;
  row.journal_served = journal;
  row.raises = r.raises;
  row.power_cycles = r.power_cycles;
  row.final_mv = board.hbm_voltage().value;
  return row;
}

}  // namespace

int main() {
  bench::print_banner(
      "Extension: mitigation-efficiency frontier across the scheme zoo");

  constexpr mitigate::MitigationKind kZoo[] = {
      mitigate::MitigationKind::kSecded,
      mitigate::MitigationKind::kDected,
      mitigate::MitigationKind::kStripe,
  };
  constexpr int kVoltages[] = {980, 960, 940, 920, 900};

  std::printf("fleet soak: %llu ops/PC (75%% reads), 4 threads\n\n",
              static_cast<unsigned long long>(kOpsPerPc));
  std::printf("%-8s %-8s %9s %8s %7s %7s %9s\n", "scheme", "start", "Mop/s",
              "corrupt", "raises", "cycles", "final mV");

  double mops_950[3] = {0, 0, 0};
  int vmin_held[3] = {0, 0, 0};
  double stripe_overhead[3] = {0, 0, 0};
  for (unsigned s = 0; s < 3; ++s) {
    for (const int mv : kVoltages) {
      const SoakRow row = run_soak(kZoo[s], mv, /*kill_pc0=*/false);
      if (!row.ok) continue;
      std::printf("%-8s %5d mV %9.2f %8llu %7llu %7llu %9d\n",
                  mitigate::to_string(kZoo[s]), mv, row.mops,
                  static_cast<unsigned long long>(row.corrupt),
                  static_cast<unsigned long long>(row.raises),
                  static_cast<unsigned long long>(row.power_cycles),
                  row.final_mv);
      stripe_overhead[s] = row.stripe_overhead;
      if (row.raises == 0 && row.power_cycles == 0 && row.corrupt == 0) {
        vmin_held[s] = mv;  // sweep descends: last such row is the deepest
      }
    }
    const SoakRow at950 = run_soak(kZoo[s], 950, /*kill_pc0=*/false);
    mops_950[s] = at950.mops;
    std::printf("\n");
  }

  std::printf("whole-PC death drill at 950 mV (PC 0 killed at tick 70)\n\n");
  std::printf("%-8s %8s %9s %9s %9s\n", "scheme", "corrupt", "reconstr",
              "rebuilt", "journal");
  for (const auto scheme : kZoo) {
    const SoakRow row = run_soak(scheme, 950, /*kill_pc0=*/true);
    std::printf("%-8s %8llu %9llu %9llu %9llu\n", mitigate::to_string(scheme),
                static_cast<unsigned long long>(row.corrupt),
                static_cast<unsigned long long>(row.reconstructed),
                static_cast<unsigned long long>(row.rebuilt),
                static_cast<unsigned long long>(row.journal_served));
  }

  std::printf(
      "\nfrontier summary (storage %% = check bits + parity/spare PCs)\n\n");
  std::printf("%-8s %-16s %9s %10s %11s %10s\n", "scheme", "fault domain",
              "storage", "Mop/s@950", "tax vs secd", "Vmin held");
  for (unsigned s = 0; s < 3; ++s) {
    const mitigate::SchemeInfo& info = mitigate::scheme_info(kZoo[s]);
    const double storage =
        100.0 * (info.check_overhead + stripe_overhead[s] *
                                           (1.0 + info.check_overhead));
    std::printf("%-8s %-16s %8.1f%% %10.2f %10.2fx %7d mV\n", info.name,
                info.fault_domain, storage, mops_950[s],
                mops_950[0] > 0.0 ? mops_950[0] / mops_950[s] : 0.0,
                vmin_held[s]);
  }

  std::printf(
      "\nEvery `corrupt` cell is zero by construction -- the ladder spends\n"
      "voltage instead.  dected's wider per-word domain holds deeper\n"
      "supplies than secded before the budget forces a raise; stripe pays\n"
      "parity+spare silicon and a write fan-out tax, and is the only\n"
      "scheme that keeps silicon redundancy through whole-PC death (the\n"
      "drill: secded/dected fall back to the journal, stripe reconstructs\n"
      "and rebuilds).\n");
  return 0;
}
