// Regenerates Fig 4: fraction of faulty bits in each HBM stack vs supply
// voltage (Algorithm 1 over the full device, both data patterns).
// Paper shape: zero faults down to 0.98 V; exponential growth from
// 0.97 V; everything faulty by ~0.84 V; HBM crashes below 0.81 V.

#include <cstdio>

#include "bench_common.hpp"
#include "core/fault_characterizer.hpp"
#include "core/guardband.hpp"
#include "core/report.hpp"

using namespace hbmvolt;

int main() {
  bench::print_banner("Fig 4: faulty fraction per HBM stack vs voltage");

  board::Vcu128Board board(bench::default_board_config());

  // Sweep one step past V_critical so the crash row appears, with the
  // power-cycle-and-continue policy the real experiments needed.
  auto config = bench::full_sweep_config(/*batch=*/2);
  config.sweep.stop = Millivolts{800};
  config.crash_policy = core::CrashPolicy::kPowerCycleAndContinue;

  core::ReliabilityTester tester(board, config);
  auto result = tester.run();
  if (!result.is_ok()) {
    std::fprintf(stderr, "reliability sweep failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }
  const auto map = std::move(result).value();

  std::fputs(core::render_fig4(map).c_str(), stdout);
  std::printf("\n");
  std::fputs(core::render_fig4_chart(map).c_str(), stdout);

  const auto guardband = core::analyze_guardband(map, Millivolts{1200});
  std::printf("\nGuardband landmarks:\n");
  std::printf("  V_min        = %.2fV (paper: 0.98V)\n",
              guardband.v_min.volts());
  std::printf("  first faults = %.2fV (paper: 0.97V)\n",
              guardband.v_first_fault.volts());
  std::printf("  V_critical   = %.2fV (paper: 0.81V)\n",
              guardband.v_critical.volts());
  std::printf("  guardband    = %.1f%% of nominal (paper: ~19%%)\n",
              guardband.guardband_fraction * 100.0);
  std::printf("  crash below V_critical observed: %s (paper: yes)\n",
              guardband.crash_observed ? "yes" : "no");

  const auto variation = core::analyze_stack_variation(map);
  std::printf("\nStack variation: HBM%u averages %.0f%% lower fault rate "
              "than HBM%u (paper: HBM0 13%% lower)\n",
              variation.better_stack, variation.average_gap * 100.0,
              variation.worse_stack);

  std::printf("\nCSV:\n%s", core::to_csv_fig4(map).c_str());
  return 0;
}
