// Regenerates Fig 5: per-AXI-port (pseudo-channel) fault percentages at
// each unsafe voltage, split by data pattern (1->0 vs 0->1 flips).
// Paper shape: "NF" everywhere above 0.97 V; weak PCs (PC4, PC5 on HBM0;
// PC18-20 on HBM1) fault first; 0->1 flips start one step below 1->0;
// everything saturates by 0.84 V.

#include <cstdio>

#include "bench_common.hpp"
#include "core/fault_characterizer.hpp"
#include "core/report.hpp"

using namespace hbmvolt;

int main() {
  bench::print_banner("Fig 5: per-PC fault rates vs voltage and pattern");

  board::Vcu128Board board(bench::default_board_config());

  // The paper's per-PC table spans V_min down to saturation.
  auto config = bench::full_sweep_config(/*batch=*/2);
  config.sweep = {Millivolts{980}, Millivolts{840}, 10};

  core::FaultCharacterizer characterizer(board);
  auto result = characterizer.characterize(config);
  if (!result.is_ok()) {
    std::fprintf(stderr, "characterization failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }
  const auto map = std::move(result).value();

  std::fputs(core::render_fig5(map, 20).c_str(), stdout);

  const auto onsets = core::per_pc_onsets(map);
  std::printf("\nPer-PC observed onset voltages (first fault):\n");
  for (unsigned pc = 0; pc < onsets.size(); ++pc) {
    if (onsets[pc].has_value()) {
      std::printf("  PC%-2u %.2fV\n", pc, onsets[pc]->volts());
    } else {
      std::printf("  PC%-2u no fault in range\n", pc);
    }
  }

  const auto variation = core::analyze_pattern_variation(map);
  std::printf("\nPattern variation:\n");
  if (variation.first_1to0.has_value()) {
    std::printf("  first 1->0 flip at %.2fV (paper: 0.97V)\n",
                variation.first_1to0->volts());
  }
  if (variation.first_0to1.has_value()) {
    std::printf("  first 0->1 flip at %.2fV (paper: 0.96V)\n",
                variation.first_0to1->volts());
  }
  std::printf("  average 0->1 rate excess over 1->0: +%.0f%% (paper: +21%%)\n",
              variation.average_0to1_excess * 100.0);

  // The fault map as a picture: weak PC18 at 0.90V, banks across, rows
  // down.  Clustering is visible as dense columns/blocks.
  {
    auto& injector = board.injector();
    injector.set_voltage(Millivolts{900});
    std::printf("\nSpatial fault map of PC18 at 0.90V:\n");
    std::fputs(core::render_pc_heatmap(board.geometry(),
                                       injector.overlay(18))
                   .c_str(),
               stdout);
    injector.set_voltage(Millivolts{1200});
  }

  // Clustering evidence for the weak PCs (paper: "most faults are
  // clustered together in small regions").
  std::printf("\nSpatial clustering at 0.91V (weak PCs):\n");
  for (const unsigned pc : faults::paper_weak_pcs()) {
    const auto stats = characterizer.clustering(pc, Millivolts{910});
    std::printf("  PC%-2u: %5llu faults, %4.0f%% in densest 5%% of rows, "
                "median gap %.0f bits (uniform would be ~%.0f)\n",
                pc, static_cast<unsigned long long>(stats.faults),
                stats.fraction_in_densest_5pct_rows * 100.0,
                stats.median_gap, 0.69 * stats.uniform_expected_gap);
  }

  std::printf("\nCSV:\n%s", core::to_csv_fig5(map).c_str());
  return 0;
}
