// Extension experiment: transfer energy (pJ/bit) vs supply voltage.
//
// The paper motivates HBM with its ~7 pJ/bit transfer energy (vs ~25
// pJ/bit for DDRx, §II-A) and demonstrates power savings at constant
// bandwidth -- which is exactly an energy-per-bit reduction.  This bench
// runs a fixed workload at each voltage, integrates rail energy over the
// simulated transfer time, and reports effective pJ/bit, separating the
// "free" guardband region from the fault-paying region.

#include <cstdio>

#include "bench_common.hpp"

using namespace hbmvolt;

int main() {
  bench::print_banner("Extension: effective transfer energy vs voltage");

  board::Vcu128Board board(bench::default_board_config());
  board.set_active_ports(board.total_ports());

  axi::TgCommand command{axi::MacroOp::kWriteRead, 0, 0, hbm::kBeatAllOnes,
                         /*check=*/false};

  std::printf("%-8s %-12s %-14s %-14s %-10s\n", "voltage", "power (W)",
              "bandwidth", "energy/bit", "vs 1.20V");
  double nominal_pj = 0.0;
  for (int mv = 1200; mv >= 850; mv -= 50) {
    (void)board.set_hbm_voltage(Millivolts{mv});
    board.rail().reset_energy();

    std::uint64_t bytes = 0;
    SimTime elapsed = 0;
    for (const auto& result : board.run_traffic(command)) {
      const auto totals = result.totals();
      bytes += (totals.beats_written + totals.beats_read) * 32;
      elapsed = std::max(elapsed, result.elapsed);
    }
    const double joules = board.rail().consumed_energy().value;
    const double bits = static_cast<double>(bytes) * 8.0;
    const double pj_per_bit = joules / bits * 1e12;
    if (mv == 1200) nominal_pj = pj_per_bit;
    const double bandwidth =
        static_cast<double>(bytes) / to_seconds(elapsed).value / 1e9;
    std::printf("%.2fV   %-12.2f %6.1f GB/s    %6.2f pJ/b     %.2fx\n",
                mv / 1000.0,
                board.power_model()
                    .power(Millivolts{mv}, board.utilization())
                    .value,
                bandwidth, pj_per_bit,
                nominal_pj > 0 ? nominal_pj / pj_per_bit : 1.0);
  }

  std::printf(
      "\nReading: bandwidth is voltage-independent (undervolting does not\n"
      "touch frequency), so energy/bit falls exactly as fast as power --\n"
      "~10.5 pJ/b at nominal (the paper's ~7 pJ/b transfer energy plus\n"
      "the idle floor amortized over the workload) down to ~4.5 pJ/b at\n"
      "0.85V.\n");
  return 0;
}
