// Performance microbenchmarks (google-benchmark): the hot paths of the
// simulator itself -- beat reads with sparse/dense overlays, overlay
// construction, weak-cell order construction, and the Feistel PRP.
// These guard the "full sweep in seconds" property the fig benches rely
// on.

#include <optional>

#include <benchmark/benchmark.h>

#include "axi/traffic_gen.hpp"
#include "bench_common.hpp"
#include "common/prp.hpp"
#include "core/parallel.hpp"
#include "faults/fault_overlay.hpp"
#include "hbm/stack.hpp"
#include "runtime/fleet.hpp"
#include "runtime/reliable_channel.hpp"
#include "serve/plane.hpp"
#include "serve/tenant.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace hbmvolt;

hbm::HbmGeometry bench_geometry() {
  return hbm::HbmGeometry::simulation_default();
}

void BM_FeistelForward(benchmark::State& state) {
  FeistelPermutation prp(1ull << 20, 42);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(prp.forward(i++ & ((1ull << 20) - 1)));
  }
}
BENCHMARK(BM_FeistelForward);

void BM_WeakCellOrderBuild(benchmark::State& state) {
  auto geometry = bench_geometry();
  geometry.bits_per_pc = 1ull << static_cast<unsigned>(state.range(0));
  geometry.banks_per_pc = 2;
  geometry.beats_per_row = 8;
  for (auto _ : state) {
    faults::WeakCellOrder order(geometry, 42, faults::WeakCellConfig{});
    benchmark::DoNotOptimize(order.order(faults::StuckPolarity::kStuckAt0)
                                 .size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(geometry.bits_per_pc));
}
BENCHMARK(BM_WeakCellOrderBuild)->Arg(14)->Arg(17)->Arg(19);

void BM_OverlayBuildSparse(benchmark::State& state) {
  const auto geometry = bench_geometry();
  faults::WeakCellOrder order(geometry, 42, faults::WeakCellConfig{});
  for (auto _ : state) {
    auto overlay = faults::FaultOverlay::build(order, 500, 500);
    benchmark::DoNotOptimize(overlay.total_count());
  }
}
BENCHMARK(BM_OverlayBuildSparse);

void BM_OverlayBuildDense(benchmark::State& state) {
  const auto geometry = bench_geometry();
  faults::WeakCellOrder order(geometry, 42, faults::WeakCellConfig{});
  const std::uint64_t k = geometry.bits_per_pc / 4;
  for (auto _ : state) {
    auto overlay = faults::FaultOverlay::build(order, k, k);
    benchmark::DoNotOptimize(overlay.total_count());
  }
}
BENCHMARK(BM_OverlayBuildDense);

void BM_ReadBeat(benchmark::State& state) {
  const auto geometry = bench_geometry();
  faults::FaultInjector injector(
      faults::FaultModel(geometry, faults::FaultModelConfig{}));
  hbm::HbmStack stack(geometry, 0, injector, 1);
  const int mv = static_cast<int>(state.range(0));
  injector.set_voltage(Millivolts{mv});
  stack.on_voltage_change(Millivolts{mv});
  std::uint64_t beat = 0;
  const std::uint64_t mask = geometry.beats_per_pc() - 1;
  for (auto _ : state) {
    auto data = stack.read_beat(4, beat++ & mask);
    benchmark::DoNotOptimize(data.is_ok());
  }
  state.SetBytesProcessed(state.iterations() * 32);
}
// Nominal (no overlay), tail faults (sparse), bulk faults (dense).
BENCHMARK(BM_ReadBeat)->Arg(1200)->Arg(920)->Arg(855);

void BM_FullPcPatternTest(benchmark::State& state) {
  const auto geometry = bench_geometry();
  faults::FaultInjector injector(
      faults::FaultModel(geometry, faults::FaultModelConfig{}));
  hbm::HbmStack stack(geometry, 0, injector, 1);
  injector.set_voltage(Millivolts{900});
  stack.on_voltage_change(Millivolts{900});
  axi::TrafficGenerator tg(stack, 4);
  axi::TgCommand command{axi::MacroOp::kWriteRead, 0, 0, hbm::kBeatAllOnes,
                         true};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tg.run(command).is_ok());
  }
  state.SetBytesProcessed(
      state.iterations() *
      static_cast<std::int64_t>(geometry.bits_per_pc / 8) * 2);
}
BENCHMARK(BM_FullPcPatternTest);

// The batched-engine headline (docs/performance.md, CI perf-smoke):
// solid-pattern full-PC write/read-verify at nominal voltage -- empty
// overlay, so the batched verify is O(1) -- per-beat reference (Arg 0)
// vs batched engine (Arg 1).  CI fails if batched is not faster.
void BM_PatternTest(benchmark::State& state) {
  const bool batched = state.range(0) != 0;
  const auto geometry = bench_geometry();
  faults::FaultInjector injector(
      faults::FaultModel(geometry, faults::FaultModelConfig{}));
  hbm::HbmStack stack(geometry, 0, injector, 1);
  axi::TrafficGenerator tg(stack, 4);
  tg.set_engine(batched ? axi::EnginePath::kAuto : axi::EnginePath::kPerBeat);
  axi::TgCommand command{axi::MacroOp::kWriteRead, 0, 0, hbm::kBeatAllOnes,
                         true};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tg.run(command).is_ok());
  }
  state.SetLabel(batched ? "batched" : "per-beat");
  state.SetBytesProcessed(
      state.iterations() *
      static_cast<std::int64_t>(geometry.bits_per_pc / 8) * 2);
}
BENCHMARK(BM_PatternTest)->Arg(0)->Arg(1);

// Whole-device reliability sweep at different worker counts: the paper's
// Algorithm 1 with all 32 TGs, fanned out by core::ThreadPool.  The
// speedup over Arg(1) is the headline number for the parallel engine
// (expect >= 2x at Arg(4) on a 4-core host; on fewer cores the extra
// workers just measure the pool's overhead).  Results are byte-identical
// across arguments -- tests/parallel_test.cpp enforces that; this bench
// only measures time.
void BM_SweepThroughput(benchmark::State& state) {
  const unsigned threads = static_cast<unsigned>(state.range(0));
  board::Vcu128Board board(bench::default_board_config());
  core::ReliabilityTester tester(board, bench::bench_sweep_config());
  // threads == 1 is the serial reference path: no pool at all.
  std::unique_ptr<core::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<core::ThreadPool>(threads);
  std::uint64_t bits = 0;
  for (auto _ : state) {
    auto map = tester.run(pool.get());
    if (!map.is_ok()) {
      state.SkipWithError("sweep failed");
      break;
    }
    bits += map.value().device_record(Millivolts{1200}).bits_tested;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(bits));
  state.counters["threads"] = threads;
}
BENCHMARK(BM_SweepThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// Telemetry overhead on the serial sweep plus a nominal-voltage
// ReliableChannel serve pass (docs/observability.md, CI telemetry gate).
// The serve pass exercises the newer instrumentation sites -- per-PC
// labeled family counters and HDR latency recording via OpTimer -- so the
// gate covers them too, not just the sweep spans.  Arg(0): no telemetry
// at all -- the baseline.  Arg(1): an instance installed but disabled, so
// every instrumentation site takes the one-branch null path; CI fails if
// this costs more than 3% over the baseline.  Arg(2): fully enabled
// (spans + counters + families + latency recorded), the documented price
// of turning observability on.
void BM_TelemetryOverhead(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  board::Vcu128Board board(bench::default_board_config());
  core::ReliabilityTester tester(board, bench::bench_sweep_config());

  // Nominal supply: the ladder never escalates, so the channel can be
  // built once and serve the same trace every iteration.
  runtime::ReliableChannelConfig channel_config;
  channel_config.spare_fraction = 0.25;
  runtime::ReliableChannel channel(board, 18, channel_config);
  (void)channel.write(0, runtime::make_payload(1, 18, 0));  // overlay build
  const workload::AccessTrace trace = workload::make_uniform_random(
      channel.capacity(), 1 << 12, 0.25, 0x5E11E);

  telemetry::Telemetry instance(
      telemetry::TelemetryConfig{.enabled = mode == 2});
  std::optional<telemetry::ScopedTelemetry> scoped;
  if (mode != 0) scoped.emplace(instance);

  std::uint64_t bits = 0;
  for (auto _ : state) {
    auto map = tester.run();
    if (!map.is_ok()) {
      state.SkipWithError("sweep failed");
      break;
    }
    bits += map.value().device_record(Millivolts{1200}).bits_tested;
    auto report = channel.serve(trace, 1);
    if (!report.is_ok()) {
      state.SkipWithError("serve failed");
      break;
    }
    channel.flush_telemetry();  // the epoch-barrier family/HDR merge
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(bits));
  state.SetLabel(mode == 0 ? "no-telemetry"
                           : mode == 1 ? "installed-disabled" : "enabled");
}
BENCHMARK(BM_TelemetryOverhead)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Resilient-runtime serving price (bench/ext_resilient_serving.cpp has
// the full raw-vs-reliable sweep; this tracks the trend).  One iteration
// serves a 16k-op uniform stream through ReliableChannel on the weakest
// PC.  Arg is the starting supply: nominal (ECC idle), 950 mV (SECDED
// absorbing stuck cells), 920 mV (budget burns, rows retire online).
// The board is rebuilt per iteration -- the ladder mutates voltage and
// array state, so a fresh loop body is the only way iterations measure
// the same thing -- but construction, the lazy fault-overlay build
// (~50 ms for a weak PC at 950 mV, forced by the first access), and
// trace generation happen under PauseTiming: the counter is serving
// throughput, not setup.
void BM_ResilientServe(benchmark::State& state) {
  const int mv = static_cast<int>(state.range(0));
  constexpr std::uint64_t kOps = 1 << 14;
  std::optional<board::Vcu128Board> board;
  std::optional<runtime::ReliableChannel> channel;
  workload::AccessTrace trace;
  for (auto _ : state) {
    state.PauseTiming();
    channel.reset();
    board.emplace(bench::default_board_config());
    (void)board->set_hbm_voltage(Millivolts{mv});
    runtime::ReliableChannelConfig config;
    config.spare_fraction = 0.25;
    channel.emplace(*board, 18, config);
    (void)channel->write(0, runtime::make_payload(1, 18, 0));  // overlay build
    trace =
        workload::make_uniform_random(channel->capacity(), kOps, 0.25,
                                      0x5E11E);
    state.ResumeTiming();
    auto report = channel->serve(trace, 1);
    if (!report.is_ok()) {
      state.SkipWithError("serve failed");
      break;
    }
    benchmark::DoNotOptimize(report.value().ops);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kOps));
}
BENCHMARK(BM_ResilientServe)
    ->Arg(1200)
    ->Arg(950)
    ->Arg(920)
    ->Unit(benchmark::kMillisecond);

// Reliability tax on streaming traffic (docs/performance.md, CI
// perf-smoke): one write sweep plus read sweeps over the weakest PC,
// served raw at the stack (mode 0 -- per-beat loads, no ECC, no
// journal, no scrub: the same unprotected baseline as
// bench/ext_resilient_serving.cpp) or through
// ReliableChannel::serve_trace (mode 1 -- the range engine coalesces
// the sweeps into bulk encode/decode runs, scrub and budget amortized
// per run).  CI fails if the reliable path delivers less than 1/3 of
// raw ops/s at 950 mV.  Board rebuilt per iteration (same reason as
// BM_ResilientServe), with setup and the lazy overlay build likewise
// excluded from the timed region.
void BM_ReliableServe(benchmark::State& state) {
  const int mv = static_cast<int>(state.range(0));
  const bool reliable = state.range(1) != 0;
  // One write sweep, seven read sweeps: serving traffic is read-heavy,
  // and the write sweep carries the (documented) write-verify double cost.
  constexpr unsigned kPasses = 8;
  constexpr unsigned kPc = 18;
  std::uint64_t ops = 0;
  std::optional<board::Vcu128Board> board;
  std::optional<runtime::ReliableChannel> channel;
  workload::AccessTrace trace;
  for (auto _ : state) {
    state.PauseTiming();
    channel.reset();
    board.emplace(bench::default_board_config());
    (void)board->set_hbm_voltage(Millivolts{mv});
    const unsigned per_stack = board->geometry().pcs_per_stack();
    auto& stack = board->stack(kPc / per_stack);
    const unsigned local = kPc % per_stack;
    if (reliable) {
      runtime::ReliableChannelConfig config;
      config.spare_fraction = 0.25;
      channel.emplace(*board, kPc, config);
      (void)channel->write(0, runtime::make_payload(1, kPc, 0));
      trace = workload::make_streaming(channel->capacity(), kPasses);
      state.ResumeTiming();
      auto report = channel->serve_trace(trace, 1);
      if (!report.is_ok()) {
        state.SkipWithError("serve_trace failed");
        break;
      }
      ops += report.value().ops;
    } else {
      const std::uint64_t beats = board->geometry().beats_per_pc();
      (void)stack.read_beat(local, 0);  // force the lazy overlay build
      state.ResumeTiming();
      bool ok = true;
      for (std::uint64_t b = 0; b < beats && ok; ++b) {
        ok = stack.write_beat(local, b,
                              runtime::make_payload(1, kPc, b)).is_ok();
      }
      for (unsigned pass = 1; pass < kPasses && ok; ++pass) {
        for (std::uint64_t b = 0; b < beats && ok; ++b) {
          auto data = stack.read_beat(local, b);
          ok = data.is_ok();
          benchmark::DoNotOptimize(data);
        }
      }
      if (!ok) {
        state.SkipWithError("raw access failed");
        break;
      }
      ops += beats * kPasses;
    }
  }
  state.SetLabel(reliable ? "reliable" : "raw");
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}
BENCHMARK(BM_ReliableServe)
    ->Args({1200, 0})
    ->Args({1200, 1})
    ->Args({950, 0})
    ->Args({950, 1})
    ->Unit(benchmark::kMillisecond);

// Stripe-mode serving price (docs/resilience.md): a single-threaded
// ServingFleet under the cross-PC erasure stripe, healthy (no PC kill),
// on the same streaming shape as BM_ReliableServe (one write sweep,
// seven read sweeps) so the range engine coalesces for both -- every
// data write also updates the group parity channel, so this is the
// steady-state RAIM write fan-out tax, not the reconstruction path.
// items/s counts foreground fleet ops, directly comparable to
// BM_ReliableServe's per-PC ops/s; CI fails if stripe-mode serve
// delivers less than 1/5 of the raw path at 950 mV.  Board rebuilt per
// iteration with all fault overlays pre-built under PauseTiming (one
// beat read per PC forces each lazy build).
void BM_StripeServe(benchmark::State& state) {
  const int mv = static_cast<int>(state.range(0));
  constexpr unsigned kPasses = 8;
  std::uint64_t ops = 0;
  std::optional<board::Vcu128Board> board;
  std::optional<runtime::ServingFleet> fleet;
  for (auto _ : state) {
    state.PauseTiming();
    fleet.reset();
    board.emplace(bench::default_board_config());
    (void)board->set_hbm_voltage(Millivolts{mv});
    const unsigned per_stack = board->geometry().pcs_per_stack();
    for (unsigned pc = 0; pc < board->geometry().total_pcs(); ++pc) {
      (void)board->stack(pc / per_stack).read_beat(pc % per_stack, 0);
    }
    runtime::FleetConfig config;
    config.scheme = mitigate::MitigationKind::kStripe;
    config.streaming_passes = kPasses;
    config.threads = 1;
    config.seed = 0x5E11E;
    fleet.emplace(*board, std::move(config));
    state.ResumeTiming();
    auto report = fleet->run();
    if (!report.is_ok()) {
      state.SkipWithError("fleet run failed");
      break;
    }
    ops += report.value().ops;
  }
  state.SetLabel("stripe");
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}
BENCHMARK(BM_StripeServe)->Arg(1200)->Arg(950)->Unit(benchmark::kMillisecond);

// Request-plane bookkeeping price (docs/serving.md, CI perf gate): the
// same single-threaded SECDED fleet serving a streaming shape bare
// (Arg 1 == 0: the fleet's built-in per-PC sweeps -- the same reliable
// serving path BM_ReliableServe prices on one channel) vs driven
// through the multi-tenant RequestPlane (Arg 1 == 1: four streaming
// tenants, chunk-placed, admission-controlled, deadline-tracked).
// items/s counts foreground beats served either way, so the gap between
// the two arms is what the plane's hashing, queues, and per-tenant
// accounting cost; CI fails if that overhead exceeds 10% at nominal
// voltage.  chunk_beats is large (512) so the range engine coalesces
// comparably in both arms; board rebuilt per iteration with overlays
// pre-built and tenant traces generated under PauseTiming.
void BM_TenantServe(benchmark::State& state) {
  const int mv = static_cast<int>(state.range(0));
  const bool plane_on = state.range(1) != 0;
  constexpr unsigned kPasses = 8;
  std::uint64_t ops = 0;
  std::optional<board::Vcu128Board> board;
  std::optional<serve::RequestPlane> plane;
  std::optional<runtime::ServingFleet> fleet;
  for (auto _ : state) {
    state.PauseTiming();
    fleet.reset();
    plane.reset();
    board.emplace(bench::default_board_config());
    (void)board->set_hbm_voltage(Millivolts{mv});
    const unsigned per_stack = board->geometry().pcs_per_stack();
    for (unsigned pc = 0; pc < board->geometry().total_pcs(); ++pc) {
      (void)board->stack(pc / per_stack).read_beat(pc % per_stack, 0);
    }
    runtime::FleetConfig config;
    config.scheme = mitigate::MitigationKind::kSecded;
    config.threads = 1;
    config.seed = 0x5E11E;
    if (plane_on) {
      // ops = footprint x kPasses, so each tenant is one write pass plus
      // kPasses-1 read passes -- the same read/write mix as the bare arm.
      serve::PlaneConfig plane_config;
      plane_config.tenants = serve::make_tenant_set(
          4, {serve::WorkloadMix::kStreaming},
          /*ops=*/2048 * kPasses,
          /*footprint_beats=*/2048, /*quota_per_epoch=*/8192);
      plane_config.seed = 0x5E11E;
      plane_config.chunk_beats = 512;
      plane.emplace(std::move(plane_config));
      config.source = &*plane;
      config.ops_per_epoch = 2048;
    } else {
      config.streaming_passes = kPasses;
    }
    fleet.emplace(*board, std::move(config));
    state.ResumeTiming();
    auto report = fleet->run();
    if (!report.is_ok()) {
      state.SkipWithError("fleet run failed");
      break;
    }
    ops += report.value().ops;
  }
  state.SetLabel(plane_on ? "plane" : "bare");
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}
BENCHMARK(BM_TenantServe)
    ->Args({1200, 0})
    ->Args({1200, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main so the JSON context records whether *this* binary (and the
// hbmvolt library linked into it) was built with optimizations -- the CI
// perf gate refuses numbers from a debug build.  google-benchmark's own
// `library_build_type` field only describes the benchmark library, which
// distro packages sometimes ship as debug.
int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("hbmvolt_build_type", "release");
#else
  benchmark::AddCustomContext("hbmvolt_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
