// Shared setup for the experiment-regeneration benches: a default board
// and the sweep configurations the paper uses.  Batch sizes are reduced
// from the paper's 130 (the simulated fault sets are deterministic at a
// fixed voltage; on silicon the repetitions fight measurement noise --
// see bench/ablation_batch_size.cpp for the sizing analysis).

#pragma once

#include <cstdio>

#include "board/vcu128.hpp"
#include "core/reliability_tester.hpp"

namespace hbmvolt::bench {

inline board::BoardConfig default_board_config() {
  board::BoardConfig config;
  config.geometry = hbm::HbmGeometry::simulation_default();
  config.monitor_config.noise_sigma_amps = 0.002;
  return config;
}

inline core::ReliabilityConfig full_sweep_config(unsigned batch = 2) {
  core::ReliabilityConfig config;
  config.sweep = {Millivolts{1200}, Millivolts{810}, 10};
  config.batch_size = batch;
  config.crash_policy = core::CrashPolicy::kStop;
  return config;
}

/// Shorter sweep for throughput benchmarking: still crosses the fault
/// onset (so overlays get exercised) but keeps one iteration sub-second.
inline core::ReliabilityConfig bench_sweep_config() {
  core::ReliabilityConfig config;
  config.sweep = {Millivolts{1200}, Millivolts{900}, 50};
  config.batch_size = 1;
  config.crash_policy = core::CrashPolicy::kStop;
  return config;
}

inline void print_banner(const char* title) {
  std::printf("==========================================================\n");
  std::printf("%s\n", title);
  std::printf("  (simulated VCU128; geometry scaled -- see DESIGN.md)\n");
  std::printf("==========================================================\n");
}

}  // namespace hbmvolt::bench
