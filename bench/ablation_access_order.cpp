// Ablation: access order (the paper's "sequential access" choice in
// Algorithm 1).
//
// Two claims checked here:
//   1. The stuck-at fault map is access-order independent -- a shuffled
//      permutation of the same address range finds the identical flips,
//      so sequential order sacrifices no coverage.
//   2. Sequential order is the *fast* choice: with command-level DRAM
//      timing enabled, a random visiting order row-thrashes the banks
//      and stretches each test pass by an order of magnitude.

#include <cstdio>

#include "bench_common.hpp"

using namespace hbmvolt;

int main() {
  bench::print_banner("Ablation: sequential vs random access order");

  board::Vcu128Board board(bench::default_board_config());
  (void)board.set_hbm_voltage(Millivolts{900});
  const unsigned pc = 18;
  const unsigned per_stack = board.geometry().pcs_per_stack();
  auto& controller = board.controller(pc / per_stack);
  const unsigned local = pc % per_stack;

  std::printf("%-28s %-12s %-12s %-14s %s\n", "configuration", "1->0",
              "0->1", "bandwidth", "pass time");
  for (const bool random : {false, true}) {
    for (const bool command_level : {false, true}) {
      controller.reset_ports();
      controller.port(local).set_timing_mode(
          command_level ? axi::TimingMode::kCommandLevel
                        : axi::TimingMode::kFlatEfficiency);
      axi::TgCommand command{axi::MacroOp::kWriteRead, 0, 0,
                             hbm::kBeatAllOnes, true};
      command.random_order = random;
      command.order_seed = 0xACCE55;
      (void)controller.run_on_port(local, command);
      const auto& stats = controller.port(local).stats();
      char label[64];
      std::snprintf(label, sizeof(label), "%s, %s timing",
                    random ? "random order" : "sequential",
                    command_level ? "command-level" : "flat");
      std::printf("%-28s %-12llu %-12llu %6.2f GB/s    %8.1f us\n", label,
                  static_cast<unsigned long long>(stats.flips_1to0),
                  static_cast<unsigned long long>(stats.flips_0to1),
                  controller.port(local).sustained_bandwidth().value,
                  to_seconds(stats.busy_time).value * 1e6);
    }
  }
  controller.port(local).set_timing_mode(axi::TimingMode::kFlatEfficiency);

  std::printf(
      "\nReading: flip counts are identical in every configuration --\n"
      "stuck-at faults do not care how you visit them -- while random\n"
      "order under realistic DRAM timing is ~8-10x slower per pass.\n"
      "Sequential access is therefore strictly better for Algorithm 1,\n"
      "which is exactly what the paper does.\n");
  return 0;
}
