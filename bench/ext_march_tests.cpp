// Extension experiment: the paper's Algorithm 1 vs classical March tests.
//
// Algorithm 1 (two solid patterns, 4 ops/cell) is the cheapest complete
// test for the stuck-at faults undervolting produces.  This bench runs
// MATS+ (5n), March X (6n) and March C- (10n) over weak PCs at several
// unsafe voltages and shows all of them find *exactly* the same faulty
// cells -- at 1.25-2.5x the cost.  (March C-'s extra strength targets
// coupling faults, which voltage underscaling does not produce in this
// model or in the paper's observations.)

#include <cstdio>

#include "bench_common.hpp"
#include "faults/fault_overlay.hpp"
#include "memtest/march.hpp"

using namespace hbmvolt;

int main() {
  bench::print_banner("Extension: Algorithm 1 vs March memory tests");

  board::Vcu128Board board(bench::default_board_config());
  const unsigned pc = 18;  // weakest PC
  const unsigned per_stack = board.geometry().pcs_per_stack();
  auto& stack = board.stack(pc / per_stack);
  memtest::MarchRunner runner(stack, pc % per_stack);

  const auto algorithms = memtest::all_march_algorithms();

  for (const int mv : {950, 920, 890, 860}) {
    (void)board.set_hbm_voltage(Millivolts{mv});
    const std::uint64_t truth = board.injector().overlay(pc).total_count();
    std::printf("\nPC%u at %.2fV -- ground truth: %llu stuck cells\n", pc,
                mv / 1000.0, static_cast<unsigned long long>(truth));
    std::printf("  %-22s %-10s %-14s %-10s %s\n", "algorithm", "ops/cell",
                "faulty cells", "coverage", "relative cost");
    for (const auto& algorithm : algorithms) {
      auto result = runner.run(algorithm);
      if (!result.is_ok()) {
        std::fprintf(stderr, "%s failed: %s\n", algorithm.name.c_str(),
                     result.status().to_string().c_str());
        return 1;
      }
      const double coverage =
          truth ? 100.0 * static_cast<double>(result.value().faulty_cells) /
                      static_cast<double>(truth)
                : 100.0;
      std::printf("  %-22s %-10llu %-14llu %5.1f%%     %.2fx\n",
                  algorithm.name.c_str(),
                  static_cast<unsigned long long>(algorithm.ops_per_cell()),
                  static_cast<unsigned long long>(result.value().faulty_cells),
                  coverage,
                  static_cast<double>(algorithm.ops_per_cell()) / 4.0);
    }
  }

  std::printf(
      "\nReading: every complete test (reads each cell in both states)\n"
      "recovers the identical stuck-cell set; the paper's two-solid test\n"
      "is the cheapest member of that family, which is why Algorithm 1\n"
      "is the right methodology for undervolting characterization.\n");
  (void)board.set_hbm_voltage(Millivolts{1200});
  return 0;
}
