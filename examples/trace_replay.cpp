// Trace replay: measure a real workload's fault exposure on undervolted
// HBM.
//
//   ./build/examples/trace_replay [--trace FILE] [--pc N] [--mv MV]
//
// Without --trace, a built-in workload mix is generated and also written
// to /tmp/hbmvolt_example.trace so you can see the format (one access
// per line: "R <beat>" / "W <beat>", '#' comments).  The replay reports
// corrupted reads, stuck cells touched, and footprint at the chosen
// voltage -- the application-side view of the paper's fault map.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "board/vcu128.hpp"
#include "workload/trace.hpp"

using namespace hbmvolt;

namespace {

Result<workload::AccessTrace> load_trace(const char* path) {
  std::ifstream in(path);
  if (!in) return not_found(std::string("cannot open ") + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return workload::AccessTrace::from_text(buffer.str());
}

// Flags parse strictly: an unparseable or out-of-range value exits 2
// naming the knob and the accepted range, instead of atoi() silently
// turning "90O" into 90 and replaying the wrong experiment.
[[noreturn]] void bad_knob(const char* name, const char* value,
                           const char* accepted) {
  std::fprintf(stderr, "%s=\"%s\" is invalid; accepted: %s\n", name, value,
               accepted);
  std::exit(2);
}

long parse_long(const char* name, const char* text, long lo, long hi,
                const char* accepted) {
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || value < lo || value > hi) {
    bad_knob(name, text, accepted);
  }
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  const char* trace_path = nullptr;
  unsigned pc = 18;
  int mv = 900;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--trace") == 0) {
      trace_path = argv[i + 1];
    } else if (std::strcmp(argv[i], "--pc") == 0) {
      pc = static_cast<unsigned>(parse_long(
          "--pc", argv[i + 1], 0, 255, "a pseudo-channel index in [0, 255]"));
    } else if (std::strcmp(argv[i], "--mv") == 0) {
      mv = static_cast<int>(parse_long("--mv", argv[i + 1], 500, 1500,
                                       "millivolts in [500, 1500]"));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trace FILE] [--pc N] [--mv MV]\n", argv[0]);
      return 2;
    }
  }

  board::BoardConfig config;
  config.geometry = hbm::HbmGeometry::simulation_default();
  board::Vcu128Board board(config);
  if (pc >= board.total_ports()) {
    std::fprintf(stderr, "PC %u out of range\n", pc);
    return 2;
  }

  workload::AccessTrace trace;
  if (trace_path != nullptr) {
    auto loaded = load_trace(trace_path);
    if (!loaded.is_ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().to_string().c_str());
      return 1;
    }
    trace = std::move(loaded).value();
    std::printf("loaded %zu accesses from %s\n", trace.size(), trace_path);
  } else {
    const std::uint64_t beats = board.geometry().beats_per_pc();
    trace = workload::make_hot_set(beats, beats * 2, 0.1, 0.8, 0x7ACE);
    std::ofstream out("/tmp/hbmvolt_example.trace");
    out << "# generated hot-set workload (10% of beats get 80% of traffic)\n"
        << trace.to_text();
    std::printf("generated %zu accesses (saved to "
                "/tmp/hbmvolt_example.trace)\n",
                trace.size());
  }

  if (!board.set_hbm_voltage(Millivolts{mv}).is_ok() ||
      !board.responding()) {
    std::fprintf(stderr, "voltage %d mV not operable (crash region?)\n", mv);
    return 1;
  }

  const unsigned per_stack = board.geometry().pcs_per_stack();
  auto result = workload::replay_exposure(board.stack(pc / per_stack),
                                          pc % per_stack, trace);
  if (!result.is_ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }
  const auto& r = result.value();
  const double p_nom = board.power_model().power(Millivolts{1200}, 1.0).value;
  const double p_now =
      board.power_model().power(Millivolts{mv}, 1.0).value;

  std::printf("\nreplay of PC%u at %.2fV (%.2fx power savings):\n", pc,
              mv / 1000.0, p_nom / p_now);
  std::printf("  accesses          %llu (%llu writes, %llu reads)\n",
              static_cast<unsigned long long>(r.accesses),
              static_cast<unsigned long long>(r.writes),
              static_cast<unsigned long long>(r.reads));
  std::printf("  footprint         %llu beats\n",
              static_cast<unsigned long long>(r.footprint_beats));
  std::printf("  corrupted reads   %llu (%.4f%%)\n",
              static_cast<unsigned long long>(r.corrupted_reads),
              r.corrupted_read_fraction() * 100.0);
  std::printf("  flipped bits      %llu\n",
              static_cast<unsigned long long>(r.flipped_bits));
  std::printf("  stuck cells hit   %llu\n",
              static_cast<unsigned long long>(
                  r.distinct_stuck_cells_touched));
  return 0;
}
