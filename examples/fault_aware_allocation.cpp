// Fault-aware memory allocation: the paper's §III-C trade-off in action.
//
// An application declares how much HBM capacity it needs and what fault
// rate it can tolerate.  The allocator characterizes the device once
// (Algorithm 1 sweep), then uses the TradeoffAnalyzer to pick the deepest
// safe voltage and the concrete set of pseudo-channels to enable --
// trading capacity it does not need for power it wants back.  The chosen
// plan is then *validated* by running pattern tests on exactly those PCs
// at the chosen voltage.
//
// Run: ./build/examples/fault_aware_allocation

#include <cstdio>

#include "board/vcu128.hpp"
#include "core/reliability_tester.hpp"
#include "core/tradeoff.hpp"

using namespace hbmvolt;

namespace {

struct AppRequirement {
  const char* name;
  unsigned required_pcs;      // capacity, in 256 MB pseudo-channels
  double tolerable_rate;      // acceptable fraction of faulty bits
};

void execute_plan(board::Vcu128Board& board, const core::UndervoltPlan& plan,
                  const faults::FaultMap& map) {
  // Apply the plan: undervolt and enable only the chosen PCs.
  (void)board.set_hbm_voltage(plan.voltage);
  const unsigned per_stack = board.geometry().pcs_per_stack();
  std::uint32_t mask[2] = {0, 0};
  for (const unsigned pc : plan.pcs) {
    mask[pc / per_stack] |= 1u << (pc % per_stack);
  }
  for (unsigned s = 0; s < 2; ++s) {
    board.controller(s).set_enabled_mask(mask[s]);
    board.controller(s).reset_ports();
  }

  // Validate: measured fault rate on the enabled PCs.
  axi::TgCommand ones{axi::MacroOp::kWriteRead, 0, 0, hbm::kBeatAllOnes,
                      true};
  axi::TgCommand zeros{axi::MacroOp::kWriteRead, 0, 0, hbm::kBeatAllZeros,
                       true};
  std::uint64_t flips = 0;
  std::uint64_t bits = 0;
  for (const auto& command : {ones, zeros}) {
    for (const auto& result : board.run_traffic(command)) {
      flips += result.totals().total_flips();
      bits += result.totals().bits_checked;
    }
  }
  const double measured = bits ? static_cast<double>(flips) / bits : 0.0;

  const auto power = board.measure_power_averaged(8);
  std::printf("    validated: %llu flips / %llu bits = %.2e rate "
              "(tolerance %.2e)\n",
              static_cast<unsigned long long>(flips),
              static_cast<unsigned long long>(bits), measured,
              plan.tolerable_rate);
  std::printf("    measured power: %.2f W\n",
              power.is_ok() ? power.value().value : -1.0);
  (void)map;
}

}  // namespace

int main() {
  board::BoardConfig config;
  config.geometry = hbm::HbmGeometry::simulation_default();
  board::Vcu128Board board(config);

  std::printf("Characterizing the device (Algorithm 1 sweep)...\n");
  core::ReliabilityConfig rel_config;
  rel_config.sweep = {Millivolts{1200}, Millivolts{810}, 10};
  rel_config.batch_size = 1;
  core::ReliabilityTester tester(board, rel_config);
  auto map_result = tester.run();
  if (!map_result.is_ok()) {
    std::fprintf(stderr, "characterization failed: %s\n",
                 map_result.status().to_string().c_str());
    return 1;
  }
  const auto map = std::move(map_result).value();
  core::TradeoffAnalyzer analyzer(map, Millivolts{1200},
                                  &board.power_model());

  const double nominal_power =
      board.power_model().power(Millivolts{1200}, 1.0).value;
  std::printf("done. Nominal full-load power: %.1f W\n\n", nominal_power);

  const AppRequirement apps[] = {
      // Fault-intolerant, needs everything: guardband only (paper: HATCH,
      // AxleDB-style exact query processing).
      {"exact-query-engine (all 32 PCs, zero faults)", 32, 0.0},
      // Fault-intolerant but small: ride the per-PC variation (paper's
      // "7 fault-free PCs at 0.95V" example).
      {"checkpoint-buffer (7 PCs, zero faults)", 7, 0.0},
      // Tolerant, half capacity (paper's 0.90V example).
      {"video-analytics cache (16 PCs, 1e-4 tolerable)", 16, 1e-4},
      // Very tolerant (EDEN-style approximate DNN buffers).
      {"approximate-DNN weights (8 PCs, 1e-2 tolerable)", 8, 1e-2},
  };

  for (const auto& app : apps) {
    std::printf("%s\n", app.name);
    const auto plan = analyzer.plan(app.required_pcs, app.tolerable_rate);
    if (!plan.has_value()) {
      std::printf("    no feasible operating point\n\n");
      continue;
    }
    std::printf("    plan: %.2fV, %.2fx power savings, PCs:",
                plan->voltage.volts(), plan->savings_factor);
    for (const unsigned pc : plan->pcs) std::printf(" %u", pc);
    std::printf("\n");
    execute_plan(board, *plan, map);

    // Reset for the next application.
    (void)board.power_cycle();
    board.set_active_ports(0);
    std::printf("\n");
  }
  return 0;
}
