// Resilient serving soak: run the ReliableChannel fleet through a chaos
// fault storm and prove the headline invariant -- no read ever returns
// data that mismatches the host-side journal.
//
//   ./build/examples/resilient_serving
//
// Every PC on a tiny board serves a deterministic uniform-random op
// stream at an undervolted supply while the chaos injector fires
// weak-cell bursts and bit rot.  The degradation ladder (correct ->
// retire -> raise voltage -> power-cycle) absorbs whatever the storm
// does; the process exits nonzero if a single corrupt beat was delivered
// or the run fails outright.
//
// Knobs (environment variables, all optional; an unparseable value
// fails fast with exit code 2 naming the bad knob and what it accepts):
//   HBMVOLT_SOAK_OPS=N       foreground ops per PC (default 8192)
//   HBMVOLT_SOAK_MV=N        starting supply in mV (default 950)
//   HBMVOLT_SOAK_THREADS=N   worker threads, 1 = serial (default 4)
//   HBMVOLT_SOAK_SEED=N      workload seed (default 101)
//   HBMVOLT_SOAK_VERIFY=1    re-run serially and require an identical
//                            fingerprint (byte-reproducibility check)
//   HBMVOLT_SOAK_ENGINE=S    bulk-operation engine: "range" (default,
//                            the bit-sliced bulk path) or "perbeat"
//                            (the one-beat-at-a-time reference); the
//                            two produce identical fingerprints
//   HBMVOLT_SOAK_SCHEME=S    mitigation scheme: "secded" (default),
//                            "dected", or "stripe" (cross-PC erasure
//                            stripe with online spare rebuild)
//   HBMVOLT_CHAOS_RATE=X     storm intensity multiplier (default 1.0;
//                            0 disables the storm entirely)
//   HBMVOLT_CHAOS_SEED=N     chaos schedule seed (default 404)
//   HBMVOLT_CHAOS_PC_KILL_RATE=X  per-tick whole-PC-kill probability
//                            (default 0; try 1e-5 with the stripe scheme)
//   HBMVOLT_SOAK_DASHBOARD=1 render the fleet health dashboard after
//                            every epoch barrier (per-PC scheme/stripe/
//                            rung/budget/spares/scrub rows, latency
//                            quantiles, alert state)
//   HBMVOLT_SOAK_ARTIFACTS=D write health.json, dashboard.txt, and
//                            alerts.jsonl into directory D after the run
//                            (plus tenants.json when the plane is on)
//   HBMVOLT_SOAK_TENANTS=N   drive the fleet through the multi-tenant
//                            request plane with N tenants instead of the
//                            bare per-PC op stream (default 0 = bare);
//                            each tenant gets HBMVOLT_SOAK_OPS beats of
//                            demand and the run reports per-tenant
//                            admission/shed/SLO outcomes
//   HBMVOLT_SOAK_MIX=S       comma list of tenant workload mixes cycled
//                            across the tenant set: zipfian, streaming,
//                            pointer_chase, uniform (default all four)
//   HBMVOLT_SOAK_QOS=S       "alternate" guaranteed/best-effort across
//                            the tenant set (default), or force every
//                            tenant "guaranteed" / "best_effort"
//   HBMVOLT_CHAOS_SURGE_RATE=X  per-(tenant, epoch) probability of a 4x
//                            admission surge (default 0; tenants only)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "board/vcu128.hpp"
#include "chaos/chaos.hpp"
#include "mitigate/scheme.hpp"
#include "runtime/fleet.hpp"
#include "runtime/health.hpp"
#include "serve/plane.hpp"
#include "serve/tenant.hpp"
#include "telemetry/hdr_histogram.hpp"
#include "telemetry/telemetry.hpp"

using namespace hbmvolt;

namespace {

// Every knob parses strictly: an unrecognized or trailing-garbage value
// aborts the soak (exit 2) naming the knob and what it accepts, instead
// of silently running a different experiment than the one asked for.
[[noreturn]] void bad_knob(const char* name, const char* value,
                           const char* accepted) {
  std::fprintf(stderr, "%s=\"%s\" is invalid; accepted: %s\n", name, value,
               accepted);
  std::exit(2);
}

double env_double(const char* name, double fallback) {
  const char* text = std::getenv(name);
  if (text == nullptr) return fallback;
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0' || value < 0.0) {
    bad_knob(name, text, "a non-negative decimal number");
  }
  return value;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* text = std::getenv(name);
  if (text == nullptr) return fallback;
  char* end = nullptr;
  const std::uint64_t value = std::strtoull(text, &end, 0);
  // strtoull silently wraps "-5" to a huge value; reject signs outright.
  if (end == text || *end != '\0' || text[0] == '-' || text[0] == '+') {
    bad_knob(name, text, "an unsigned integer (decimal, 0x hex, or octal)");
  }
  return value;
}

runtime::ChannelEngine env_engine() {
  const char* text = std::getenv("HBMVOLT_SOAK_ENGINE");
  if (text == nullptr || std::strcmp(text, "range") == 0) {
    return runtime::ChannelEngine::kRange;
  }
  if (std::strcmp(text, "perbeat") == 0) {
    return runtime::ChannelEngine::kPerBeat;
  }
  bad_knob("HBMVOLT_SOAK_ENGINE", text, "\"range\" or \"perbeat\"");
}

mitigate::MitigationKind env_scheme() {
  const char* text = std::getenv("HBMVOLT_SOAK_SCHEME");
  if (text == nullptr) return mitigate::MitigationKind::kSecded;
  mitigate::MitigationKind kind;
  if (!mitigate::parse_mitigation(text, &kind)) {
    bad_knob("HBMVOLT_SOAK_SCHEME", text,
             "\"secded\", \"dected\", or \"stripe\"");
  }
  return kind;
}

std::vector<serve::WorkloadMix> env_mixes() {
  const char* text = std::getenv("HBMVOLT_SOAK_MIX");
  if (text == nullptr) {
    return {serve::WorkloadMix::kZipfian, serve::WorkloadMix::kStreaming,
            serve::WorkloadMix::kPointerChase, serve::WorkloadMix::kUniform};
  }
  std::vector<serve::WorkloadMix> mixes;
  std::string_view rest(text);
  while (true) {
    const std::size_t comma = rest.find(',');
    auto mix = serve::parse_mix(rest.substr(0, comma));
    if (!mix.is_ok()) {
      bad_knob("HBMVOLT_SOAK_MIX", text,
               "a comma list of zipfian, streaming, pointer_chase, uniform");
    }
    mixes.push_back(mix.value());
    if (comma == std::string_view::npos) break;
    rest.remove_prefix(comma + 1);
  }
  return mixes;
}

/// True (and *forced set) when HBMVOLT_SOAK_QOS overrides every tenant's
/// QoS class; false for the default alternating assignment.
bool env_qos(serve::QosClass* forced) {
  const char* text = std::getenv("HBMVOLT_SOAK_QOS");
  if (text == nullptr || std::strcmp(text, "alternate") == 0) return false;
  auto qos = serve::parse_qos(text);
  if (!qos.is_ok()) {
    bad_knob("HBMVOLT_SOAK_QOS", text,
             "\"alternate\", \"guaranteed\", or \"best_effort\"");
  }
  *forced = qos.value();
  return true;
}

runtime::FleetConfig soak_fleet(std::uint64_t ops_per_pc, unsigned threads,
                                std::uint64_t seed) {
  runtime::FleetConfig config;
  config.scheme = env_scheme();
  config.ops_per_pc = ops_per_pc;
  config.ops_per_epoch = 2048;
  config.seed = seed;
  config.threads = threads;
  config.channel.spare_fraction = 0.25;
  config.channel.engine = env_engine();
  return config;
}

/// Fleet-owned observability state, copied out before the fleet (and the
/// board backing it) is destroyed at the end of run_soak.
struct SoakArtifacts {
  std::string health_json;
  std::string dashboard;
  std::string alerts_jsonl;
  std::string tenants_json;
};

Result<runtime::FleetReport> run_soak(const runtime::FleetConfig& base,
                                      int start_mv, double chaos_rate,
                                      std::uint64_t chaos_seed,
                                      double pc_kill_rate, double surge_rate,
                                      const std::vector<serve::TenantSpec>&
                                          tenants,
                                      bool print_storm, bool dashboard,
                                      SoakArtifacts* artifacts) {
  board::BoardConfig board_config;
  board_config.geometry = hbm::HbmGeometry::test_tiny();
  board::Vcu128Board board(board_config);
  HBMVOLT_RETURN_IF_ERROR(board.set_hbm_voltage(Millivolts{start_mv}));

  chaos::ChaosConfig chaos_config;
  chaos_config.seed = chaos_seed;
  chaos_config.weak_burst_rate = 1e-4 * chaos_rate;
  chaos_config.bit_rot_rate = 1e-3 * chaos_rate;
  chaos_config.burst_cells = 4;
  chaos_config.pc_kill_rate = pc_kill_rate;
  chaos_config.tenant_surge_rate = surge_rate;
  chaos::ChaosInjector injector(board, chaos_config);

  // The plane must outlive the fleet run; the fleet only borrows it
  // through FleetConfig::source.
  std::optional<serve::RequestPlane> plane;
  runtime::FleetConfig config = base;
  if (!tenants.empty()) {
    serve::PlaneConfig plane_config;
    plane_config.tenants = tenants;
    plane_config.seed = base.seed;
    if (surge_rate > 0.0) plane_config.chaos = &injector;
    plane.emplace(std::move(plane_config));
    config.source = &*plane;
  }
  if (chaos_rate > 0.0 || pc_kill_rate > 0.0) {
    config.storm_hook = [&injector](unsigned pc, std::uint64_t tick) {
      return injector.storm_tick(pc, tick);
    };
  }
  if (dashboard) {
    config.epoch_hook = [](const runtime::EpochStatus& status) {
      telemetry::Telemetry* tel = telemetry::Telemetry::active();
      std::fputs(runtime::render_dashboard(
                     *status.health, status.alerts,
                     tel != nullptr ? &tel->metrics() : nullptr)
                     .c_str(),
                 stdout);
      std::fputc('\n', stdout);
    };
  }

  runtime::ServingFleet fleet(board, config);
  auto report = fleet.run();
  if (artifacts != nullptr) {
    telemetry::Telemetry* tel = telemetry::Telemetry::active();
    artifacts->health_json = fleet.health().to_json();
    artifacts->dashboard = runtime::render_dashboard(
        fleet.health(), &fleet.alerts(),
        tel != nullptr ? &tel->metrics() : nullptr);
    artifacts->alerts_jsonl = fleet.alerts().to_jsonl();
    if (plane.has_value()) artifacts->tenants_json = plane->to_json();
  }
  if (report.is_ok() && print_storm) {
    std::printf("  storm             %llu weak-cell bursts, %llu bit-rot "
                "flips, %llu PC kills, %llu tenant surges\n",
                static_cast<unsigned long long>(
                    injector.injected(chaos::FaultKind::kWeakCellBurst)),
                static_cast<unsigned long long>(
                    injector.injected(chaos::FaultKind::kBitRot)),
                static_cast<unsigned long long>(
                    injector.injected(chaos::FaultKind::kPcKill)),
                static_cast<unsigned long long>(
                    injector.injected(chaos::FaultKind::kTenantSurge)));
  }
  if (report.is_ok() && print_storm && plane.has_value()) {
    std::printf("  brownout          level %u at the final barrier\n",
                plane->brownout_level());
    for (std::size_t t = 0; t < plane->tenant_count(); ++t) {
      const serve::TenantSpec& spec = plane->spec(t);
      const serve::TenantStats& stats = plane->stats(t);
      const auto q = plane->latency(t).quantiles();
      std::printf("  tenant %-4s %-11s admitted %llu  shed %llu  stale "
                  "%llu  hedged %llu  p99 %s  slo %s\n",
                  spec.name.c_str(), serve::to_string(spec.qos),
                  static_cast<unsigned long long>(stats.admitted),
                  static_cast<unsigned long long>(stats.shed_total()),
                  static_cast<unsigned long long>(stats.stale_served),
                  static_cast<unsigned long long>(stats.hedged),
                  telemetry::format_duration_ns(q.p99).c_str(),
                  plane->slo_met(t) ? "ok" : "MISS");
    }
  }
  return report;
}

/// "latency read   p50 812 ns  p90 ...  (n=...)" from the merged HDR
/// family, or nothing when telemetry recorded no samples.
void print_latency_summary(const telemetry::MetricRegistry& metrics) {
  for (const auto& family : metrics.hdr_family_values()) {
    if (family.name != "latency.read" && family.name != "latency.write") {
      continue;
    }
    const telemetry::HdrSnapshot& m = family.merged;
    if (m.count == 0) continue;
    std::printf("  latency %-9s p50 %s  p90 %s  p99 %s  p999 %s  (n=%llu)\n",
                family.name == "latency.read" ? "read" : "write",
                telemetry::format_duration_ns(m.q.p50).c_str(),
                telemetry::format_duration_ns(m.q.p90).c_str(),
                telemetry::format_duration_ns(m.q.p99).c_str(),
                telemetry::format_duration_ns(m.q.p999).c_str(),
                static_cast<unsigned long long>(m.count));
  }
}

bool write_file(const std::filesystem::path& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary);
  out << body;
  out.flush();
  return out.good();
}

}  // namespace

int main() {
  const std::uint64_t ops = env_u64("HBMVOLT_SOAK_OPS", 8192);
  const int mv = static_cast<int>(env_u64("HBMVOLT_SOAK_MV", 950));
  const unsigned threads =
      static_cast<unsigned>(env_u64("HBMVOLT_SOAK_THREADS", 4));
  const std::uint64_t seed = env_u64("HBMVOLT_SOAK_SEED", 101);
  const double chaos_rate = env_double("HBMVOLT_CHAOS_RATE", 1.0);
  const std::uint64_t chaos_seed = env_u64("HBMVOLT_CHAOS_SEED", 404);
  const double pc_kill_rate = env_double("HBMVOLT_CHAOS_PC_KILL_RATE", 0.0);
  const double surge_rate = env_double("HBMVOLT_CHAOS_SURGE_RATE", 0.0);
  const std::uint64_t tenant_count = env_u64("HBMVOLT_SOAK_TENANTS", 0);
  const bool verify = env_u64("HBMVOLT_SOAK_VERIFY", 0) != 0;
  const bool dashboard = env_u64("HBMVOLT_SOAK_DASHBOARD", 0) != 0;
  const char* artifacts_dir = std::getenv("HBMVOLT_SOAK_ARTIFACTS");

  std::vector<serve::TenantSpec> tenants;
  if (tenant_count > 0) {
    tenants = serve::make_tenant_set(static_cast<unsigned>(tenant_count),
                                     env_mixes(), /*ops=*/ops,
                                     /*footprint_beats=*/2048,
                                     /*quota_per_epoch=*/512);
    serve::QosClass forced;
    if (env_qos(&forced)) {
      for (auto& spec : tenants) spec.qos = forced;
    }
  }

  telemetry::Telemetry telemetry;
  telemetry::ScopedTelemetry scope(telemetry);

  std::printf("resilient serving soak: %llu ops/PC at %d mV, %u thread(s), "
              "chaos x%.2f, %s engine, %s scheme, %llu tenant(s)\n",
              static_cast<unsigned long long>(ops), mv, threads, chaos_rate,
              env_engine() == runtime::ChannelEngine::kRange ? "range"
                                                             : "perbeat",
              mitigate::to_string(env_scheme()),
              static_cast<unsigned long long>(tenant_count));

  runtime::FleetConfig config = soak_fleet(ops, threads, seed);
  SoakArtifacts artifacts;
  auto result =
      run_soak(config, mv, chaos_rate, chaos_seed, pc_kill_rate, surge_rate,
               tenants, true, dashboard,
               artifacts_dir != nullptr ? &artifacts : nullptr);
  if (!result.is_ok()) {
    std::fprintf(stderr, "soak failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }
  const runtime::FleetReport& r = result.value();

  std::printf("  ops               %llu (%llu reads, %llu writes)\n",
              static_cast<unsigned long long>(r.ops),
              static_cast<unsigned long long>(r.reads),
              static_cast<unsigned long long>(r.writes));
  std::printf("  corrupt reads     %llu\n",
              static_cast<unsigned long long>(r.corrupt_reads));
  std::printf("  escalated reads   %llu\n",
              static_cast<unsigned long long>(r.escalated_reads));
  std::printf("  reconstructed     %llu reads (stripe), %llu beats rebuilt\n",
              static_cast<unsigned long long>(r.reconstructed_reads),
              static_cast<unsigned long long>(r.rebuilt_beats));
  std::printf("  ladder            %llu raises, %llu power-cycles "
              "(fleet-level)\n",
              static_cast<unsigned long long>(r.raises),
              static_cast<unsigned long long>(r.power_cycles));
  std::printf("  final voltage     %d mV\n", r.final_voltage.value);
  std::printf("  fingerprint       %016llx\n",
              static_cast<unsigned long long>(r.fingerprint));
  if (tenant_count > 0) {
    std::printf("  tenant fp         %016llx\n",
                static_cast<unsigned long long>(r.tenant_fingerprint));
  }
  print_latency_summary(telemetry.metrics());

  if (artifacts_dir != nullptr) {
    std::error_code ec;
    std::filesystem::create_directories(artifacts_dir, ec);
    const std::filesystem::path dir(artifacts_dir);
    if (ec || !write_file(dir / "health.json", artifacts.health_json) ||
        !write_file(dir / "dashboard.txt", artifacts.dashboard) ||
        !write_file(dir / "alerts.jsonl", artifacts.alerts_jsonl) ||
        (!artifacts.tenants_json.empty() &&
         !write_file(dir / "tenants.json", artifacts.tenants_json))) {
      std::fprintf(stderr, "FAIL: could not write soak artifacts to %s\n",
                   artifacts_dir);
      return 1;
    }
    std::printf("  artifacts         %s/{health.json,dashboard.txt,"
                "alerts.jsonl%s}\n",
                artifacts_dir,
                artifacts.tenants_json.empty() ? "" : ",tenants.json");
  }

  if (r.corrupt_reads > 0) {
    std::fprintf(stderr, "FAIL: %llu corrupt reads delivered\n",
                 static_cast<unsigned long long>(r.corrupt_reads));
    return 1;
  }

  if (verify) {
    runtime::FleetConfig serial = soak_fleet(ops, 1, seed);
    auto replay = run_soak(serial, mv, chaos_rate, chaos_seed, pc_kill_rate,
                           surge_rate, tenants, false, false, nullptr);
    if (!replay.is_ok()) {
      std::fprintf(stderr, "serial replay failed: %s\n",
                   replay.status().to_string().c_str());
      return 1;
    }
    if (replay.value().fingerprint != r.fingerprint) {
      std::fprintf(stderr,
                   "FAIL: serial fingerprint %016llx != parallel %016llx\n",
                   static_cast<unsigned long long>(replay.value().fingerprint),
                   static_cast<unsigned long long>(r.fingerprint));
      return 1;
    }
    if (replay.value().tenant_fingerprint != r.tenant_fingerprint) {
      std::fprintf(stderr,
                   "FAIL: serial tenant fingerprint %016llx != parallel "
                   "%016llx\n",
                   static_cast<unsigned long long>(
                       replay.value().tenant_fingerprint),
                   static_cast<unsigned long long>(r.tenant_fingerprint));
      return 1;
    }
    std::printf("  replay            serial fingerprint matches\n");
  }

  std::printf("PASS: zero corrupt reads\n");
  return 0;
}
