// Quickstart: the library in ~80 lines.
//
// Creates a simulated VCU128 board, measures power at nominal voltage,
// undervolts within the guardband (free 1.5x savings), pushes below the
// guardband (more savings, but bit flips appear), and finally crashes the
// stacks below V_critical and recovers with a power cycle.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "board/vcu128.hpp"

using namespace hbmvolt;

namespace {

double measure_watts(board::Vcu128Board& board) {
  auto power = board.measure_power_averaged(16);
  return power.is_ok() ? power.value().value : -1.0;
}

void run_pattern_test(board::Vcu128Board& board, const char* label) {
  axi::TgCommand command;
  command.op = axi::MacroOp::kWriteRead;
  command.pattern = hbm::kBeatAllOnes;
  std::uint64_t flips = 0;
  std::uint64_t bits = 0;
  for (const auto& result : board.run_traffic(command)) {
    const auto totals = result.totals();
    flips += totals.total_flips();
    bits += totals.bits_checked;
  }
  std::printf("  %-28s %llu bit flips in %llu bits tested\n", label,
              static_cast<unsigned long long>(flips),
              static_cast<unsigned long long>(bits));
}

}  // namespace

int main() {
  // A board with default (scaled) geometry: 2 stacks x 16 PCs, 64 KiB/PC.
  board::Vcu128Board board;
  board.set_active_ports(board.total_ports());

  std::printf("VCU128 HBM undervolting quickstart\n");
  std::printf("geometry: %u stacks, %u PCs, %llu bits per PC\n\n",
              board.geometry().stacks, board.geometry().total_pcs(),
              static_cast<unsigned long long>(board.geometry().bits_per_pc));

  // 1. Nominal operation: 1.20 V.
  const double p_nominal = measure_watts(board);
  std::printf("1.20V (nominal):   %.2f W\n", p_nominal);
  run_pattern_test(board, "pattern test @ 1.20V:");

  // 2. Guardband floor: 0.98 V -- full bandwidth, no faults, 1.5x power.
  (void)board.set_hbm_voltage(Millivolts{980});
  const double p_vmin = measure_watts(board);
  std::printf("\n0.98V (V_min):     %.2f W  -> %.2fx savings\n", p_vmin,
              p_nominal / p_vmin);
  run_pattern_test(board, "pattern test @ 0.98V:");

  // 3. Below the guardband: 0.90 V -- deeper savings, some flips.
  (void)board.set_hbm_voltage(Millivolts{900});
  const double p_090 = measure_watts(board);
  std::printf("\n0.90V (unsafe):    %.2f W  -> %.2fx savings\n", p_090,
              p_nominal / p_090);
  run_pattern_test(board, "pattern test @ 0.90V:");

  // 4. Deep undervolt: 0.85 V -- the paper's 2.3x point.
  (void)board.set_hbm_voltage(Millivolts{850});
  const double p_085 = measure_watts(board);
  std::printf("\n0.85V (deep):      %.2f W  -> %.2fx savings\n", p_085,
              p_nominal / p_085);
  run_pattern_test(board, "pattern test @ 0.85V:");

  // 5. Below V_critical the stacks crash; raising the voltage back does
  //    not help -- only a power cycle recovers them.
  (void)board.set_hbm_voltage(Millivolts{800});
  std::printf("\n0.80V: stacks responding? %s\n",
              board.responding() ? "yes" : "NO (crashed)");
  (void)board.set_hbm_voltage(Millivolts{1200});
  std::printf("back at 1.20V: responding? %s (crash latches)\n",
              board.responding() ? "yes" : "NO (crashed)");
  (void)board.power_cycle();
  std::printf("after power cycle: responding? %s\n",
              board.responding() ? "yes" : "NO");
  return 0;
}
