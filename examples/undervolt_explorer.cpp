// undervolt_explorer: command-line front-end over the characterization
// framework.  Sweeps the simulated board and emits figure data as ASCII
// tables or CSV.
//
// Usage:
//   undervolt_explorer [--mode power|faults|tradeoff|governor|campaign|all]
//                      [--start MV] [--stop MV] [--step MV]
//                      [--batch N] [--seed N] [--csv] [--tolerate RATE]
//                      [--out DIR]
//                      [--config FILE.ini] [--save-config FILE.ini]
//
// Examples:
//   undervolt_explorer --mode faults --start 1000 --stop 840 --step 20
//   undervolt_explorer --mode power --csv > power.csv
//   undervolt_explorer --save-config board.ini   # write a template
//   undervolt_explorer --config hot_board.ini --mode faults

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <fstream>

#include "board/config_io.hpp"
#include "board/vcu128.hpp"
#include "core/campaign.hpp"
#include "core/governor.hpp"
#include "core/power_characterizer.hpp"
#include "core/reliability_tester.hpp"
#include "core/report.hpp"
#include "core/tradeoff.hpp"

using namespace hbmvolt;

namespace {

struct Options {
  std::string mode = "all";
  int start_mv = 1200;
  int stop_mv = 810;
  int step_mv = 10;
  unsigned batch = 1;
  std::uint64_t seed = 0xB0A2D;
  bool csv = false;
  double tolerate = 0.0;
  std::string out_dir = "artifacts";
  std::string config_path;
  std::string save_config_path;
};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--mode power|faults|tradeoff|all] [--start MV] "
               "[--stop MV] [--step MV] [--batch N] [--seed N] [--csv] "
               "[--config FILE.ini] [--save-config FILE.ini]\n",
               argv0);
}

// Numeric flags parse strictly and fail fast: an unparseable or
// out-of-range value exits 2 naming the knob and the accepted range,
// instead of atoi() silently mapping garbage to 0 and sweeping a
// different voltage window than the one asked for.
[[noreturn]] void bad_knob(const char* name, const char* value,
                           const char* accepted) {
  std::fprintf(stderr, "%s=\"%s\" is invalid; accepted: %s\n", name, value,
               accepted);
  std::exit(2);
}

int parse_mv(const char* name, const char* text) {
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || value < 500 || value > 1500) {
    bad_knob(name, text, "millivolts in [500, 1500]");
  }
  return static_cast<int>(value);
}

bool parse(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--mode") {
      const char* value = next();
      if (value == nullptr) return false;
      options.mode = value;
      if (options.mode != "power" && options.mode != "faults" &&
          options.mode != "tradeoff" && options.mode != "all") {
        bad_knob("--mode", value, "power, faults, tradeoff, or all");
      }
    } else if (arg == "--start") {
      const char* value = next();
      if (value == nullptr) return false;
      options.start_mv = parse_mv("--start", value);
    } else if (arg == "--stop") {
      const char* value = next();
      if (value == nullptr) return false;
      options.stop_mv = parse_mv("--stop", value);
    } else if (arg == "--step") {
      const char* value = next();
      if (value == nullptr) return false;
      char* end = nullptr;
      const long step = std::strtol(value, &end, 10);
      if (end == value || *end != '\0' || step <= 0 || step > 500) {
        bad_knob("--step", value, "a step in millivolts in [1, 500]");
      }
      options.step_mv = static_cast<int>(step);
    } else if (arg == "--batch") {
      const char* value = next();
      if (value == nullptr) return false;
      char* end = nullptr;
      const unsigned long batch = std::strtoul(value, &end, 10);
      if (end == value || *end != '\0' || value[0] == '-' || batch == 0 ||
          batch > 64) {
        bad_knob("--batch", value, "a batch size in [1, 64]");
      }
      options.batch = static_cast<unsigned>(batch);
    } else if (arg == "--seed") {
      const char* value = next();
      if (value == nullptr) return false;
      char* end = nullptr;
      const std::uint64_t seed = std::strtoull(value, &end, 0);
      // strtoull silently wraps "-5" to a huge value; reject signs.
      if (end == value || *end != '\0' || value[0] == '-' ||
          value[0] == '+') {
        bad_knob("--seed", value,
                 "an unsigned integer (decimal, 0x hex, or octal)");
      }
      options.seed = seed;
    } else if (arg == "--csv") {
      options.csv = true;
    } else if (arg == "--tolerate") {
      const char* value = next();
      if (value == nullptr) return false;
      char* end = nullptr;
      const double tolerate = std::strtod(value, &end);
      if (end == value || *end != '\0' || tolerate < 0.0 ||
          tolerate > 1.0) {
        bad_knob("--tolerate", value,
                 "a tolerable corrupted-read fraction in [0.0, 1.0]");
      }
      options.tolerate = tolerate;
    } else if (arg == "--out") {
      const char* value = next();
      if (value == nullptr) return false;
      options.out_dir = value;
    } else if (arg == "--config") {
      const char* value = next();
      if (value == nullptr) return false;
      options.config_path = value;
    } else if (arg == "--save-config") {
      const char* value = next();
      if (value == nullptr) return false;
      options.save_config_path = value;
    } else {
      usage(argv[0]);
      return false;
    }
  }
  if (options.step_mv <= 0 || options.start_mv < options.stop_mv ||
      options.batch == 0) {
    usage(argv[0]);
    return false;
  }
  return true;
}

int run_power(board::Vcu128Board& board, const Options& options) {
  core::PowerSweepConfig config;
  config.sweep = {Millivolts{options.start_mv}, Millivolts{options.stop_mv},
                  options.step_mv};
  config.samples = 8;
  core::PowerCharacterizer characterizer(board, config);
  auto result = characterizer.run();
  if (!result.is_ok()) {
    std::fprintf(stderr, "power sweep failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }
  const auto data = std::move(result).value();
  if (options.csv) {
    std::fputs(core::to_csv_fig2(data).c_str(), stdout);
  } else {
    std::fputs(core::render_fig2(data, options.step_mv * 5).c_str(), stdout);
    std::fputs(core::render_fig3(data, options.step_mv * 5).c_str(), stdout);
  }
  return 0;
}

Result<faults::FaultMap> run_reliability(board::Vcu128Board& board,
                                         const Options& options) {
  core::ReliabilityConfig config;
  config.sweep = {Millivolts{options.start_mv}, Millivolts{options.stop_mv},
                  options.step_mv};
  config.batch_size = options.batch;
  config.crash_policy = core::CrashPolicy::kPowerCycleAndContinue;
  core::ReliabilityTester tester(board, config);
  return tester.run();
}

int run_faults(board::Vcu128Board& board, const Options& options) {
  auto map = run_reliability(board, options);
  if (!map.is_ok()) {
    std::fprintf(stderr, "reliability sweep failed: %s\n",
                 map.status().to_string().c_str());
    return 1;
  }
  if (options.csv) {
    std::fputs(core::to_csv_fig5(map.value()).c_str(), stdout);
  } else {
    std::fputs(core::render_fig4(map.value()).c_str(), stdout);
    std::fputs(core::render_fig5(map.value(), options.step_mv).c_str(),
               stdout);
  }
  return 0;
}

int run_tradeoff(board::Vcu128Board& board, const Options& options) {
  auto map = run_reliability(board, options);
  if (!map.is_ok()) {
    std::fprintf(stderr, "reliability sweep failed: %s\n",
                 map.status().to_string().c_str());
    return 1;
  }
  core::TradeoffAnalyzer analyzer(map.value(), Millivolts{1200},
                                  &board.power_model());
  core::TradeoffConfig config;
  const auto points = analyzer.analyze(config);
  if (options.csv) {
    std::fputs(core::to_csv_fig6(points, config).c_str(), stdout);
  } else {
    std::fputs(core::render_fig6(points, config).c_str(), stdout);
  }
  return 0;
}

int run_governor(board::Vcu128Board& board, const Options& options) {
  core::GovernorConfig config;
  config.tolerable_rate = options.tolerate;
  config.step_mv = options.step_mv;
  config.probe_beats = board.geometry().beats_per_pc();
  core::UndervoltGovernor governor(board, config);
  auto result = governor.run();
  if (!result.is_ok()) {
    std::fprintf(stderr, "governor failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }
  const auto& r = result.value();
  std::printf("governor settled at %.2fV (%.2fx savings) after %u probes; "
              "converged: %s\n",
              r.settled.volts(), r.savings_factor, r.probes,
              r.converged ? "yes" : "no");
  return 0;
}

int run_campaign(board::Vcu128Board& board, const Options& options) {
  core::CampaignConfig config;
  config.output_dir = options.out_dir;
  config.reliability.batch_size = options.batch;
  core::Campaign campaign(board, config);
  auto result = campaign.run();
  if (!result.is_ok()) {
    std::fprintf(stderr, "campaign failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }
  std::fputs(core::render_headline(result.value().headline).c_str(),
             stdout);
  for (const auto& file : result.value().files_written) {
    std::printf("wrote %s\n", file.c_str());
  }
  // Phase timing + pipeline counters; trace.json in --out loads in
  // ui.perfetto.dev (one track per worker).
  if (!result.value().telemetry_summary.empty()) {
    std::printf("\n%s", result.value().telemetry_summary.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse(argc, argv, options)) return 2;

  board::BoardConfig config;
  config.geometry = hbm::HbmGeometry::simulation_default();
  if (!options.config_path.empty()) {
    auto loaded = board::load_board_config(options.config_path);
    if (!loaded.is_ok()) {
      std::fprintf(stderr, "config error: %s\n",
                   loaded.status().to_string().c_str());
      return 1;
    }
    config = std::move(loaded).value();
  }
  config.seed = options.seed;

  if (!options.save_config_path.empty()) {
    std::ofstream out(options.save_config_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n",
                   options.save_config_path.c_str());
      return 1;
    }
    out << board::board_config_to_ini(config).to_string();
    std::fprintf(stderr, "wrote %s\n", options.save_config_path.c_str());
    return 0;
  }

  board::Vcu128Board board(config);

  if (options.mode == "power") return run_power(board, options);
  if (options.mode == "faults") return run_faults(board, options);
  if (options.mode == "tradeoff") return run_tradeoff(board, options);
  if (options.mode == "governor") return run_governor(board, options);
  if (options.mode == "campaign") return run_campaign(board, options);
  if (options.mode == "all") {
    if (const int rc = run_power(board, options)) return rc;
    if (const int rc = run_faults(board, options)) return rc;
    return run_tradeoff(board, options);
  }
  usage(argv[0]);
  return 2;
}
