// Approximate inference on undervolted HBM -- the application class the
// paper's trade-off targets (cf. EDEN [Koppula+ MICRO'19], cited as [23]).
//
// A nearest-centroid classifier's int8 weight matrix lives in HBM.  As
// the supply voltage drops below the guardband, stuck-at faults corrupt
// stored weights; classification accuracy degrades gracefully while power
// savings grow.  The example prints the accuracy/power frontier and the
// effect of placing weights on strong vs weak pseudo-channels.
//
// Run: ./build/examples/approximate_inference

#include <algorithm>
#include <climits>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "board/vcu128.hpp"
#include "common/rng.hpp"

using namespace hbmvolt;

namespace {

constexpr unsigned kClasses = 16;
constexpr unsigned kDims = 32;       // one int8 vector = one beat
constexpr unsigned kSamples = 2000;

struct Dataset {
  std::vector<std::int8_t> centroids;  // kClasses x kDims (the "weights")
  std::vector<std::int8_t> samples;    // kSamples x kDims
  std::vector<unsigned> labels;
};

Dataset make_dataset(std::uint64_t seed) {
  Dataset data;
  Xoshiro256 rng(seed);
  data.centroids.resize(kClasses * kDims);
  for (auto& w : data.centroids) {
    w = static_cast<std::int8_t>(rng.bounded(201) - 100);
  }
  data.samples.resize(kSamples * kDims);
  data.labels.resize(kSamples);
  for (unsigned i = 0; i < kSamples; ++i) {
    const unsigned label = static_cast<unsigned>(rng.bounded(kClasses));
    data.labels[i] = label;
    for (unsigned d = 0; d < kDims; ++d) {
      const int noise = static_cast<int>(rng.bounded(121)) - 60;
      const int value = data.centroids[label * kDims + d] + noise;
      data.samples[i * kDims + d] =
          static_cast<std::int8_t>(std::clamp(value, -128, 127));
    }
  }
  return data;
}

/// Writes the weight matrix into one PC of the board, beat by beat.
void store_weights(board::Vcu128Board& board, unsigned pc_global,
                   const std::vector<std::int8_t>& weights) {
  const unsigned per_stack = board.geometry().pcs_per_stack();
  auto& stack = board.stack(pc_global / per_stack);
  const unsigned pc_local = pc_global % per_stack;
  for (std::size_t offset = 0; offset < weights.size(); offset += 32) {
    hbm::Beat beat{};
    std::memcpy(beat.data(), weights.data() + offset, 32);
    (void)stack.write_beat(pc_local, offset / 32, beat);
  }
}

/// Reads the weight matrix back (with whatever faults the voltage causes).
std::vector<std::int8_t> load_weights(board::Vcu128Board& board,
                                      unsigned pc_global, std::size_t size) {
  const unsigned per_stack = board.geometry().pcs_per_stack();
  auto& stack = board.stack(pc_global / per_stack);
  const unsigned pc_local = pc_global % per_stack;
  std::vector<std::int8_t> weights(size);
  for (std::size_t offset = 0; offset < size; offset += 32) {
    auto beat = stack.read_beat(pc_local, offset / 32);
    if (beat.is_ok()) {
      std::memcpy(weights.data() + offset, beat.value().data(), 32);
    }
  }
  return weights;
}

double accuracy(const Dataset& data, const std::vector<std::int8_t>& weights) {
  unsigned correct = 0;
  for (unsigned i = 0; i < kSamples; ++i) {
    long best = LONG_MAX;
    unsigned best_class = 0;
    for (unsigned c = 0; c < kClasses; ++c) {
      long dist = 0;
      for (unsigned d = 0; d < kDims; ++d) {
        const long diff = static_cast<long>(data.samples[i * kDims + d]) -
                          weights[c * kDims + d];
        dist += diff * diff;
      }
      if (dist < best) {
        best = dist;
        best_class = c;
      }
    }
    correct += best_class == data.labels[i] ? 1 : 0;
  }
  return static_cast<double>(correct) / kSamples;
}

double weight_bit_error_rate(const std::vector<std::int8_t>& a,
                             const std::vector<std::int8_t>& b) {
  std::uint64_t flipped = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    flipped += static_cast<unsigned>(
        __builtin_popcount(static_cast<std::uint8_t>(a[i] ^ b[i])));
  }
  return static_cast<double>(flipped) / (8.0 * static_cast<double>(a.size()));
}

void run_frontier(board::Vcu128Board& board, const Dataset& data,
                  unsigned pc_global, const char* label) {
  std::printf("\nWeights on PC%u (%s):\n", pc_global, label);
  std::printf("  %-8s %-10s %-14s %-10s\n", "voltage", "savings",
              "weight BER", "accuracy");
  const double p_nominal =
      board.power_model().power(Millivolts{1200}, 1.0).value;
  for (const int mv : {1200, 980, 950, 920, 900, 880, 870, 860, 850}) {
    (void)board.set_hbm_voltage(Millivolts{mv});
    store_weights(board, pc_global, data.centroids);
    const auto corrupted =
        load_weights(board, pc_global, data.centroids.size());
    const double p = board.power_model().power(Millivolts{mv}, 1.0).value;
    std::printf("  %.2fV   %5.2fx     %.2e       %5.1f%%\n", mv / 1000.0,
                p_nominal / p, weight_bit_error_rate(data.centroids, corrupted),
                accuracy(data, corrupted) * 100.0);
  }
  (void)board.set_hbm_voltage(Millivolts{1200});
}

}  // namespace

int main() {
  board::BoardConfig config;
  config.geometry = hbm::HbmGeometry::simulation_default();
  board::Vcu128Board board(config);
  const Dataset data = make_dataset(0xDA7A);

  std::printf("Approximate nearest-centroid inference with weights in "
              "undervolted HBM\n");
  std::printf("(%u classes, %u dims, %u samples; clean accuracy below)\n",
              kClasses, kDims, kSamples);

  // Strong PC (fault-free deep into the unsafe region) vs the weakest PC.
  run_frontier(board, data, 0, "strong PC: faults arrive late");
  run_frontier(board, data, 18, "weak PC: faults arrive early");

  std::printf(
      "\nReading: accuracy rides free through the guardband (1.5x) and\n"
      "most of the unsafe region; the cliff sits at the bulk collapse\n"
      "(~0.85V, 2.3x savings), and it hits the weak PC harder and earlier\n"
      "than the strong one.  Pair this with fault_aware_allocation to\n"
      "pick PCs automatically.\n");
  return 0;
}
