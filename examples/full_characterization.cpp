// Full characterization campaign: reproduce the paper's entire evaluation
// in one run and archive every artifact.
//
//   ./build/examples/full_characterization [output_dir] [threads]
//
// Writes fig2.csv/fig4.csv/fig5.csv/fig6.csv and summary.txt (headline
// table + ASCII renderings of Figs 2-6) into `output_dir` (default:
// ./artifacts), then prints the headline table and the trade-off plans.
// `threads` fans the sweeps out across pseudo-channels (0 = all cores,
// default; the artifacts are byte-identical at any thread count -- see
// docs/parallelism.md).

#include <cstdio>
#include <cstdlib>

#include "core/campaign.hpp"
#include "common/log.hpp"

using namespace hbmvolt;

int main(int argc, char** argv) {
  set_log_level(LogLevel::kInfo);

  board::BoardConfig board_config;
  board_config.geometry = hbm::HbmGeometry::simulation_default();
  board_config.monitor_config.noise_sigma_amps = 0.002;
  board::Vcu128Board board(board_config);

  core::CampaignConfig config;
  if (argc > 1) config.output_dir = argv[1];
  config.threads = 0;  // all cores; same bytes as the serial path
  if (argc > 2) {
    config.threads = static_cast<unsigned>(std::strtoul(argv[2], nullptr, 10));
  }

  core::Campaign campaign(board, config);
  auto result = campaign.run();
  if (!result.is_ok()) {
    std::fprintf(stderr, "campaign failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }
  const auto& campaign_result = result.value();

  std::fputs(core::render_headline(campaign_result.headline).c_str(),
             stdout);

  std::printf("\nOperating-point recommendations:\n");
  core::TradeoffAnalyzer analyzer(campaign_result.fault_map,
                                  Millivolts{1200}, &board.power_model());
  struct Ask {
    const char* what;
    unsigned pcs;
    double rate;
  };
  for (const Ask& ask : {Ask{"full capacity, zero faults", 32, 0.0},
                         Ask{"7 PCs, zero faults", 7, 0.0},
                         Ask{"half capacity, 1e-4 tolerable", 16, 1e-4}}) {
    if (const auto plan = analyzer.plan(ask.pcs, ask.rate)) {
      std::printf("  %-32s -> %.2fV, %.2fx savings\n", ask.what,
                  plan->voltage.volts(), plan->savings_factor);
    }
  }

  std::printf("\nArtifacts written:\n");
  for (const auto& file : campaign_result.files_written) {
    std::printf("  %s\n", file.c_str());
  }

  // Where the time and the traffic went (see docs/observability.md; load
  // trace.json from the artifact dir in ui.perfetto.dev for the timeline).
  if (!campaign_result.telemetry_summary.empty()) {
    std::printf("\n%s", campaign_result.telemetry_summary.c_str());
  }
  return 0;
}
