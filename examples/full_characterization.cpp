// Full characterization campaign: reproduce the paper's entire evaluation
// in one run and archive every artifact.
//
//   ./build/examples/full_characterization [output_dir] [threads]
//
// Writes fig2.csv/fig4.csv/fig5.csv/fig6.csv and summary.txt (headline
// table + ASCII renderings of Figs 2-6) into `output_dir` (default:
// ./artifacts), then prints the headline table and the trade-off plans.
// `threads` fans the sweeps out across pseudo-channels (0 = all cores,
// default; the artifacts are byte-identical at any thread count -- see
// docs/parallelism.md).
//
// Robustness drills (see docs/robustness.md) via environment variables:
//   HBMVOLT_CHAOS_RATE=0.05  inject transient faults of every kind at the
//                            given per-event rate (figures stay identical)
//   HBMVOLT_CHAOS_SEED=N     chaos schedule seed (default 0xC4A05)
//   HBMVOLT_HALT_AFTER=N     simulate the process dying after N sweep
//                            steps; re-run with the same output_dir to
//                            resume from checkpoint.json

#include <cstdio>
#include <cstdlib>

#include "core/campaign.hpp"
#include "common/log.hpp"

using namespace hbmvolt;

namespace {

double env_double(const char* name, double fallback) {
  const char* text = std::getenv(name);
  return text != nullptr ? std::strtod(text, nullptr) : fallback;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* text = std::getenv(name);
  return text != nullptr ? std::strtoull(text, nullptr, 0) : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kInfo);

  board::BoardConfig board_config;
  board_config.geometry = hbm::HbmGeometry::simulation_default();
  board_config.monitor_config.noise_sigma_amps = 0.002;
  board::Vcu128Board board(board_config);

  core::CampaignConfig config;
  if (argc > 1) config.output_dir = argv[1];
  config.threads = 0;  // all cores; same bytes as the serial path
  if (argc > 2) {
    config.threads = static_cast<unsigned>(std::strtoul(argv[2], nullptr, 10));
  }

  const double chaos_rate = env_double("HBMVOLT_CHAOS_RATE", 0.0);
  if (chaos_rate > 0.0) {
    config.chaos.seed = env_u64("HBMVOLT_CHAOS_SEED", config.chaos.seed);
    config.chaos.pmbus_nack_rate = chaos_rate;
    config.chaos.wire_corrupt_rate = chaos_rate;
    config.chaos.ina_dropout_rate = chaos_rate;
    config.chaos.axi_fail_rate = chaos_rate;
    config.chaos.spurious_crash_rate = chaos_rate;
    std::printf("chaos: all transient kinds at rate %g (seed %#llx)\n",
                chaos_rate,
                static_cast<unsigned long long>(config.chaos.seed));
  }
  config.halt_after_steps =
      static_cast<unsigned>(env_u64("HBMVOLT_HALT_AFTER", 0));

  core::Campaign campaign(board, config);
  auto result = campaign.run();
  if (!result.is_ok()) {
    std::fprintf(stderr, "campaign failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }
  const auto& campaign_result = result.value();

  if (campaign_result.halted) {
    std::printf("halted after %u step(s); checkpoint saved in %s -- "
                "re-run with the same output_dir to resume\n",
                config.halt_after_steps, config.output_dir.c_str());
    return 0;
  }
  for (const auto& error : campaign_result.errors) {
    std::fprintf(stderr, "degraded: %s\n", error.c_str());
  }

  std::fputs(core::render_headline(campaign_result.headline).c_str(),
             stdout);

  std::printf("\nOperating-point recommendations:\n");
  core::TradeoffAnalyzer analyzer(campaign_result.fault_map,
                                  Millivolts{1200}, &board.power_model());
  struct Ask {
    const char* what;
    unsigned pcs;
    double rate;
  };
  for (const Ask& ask : {Ask{"full capacity, zero faults", 32, 0.0},
                         Ask{"7 PCs, zero faults", 7, 0.0},
                         Ask{"half capacity, 1e-4 tolerable", 16, 1e-4}}) {
    if (const auto plan = analyzer.plan(ask.pcs, ask.rate)) {
      std::printf("  %-32s -> %.2fV, %.2fx savings\n", ask.what,
                  plan->voltage.volts(), plan->savings_factor);
    }
  }

  std::printf("\nArtifacts written:\n");
  for (const auto& file : campaign_result.files_written) {
    std::printf("  %s\n", file.c_str());
  }

  // Where the time and the traffic went (see docs/observability.md; load
  // trace.json from the artifact dir in ui.perfetto.dev for the timeline).
  if (!campaign_result.telemetry_summary.empty()) {
    std::printf("\n%s", campaign_result.telemetry_summary.c_str());
  }
  return 0;
}
