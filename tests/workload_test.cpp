// Unit tests for the workload-trace infrastructure.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "faults/fault_overlay.hpp"
#include "workload/trace.hpp"

namespace hbmvolt {
namespace {

using workload::AccessTrace;
using workload::ExposureResult;

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest()
      : geometry_(hbm::HbmGeometry::test_tiny()),
        injector_(faults::FaultModel(geometry_, faults::FaultModelConfig{})),
        stack_(geometry_, 0, injector_, 31) {}

  void set_voltage(Millivolts v) {
    injector_.set_voltage(v);
    stack_.on_voltage_change(v);
  }

  hbm::HbmGeometry geometry_;
  faults::FaultInjector injector_;
  hbm::HbmStack stack_;
};

// ----------------------------------------------------------- Trace basics

TEST(TraceTest, TextRoundTrip) {
  AccessTrace trace;
  trace.append(true, 0);
  trace.append(false, 42);
  trace.append(false, 4294967295ull);
  const std::string text = trace.to_text();
  EXPECT_EQ(text, "W 0\nR 42\nR 4294967295\n");
  auto parsed = AccessTrace::from_text(text);
  ASSERT_TRUE(parsed.is_ok());
  ASSERT_EQ(parsed.value().size(), 3u);
  EXPECT_TRUE(parsed.value()[0].write);
  EXPECT_EQ(parsed.value()[1].beat, 42u);
  EXPECT_EQ(parsed.value()[2].beat, 4294967295u);
}

TEST(TraceTest, ParserSkipsCommentsAndBlanks) {
  auto parsed = AccessTrace::from_text(
      "# header comment\n\n  R 7\n\t W 9\n");
  ASSERT_TRUE(parsed.is_ok());
  ASSERT_EQ(parsed.value().size(), 2u);
  EXPECT_EQ(parsed.value()[0].beat, 7u);
  EXPECT_TRUE(parsed.value()[1].write);
}

TEST(TraceTest, ParserRejectsGarbage) {
  EXPECT_FALSE(AccessTrace::from_text("X 3\n").is_ok());
  EXPECT_FALSE(AccessTrace::from_text("R\n").is_ok());
  EXPECT_FALSE(AccessTrace::from_text("R abc\n").is_ok());
  EXPECT_FALSE(AccessTrace::from_text("R 99999999999999\n").is_ok());
}

TEST(TraceTest, ParserRejectsOverlongLinesWithLineNumber) {
  std::string text = "R 1\nR ";
  text.append(AccessTrace::kMaxLineLength, '0');  // numeric but absurd
  text += "\n";
  const auto parsed = AccessTrace::from_text(text);
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_NE(parsed.status().message().find("line 2"), std::string::npos)
      << parsed.status().to_string();

  // A line of exactly the limit (record + trailing blanks) still parses:
  // the bound is on raw line length, not on trimmed content.
  std::string ok = "R 7";
  ok.append(AccessTrace::kMaxLineLength - ok.size(), ' ');
  const auto at_limit = AccessTrace::from_text(ok + "\n");
  ASSERT_TRUE(at_limit.is_ok()) << at_limit.status().to_string();
  EXPECT_EQ(at_limit.value()[0].beat, 7u);
}

TEST(TraceTest, ParserRejectsDuplicateDirectionTokens) {
  // The old parser silently truncated "R 5 W 6" to "R 5" -- half a record
  // lost.  Now it is a named error on the offending line.
  const auto parsed = AccessTrace::from_text("W 1\nR 5 W 6\n");
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_NE(parsed.status().message().find("line 2"), std::string::npos)
      << parsed.status().to_string();
  EXPECT_NE(parsed.status().message().find("duplicate direction"),
            std::string::npos)
      << parsed.status().to_string();
  EXPECT_FALSE(AccessTrace::from_text("W W 0\n").is_ok());
  EXPECT_FALSE(AccessTrace::from_text("R R 2\n").is_ok());
}

TEST(TraceTest, ParserRejectsTrailingGarbageAfterBeat) {
  EXPECT_FALSE(AccessTrace::from_text("R 3 extra\n").is_ok());
  EXPECT_FALSE(AccessTrace::from_text("R 3x\n").is_ok());
  // Even a trailing comment is garbage after a record: comments are
  // whole-line only, and anything after the beat risks hiding a typo.
  const auto commented = AccessTrace::from_text("R 3 # hot beat\n");
  ASSERT_FALSE(commented.is_ok());
  EXPECT_NE(commented.status().message().find("trailing garbage"),
            std::string::npos)
      << commented.status().to_string();
}

TEST(TraceTest, ParserRejectsBeatsBeyond32BitsWithoutTruncating) {
  // 2^32 exactly: one past the largest representable beat.
  auto parsed = AccessTrace::from_text("R 4294967296\n");
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_NE(parsed.status().message().find("line 1"), std::string::npos)
      << parsed.status().to_string();
  // A value that overflows 64-bit accumulation must also be caught, not
  // wrapped into a small in-range beat.
  EXPECT_FALSE(
      AccessTrace::from_text("R 118446744073709551616\n").is_ok());
  // The boundary value itself still round-trips.
  const auto max = AccessTrace::from_text("R 4294967295\n");
  ASSERT_TRUE(max.is_ok());
  EXPECT_EQ(max.value()[0].beat, 4294967295u);
}

// ------------------------------------------------------------ Generators

TEST(TraceTest, StreamingWritesThenReads) {
  const auto trace = workload::make_streaming(16, 3);
  ASSERT_EQ(trace.size(), 48u);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_TRUE(trace[i].write);
  for (std::size_t i = 16; i < 48; ++i) EXPECT_FALSE(trace[i].write);
  EXPECT_EQ(trace[17].beat, 1u);
}

TEST(TraceTest, UniformRandomStaysInRangeAndMixes) {
  const auto trace = workload::make_uniform_random(64, 2000, 0.25, 5);
  ASSERT_EQ(trace.size(), 2000u);
  std::size_t writes = 0;
  for (const auto& record : trace) {
    EXPECT_LT(record.beat, 64u);
    writes += record.write ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(writes) / 2000.0, 0.25, 0.05);
}

TEST(TraceTest, HotSetConcentratesTraffic) {
  const auto trace = workload::make_hot_set(256, 5000, 0.1, 0.9, 7);
  std::map<std::uint32_t, unsigned> histogram;
  for (const auto& record : trace) ++histogram[record.beat];
  // The busiest 10% of beats should hold well over half the accesses.
  std::vector<unsigned> counts;
  counts.reserve(histogram.size());
  for (const auto& [beat, count] : histogram) counts.push_back(count);
  std::sort(counts.rbegin(), counts.rend());
  std::uint64_t top = 0;
  for (std::size_t i = 0; i < 26 && i < counts.size(); ++i) top += counts[i];
  EXPECT_GT(static_cast<double>(top) / 5000.0, 0.6);
}

TEST(TraceTest, StridedWrapsAroundAndWritesFirstTouch) {
  const auto trace = workload::make_strided(32, 10, 12);
  EXPECT_EQ(trace[0].beat, 0u);
  EXPECT_EQ(trace[1].beat, 12u);
  EXPECT_EQ(trace[2].beat, 24u);
  EXPECT_EQ(trace[3].beat, 4u);  // wrapped
  // First touches write; revisits read.
  EXPECT_TRUE(trace[0].write);
  const auto long_trace = workload::make_strided(8, 16, 3);  // revisits all
  std::size_t writes = 0;
  for (const auto& record : long_trace) writes += record.write ? 1 : 0;
  EXPECT_EQ(writes, 8u);
}

TEST(TraceTest, ZipfianSkewsTrafficAndWritesFirstTouch) {
  const auto trace = workload::make_zipfian(128, 4096, 0.99, 0.25, 7);
  ASSERT_EQ(trace.size(), 4096u);
  std::vector<std::uint64_t> hits(128, 0);
  std::vector<bool> seen(128, false);
  for (const auto& record : trace) {
    ASSERT_LT(record.beat, 128u);
    ++hits[record.beat];
    // First touch of every beat must write (reads of unwritten beats
    // would be undefined data downstream).
    if (!seen[record.beat]) EXPECT_TRUE(record.write);
    seen[record.beat] = true;
  }
  // Zipf theta ~1 over 128 ranks puts roughly half the traffic on the
  // top ten beats; well above a uniform spread (10/128 ~ 8%).
  std::sort(hits.begin(), hits.end(), std::greater<>());
  std::uint64_t top10 = 0;
  for (std::size_t i = 0; i < 10; ++i) top10 += hits[i];
  EXPECT_GT(top10, 4096u * 35 / 100) << "zipfian skew missing";
  // Determinism per seed, divergence across seeds.
  const auto again = workload::make_zipfian(128, 4096, 0.99, 0.25, 7);
  ASSERT_EQ(again.size(), trace.size());
  EXPECT_EQ(again[100].beat, trace[100].beat);
  const auto other = workload::make_zipfian(128, 4096, 0.99, 0.25, 8);
  bool differs = false;
  for (std::size_t i = 0; i < trace.size() && !differs; ++i) {
    differs = other[i].beat != trace[i].beat;
  }
  EXPECT_TRUE(differs);
}

TEST(TraceTest, PointerChaseWritesCycleThenWalksIt) {
  const auto trace = workload::make_pointer_chase(64, 192, 3);
  ASSERT_EQ(trace.size(), 192u);
  // Write pass first: the pointers are stored before any chase read.
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_TRUE(trace[i].write);
    EXPECT_EQ(trace[i].beat, i);
  }
  // The chase is one full cycle: every window of 64 reads visits every
  // beat exactly once (Sattolo's algorithm yields a single cycle).
  for (std::size_t window = 64; window + 64 <= trace.size(); window += 64) {
    std::set<std::uint32_t> visited;
    for (std::size_t i = window; i < window + 64; ++i) {
      EXPECT_FALSE(trace[i].write);
      visited.insert(trace[i].beat);
    }
    EXPECT_EQ(visited.size(), 64u) << "window at " << window;
  }
}

TEST(TraceTest, GeneratorsAreDeterministic) {
  const auto a = workload::make_uniform_random(64, 100, 0.5, 9);
  const auto b = workload::make_uniform_random(64, 100, 0.5, 9);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].beat, b[i].beat);
    EXPECT_EQ(a[i].write, b[i].write);
  }
}

// --------------------------------------------------------------- Replay

TEST_F(WorkloadTest, CleanReplayAtNominal) {
  const auto trace =
      workload::make_streaming(geometry_.beats_per_pc(), 2);
  auto result = workload::replay_exposure(stack_, 0, trace);
  ASSERT_TRUE(result.is_ok());
  const ExposureResult& r = result.value();
  EXPECT_EQ(r.accesses, trace.size());
  EXPECT_EQ(r.corrupted_reads, 0u);
  EXPECT_EQ(r.distinct_stuck_cells_touched, 0u);
  EXPECT_EQ(r.footprint_beats, geometry_.beats_per_pc());
}

TEST_F(WorkloadTest, StreamingTouchesEveryStuckCell) {
  set_voltage(Millivolts{880});
  const unsigned pc = 4;
  const auto trace =
      workload::make_streaming(geometry_.beats_per_pc(), 2);
  auto result = workload::replay_exposure(stack_, pc, trace);
  ASSERT_TRUE(result.is_ok());
  // A full write+read sweep observes every cell stuck at the opposite of
  // the written bit; with random data, every stuck cell disagrees with
  // the written value with probability 1/2 -- over two read passes of
  // the same data it's still 1/2.  So the sweep sees a large fraction,
  // and never more than the overlay's total.
  const std::uint64_t truth = injector_.overlay(pc).total_count();
  EXPECT_GT(result.value().distinct_stuck_cells_touched, truth / 3);
  EXPECT_LE(result.value().distinct_stuck_cells_touched, truth);
}

TEST_F(WorkloadTest, HotSetExposureDependsOnPlacement) {
  set_voltage(Millivolts{900});
  const unsigned pc = 18 % geometry_.pcs_per_stack();  // any PC on stack 0
  // Small hot set: exposure varies with where the hot set lands, and is
  // bounded above by the streaming exposure.
  const auto hot = workload::make_hot_set(geometry_.beats_per_pc(), 4000,
                                          0.05, 0.95, 11);
  const auto streaming =
      workload::make_streaming(geometry_.beats_per_pc(), 2);
  auto hot_result = workload::replay_exposure(stack_, pc, hot);
  auto streaming_result = workload::replay_exposure(stack_, pc, streaming);
  ASSERT_TRUE(hot_result.is_ok());
  ASSERT_TRUE(streaming_result.is_ok());
  EXPECT_LE(hot_result.value().distinct_stuck_cells_touched,
            streaming_result.value().distinct_stuck_cells_touched);
  EXPECT_LT(hot_result.value().footprint_beats,
            streaming_result.value().footprint_beats);
}

TEST_F(WorkloadTest, ReplayRejectsOutOfRangeBeat) {
  AccessTrace trace;
  trace.append(false, geometry_.beats_per_pc());
  auto result = workload::replay_exposure(stack_, 0, trace);
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST_F(WorkloadTest, ReplayPropagatesCrash) {
  set_voltage(Millivolts{800});
  const auto trace = workload::make_streaming(4, 1);
  auto result = workload::replay_exposure(stack_, 0, trace);
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST_F(WorkloadTest, RewritesRefreshExpectations) {
  // Writing a beat twice updates the expected data: the second write's
  // generation is what reads verify against.
  AccessTrace trace;
  trace.append(true, 3);
  trace.append(true, 3);
  trace.append(false, 3);
  auto result = workload::replay_exposure(stack_, 0, trace);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().corrupted_reads, 0u);
}

}  // namespace
}  // namespace hbmvolt
