// Resilient-runtime suite: error budgets, patrol scrubbing, and the
// online degradation ladder (correct -> retire -> raise -> power-cycle).
//
// The headline invariant pinned here: a ReliableChannel NEVER returns
// corrupt data.  Under stuck-at faults, bit rot, weak-cell bursts, and
// chaos crashes it serves correct bytes, consumes spares, raises the
// supply, or power-cycles and restores from the journal -- and the whole
// fleet soak is byte-reproducible from (seed, config) at any thread
// count.
//
// Voltages come from the test_tiny board's deterministic fault
// population on weak PC 4: at 950 mV every stuck cell sits in a distinct
// SECDED codeword (all correctable); at 930 mV two words carry two stuck
// bits each (uncorrectable on an unlucky payload), which is what forces
// the ladder past rung 0.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "board/vcu128.hpp"
#include "chaos/chaos.hpp"
#include "runtime/error_budget.hpp"
#include "runtime/fleet.hpp"
#include "runtime/reliable_channel.hpp"
#include "telemetry/telemetry.hpp"
#include "workload/trace.hpp"

namespace hbmvolt {
namespace {

using runtime::ErrorBudget;
using runtime::ErrorBudgetConfig;
using runtime::BudgetVerdict;
using runtime::FleetConfig;
using runtime::LadderRung;
using runtime::ReliableChannel;
using runtime::ReliableChannelConfig;
using runtime::ServingFleet;

board::BoardConfig tiny_board() {
  board::BoardConfig config;
  config.geometry = hbm::HbmGeometry::test_tiny();
  config.monitor_config.noise_sigma_amps = 0.0;
  return config;
}

constexpr unsigned kWeakPc = 4;  // deepest fault population on test_tiny

// ---------------------------------------------------------------------------
// Error budget
// ---------------------------------------------------------------------------

TEST(ErrorBudgetTest, HealthyWindowRollsOverSilently) {
  ErrorBudgetConfig config;
  config.window_words = 100;
  config.corrected_slo = 0.05;
  ErrorBudget budget(config);
  // Two windows at 4% corrected: under SLO, so both roll over healthy.
  for (int window = 0; window < 2; ++window) {
    for (int batch = 0; batch < 25; ++batch) {
      EXPECT_EQ(budget.record(4, batch % 25 < 1 ? 4 : 0, 0),
                BudgetVerdict::kHealthy);
    }
  }
  EXPECT_FALSE(budget.burned());
  EXPECT_EQ(budget.windows_completed(), 2u);
  EXPECT_EQ(budget.burns(), 0u);
  EXPECT_EQ(budget.window_words(), 0u);  // fresh window after rollover
}

TEST(ErrorBudgetTest, CorrectedRateOverSloBurnsAtWindowClose) {
  ErrorBudgetConfig config;
  config.window_words = 100;
  config.corrected_slo = 0.05;
  ErrorBudget budget(config);
  // 10% corrected: healthy until the window completes, then a burn.
  for (int batch = 0; batch < 24; ++batch) {
    EXPECT_EQ(budget.record(4, batch % 10 == 0 ? 2 : 0, 0),
              BudgetVerdict::kHealthy);
  }
  EXPECT_EQ(budget.record(4, 2, 0), BudgetVerdict::kCorrectedBurn);
  EXPECT_TRUE(budget.burned());
  // Latched until the ladder consumes it.
  EXPECT_EQ(budget.record(4, 0, 0), BudgetVerdict::kCorrectedBurn);
  budget.reset();
  EXPECT_FALSE(budget.burned());
  EXPECT_EQ(budget.record(4, 0, 0), BudgetVerdict::kHealthy);
  EXPECT_EQ(budget.burns(), 1u);
}

TEST(ErrorBudgetTest, UncorrectableBurnsImmediately) {
  ErrorBudget budget(ErrorBudgetConfig{});  // tolerance 0
  EXPECT_EQ(budget.record(4, 0, 0), BudgetVerdict::kHealthy);
  EXPECT_EQ(budget.record(4, 1, 1), BudgetVerdict::kUncorrectableBurn);
  EXPECT_TRUE(budget.burned());

  ErrorBudgetConfig tolerant;
  tolerant.uncorrectable_tolerance = 2;
  ErrorBudget lax(tolerant);
  EXPECT_EQ(lax.record(4, 0, 2), BudgetVerdict::kHealthy);
  EXPECT_EQ(lax.record(4, 0, 1), BudgetVerdict::kUncorrectableBurn);
}

TEST(ErrorBudgetTest, WindowEdgeCountsCorrectedInExactlyOneWindow) {
  ErrorBudgetConfig config;
  config.window_words = 100;
  config.corrected_slo = 0.05;
  ErrorBudget budget(config);

  // A batch straddling the window edge is judged entirely in the window
  // it closes: 96 clean words, then 8 words carrying 5 corrections ->
  // rate 5/104 < 0.05, healthy rollover.
  EXPECT_EQ(budget.record(96, 0, 0), BudgetVerdict::kHealthy);
  EXPECT_EQ(budget.record(8, 5, 0), BudgetVerdict::kHealthy);
  EXPECT_EQ(budget.windows_completed(), 1u);
  EXPECT_EQ(budget.window_words(), 0u);
  EXPECT_EQ(budget.window_corrected(), 0u);

  // ...and none of those 5 corrections leak into the next window: 4
  // corrections over the next 100 words is 0.04, healthy -- it would be
  // 9/100 > SLO (a burn) if the edge batch were double-counted.
  EXPECT_EQ(budget.record(99, 4, 0), BudgetVerdict::kHealthy);
  EXPECT_EQ(budget.record(1, 0, 0), BudgetVerdict::kHealthy);
  EXPECT_EQ(budget.windows_completed(), 2u);
  EXPECT_EQ(budget.burns(), 0u);

  // The same straddling batch with one more correction tips the closing
  // window over the SLO: the burn lands in that window, exactly once.
  ErrorBudget hot(config);
  EXPECT_EQ(hot.record(96, 0, 0), BudgetVerdict::kHealthy);
  EXPECT_EQ(hot.record(8, 6, 0), BudgetVerdict::kCorrectedBurn);
  EXPECT_EQ(hot.burns(), 1u);
  hot.reset();
  // Post-reset accounting restarts from an empty window.
  EXPECT_EQ(hot.record(100, 0, 0), BudgetVerdict::kHealthy);
  EXPECT_EQ(hot.burns(), 1u);
}

TEST(ErrorBudgetTest, ExactWindowBoundaryBatchClosesOneWindow) {
  ErrorBudgetConfig config;
  config.window_words = 100;
  config.corrected_slo = 0.05;
  ErrorBudget budget(config);
  // Exactly at the SLO on exactly one window's worth of words: healthy
  // (the budget is "allowed", not "strictly under").
  EXPECT_EQ(budget.record(100, 5, 0), BudgetVerdict::kHealthy);
  EXPECT_EQ(budget.windows_completed(), 1u);
  EXPECT_EQ(budget.window_words(), 0u);
  // One word over the SLO in the next exact-boundary batch burns once.
  EXPECT_EQ(budget.record(100, 6, 0), BudgetVerdict::kCorrectedBurn);
  EXPECT_EQ(budget.windows_completed(), 2u);
  EXPECT_EQ(budget.burns(), 1u);
}

TEST(ErrorBudgetTest, RecordCleanMatchesPerWordReferenceAcrossEdges) {
  ErrorBudgetConfig config;
  config.window_words = 64;
  config.corrected_slo = 0.1;
  ErrorBudget fast(config);
  ErrorBudget reference(config);
  // Accumulate some corrections short of the edge, then a clean bulk run
  // that crosses several window boundaries.
  for (int i = 0; i < 5; ++i) {
    fast.record(1, 1, 0);
    reference.record(1, 1, 0);
  }
  fast.record_clean(200);
  for (int i = 0; i < 200; ++i) reference.record(1, 0, 0);
  EXPECT_EQ(fast.window_words(), reference.window_words());
  EXPECT_EQ(fast.window_corrected(), reference.window_corrected());
  EXPECT_EQ(fast.windows_completed(), reference.windows_completed());
  EXPECT_EQ(fast.burns(), reference.burns());
  EXPECT_EQ(fast.verdict(), reference.verdict());

  // The clean chunk that completes a window may still burn it on
  // *previously* accumulated corrections -- the edge belongs to the
  // window being closed.
  ErrorBudgetConfig small;
  small.window_words = 10;
  small.corrected_slo = 0.2;
  ErrorBudget budget(small);
  EXPECT_EQ(budget.record(5, 3, 0), BudgetVerdict::kHealthy);
  budget.record_clean(5);  // closes the window at 3/10 > 0.2
  EXPECT_TRUE(budget.burned());
  EXPECT_EQ(budget.verdict(), BudgetVerdict::kCorrectedBurn);
  EXPECT_EQ(budget.burns(), 1u);
}

// ---------------------------------------------------------------------------
// Payloads
// ---------------------------------------------------------------------------

TEST(PayloadTest, DeterministicPerSeedPcAndOp) {
  const hbm::Beat a = runtime::make_payload(7, 3, 41);
  EXPECT_EQ(a, runtime::make_payload(7, 3, 41));
  EXPECT_NE(a, runtime::make_payload(8, 3, 41));
  EXPECT_NE(a, runtime::make_payload(7, 4, 41));
  EXPECT_NE(a, runtime::make_payload(7, 3, 42));
}

// ---------------------------------------------------------------------------
// ReliableChannel: rung 0 (correct + scrub)
// ---------------------------------------------------------------------------

TEST(ReliableChannelTest, CleanServeAtNominalNeverEscalates) {
  board::Vcu128Board board(tiny_board());
  ReliableChannel channel(board, 0);
  const auto trace = workload::make_uniform_random(
      channel.capacity(), 1024, 0.25, 11);
  auto report = channel.serve(trace);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report.value().ops, 1024u);
  EXPECT_EQ(report.value().corrupt_reads, 0u);
  EXPECT_EQ(report.value().escalated_reads, 0u);
  EXPECT_EQ(channel.stats().corrected_words, 0u);
  EXPECT_EQ(channel.stats().uncorrectable_blocked, 0u);
  EXPECT_TRUE(channel.ladder_trace().empty());
  // The implicit patrol scrubber ran and found nothing to repair.
  EXPECT_GT(channel.stats().scrub_beats, 0u);
  EXPECT_EQ(channel.stats().scrub_writebacks, 0u);
}

TEST(ReliableChannelTest, EccAbsorbsSingleBitStuckCellsAt950) {
  // At 950 mV PC 4 has stuck cells, but every one lands in a distinct
  // codeword: rung 0 alone must serve indefinitely.  The budget and
  // retirement knobs are opened wide to isolate the pure ECC path.
  board::Vcu128Board board(tiny_board());
  ASSERT_TRUE(board.set_hbm_voltage(Millivolts{950}).is_ok());
  ReliableChannelConfig config;
  config.budget.corrected_slo = 1.0;
  config.retire_threshold = 1u << 20;
  ReliableChannel channel(board, kWeakPc, config);
  const auto trace = workload::make_uniform_random(
      channel.capacity(), 4096, 0.25, 13);
  auto report = channel.serve(trace);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report.value().corrupt_reads, 0u);
  EXPECT_EQ(report.value().escalated_reads, 0u);
  EXPECT_GT(channel.stats().corrected_words, 0u);
  EXPECT_EQ(channel.stats().uncorrectable_blocked, 0u);
  EXPECT_TRUE(channel.ladder_trace().empty());
  EXPECT_EQ(board.hbm_voltage().value, 950);
}

TEST(ReliableChannelTest, ScrubRepairsBitRotInPlace) {
  board::Vcu128Board board(tiny_board());
  ReliableChannelConfig config;
  config.scrub_interval_ops = 0;  // manual scrubbing only
  ReliableChannel channel(board, 0, config);
  const std::uint64_t data_seed = 99;
  for (std::uint64_t beat = 0; beat < channel.capacity(); ++beat) {
    ASSERT_TRUE(
        channel.write(beat, runtime::make_payload(data_seed, 0, beat))
            .is_ok());
  }
  // Rot one stored data bit behind the channel's back (logical beat 5 is
  // physically beat 5 -- the remap starts out as the identity).
  const hbm::PcId pc = hbm::PcId::from_global(board.geometry(), 0);
  hbm::MemoryArray& array = board.stack(pc.stack).array(pc.index);
  const std::uint64_t bit = 5 * 256 + 17;
  const bool original = array.read_bit(bit);
  array.write_bit(bit, !original);

  // A full patrol pass finds it, corrects it, and writes the fix back.
  const std::uint64_t slices =
      channel.capacity() / config.scrub_batch_beats + 1;
  for (std::uint64_t i = 0; i < slices; ++i) {
    ASSERT_TRUE(channel.scrub_slice().is_ok());
  }
  EXPECT_GE(channel.stats().scrub_corrected, 1u);
  EXPECT_GE(channel.stats().scrub_writebacks, 1u);
  EXPECT_EQ(channel.stats().scrub_uncorrectable, 0u);
  EXPECT_EQ(array.read_bit(bit), original) << "correction not written back";

  // A second pass is clean: the rot is gone, not just masked per-read.
  const std::uint64_t corrected_before = channel.stats().scrub_corrected;
  for (std::uint64_t i = 0; i < slices; ++i) {
    ASSERT_TRUE(channel.scrub_slice().is_ok());
  }
  EXPECT_EQ(channel.stats().scrub_corrected, corrected_before);

  auto got = channel.read(5);
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value(), channel.journal_beat(5));
}

// ---------------------------------------------------------------------------
// ReliableChannel: rung 1 (retire) and the upper rungs
// ---------------------------------------------------------------------------

TEST(ReliableChannelTest, BudgetBurnRetiresHotRowsBeforeDataLoss) {
  // A tight corrected-SLO at 950 mV burns on correction volume alone;
  // the ladder's answer is rung 1: retire the rows the corrections
  // cluster on, without a single uncorrectable word ever appearing.
  board::Vcu128Board board(tiny_board());
  ASSERT_TRUE(board.set_hbm_voltage(Millivolts{950}).is_ok());
  ReliableChannelConfig config;
  config.budget.window_words = 512;
  config.budget.corrected_slo = 0.001;
  config.spare_fraction = 0.25;
  ReliableChannel channel(board, kWeakPc, config);
  const auto trace = workload::make_uniform_random(
      channel.capacity(), 4096, 0.25, 17);
  auto report = channel.serve(trace);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report.value().corrupt_reads, 0u);
  EXPECT_EQ(channel.stats().uncorrectable_blocked, 0u);
  EXPECT_GT(channel.stats().rows_retired, 0u);
  EXPECT_GT(channel.stats().beats_migrated, 0u);
  bool saw_retire = false;
  for (const auto& event : channel.ladder_trace()) {
    if (event.rung == LadderRung::kRetire) saw_retire = true;
  }
  EXPECT_TRUE(saw_retire);
  // Retirement moved traffic off the weak rows: the tail of the run
  // corrects less than the head did.
  EXPECT_GT(channel.budget().windows_completed(), 0u);
}

TEST(ReliableChannelTest, LadderEscapesUncorrectableWordsAt930) {
  // 930 mV on PC 4: two codewords carry two stuck bits each, so demand
  // reads hit genuine uncorrectable words.  The contract: no corrupt
  // data is ever delivered, and the ladder (retire, then raise when a
  // migration read is itself uncorrectable) works the channel back to a
  // voltage it can serve from.
  board::Vcu128Board board(tiny_board());
  ASSERT_TRUE(board.set_hbm_voltage(Millivolts{930}).is_ok());
  ReliableChannelConfig config;
  config.spare_fraction = 0.25;
  ReliableChannel channel(board, kWeakPc, config);
  const auto trace = workload::make_uniform_random(
      channel.capacity(), 4096, 0.25, 19);
  auto report = channel.serve(trace);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report.value().ops, 4096u);
  EXPECT_EQ(report.value().corrupt_reads, 0u);
  // Write-verify catches the armed words at write time, so escalations
  // fire proactively -- demand reads may never even see a refusal.
  const auto& stats = channel.stats();
  EXPECT_GT(stats.verify_caught + stats.uncorrectable_blocked, 0u);
  EXPECT_FALSE(channel.ladder_trace().empty());
  EXPECT_GT(stats.rows_retired + stats.raises + stats.power_cycles, 0u);
  EXPECT_GE(board.hbm_voltage().value, 930);

  // Every live beat is still readable and matches the journal.
  for (std::uint64_t beat = 0; beat < channel.capacity(); ++beat) {
    if (!channel.journal_live(beat)) continue;
    auto got = channel.read(beat);
    ASSERT_TRUE(got.is_ok()) << "beat " << beat << ": "
                             << got.status().to_string();
    EXPECT_EQ(got.value(), channel.journal_beat(beat));
  }
}

TEST(ReliableChannelTest, PowerCycleRestoreRebuildsFromJournal) {
  board::Vcu128Board board(tiny_board());
  ReliableChannel channel(board, 0);
  for (std::uint64_t beat = 0; beat < channel.capacity(); ++beat) {
    ASSERT_TRUE(
        channel.write(beat, runtime::make_payload(3, 0, beat)).is_ok());
  }
  ASSERT_TRUE(board.power_cycle().is_ok());  // scrambles the arrays
  ASSERT_TRUE(channel.restore_after_power_cycle().is_ok());
  EXPECT_EQ(channel.stats().power_cycles, 1u);
  ASSERT_FALSE(channel.ladder_trace().empty());
  EXPECT_EQ(channel.ladder_trace().back().rung, LadderRung::kPowerCycle);
  for (std::uint64_t beat = 0; beat < channel.capacity(); ++beat) {
    auto got = channel.read(beat);
    ASSERT_TRUE(got.is_ok());
    EXPECT_EQ(got.value(), channel.journal_beat(beat));
  }
}

TEST(ReliableChannelTest, OnlineReRetirementAfterWeakCellBurst) {
  // A mid-run burst makes cells stuck at EVERY voltage, including
  // nominal -- raising cannot wash these out, so the channel must retire
  // its way around them (falling back to the journal when a migration
  // read is uncorrectable even at nominal).
  board::Vcu128Board board(tiny_board());
  ReliableChannelConfig config;
  config.spare_fraction = 0.25;
  ReliableChannel channel(board, 0, config);
  const auto warmup = workload::make_uniform_random(
      channel.capacity(), 1024, 0.25, 23);
  ASSERT_TRUE(channel.serve(warmup).is_ok());

  board.injector().add_burst(0, 64, 64);  // dense enough to pair up

  const auto after = workload::make_uniform_random(
      channel.capacity(), 4096, 0.25, 29);
  auto report = channel.serve(after);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report.value().corrupt_reads, 0u);
  EXPECT_GT(channel.stats().rows_retired, 0u);
  // With 128 burst cells in 224 data words, some words pair up even at
  // nominal; those migrations must come from the journal.
  EXPECT_GT(channel.stats().journal_migrations, 0u);
}

TEST(ReliableChannelTest, TelemetryCountersFlowAtSyncPoints) {
  telemetry::Telemetry telemetry;
  telemetry::ScopedTelemetry scope(telemetry);
  board::Vcu128Board board(tiny_board());
  ASSERT_TRUE(board.set_hbm_voltage(Millivolts{950}).is_ok());
  ReliableChannelConfig config;
  config.budget.window_words = 512;
  config.budget.corrected_slo = 0.001;
  config.spare_fraction = 0.25;
  ReliableChannel channel(board, kWeakPc, config);
  const auto trace = workload::make_uniform_random(
      channel.capacity(), 2048, 0.25, 31);
  ASSERT_TRUE(channel.serve(trace).is_ok());
  const std::string summary = telemetry.summary();
  EXPECT_NE(summary.find("runtime.reads"), std::string::npos);
  EXPECT_NE(summary.find("runtime.corrected_words"), std::string::npos);
  EXPECT_NE(summary.find("scrub.beats"), std::string::npos);
  EXPECT_NE(summary.find("runtime.ladder.retire"), std::string::npos);
  EXPECT_NE(summary.find("runtime.spares_free"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Fleet: determinism and the chaos soak
// ---------------------------------------------------------------------------

FleetConfig storm_fleet(std::vector<unsigned> pcs, std::uint64_t ops_per_pc,
                        unsigned threads) {
  FleetConfig config;
  config.pcs = std::move(pcs);
  config.ops_per_pc = ops_per_pc;
  config.ops_per_epoch = 512;
  config.seed = 101;
  config.threads = threads;
  config.channel.spare_fraction = 0.25;
  return config;
}

chaos::ChaosConfig storm_chaos() {
  chaos::ChaosConfig config;
  config.seed = 404;
  config.weak_burst_rate = 1e-4;
  config.bit_rot_rate = 1e-3;
  config.burst_cells = 4;
  return config;
}

runtime::FleetReport run_storm_fleet(const std::vector<unsigned>& pcs,
                                     std::uint64_t ops_per_pc,
                                     unsigned threads, Millivolts start) {
  board::Vcu128Board board(tiny_board());
  EXPECT_TRUE(board.set_hbm_voltage(start).is_ok());
  chaos::ChaosInjector injector(board, storm_chaos());
  FleetConfig config = storm_fleet(pcs, ops_per_pc, threads);
  config.storm_hook = [&injector](unsigned pc, std::uint64_t tick) {
    return injector.storm_tick(pc, tick);
  };
  ServingFleet fleet(board, config);
  auto report = fleet.run();
  EXPECT_TRUE(report.is_ok()) << report.status().to_string();
  return report.is_ok() ? report.value() : runtime::FleetReport{};
}

TEST(FleetTest, FingerprintIsThreadCountInvariant) {
  const std::vector<unsigned> pcs = {0, kWeakPc, 5, 18};
  const auto serial = run_storm_fleet(pcs, 2048, 1, Millivolts{940});
  const auto parallel = run_storm_fleet(pcs, 2048, 4, Millivolts{940});
  const auto replay = run_storm_fleet(pcs, 2048, 1, Millivolts{940});
  EXPECT_EQ(serial.corrupt_reads, 0u);
  EXPECT_EQ(parallel.corrupt_reads, 0u);
  EXPECT_NE(serial.fingerprint, 0u);
  EXPECT_EQ(serial.fingerprint, parallel.fingerprint)
      << "threads=1 vs threads=4 diverged";
  EXPECT_EQ(serial.fingerprint, replay.fingerprint)
      << "same-seed replay diverged";
  EXPECT_EQ(serial.final_voltage.value, parallel.final_voltage.value);
  EXPECT_EQ(serial.ops, 4u * 2048u);
}

TEST(FleetTest, ChaosSoakMillionBeatsZeroCorruption) {
  // The PR's acceptance soak: every PC on the board, undervolted into
  // weak-PC fault territory, with chaos fault storms (weak-cell bursts +
  // bit rot) landing throughout -- over 10^6 served beats and not one
  // corrupt read.  Ladder escalations land in telemetry.
  telemetry::Telemetry telemetry;
  telemetry::ScopedTelemetry scope(telemetry);
  board::Vcu128Board board(tiny_board());
  ASSERT_TRUE(board.set_hbm_voltage(Millivolts{950}).is_ok());
  chaos::ChaosInjector injector(board, storm_chaos());
  FleetConfig config = storm_fleet({}, 1u << 15, 4);
  config.ops_per_epoch = 2048;
  config.storm_hook = [&injector](unsigned pc, std::uint64_t tick) {
    return injector.storm_tick(pc, tick);
  };
  ServingFleet fleet(board, config);
  auto report = fleet.run();
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  const runtime::FleetReport& r = report.value();
  EXPECT_GE(r.ops, 1'000'000u);
  EXPECT_EQ(r.corrupt_reads, 0u);
  EXPECT_GT(r.escalated_reads, 0u);
  EXPECT_GT(injector.injected(chaos::FaultKind::kWeakCellBurst), 0u);
  EXPECT_GT(injector.injected(chaos::FaultKind::kBitRot), 0u);

  std::uint64_t ladder_events = 0;
  for (std::size_t i = 0; i < fleet.channels(); ++i) {
    ladder_events += fleet.channel(i).ladder_trace().size();
  }
  EXPECT_GT(ladder_events, 0u);

  const std::string summary = telemetry.summary();
  EXPECT_NE(summary.find("runtime.reads"), std::string::npos);
  EXPECT_NE(summary.find("scrub.beats"), std::string::npos);
  EXPECT_NE(summary.find("chaos.injected.weak_cell_burst"),
            std::string::npos);
  EXPECT_NE(summary.find("chaos.injected.bit_rot"), std::string::npos);
  EXPECT_NE(summary.find("runtime.ladder."), std::string::npos);
}

}  // namespace
}  // namespace hbmvolt
