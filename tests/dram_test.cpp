// Unit tests for the DRAM command-level timing substrate: bank state
// machine, timing constraints, and the per-PC scheduler.

#include <gtest/gtest.h>

#include "dram/bank.hpp"
#include "dram/scheduler.hpp"
#include "hbm/geometry.hpp"

namespace hbmvolt {
namespace {

using dram::AccessStats;
using dram::Bank;
using dram::Command;
using dram::Cycles;
using dram::DramTimings;
using dram::PcScheduler;

DramTimings timings() { return DramTimings{}; }

// ------------------------------------------------------------------ Bank

TEST(BankTest, InitialStateIsIdle) {
  const DramTimings t = timings();
  Bank bank(t);
  EXPECT_FALSE(bank.active());
  EXPECT_TRUE(bank.legal(Command::kActivate));
  EXPECT_FALSE(bank.legal(Command::kRead));
  EXPECT_FALSE(bank.legal(Command::kPrecharge));
  EXPECT_TRUE(bank.legal(Command::kRefresh));
}

TEST(BankTest, ActivateOpensRowAndGatesReads) {
  const DramTimings t = timings();
  Bank bank(t);
  const Cycles ready = bank.issue(Command::kActivate, 100, 7);
  EXPECT_TRUE(bank.active());
  EXPECT_EQ(*bank.open_row(), 7u);
  EXPECT_EQ(ready, 100 + t.t_rcd);
  // tRCD: reads can't start before ACT + tRCD.
  EXPECT_EQ(bank.earliest_issue(Command::kRead), 100 + t.t_rcd);
  // tRAS: precharge can't start before ACT + tRAS.
  EXPECT_EQ(bank.earliest_issue(Command::kPrecharge), 100 + t.t_ras);
}

TEST(BankTest, PrechargeClosesRowAndGatesActivate) {
  const DramTimings t = timings();
  Bank bank(t);
  (void)bank.issue(Command::kActivate, 0, 3);
  (void)bank.issue(Command::kPrecharge, t.t_ras);
  EXPECT_FALSE(bank.active());
  // tRP after PRE.
  EXPECT_GE(bank.earliest_issue(Command::kActivate), t.t_ras + t.t_rp);
}

TEST(BankTest, ActToActRespectsTrc) {
  const DramTimings t = timings();
  Bank bank(t);
  (void)bank.issue(Command::kActivate, 0, 1);
  // Even if we precharge as early as legal, the next ACT waits for tRC.
  (void)bank.issue(Command::kPrecharge, t.t_ras);
  EXPECT_GE(bank.earliest_issue(Command::kActivate), t.t_rc);
}

TEST(BankTest, ConsecutiveReadsSpacedByTccd) {
  const DramTimings t = timings();
  Bank bank(t);
  (void)bank.issue(Command::kActivate, 0, 0);
  const Cycles first = bank.earliest_issue(Command::kRead);
  (void)bank.issue(Command::kRead, first);
  EXPECT_EQ(bank.earliest_issue(Command::kRead), first + t.t_ccd);
}

TEST(BankTest, WriteRecoveryDelaysPrecharge) {
  const DramTimings t = timings();
  Bank bank(t);
  (void)bank.issue(Command::kActivate, 0, 0);
  const Cycles write_at = bank.earliest_issue(Command::kWrite);
  (void)bank.issue(Command::kWrite, write_at);
  EXPECT_GE(bank.earliest_issue(Command::kPrecharge),
            write_at + t.burst + t.t_wr);
}

TEST(BankTest, RefreshBlocksActivateForTrfc) {
  const DramTimings t = timings();
  Bank bank(t);
  (void)bank.issue(Command::kRefresh, 50);
  EXPECT_GE(bank.earliest_issue(Command::kActivate), 50 + t.t_rfc);
}

TEST(BankTest, CountsActivationsAndHits) {
  const DramTimings t = timings();
  Bank bank(t);
  (void)bank.issue(Command::kActivate, 0, 0);
  bank.note_row_hit();
  bank.note_row_hit();
  EXPECT_EQ(bank.activations(), 1u);
  EXPECT_EQ(bank.row_hits(), 2u);
}

// ------------------------------------------------------------- Scheduler

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest() : geometry_(hbm::HbmGeometry::simulation_default()) {}
  hbm::HbmGeometry geometry_;
};

TEST_F(SchedulerTest, SequentialReadsApproachPeakBandwidth) {
  PcScheduler scheduler(geometry_, timings());
  for (std::uint64_t beat = 0; beat < geometry_.beats_per_pc(); ++beat) {
    scheduler.access(false, beat);
  }
  const AccessStats stats = scheduler.finish();
  EXPECT_EQ(stats.requests, geometry_.beats_per_pc());
  // Sequential sweep with eager activation: row misses hide under other
  // banks' bursts; only refresh and the first activations cost cycles.
  EXPECT_GT(stats.bus_utilization(scheduler.timings()), 0.85);
  EXPECT_LT(stats.bus_utilization(scheduler.timings()), 1.0);
  EXPECT_GT(stats.bandwidth_gbs(scheduler.timings()), 12.0);  // of 14.4 peak
}

TEST_F(SchedulerTest, RowHitsDominateSequentialAccess) {
  PcScheduler scheduler(geometry_, timings());
  for (std::uint64_t beat = 0; beat < geometry_.beats_per_pc(); ++beat) {
    scheduler.access(false, beat);
  }
  const AccessStats stats = scheduler.finish();
  // One miss per (bank, row) visit (refresh closes rows, adding at most
  // banks_per_pc re-activations each), beats_per_row - 1 hits after it.
  const std::uint64_t base_misses =
      geometry_.beats_per_pc() / geometry_.beats_per_row;
  EXPECT_GE(stats.row_misses, base_misses);
  EXPECT_LE(stats.row_misses,
            base_misses + stats.refreshes * geometry_.banks_per_pc);
  EXPECT_EQ(stats.row_hits, stats.requests - stats.row_misses);
}

TEST_F(SchedulerTest, SameBankRowThrashingIsSlow) {
  // Alternate between two rows of the same bank: every access is a miss
  // gated by tRC -- the worst case the open-page policy can hit.
  PcScheduler scheduler(geometry_, timings());
  const std::uint64_t row_stride =
      static_cast<std::uint64_t>(geometry_.beats_per_row) *
      geometry_.banks_per_pc;
  for (int i = 0; i < 200; ++i) {
    scheduler.access(false, (i % 2) ? row_stride * 2 : 0);
  }
  const AccessStats stats = scheduler.finish();
  EXPECT_EQ(stats.row_misses, 200u);
  EXPECT_LT(stats.bus_utilization(scheduler.timings()), 0.15);
}

TEST_F(SchedulerTest, BankInterleavingHidesThrashing) {
  // The same 200 row misses spread across all banks pipeline much better.
  PcScheduler scheduler(geometry_, timings());
  const std::uint64_t row_stride =
      static_cast<std::uint64_t>(geometry_.beats_per_row) *
      geometry_.banks_per_pc;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t bank_offset =
        static_cast<std::uint64_t>(i % geometry_.banks_per_pc) *
        geometry_.beats_per_row;
    const std::uint64_t row =
        static_cast<std::uint64_t>(i) * row_stride;  // always a new row
    scheduler.access(false, (row + bank_offset) %
                                geometry_.beats_per_pc());
  }
  const AccessStats spread = scheduler.finish();

  PcScheduler thrash(geometry_, timings());
  for (int i = 0; i < 200; ++i) {
    thrash.access(false, (i % 2) ? row_stride * 2 : 0);
  }
  const AccessStats same_bank = thrash.finish();
  EXPECT_LT(spread.cycles, same_bank.cycles / 2);
}

TEST_F(SchedulerTest, TurnaroundsArePenalizedAndCounted) {
  PcScheduler alternating(geometry_, timings());
  for (std::uint64_t beat = 0; beat < 512; ++beat) {
    alternating.access(beat % 2 == 0, beat);
  }
  const AccessStats alt = alternating.finish();
  EXPECT_EQ(alt.turnarounds, 511u);

  PcScheduler grouped(geometry_, timings());
  for (std::uint64_t beat = 0; beat < 512; ++beat) {
    grouped.access(beat < 256, beat);
  }
  const AccessStats grp = grouped.finish();
  EXPECT_EQ(grp.turnarounds, 1u);
  EXPECT_LT(grp.cycles, alt.cycles);
}

TEST_F(SchedulerTest, RefreshFiresEveryTrefi) {
  const DramTimings t = timings();
  PcScheduler scheduler(geometry_, t);
  // Run enough sequential traffic to cross several refresh intervals.
  const std::uint64_t beats = geometry_.beats_per_pc();
  for (std::uint64_t i = 0; i < beats * 4; ++i) {
    scheduler.access(false, i % beats);
  }
  const AccessStats stats = scheduler.finish();
  EXPECT_GT(stats.refreshes, 0u);
  const double expected =
      static_cast<double>(stats.cycles) / static_cast<double>(t.t_refi);
  EXPECT_NEAR(static_cast<double>(stats.refreshes), expected, expected * 0.2);
}

TEST_F(SchedulerTest, RefreshCostMatchesTrfcShare) {
  // With refresh "disabled" (huge interval), sequential bandwidth rises
  // by roughly tRFC/tREFI.
  DramTimings no_refresh = timings();
  no_refresh.t_refi = ~0ull >> 2;
  PcScheduler without(geometry_, no_refresh);
  PcScheduler with(geometry_, timings());
  const std::uint64_t beats = geometry_.beats_per_pc();
  for (std::uint64_t i = 0; i < beats * 4; ++i) {
    without.access(false, i % beats);
    with.access(false, i % beats);
  }
  const double bw_without = without.finish().bandwidth_gbs(no_refresh);
  const double bw_with = with.finish().bandwidth_gbs(timings());
  const double refresh_share = static_cast<double>(timings().t_rfc) /
                               static_cast<double>(timings().t_refi);
  EXPECT_NEAR(bw_with / bw_without, 1.0 - refresh_share, 0.03);
}

TEST_F(SchedulerTest, PeakBandwidthConstant) {
  EXPECT_NEAR(timings().peak_bandwidth().value, 14.4, 0.01);
}

}  // namespace
}  // namespace hbmvolt
