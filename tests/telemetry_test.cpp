// Tests for the telemetry subsystem: metric registry semantics and
// concurrency, span nesting (including exception unwind), the JSONL and
// Chrome-trace sinks, the disabled-registry no-op guarantee, and -- the
// load-bearing one -- proof that telemetry never changes campaign results
// (byte-identical figures with telemetry on vs off, serial and pooled).

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "core/report.hpp"
#include "telemetry/telemetry.hpp"

namespace hbmvolt::telemetry {
namespace {

// ------------------------------------------------------------- registry

TEST(MetricRegistryTest, CounterGaugeHistogramBasics) {
  MetricRegistry registry;
  registry.counter("a").add();
  registry.counter("a").add(4);
  EXPECT_EQ(registry.counter("a").value(), 5u);

  registry.gauge("depth").set(3);
  registry.gauge("depth").set(7);
  registry.gauge("depth").set(2);
  EXPECT_EQ(registry.gauge("depth").value(), 2);
  EXPECT_EQ(registry.gauge("depth").max(), 7);

  // Snapshots iterate in name order regardless of registration order.
  registry.counter("z").add();
  registry.counter("b").add();
  const auto counters = registry.counter_values();
  ASSERT_EQ(counters.size(), 3u);
  EXPECT_EQ(counters[0].first, "a");
  EXPECT_EQ(counters[1].first, "b");
  EXPECT_EQ(counters[2].first, "z");
}

TEST(MetricRegistryTest, HistogramBucketEdges) {
  MetricRegistry registry;
  Histogram& h = registry.histogram("h", {10, 20});
  // Bucket i counts bounds[i-1] < v <= bounds[i]; last bucket = overflow.
  h.observe(0);
  h.observe(10);  // boundary lands in bucket 0
  h.observe(11);
  h.observe(20);  // boundary lands in bucket 1
  h.observe(21);
  h.observe(1000);  // overflow

  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 2u);
  EXPECT_EQ(buckets[2], 2u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 0u + 10 + 11 + 20 + 21 + 1000);
}

TEST(MetricRegistryTest, HistogramFirstRegistrationFixesBounds) {
  MetricRegistry registry;
  registry.histogram("h", {10, 20});
  // Same bounds: fine.  The no-bounds overload returns the existing
  // histogram without a check (Telemetry::observe's path).
  Histogram& again = registry.histogram("h", {10, 20});
  EXPECT_EQ(again.bounds(), (std::vector<std::uint64_t>{10, 20}));
  EXPECT_EQ(registry.histogram("h").bounds(),
            (std::vector<std::uint64_t>{10, 20}));
}

TEST(MetricRegistryDeathTest, HistogramBoundsMismatchAborts) {
  MetricRegistry registry;
  registry.histogram("h", {10, 20});
  // A silent mismatch used to hand the caller buckets it never asked
  // for; now it fails fast naming both bound sets.
  EXPECT_DEATH(registry.histogram("h", {5}),
               "existing \\[10,20\\] vs requested \\[5\\]");
}

TEST(MetricRegistryTest, ConcurrentUpdatesMatchSerialTotal) {
  MetricRegistry registry;
  constexpr unsigned kThreads = 8;
  constexpr unsigned kIters = 20000;

  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Registration races with updates on purpose: every thread looks
      // the metrics up by name on each iteration.
      for (unsigned i = 0; i < kIters; ++i) {
        registry.counter("hits").add();
        registry.histogram("lat", {100}).observe(i % 7);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(registry.counter("hits").value(),
            std::uint64_t{kThreads} * kIters);
  const Histogram& h = registry.histogram("lat", {100});
  EXPECT_EQ(h.count(), std::uint64_t{kThreads} * kIters);
  // sum of (i % 7) over one thread's iterations, times the thread count.
  std::uint64_t serial_sum = 0;
  for (unsigned i = 0; i < kIters; ++i) serial_sum += i % 7;
  EXPECT_EQ(h.sum(), serial_sum * kThreads);
}

// ---------------------------------------------------- spans and install

/// Splits a sink string into its non-empty lines.
std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

/// Minimal flat-JSON-object parser for round-trip tests: returns key ->
/// raw value text (strings without their quotes).  Fails the test on any
/// syntax error, so a malformed sink line cannot slip through.
std::map<std::string, std::string> parse_flat_json(const std::string& line) {
  std::map<std::string, std::string> fields;
  std::size_t i = 0;
  const auto fail = [&](const char* what) {
    ADD_FAILURE() << what << " at byte " << i << " in: " << line;
  };
  const auto skip_string = [&]() -> std::string {
    std::string out;
    ++i;  // opening quote
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\') {
        ++i;
        switch (line[i]) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          default: out += line[i];
        }
        ++i;
        continue;
      }
      out += line[i++];
    }
    ++i;  // closing quote
    return out;
  };
  const auto skip_scalar = [&]() -> std::string {
    const std::size_t start = i;
    while (i < line.size() && line[i] != ',' && line[i] != '}' &&
           line[i] != ']') {
      ++i;
    }
    return line.substr(start, i - start);
  };

  if (line.empty() || line[0] != '{') {
    fail("expected '{'");
    return fields;
  }
  i = 1;
  while (i < line.size() && line[i] != '}') {
    if (line[i] != '"') {
      fail("expected key quote");
      return fields;
    }
    const std::string key = skip_string();
    if (i >= line.size() || line[i] != ':') {
      fail("expected ':'");
      return fields;
    }
    ++i;
    std::string value;
    if (line[i] == '"') {
      value = skip_string();
    } else if (line[i] == '[') {
      const std::size_t start = i;
      while (i < line.size() && line[i] != ']') ++i;
      ++i;
      value = line.substr(start, i - start);
    } else {
      value = skip_scalar();
    }
    fields[key] = value;
    if (i < line.size() && line[i] == ',') ++i;
  }
  if (i >= line.size() || line[i] != '}') fail("expected '}'");
  return fields;
}

TEST(SpanTest, NestedSpansRecordDepthAndManualClockDurations) {
  ManualClock clock;
  Telemetry telemetry({.enabled = true}, &clock);
  {
    ScopedTelemetry scoped(telemetry);
    ASSERT_EQ(Telemetry::active(), &telemetry);
    Span outer("outer", 42);
    clock.advance_ns(5000);
    {
      Span inner("inner");
      clock.advance_ns(3000);
    }
    clock.advance_ns(1000);
  }

  const auto stats = telemetry.span_stats();
  ASSERT_EQ(stats.size(), 2u);  // name order: inner, outer
  EXPECT_EQ(stats[0].name, "inner");
  EXPECT_EQ(stats[0].count, 1u);
  EXPECT_EQ(stats[0].total_ns, 3000u);
  EXPECT_EQ(stats[1].name, "outer");
  EXPECT_EQ(stats[1].total_ns, 9000u);

  // The JSONL stream carries nesting depth and the detail scalar.
  for (const std::string& line : lines_of(telemetry.to_jsonl())) {
    const auto fields = parse_flat_json(line);
    if (fields.at("name") == "inner") {
      EXPECT_EQ(fields.at("depth"), "1");
      EXPECT_EQ(fields.at("start_ns"), "5000");
    } else if (fields.at("name") == "outer") {
      EXPECT_EQ(fields.at("depth"), "0");
      EXPECT_EQ(fields.at("detail"), "42");
    }
  }
}

TEST(SpanTest, SpansUnwindOnException) {
  ManualClock clock;
  Telemetry telemetry({.enabled = true}, &clock);
  ScopedTelemetry scoped(telemetry);

  try {
    Span outer("outer");
    clock.advance_ns(100);
    Span inner("inner");
    clock.advance_ns(10);
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  // Depth must be back at 0: a span recorded after the unwind is a root.
  { Span after("after"); }

  for (const std::string& line : lines_of(telemetry.to_jsonl())) {
    const auto fields = parse_flat_json(line);
    if (fields.at("type") != "span") continue;
    if (fields.at("name") == "inner") EXPECT_EQ(fields.at("depth"), "1");
    if (fields.at("name") == "outer") EXPECT_EQ(fields.at("depth"), "0");
    if (fields.at("name") == "after") EXPECT_EQ(fields.at("depth"), "0");
  }
  ASSERT_EQ(telemetry.span_stats().size(), 3u);
}

TEST(ScopedTelemetryTest, DisabledInstanceInstallsNothing) {
  Telemetry telemetry({.enabled = false});
  {
    ScopedTelemetry scoped(telemetry);
    EXPECT_EQ(Telemetry::active(), nullptr);
    // All recording paths must be silent no-ops.
    Span span("ignored");
    if (auto* tel = Telemetry::active()) tel->count("never");
  }
  EXPECT_TRUE(telemetry.metrics().counter_values().empty());
  EXPECT_TRUE(telemetry.span_stats().empty());
  EXPECT_EQ(telemetry.summary(), "Telemetry summary\n");
}

TEST(ScopedTelemetryTest, RestoresPreviousInstanceOnExit) {
  Telemetry outer_instance({.enabled = true});
  ScopedTelemetry outer(outer_instance);
  ASSERT_EQ(Telemetry::active(), &outer_instance);
  {
    Telemetry inner_instance({.enabled = true});
    ScopedTelemetry inner(inner_instance);
    EXPECT_EQ(Telemetry::active(), &inner_instance);
  }
  EXPECT_EQ(Telemetry::active(), &outer_instance);
}

// ----------------------------------------------------------------- sinks

TEST(SinkTest, JsonlRoundTripsEveryRecordType) {
  ManualClock clock;
  Telemetry telemetry({.enabled = true}, &clock);
  ScopedTelemetry scoped(telemetry);
  {
    Span span("phase \"one\"\n", -3);  // name needs escaping
    clock.advance_ns(1500);
  }
  telemetry.count("beats", 12345678901234ull);
  telemetry.gauge_set("queue", 4);
  telemetry.observe("lat_us", 15);

  const auto lines = lines_of(telemetry.to_jsonl());
  ASSERT_EQ(lines.size(), 4u);
  std::map<std::string, std::map<std::string, std::string>> by_type;
  for (const std::string& line : lines) {
    auto fields = parse_flat_json(line);
    by_type[fields.at("type")] = std::move(fields);
  }

  EXPECT_EQ(by_type.at("span").at("name"), "phase \"one\"\n");
  EXPECT_EQ(by_type.at("span").at("dur_ns"), "1500");
  EXPECT_EQ(by_type.at("span").at("detail"), "-3");
  EXPECT_EQ(by_type.at("counter").at("name"), "beats");
  EXPECT_EQ(by_type.at("counter").at("value"), "12345678901234");
  EXPECT_EQ(by_type.at("gauge").at("value"), "4");
  EXPECT_EQ(by_type.at("gauge").at("max"), "4");
  EXPECT_EQ(by_type.at("histogram").at("count"), "1");
  EXPECT_EQ(by_type.at("histogram").at("sum"), "15");
}

TEST(SinkTest, SummaryListsSpansAndMetrics) {
  ManualClock clock;
  Telemetry telemetry({.enabled = true}, &clock);
  ScopedTelemetry scoped(telemetry);
  {
    Span span("sweep.step");
    clock.advance_ns(2'000'000);
  }
  telemetry.count("tg.beats_written", 512);

  const std::string summary = telemetry.summary();
  EXPECT_NE(summary.find("sweep.step"), std::string::npos);
  EXPECT_NE(summary.find("tg.beats_written"), std::string::npos);
  EXPECT_NE(summary.find("512"), std::string::npos);
}

// --------------------------------------- the never-alter-results proof

board::BoardConfig tiny_board() {
  board::BoardConfig config;
  config.geometry = hbm::HbmGeometry::test_tiny();
  config.monitor_config.noise_sigma_amps = 0.0;
  return config;
}

core::CampaignConfig fast_campaign(bool telemetry_on, unsigned threads) {
  core::CampaignConfig config;
  config.reliability.sweep = {Millivolts{1200}, Millivolts{800}, 20};
  config.reliability.batch_size = 1;
  config.power.sweep = {Millivolts{1200}, Millivolts{850}, 50};
  config.power.samples = 2;
  config.power.traffic_beats = 4;
  config.dry_run = true;
  config.threads = threads;
  config.telemetry.enabled = telemetry_on;
  return config;
}

/// Every figure CSV of one campaign run, concatenated.
std::string campaign_figures(bool telemetry_on, unsigned threads) {
  board::Vcu128Board board(tiny_board());
  core::Campaign campaign(board, fast_campaign(telemetry_on, threads));
  auto result = campaign.run();
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  if (!result.is_ok()) return {};
  const auto& r = result.value();
  return core::to_csv_fig2(r.power) + core::to_csv_fig4(r.fault_map) +
         core::to_csv_fig5(r.fault_map);
}

TEST(TelemetryNeutralityTest, FiguresByteIdenticalWithTelemetryOnOrOff) {
  for (const unsigned threads : {1u, 4u}) {
    const std::string with = campaign_figures(true, threads);
    const std::string without = campaign_figures(false, threads);
    ASSERT_FALSE(with.empty());
    EXPECT_EQ(with, without) << "telemetry altered figures at threads="
                             << threads;
  }
}

TEST(ChromeTraceTest, CampaignTraceHasOneTrackPerWorker) {
  namespace fs = std::filesystem;
  board::Vcu128Board board(tiny_board());
  auto config = fast_campaign(true, 4);
  config.dry_run = false;
  config.output_dir =
      (fs::temp_directory_path() / "hbmvolt_telemetry_trace_test").string();
  fs::remove_all(config.output_dir);

  core::Campaign campaign(board, config);
  auto result = campaign.run();
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();

  std::ifstream in(fs::path(config.output_dir) / "trace.json");
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string trace = buffer.str();

  EXPECT_EQ(trace.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(trace.find("\"process_name\""), std::string::npos);
  // The main thread and each of the 4 pool workers get a named track.
  for (const char* track : {"\"main\"", "\"worker 0\"", "\"worker 1\"",
                            "\"worker 2\"", "\"worker 3\""}) {
    EXPECT_NE(trace.find(track), std::string::npos) << track;
  }
  // Every span event is a complete ("X") event inside the array.
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);

  fs::remove_all(config.output_dir);
}

}  // namespace
}  // namespace hbmvolt::telemetry
