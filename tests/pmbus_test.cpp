// Unit tests for src/pmbus: LINEAR11/16 formats, PEC, the bus, and the
// ISL68301 regulator model + host driver.

#include <cmath>

#include <gtest/gtest.h>

#include "pmbus/bus.hpp"
#include "pmbus/commands.hpp"
#include "pmbus/isl68301.hpp"
#include "pmbus/linear.hpp"
#include "pmbus/pec.hpp"

namespace hbmvolt {
namespace {

using pmbus::Command;
using power::Isl68301;
using power::Isl68301Driver;

// -------------------------------------------------------------- LINEAR11

TEST(Linear11Test, ZeroRoundTrips) {
  EXPECT_DOUBLE_EQ(pmbus::linear11_decode(pmbus::linear11_encode(0.0)), 0.0);
}

TEST(Linear11Test, KnownEncoding) {
  // 1.0 with exponent -10 => mantissa 1024 doesn't fit; encoder picks the
  // smallest exponent with |Y| <= 1023.  Whatever it picks must decode
  // back exactly for powers of two.
  EXPECT_DOUBLE_EQ(pmbus::linear11_decode(pmbus::linear11_encode(1.0)), 1.0);
  EXPECT_DOUBLE_EQ(pmbus::linear11_decode(pmbus::linear11_encode(0.5)), 0.5);
  EXPECT_DOUBLE_EQ(pmbus::linear11_decode(pmbus::linear11_encode(-2.0)), -2.0);
}

TEST(Linear11Test, DecodeHandlesNegativeMantissaAndExponent) {
  // Y = -1 (0x7FF), N = -1 (0x1F) -> -1 * 2^-1 = -0.5.
  const std::uint16_t word = static_cast<std::uint16_t>((0x1F << 11) | 0x7FF);
  EXPECT_DOUBLE_EQ(pmbus::linear11_decode(word), -0.5);
}

class Linear11RoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(Linear11RoundTrip, EncodeDecodeWithinResolution) {
  const double value = GetParam();
  const double decoded = pmbus::linear11_decode(pmbus::linear11_encode(value));
  // Relative error bounded by the 10-bit mantissa resolution; absolute
  // error floor is half an LSB at the smallest exponent (2^-16).
  EXPECT_NEAR(decoded, value, std::max(std::abs(value) / 512.0, 0x1.0p-16));
}

INSTANTIATE_TEST_SUITE_P(Values, Linear11RoundTrip,
                         ::testing::Values(0.001, 0.035, 0.5, 1.2, 3.3, 12.0,
                                           35.0, 250.0, 1000.0, -0.7, -48.0));

TEST(Linear11Test, ClampsOutOfRange) {
  // Far beyond the format's maximum (1023 * 2^15).
  const double huge = 1e12;
  const double decoded = pmbus::linear11_decode(pmbus::linear11_encode(huge));
  EXPECT_DOUBLE_EQ(decoded, 1023.0 * 32768.0);
}

// -------------------------------------------------------------- LINEAR16

TEST(Linear16Test, VoltageRoundTripAtTypicalExponent) {
  const int exp = -12;  // 1/4096 V per LSB
  for (const double v : {0.0, 0.81, 0.98, 1.2, 1.5}) {
    auto mantissa = pmbus::linear16_encode(v, exp);
    ASSERT_TRUE(mantissa.is_ok());
    EXPECT_NEAR(pmbus::linear16_decode(mantissa.value(), exp), v, 1.0 / 4096);
  }
}

TEST(Linear16Test, RejectsNegative) {
  EXPECT_FALSE(pmbus::linear16_encode(-0.1, -12).is_ok());
}

TEST(Linear16Test, RejectsOverflow) {
  EXPECT_FALSE(pmbus::linear16_encode(17.0, -12).is_ok());  // > 65535/4096
}

TEST(VoutModeTest, RoundTripsExponent) {
  for (int exp = -16; exp <= 15; ++exp) {
    auto decoded = pmbus::vout_mode_exponent(pmbus::make_vout_mode(exp));
    ASSERT_TRUE(decoded.is_ok());
    EXPECT_EQ(decoded.value(), exp);
  }
}

TEST(VoutModeTest, RejectsNonLinearModes) {
  EXPECT_FALSE(pmbus::vout_mode_exponent(0x40).is_ok());  // VID mode bits
}

// ------------------------------------------------------------------- PEC

TEST(PecTest, StandardCheckValue) {
  // CRC-8 (poly 0x07, init 0) of "123456789" is 0xF4.
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(pmbus::pec_crc8(data), 0xF4);
}

TEST(PecTest, EmptyIsZero) {
  EXPECT_EQ(pmbus::pec_crc8(std::span<const std::uint8_t>{}), 0x00);
}

TEST(PecTest, IncrementalMatchesBatch) {
  const std::uint8_t data[] = {0xA0, 0x21, 0x34, 0x12};
  std::uint8_t crc = 0;
  for (const auto b : data) crc = pmbus::pec_crc8_step(crc, b);
  EXPECT_EQ(crc, pmbus::pec_crc8(data));
}

TEST(PecTest, SensitiveToEveryBit) {
  const std::uint8_t base[] = {0xC0, 0x21, 0x00, 0x0F};
  const std::uint8_t reference = pmbus::pec_crc8(base);
  for (int byte = 0; byte < 4; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::uint8_t mutated[4] = {base[0], base[1], base[2], base[3]};
      mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(pmbus::pec_crc8(mutated), reference)
          << "byte " << byte << " bit " << bit;
    }
  }
}

// ------------------------------------------------------------------- Bus

class EchoDevice : public pmbus::SlaveDevice {
 public:
  explicit EchoDevice(std::uint8_t address) : address_(address) {}
  [[nodiscard]] std::uint8_t address() const noexcept override {
    return address_;
  }
  Result<std::uint16_t> read_word(std::uint8_t command) override {
    return static_cast<std::uint16_t>(command * 0x0101u);
  }
  Status write_word(std::uint8_t command, std::uint16_t value) override {
    last_command = command;
    last_value = value;
    return Status::ok();
  }
  std::uint8_t last_command = 0;
  std::uint16_t last_value = 0;

 private:
  std::uint8_t address_;
};

TEST(BusTest, AttachRejectsDuplicateAddress) {
  pmbus::Bus bus;
  EchoDevice a(0x40);
  EchoDevice b(0x40);
  EXPECT_TRUE(bus.attach(&a).is_ok());
  EXPECT_EQ(bus.attach(&b).code(), StatusCode::kFailedPrecondition);
}

TEST(BusTest, UnknownAddressNacks) {
  pmbus::Bus bus;
  EXPECT_EQ(bus.read_word(0x55, 0x01).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(bus.write_byte(0x55, 0x01, 0x02).code(), StatusCode::kNotFound);
}

TEST(BusTest, WordTransactionsReachDevice) {
  pmbus::Bus bus;
  EchoDevice device(0x21);
  ASSERT_TRUE(bus.attach(&device).is_ok());
  ASSERT_TRUE(bus.write_word(0x21, 0x07, 0xBEEF).is_ok());
  EXPECT_EQ(device.last_command, 0x07);
  EXPECT_EQ(device.last_value, 0xBEEF);
  auto word = bus.read_word(0x21, 0x03);
  ASSERT_TRUE(word.is_ok());
  EXPECT_EQ(word.value(), 0x0303);
}

TEST(BusTest, DetachRemovesDevice) {
  pmbus::Bus bus;
  EchoDevice device(0x21);
  ASSERT_TRUE(bus.attach(&device).is_ok());
  bus.detach(0x21);
  EXPECT_FALSE(bus.read_word(0x21, 0x00).is_ok());
}

TEST(BusTest, PecDetectsWireCorruption) {
  pmbus::Bus bus;
  EchoDevice device(0x21);
  ASSERT_TRUE(bus.attach(&device).is_ok());
  bus.set_wire_corruptor([](std::vector<std::uint8_t>& frame) {
    frame[2] ^= 0x01;  // flip one data bit in flight
  });
  const Status status = bus.write_word(0x21, 0x07, 0x1234);
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_EQ(bus.pec_error_count(), 1u);
  // The device never saw the corrupted write.
  EXPECT_EQ(device.last_value, 0u);
}

class PecCorruptionPosition : public ::testing::TestWithParam<int> {};

TEST_P(PecCorruptionPosition, AnySingleBitFlipIsCaught) {
  pmbus::Bus bus;
  EchoDevice device(0x21);
  ASSERT_TRUE(bus.attach(&device).is_ok());
  const int bit = GetParam();
  bus.set_wire_corruptor([bit](std::vector<std::uint8_t>& frame) {
    const std::size_t byte = static_cast<std::size_t>(bit / 8) % frame.size();
    frame[byte] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  });
  EXPECT_EQ(bus.write_word(0x21, 0x07, 0x5A5A).code(), StatusCode::kDataLoss);
}

INSTANTIATE_TEST_SUITE_P(Bits, PecCorruptionPosition,
                         ::testing::Range(0, 40));

TEST(BusTest, CorruptionPassesWithoutPec) {
  pmbus::Bus bus;
  bus.set_pec_enabled(false);
  EchoDevice device(0x21);
  ASSERT_TRUE(bus.attach(&device).is_ok());
  bus.set_wire_corruptor([](std::vector<std::uint8_t>& frame) {
    frame[2] ^= 0x01;
  });
  // Without PEC the corrupted value is silently accepted -- the hazard
  // PEC exists to prevent.
  ASSERT_TRUE(bus.write_word(0x21, 0x07, 0x1234).is_ok());
  EXPECT_EQ(device.last_value, 0x1235);
}

TEST(BusTest, CountsTransactions) {
  pmbus::Bus bus;
  EchoDevice device(0x21);
  ASSERT_TRUE(bus.attach(&device).is_ok());
  (void)bus.write_word(0x21, 0x01, 1);
  (void)bus.read_word(0x21, 0x01);
  EXPECT_EQ(bus.transaction_count(), 2u);
}

// -------------------------------------------------------------- ISL68301

class Isl68301Test : public ::testing::Test {
 protected:
  Isl68301Test() : regulator_(Isl68301::Config{}) {
    EXPECT_TRUE(bus_.attach(&regulator_).is_ok());
  }

  pmbus::Bus bus_;
  Isl68301 regulator_;
};

TEST_F(Isl68301Test, PowersUpAtNominal) {
  EXPECT_EQ(regulator_.vout_nominal().value, 1200);
  EXPECT_TRUE(regulator_.output_enabled());
}

TEST_F(Isl68301Test, VoutCommandChangesOutput) {
  Isl68301Driver driver(bus_, 0x60);
  ASSERT_TRUE(driver.set_uv_fault_limit(Millivolts{0}).is_ok());
  ASSERT_TRUE(driver.set_vout(Millivolts{980}).is_ok());
  EXPECT_EQ(regulator_.vout_nominal().value, 980);
}

TEST_F(Isl68301Test, VoutListenerFires) {
  std::vector<int> seen;
  regulator_.add_vout_listener(
      [&seen](Millivolts v) { seen.push_back(v.value); });
  Isl68301Driver driver(bus_, 0x60);
  ASSERT_TRUE(driver.set_uv_fault_limit(Millivolts{0}).is_ok());
  ASSERT_TRUE(driver.set_vout(Millivolts{1100}).is_ok());
  ASSERT_TRUE(driver.set_vout(Millivolts{1100}).is_ok());  // no change
  ASSERT_TRUE(driver.set_vout(Millivolts{900}).is_ok());
  EXPECT_EQ(seen, (std::vector<int>{1100, 900}));
}

TEST_F(Isl68301Test, RejectsVoutAboveMax) {
  Isl68301Driver driver(bus_, 0x60);
  EXPECT_FALSE(driver.set_vout(Millivolts{1600}).is_ok());
  EXPECT_EQ(regulator_.vout_nominal().value, 1200);
}

TEST_F(Isl68301Test, UvFaultLatchesOutputOff) {
  Isl68301Driver driver(bus_, 0x60);
  // Default UV fault limit is 1.08 V; commanding 0.9 V must latch off.
  ASSERT_TRUE(driver.set_vout(Millivolts{900}).is_ok());
  EXPECT_TRUE(regulator_.uv_fault_latched());
  EXPECT_EQ(regulator_.vout_nominal().value, 0);
  auto status = driver.read_status_vout();
  ASSERT_TRUE(status.is_ok());
  EXPECT_TRUE(status.value() & pmbus::kStatusVoutUvFault);
  // Raising the command alone does not clear the latch.
  ASSERT_TRUE(driver.set_vout(Millivolts{1200}).is_ok());
  EXPECT_EQ(regulator_.vout_nominal().value, 0);
  // CLEAR_FAULTS recovers.
  ASSERT_TRUE(driver.clear_faults().is_ok());
  EXPECT_EQ(regulator_.vout_nominal().value, 1200);
}

TEST_F(Isl68301Test, LoweredUvLimitAllowsUndervolting) {
  Isl68301Driver driver(bus_, 0x60);
  ASSERT_TRUE(driver.set_uv_fault_limit(Millivolts{100}).is_ok());
  ASSERT_TRUE(driver.set_vout(Millivolts{810}).is_ok());
  EXPECT_EQ(regulator_.vout_nominal().value, 810);
  EXPECT_FALSE(regulator_.uv_fault_latched());
}

TEST_F(Isl68301Test, OperationOffKillsOutput) {
  ASSERT_TRUE(
      bus_.write_byte(0x60, static_cast<std::uint8_t>(Command::kOperation),
                      0x00)
          .is_ok());
  EXPECT_EQ(regulator_.vout_nominal().value, 0);
  ASSERT_TRUE(
      bus_.write_byte(0x60, static_cast<std::uint8_t>(Command::kOperation),
                      pmbus::kOperationOn)
          .is_ok());
  EXPECT_EQ(regulator_.vout_nominal().value, 1200);
}

TEST_F(Isl68301Test, MarginingSelectsMarginVoltages) {
  ASSERT_TRUE(bus_.write_byte(0x60,
                              static_cast<std::uint8_t>(Command::kOperation),
                              pmbus::kOperationOn | pmbus::kOperationMarginHigh)
                  .is_ok());
  EXPECT_EQ(regulator_.vout_nominal().value, 1260);
  ASSERT_TRUE(bus_.write_byte(0x60,
                              static_cast<std::uint8_t>(Command::kOperation),
                              pmbus::kOperationOn | pmbus::kOperationMarginLow)
                  .is_ok());
  EXPECT_EQ(regulator_.vout_nominal().value, 1140);
}

TEST_F(Isl68301Test, TelemetryReflectsLoadModel) {
  regulator_.set_load_model([](Millivolts) { return Amps{10.0}; });
  Isl68301Driver driver(bus_, 0x60);
  auto iout = driver.read_iout();
  ASSERT_TRUE(iout.is_ok());
  EXPECT_NEAR(iout.value().value, 10.0, 0.05);
  auto vout = driver.read_vout();
  ASSERT_TRUE(vout.is_ok());
  // Droop: 10 A * 0.2 mOhm = 2 mV.
  EXPECT_EQ(vout.value().value, 1198);
  auto pout = driver.read_pout();
  ASSERT_TRUE(pout.is_ok());
  EXPECT_NEAR(pout.value().value, 11.98, 0.1);
}

TEST_F(Isl68301Test, TemperatureIsPaperOperatingPoint) {
  Isl68301Driver driver(bus_, 0x60);
  auto temperature = driver.read_temperature();
  ASSERT_TRUE(temperature.is_ok());
  EXPECT_NEAR(temperature.value().value, 35.0, 0.5);
}

TEST_F(Isl68301Test, MfrBlocksIdentifyDevice) {
  auto model = regulator_.read_block(
      static_cast<std::uint8_t>(Command::kMfrModel));
  ASSERT_TRUE(model.is_ok());
  const std::string name(model.value().begin(), model.value().end());
  EXPECT_EQ(name, "ISL68301");
}

TEST_F(Isl68301Test, ResetRestoresDefaults) {
  Isl68301Driver driver(bus_, 0x60);
  ASSERT_TRUE(driver.set_uv_fault_limit(Millivolts{0}).is_ok());
  ASSERT_TRUE(driver.set_vout(Millivolts{850}).is_ok());
  regulator_.reset();
  EXPECT_EQ(regulator_.vout_nominal().value, 1200);
  // The UV limit is back at its default, so undervolting latches again.
  ASSERT_TRUE(driver.set_vout(Millivolts{850}).is_ok());
  EXPECT_TRUE(regulator_.uv_fault_latched());
}

TEST_F(Isl68301Test, UnknownCommandNacks) {
  EXPECT_EQ(regulator_.read_word(0xF0).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(regulator_.write_byte(0xF0, 1).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace hbmvolt
