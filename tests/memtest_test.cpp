// Unit tests for the March memory-test algorithms.

#include <gtest/gtest.h>

#include "faults/fault_overlay.hpp"
#include "memtest/march.hpp"

namespace hbmvolt {
namespace {

using memtest::Direction;
using memtest::MarchAlgorithm;
using memtest::MarchRunner;
using memtest::Op;

class MarchTest : public ::testing::Test {
 protected:
  MarchTest()
      : geometry_(hbm::HbmGeometry::test_tiny()),
        injector_(faults::FaultModel(geometry_, faults::FaultModelConfig{})),
        stack_(geometry_, 0, injector_, 21) {}

  void set_voltage(Millivolts v) {
    injector_.set_voltage(v);
    stack_.on_voltage_change(v);
  }

  hbm::HbmGeometry geometry_;
  faults::FaultInjector injector_;
  hbm::HbmStack stack_;
};

TEST(MarchAlgorithmTest, OpCounts) {
  EXPECT_EQ(memtest::mats_plus().ops_per_cell(), 5u);
  EXPECT_EQ(memtest::march_x().ops_per_cell(), 6u);
  EXPECT_EQ(memtest::march_y().ops_per_cell(), 8u);
  EXPECT_EQ(memtest::march_c_minus().ops_per_cell(), 10u);
  EXPECT_EQ(memtest::march_b().ops_per_cell(), 17u);
  EXPECT_EQ(memtest::solid_patterns().ops_per_cell(), 4u);
}

TEST(MarchAlgorithmTest, AllProvidedAlgorithmsReadBothStates) {
  const auto algorithms = memtest::all_march_algorithms();
  EXPECT_EQ(algorithms.size(), 6u);
  for (const auto& algorithm : algorithms) {
    EXPECT_TRUE(algorithm.reads_both_states()) << algorithm.name;
  }
}

TEST(MarchAlgorithmTest, IncompleteAlgorithmDetected) {
  const MarchAlgorithm only_zeros{"w0/r0 only",
                                  {{Direction::kUp, {Op::kW0}},
                                   {Direction::kUp, {Op::kR0}}}};
  EXPECT_FALSE(only_zeros.reads_both_states());
}

TEST_F(MarchTest, CleanMemoryPassesEverything) {
  MarchRunner runner(stack_, 4);
  for (const auto& algorithm : memtest::all_march_algorithms()) {
    auto result = runner.run(algorithm);
    ASSERT_TRUE(result.is_ok()) << algorithm.name;
    EXPECT_EQ(result.value().faulty_cells, 0u) << algorithm.name;
    EXPECT_EQ(result.value().mismatched_reads, 0u) << algorithm.name;
    EXPECT_EQ(result.value().cells, geometry_.bits_per_pc);
  }
}

TEST_F(MarchTest, OpAccountingMatchesAlgorithm) {
  MarchRunner runner(stack_, 0);
  const auto algorithm = memtest::march_c_minus();
  auto result = runner.run(algorithm);
  ASSERT_TRUE(result.is_ok());
  const std::uint64_t beats = geometry_.beats_per_pc();
  EXPECT_EQ(result.value().read_ops, 5u * beats);   // r0,r1,r0,r1,r0
  EXPECT_EQ(result.value().write_ops, 5u * beats);  // w0,w1,w0,w1,w0
}

class MarchCoverage
    : public MarchTest,
      public ::testing::WithParamInterface<int> {};

// Every complete March test finds *exactly* the stuck-cell set, matching
// the injector's ground truth -- including the paper's Algorithm 1.
TEST_P(MarchCoverage, FindsExactlyTheStuckCells) {
  const int mv = GetParam();
  set_voltage(Millivolts{mv});
  const unsigned pc = 4;  // weak PC
  const std::uint64_t truth = injector_.overlay(pc).total_count();
  MarchRunner runner(stack_, pc);
  for (const auto& algorithm : memtest::all_march_algorithms()) {
    auto result = runner.run(algorithm);
    ASSERT_TRUE(result.is_ok()) << algorithm.name;
    EXPECT_EQ(result.value().faulty_cells, truth)
        << algorithm.name << " at " << mv;
  }
}

INSTANTIATE_TEST_SUITE_P(Voltages, MarchCoverage,
                         ::testing::Values(960, 930, 900, 870, 845));

TEST_F(MarchTest, CrashedStackPropagates) {
  set_voltage(Millivolts{800});
  MarchRunner runner(stack_, 0);
  auto result = runner.run(memtest::mats_plus());
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace hbmvolt
