// Unit tests for row retirement, plus the new TG data patterns and the
// fault model's temperature extension.

#include <map>
#include <utility>

#include <gtest/gtest.h>

#include "axi/traffic_gen.hpp"
#include "ecc/ecc_channel.hpp"
#include "faults/fault_overlay.hpp"
#include "hbm/stack.hpp"
#include "mitigate/remap.hpp"
#include "mitigate/row_retirement.hpp"
#include "mitigate/scheme.hpp"

namespace hbmvolt {
namespace {

using mitigate::RetirementMap;

class RetirementTest : public ::testing::Test {
 protected:
  RetirementTest()
      : geometry_(hbm::HbmGeometry::test_tiny()),
        injector_(faults::FaultModel(geometry_, faults::FaultModelConfig{})) {}

  hbm::HbmGeometry geometry_;
  faults::FaultInjector injector_;
};

TEST_F(RetirementTest, GuardbandVoltageRetiresNothing) {
  const auto map = RetirementMap::build(injector_, Millivolts{1000});
  EXPECT_EQ(map.rows_retired_total(), 0u);
  EXPECT_DOUBLE_EQ(map.capacity_fraction(), 1.0);
}

TEST_F(RetirementTest, RetiredRowsCoverEveryStuckCell) {
  const auto map = RetirementMap::build(injector_, Millivolts{920});
  injector_.set_voltage(Millivolts{920});
  std::uint64_t stuck_total = 0;
  for (unsigned pc = 0; pc < geometry_.total_pcs(); ++pc) {
    injector_.overlay(pc).for_each(
        [&](std::uint64_t bit, faults::StuckPolarity) {
          ++stuck_total;
          EXPECT_TRUE(map.beat_retired(pc, bit / geometry_.bits_per_beat));
        });
  }
  EXPECT_GT(stuck_total, 0u);
  EXPECT_GT(map.rows_retired_total(), 0u);
}

TEST_F(RetirementTest, SurvivingBeatsAreFaultFree) {
  const Millivolts v{910};
  const auto map = RetirementMap::build(injector_, v);
  injector_.set_voltage(v);
  hbm::HbmStack stack(geometry_, 0, injector_, 3);
  stack.on_voltage_change(v);

  std::uint64_t surviving = 0;
  for (unsigned pc = 0; pc < geometry_.pcs_per_stack(); ++pc) {
    for (std::uint64_t beat = 0; beat < geometry_.beats_per_pc(); ++beat) {
      if (map.beat_retired(pc, beat)) continue;
      ASSERT_TRUE(stack.write_beat(pc, beat, hbm::kBeatAllOnes).is_ok());
      auto data = stack.read_beat(pc, beat);
      ASSERT_TRUE(data.is_ok());
      EXPECT_EQ(data.value(), hbm::kBeatAllOnes)
          << "pc " << pc << " beat " << beat;
      ++surviving;
    }
  }
  EXPECT_GT(surviving, 0u);
}

TEST_F(RetirementTest, MonotoneInVoltage) {
  const auto shallow = RetirementMap::build(injector_, Millivolts{940});
  const auto deep = RetirementMap::build(injector_, Millivolts{900});
  EXPECT_GE(deep.rows_retired_total(), shallow.rows_retired_total());
  EXPECT_LE(deep.capacity_fraction(), shallow.capacity_fraction());
}

TEST_F(RetirementTest, ClusteringMakesRetirementCheap) {
  // With clustering, many stuck cells share few rows; with uniform
  // placement, the same cell count spreads over many more rows.
  faults::WeakCellConfig uniform;
  uniform.cluster_count = 0;
  faults::FaultInjector uniform_injector(
      faults::FaultModel(geometry_, faults::FaultModelConfig{}), uniform);

  const Millivolts v{905};
  const auto clustered = RetirementMap::build(injector_, v);
  const auto spread = RetirementMap::build(uniform_injector, v);
  EXPECT_LT(clustered.rows_retired_total(), spread.rows_retired_total());
}

TEST_F(RetirementTest, SinglePcBuildTouchesOnlyThatPc) {
  const auto map = RetirementMap::build_for_pc(injector_, 18, Millivolts{920});
  EXPECT_GT(map.rows_retired(18), 0u);
  for (unsigned pc = 0; pc < geometry_.total_pcs(); ++pc) {
    if (pc != 18) {
      EXPECT_EQ(map.rows_retired(pc), 0u) << pc;
    }
  }
  EXPECT_LT(map.pc_capacity_fraction(18), 1.0);
  EXPECT_DOUBLE_EQ(map.pc_capacity_fraction(0), 1.0);
}

TEST_F(RetirementTest, RestoresInjectorVoltage) {
  injector_.set_voltage(Millivolts{1000});
  (void)RetirementMap::build(injector_, Millivolts{880});
  EXPECT_EQ(injector_.voltage().value, 1000);
}

// ------------------------------------------------------ RemappedChannel

class RemapTest : public RetirementTest {
 protected:
  RemapTest() : stack_(geometry_, 1, injector_, 9) {}

  void set_voltage(Millivolts v) {
    injector_.set_voltage(v);
    stack_.on_voltage_change(v);
  }

  hbm::HbmStack stack_;  // stack 1: hosts the weak PC18 (local 2)
};

TEST_F(RemapTest, IdentityWhenNothingRetired) {
  const auto retirement = RetirementMap::build(injector_, Millivolts{1000});
  mitigate::RemappedChannel channel(stack_, 2, retirement);
  EXPECT_EQ(channel.usable_beats(), geometry_.beats_per_pc());
  EXPECT_DOUBLE_EQ(channel.capacity_fraction(), 1.0);
  EXPECT_EQ(channel.physical_beat(17).value(), 17u);
}

TEST_F(RemapTest, SkipsRetiredRowsAndStaysContiguous) {
  const Millivolts v{915};
  const auto retirement = RetirementMap::build(injector_, v);
  mitigate::RemappedChannel channel(stack_, 2, retirement);  // PC18
  const unsigned pc_global = stack_.global_pc(2);
  ASSERT_GT(retirement.rows_retired(pc_global), 0u);
  EXPECT_LT(channel.usable_beats(), geometry_.beats_per_pc());

  // Every logical beat maps to a non-retired physical beat; the mapping
  // is strictly increasing (contiguous compaction).
  std::uint64_t previous = 0;
  for (std::uint64_t logical = 0; logical < channel.usable_beats();
       ++logical) {
    const std::uint64_t physical = channel.physical_beat(logical).value();
    EXPECT_FALSE(retirement.beat_retired(pc_global, physical));
    if (logical > 0) {
      EXPECT_GT(physical, previous);
    }
    previous = physical;
  }
}

TEST_F(RemapTest, RemappedSpaceIsFaultFreeUnderUndervolt) {
  const Millivolts v{915};
  const auto retirement = RetirementMap::build(injector_, v);
  set_voltage(v);
  mitigate::RemappedChannel channel(stack_, 2, retirement);
  for (std::uint64_t logical = 0; logical < channel.usable_beats();
       ++logical) {
    ASSERT_TRUE(channel.write_beat(logical, hbm::kBeatAllOnes).is_ok());
    auto data = channel.read_beat(logical);
    ASSERT_TRUE(data.is_ok());
    EXPECT_EQ(data.value(), hbm::kBeatAllOnes) << logical;
  }
}

TEST_F(RemapTest, OutOfRangeLogicalBeatRejected) {
  const auto retirement = RetirementMap::build(injector_, Millivolts{915});
  mitigate::RemappedChannel channel(stack_, 2, retirement);
  EXPECT_EQ(channel.physical_beat(channel.usable_beats()).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_FALSE(
      channel.write_beat(channel.usable_beats(), hbm::kBeatAllOnes).is_ok());
}

// --------------------------------------------------------- TG patterns

class PatternTest : public ::testing::Test {
 protected:
  PatternTest()
      : geometry_(hbm::HbmGeometry::test_tiny()),
        injector_(faults::FaultModel(geometry_, faults::FaultModelConfig{})),
        stack_(geometry_, 0, injector_, 3) {}

  void set_voltage(Millivolts v) {
    injector_.set_voltage(v);
    stack_.on_voltage_change(v);
  }

  hbm::HbmGeometry geometry_;
  faults::FaultInjector injector_;
  hbm::HbmStack stack_;
};

TEST_F(PatternTest, CommandDataGenerators) {
  axi::TgCommand command;
  command.kind = axi::PatternKind::kSolid;
  command.pattern = hbm::kBeatAllOnes;
  EXPECT_EQ(axi::command_data(command, 7), hbm::kBeatAllOnes);

  command.kind = axi::PatternKind::kCheckerboard;
  EXPECT_EQ(axi::command_data(command, 0)[0], 0x5555555555555555ull);
  EXPECT_EQ(axi::command_data(command, 1)[0], 0xAAAAAAAAAAAAAAAAull);

  command.kind = axi::PatternKind::kAddressAsData;
  EXPECT_EQ(axi::command_data(command, 5)[2], 5u * 4 + 2);

  command.kind = axi::PatternKind::kRandom;
  command.pattern_seed = 9;
  const auto a = axi::command_data(command, 3);
  EXPECT_EQ(a, axi::command_data(command, 3));  // reproducible
  EXPECT_NE(a, axi::command_data(command, 4));
  command.pattern_seed = 10;
  EXPECT_NE(a, axi::command_data(command, 3));  // seed-dependent
}

class PatternKindSweep
    : public PatternTest,
      public ::testing::WithParamInterface<axi::PatternKind> {};

TEST_P(PatternKindSweep, CleanAtNominalFaultyBelowGuardband) {
  axi::TrafficGenerator tg(stack_, 4);
  axi::TgCommand command;
  command.kind = GetParam();
  command.pattern = hbm::kBeatAllOnes;
  ASSERT_TRUE(tg.run(command).is_ok());
  EXPECT_EQ(tg.stats().total_flips(), 0u);

  set_voltage(Millivolts{880});
  tg.reset_stats();
  ASSERT_TRUE(tg.run(command).is_ok());
  EXPECT_GT(tg.stats().total_flips(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Kinds, PatternKindSweep,
                         ::testing::Values(axi::PatternKind::kSolid,
                                           axi::PatternKind::kCheckerboard,
                                           axi::PatternKind::kAddressAsData,
                                           axi::PatternKind::kRandom));

TEST_F(PatternTest, CheckerboardExposesBothPolarities) {
  set_voltage(Millivolts{870});
  axi::TrafficGenerator tg(stack_, 4);
  axi::TgCommand command;
  command.kind = axi::PatternKind::kCheckerboard;
  ASSERT_TRUE(tg.run(command).is_ok());
  // A checkerboard writes ~half the cells to 1 and half to 0, so both
  // flip directions appear in a single pass (solid patterns need two).
  EXPECT_GT(tg.stats().flips_1to0, 0u);
  EXPECT_GT(tg.stats().flips_0to1, 0u);
}

TEST_F(PatternTest, SolidPatternsTogetherSeeEveryStuckCell) {
  set_voltage(Millivolts{880});
  axi::TrafficGenerator tg(stack_, 4);
  axi::TgCommand ones{axi::MacroOp::kWriteRead, 0, 0, hbm::kBeatAllOnes,
                      true};
  axi::TgCommand zeros{axi::MacroOp::kWriteRead, 0, 0, hbm::kBeatAllZeros,
                       true};
  ASSERT_TRUE(tg.run(ones).is_ok());
  ASSERT_TRUE(tg.run(zeros).is_ok());
  EXPECT_EQ(tg.stats().total_flips(),
            injector_.overlay(4).total_count());
}

// -------------------------------------------------------- Temperature

TEST(TemperatureTest, ReferencePointKeepsAnchors) {
  faults::FaultModelConfig config;
  config.temperature_c = 35.0;
  const faults::FaultModel model(hbm::HbmGeometry::test_tiny(), config);
  EXPECT_EQ(model.onset_voltage(18).value, 970);
}

TEST(TemperatureTest, HotterSiliconFaultsEarlier) {
  faults::FaultModelConfig hot;
  hot.temperature_c = 85.0;
  const faults::FaultModel hot_model(hbm::HbmGeometry::test_tiny(), hot);
  const faults::FaultModel ref(hbm::HbmGeometry::test_tiny(),
                               faults::FaultModelConfig{});
  // +50 degC at 0.25 mV/degC: onsets shift up ~12-13 mV.
  for (unsigned pc = 0; pc < 32; ++pc) {
    const int shift =
        hot_model.onset_voltage(pc).value - ref.onset_voltage(pc).value;
    EXPECT_GE(shift, 12) << pc;
    EXPECT_LE(shift, 13) << pc;
  }
  // More stuck cells at any unsafe voltage.
  EXPECT_GT(hot_model.device_stuck_fraction(Millivolts{900}),
            ref.device_stuck_fraction(Millivolts{900}));
}

TEST_F(RetirementTest, FilteredThresholdMatchesRowFaultCounts) {
  // build_filtered(2) semantics, exactly: a retired row holds >= 2 stuck
  // cells, a retained row at most 1 -- the single fault SECDED absorbs.
  const Millivolts v{930};
  const auto map = RetirementMap::build_filtered(injector_, v, 2);
  injector_.set_voltage(v);
  std::uint64_t retained_rows_with_fault = 0;
  for (unsigned pc = 0; pc < geometry_.total_pcs(); ++pc) {
    std::map<std::pair<unsigned, std::uint64_t>, unsigned> counts;
    injector_.overlay(pc).for_each(
        [&](std::uint64_t bit, faults::StuckPolarity) {
          const auto loc =
              hbm::decompose_beat(geometry_, bit / geometry_.bits_per_beat);
          ++counts[{loc.bank, loc.row}];
        });
    for (const auto& [key, count] : counts) {
      if (count >= 2) {
        EXPECT_TRUE(map.row_retired(pc, key.first, key.second))
            << "pc " << pc << " bank " << key.first << " row " << key.second
            << " has " << count << " faults but was retained";
      } else {
        EXPECT_FALSE(map.row_retired(pc, key.first, key.second));
        ++retained_rows_with_fault;
      }
    }
  }
  // The filter must actually be keeping some single-fault rows, or the
  // test proves nothing.
  EXPECT_GT(retained_rows_with_fault, 0u);
  EXPECT_GT(map.rows_retired_total(), 0u);
  // ...and the ECC-aware map keeps more capacity than blanket retirement.
  const auto blanket = RetirementMap::build(injector_, v);
  EXPECT_GT(map.capacity_fraction(), blanket.capacity_fraction());
}

TEST_F(RetirementTest, ThresholdTwoPlusSecdedHasZeroUncorrectable) {
  // The contract the runtime's retire rung leans on: after filtered
  // retirement at threshold 2, every retained beat decodes cleanly
  // through SECDED -- at most one stuck bit per codeword remains.
  const Millivolts v{930};
  const auto map = RetirementMap::build_filtered(injector_, v, 2);
  injector_.set_voltage(v);
  hbm::HbmStack stack(geometry_, 0, injector_, 3);
  stack.on_voltage_change(v);
  for (unsigned pc = 0; pc < geometry_.pcs_per_stack(); ++pc) {
    ecc::EccChannel ecc(stack, pc);
    for (std::uint64_t beat = 0; beat < ecc.data_beats(); ++beat) {
      if (map.beat_retired(pc, beat)) continue;
      if (map.beat_retired(pc, ecc.parity_beat_of(beat))) continue;
      ASSERT_TRUE(ecc.write_beat(beat, hbm::kBeatAllOnes).is_ok());
      auto got = ecc.read_beat(beat);
      ASSERT_TRUE(got.is_ok());
      EXPECT_EQ(got.value().uncorrectable, 0u)
          << "pc " << pc << " beat " << beat;
      EXPECT_EQ(got.value().data, hbm::kBeatAllOnes);
    }
  }
}

TEST_F(RetirementTest, RebuildCoversMidRunWeakCellBurst) {
  // Online re-retirement: a weak-cell burst lands mid-run (stuck at
  // every voltage), and a rebuild of the filtered map picks up the new
  // fault clusters that cross the threshold.
  const Millivolts v{950};
  const unsigned pc = 4;  // weak PC with a real population at 950 mV
  const auto before = RetirementMap::build_filtered(injector_, v, 2);

  injector_.add_burst(pc, 64, 64);
  const auto after = RetirementMap::build_filtered(injector_, v, 2);
  EXPECT_GT(after.rows_retired_total(), before.rows_retired_total());
  EXPECT_LT(after.capacity_fraction(), before.capacity_fraction());

  // The rebuilt map again satisfies the threshold contract on the
  // bursted PC: every >= 2-fault row is retired.
  injector_.set_voltage(v);
  std::map<std::pair<unsigned, std::uint64_t>, unsigned> counts;
  injector_.overlay(pc).for_each(
      [&](std::uint64_t bit, faults::StuckPolarity) {
        const auto loc =
            hbm::decompose_beat(geometry_, bit / geometry_.bits_per_beat);
        ++counts[{loc.bank, loc.row}];
      });
  ASSERT_FALSE(counts.empty());
  for (const auto& [key, count] : counts) {
    if (count >= 2) {
      EXPECT_TRUE(after.row_retired(pc, key.first, key.second));
    }
  }
}

TEST(MitigationSchemeTest, RegistryDescribesEveryScheme) {
  using mitigate::MitigationKind;
  const auto& secded = mitigate::scheme_info(MitigationKind::kSecded);
  EXPECT_STREQ(secded.name, "secded");
  EXPECT_EQ(secded.codec, ecc::WordCodec::kSecded);
  EXPECT_FALSE(secded.striped);
  EXPECT_DOUBLE_EQ(secded.check_overhead, 1.0 / 8.0);

  const auto& dected = mitigate::scheme_info(MitigationKind::kDected);
  EXPECT_STREQ(dected.name, "dected");
  EXPECT_EQ(dected.codec, ecc::WordCodec::kDected);
  EXPECT_FALSE(dected.striped);
  EXPECT_DOUBLE_EQ(dected.check_overhead, 2.0 / 8.0);

  const auto& stripe = mitigate::scheme_info(MitigationKind::kStripe);
  EXPECT_STREQ(stripe.name, "stripe");
  EXPECT_EQ(stripe.codec, ecc::WordCodec::kSecded);
  EXPECT_TRUE(stripe.striped);

  for (unsigned k = 0; k < mitigate::kMitigationKindCount; ++k) {
    const auto kind = static_cast<MitigationKind>(k);
    EXPECT_STREQ(mitigate::to_string(kind),
                 mitigate::scheme_info(kind).name);
  }
}

TEST(MitigationSchemeTest, ParseRoundTripsAndRejectsJunk) {
  using mitigate::MitigationKind;
  for (unsigned k = 0; k < mitigate::kMitigationKindCount; ++k) {
    const auto kind = static_cast<MitigationKind>(k);
    MitigationKind parsed = MitigationKind::kSecded;
    ASSERT_TRUE(mitigate::parse_mitigation(mitigate::to_string(kind),
                                           &parsed));
    EXPECT_EQ(parsed, kind);
  }
  MitigationKind untouched = MitigationKind::kDected;
  EXPECT_FALSE(mitigate::parse_mitigation("raid6", &untouched));
  EXPECT_FALSE(mitigate::parse_mitigation("", &untouched));
  EXPECT_FALSE(mitigate::parse_mitigation("SECDED", &untouched));
  EXPECT_EQ(untouched, MitigationKind::kDected);
}

TEST(TemperatureTest, ColderSiliconGainsMargin) {
  faults::FaultModelConfig cold;
  cold.temperature_c = 15.0;
  const faults::FaultModel cold_model(hbm::HbmGeometry::test_tiny(), cold);
  const faults::FaultModel ref(hbm::HbmGeometry::test_tiny(),
                               faults::FaultModelConfig{});
  EXPECT_LT(cold_model.onset_voltage(18).value,
            ref.onset_voltage(18).value);
}

}  // namespace
}  // namespace hbmvolt
