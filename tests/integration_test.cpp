// End-to-end integration tests: the full paper pipeline on the default
// simulation geometry, checking every headline anchor in one place.
// These run the same code paths the bench/ binaries use, with reduced
// batch sizes for speed.

#include <gtest/gtest.h>

#include "board/vcu128.hpp"
#include "core/fault_characterizer.hpp"
#include "core/guardband.hpp"
#include "core/power_characterizer.hpp"
#include "core/reliability_tester.hpp"
#include "core/report.hpp"
#include "core/tradeoff.hpp"

namespace hbmvolt {
namespace {

using board::BoardConfig;
using board::Vcu128Board;

// One shared fixture runs the expensive sweeps once.
class PaperPipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    BoardConfig config;
    config.geometry = hbm::HbmGeometry::simulation_default();
    config.monitor_config.noise_sigma_amps = 0.002;
    board_ = new Vcu128Board(config);

    // Reliability sweep: full grid at batch 1 (deterministic model).
    core::ReliabilityConfig rel_config;
    rel_config.sweep = {Millivolts{1200}, Millivolts{810}, 10};
    rel_config.batch_size = 1;
    core::ReliabilityTester tester(*board_, rel_config);
    map_ = new faults::FaultMap(std::move(tester.run()).value());

    // Power sweep over the paper's five utilization series.
    core::PowerSweepConfig power_config;
    power_config.sweep = {Millivolts{1200}, Millivolts{810}, 10};
    power_config.samples = 4;
    power_config.traffic_beats = 16;
    core::PowerCharacterizer characterizer(*board_, power_config);
    power_ = new core::PowerCharacterization(
        std::move(characterizer.run()).value());
  }

  static void TearDownTestSuite() {
    delete power_;
    delete map_;
    delete board_;
    power_ = nullptr;
    map_ = nullptr;
    board_ = nullptr;
  }

  static Vcu128Board* board_;
  static faults::FaultMap* map_;
  static core::PowerCharacterization* power_;
};

Vcu128Board* PaperPipeline::board_ = nullptr;
faults::FaultMap* PaperPipeline::map_ = nullptr;
core::PowerCharacterization* PaperPipeline::power_ = nullptr;

// --------------------------------------------------- Guardband (Sec. I)

TEST_F(PaperPipeline, GuardbandLandmarks) {
  const auto result = core::analyze_guardband(*map_, Millivolts{1200});
  EXPECT_EQ(result.v_min.value, 980);          // paper: V_min = 0.98 V
  EXPECT_EQ(result.v_first_fault.value, 970);  // first flips at 0.97 V
  EXPECT_EQ(result.v_critical.value, 810);     // V_critical = 0.81 V
  // Paper quotes "19%" for the 0.22 V guardband (18.3% exactly).
  EXPECT_NEAR(result.guardband_fraction, 0.183, 0.002);
}

TEST_F(PaperPipeline, NoFaultsAnywhereInGuardband) {
  for (const auto v : map_->voltages()) {
    if (v >= Millivolts{980}) {
      EXPECT_EQ(map_->device_record(v).total_flips(), 0u) << v.value;
    }
  }
}

TEST_F(PaperPipeline, ExponentialFaultGrowth) {
  // Device-level fault counts grow geometrically (>=1.5x per 10 mV step;
  // per-PC growth rates are 42..80 /V, i.e. 1.5x..2.2x per step) from the
  // onset region down to ~0.86 V.
  std::uint64_t prev = 0;
  for (int mv = 960; mv >= 860; mv -= 10) {
    const auto record = map_->device_record(Millivolts{mv});
    EXPECT_GT(record.total_flips(), prev + prev / 2) << mv;
    prev = record.total_flips();
  }
}

TEST_F(PaperPipeline, EntireMemoryFaultyBelow841) {
  for (const int mv : {840, 830, 820, 810}) {
    const auto record = map_->device_record(Millivolts{mv});
    // Both patterns: every cell flips under exactly one of them.
    EXPECT_DOUBLE_EQ(record.rate(), 0.5) << mv;
  }
}

// ------------------------------------------------------ Power (Fig 2/3)

TEST_F(PaperPipeline, Savings15xAtVminForAllUtilizations) {
  for (const auto& series : power_->series) {
    const auto savings = power_->savings_factor(series, Millivolts{980});
    ASSERT_TRUE(savings.has_value());
    EXPECT_NEAR(*savings, 1.5, 0.05) << series.ports << " ports";
  }
}

TEST_F(PaperPipeline, Savings23xAt850ForAllUtilizations) {
  for (const auto& series : power_->series) {
    const auto savings = power_->savings_factor(series, Millivolts{850});
    ASSERT_TRUE(savings.has_value());
    EXPECT_NEAR(*savings, 2.3, 0.15) << series.ports << " ports";
  }
}

TEST_F(PaperPipeline, IdleIsOneThirdOfFullLoad) {
  const auto* idle = &power_->series.front();
  const auto* full = &power_->series.back();
  ASSERT_EQ(idle->ports, 0u);
  ASSERT_EQ(full->ports, 32u);
  const auto idle_nominal = idle->power_at(Millivolts{1200});
  ASSERT_TRUE(idle_nominal.has_value());
  EXPECT_NEAR(idle_nominal->value / power_->reference.value, 1.0 / 3.0,
              0.03);
}

TEST_F(PaperPipeline, AlphaClfWithin3PercentAboveGuardbandFloor) {
  for (const auto& series : power_->series) {
    for (std::size_t i = 0; i < series.voltages.size(); ++i) {
      if (series.voltages[i] < Millivolts{980}) continue;
      EXPECT_NEAR(power_->alpha_clf_normalized(series, i), 1.0, 0.03)
          << series.ports << " ports at " << series.voltages[i].value;
    }
  }
}

TEST_F(PaperPipeline, AlphaClfDropsAbout14PercentAt850) {
  for (const auto& series : power_->series) {
    for (std::size_t i = 0; i < series.voltages.size(); ++i) {
      if (series.voltages[i] == Millivolts{850}) {
        EXPECT_NEAR(power_->alpha_clf_normalized(series, i), 0.86, 0.04)
            << series.ports << " ports";
      }
    }
  }
}

// -------------------------------------------------- Reliability (Fig 4/5)

TEST_F(PaperPipeline, StackVariationAnchor) {
  const auto variation = core::analyze_stack_variation(*map_);
  EXPECT_EQ(variation.better_stack, 0u);
  // Paper: 13% average; the model lands in the same regime.
  EXPECT_GT(variation.average_gap, 0.05);
  EXPECT_LT(variation.average_gap, 0.35);
}

TEST_F(PaperPipeline, PatternVariationAnchors) {
  const auto variation = core::analyze_pattern_variation(*map_);
  ASSERT_TRUE(variation.first_1to0.has_value());
  ASSERT_TRUE(variation.first_0to1.has_value());
  EXPECT_EQ(variation.first_1to0->value, 970);
  EXPECT_EQ(variation.first_0to1->value, 960);
  EXPECT_NEAR(variation.average_0to1_excess, 0.21, 0.08);
}

TEST_F(PaperPipeline, WeakPcsFaultFirst) {
  const auto onsets = core::per_pc_onsets(*map_);
  // Every weak PC faults at or above 0.96 V; every strong PC is still
  // fault-free there.
  for (const unsigned pc : faults::paper_weak_pcs()) {
    ASSERT_TRUE(onsets[pc].has_value());
    EXPECT_GE(onsets[pc]->value, 960) << "pc " << pc;
  }
  for (const unsigned pc : faults::paper_strong_pcs()) {
    if (onsets[pc].has_value()) {
      EXPECT_LT(onsets[pc]->value, 950) << "pc " << pc;
    }
  }
}

TEST_F(PaperPipeline, FaultsAreClustered) {
  core::FaultCharacterizer characterizer(*board_);
  // Tail-fault regime on a weak PC: strongly clustered.  A voltage with
  // O(100) faults makes the gap statistics stable.
  const auto stats = characterizer.clustering(18, Millivolts{910});
  ASSERT_GT(stats.faults, 50u);
  EXPECT_GT(stats.fraction_in_densest_5pct_rows, 0.3);
  EXPECT_LT(stats.median_gap, 0.5 * stats.uniform_expected_gap);
}

// ------------------------------------------------------- Fig 6 anchors

TEST_F(PaperPipeline, TradeoffAnchors) {
  core::TradeoffAnalyzer analyzer(*map_, Millivolts{1200},
                                  &board_->power_model());
  core::TradeoffConfig config;
  config.tolerable_rates = {0.0, 1e-4, 1e-2, 0.5};
  const auto points = analyzer.analyze(config);

  for (const auto& point : points) {
    // Guardband region: everything usable at zero tolerance.
    if (point.voltage >= Millivolts{980}) {
      EXPECT_EQ(point.usable_pcs[0], 32u) << point.voltage.value;
    }
    // Fig 6 anchor: 7 fault-free PCs at 0.95 V.
    if (point.voltage == Millivolts{950}) {
      EXPECT_EQ(point.usable_pcs[0], 7u);
    }
    // Tolerating half-faulty PCs keeps everything usable until the bulk
    // collapse begins.
    if (point.voltage >= Millivolts{880}) {
      EXPECT_EQ(point.usable_pcs.back(), 32u) << point.voltage.value;
    }
  }
}

TEST_F(PaperPipeline, PaperExamplePlans) {
  core::TradeoffAnalyzer analyzer(*map_, Millivolts{1200});
  // "Up to 1.6x savings ... using only 7 fault-free PCs at 0.95 V."
  const auto plan7 = analyzer.plan(7, 0.0);
  ASSERT_TRUE(plan7.has_value());
  EXPECT_LE(plan7->voltage.value, 950);
  EXPECT_GE(plan7->savings_factor, 1.59);
  // "0.0001% fault rate with half the capacity at 0.90 V -> ~1.8x."
  // (Rate thresholds are relative to simulated capacity; see DESIGN.md.)
  const auto plan16 = analyzer.plan(16, 1e-4);
  ASSERT_TRUE(plan16.has_value());
  EXPECT_LE(plan16->voltage.value, 900);
  EXPECT_GE(plan16->savings_factor, 1.75);
}

// ----------------------------------------------------------- Renderers

TEST_F(PaperPipeline, FullReportRenders) {
  const auto guardband = core::analyze_guardband(*map_, Millivolts{1200});
  core::HeadlineNumbers numbers;
  numbers.guardband = guardband;
  const auto& full = power_->series.back();
  numbers.savings_at_vmin =
      power_->savings_factor(full, Millivolts{980}).value_or(0.0);
  numbers.savings_at_850mv =
      power_->savings_factor(full, Millivolts{850}).value_or(0.0);
  numbers.idle_fraction =
      power_->series.front().power_at(Millivolts{1200})->value /
      power_->reference.value;
  numbers.stack_variation = core::analyze_stack_variation(*map_);
  numbers.pattern_variation = core::analyze_pattern_variation(*map_);
  const std::string table = core::render_headline(numbers);
  EXPECT_NE(table.find("Paper"), std::string::npos);
  EXPECT_NE(table.find("1.5"), std::string::npos);
  // Every figure renders non-trivially.
  EXPECT_GT(core::render_fig2(*power_).size(), 200u);
  EXPECT_GT(core::render_fig3(*power_).size(), 200u);
  EXPECT_GT(core::render_fig4(*map_).size(), 200u);
  EXPECT_GT(core::render_fig5(*map_, 20).size(), 200u);
}

}  // namespace
}  // namespace hbmvolt
