// Integration tests for the campaign runner (the one-call full
// characterization) and its artifact writing.

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "core/campaign.hpp"

namespace hbmvolt {
namespace {

namespace fs = std::filesystem;

board::BoardConfig tiny_board() {
  board::BoardConfig config;
  config.geometry = hbm::HbmGeometry::test_tiny();
  config.monitor_config.noise_sigma_amps = 0.0;
  return config;
}

core::CampaignConfig fast_campaign() {
  core::CampaignConfig config;
  config.reliability.sweep = {Millivolts{1200}, Millivolts{800}, 20};
  config.reliability.batch_size = 1;
  config.power.sweep = {Millivolts{1200}, Millivolts{850}, 50};
  config.power.samples = 2;
  config.power.traffic_beats = 4;
  config.dry_run = true;
  return config;
}

TEST(CampaignTest, DryRunProducesAllAnalyses) {
  board::Vcu128Board board(tiny_board());
  core::Campaign campaign(board, fast_campaign());
  auto result = campaign.run();
  ASSERT_TRUE(result.is_ok());
  const auto& r = result.value();

  EXPECT_EQ(r.guardband.v_min.value, 980);
  EXPECT_TRUE(r.guardband.crash_observed);
  EXPECT_FALSE(r.tradeoff_points.empty());
  EXPECT_FALSE(r.power.series.empty());
  EXPECT_TRUE(r.files_written.empty());  // dry run

  // Headline numbers are populated and sane.  The coarse 50 mV power grid
  // snaps V_min=0.98V to the 1.00V point, so allow the wider band.
  EXPECT_NEAR(r.headline.savings_at_vmin, 1.5, 0.12);
  EXPECT_NEAR(r.headline.savings_at_850mv, 2.3, 0.15);
  EXPECT_NEAR(r.headline.idle_fraction, 1.0 / 3.0, 0.04);
  ASSERT_TRUE(r.headline.pattern_variation.first_1to0.has_value());

  // The trade-off points reference live fault-map data (regression test
  // for the moved-map bug): at nominal, all PCs usable at zero tolerance.
  EXPECT_EQ(r.tradeoff_points.front().usable_pcs.front(),
            board.geometry().total_pcs());
}

TEST(CampaignTest, WritesArtifacts) {
  board::Vcu128Board board(tiny_board());
  auto config = fast_campaign();
  config.dry_run = false;
  config.output_dir =
      (fs::temp_directory_path() / "hbmvolt_campaign_test").string();
  fs::remove_all(config.output_dir);

  core::Campaign campaign(board, config);
  auto result = campaign.run();
  ASSERT_TRUE(result.is_ok());

  ASSERT_EQ(result.value().files_written.size(), 8u);
  for (const char* name :
       {"fig2.csv", "fig4.csv", "fig5.csv", "fig6.csv", "summary.txt"}) {
    const fs::path path = fs::path(config.output_dir) / name;
    ASSERT_TRUE(fs::exists(path)) << name;
    EXPECT_GT(fs::file_size(path), 100u) << name;
  }

  // Observability artifacts ride along with the figures by default.
  for (const char* name : {"telemetry.jsonl", "trace.json", "manifest.json"}) {
    const fs::path path = fs::path(config.output_dir) / name;
    ASSERT_TRUE(fs::exists(path)) << name;
    EXPECT_GT(fs::file_size(path), 0u) << name;
  }
  EXPECT_FALSE(result.value().telemetry_summary.empty());

  // The summary contains the headline table and each figure heading.
  std::ifstream in(fs::path(config.output_dir) / "summary.txt");
  std::string summary((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  for (const char* needle :
       {"Headline numbers", "Fig 2", "Fig 3", "Fig 4", "Fig 5", "Fig 6"}) {
    EXPECT_NE(summary.find(needle), std::string::npos) << needle;
  }

  fs::remove_all(config.output_dir);
}

TEST(CampaignTest, InvalidOutputDirectoryFails) {
  board::Vcu128Board board(tiny_board());
  auto config = fast_campaign();
  config.dry_run = false;
  config.output_dir = "/proc/definitely/not/writable";
  core::Campaign campaign(board, config);
  auto result = campaign.run();
  EXPECT_FALSE(result.is_ok());
}

TEST(CampaignTest, CollectHeadlineNumbersHandlesEmptyPower) {
  board::Vcu128Board board(tiny_board());
  faults::FaultMap map(board.geometry());
  map.record(Millivolts{1000}, 0, {100, 0, 0, 100, 0});
  const auto numbers = core::collect_headline_numbers(
      map, core::PowerCharacterization{}, Millivolts{1200});
  EXPECT_DOUBLE_EQ(numbers.savings_at_vmin, 0.0);
  EXPECT_EQ(numbers.guardband.v_min.value, 1000);
}

}  // namespace
}  // namespace hbmvolt
