// Range-path equivalence suite: the bit-sliced SECDED codec, EccChannel's
// bulk encode/decode/scrub, and ReliableChannel's range engine.
//
// The discipline is the repo's usual twin-universe one: the fast path
// (ChannelEngine::kRange -- bulk decodes, flat exception sets, clean-block
// scrub skipping) and the reference path (ChannelEngine::kPerBeat -- one
// EccChannel call per beat) execute the same POLICY and must produce
// byte-identical results: delivered data, journals, ChannelStats, budget
// history, ladder traces, parked sets, fleet fingerprints.  Anything the
// fast path gets to skip, it must account exactly as if it had not.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "board/vcu128.hpp"
#include "common/rng.hpp"
#include "ecc/ecc_channel.hpp"
#include "ecc/secded.hpp"
#include "faults/fault_overlay.hpp"
#include "hbm/stack.hpp"
#include "runtime/flat_index.hpp"
#include "runtime/fleet.hpp"
#include "runtime/reliable_channel.hpp"
#include "workload/trace.hpp"

namespace hbmvolt {
namespace {

using ecc::DecodeStatus;
using ecc::EccChannel;
using runtime::ChannelEngine;
using runtime::ChannelStats;
using runtime::FleetConfig;
using runtime::ReliableChannel;
using runtime::ReliableChannelConfig;
using runtime::ServingFleet;

constexpr unsigned kWeakPc = 4;  // deepest fault population on test_tiny

board::BoardConfig tiny_board() {
  board::BoardConfig config;
  config.geometry = hbm::HbmGeometry::test_tiny();
  config.monitor_config.noise_sigma_amps = 0.0;
  return config;
}

// ---------------------------------------------------------------------------
// Bit-sliced SECDED vs the per-set-bit reference codec
// ---------------------------------------------------------------------------

TEST(SecdedBitSlicedTest, EncodeMatchesReference) {
  Xoshiro256 rng(0xEC0DE);
  for (int trial = 0; trial < 4096; ++trial) {
    const std::uint64_t data = rng();
    EXPECT_EQ(ecc::secded_encode(data), ecc::secded_encode_reference(data))
        << std::hex << data;
  }
  for (const std::uint64_t data : {0ull, ~0ull, 1ull, 0x8000000000000000ull}) {
    EXPECT_EQ(ecc::secded_encode(data), ecc::secded_encode_reference(data));
  }
}

TEST(SecdedBitSlicedTest, DecodeMatchesReferenceOnEveryInjectedPattern) {
  Xoshiro256 rng(0xDEC0DE);
  for (int trial = 0; trial < 256; ++trial) {
    const std::uint64_t data = rng();
    const std::uint8_t check = ecc::secded_encode(data);
    // Every 0-, 1-, and 2-bit corruption of the 72-bit codeword, plus a
    // random multi-bit smear: identical data AND status from both codecs.
    for (unsigned a = 0; a <= 72; ++a) {
      for (unsigned b = a; b <= 72; b += (trial % 7) + 1) {
        std::uint64_t bad_data = data;
        std::uint8_t bad_check = check;
        for (const unsigned position : {a, b}) {
          if (position >= 72) continue;  // 72 = "no flip" sentinel
          if (position < 64) {
            bad_data ^= 1ull << position;
          } else {
            bad_check ^= static_cast<std::uint8_t>(1u << (position - 64));
          }
        }
        const auto fast = ecc::secded_decode(bad_data, bad_check);
        const auto ref = ecc::secded_decode_reference(bad_data, bad_check);
        ASSERT_EQ(fast.status, ref.status)
            << "flips " << a << "," << b << " data " << std::hex << data;
        ASSERT_EQ(fast.data, ref.data)
            << "flips " << a << "," << b << " data " << std::hex << data;
      }
    }
  }
  // Random garbage (data, check) pairs: both codecs agree everywhere.
  for (int trial = 0; trial < 4096; ++trial) {
    const std::uint64_t data = rng();
    const std::uint8_t check = static_cast<std::uint8_t>(rng());
    const auto fast = ecc::secded_decode(data, check);
    const auto ref = ecc::secded_decode_reference(data, check);
    ASSERT_EQ(fast.status, ref.status);
    ASSERT_EQ(fast.data, ref.data);
  }
}

// ---------------------------------------------------------------------------
// Flat index structures
// ---------------------------------------------------------------------------

TEST(FlatIndexTest, SortedKeySetIntervalProbes) {
  runtime::SortedKeySet set;
  EXPECT_FALSE(set.any_in_range(0, ~0ull));
  EXPECT_TRUE(set.insert(10));
  EXPECT_TRUE(set.insert(3));
  EXPECT_FALSE(set.insert(10));
  EXPECT_TRUE(set.contains(3));
  EXPECT_FALSE(set.contains(4));
  EXPECT_TRUE(set.any_in_range(4, 11));
  EXPECT_FALSE(set.any_in_range(4, 10));
  EXPECT_EQ(set.first_in_range(0, 100), 3u);
  EXPECT_EQ(set.first_in_range(4, 100), 10u);
  EXPECT_EQ(set.first_in_range(11, 100), runtime::SortedKeySet::kNone);
  EXPECT_TRUE(set.erase(3));
  EXPECT_FALSE(set.erase(3));
  EXPECT_EQ(set.keys(), (std::vector<std::uint64_t>{10}));
}

TEST(FlatIndexTest, BitVecRunScans) {
  runtime::BitVec bits;
  bits.assign(130, false);
  EXPECT_EQ(bits.next_set(0), runtime::BitVec::kNone);
  EXPECT_EQ(bits.next_clear(0), 0u);
  bits.set(0);
  bits.set(64);
  bits.set(129);
  EXPECT_EQ(bits.next_set(1), 64u);
  EXPECT_EQ(bits.next_set(65), 129u);
  EXPECT_EQ(bits.next_clear(0), 1u);
  bits.assign(130, true);
  EXPECT_EQ(bits.next_clear(0), runtime::BitVec::kNone);  // tail trimmed
  bits.clear(127);
  EXPECT_EQ(bits.next_clear(100), 127u);
  EXPECT_EQ(bits.next_set(127), 128u);
}

// ---------------------------------------------------------------------------
// EccChannel bulk ops vs per-beat calls
// ---------------------------------------------------------------------------

class EccRangeTest : public ::testing::Test {
 protected:
  EccRangeTest()
      : geometry_(hbm::HbmGeometry::test_tiny()),
        injector_a_(faults::FaultModel(geometry_, faults::FaultModelConfig{})),
        injector_b_(faults::FaultModel(geometry_, faults::FaultModelConfig{})),
        stack_a_(geometry_, 0, injector_a_, 11),
        stack_b_(geometry_, 0, injector_b_, 11) {}

  void set_voltage(Millivolts v) {
    injector_a_.set_voltage(v);
    injector_b_.set_voltage(v);
  }

  static hbm::Beat payload(std::uint64_t beat) {
    hbm::Beat data;
    for (unsigned w = 0; w < 4; ++w) {
      data[w] = splitmix64(beat * 4 + w + 0xBEA7);
    }
    return data;
  }

  hbm::HbmGeometry geometry_;
  faults::FaultInjector injector_a_;
  faults::FaultInjector injector_b_;
  hbm::HbmStack stack_a_;
  hbm::HbmStack stack_b_;
};

TEST_F(EccRangeTest, EncodeDecodeRangeMatchPerBeatTwin) {
  std::uint64_t events_seen = 0;
  for (const int mv : {1200, 950, 930, 910}) {
    set_voltage(Millivolts{mv});
    EccChannel a(stack_a_, kWeakPc);  // per-beat universe
    EccChannel b(stack_b_, kWeakPc);  // range universe
    const std::uint64_t beats = a.data_beats();
    ASSERT_EQ(beats, b.data_beats());

    std::vector<hbm::Beat> data(beats);
    for (std::uint64_t i = 0; i < beats; ++i) data[i] = payload(i);
    for (std::uint64_t i = 0; i < beats; ++i) {
      ASSERT_TRUE(a.write_beat(i, data[i]).is_ok());
    }
    ASSERT_TRUE(b.encode_range(0, beats, data.data()).is_ok());

    // Identical final memory state: both universes read back the same
    // bytes per beat, and bulk decode agrees with per-beat reads.
    std::vector<hbm::Beat> bulk(beats);
    std::vector<EccChannel::RangeBeatEvent> events;
    ASSERT_TRUE(b.decode_range(0, beats, bulk.data(), events).is_ok());
    std::size_t next_event = 0;
    for (std::uint64_t i = 0; i < beats; ++i) {
      auto got = a.read_beat(i);
      ASSERT_TRUE(got.is_ok());
      EXPECT_EQ(got.value().data, bulk[i]) << "beat " << i << " at " << mv;
      unsigned corrected = 0, corrected_check = 0, uncorrectable = 0;
      if (next_event < events.size() && events[next_event].beat == i) {
        corrected = events[next_event].corrected;
        corrected_check = events[next_event].corrected_check;
        uncorrectable = events[next_event].uncorrectable;
        ++next_event;
        ++events_seen;
      }
      EXPECT_EQ(got.value().corrected, corrected) << "beat " << i;
      EXPECT_EQ(got.value().corrected_check, corrected_check) << "beat " << i;
      EXPECT_EQ(got.value().uncorrectable, uncorrectable) << "beat " << i;
    }
    EXPECT_EQ(next_event, events.size());

    // Sub-range decodes at awkward offsets agree with the full decode.
    for (std::uint64_t lo = 0; lo < beats; lo += 17) {
      const std::uint64_t n = std::min<std::uint64_t>(23, beats - lo);
      std::vector<hbm::Beat> part(n);
      std::vector<EccChannel::RangeBeatEvent> part_events;
      ASSERT_TRUE(b.decode_range(lo, n, part.data(), part_events).is_ok());
      for (std::uint64_t i = 0; i < n; ++i) {
        EXPECT_EQ(part[i], bulk[lo + i]) << "beat " << lo + i;
      }
    }
  }
  // The sweep must actually exercise the non-clean paths.
  EXPECT_GT(events_seen, 0u);
}

TEST_F(EccRangeTest, ScrubRangeMatchesPerBeatTwin) {
  std::uint64_t writebacks_seen = 0;
  for (const int mv : {950, 930}) {
    set_voltage(Millivolts{mv});
    EccChannel a(stack_a_, kWeakPc);
    EccChannel b(stack_b_, kWeakPc);
    const std::uint64_t beats = a.data_beats();
    for (std::uint64_t i = 0; i < beats; ++i) {
      ASSERT_TRUE(a.write_beat(i, payload(i)).is_ok());
      ASSERT_TRUE(b.write_beat(i, payload(i)).is_ok());
    }
    // Soft-rot a couple of stored bits so the scrub has transient damage
    // to repair (and a parity-group refresh to propagate).
    for (const std::uint64_t beat : {std::uint64_t{5}, std::uint64_t{6}}) {
      for (hbm::HbmStack* stack : {&stack_a_, &stack_b_}) {
        auto got = stack->read_beat(kWeakPc, beat);
        ASSERT_TRUE(got.is_ok());
        hbm::Beat rotted = got.value();
        rotted[1] ^= 1ull << 17;
        ASSERT_TRUE(stack->write_beat(kWeakPc, beat, rotted).is_ok());
      }
    }

    // Twin scrub: per-beat universe A vs one bulk call in universe B.
    std::vector<EccChannel::RangeBeatEvent> events;
    ASSERT_TRUE(b.scrub_range(0, beats, events).is_ok());
    std::size_t next_event = 0;
    for (std::uint64_t i = 0; i < beats; ++i) {
      auto got = a.scrub_beat(i);
      ASSERT_TRUE(got.is_ok());
      const auto& out = got.value();
      unsigned corrected = 0, corrected_check = 0, uncorrectable = 0;
      bool wrote_back = false;
      if (next_event < events.size() && events[next_event].beat == i) {
        corrected = events[next_event].corrected;
        corrected_check = events[next_event].corrected_check;
        uncorrectable = events[next_event].uncorrectable;
        wrote_back = events[next_event].wrote_back;
        ++next_event;
      }
      EXPECT_EQ(out.corrected_data, corrected) << "beat " << i << " " << mv;
      EXPECT_EQ(out.corrected_check, corrected_check) << "beat " << i;
      EXPECT_EQ(out.uncorrectable, uncorrectable) << "beat " << i;
      EXPECT_EQ(out.wrote_back, wrote_back) << "beat " << i;
      if (wrote_back) ++writebacks_seen;
    }
    EXPECT_EQ(next_event, events.size());

    // Post-scrub state identical: every beat decodes to the same bytes.
    for (std::uint64_t i = 0; i < beats; ++i) {
      auto ra = a.read_beat(i);
      auto rb = b.read_beat(i);
      ASSERT_TRUE(ra.is_ok());
      ASSERT_TRUE(rb.is_ok());
      EXPECT_EQ(ra.value().data, rb.value().data) << "beat " << i;
    }
  }
  EXPECT_GT(writebacks_seen, 0u);  // the rot must have been repaired
}

// ---------------------------------------------------------------------------
// ReliableChannel: range engine vs per-beat engine (twin universes)
// ---------------------------------------------------------------------------

struct ChannelTwin {
  board::Vcu128Board board_range;
  board::Vcu128Board board_perbeat;
  ReliableChannel range;
  ReliableChannel perbeat;

  ChannelTwin(unsigned pc, ReliableChannelConfig config,
              int start_mv = 1200)
      : board_range(tiny_board()),
        board_perbeat(tiny_board()),
        range(board_range, pc, with_engine(config, ChannelEngine::kRange)),
        perbeat(board_perbeat, pc,
                with_engine(config, ChannelEngine::kPerBeat)) {
    EXPECT_TRUE(board_range.set_hbm_voltage(Millivolts{start_mv}).is_ok());
    EXPECT_TRUE(board_perbeat.set_hbm_voltage(Millivolts{start_mv}).is_ok());
  }

  static ReliableChannelConfig with_engine(ReliableChannelConfig config,
                                           ChannelEngine engine) {
    config.engine = engine;
    return config;
  }

  /// Full-state comparison: everything the twin-universe contract pins.
  void expect_equal(const char* where) const {
    const ChannelStats& a = range.stats();
    const ChannelStats& b = perbeat.stats();
    EXPECT_EQ(a.reads, b.reads) << where;
    EXPECT_EQ(a.writes, b.writes) << where;
    EXPECT_EQ(a.corrected_words, b.corrected_words) << where;
    EXPECT_EQ(a.corrected_check_words, b.corrected_check_words) << where;
    EXPECT_EQ(a.uncorrectable_blocked, b.uncorrectable_blocked) << where;
    EXPECT_EQ(a.scrub_beats, b.scrub_beats) << where;
    EXPECT_EQ(a.scrub_corrected, b.scrub_corrected) << where;
    EXPECT_EQ(a.scrub_uncorrectable, b.scrub_uncorrectable) << where;
    EXPECT_EQ(a.scrub_writebacks, b.scrub_writebacks) << where;
    EXPECT_EQ(a.scrub_blocks_skipped, b.scrub_blocks_skipped) << where;
    EXPECT_EQ(a.rows_retired, b.rows_retired) << where;
    EXPECT_EQ(a.beats_migrated, b.beats_migrated) << where;
    EXPECT_EQ(a.journal_migrations, b.journal_migrations) << where;
    EXPECT_EQ(a.beats_parked, b.beats_parked) << where;
    EXPECT_EQ(a.journal_served_reads, b.journal_served_reads) << where;
    EXPECT_EQ(a.verify_caught, b.verify_caught) << where;
    EXPECT_EQ(a.journal_refreshes, b.journal_refreshes) << where;
    EXPECT_EQ(a.retires, b.retires) << where;
    EXPECT_EQ(a.raises, b.raises) << where;
    EXPECT_EQ(a.power_cycles, b.power_cycles) << where;
    EXPECT_EQ(range.budget().windows_completed(),
              perbeat.budget().windows_completed())
        << where;
    EXPECT_EQ(range.budget().window_words(), perbeat.budget().window_words())
        << where;
    EXPECT_EQ(range.budget().burns(), perbeat.budget().burns()) << where;
    EXPECT_EQ(range.parked_count(), perbeat.parked_count()) << where;
    EXPECT_EQ(range.spares_free(), perbeat.spares_free()) << where;
    EXPECT_EQ(range.ladder_trace().size(), perbeat.ladder_trace().size())
        << where;
    for (std::size_t i = 0; i < range.ladder_trace().size() &&
                            i < perbeat.ladder_trace().size();
         ++i) {
      EXPECT_EQ(range.ladder_trace()[i].rung, perbeat.ladder_trace()[i].rung);
      EXPECT_EQ(range.ladder_trace()[i].voltage.value,
                perbeat.ladder_trace()[i].voltage.value);
      EXPECT_EQ(range.ladder_trace()[i].op, perbeat.ladder_trace()[i].op);
    }
    ASSERT_EQ(range.capacity(), perbeat.capacity());
    for (std::uint64_t l = 0; l < range.capacity(); ++l) {
      ASSERT_EQ(range.journal_live(l), perbeat.journal_live(l)) << where;
      ASSERT_EQ(range.parked(l), perbeat.parked(l)) << where;
      if (range.journal_live(l)) {
        ASSERT_EQ(range.journal_beat(l), perbeat.journal_beat(l))
            << where << " beat " << l;
      }
    }
    EXPECT_EQ(board_range.hbm_voltage().value,
              board_perbeat.hbm_voltage().value)
        << where;
  }
};

hbm::Beat test_payload(std::uint64_t l) {
  hbm::Beat data;
  for (unsigned w = 0; w < 4; ++w) data[w] = splitmix64(l * 4 + w + 0xFEED);
  return data;
}

TEST(ReliableRangeTest, EmptyRemapFastPathMatchesPerBeat) {
  // Nominal voltage, no faults, no specials: the whole capacity is one
  // plain run and the all-clean exit marks blocks for the patrol.
  ChannelTwin twin(0, ReliableChannelConfig{});
  const std::uint64_t cap = twin.range.capacity();

  std::vector<hbm::Beat> data(cap);
  for (std::uint64_t l = 0; l < cap; ++l) data[l] = test_payload(l);
  ASSERT_TRUE(twin.range.write_range(0, cap, data.data()).is_ok());
  ASSERT_TRUE(twin.perbeat.write_range(0, cap, data.data()).is_ok());
  twin.expect_equal("after write_range");

  std::vector<hbm::Beat> out_a(cap), out_b(cap);
  ASSERT_TRUE(twin.range.read_range(0, cap, out_a.data()).is_ok());
  ASSERT_TRUE(twin.perbeat.read_range(0, cap, out_b.data()).is_ok());
  for (std::uint64_t l = 0; l < cap; ++l) {
    ASSERT_EQ(out_a[l], data[l]) << "beat " << l;
    ASSERT_EQ(out_b[l], data[l]) << "beat " << l;
  }
  twin.expect_equal("after read_range");

  // Single-beat API agrees with the bulk result.
  for (std::uint64_t l = 0; l < cap; l += 7) {
    auto got = twin.range.read(l);
    ASSERT_TRUE(got.is_ok());
    EXPECT_EQ(got.value(), data[l]);
  }
}

TEST(ReliableRangeTest, UndervoltedRangesMatchPerBeatAtEveryOffset) {
  ReliableChannelConfig config;
  config.spare_fraction = 0.25;
  ChannelTwin twin(kWeakPc, config, 950);
  const std::uint64_t cap = twin.range.capacity();

  std::vector<hbm::Beat> data(cap);
  for (std::uint64_t l = 0; l < cap; ++l) data[l] = test_payload(l);
  ASSERT_TRUE(twin.range.write_range(0, cap, data.data()).is_ok());
  ASSERT_TRUE(twin.perbeat.write_range(0, cap, data.data()).is_ok());

  // Sweep every offset with a prime-ish length so ranges start and end on
  // every beat (including any corrected/remapped one).
  std::vector<hbm::Beat> out_a(cap), out_b(cap);
  for (std::uint64_t lo = 0; lo < cap; ++lo) {
    const std::uint64_t n = std::min<std::uint64_t>(13, cap - lo);
    const Status sa = twin.range.read_range(lo, n, out_a.data());
    const Status sb = twin.perbeat.read_range(lo, n, out_b.data());
    ASSERT_EQ(sa.code(), sb.code()) << "offset " << lo;
    if (!sa.is_ok()) continue;
    for (std::uint64_t i = 0; i < n; ++i) {
      ASSERT_EQ(out_a[i], data[lo + i]) << "beat " << lo + i;
      ASSERT_EQ(out_b[i], data[lo + i]) << "beat " << lo + i;
    }
  }
  twin.expect_equal("after offset sweep");

  // Manual patrol slices drive the clean-block machinery identically.
  for (int slice = 0; slice < 32; ++slice) {
    ASSERT_TRUE(twin.range.scrub_slice().is_ok());
    ASSERT_TRUE(twin.perbeat.scrub_slice().is_ok());
  }
  twin.expect_equal("after patrol slices");
  EXPECT_GT(twin.range.stats().scrub_beats, 0u);
}

TEST(ReliableRangeTest, RemappedBeatsAtRangeBoundaries) {
  // 930 mV on the weak PC arms uncorrectable words; serving a trace
  // drives the ladder through retirement, leaving remapped beats behind.
  ReliableChannelConfig config;
  config.spare_fraction = 0.25;
  ChannelTwin twin(kWeakPc, config, 930);
  const std::uint64_t cap = twin.range.capacity();

  const workload::AccessTrace trace =
      workload::make_uniform_random(cap, 2048, 0.25, 0x5EED);
  auto ra = twin.range.serve(trace, 7);
  auto rb = twin.perbeat.serve(trace, 7);
  ASSERT_TRUE(ra.is_ok());
  ASSERT_TRUE(rb.is_ok());
  EXPECT_EQ(ra.value().corrupt_reads, 0u);
  EXPECT_EQ(rb.value().corrupt_reads, 0u);
  EXPECT_EQ(ra.value().escalated_reads, rb.value().escalated_reads);
  twin.expect_equal("after undervolted serve");
  ASSERT_GT(twin.range.stats().beats_migrated, 0u)
      << "test premise: retirement must have remapped something";

  // Every offset x length-4 window: remapped beats land on the first
  // beat, an interior beat, and the last beat of some range.
  std::vector<hbm::Beat> out_a(4), out_b(4);
  for (std::uint64_t lo = 0; lo + 4 <= cap; ++lo) {
    const Status sa = twin.range.read_range(lo, 4, out_a.data());
    const Status sb = twin.perbeat.read_range(lo, 4, out_b.data());
    ASSERT_EQ(sa.code(), sb.code()) << "offset " << lo;
    if (!sa.is_ok()) continue;
    for (std::uint64_t i = 0; i < 4; ++i) {
      if (!twin.range.journal_live(lo + i)) continue;
      ASSERT_EQ(out_a[i], twin.range.journal_beat(lo + i)) << lo + i;
      ASSERT_EQ(out_b[i], out_a[i]) << lo + i;
    }
  }
  twin.expect_equal("after boundary sweep");
}

TEST(ReliableRangeTest, ReadRangeSpansParkedBeats) {
  // Park beats for real: a permanent weak-cell burst that persists at
  // nominal voltage, with a zero spare pool, forces the retirement rung
  // into its journal-park fallback.
  ReliableChannelConfig config;
  config.spare_fraction = 0.0;
  ChannelTwin twin(kWeakPc, config, 1200);
  // 64+64 cells over ~220 codewords: dense enough that stuck cells pair
  // up into uncorrectable (parkable) words, sparse enough that no word
  // collects the 3 mismatches SECDED would silently miscorrect.
  twin.board_range.injector().add_burst(kWeakPc, 64, 64);
  twin.board_perbeat.injector().add_burst(kWeakPc, 64, 64);

  const std::uint64_t cap = twin.range.capacity();
  const workload::AccessTrace trace =
      workload::make_uniform_random(cap, 2048, 0.25, 0xAB5EED);
  auto ra = twin.range.serve(trace, 9);
  auto rb = twin.perbeat.serve(trace, 9);
  ASSERT_TRUE(ra.is_ok());
  ASSERT_TRUE(rb.is_ok());
  EXPECT_EQ(ra.value().corrupt_reads, 0u);
  EXPECT_EQ(rb.value().corrupt_reads, 0u);
  twin.expect_equal("after burst serve");
  ASSERT_GT(twin.range.parked_count(), 0u)
      << "test premise: the burst must park at least one beat";

  // Bulk reads spanning parked beats serve them from the journal (and
  // count them), identically in both engines.
  const std::uint64_t served_before = twin.range.stats().journal_served_reads;
  std::vector<hbm::Beat> out_a(cap), out_b(cap);
  const Status sa = twin.range.read_range(0, cap, out_a.data());
  const Status sb = twin.perbeat.read_range(0, cap, out_b.data());
  ASSERT_EQ(sa.code(), sb.code());
  if (sa.is_ok()) {
    for (std::uint64_t l = 0; l < cap; ++l) {
      if (!twin.range.journal_live(l)) continue;
      ASSERT_EQ(out_a[l], twin.range.journal_beat(l)) << "beat " << l;
      ASSERT_EQ(out_b[l], out_a[l]) << "beat " << l;
    }
    EXPECT_GT(twin.range.stats().journal_served_reads, served_before);
  }
  twin.expect_equal("after spanning read_range");
}

TEST(ReliableRangeTest, ServeTraceStreamingEquivalence) {
  // Streaming trace = maximal contiguous runs: the bulk path carries
  // nearly every op.  Same journal, stats, and report as the per-beat
  // engine, with the headline invariant intact.
  ReliableChannelConfig config;
  config.spare_fraction = 0.25;
  ChannelTwin twin(kWeakPc, config, 950);
  const workload::AccessTrace trace =
      workload::make_streaming(twin.range.capacity(), 4);

  auto ra = twin.range.serve_trace(trace, 21);
  auto rb = twin.perbeat.serve_trace(trace, 21);
  ASSERT_TRUE(ra.is_ok());
  ASSERT_TRUE(rb.is_ok());
  EXPECT_EQ(ra.value().ops, rb.value().ops);
  EXPECT_EQ(ra.value().reads, rb.value().reads);
  EXPECT_EQ(ra.value().writes, rb.value().writes);
  EXPECT_EQ(ra.value().corrupt_reads, 0u);
  EXPECT_EQ(rb.value().corrupt_reads, 0u);
  twin.expect_equal("after streaming serve_trace");

  // serve_trace == serve on a third universe: coalescing changes the
  // mechanism and the scrub cadence policy, not the delivered bytes.
  board::Vcu128Board board_serial(tiny_board());
  ASSERT_TRUE(board_serial.set_hbm_voltage(Millivolts{950}).is_ok());
  ReliableChannel serial(board_serial, kWeakPc,
                         ChannelTwin::with_engine(config,
                                                  ChannelEngine::kPerBeat));
  auto rs = serial.serve(trace, 21);
  ASSERT_TRUE(rs.is_ok());
  EXPECT_EQ(rs.value().corrupt_reads, 0u);
  for (std::uint64_t l = 0; l < twin.range.capacity(); ++l) {
    ASSERT_EQ(twin.range.journal_live(l), serial.journal_live(l));
    if (serial.journal_live(l)) {
      ASSERT_EQ(twin.range.journal_beat(l), serial.journal_beat(l)) << l;
    }
  }
}

TEST(ReliableRangeTest, FleetFingerprintAcrossEnginesAndThreads) {
  const auto run_fleet = [](ChannelEngine engine, unsigned threads) {
    board::Vcu128Board board(tiny_board());
    EXPECT_TRUE(board.set_hbm_voltage(Millivolts{950}).is_ok());
    FleetConfig config;
    config.pcs = {0, kWeakPc, 5};
    config.ops_per_pc = 4096;
    config.ops_per_epoch = 512;
    config.seed = 77;
    config.threads = threads;
    config.channel.spare_fraction = 0.25;
    config.channel.engine = engine;
    ServingFleet fleet(board, config);
    auto report = fleet.run();
    EXPECT_TRUE(report.is_ok());
    EXPECT_EQ(report.value().corrupt_reads, 0u);
    return report.is_ok() ? report.value().fingerprint : 0;
  };

  const std::uint64_t range_1 = run_fleet(ChannelEngine::kRange, 1);
  const std::uint64_t range_4 = run_fleet(ChannelEngine::kRange, 4);
  const std::uint64_t perbeat_1 = run_fleet(ChannelEngine::kPerBeat, 1);
  const std::uint64_t perbeat_4 = run_fleet(ChannelEngine::kPerBeat, 4);
  EXPECT_NE(range_1, 0u);
  EXPECT_EQ(range_1, range_4);
  EXPECT_EQ(range_1, perbeat_1);
  EXPECT_EQ(range_1, perbeat_4);
}

}  // namespace
}  // namespace hbmvolt
