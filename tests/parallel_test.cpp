// Tests for the parallel sweep engine (core/parallel.hpp) and its
// determinism contract: the same campaign seed must produce byte-identical
// fault maps, power series, and headline numbers at every thread count.
// Also covers ThreadPool semantics (exception propagation, empty range,
// reuse) and FaultMap::merge commutativity -- the property the parallel
// aggregation path relies on.

#include <atomic>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "core/parallel.hpp"
#include "core/report.hpp"

namespace hbmvolt {
namespace {

// ------------------------------------------------------------ ThreadPool

TEST(ParallelForEachTest, EmptyRangeIsNoOp) {
  core::ThreadPool pool(2);
  bool called = false;
  core::parallel_for_each(&pool, 0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
  core::parallel_for_each(nullptr, 0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForEachTest, NullPoolRunsInlineInAscendingOrder) {
  std::vector<std::size_t> order;
  core::parallel_for_each(nullptr, 5,
                          [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForEachTest, RunsEveryIndexExactlyOnce) {
  core::ThreadPool pool(4);
  constexpr std::size_t kCount = 100;
  std::vector<std::atomic<int>> hits(kCount);
  core::parallel_for_each(&pool, kCount, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForEachTest, CountSmallerThanPoolWorks) {
  core::ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  core::parallel_for_each(&pool, 3, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelForEachTest, PoolIsReusableAcrossFanOuts) {
  core::ThreadPool pool(3);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> sum{0};
    core::parallel_for_each(&pool, 17, [&](std::size_t i) {
      sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 17 * 16 / 2);
  }
}

// All indices run even when some throw, and the lowest failing index's
// exception is the one rethrown -- at every thread count, including the
// inline path, so error behavior cannot depend on scheduling.
void check_lowest_index_throw(core::ThreadPool* pool) {
  constexpr std::size_t kCount = 20;
  std::vector<std::atomic<int>> hits(kCount);
  try {
    core::parallel_for_each(pool, kCount, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
      if (i == 7 || i == 3 || i == 15) {
        throw std::runtime_error("index " + std::to_string(i));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "index 3");
  }
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i << " skipped after throw";
  }
}

TEST(ParallelForEachTest, ExceptionFromLowestIndexPropagatesInline) {
  check_lowest_index_throw(nullptr);
}

TEST(ParallelForEachTest, ExceptionFromLowestIndexPropagatesPooled) {
  core::ThreadPool pool(4);
  check_lowest_index_throw(&pool);
}

TEST(ThreadPoolTest, ZeroRequestsHardwareConcurrency) {
  core::ThreadPool pool(0);
  unsigned expected = std::thread::hardware_concurrency();
  if (expected == 0) expected = 1;
  EXPECT_EQ(pool.size(), expected);
}

// ------------------------------------------------- FaultMap::merge

faults::PcFaultRecord make_record(std::uint64_t tested, std::uint64_t f10,
                                  std::uint64_t f01) {
  faults::PcFaultRecord record;
  record.bits_tested = tested;
  record.flips_1to0 = f10;
  record.flips_0to1 = f01;
  record.bits_tested_ones = tested / 2;
  record.bits_tested_zeros = tested / 2;
  return record;
}

TEST(FaultMapMergeTest, MergeIsCommutative) {
  const auto geometry = hbm::HbmGeometry::test_tiny();

  // Two partial maps with overlapping and disjoint (voltage, PC) entries
  // plus crash flags -- the shape per-worker partials have.
  faults::FaultMap a(geometry);
  a.record(Millivolts{1000}, 0, make_record(1000, 3, 1));
  a.record(Millivolts{950}, 1, make_record(1000, 7, 2));
  a.record_crash(Millivolts{900});

  faults::FaultMap b(geometry);
  b.record(Millivolts{1000}, 0, make_record(500, 2, 2));   // overlaps a
  b.record(Millivolts{1000}, 2, make_record(800, 0, 5));   // disjoint PC
  b.record(Millivolts{920}, 1, make_record(600, 1, 1));    // disjoint V
  b.record_crash(Millivolts{880});

  faults::FaultMap ab(geometry);
  ab.merge(a).merge(b);
  faults::FaultMap ba(geometry);
  ba.merge(b).merge(a);

  // Byte-identical serialized views in both orders.
  EXPECT_EQ(core::to_csv_fig4(ab), core::to_csv_fig4(ba));
  EXPECT_EQ(core::to_csv_fig5(ab), core::to_csv_fig5(ba));

  // Spot-check the summed overlap and OR'd crash flags.
  const auto overlap = ab.pc_record(Millivolts{1000}, 0);
  EXPECT_EQ(overlap.bits_tested, 1500u);
  EXPECT_EQ(overlap.flips_1to0, 5u);
  EXPECT_EQ(overlap.flips_0to1, 3u);
  ASSERT_NE(ab.at(Millivolts{900}), nullptr);
  EXPECT_TRUE(ab.at(Millivolts{900})->crashed);
  ASSERT_NE(ba.at(Millivolts{880}), nullptr);
  EXPECT_TRUE(ba.at(Millivolts{880})->crashed);
}

// --------------------------------------------- campaign determinism

board::BoardConfig tiny_board() {
  board::BoardConfig config;
  config.geometry = hbm::HbmGeometry::test_tiny();
  config.monitor_config.noise_sigma_amps = 0.0;
  return config;
}

core::CampaignConfig fast_campaign(unsigned threads) {
  core::CampaignConfig config;
  config.reliability.sweep = {Millivolts{1200}, Millivolts{800}, 20};
  config.reliability.batch_size = 1;
  config.power.sweep = {Millivolts{1200}, Millivolts{850}, 50};
  config.power.samples = 2;
  config.power.traffic_beats = 4;
  config.dry_run = true;
  config.threads = threads;
  return config;
}

/// Canonical full-precision serialization of every campaign output that
/// feeds the figures, so "identical" means bit-identical doubles.
std::string fingerprint(const core::CampaignResult& r) {
  char buffer[256];
  std::string out;
  out += core::to_csv_fig2(r.power);
  out += core::to_csv_fig4(r.fault_map);
  out += core::to_csv_fig5(r.fault_map);
  const auto& h = r.headline;
  std::snprintf(buffer, sizeof(buffer),
                "vmin=%d vff=%d vcrit=%d crash=%d gb=%.17g\n",
                h.guardband.v_min.value, h.guardband.v_first_fault.value,
                h.guardband.v_critical.value, h.guardband.crash_observed,
                h.guardband.guardband_fraction);
  out += buffer;
  std::snprintf(buffer, sizeof(buffer),
                "savings=%.17g savings850=%.17g idle=%.17g alpha850=%.17g\n",
                h.savings_at_vmin, h.savings_at_850mv, h.idle_fraction,
                h.alpha_drop_at_850mv);
  out += buffer;
  std::snprintf(buffer, sizeof(buffer), "stackgap=%.17g excess01=%.17g\n",
                h.stack_variation.average_gap,
                h.pattern_variation.average_0to1_excess);
  out += buffer;
  return out;
}

std::string run_campaign(unsigned threads) {
  board::Vcu128Board board(tiny_board());
  core::Campaign campaign(board, fast_campaign(threads));
  auto result = campaign.run();
  EXPECT_TRUE(result.is_ok());
  if (!result.is_ok()) return {};
  return fingerprint(result.value());
}

TEST(ParallelDeterminismTest, SameSeedSameResultAtEveryThreadCount) {
  // The container running CI may have any core count; explicit 2 and 4
  // exercise real concurrency even on a single-core runner, and 0
  // (hardware_concurrency) covers whatever the host offers.
  const std::string serial = run_campaign(1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(run_campaign(2), serial) << "threads=2 diverged from serial";
  EXPECT_EQ(run_campaign(4), serial) << "threads=4 diverged from serial";
  EXPECT_EQ(run_campaign(0), serial)
      << "threads=hardware_concurrency diverged from serial";
}

TEST(ParallelDeterminismTest, RepeatedParallelRunsAgree) {
  const std::string first = run_campaign(4);
  const std::string second = run_campaign(4);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace hbmvolt
