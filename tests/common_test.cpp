// Unit tests for src/common: status, units, RNG, PRP, statistics, tables.

#include <cmath>
#include <cstdlib>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "common/log.hpp"
#include "common/plot.hpp"
#include "common/prp.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace hbmvolt {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.to_string(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = unavailable("stack crashed");
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(status.message(), "stack crashed");
  EXPECT_EQ(status.to_string(), "UNAVAILABLE: stack crashed");
}

TEST(StatusTest, FactoryHelpersProduceExpectedCodes) {
  EXPECT_EQ(invalid_argument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(out_of_range("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(data_loss("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(failed_precondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(not_found("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(internal_error("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(unavailable("a"), unavailable("b"));
  EXPECT_FALSE(unavailable("a") == not_found("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(result.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(not_found("missing"));
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValueWorks) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(7));
  ASSERT_TRUE(result.is_ok());
  auto ptr = std::move(result).value();
  EXPECT_EQ(*ptr, 7);
}

// ----------------------------------------------------------------- Units

TEST(UnitsTest, MillivoltsToVolts) {
  EXPECT_DOUBLE_EQ(Millivolts{1200}.volts(), 1.2);
  EXPECT_DOUBLE_EQ(Millivolts{0}.volts(), 0.0);
  EXPECT_DOUBLE_EQ(Millivolts{-50}.volts(), -0.05);
}

TEST(UnitsTest, FromVoltsRounds) {
  EXPECT_EQ(from_volts(0.98).value, 980);
  EXPECT_EQ(from_volts(1.2004).value, 1200);
  EXPECT_EQ(from_volts(1.2006).value, 1201);
}

TEST(UnitsTest, MillivoltArithmeticAndComparison) {
  EXPECT_EQ((Millivolts{1200} - Millivolts{220}).value, 980);
  EXPECT_EQ((Millivolts{900} + Millivolts{50}).value, 950);
  EXPECT_LT(Millivolts{810}, Millivolts{980});
  EXPECT_GE(Millivolts{980}, Millivolts{980});
}

TEST(UnitsTest, QuantityArithmetic) {
  const Watts a{10.0};
  const Watts b{2.5};
  EXPECT_DOUBLE_EQ((a + b).value, 12.5);
  EXPECT_DOUBLE_EQ((a - b).value, 7.5);
  EXPECT_DOUBLE_EQ((a * 2.0).value, 20.0);
  EXPECT_DOUBLE_EQ((2.0 * a).value, 20.0);
  EXPECT_DOUBLE_EQ((a / 4.0).value, 2.5);
  EXPECT_DOUBLE_EQ(a / b, 4.0);  // ratio is dimensionless
}

TEST(UnitsTest, ElectricalHelpers) {
  EXPECT_DOUBLE_EQ(power_from(Millivolts{1000}, Amps{3.0}).value, 3.0);
  EXPECT_DOUBLE_EQ(current_from(Watts{24.0}, Millivolts{1200}).value, 20.0);
  EXPECT_DOUBLE_EQ(energy_from(Watts{5.0}, Seconds{2.0}).value, 10.0);
}

TEST(UnitsTest, SimTimeConversion) {
  EXPECT_DOUBLE_EQ(to_seconds(kPicosPerSecond).value, 1.0);
  EXPECT_DOUBLE_EQ(to_seconds(kPicosPerSecond / 2).value, 0.5);
}

// ------------------------------------------------------------------- RNG

TEST(RngTest, SplitMixIsDeterministic) {
  EXPECT_EQ(splitmix64(1), splitmix64(1));
  EXPECT_NE(splitmix64(1), splitmix64(2));
}

TEST(RngTest, MixSeedSeparatesStreams) {
  EXPECT_NE(mix_seed(7, 0), mix_seed(7, 1));
  EXPECT_NE(mix_seed(7, 0), mix_seed(8, 0));
  EXPECT_EQ(mix_seed(7, 3), mix_seed(7, 3));
}

TEST(RngTest, XoshiroDeterministicPerSeed) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, UniformInUnitInterval) {
  Xoshiro256 rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Xoshiro256 rng(42);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RngTest, BoundedIsUnbiasedEnough) {
  Xoshiro256 rng(9);
  std::array<int, 5> counts{};
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) ++counts[rng.bounded(5)];
  for (const int c : counts) {
    EXPECT_NEAR(c, draws / 5, draws / 5 * 0.1);
  }
}

TEST(RngTest, BoundedZeroAndOne) {
  Xoshiro256 rng(9);
  EXPECT_EQ(rng.bounded(0), 0u);
  EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(RngTest, NormalHasStandardMoments) {
  Xoshiro256 rng(7);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Xoshiro256 rng(11);
  int hits = 0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / draws, 0.3, 0.01);
}

// ------------------------------------------------------------------- PRP

class PrpBijectionTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrpBijectionTest, ForwardIsBijective) {
  const std::uint64_t n = GetParam();
  FeistelPermutation prp(n, 0xABCDEF);
  std::set<std::uint64_t> seen;
  for (std::uint64_t x = 0; x < n; ++x) {
    const std::uint64_t y = prp.forward(x);
    EXPECT_LT(y, n);
    EXPECT_TRUE(seen.insert(y).second) << "duplicate image " << y;
  }
  EXPECT_EQ(seen.size(), n);
}

TEST_P(PrpBijectionTest, InverseUndoesForward) {
  const std::uint64_t n = GetParam();
  FeistelPermutation prp(n, 0x1234);
  for (std::uint64_t x = 0; x < n; ++x) {
    EXPECT_EQ(prp.inverse(prp.forward(x)), x);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PrpBijectionTest,
                         ::testing::Values(1, 2, 3, 7, 16, 100, 257, 1024,
                                           4099));

TEST(PrpTest, DifferentSeedsGiveDifferentPermutations) {
  FeistelPermutation a(1000, 1);
  FeistelPermutation b(1000, 2);
  int same = 0;
  for (std::uint64_t x = 0; x < 1000; ++x) {
    same += a.forward(x) == b.forward(x) ? 1 : 0;
  }
  EXPECT_LT(same, 50);  // a random bijection pair agrees ~1/n per point
}

TEST(PrpTest, PermutationActuallyScrambles) {
  FeistelPermutation prp(4096, 99);
  int fixed_points = 0;
  for (std::uint64_t x = 0; x < 4096; ++x) {
    fixed_points += prp.forward(x) == x ? 1 : 0;
  }
  EXPECT_LT(fixed_points, 40);
}

// ----------------------------------------------------------------- Stats

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RunningStatsTest, MatchesDirectComputation) {
  RunningStats stats;
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  double sum = 0.0;
  for (const double x : xs) {
    stats.add(x);
    sum += x;
  }
  const double mean = sum / xs.size();
  double ss = 0.0;
  for (const double x : xs) ss += (x - mean) * (x - mean);
  EXPECT_DOUBLE_EQ(stats.mean(), mean);
  EXPECT_NEAR(stats.variance(), ss / (xs.size() - 1), 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 16.0);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-10, 10);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.add(3.0);
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(StatsTest, InverseNormalKnownValues) {
  EXPECT_NEAR(inverse_normal_cdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(inverse_normal_cdf(0.975), 1.959964, 1e-4);
  EXPECT_NEAR(inverse_normal_cdf(0.95), 1.644854, 1e-4);
  EXPECT_NEAR(inverse_normal_cdf(0.005), -2.575829, 1e-4);
}

TEST(StatsTest, ZCriticalValues) {
  EXPECT_NEAR(z_critical(0.90), 1.645, 1e-3);
  EXPECT_NEAR(z_critical(0.95), 1.960, 1e-3);
  EXPECT_NEAR(z_critical(0.99), 2.576, 1e-3);
}

TEST(StatsTest, ConfidenceIntervalShrinksWithSamples) {
  RunningStats small;
  RunningStats large;
  Xoshiro256 rng(3);
  for (int i = 0; i < 10; ++i) small.add(rng.normal());
  for (int i = 0; i < 1000; ++i) large.add(rng.normal());
  const auto ci_small = mean_confidence_interval(small, 0.95);
  const auto ci_large = mean_confidence_interval(large, 0.95);
  EXPECT_GT(ci_small.half_width, ci_large.half_width);
  EXPECT_LE(ci_large.lower, ci_large.upper);
}

// The paper's sizing: 130 runs <-> ~7% error at 90% confidence (worst-case
// p = 0.5, effectively infinite population).
TEST(StatsTest, PaperSampleSizeAnchor) {
  const std::size_t runs = required_runs(0.07, 0.90);
  EXPECT_NEAR(static_cast<double>(runs), 139.0, 10.0);
  const double error = achieved_error_margin(130, 0.90);
  EXPECT_NEAR(error, 0.072, 0.005);
}

TEST(StatsTest, FinitePopulationNeedsFewerRuns) {
  const std::size_t infinite = required_runs(0.05, 0.95);
  const std::size_t finite = required_runs(0.05, 0.95, 1000);
  EXPECT_LT(finite, infinite);
  EXPECT_LE(finite, 1000u);
}

TEST(StatsTest, ErrorMarginInvertsRequiredRuns) {
  const double error = 0.05;
  const std::size_t runs = required_runs(error, 0.90, 100000);
  const double back = achieved_error_margin(runs, 0.90, 100000);
  EXPECT_NEAR(back, error, 0.003);
}

TEST(StatsTest, SmallerErrorNeedsMoreRuns) {
  EXPECT_GT(required_runs(0.01, 0.90), required_runs(0.05, 0.90));
  EXPECT_GT(required_runs(0.05, 0.99), required_runs(0.05, 0.90));
}

TEST(HistogramTest, CountsAndQuantiles) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(i / 10.0);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.count(0), 10u);
  EXPECT_NEAR(h.quantile(0.5), 5.0, 0.2);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 0.2);
}

TEST(HistogramTest, ClampsOutOfRange) {
  Histogram h(0.0, 1.0, 4);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 1u);
}

TEST(HistogramTest, BinEdges) {
  Histogram h(0.0, 8.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lower(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_upper(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lower(3), 6.0);
  EXPECT_DOUBLE_EQ(h.bin_upper(3), 8.0);
}

// ----------------------------------------------------------------- Table

TEST(AsciiTableTest, RendersAlignedGrid) {
  AsciiTable table;
  table.set_header({"a", "long header"});
  table.add_row({"1", "2"});
  table.add_row({"333", "4"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| a   | long header |"), std::string::npos);
  EXPECT_NE(out.find("| 333 | 4           |"), std::string::npos);
}

TEST(AsciiTableTest, HandlesRaggedRows) {
  AsciiTable table;
  table.set_header({"x"});
  table.add_row({"1", "2", "3"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find('3'), std::string::npos);
}

TEST(AsciiTableTest, SeparatorInsertsRule) {
  AsciiTable table;
  table.add_row({"a"});
  table.add_separator();
  table.add_row({"b"});
  const std::string out = table.to_string();
  // Four horizontal rules: top, separator, bottom... top + sep + bottom.
  int rules = 0;
  std::istringstream is(out);
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line[0] == '+') ++rules;
  }
  EXPECT_EQ(rules, 3);
}

TEST(CsvTest, EscapesSpecialCharacters) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.write_row({"plain", "with,comma", "with\"quote", "multi\nline"});
  EXPECT_EQ(os.str(),
            "plain,\"with,comma\",\"with\"\"quote\",\"multi\nline\"\n");
}

TEST(FormatTest, FormatDouble) {
  EXPECT_EQ(format_double(1.5), "1.5");
  EXPECT_EQ(format_double(0.123456, 3), "0.123");
}

TEST(FormatTest, FormatPercent) {
  EXPECT_EQ(format_percent(0.0), "0%");
  EXPECT_EQ(format_percent(1e-6), "<0.01%");
  EXPECT_EQ(format_percent(0.005), "0.50%");
  EXPECT_EQ(format_percent(0.055), "5.5%");
  EXPECT_EQ(format_percent(0.55), "55%");
}

TEST(FormatTest, FormatMillivolts) {
  EXPECT_EQ(format_millivolts(1200), "1.20V");
  EXPECT_EQ(format_millivolts(985), "0.98V");  // two decimals, rounds
}

// ------------------------------------------------------------------ Plot

TEST(AsciiChartTest, EmptyChartRendersPlaceholder) {
  AsciiChart chart(ChartOptions{});
  EXPECT_EQ(chart.render(), "(no data)\n");
}

TEST(AsciiChartTest, ExtremesLandInCorners) {
  ChartOptions options;
  options.width = 20;
  options.height = 5;
  AsciiChart chart(options);
  chart.add_series('*', {{0.0, 0.0}, {1.0, 1.0}});
  const std::string out = chart.render();
  std::vector<std::string> lines;
  std::istringstream is(out);
  for (std::string line; std::getline(is, line);) lines.push_back(line);
  // Top row holds the max point at the right edge; bottom plot row holds
  // the min point at the left edge.
  EXPECT_EQ(lines[0].back(), '*');
  EXPECT_EQ(lines[4][lines[4].find('|') + 1], '*');
}

TEST(AsciiChartTest, LogAxisDropsNonPositiveValues) {
  ChartOptions options;
  options.width = 16;
  options.height = 4;
  options.y_log = true;
  AsciiChart chart(options);
  chart.add_series('x', {{0.0, 0.0}, {1.0, 1e-3}, {2.0, 1.0}});
  const std::string out = chart.render();
  // Only the two positive points are drawn.
  EXPECT_EQ(std::count(out.begin(), out.end(), 'x'), 2);
}

TEST(AsciiChartTest, LaterSeriesOverdraw) {
  ChartOptions options;
  options.width = 10;
  options.height = 4;
  AsciiChart chart(options);
  chart.add_series('a', {{0.0, 0.5}, {1.0, 0.5}});
  chart.add_series('b', {{0.0, 0.5}});
  const std::string out = chart.render();
  EXPECT_NE(out.find('b'), std::string::npos);
  EXPECT_NE(out.find('a'), std::string::npos);
}

TEST(AsciiChartTest, AxisLabelsAppear) {
  ChartOptions options;
  options.width = 12;
  options.height = 4;
  options.x_label = "volts";
  options.y_label = "watts";
  AsciiChart chart(options);
  chart.add_series('.', {{0.8, 10.0}, {1.2, 26.0}});
  const std::string out = chart.render();
  EXPECT_NE(out.find("volts"), std::string::npos);
  EXPECT_NE(out.find("watts"), std::string::npos);
  EXPECT_NE(out.find("0.8"), std::string::npos);
  EXPECT_NE(out.find("1.2"), std::string::npos);
}

TEST(AsciiChartTest, FlatSeriesDoesNotDivideByZero) {
  ChartOptions options;
  options.width = 12;
  options.height = 4;
  AsciiChart chart(options);
  chart.add_series('=', {{1.0, 5.0}, {2.0, 5.0}});
  const std::string out = chart.render();
  EXPECT_NE(out.find('='), std::string::npos);
}

// ------------------------------------------------------------------- Log

TEST(LogTest, ParseLogLevelNamesAndNumbers) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("0"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("4"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("loud"), std::nullopt);
  EXPECT_EQ(parse_log_level(""), std::nullopt);
}

TEST(LogTest, EnvironmentOverridesProgrammaticLevel) {
  const LogLevel before = log_level();

  ::setenv("HBMVOLT_LOG_LEVEL", "debug", 1);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kDebug);

  // An unparsable value falls back to the programmatic setting.
  ::setenv("HBMVOLT_LOG_LEVEL", "shouty", 1);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);

  ::unsetenv("HBMVOLT_LOG_LEVEL");
  set_log_level(before);
  EXPECT_EQ(log_level(), before);
}

}  // namespace
}  // namespace hbmvolt
