// Unit tests for src/core: voltage sweeps, Algorithm 1, guardband
// extraction, power/fault characterizers, trade-off analysis, reports.

#include <gtest/gtest.h>

#include "board/vcu128.hpp"
#include "core/fault_characterizer.hpp"
#include "core/guardband.hpp"
#include "core/power_characterizer.hpp"
#include "core/reliability_tester.hpp"
#include "core/report.hpp"
#include "core/tradeoff.hpp"
#include "core/voltage_sweep.hpp"

namespace hbmvolt {
namespace {

using board::BoardConfig;
using board::Vcu128Board;
using core::CrashPolicy;
using core::ReliabilityConfig;
using core::ReliabilityTester;
using core::SweepConfig;
using core::VoltageSweep;

BoardConfig tiny_config() {
  BoardConfig config;
  config.geometry = hbm::HbmGeometry::test_tiny();
  config.monitor_config.noise_sigma_amps = 0.0;
  return config;
}

// ------------------------------------------------------------ SweepGrid

TEST(SweepGridTest, PaperGridHas40Points) {
  const auto grid = core::sweep_grid(SweepConfig{});
  ASSERT_EQ(grid.size(), 40u);  // 1200 .. 810 inclusive, 10 mV steps
  EXPECT_EQ(grid.front().value, 1200);
  EXPECT_EQ(grid.back().value, 810);
}

TEST(SweepGridTest, CustomStep) {
  const auto grid =
      core::sweep_grid({Millivolts{1000}, Millivolts{900}, 50});
  ASSERT_EQ(grid.size(), 3u);
  EXPECT_EQ(grid[1].value, 950);
}

// ---------------------------------------------------------- VoltageSweep

TEST(VoltageSweepTest, VisitsEveryPointAboveCritical) {
  Vcu128Board board(tiny_config());
  std::vector<int> visited;
  VoltageSweep sweep(board, {Millivolts{1000}, Millivolts{900}, 20});
  ASSERT_TRUE(sweep
                  .run([&](Millivolts v) { visited.push_back(v.value); })
                  .is_ok());
  EXPECT_EQ(visited, (std::vector<int>{1000, 980, 960, 940, 920, 900}));
  // Board restored to nominal afterwards.
  EXPECT_EQ(board.hbm_voltage().value, 1200);
}

TEST(VoltageSweepTest, StopPolicyAbortsAtCrash) {
  Vcu128Board board(tiny_config());
  std::vector<int> visited;
  std::vector<int> crashes;
  VoltageSweep sweep(board, {Millivolts{830}, Millivolts{790}, 10},
                     CrashPolicy::kStop);
  ASSERT_TRUE(sweep
                  .run([&](Millivolts v) { visited.push_back(v.value); },
                       [&](Millivolts v) { crashes.push_back(v.value); })
                  .is_ok());
  EXPECT_EQ(visited, (std::vector<int>{830, 820, 810}));
  EXPECT_EQ(crashes, (std::vector<int>{800}));
  EXPECT_TRUE(board.responding());  // power-cycled on exit
}

TEST(VoltageSweepTest, ContinuePolicyRecordsEveryCrash) {
  Vcu128Board board(tiny_config());
  std::vector<int> crashes;
  VoltageSweep sweep(board, {Millivolts{820}, Millivolts{790}, 10},
                     CrashPolicy::kPowerCycleAndContinue);
  ASSERT_TRUE(sweep
                  .run([](Millivolts) {},
                       [&](Millivolts v) { crashes.push_back(v.value); })
                  .is_ok());
  EXPECT_EQ(crashes, (std::vector<int>{800, 790}));
  EXPECT_TRUE(board.responding());
}

// ----------------------------------------------------- ReliabilityTester

class ReliabilityTest : public ::testing::Test {
 protected:
  ReliabilityTest() : board_(tiny_config()) {}

  faults::FaultMap run_map(SweepConfig sweep, unsigned batch = 1,
                           CrashPolicy policy = CrashPolicy::kStop) {
    ReliabilityConfig config;
    config.sweep = sweep;
    config.batch_size = batch;
    config.crash_policy = policy;
    ReliabilityTester tester(board_, config);
    auto result = tester.run();
    EXPECT_TRUE(result.is_ok());
    return std::move(result).value();
  }

  Vcu128Board board_;
};

TEST_F(ReliabilityTest, GuardbandShowsNoFaults) {
  const auto map = run_map({Millivolts{1200}, Millivolts{980}, 20});
  for (const auto v : map.voltages()) {
    EXPECT_EQ(map.device_record(v).total_flips(), 0u) << v.value;
    EXPECT_GT(map.device_record(v).bits_tested, 0u);
  }
}

TEST_F(ReliabilityTest, FirstFlipsAtPaperVoltages) {
  const auto map = run_map({Millivolts{1000}, Millivolts{950}, 10});
  ASSERT_TRUE(map.highest_faulty_voltage().has_value());
  EXPECT_EQ(map.highest_faulty_voltage()->value, 970);
  // 1->0 appears at 0.97 V, 0->1 only at 0.96 V.
  EXPECT_GT(map.device_record(Millivolts{970}).flips_1to0, 0u);
  EXPECT_EQ(map.device_record(Millivolts{970}).flips_0to1, 0u);
  EXPECT_GT(map.device_record(Millivolts{960}).flips_0to1, 0u);
}

TEST_F(ReliabilityTest, EverythingFaultyDeepInUnsafeRegion) {
  const auto map = run_map({Millivolts{840}, Millivolts{840}, 10});
  // With both patterns, every bit reads wrong under one of them:
  // rate = flips / (2 * bits per pattern)... each pattern tests all bits.
  const auto record = map.device_record(Millivolts{840});
  EXPECT_DOUBLE_EQ(record.rate(), 0.5);  // all cells flip in one direction
  // Every cell is stuck: flips_1to0 + flips_0to1 == total cells.
  EXPECT_EQ(record.total_flips(),
            board_.geometry().total_bits());
}

TEST_F(ReliabilityTest, CrashRecordedWithContinuePolicy) {
  const auto map = run_map({Millivolts{820}, Millivolts{800}, 10}, 1,
                           CrashPolicy::kPowerCycleAndContinue);
  const auto* observation = map.at(Millivolts{800});
  ASSERT_NE(observation, nullptr);
  EXPECT_TRUE(observation->crashed);
  EXPECT_FALSE(map.at(Millivolts{810})->crashed);
}

TEST_F(ReliabilityTest, BatchSizeMultipliesTestedBits) {
  const auto map1 = run_map({Millivolts{1000}, Millivolts{1000}, 10}, 1);
  const auto map3 = run_map({Millivolts{1000}, Millivolts{1000}, 10}, 3);
  EXPECT_EQ(map3.device_record(Millivolts{1000}).bits_tested,
            3 * map1.device_record(Millivolts{1000}).bits_tested);
}

TEST_F(ReliabilityTest, MemBeatsLimitsCoverage) {
  ReliabilityConfig config;
  config.sweep = {Millivolts{1000}, Millivolts{1000}, 10};
  config.batch_size = 1;
  config.mem_beats = 4;
  ReliabilityTester tester(board_, config);
  const auto map = std::move(tester.run()).value();
  // 4 beats * 256 b * 2 patterns per PC.
  EXPECT_EQ(map.pc_record(Millivolts{1000}, 0).bits_tested, 4u * 256 * 2);
}

TEST_F(ReliabilityTest, SinglePcRun) {
  ReliabilityConfig config;
  config.sweep = {Millivolts{960}, Millivolts{940}, 10};
  config.batch_size = 1;
  ReliabilityTester tester(board_, config);
  const auto map = std::move(tester.run_pc(18)).value();
  EXPECT_GT(map.pc_record(Millivolts{940}, 18).total_flips(), 0u);
  // Other PCs were not tested at all.
  EXPECT_EQ(map.pc_record(Millivolts{940}, 4).bits_tested, 0u);
}

TEST_F(ReliabilityTest, SweepIsDeterministic) {
  const auto a = run_map({Millivolts{960}, Millivolts{900}, 20});
  const auto b = run_map({Millivolts{960}, Millivolts{900}, 20});
  for (const auto v : a.voltages()) {
    for (unsigned pc = 0; pc < 32; ++pc) {
      EXPECT_EQ(a.pc_record(v, pc).flips_1to0, b.pc_record(v, pc).flips_1to0);
      EXPECT_EQ(a.pc_record(v, pc).flips_0to1, b.pc_record(v, pc).flips_0to1);
    }
  }
}

// -------------------------------------------------------------- Guardband

TEST_F(ReliabilityTest, GuardbandAnalysis) {
  const auto map = run_map({Millivolts{1200}, Millivolts{810}, 10}, 1,
                           CrashPolicy::kStop);
  const auto result = core::analyze_guardband(map, Millivolts{1200});
  EXPECT_EQ(result.v_min.value, 980);
  EXPECT_EQ(result.v_first_fault.value, 970);
  EXPECT_EQ(result.v_critical.value, 810);
  EXPECT_NEAR(result.guardband_fraction, 0.1833, 0.0001);
  EXPECT_FALSE(result.crash_observed);  // grid stops at V_critical
}

TEST_F(ReliabilityTest, GuardbandSeesCrashWhenSweepGoesBelowCritical) {
  const auto map = run_map({Millivolts{1200}, Millivolts{800}, 10}, 1,
                           CrashPolicy::kPowerCycleAndContinue);
  const auto result = core::analyze_guardband(map, Millivolts{1200});
  EXPECT_TRUE(result.crash_observed);
  EXPECT_EQ(result.v_critical.value, 810);
}

TEST(GuardbandTest, FindGuardbandConvenience) {
  Vcu128Board board(tiny_config());
  ReliabilityConfig config;
  config.sweep = {Millivolts{1000}, Millivolts{960}, 10};
  config.batch_size = 1;
  auto result = core::find_guardband(board, config);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().v_first_fault.value, 970);
}

// ----------------------------------------------------- PowerCharacterizer

class PowerCharTest : public ::testing::Test {
 protected:
  PowerCharTest() : board_(tiny_config()) {}

  core::PowerCharacterization run(core::PowerSweepConfig config = {}) {
    config.samples = 4;
    config.traffic_beats = 8;
    core::PowerCharacterizer characterizer(board_, config);
    auto result = characterizer.run();
    EXPECT_TRUE(result.is_ok());
    return std::move(result).value();
  }

  Vcu128Board board_;
};

TEST_F(PowerCharTest, SeriesCoverConfiguredPortCounts) {
  core::PowerSweepConfig config;
  config.sweep = {Millivolts{1200}, Millivolts{1100}, 50};
  config.port_counts = {0, 16, 32};
  const auto data = run(config);
  ASSERT_EQ(data.series.size(), 3u);
  EXPECT_EQ(data.series[0].ports, 0u);
  EXPECT_DOUBLE_EQ(data.series[2].utilization, 1.0);
  EXPECT_EQ(data.series[1].voltages.size(), 3u);
}

TEST_F(PowerCharTest, NormalizationReferenceIsMaxPortsAtNominal) {
  core::PowerSweepConfig config;
  config.sweep = {Millivolts{1200}, Millivolts{1150}, 50};
  config.port_counts = {8, 32};
  const auto data = run(config);
  const auto& full = data.series[1];
  EXPECT_NEAR(data.normalized(full, 0), 1.0, 0.02);
  // Idle series sits near 1/3 at nominal.
  const auto& partial = data.series[0];
  EXPECT_LT(data.normalized(partial, 0), 1.0);
}

TEST_F(PowerCharTest, SavingsFactorsMatchPaper) {
  core::PowerSweepConfig config;
  config.sweep = {Millivolts{1200}, Millivolts{850}, 10};
  config.port_counts = {0, 16, 32};
  const auto data = run(config);
  for (const auto& series : data.series) {
    const auto at_980 = data.savings_factor(series, Millivolts{980});
    ASSERT_TRUE(at_980.has_value());
    EXPECT_NEAR(*at_980, 1.5, 0.06) << series.ports;
    const auto at_850 = data.savings_factor(series, Millivolts{850});
    ASSERT_TRUE(at_850.has_value());
    EXPECT_NEAR(*at_850, 2.3, 0.15) << series.ports;
  }
}

TEST_F(PowerCharTest, AlphaClfFlatInGuardbandDropsBelow) {
  core::PowerSweepConfig config;
  config.sweep = {Millivolts{1200}, Millivolts{850}, 10};
  config.port_counts = {32};
  const auto data = run(config);
  const auto& series = data.series[0];
  for (std::size_t i = 0; i < series.voltages.size(); ++i) {
    const double value = data.alpha_clf_normalized(series, i);
    if (series.voltages[i] >= Millivolts{980}) {
      EXPECT_NEAR(value, 1.0, 0.03) << series.voltages[i].value;  // anchor 10
    }
    if (series.voltages[i] == Millivolts{850}) {
      EXPECT_NEAR(value, 0.86, 0.04);  // ~14% drop
    }
  }
}

TEST_F(PowerCharTest, PowerMonotoneInVoltage) {
  core::PowerSweepConfig config;
  config.sweep = {Millivolts{1200}, Millivolts{900}, 50};
  config.port_counts = {32};
  const auto data = run(config);
  const auto& series = data.series[0];
  for (std::size_t i = 1; i < series.power.size(); ++i) {
    EXPECT_LT(series.power[i].value, series.power[i - 1].value);
  }
}

// ----------------------------------------------------- FaultCharacterizer

class FaultCharTest : public ::testing::Test {
 protected:
  FaultCharTest() : board_(tiny_config()), characterizer_(board_) {}

  faults::FaultMap full_map() {
    ReliabilityConfig config;
    config.sweep = {Millivolts{1000}, Millivolts{845}, 5};
    config.batch_size = 1;
    auto result = characterizer_.characterize(config);
    EXPECT_TRUE(result.is_ok());
    return std::move(result).value();
  }

  Vcu128Board board_;
  core::FaultCharacterizer characterizer_;
};

TEST_F(FaultCharTest, StackVariationMatchesPaperDirection) {
  const auto map = full_map();
  const auto variation = core::analyze_stack_variation(map);
  EXPECT_EQ(variation.better_stack, 0u);  // HBM0 fares better
  EXPECT_GT(variation.samples, 5u);
  EXPECT_GT(variation.average_gap, 0.05);
  EXPECT_LT(variation.average_gap, 0.35);
}

TEST_F(FaultCharTest, PatternVariationMatchesPaper) {
  const auto map = full_map();
  const auto variation = core::analyze_pattern_variation(map);
  ASSERT_TRUE(variation.first_1to0.has_value());
  ASSERT_TRUE(variation.first_0to1.has_value());
  EXPECT_EQ(variation.first_1to0->value, 970);
  EXPECT_EQ(variation.first_0to1->value, 960);
  // 0->1 flips outnumber 1->0 on average (paper: +21%).
  EXPECT_GT(variation.average_0to1_excess, 0.0);
  EXPECT_LT(variation.average_0to1_excess, 0.6);
}

TEST_F(FaultCharTest, PerPcOnsetsIdentifyWeakPcs) {
  const auto map = full_map();
  const auto onsets = core::per_pc_onsets(map);
  ASSERT_EQ(onsets.size(), 32u);
  // Weak PCs fault earliest.
  ASSERT_TRUE(onsets[18].has_value());
  EXPECT_EQ(onsets[18]->value, 970);
  // Strong PCs stay clean above 0.945 V.
  for (const unsigned pc : faults::paper_strong_pcs()) {
    if (onsets[pc].has_value()) {
      EXPECT_LT(onsets[pc]->value, 950) << "pc " << pc;
    }
  }
}

TEST_F(FaultCharTest, ClusteringReport) {
  const auto stats = characterizer_.clustering(18, Millivolts{930});
  EXPECT_GT(stats.faults, 0u);
  EXPECT_GT(stats.fraction_in_densest_5pct_rows, 0.15);
  // Injector voltage is restored.
  EXPECT_EQ(board_.injector().voltage().value, 1200);
}

// ------------------------------------------------------- TradeoffAnalyzer

class TradeoffTest : public ::testing::Test {
 protected:
  TradeoffTest() : board_(tiny_config()) {}

  faults::FaultMap make_map() {
    ReliabilityConfig config;
    config.sweep = {Millivolts{1000}, Millivolts{850}, 10};
    config.batch_size = 1;
    ReliabilityTester tester(board_, config);
    return std::move(tester.run()).value();
  }

  Vcu128Board board_;
};

TEST_F(TradeoffTest, UsablePcsMonotoneInTolerableRate) {
  const auto map = make_map();
  core::TradeoffAnalyzer analyzer(map, Millivolts{1200});
  core::TradeoffConfig config;
  const auto points = analyzer.analyze(config);
  ASSERT_FALSE(points.empty());
  for (const auto& point : points) {
    for (std::size_t i = 1; i < point.usable_pcs.size(); ++i) {
      EXPECT_GE(point.usable_pcs[i], point.usable_pcs[i - 1])
          << "voltage " << point.voltage.value;
    }
  }
}

TEST_F(TradeoffTest, AllPcsUsableInGuardband) {
  const auto map = make_map();
  core::TradeoffAnalyzer analyzer(map, Millivolts{1200});
  const auto points = analyzer.analyze(core::TradeoffConfig{});
  EXPECT_EQ(points.front().voltage.value, 1000);
  EXPECT_EQ(points.front().usable_pcs.front(), 32u);  // zero tolerance
}

TEST_F(TradeoffTest, SevenFaultFreePcsAt950) {
  const auto map = make_map();
  core::TradeoffAnalyzer analyzer(map, Millivolts{1200});
  core::TradeoffConfig config;
  config.tolerable_rates = {0.0};
  for (const auto& point : analyzer.analyze(config)) {
    if (point.voltage == Millivolts{950}) {
      EXPECT_EQ(point.usable_pcs[0], 7u);  // Fig 6 anchor
      EXPECT_NEAR(point.savings_factor, 1.6, 0.05);  // paper: "up to 1.6x"
    }
  }
}

TEST_F(TradeoffTest, SavingsFactorPureV2WithoutModel) {
  const auto map = make_map();
  core::TradeoffAnalyzer analyzer(map, Millivolts{1200});
  EXPECT_NEAR(analyzer.savings_factor(Millivolts{900}), 16.0 / 9.0, 1e-9);
  EXPECT_DOUBLE_EQ(analyzer.savings_factor(Millivolts{0}), 1.0);
}

TEST_F(TradeoffTest, SavingsFactorWithModelIncludesAlpha) {
  const auto map = make_map();
  core::TradeoffAnalyzer with_model(map, Millivolts{1200},
                                    &board_.power_model());
  core::TradeoffAnalyzer without(map, Millivolts{1200});
  // In the deep unsafe region, stuck cells buy extra savings.
  EXPECT_GT(with_model.savings_factor(Millivolts{850}),
            without.savings_factor(Millivolts{850}));
  // In the guardband they agree.
  EXPECT_NEAR(with_model.savings_factor(Millivolts{1000}),
              without.savings_factor(Millivolts{1000}), 1e-9);
}

TEST_F(TradeoffTest, PlanFindsDeepestSatisfyingVoltage) {
  const auto map = make_map();
  core::TradeoffAnalyzer analyzer(map, Millivolts{1200});
  // Fault-free plan with 7 PCs: can go at least down to 0.95 V.
  const auto plan = analyzer.plan(7, 0.0);
  ASSERT_TRUE(plan.has_value());
  EXPECT_LE(plan->voltage.value, 950);
  EXPECT_EQ(plan->pcs.size(), 7u);
  // The chosen PCs really are fault-free at the chosen voltage.
  for (const unsigned pc : plan->pcs) {
    EXPECT_DOUBLE_EQ(map.pc_record(plan->voltage, pc).rate(), 0.0);
  }
}

TEST_F(TradeoffTest, PlanRequiresFeasibility) {
  const auto map = make_map();
  core::TradeoffAnalyzer analyzer(map, Millivolts{1200});
  // 33 PCs don't exist.
  EXPECT_FALSE(analyzer.plan(33, 1.0).has_value());
  // All 32 PCs fault-free: only guardband voltages qualify; plan exists.
  const auto plan = analyzer.plan(32, 0.0);
  ASSERT_TRUE(plan.has_value());
  EXPECT_GE(plan->voltage.value, 980);
}

TEST_F(TradeoffTest, HigherToleranceNeverRaisesPlanVoltage) {
  const auto map = make_map();
  core::TradeoffAnalyzer analyzer(map, Millivolts{1200});
  const auto strict = analyzer.plan(16, 0.0);
  const auto loose = analyzer.plan(16, 0.01);
  ASSERT_TRUE(strict.has_value());
  ASSERT_TRUE(loose.has_value());
  EXPECT_LE(loose->voltage.value, strict->voltage.value);
  EXPECT_GE(loose->savings_factor, strict->savings_factor);
}

// ---------------------------------------------------------------- Report

TEST_F(TradeoffTest, RendersContainPaperLandmarks) {
  const auto map = make_map();
  core::TradeoffAnalyzer analyzer(map, Millivolts{1200});
  core::TradeoffConfig config;
  const auto points = analyzer.analyze(config);

  const std::string fig4 = core::render_fig4(map);
  EXPECT_NE(fig4.find("HBM0"), std::string::npos);
  EXPECT_NE(fig4.find("0.97V"), std::string::npos);

  const std::string fig5 = core::render_fig5(map);
  EXPECT_NE(fig5.find("NF"), std::string::npos);
  EXPECT_NE(fig5.find("PC31"), std::string::npos);

  const std::string fig6 = core::render_fig6(points, config);
  EXPECT_NE(fig6.find("fault-free"), std::string::npos);

  const std::string csv = core::to_csv_fig6(points, config);
  // Header + one row per (voltage, rate).
  const auto rows = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(rows, 1 + static_cast<std::ptrdiff_t>(
                          points.size() * config.tolerable_rates.size()));
}

TEST_F(PowerCharTest, Fig2And3RendersAndCsv) {
  core::PowerSweepConfig config;
  config.sweep = {Millivolts{1200}, Millivolts{1000}, 50};
  config.port_counts = {0, 32};
  const auto data = run(config);
  const std::string fig2 = core::render_fig2(data, 50);
  EXPECT_NE(fig2.find("Fig 2"), std::string::npos);
  EXPECT_NE(fig2.find("32 ports"), std::string::npos);
  const std::string fig3 = core::render_fig3(data, 50);
  EXPECT_NE(fig3.find("alpha"), std::string::npos);
  const std::string csv = core::to_csv_fig2(data);
  const auto rows = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(rows, 1 + 2 * 5);  // header + 2 series * 5 voltages
}

TEST(ReportTest, PcHeatmapShowsDensityAndShape) {
  const auto geometry = hbm::HbmGeometry::test_tiny();
  faults::FaultInjector injector(
      faults::FaultModel(geometry, faults::FaultModelConfig{}));

  // The header line mentions the glyphs; assert on the body only.
  const auto body = [](const std::string& rendered) {
    return rendered.substr(rendered.find('\n') + 1);
  };

  // Clean overlay: all '.'.
  const std::string clean =
      body(core::render_pc_heatmap(geometry, faults::FaultOverlay{}));
  EXPECT_NE(clean.find('.'), std::string::npos);
  EXPECT_EQ(clean.find('#'), std::string::npos);
  // One line per row.
  const auto lines = std::count(clean.begin(), clean.end(), '\n');
  EXPECT_EQ(lines, static_cast<std::ptrdiff_t>(geometry.rows_per_bank()));

  // Faulty overlay: density glyphs appear.
  injector.set_voltage(Millivolts{880});
  const std::string faulty =
      body(core::render_pc_heatmap(geometry, injector.overlay(18)));
  EXPECT_NE(faulty.find_first_of("123456789#"), std::string::npos);

  // All-faulty: every cell saturated.
  injector.set_voltage(Millivolts{840});
  const std::string saturated =
      body(core::render_pc_heatmap(geometry, injector.overlay(18)));
  EXPECT_EQ(saturated.find('.'), std::string::npos);
  EXPECT_NE(saturated.find('#'), std::string::npos);
}

TEST(ReportTest, HeadlineTableRendersAllRows) {
  core::HeadlineNumbers numbers;
  numbers.guardband.v_min = Millivolts{980};
  numbers.guardband.v_first_fault = Millivolts{970};
  numbers.guardband.v_critical = Millivolts{810};
  numbers.guardband.guardband_fraction = 0.1833;
  numbers.savings_at_vmin = 1.5;
  numbers.savings_at_850mv = 2.32;
  numbers.idle_fraction = 0.33;
  numbers.pattern_variation.first_1to0 = Millivolts{970};
  numbers.pattern_variation.first_0to1 = Millivolts{960};
  numbers.pattern_variation.average_0to1_excess = 0.21;
  numbers.alpha_drop_at_850mv = 0.14;
  const std::string table = core::render_headline(numbers);
  EXPECT_NE(table.find("guardband"), std::string::npos);
  EXPECT_NE(table.find("2.3x"), std::string::npos);
  EXPECT_NE(table.find("0.98V"), std::string::npos);
  EXPECT_NE(table.find("+21%"), std::string::npos);
}

}  // namespace
}  // namespace hbmvolt
