// Unit tests for src/power: the rail power model and the PowerRail glue.

#include <gtest/gtest.h>

#include "faults/fault_model.hpp"
#include "hbm/geometry.hpp"
#include "power/droop.hpp"
#include "power/power_model.hpp"
#include "power/rail.hpp"

namespace hbmvolt {
namespace {

using power::PowerModel;
using power::PowerModelConfig;
using power::PowerRail;

PowerModel make_model() { return PowerModel(PowerModelConfig{}); }

TEST(PowerModelTest, NominalFullLoadMatchesConfig) {
  const auto model = make_model();
  EXPECT_NEAR(model.power(Millivolts{1200}, 1.0).value, 26.1, 1e-9);
}

TEST(PowerModelTest, IdleIsOneThirdOfFullLoad) {
  const auto model = make_model();
  const double full = model.power(Millivolts{1200}, 1.0).value;
  const double idle = model.idle_power(Millivolts{1200}).value;
  EXPECT_NEAR(idle / full, 1.0 / 3.0, 1e-9);
}

TEST(PowerModelTest, QuadraticVoltageScaling) {
  const auto model = make_model();
  for (const double u : {0.0, 0.25, 0.5, 1.0}) {
    const double p_nom = model.power(Millivolts{1200}, u).value;
    const double p_600 = model.power(Millivolts{600}, u).value;
    EXPECT_NEAR(p_600 / p_nom, 0.25, 1e-9) << "utilization " << u;
  }
}

TEST(PowerModelTest, GuardbandSavingsFactorIs1_5x) {
  const auto model = make_model();
  for (const double u : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const double savings = model.power(Millivolts{1200}, u).value /
                           model.power(Millivolts{980}, u).value;
    EXPECT_NEAR(savings, 1.5, 0.01) << "utilization " << u;
  }
}

TEST(PowerModelTest, ZeroVoltageDrawsNothing) {
  const auto model = make_model();
  EXPECT_DOUBLE_EQ(model.power(Millivolts{0}, 1.0).value, 0.0);
  EXPECT_DOUBLE_EQ(model.current(Millivolts{0}, 1.0).value, 0.0);
  EXPECT_DOUBLE_EQ(model.power(Millivolts{-5}, 1.0).value, 0.0);
}

TEST(PowerModelTest, UtilizationIsClamped) {
  const auto model = make_model();
  EXPECT_DOUBLE_EQ(model.power(Millivolts{1200}, 2.0).value,
                   model.power(Millivolts{1200}, 1.0).value);
  EXPECT_DOUBLE_EQ(model.power(Millivolts{1200}, -1.0).value,
                   model.power(Millivolts{1200}, 0.0).value);
}

TEST(PowerModelTest, PowerIncreasesWithUtilization) {
  const auto model = make_model();
  double prev = 0.0;
  for (const double u : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const double p = model.power(Millivolts{980}, u).value;
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(PowerModelTest, CurrentIsPowerOverVoltage) {
  const auto model = make_model();
  const Millivolts v{980};
  EXPECT_NEAR(model.current(v, 0.5).value,
              model.power(v, 0.5).value / 0.98, 1e-9);
}

TEST(PowerModelTest, AlphaClfIsFlatWithoutAlphaHook) {
  const auto model = make_model();
  const double at_nom = model.alpha_clf(Millivolts{1200}, 1.0);
  for (const int mv : {1100, 1000, 900, 850}) {
    EXPECT_NEAR(model.alpha_clf(Millivolts{mv}, 1.0), at_nom, 1e-9);
  }
}

TEST(PowerModelTest, AlphaHookScalesPower) {
  const PowerModel model(PowerModelConfig{}, [](Millivolts v) {
    return v.value < 980 ? 0.9 : 1.0;
  });
  const double base = PowerModel(PowerModelConfig{})
                          .power(Millivolts{900}, 1.0)
                          .value;
  EXPECT_NEAR(model.power(Millivolts{900}, 1.0).value, 0.9 * base, 1e-9);
  EXPECT_DOUBLE_EQ(model.alpha(Millivolts{900}), 0.9);
  EXPECT_DOUBLE_EQ(model.alpha(Millivolts{1200}), 1.0);
}

TEST(PowerModelTest, FaultModelCouplingGives2_3xAt850) {
  // The full coupling: alpha from the calibrated fault model produces the
  // paper's 2.3x total savings at 0.85 V.
  const faults::FaultModel faults(hbm::HbmGeometry::test_tiny(),
                                  faults::FaultModelConfig{});
  const PowerModel model(PowerModelConfig{}, [&faults](Millivolts v) {
    return faults.alpha_multiplier(v);
  });
  for (const double u : {0.0, 0.5, 1.0}) {
    const double savings = model.power(Millivolts{1200}, u).value /
                           model.power(Millivolts{850}, u).value;
    EXPECT_NEAR(savings, 2.3, 0.12) << "utilization " << u;
  }
}

// ------------------------------------------------------------- PowerRail

TEST(PowerRailTest, SampleReflectsVoltageAndUtilization) {
  PowerRail rail(make_model());
  rail.on_voltage(Millivolts{1200});
  rail.set_utilization(1.0);
  const auto sample = rail.sample();
  EXPECT_EQ(sample.bus_voltage.value, 1200);
  EXPECT_NEAR(sample.current.value, 26.1 / 1.2, 1e-6);
}

TEST(PowerRailTest, UtilizationClamped) {
  PowerRail rail(make_model());
  rail.set_utilization(5.0);
  EXPECT_DOUBLE_EQ(rail.utilization(), 1.0);
  rail.set_utilization(-5.0);
  EXPECT_DOUBLE_EQ(rail.utilization(), 0.0);
}

TEST(PowerRailTest, LoadCurrentFollowsModel) {
  PowerRail rail(make_model());
  rail.set_utilization(0.5);
  EXPECT_NEAR(rail.load_current(Millivolts{980}).value,
              rail.model().current(Millivolts{980}, 0.5).value, 1e-12);
}

TEST(PowerRailTest, EnergyIntegration) {
  PowerRail rail(make_model());
  rail.on_voltage(Millivolts{1200});
  rail.set_utilization(1.0);
  rail.advance(Seconds{2.0});
  EXPECT_NEAR(rail.consumed_energy().value, 26.1 * 2.0, 1e-9);
  rail.advance(Seconds{-1.0});  // no-op
  EXPECT_NEAR(rail.consumed_energy().value, 26.1 * 2.0, 1e-9);
  rail.reset_energy();
  EXPECT_DOUBLE_EQ(rail.consumed_energy().value, 0.0);
}

// ----------------------------------------------------------- Droop math

TEST(DroopTest, ZeroLoadLineIsIdentity) {
  const auto model = make_model();
  EXPECT_EQ(power::effective_rail_voltage(Millivolts{980}, model, 1.0,
                                          Ohms{0.0})
                .value,
            980);
}

TEST(DroopTest, SagScalesWithLoadLineAndUtilization) {
  const auto model = make_model();
  const auto sag = [&model](double util, double ohms) {
    return 980 - power::effective_rail_voltage(Millivolts{980}, model, util,
                                               Ohms{ohms})
                     .value;
  };
  // Idle draws 1/3 the current of full load (integer-mV rounding slack).
  EXPECT_NEAR(sag(0.0, 0.002), sag(1.0, 0.002) / 3.0, 1.5);
  EXPECT_GT(sag(1.0, 0.005), sag(1.0, 0.002));
  EXPECT_GT(sag(1.0, 0.002), 0);
  // Sanity: ~17.4 A at 0.98 V full load through 2 mOhm = ~35 mV.
  EXPECT_NEAR(sag(1.0, 0.002), 35, 4);
}

TEST(DroopTest, FixedPointIsSelfConsistent) {
  const auto model = make_model();
  const Ohms load_line{0.004};
  const Millivolts effective =
      power::effective_rail_voltage(Millivolts{950}, model, 1.0, load_line);
  const double i = model.current(effective, 1.0).value;
  EXPECT_NEAR(effective.volts(), 0.95 - i * load_line.value, 0.0015);
}

TEST(DroopTest, CompensatedSetpointRestoresTarget) {
  const auto model = make_model();
  for (const double ohms : {0.001, 0.005, 0.01}) {
    const Millivolts setpoint = power::compensated_setpoint(
        Millivolts{980}, model, 1.0, Ohms{ohms});
    const Millivolts effective =
        power::effective_rail_voltage(setpoint, model, 1.0, Ohms{ohms});
    EXPECT_NEAR(effective.value, 980, 1) << ohms;
    EXPECT_GT(setpoint.value, 980);
  }
}

TEST(PowerRailTest, UndervoltingReducesEnergyForSameTime) {
  PowerRail nominal(make_model());
  nominal.on_voltage(Millivolts{1200});
  nominal.set_utilization(1.0);
  nominal.advance(Seconds{1.0});

  PowerRail undervolted(make_model());
  undervolted.on_voltage(Millivolts{980});
  undervolted.set_utilization(1.0);
  undervolted.advance(Seconds{1.0});

  EXPECT_NEAR(nominal.consumed_energy().value /
                  undervolted.consumed_energy().value,
              1.5, 0.01);
}

}  // namespace
}  // namespace hbmvolt
