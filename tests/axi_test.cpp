// Unit tests for src/axi: traffic generators, the switching network, and
// per-stack controllers.

#include <gtest/gtest.h>

#include "axi/controller.hpp"
#include "axi/switch.hpp"
#include "axi/traffic_gen.hpp"
#include "faults/fault_overlay.hpp"
#include "hbm/stack.hpp"

namespace hbmvolt {
namespace {

using axi::MacroOp;
using axi::StackController;
using axi::SwitchNetwork;
using axi::TgCommand;
using axi::TrafficGenerator;

class AxiTest : public ::testing::Test {
 protected:
  AxiTest()
      : geometry_(hbm::HbmGeometry::test_tiny()),
        injector_(faults::FaultModel(geometry_, faults::FaultModelConfig{})),
        stack_(geometry_, 0, injector_, 3) {}

  void set_voltage(Millivolts v) {
    injector_.set_voltage(v);
    stack_.on_voltage_change(v);
  }

  hbm::HbmGeometry geometry_;
  faults::FaultInjector injector_;
  hbm::HbmStack stack_;
};

// ----------------------------------------------------------- count_flips

TEST(CountFlipsTest, SeparatesDirections) {
  const hbm::Beat expected = {0xFF, 0x00, ~0ull, 0};
  const hbm::Beat observed = {0x0F, 0xF0, ~0ull, 1};
  std::uint64_t f10 = 0;
  std::uint64_t f01 = 0;
  axi::count_flips(observed, expected, f10, f01);
  EXPECT_EQ(f10, 4u);  // upper nibble of word 0 lost its ones
  EXPECT_EQ(f01, 5u);  // word 1 gained four ones, word 3 gained one
}

TEST(CountFlipsTest, IdenticalBeatsNoFlips) {
  std::uint64_t f10 = 0;
  std::uint64_t f01 = 0;
  axi::count_flips(hbm::kBeatAllOnes, hbm::kBeatAllOnes, f10, f01);
  EXPECT_EQ(f10 + f01, 0u);
}

// ------------------------------------------------------ TrafficGenerator

TEST_F(AxiTest, WriteReadCleanAtNominal) {
  TrafficGenerator tg(stack_, 0);
  TgCommand command{MacroOp::kWriteRead, 0, 0, hbm::kBeatAllOnes, true};
  ASSERT_TRUE(tg.run(command).is_ok());
  EXPECT_EQ(tg.stats().beats_written, geometry_.beats_per_pc());
  EXPECT_EQ(tg.stats().beats_read, geometry_.beats_per_pc());
  EXPECT_EQ(tg.stats().total_flips(), 0u);
  EXPECT_EQ(tg.stats().bits_checked, geometry_.bits_per_pc);
}

TEST_F(AxiTest, SubrangeCommand) {
  TrafficGenerator tg(stack_, 1);
  TgCommand command{MacroOp::kWriteRead, 4, 8, hbm::kBeatAllZeros, true};
  ASSERT_TRUE(tg.run(command).is_ok());
  EXPECT_EQ(tg.stats().beats_written, 8u);
  EXPECT_EQ(tg.stats().bits_checked, 8u * 256);
}

TEST_F(AxiTest, ReadWithoutCheckCountsNothing) {
  TrafficGenerator tg(stack_, 0);
  TgCommand command{MacroOp::kRead, 0, 4, hbm::kBeatAllOnes, false};
  ASSERT_TRUE(tg.run(command).is_ok());
  EXPECT_EQ(tg.stats().bits_checked, 0u);
  EXPECT_EQ(tg.stats().beats_written, 0u);
  EXPECT_EQ(tg.stats().beats_read, 4u);
}

TEST_F(AxiTest, RangeValidation) {
  TrafficGenerator tg(stack_, 0);
  TgCommand command{MacroOp::kWrite, geometry_.beats_per_pc(), 1,
                    hbm::kBeatAllOnes, false};
  EXPECT_EQ(tg.run(command).code(), StatusCode::kOutOfRange);
  command = {MacroOp::kWrite, 0, geometry_.beats_per_pc() + 1,
             hbm::kBeatAllOnes, false};
  EXPECT_EQ(tg.run(command).code(), StatusCode::kOutOfRange);
}

TEST_F(AxiTest, DisabledPortDoesNothing) {
  TrafficGenerator tg(stack_, 0);
  tg.set_enabled(false);
  TgCommand command{MacroOp::kWriteRead, 0, 0, hbm::kBeatAllOnes, true};
  ASSERT_TRUE(tg.run(command).is_ok());
  EXPECT_EQ(tg.stats().beats_written, 0u);
}

TEST_F(AxiTest, CrashedStackReturnsSlverr) {
  set_voltage(Millivolts{800});
  TrafficGenerator tg(stack_, 0);
  TgCommand command{MacroOp::kWriteRead, 0, 0, hbm::kBeatAllOnes, true};
  EXPECT_EQ(tg.run(command).code(), StatusCode::kUnavailable);
  EXPECT_EQ(tg.stats().slverr, 1u);
}

TEST_F(AxiTest, UndervoltedReadsCountFlipsByDirection) {
  set_voltage(Millivolts{880});
  TrafficGenerator tg(stack_, 4);  // PC4: a weak PC
  TgCommand ones{MacroOp::kWriteRead, 0, 0, hbm::kBeatAllOnes, true};
  TgCommand zeros{MacroOp::kWriteRead, 0, 0, hbm::kBeatAllZeros, true};
  ASSERT_TRUE(tg.run(ones).is_ok());
  ASSERT_TRUE(tg.run(zeros).is_ok());
  // All-ones pattern exposes stuck-at-0 cells, all-zeros stuck-at-1.
  const auto& overlay = injector_.overlay(4);
  EXPECT_EQ(tg.stats().flips_1to0,
            overlay.count(faults::StuckPolarity::kStuckAt0));
  EXPECT_EQ(tg.stats().flips_0to1,
            overlay.count(faults::StuckPolarity::kStuckAt1));
}

TEST_F(AxiTest, BandwidthModel) {
  TrafficGenerator tg(stack_, 0);
  // Peak: 450 MHz * 32 B * 0.673 ~= 9.69 GB/s -> 32 ports ~= 310 GB/s.
  EXPECT_NEAR(tg.peak_bandwidth().value, 310.0 / 32.0, 0.05);
  TgCommand command{MacroOp::kWriteRead, 0, 0, hbm::kBeatAllOnes, false};
  ASSERT_TRUE(tg.run(command).is_ok());
  EXPECT_GT(tg.stats().busy_time, 0u);
  EXPECT_NEAR(tg.sustained_bandwidth().value, tg.peak_bandwidth().value,
              0.01);
}

TEST_F(AxiTest, StatsReset) {
  TrafficGenerator tg(stack_, 0);
  TgCommand command{MacroOp::kWrite, 0, 4, hbm::kBeatAllOnes, false};
  ASSERT_TRUE(tg.run(command).is_ok());
  EXPECT_GT(tg.stats().beats_written, 0u);
  tg.reset_stats();
  EXPECT_EQ(tg.stats().beats_written, 0u);
  EXPECT_EQ(tg.stats().busy_time, 0u);
}

// ------------------------------------------------ Random order + timing

TEST_F(AxiTest, RandomOrderCoversEveryBeatExactlyOnce) {
  TrafficGenerator tg(stack_, 0);
  TgCommand command{axi::MacroOp::kWrite, 0, 0, hbm::kBeatAllOnes, false};
  command.random_order = true;
  command.order_seed = 77;
  ASSERT_TRUE(tg.run(command).is_ok());
  EXPECT_EQ(tg.stats().beats_written, geometry_.beats_per_pc());
  // Every beat was written: the whole array reads back all-ones.
  for (std::uint64_t beat = 0; beat < geometry_.beats_per_pc(); ++beat) {
    EXPECT_EQ(stack_.array(0).read_beat(beat), hbm::kBeatAllOnes) << beat;
  }
}

TEST_F(AxiTest, FaultCountsAreOrderIndependent) {
  set_voltage(Millivolts{880});
  TgCommand sequential{axi::MacroOp::kWriteRead, 0, 0, hbm::kBeatAllOnes,
                       true};
  TgCommand shuffled = sequential;
  shuffled.random_order = true;
  shuffled.order_seed = 123;

  TrafficGenerator tg_seq(stack_, 4);
  TrafficGenerator tg_rnd(stack_, 4);
  ASSERT_TRUE(tg_seq.run(sequential).is_ok());
  ASSERT_TRUE(tg_rnd.run(shuffled).is_ok());
  EXPECT_EQ(tg_seq.stats().flips_1to0, tg_rnd.stats().flips_1to0);
  EXPECT_EQ(tg_seq.stats().flips_0to1, tg_rnd.stats().flips_0to1);
}

TEST_F(AxiTest, CommandLevelTimingNearFlatForSequential) {
  // For sequential sweeps the AXI port domain binds, so the composed
  // model reports (nearly) the flat elapsed time -- on this tiny array
  // the unamortized first activations add a few percent.
  TgCommand command{axi::MacroOp::kWriteRead, 0, 0, hbm::kBeatAllOnes,
                    false};
  TrafficGenerator flat(stack_, 0);
  TrafficGenerator composed(stack_, 1);
  composed.set_timing_mode(axi::TimingMode::kCommandLevel);
  ASSERT_TRUE(flat.run(command).is_ok());
  ASSERT_TRUE(composed.run(command).is_ok());
  EXPECT_GE(composed.stats().busy_time, flat.stats().busy_time);
  EXPECT_LE(composed.stats().busy_time,
            flat.stats().busy_time + flat.stats().busy_time / 8);
}

TEST_F(AxiTest, CommandLevelTimingPenalizesRandomOrder) {
  TgCommand command{axi::MacroOp::kWriteRead, 0, 0, hbm::kBeatAllOnes,
                    false};
  command.random_order = true;
  command.order_seed = 5;

  TrafficGenerator flat(stack_, 0);
  ASSERT_TRUE(flat.run(command).is_ok());
  TrafficGenerator composed(stack_, 1);
  composed.set_timing_mode(axi::TimingMode::kCommandLevel);
  ASSERT_TRUE(composed.run(command).is_ok());
  // Random addresses thrash DRAM rows: the DRAM domain becomes the
  // bottleneck and elapsed time grows well beyond the flat port model.
  EXPECT_GT(composed.stats().busy_time, 2 * flat.stats().busy_time);
  EXPECT_LT(composed.sustained_bandwidth().value,
            0.5 * flat.sustained_bandwidth().value);
}

// --------------------------------------------------------- SwitchNetwork

TEST(SwitchTest, IdentityWhenDisabled) {
  SwitchNetwork sw(16);
  EXPECT_FALSE(sw.enabled());
  for (unsigned p = 0; p < 16; ++p) {
    EXPECT_EQ(sw.target_pc(p), p);
    EXPECT_DOUBLE_EQ(sw.throughput_derate(p), 1.0);
  }
}

TEST(SwitchTest, NonIdentityRoutingRequiresEnable) {
  SwitchNetwork sw(16);
  EXPECT_EQ(sw.route(0, 5).code(), StatusCode::kFailedPrecondition);
  sw.set_enabled(true);
  EXPECT_TRUE(sw.route(0, 5).is_ok());
  EXPECT_EQ(sw.target_pc(0), 5u);
}

TEST(SwitchTest, EnabledCostsBandwidth) {
  SwitchNetwork sw(16);
  sw.set_enabled(true);
  // Same-group routing pays the base derate.
  EXPECT_DOUBLE_EQ(sw.throughput_derate(0), SwitchNetwork::kEnabledDerate);
  // Distant PCs pay per-hop extra.
  ASSERT_TRUE(sw.route(0, 15).is_ok());
  EXPECT_LT(sw.throughput_derate(0), SwitchNetwork::kEnabledDerate);
  EXPECT_GE(sw.throughput_derate(0), 0.5);
}

TEST(SwitchTest, ResetRestoresIdentity) {
  SwitchNetwork sw(16);
  sw.set_enabled(true);
  ASSERT_TRUE(sw.route(2, 9).is_ok());
  sw.reset_routes();
  EXPECT_EQ(sw.target_pc(2), 2u);
}

TEST(SwitchTest, RangeChecks) {
  SwitchNetwork sw(4);
  sw.set_enabled(true);
  EXPECT_EQ(sw.route(4, 0).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(sw.route(0, 4).code(), StatusCode::kOutOfRange);
}

// ------------------------------------------------------- StackController

TEST_F(AxiTest, ControllerEnableCountAndMask) {
  StackController controller(stack_);
  EXPECT_EQ(controller.port_count(), geometry_.pcs_per_stack());
  controller.set_enabled_count(5);
  EXPECT_EQ(controller.enabled_ports(), 5u);
  controller.set_enabled_mask(0b1010);
  EXPECT_EQ(controller.enabled_ports(), 2u);
  EXPECT_FALSE(controller.port(0).enabled());
  EXPECT_TRUE(controller.port(1).enabled());
}

TEST_F(AxiTest, ControllerBroadcastAggregates) {
  StackController controller(stack_);
  controller.set_enabled_count(4);
  TgCommand command{MacroOp::kWriteRead, 0, 16, hbm::kBeatAllOnes, true};
  const auto result = controller.run(command);
  EXPECT_EQ(result.ports_active, 4u);
  EXPECT_TRUE(result.stack_responding);
  EXPECT_GT(result.elapsed, 0u);
  const auto totals = result.totals();
  EXPECT_EQ(totals.beats_written, 4u * 16);
  EXPECT_EQ(totals.beats_read, 4u * 16);
  // Ports run concurrently: elapsed is one port's time, not the sum.
  EXPECT_EQ(result.elapsed, result.per_port[0].busy_time);
}

TEST_F(AxiTest, AggregateBandwidthScalesWithPorts) {
  StackController controller(stack_);
  TgCommand command{MacroOp::kWriteRead, 0, 64, hbm::kBeatAllOnes, false};
  controller.set_enabled_count(1);
  const double bw1 = controller.run(command).aggregate_bandwidth.value;
  controller.set_enabled_count(16);
  const double bw16 = controller.run(command).aggregate_bandwidth.value;
  EXPECT_NEAR(bw16 / bw1, 16.0, 0.1);
  // Full stack: ~155 GB/s (half the 310 GB/s device: one of two stacks).
  EXPECT_NEAR(bw16, 310.0 / 2.0, 2.0);
}

TEST_F(AxiTest, RunOnPortTouchesOnlyThatPort) {
  StackController controller(stack_);
  controller.set_enabled_count(0);
  TgCommand command{MacroOp::kWriteRead, 0, 8, hbm::kBeatAllOnes, true};
  const auto result = controller.run_on_port(7, command);
  EXPECT_EQ(result.ports_active, 1u);
  EXPECT_EQ(result.per_port[7].beats_written, 8u);
  EXPECT_EQ(result.per_port[6].beats_written, 0u);
}

TEST_F(AxiTest, ControllerResetPorts) {
  StackController controller(stack_);
  controller.set_enabled_count(2);
  TgCommand command{MacroOp::kWrite, 0, 8, hbm::kBeatAllOnes, false};
  (void)controller.run(command);
  EXPECT_GT(controller.aggregate_stats().beats_written, 0u);
  controller.reset_ports();
  EXPECT_EQ(controller.aggregate_stats().beats_written, 0u);
}

TEST_F(AxiTest, ControllerReportsCrashedStack) {
  set_voltage(Millivolts{800});
  StackController controller(stack_);
  controller.set_enabled_count(2);
  TgCommand command{MacroOp::kWriteRead, 0, 8, hbm::kBeatAllOnes, true};
  const auto result = controller.run(command);
  EXPECT_FALSE(result.stack_responding);
  EXPECT_GT(result.totals().slverr, 0u);
}

TEST_F(AxiTest, SwitchRoutingRedirectsTraffic) {
  StackController controller(stack_);
  controller.switch_network().set_enabled(true);
  ASSERT_TRUE(controller.switch_network().route(0, 3).is_ok());
  controller.set_enabled_count(1);  // only port 0
  TgCommand command{MacroOp::kWrite, 0, 1, hbm::kBeatAllOnes, false};
  (void)controller.run(command);
  // The write landed in PC3's array, not PC0's.
  EXPECT_EQ(stack_.array(3).read_beat(0), hbm::kBeatAllOnes);
  EXPECT_NE(stack_.array(0).read_beat(0), hbm::kBeatAllOnes);
}

TEST_F(AxiTest, SwitchEnabledReducesThroughput) {
  StackController controller(stack_);
  controller.set_enabled_count(1);
  TgCommand command{MacroOp::kWriteRead, 0, 64, hbm::kBeatAllOnes, false};
  const double bw_direct = controller.run(command).aggregate_bandwidth.value;
  controller.switch_network().set_enabled(true);
  const double bw_switched = controller.run(command).aggregate_bandwidth.value;
  EXPECT_NEAR(bw_switched / bw_direct, SwitchNetwork::kEnabledDerate, 0.01);
}

}  // namespace
}  // namespace hbmvolt
