// Robustness suite: retry layer, NACK-vs-PEC accounting, deterministic
// chaos injection, campaign checkpoint/resume, and graceful degradation.
//
// The headline invariant pinned here: under any all-transient chaos
// schedule, the campaign's figures are byte-identical to the fault-free
// run (at threads = 1 and threads = 4), and a campaign killed after step
// N resumes from checkpoint.json to byte-identical final artifacts.
// Persistent faults must instead degrade gracefully -- structured errors
// plus partial artifacts, never a process death.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "board/vcu128.hpp"
#include "chaos/chaos.hpp"
#include "common/retry.hpp"
#include "core/campaign.hpp"
#include "core/checkpoint.hpp"
#include "core/report.hpp"
#include "core/voltage_sweep.hpp"

namespace hbmvolt {
namespace {

namespace fs = std::filesystem;

board::BoardConfig tiny_board() {
  board::BoardConfig config;
  config.geometry = hbm::HbmGeometry::test_tiny();
  config.monitor_config.noise_sigma_amps = 0.0;
  return config;
}

core::CampaignConfig fast_campaign() {
  core::CampaignConfig config;
  config.reliability.sweep = {Millivolts{1200}, Millivolts{800}, 20};
  config.reliability.batch_size = 1;
  config.power.sweep = {Millivolts{1200}, Millivolts{850}, 50};
  config.power.samples = 2;
  config.power.traffic_beats = 4;
  config.dry_run = true;
  return config;
}

/// All transient fault kinds at a rate high enough that a tiny campaign
/// still crosses every injection site several times.
chaos::ChaosConfig all_transient(std::uint64_t seed) {
  chaos::ChaosConfig config;
  config.seed = seed;
  config.pmbus_nack_rate = 0.2;
  config.wire_corrupt_rate = 0.2;
  config.axi_fail_rate = 0.1;
  config.spurious_crash_rate = 0.2;
  return config;
}

/// Everything an artifact diff compares, as in-memory strings.
struct Figures {
  std::string fig2, fig4, fig5, fig6, headline;
};

std::string headline_text(const core::HeadlineNumbers& h) {
  char buffer[256];
  std::ostringstream out;
  const auto field = [&](const char* name, double value) {
    std::snprintf(buffer, sizeof(buffer), "%s=%.17g\n", name, value);
    out << buffer;
  };
  out << "v_min_mv=" << h.guardband.v_min.value << "\n";
  out << "v_first_fault_mv=" << h.guardband.v_first_fault.value << "\n";
  out << "v_critical_mv=" << h.guardband.v_critical.value << "\n";
  out << "crash_observed=" << (h.guardband.crash_observed ? 1 : 0) << "\n";
  field("guardband_fraction", h.guardband.guardband_fraction);
  field("savings_at_vmin", h.savings_at_vmin);
  field("savings_at_850mv", h.savings_at_850mv);
  field("idle_fraction", h.idle_fraction);
  field("alpha_drop_at_850mv", h.alpha_drop_at_850mv);
  return out.str();
}

Figures figures_of(const core::CampaignResult& result,
                   const core::CampaignConfig& config) {
  return {core::to_csv_fig2(result.power),
          core::to_csv_fig4(result.fault_map),
          core::to_csv_fig5(result.fault_map),
          core::to_csv_fig6(result.tradeoff_points, config.tradeoff),
          headline_text(result.headline)};
}

void expect_figures_equal(const Figures& actual, const Figures& expected,
                          const std::string& label) {
  EXPECT_EQ(actual.fig2, expected.fig2) << label << ": fig2 diverged";
  EXPECT_EQ(actual.fig4, expected.fig4) << label << ": fig4 diverged";
  EXPECT_EQ(actual.fig5, expected.fig5) << label << ": fig5 diverged";
  EXPECT_EQ(actual.fig6, expected.fig6) << label << ": fig6 diverged";
  EXPECT_EQ(actual.headline, expected.headline)
      << label << ": headline diverged";
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Fresh scratch directory under the build tree.
fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path("chaos_test_tmp") / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// Retry layer
// ---------------------------------------------------------------------------

TEST(RetryPolicyTest, ClassifiesStatusCodes) {
  RetryPolicy policy;
  EXPECT_TRUE(policy.retryable(not_found("nack")));
  EXPECT_TRUE(policy.retryable(data_loss("pec")));
  EXPECT_TRUE(policy.retryable(unavailable("dropout")));
  EXPECT_FALSE(policy.retryable(invalid_argument("bug")));
  EXPECT_FALSE(policy.retryable(Status::ok()));

  policy.retry_nack = false;
  EXPECT_FALSE(policy.retryable(not_found("nack")));
  EXPECT_TRUE(policy.retryable(data_loss("pec")));
}

TEST(RetryPolicyTest, BackoffDoublesAndCaps) {
  RetryPolicy policy;
  policy.backoff_start_us = 50;
  policy.backoff_cap_us = 300;
  EXPECT_EQ(policy.backoff_us(1), 50u);
  EXPECT_EQ(policy.backoff_us(2), 100u);
  EXPECT_EQ(policy.backoff_us(3), 200u);
  EXPECT_EQ(policy.backoff_us(4), 300u);  // capped
  EXPECT_EQ(policy.backoff_us(20), 300u);
}

TEST(RetryTest, RecoversAfterTransientFailures) {
  RetryPolicy policy;
  unsigned calls = 0;
  const Status status = retry_status(policy, "test.op", [&]() -> Status {
    return ++calls < 3 ? unavailable("transient") : Status::ok();
  });
  EXPECT_TRUE(status.is_ok());
  EXPECT_EQ(calls, 3u);
}

TEST(RetryTest, ExhaustsAttemptBudget) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  unsigned calls = 0;
  const Status status = retry_status(policy, "test.op", [&]() -> Status {
    ++calls;
    return not_found("always");
  });
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(calls, 3u);
}

TEST(RetryTest, DoesNotRetryProgrammingErrors) {
  RetryPolicy policy;
  unsigned calls = 0;
  const Status status = retry_status(policy, "test.op", [&]() -> Status {
    ++calls;
    return invalid_argument("caller bug");
  });
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1u);
}

TEST(RetryTest, ResultFlavorReturnsValueAfterRecovery) {
  RetryPolicy policy;
  unsigned calls = 0;
  const Result<int> result =
      retry_result(policy, "test.op", [&]() -> Result<int> {
        if (++calls < 2) return data_loss("corrupt");
        return 42;
      });
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(calls, 2u);
}

// ---------------------------------------------------------------------------
// Bus accounting: NACK (kNotFound) vs PEC mismatch (kDataLoss)
// ---------------------------------------------------------------------------

TEST(BusAccountingTest, NackAndPecErrorsCountSeparately) {
  board::Vcu128Board board(tiny_board());
  pmbus::Bus& bus = board.bus();
  const std::uint64_t nacks_before = bus.nack_count();
  const std::uint64_t pec_before = bus.pec_error_count();

  // One-shot injected NACK: the driver's retry absorbs it.
  bool nacked = false;
  bus.set_transaction_hook([&](std::uint8_t, std::uint8_t) -> Status {
    if (nacked) return Status::ok();
    nacked = true;
    return not_found("injected NACK");
  });
  auto vout = board.regulator().read_vout();
  bus.set_transaction_hook(nullptr);
  ASSERT_TRUE(vout.is_ok()) << vout.status().to_string();
  EXPECT_EQ(bus.nack_count(), nacks_before + 1);
  EXPECT_EQ(bus.pec_error_count(), pec_before);

  // One-shot wire flip: PEC catches it, and it lands in the *other*
  // counter -- the transfer happened but arrived corrupt.
  bool corrupted = false;
  bus.set_wire_corruptor([&](std::vector<std::uint8_t>& frame) {
    if (corrupted || frame.empty()) return;
    corrupted = true;
    frame[0] ^= 0x01;
  });
  vout = board.regulator().read_vout();
  bus.set_wire_corruptor(nullptr);
  ASSERT_TRUE(vout.is_ok()) << vout.status().to_string();
  EXPECT_EQ(bus.nack_count(), nacks_before + 1);
  EXPECT_EQ(bus.pec_error_count(), pec_before + 1);
}

TEST(BusAccountingTest, RetryPolicyCanTreatNackAndPecDifferently) {
  board::Vcu128Board board(tiny_board());
  // A policy that retries PEC errors but not NACKs: the injected NACK
  // must surface immediately as kNotFound.
  RetryPolicy policy;
  policy.retry_nack = false;
  board.regulator().set_retry_policy(policy);
  board.bus().set_transaction_hook(
      [](std::uint8_t, std::uint8_t) -> Status {
        return not_found("injected NACK");
      });
  const auto vout = board.regulator().read_vout();
  board.bus().set_transaction_hook(nullptr);
  EXPECT_EQ(vout.status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// ChaosSchedule determinism
// ---------------------------------------------------------------------------

TEST(ChaosScheduleTest, SameSeedSameDecisions) {
  chaos::ChaosConfig config = all_transient(7);
  const chaos::ChaosSchedule a(config);
  const chaos::ChaosSchedule b(config);
  for (std::uint64_t i = 0; i < 500; ++i) {
    EXPECT_EQ(a.fires(chaos::FaultKind::kPmbusNack, i, 0, 0),
              b.fires(chaos::FaultKind::kPmbusNack, i, 0, 0));
    EXPECT_EQ(a.draw(chaos::FaultKind::kWireCorrupt, i, 8, 0),
              b.draw(chaos::FaultKind::kWireCorrupt, i, 8, 0));
  }
}

TEST(ChaosScheduleTest, SeedChangesSchedule) {
  const chaos::ChaosSchedule a(all_transient(1));
  const chaos::ChaosSchedule b(all_transient(2));
  unsigned diffs = 0;
  for (std::uint64_t i = 0; i < 500; ++i) {
    if (a.fires(chaos::FaultKind::kPmbusNack, i, 0, 0) !=
        b.fires(chaos::FaultKind::kPmbusNack, i, 0, 0)) {
      ++diffs;
    }
  }
  EXPECT_GT(diffs, 0u);
}

TEST(ChaosScheduleTest, ZeroRateNeverFires) {
  const chaos::ChaosSchedule schedule(chaos::ChaosConfig{});
  for (std::uint64_t i = 0; i < 200; ++i) {
    EXPECT_FALSE(schedule.fires(chaos::FaultKind::kPmbusNack, i, 0, 0));
  }
}

TEST(ChaosScheduleTest, RateScalesFireFrequency) {
  chaos::ChaosConfig config;
  config.pmbus_nack_rate = 0.25;
  const chaos::ChaosSchedule schedule(config);
  unsigned fires = 0;
  const unsigned kTrials = 4000;
  for (std::uint64_t i = 0; i < kTrials; ++i) {
    if (schedule.fires(chaos::FaultKind::kPmbusNack, i, 0, 0)) ++fires;
  }
  const double observed = static_cast<double>(fires) / kTrials;
  EXPECT_NEAR(observed, 0.25, 0.05);
}

// ---------------------------------------------------------------------------
// Checkpoint serialization
// ---------------------------------------------------------------------------

TEST(CheckpointTest, JsonRoundTripIsExact) {
  core::CampaignCheckpoint ckpt;
  ckpt.fingerprint = 0xDEADBEEFCAFE1234ull;
  ckpt.reliability_done = true;
  ckpt.power_snapshot_seq = 17;
  ckpt.reliability.push_back(
      {1200, false, {{1000, 3, 5, 500, 500}, {1000, 0, 0, 500, 500}}});
  ckpt.reliability.push_back({800, true, {}});
  // Awkward doubles a decimal round-trip would perturb.
  ckpt.power.push_back({0, {{1200, Watts{1.0 / 3.0}}}});
  ckpt.power.push_back({32, {{1200, Watts{6.02214076e23}},
                             {1150, Watts{-0.0}}}});

  const std::string text = core::checkpoint_to_json(ckpt);
  auto parsed = core::checkpoint_from_json(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const core::CampaignCheckpoint& back = parsed.value();

  EXPECT_EQ(back.fingerprint, ckpt.fingerprint);
  EXPECT_EQ(back.reliability_done, ckpt.reliability_done);
  EXPECT_EQ(back.power_snapshot_seq, ckpt.power_snapshot_seq);
  ASSERT_EQ(back.reliability.size(), 2u);
  EXPECT_EQ(back.reliability[0].mv, 1200);
  ASSERT_EQ(back.reliability[0].pcs.size(), 2u);
  EXPECT_EQ(back.reliability[0].pcs[0].flips_1to0, 3u);
  EXPECT_EQ(back.reliability[0].pcs[0].flips_0to1, 5u);
  EXPECT_TRUE(back.reliability[1].crashed);
  ASSERT_EQ(back.power.size(), 2u);
  // Bit-exact doubles: serialize again and compare text.
  EXPECT_EQ(core::checkpoint_to_json(back), text);
}

TEST(CheckpointTest, LoadMissingFileIsNotFound) {
  const auto loaded =
      core::load_checkpoint("chaos_test_tmp/does_not_exist.json");
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(CheckpointTest, MalformedTextIsDataLoss) {
  EXPECT_EQ(core::checkpoint_from_json("not json").status().code(),
            StatusCode::kDataLoss);
  EXPECT_EQ(core::checkpoint_from_json("{\"version\": 99}").status().code(),
            StatusCode::kDataLoss);
}

TEST(CheckpointTest, SaveIsAtomicViaRename) {
  const fs::path dir = scratch_dir("ckpt_atomic");
  const std::string path = (dir / "checkpoint.json").string();
  core::CampaignCheckpoint ckpt;
  ckpt.fingerprint = 42;
  ASSERT_TRUE(core::save_checkpoint(ckpt, path).is_ok());
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  auto loaded = core::load_checkpoint(path);
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_EQ(loaded.value().fingerprint, 42u);
}

// ---------------------------------------------------------------------------
// Chaos equivalence: transient faults never change the figures
// ---------------------------------------------------------------------------

class ChaosEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    board::Vcu128Board board(tiny_board());
    core::Campaign campaign(board, fast_campaign());
    auto run = campaign.run();
    ASSERT_TRUE(run.is_ok()) << run.status().to_string();
    baseline_ = new Figures(figures_of(run.value(), fast_campaign()));
  }

  static void TearDownTestSuite() {
    delete baseline_;
    baseline_ = nullptr;
  }

  /// Runs a chaotic campaign on a fresh board and checks its figures
  /// byte-match the fault-free baseline.  Returns the result for extra
  /// assertions.
  static core::CampaignResult check_equivalent(
      const chaos::ChaosConfig& chaos, unsigned threads,
      const std::string& label) {
    board::Vcu128Board board(tiny_board());
    core::CampaignConfig config = fast_campaign();
    config.chaos = chaos;
    config.threads = threads;
    config.telemetry.enabled = true;
    core::Campaign campaign(board, config);
    auto run = campaign.run();
    EXPECT_TRUE(run.is_ok()) << label << ": " << run.status().to_string();
    if (!run.is_ok()) {
      return core::CampaignResult{
          {}, {}, faults::FaultMap(board.geometry()), {}, {}, {}, {}, {},
          false};
    }
    EXPECT_TRUE(run.value().errors.empty())
        << label << ": unexpected degradation";
    expect_figures_equal(figures_of(run.value(), config), *baseline_, label);
    return std::move(run).value();
  }

  static Figures* baseline_;
};

Figures* ChaosEquivalenceTest::baseline_ = nullptr;

TEST_F(ChaosEquivalenceTest, PmbusNacksAreFigureNeutral) {
  chaos::ChaosConfig config;
  config.pmbus_nack_rate = 0.2;
  const auto result = check_equivalent(config, 1, "pmbus_nack");
  EXPECT_NE(result.telemetry_summary.find("chaos.injected.pmbus_nack"),
            std::string::npos)
      << "schedule never fired; the test proved nothing";
}

TEST_F(ChaosEquivalenceTest, WireCorruptionIsFigureNeutral) {
  chaos::ChaosConfig config;
  config.wire_corrupt_rate = 0.2;
  const auto result = check_equivalent(config, 1, "wire_corrupt");
  EXPECT_NE(result.telemetry_summary.find("chaos.injected.wire_corrupt"),
            std::string::npos);
}

TEST_F(ChaosEquivalenceTest, AxiDispatchFailuresAreFigureNeutral) {
  chaos::ChaosConfig config;
  config.axi_fail_rate = 0.1;
  const auto result = check_equivalent(config, 1, "axi_fail");
  EXPECT_NE(result.telemetry_summary.find("chaos.injected.axi_fail"),
            std::string::npos);
}

TEST_F(ChaosEquivalenceTest, SpuriousCrashesAreFigureNeutral) {
  chaos::ChaosConfig config;
  config.spurious_crash_rate = 0.2;
  const auto result = check_equivalent(config, 1, "spurious_crash");
  EXPECT_NE(result.telemetry_summary.find("chaos.injected.spurious_crash"),
            std::string::npos);
  EXPECT_NE(result.telemetry_summary.find("sweep.spurious_crashes_recovered"),
            std::string::npos)
      << "the watchdog never exercised a recovery";
}

TEST_F(ChaosEquivalenceTest, AllKindsAcrossSeeds) {
  for (const std::uint64_t seed : {1ull, 0xFEEDull}) {
    const auto result = check_equivalent(
        all_transient(seed), 1, "all_kinds seed=" + std::to_string(seed));
    EXPECT_NE(result.telemetry_summary.find("chaos.injected.total"),
              std::string::npos);
  }
}

TEST_F(ChaosEquivalenceTest, AllKindsAtFourThreads) {
  check_equivalent(all_transient(3), 4, "all_kinds threads=4");
}

TEST_F(ChaosEquivalenceTest, InaDropoutsAreValueNeutralOnBusReads) {
  // The campaign's power phase uses the snapshot path (no INA bus reads),
  // so dropouts are exercised directly on measure_power: retried reads
  // must reproduce the clean board's exact value sequence, because the
  // injection aborts the transaction *before* the monitor advances.
  std::vector<Watts> clean;
  {
    board::Vcu128Board board(tiny_board());
    for (int i = 0; i < 20; ++i) {
      auto p = board.measure_power();
      ASSERT_TRUE(p.is_ok());
      clean.push_back(p.value());
    }
  }
  board::Vcu128Board board(tiny_board());
  chaos::ChaosConfig config;
  config.ina_dropout_rate = 0.3;
  chaos::ChaosInjector injector(board, config);
  for (int i = 0; i < 20; ++i) {
    auto p = board.measure_power();
    ASSERT_TRUE(p.is_ok()) << p.status().to_string();
    EXPECT_EQ(p.value().value, clean[static_cast<std::size_t>(i)].value)
        << "reading " << i << " diverged";
  }
  EXPECT_GT(injector.injected(chaos::FaultKind::kInaDropout), 0u);
}

// ---------------------------------------------------------------------------
// Crash watchdog
// ---------------------------------------------------------------------------

TEST(CrashWatchdogTest, SpuriousCrashRecoversViaPowerCycle) {
  board::Vcu128Board board(tiny_board());
  board.stack(0).force_crash();
  ASSERT_FALSE(board.responding());

  core::VoltageSweep sweep(board, {Millivolts{1200}, Millivolts{1200}, 10},
                           core::CrashPolicy::kStop);
  unsigned body_runs = 0;
  const Status status = sweep.run([&](Millivolts) { ++body_runs; }, nullptr);
  ASSERT_TRUE(status.is_ok()) << status.to_string();
  EXPECT_EQ(body_runs, 1u) << "the recovered step must still be measured";
  EXPECT_TRUE(board.responding());
}

TEST(CrashWatchdogTest, PowerCycleRetriesNackDuringRecovery) {
  // Satellite regression: a NACK in the middle of power_cycle's PMBus
  // sequence must be retried, not abort the recovery.
  board::Vcu128Board board(tiny_board());
  board.stack(1).force_crash();

  unsigned txns = 0;
  board.bus().set_transaction_hook([&](std::uint8_t, std::uint8_t) -> Status {
    // NACK the first and third transactions of the recovery sequence.
    ++txns;
    if (txns == 1 || txns == 3) return not_found("injected NACK");
    return Status::ok();
  });
  const Status status = board.power_cycle();
  board.bus().set_transaction_hook(nullptr);

  ASSERT_TRUE(status.is_ok()) << status.to_string();
  EXPECT_TRUE(board.responding());
  EXPECT_EQ(board.hbm_voltage().value,
            board.config().regulator_config.vout_default.value)
      << "recovery must re-apply the nominal setpoint through the full "
         "PMBus path";
}

// ---------------------------------------------------------------------------
// Kill + resume
// ---------------------------------------------------------------------------

core::CampaignConfig artifact_campaign(const fs::path& dir) {
  core::CampaignConfig config = fast_campaign();
  config.dry_run = false;
  config.output_dir = dir.string();
  return config;
}

void expect_artifacts_match(const fs::path& actual, const fs::path& expected,
                            const std::string& label) {
  for (const char* name :
       {"fig2.csv", "fig4.csv", "fig5.csv", "fig6.csv", "summary.txt"}) {
    EXPECT_EQ(read_file(actual / name), read_file(expected / name))
        << label << ": " << name << " diverged";
  }
}

class ResumeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    clean_dir_ = new fs::path(scratch_dir("clean"));
    board::Vcu128Board board(tiny_board());
    core::Campaign campaign(board, artifact_campaign(*clean_dir_));
    auto run = campaign.run();
    ASSERT_TRUE(run.is_ok()) << run.status().to_string();
    ASSERT_FALSE(run.value().halted);
    // A clean finish removes its own checkpoint.
    EXPECT_FALSE(fs::exists(*clean_dir_ / "checkpoint.json"));
  }

  static void TearDownTestSuite() {
    delete clean_dir_;
    clean_dir_ = nullptr;
  }

  /// Kills a campaign after `halt_after` steps, then resumes it on a
  /// fresh board and diffs the final artifacts against the clean run.
  static void check_kill_resume(unsigned halt_after,
                                const chaos::ChaosConfig& chaos,
                                const std::string& label) {
    const fs::path dir = scratch_dir(label);
    core::CampaignConfig config = artifact_campaign(dir);
    config.chaos = chaos;
    {
      config.halt_after_steps = halt_after;
      board::Vcu128Board board(tiny_board());
      core::Campaign campaign(board, config);
      auto run = campaign.run();
      ASSERT_TRUE(run.is_ok()) << label << ": " << run.status().to_string();
      EXPECT_TRUE(run.value().halted);
      EXPECT_TRUE(fs::exists(dir / "checkpoint.json"))
          << label << ": halt must leave the checkpoint behind";
      EXPECT_FALSE(fs::exists(dir / "fig2.csv"))
          << label << ": a halted run must not write artifacts";
    }
    {
      // The resumed process: fresh board, same config, no halt.
      config.halt_after_steps = 0;
      board::Vcu128Board board(tiny_board());
      core::Campaign campaign(board, config);
      auto run = campaign.run();
      ASSERT_TRUE(run.is_ok()) << label << ": " << run.status().to_string();
      EXPECT_FALSE(run.value().halted);
    }
    EXPECT_FALSE(fs::exists(dir / "checkpoint.json"))
        << label << ": a completed resume must clear the checkpoint";
    expect_artifacts_match(dir, *clean_dir_, label);
  }

  static fs::path* clean_dir_;
};

fs::path* ResumeTest::clean_dir_ = nullptr;

TEST_F(ResumeTest, KillDuringReliabilityPhaseResumesByteIdentical) {
  check_kill_resume(5, chaos::ChaosConfig{}, "kill_reliability");
}

TEST_F(ResumeTest, KillDuringPowerPhaseResumesByteIdentical) {
  // The reliability sweep has 21 steps (1200 -> 800 by 20), so step 24
  // lands inside the power phase.
  check_kill_resume(24, chaos::ChaosConfig{}, "kill_power");
}

TEST_F(ResumeTest, KillAndResumeUnderTransientChaos) {
  // The resumed process rebuilds its injector, so its fault schedule
  // differs from the uninterrupted run's -- which is exactly the point:
  // transients are figure-neutral under *any* schedule.
  check_kill_resume(7, all_transient(11), "kill_chaos");
}

TEST_F(ResumeTest, FingerprintMismatchStartsFresh) {
  const fs::path dir = scratch_dir("stale_ckpt");
  core::CampaignCheckpoint stale;
  stale.fingerprint = 0x1234;  // no real config hashes to this
  stale.reliability_done = true;
  stale.reliability.push_back({1200, true, {}});
  ASSERT_TRUE(
      core::save_checkpoint(stale, (dir / "checkpoint.json").string())
          .is_ok());

  board::Vcu128Board board(tiny_board());
  core::Campaign campaign(board, artifact_campaign(dir));
  auto run = campaign.run();
  ASSERT_TRUE(run.is_ok()) << run.status().to_string();
  expect_artifacts_match(dir, *clean_dir_, "stale_ckpt");
}

TEST_F(ResumeTest, CheckpointDisabledWritesNoFile) {
  const fs::path dir = scratch_dir("no_ckpt");
  core::CampaignConfig config = artifact_campaign(dir);
  config.checkpoint = false;
  board::Vcu128Board board(tiny_board());
  core::Campaign campaign(board, config);
  auto run = campaign.run();
  ASSERT_TRUE(run.is_ok()) << run.status().to_string();
  EXPECT_FALSE(fs::exists(dir / "checkpoint.json"));
  expect_artifacts_match(dir, *clean_dir_, "no_ckpt");
}

// ---------------------------------------------------------------------------
// Persistent faults: graceful degradation
// ---------------------------------------------------------------------------

TEST(DegradationTest, DeadRegulatorYieldsPartialArtifactsNotAbort) {
  const fs::path dir = scratch_dir("dead_regulator");
  board::Vcu128Board board(tiny_board());
  core::CampaignConfig config = artifact_campaign(dir);
  // Enough budget for a few sweep steps (2 transactions per setpoint),
  // then the regulator NACKs forever and retries exhaust.
  config.chaos.regulator_dies_after = 20;

  core::Campaign campaign(board, config);
  auto run = campaign.run();
  ASSERT_TRUE(run.is_ok())
      << "a persistent fault must degrade, not fail the run: "
      << run.status().to_string();
  const core::CampaignResult& result = run.value();
  EXPECT_FALSE(result.halted);
  ASSERT_FALSE(result.errors.empty());
  EXPECT_NE(result.errors.front().find("reliability:"), std::string::npos);

  // Partial artifacts exist, the summary carries the structured error,
  // and the checkpoint survives for a later retry.
  EXPECT_TRUE(fs::exists(dir / "fig4.csv"));
  EXPECT_TRUE(fs::exists(dir / "summary.txt"));
  const std::string summary = read_file(dir / "summary.txt");
  EXPECT_NE(summary.find("errors\n------"), std::string::npos);
  EXPECT_NE(summary.find("reliability:"), std::string::npos);
  EXPECT_TRUE(fs::exists(dir / "checkpoint.json"));
  // The measured prefix is real data: some voltage rows were recorded.
  EXPECT_FALSE(result.fault_map.voltages().empty());
}

TEST(DegradationTest, DeadMonitorExhaustsMeasurePowerRetries) {
  board::Vcu128Board board(tiny_board());
  chaos::ChaosConfig config;
  config.monitor_dies_after = 0;
  chaos::ChaosInjector injector(board, config);
  const auto power = board.measure_power();
  EXPECT_EQ(power.status().code(), StatusCode::kUnavailable);
  EXPECT_GT(injector.injected(chaos::FaultKind::kInaDropout), 0u);
}

// ---------------------------------------------------------------------------
// Injector lifecycle
// ---------------------------------------------------------------------------

TEST(ChaosInjectorTest, DestructorUninstallsHooks) {
  board::Vcu128Board board(tiny_board());
  {
    chaos::ChaosInjector injector(board, all_transient(5));
  }
  // With the injector gone, the board behaves cleanly: a full power cycle
  // and a bus read succeed without a single injected fault showing up in
  // the counters.
  const std::uint64_t nacks = board.bus().nack_count();
  const std::uint64_t pec_errors = board.bus().pec_error_count();
  ASSERT_TRUE(board.power_cycle().is_ok());
  ASSERT_TRUE(board.regulator().read_vout().is_ok());
  EXPECT_EQ(board.bus().nack_count(), nacks);
  EXPECT_EQ(board.bus().pec_error_count(), pec_errors);
}

}  // namespace
}  // namespace hbmvolt
