// Unit tests for the VCU128 board composition: PMBus-driven voltage
// control, INA226-path power measurement, port management, crash/recovery.

#include <gtest/gtest.h>

#include "board/vcu128.hpp"

namespace hbmvolt {
namespace {

using board::BoardConfig;
using board::Vcu128Board;

BoardConfig tiny_config() {
  BoardConfig config;
  config.geometry = hbm::HbmGeometry::test_tiny();
  config.monitor_config.noise_sigma_amps = 0.0;
  return config;
}

class BoardTest : public ::testing::Test {
 protected:
  BoardTest() : board_(tiny_config()) {}
  Vcu128Board board_;
};

TEST_F(BoardTest, PowersUpAtNominalAndResponding) {
  EXPECT_EQ(board_.hbm_voltage().value, 1200);
  EXPECT_TRUE(board_.responding());
  EXPECT_EQ(board_.active_ports(), 0u);
}

TEST_F(BoardTest, SetVoltagePropagatesToStacksAndInjector) {
  ASSERT_TRUE(board_.set_hbm_voltage(Millivolts{900}).is_ok());
  EXPECT_EQ(board_.hbm_voltage().value, 900);
  EXPECT_EQ(board_.stack(0).voltage().value, 900);
  EXPECT_EQ(board_.stack(1).voltage().value, 900);
  EXPECT_EQ(board_.injector().voltage().value, 900);
}

TEST_F(BoardTest, RegulatorReadVoutIncludesDroop) {
  board_.set_active_ports(board_.total_ports());
  auto vout = board_.regulator().read_vout();
  ASSERT_TRUE(vout.is_ok());
  // ~21.75 A at full load through 0.2 mOhm -> ~4 mV droop.
  EXPECT_LT(vout.value().value, 1200);
  EXPECT_GE(vout.value().value, 1190);
}

TEST_F(BoardTest, MeasuredPowerTracksModel) {
  board_.set_active_ports(board_.total_ports());
  auto measured = board_.measure_power_averaged(4);
  ASSERT_TRUE(measured.is_ok());
  const double expected =
      board_.power_model().power(Millivolts{1200}, 1.0).value;
  EXPECT_NEAR(measured.value().value, expected, expected * 0.02);
}

TEST_F(BoardTest, MeasuredPowerDropsWhenIdle) {
  board_.set_active_ports(board_.total_ports());
  const double full = board_.measure_power().value().value;
  board_.set_active_ports(0);
  const double idle = board_.measure_power().value().value;
  EXPECT_NEAR(idle / full, 1.0 / 3.0, 0.03);
}

TEST_F(BoardTest, ActivePortsSpreadAcrossStacks) {
  board_.set_active_ports(16);
  EXPECT_EQ(board_.active_ports(), 16u);
  EXPECT_EQ(board_.controller(0).enabled_ports(), 8u);
  EXPECT_EQ(board_.controller(1).enabled_ports(), 8u);
  EXPECT_DOUBLE_EQ(board_.utilization(), 0.5);
  board_.set_active_ports(7);
  EXPECT_EQ(board_.controller(0).enabled_ports(), 4u);
  EXPECT_EQ(board_.controller(1).enabled_ports(), 3u);
}

TEST_F(BoardTest, RunTrafficReturnsPerStackResults) {
  board_.set_active_ports(4);
  axi::TgCommand command{axi::MacroOp::kWriteRead, 0, 8, hbm::kBeatAllOnes,
                         true};
  const auto results = board_.run_traffic(command);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].totals().beats_written, 2u * 8);
  EXPECT_EQ(results[1].totals().beats_written, 2u * 8);
  // Energy accounting advanced.
  EXPECT_GT(board_.rail().consumed_energy().value, 0.0);
}

TEST_F(BoardTest, CrashAndPowerCycle) {
  ASSERT_TRUE(board_.set_hbm_voltage(Millivolts{790}).is_ok());
  EXPECT_FALSE(board_.responding());
  // Restoring voltage alone does not recover (the paper's observation).
  ASSERT_TRUE(board_.set_hbm_voltage(Millivolts{1200}).is_ok());
  EXPECT_FALSE(board_.responding());
  ASSERT_TRUE(board_.power_cycle().is_ok());
  EXPECT_TRUE(board_.responding());
  EXPECT_EQ(board_.hbm_voltage().value, 1200);
}

TEST_F(BoardTest, UndervoltBelowUvDefaultWorksAfterBringup) {
  // Board bring-up lowered the regulator's UV fault limit, so deep
  // undervolting must not latch the output off.
  ASSERT_TRUE(board_.set_hbm_voltage(Millivolts{820}).is_ok());
  EXPECT_EQ(board_.hbm_voltage().value, 820);
  EXPECT_TRUE(board_.responding());
}

TEST_F(BoardTest, FaultsAppearOnlyBelowGuardband) {
  board_.set_active_ports(board_.total_ports());
  axi::TgCommand command{axi::MacroOp::kWriteRead, 0, 0, hbm::kBeatAllOnes,
                         true};
  ASSERT_TRUE(board_.set_hbm_voltage(Millivolts{980}).is_ok());
  std::uint64_t flips = 0;
  for (const auto& result : board_.run_traffic(command)) {
    flips += result.totals().total_flips();
  }
  EXPECT_EQ(flips, 0u);

  ASSERT_TRUE(board_.set_hbm_voltage(Millivolts{900}).is_ok());
  flips = 0;
  for (const auto& result : board_.run_traffic(command)) {
    flips += result.totals().total_flips();
  }
  EXPECT_GT(flips, 0u);
}

TEST_F(BoardTest, MeasurePowerAveragedValidatesArgs) {
  EXPECT_FALSE(board_.measure_power_averaged(0).is_ok());
}

TEST_F(BoardTest, PowerScalesQuadraticallyThroughSensorPath) {
  board_.set_active_ports(board_.total_ports());
  const double p_nom = board_.measure_power_averaged(4).value().value;
  ASSERT_TRUE(board_.set_hbm_voltage(Millivolts{980}).is_ok());
  const double p_980 = board_.measure_power_averaged(4).value().value;
  EXPECT_NEAR(p_nom / p_980, 1.5, 0.05);
}

TEST_F(BoardTest, DeterministicAcrossBoards) {
  Vcu128Board other(tiny_config());
  ASSERT_TRUE(board_.set_hbm_voltage(Millivolts{880}).is_ok());
  ASSERT_TRUE(other.set_hbm_voltage(Millivolts{880}).is_ok());
  axi::TgCommand command{axi::MacroOp::kWriteRead, 0, 0, hbm::kBeatAllOnes,
                         true};
  board_.set_active_ports(board_.total_ports());
  other.set_active_ports(other.total_ports());
  const auto a = board_.run_traffic(command);
  const auto b = other.run_traffic(command);
  for (unsigned s = 0; s < 2; ++s) {
    EXPECT_EQ(a[s].totals().flips_1to0, b[s].totals().flips_1to0);
  }
}

TEST_F(BoardTest, IpCoresExposeControllers) {
  // The IP cores and the host API view the same state.
  board_.set_active_ports(8);
  const auto mask0 = board_.ip_core(0).read(hbm::HbmIpCore::kRegPortEnable);
  ASSERT_TRUE(mask0.is_ok());
  EXPECT_EQ(__builtin_popcount(mask0.value()), 4);  // 8 spread over 2 stacks
  // Programming through the registers is visible to the host API.
  ASSERT_TRUE(board_.ip_core(0)
                  .write(hbm::HbmIpCore::kRegPortEnable, 0xFFFF)
                  .is_ok());
  EXPECT_EQ(board_.controller(0).enabled_ports(), 16u);
  // Status mirrors crash state.
  ASSERT_TRUE(board_.set_hbm_voltage(Millivolts{790}).is_ok());
  const auto status = board_.ip_core(0).read(hbm::HbmIpCore::kRegStatus);
  ASSERT_TRUE(status.is_ok());
  EXPECT_FALSE(status.value() & hbm::HbmIpCore::kStatusResponding);
  ASSERT_TRUE(board_.power_cycle().is_ok());
}

TEST_F(BoardTest, DifferentSeedDifferentFaultPlacement) {
  BoardConfig other_config = tiny_config();
  other_config.seed = 0xD1FF;
  Vcu128Board other(other_config);
  ASSERT_TRUE(board_.set_hbm_voltage(Millivolts{880}).is_ok());
  ASSERT_TRUE(other.set_hbm_voltage(Millivolts{880}).is_ok());
  // Same anchors (faults exist at 880 on both), but placement differs.
  const auto& overlay_a = board_.injector().overlay(18);
  const auto& overlay_b = other.injector().overlay(18);
  EXPECT_GT(overlay_a.total_count(), 0u);
  EXPECT_GT(overlay_b.total_count(), 0u);
  bool any_difference = false;
  overlay_a.for_each([&](std::uint64_t bit, faults::StuckPolarity) {
    if (!overlay_b.is_stuck(bit)) any_difference = true;
  });
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace hbmvolt
