// Cross-PC RAIM erasure stripe: whole-pseudo-channel death, on-the-fly
// XOR reconstruction, online rebuild onto spare PCs, and the checkpoint
// seam that makes a mid-rebuild kill+resume byte-identical.

#include <gtest/gtest.h>

#include "board/vcu128.hpp"
#include "chaos/chaos.hpp"
#include "mitigate/scheme.hpp"
#include "runtime/fleet.hpp"

namespace hbmvolt {
namespace {

board::BoardConfig tiny_board() {
  board::BoardConfig config;
  config.geometry = hbm::HbmGeometry::test_tiny();
  config.monitor_config.noise_sigma_amps = 0.0;
  return config;
}

runtime::FleetConfig stripe_fleet(std::uint64_t ops_per_pc,
                                  unsigned threads, std::uint64_t seed) {
  runtime::FleetConfig config;
  config.scheme = mitigate::MitigationKind::kStripe;
  config.stripe_width = 4;
  config.rebuild_beats_per_epoch = 8;
  config.ops_per_pc = ops_per_pc;
  config.ops_per_epoch = 64;
  config.seed = seed;
  config.threads = threads;
  return config;
}

/// Kills global PC `victim` from its own worker at op tick `when` -- the
/// same PC-local mutation discipline as ChaosInjector::storm_tick, with
/// a deterministic schedule the tests can reason about.
runtime::FleetConfig with_kill(runtime::FleetConfig config,
                               board::Vcu128Board& board, unsigned victim,
                               std::uint64_t when) {
  config.storm_hook = [&board, victim, when](unsigned pc,
                                             std::uint64_t tick) {
    if (pc == victim && tick == when) {
      const hbm::PcId id = hbm::PcId::from_global(board.geometry(), victim);
      board.stack(id.stack).kill_pc(id.index);
    }
    return false;
  };
  return config;
}

TEST(StripeTest, TopologyCarvesGroupsParityAndSpares) {
  board::Vcu128Board board(tiny_board());
  // test_tiny has 32 PCs: width 4 -> 6 groups (24 serving), 6 parity,
  // 2 spares.
  runtime::ServingFleet fleet(board, stripe_fleet(64, 1, 9));
  EXPECT_EQ(fleet.channels(), 24u);
  EXPECT_EQ(fleet.groups(), 6u);
  EXPECT_EQ(fleet.spares_left(), 2u);
  EXPECT_EQ(fleet.scheme(), mitigate::MitigationKind::kStripe);
}

TEST(StripeTest, WholePcDeathIsSurvivedAndRebuiltOnline) {
  board::Vcu128Board board(tiny_board());
  ASSERT_TRUE(board.set_hbm_voltage(Millivolts{950}).is_ok());
  runtime::FleetConfig config =
      with_kill(stripe_fleet(2048, 1, 42), board, /*victim=*/0,
                /*when=*/70);
  runtime::ServingFleet fleet(board, config);
  const unsigned original_pc = fleet.channel(0).pc_global();

  auto result = fleet.run();
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const runtime::FleetReport& report = result.value();

  // The headline invariant holds through a whole-PC death.
  EXPECT_EQ(report.corrupt_reads, 0u);
  // Reads of the dead PC were served by XOR reconstruction...
  EXPECT_GT(report.reconstructed_reads, 0u);
  EXPECT_GT(fleet.channel(0).stats().reconstructed_reads, 0u);
  // ...while the rebuild copied the journal onto an adopted spare.
  EXPECT_GT(report.rebuilt_beats, 0u);
  EXPECT_FALSE(fleet.channel(0).device_lost());
  EXPECT_NE(fleet.channel(0).pc_global(), original_pc);
  EXPECT_EQ(fleet.spares_left(), 1u);
  // The stripe-rebuild rung was recorded on the victim's ladder.
  bool saw_rebuild_rung = false;
  for (const runtime::LadderEvent& event : fleet.channel(0).ladder_trace()) {
    saw_rebuild_rung |= event.rung == runtime::LadderRung::kStripeRebuild;
  }
  EXPECT_TRUE(saw_rebuild_rung);
}

TEST(StripeTest, FingerprintIsThreadCountInvariantThroughPcKill) {
  std::uint64_t fingerprints[2] = {0, 0};
  std::uint64_t data_fingerprints[2] = {0, 0};
  const unsigned thread_counts[2] = {1, 4};
  for (int run = 0; run < 2; ++run) {
    board::Vcu128Board board(tiny_board());
    ASSERT_TRUE(board.set_hbm_voltage(Millivolts{950}).is_ok());
    runtime::FleetConfig config = with_kill(
        stripe_fleet(2048, thread_counts[run], 42), board, 0, 70);
    runtime::ServingFleet fleet(board, config);
    auto result = fleet.run();
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    EXPECT_EQ(result.value().corrupt_reads, 0u);
    fingerprints[run] = result.value().fingerprint;
    data_fingerprints[run] = result.value().data_fingerprint;
  }
  EXPECT_EQ(fingerprints[0], fingerprints[1]);
  EXPECT_EQ(data_fingerprints[0], data_fingerprints[1]);
}

TEST(StripeTest, DataFingerprintIsChaosInvariant) {
  // The data fold sees only what was served, not how: a run whose PC 0
  // dies (reads reconstructed, device rebuilt) must serve byte-identical
  // data to an undisturbed run of the same trace.
  std::uint64_t with_chaos = 0;
  std::uint64_t without_chaos = 0;
  {
    board::Vcu128Board board(tiny_board());
    ASSERT_TRUE(board.set_hbm_voltage(Millivolts{950}).is_ok());
    runtime::ServingFleet fleet(
        board, with_kill(stripe_fleet(2048, 1, 42), board, 0, 70));
    auto result = fleet.run();
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    ASSERT_GT(result.value().reconstructed_reads, 0u);
    with_chaos = result.value().data_fingerprint;
  }
  {
    board::Vcu128Board board(tiny_board());
    ASSERT_TRUE(board.set_hbm_voltage(Millivolts{950}).is_ok());
    runtime::FleetConfig config = stripe_fleet(2048, 1, 42);
    // A storm hook (that never fires) keeps the serving path per-op, so
    // the two runs serve identical op sequences.
    config.storm_hook = [](unsigned, std::uint64_t) { return false; };
    runtime::ServingFleet fleet(board, config);
    auto result = fleet.run();
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    ASSERT_EQ(result.value().reconstructed_reads, 0u);
    without_chaos = result.value().data_fingerprint;
  }
  EXPECT_EQ(with_chaos, without_chaos);
}

TEST(StripeTest, ChaosPcKillStormCompletesWithZeroCorruptReads) {
  board::Vcu128Board board(tiny_board());
  ASSERT_TRUE(board.set_hbm_voltage(Millivolts{950}).is_ok());

  chaos::ChaosConfig chaos_config;
  chaos_config.seed = 1313;
  chaos_config.pc_kill_rate = 2e-4;
  chaos_config.weak_burst_rate = 1e-4;
  chaos_config.burst_cells = 4;
  chaos::ChaosInjector injector(board, chaos_config);

  runtime::FleetConfig config = stripe_fleet(2048, 4, 7);
  config.storm_hook = [&injector](unsigned pc, std::uint64_t tick) {
    return injector.storm_tick(pc, tick);
  };
  runtime::ServingFleet fleet(board, config);
  auto result = fleet.run();
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value().corrupt_reads, 0u);
  EXPECT_GT(injector.injected(chaos::FaultKind::kPcKill), 0u);
}

TEST(StripeTest, CheckpointMidRebuildResumesByteIdentically) {
  // Reference: the uninterrupted run.
  std::uint64_t reference_fp = 0;
  std::uint64_t reference_epochs = 0;
  {
    board::Vcu128Board board(tiny_board());
    ASSERT_TRUE(board.set_hbm_voltage(Millivolts{950}).is_ok());
    runtime::ServingFleet fleet(
        board, with_kill(stripe_fleet(2048, 1, 42), board, 0, 70));
    auto result = fleet.run();
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    reference_fp = result.value().fingerprint;
    reference_epochs = result.value().epochs;
  }

  // Step the same run one epoch at a time until a checkpoint catches the
  // group 0 rebuild in flight, then "kill" the process: all that survives
  // is the FleetCheckpoint.
  runtime::FleetCheckpoint mid_rebuild;
  bool captured = false;
  {
    board::Vcu128Board board(tiny_board());
    ASSERT_TRUE(board.set_hbm_voltage(Millivolts{950}).is_ok());
    runtime::FleetConfig stepping =
        with_kill(stripe_fleet(2048, 1, 42), board, 0, 70);
    stepping.halt_after_epochs = 1;  // re-armed every run() call
    runtime::ServingFleet fleet(board, stepping);
    for (;;) {
      auto result = fleet.run();
      ASSERT_TRUE(result.is_ok()) << result.status().to_string();
      if (!result.value().halted) break;
      if (!captured) {
        runtime::FleetCheckpoint ck = fleet.checkpoint();
        const std::uint64_t cap = fleet.channel(0).capacity();
        if (ck.groups[0].rebuilding == 0 && ck.groups[0].rebuild_cursor > 0 &&
            ck.groups[0].rebuild_cursor < cap) {
          mid_rebuild = std::move(ck);
          captured = true;
        }
      }
    }
  }
  ASSERT_TRUE(captured) << "no epoch caught the rebuild mid-flight";

  // Resume on a fresh board + fleet and run to completion.
  board::Vcu128Board board(tiny_board());
  runtime::ServingFleet fleet(
      board, with_kill(stripe_fleet(2048, 1, 42), board, 0, 70));
  ASSERT_TRUE(fleet.restore(mid_rebuild).is_ok());
  auto resumed = fleet.run();
  ASSERT_TRUE(resumed.is_ok()) << resumed.status().to_string();
  EXPECT_EQ(resumed.value().fingerprint, reference_fp);
  EXPECT_EQ(resumed.value().epochs, reference_epochs);
  EXPECT_EQ(resumed.value().corrupt_reads, 0u);
  EXPECT_FALSE(fleet.channel(0).device_lost());
}

TEST(StripeTest, NonStripeSchemesSurvivePcKillFromTheJournal) {
  // Without a stripe, a killed PC degrades to journal-backed serving:
  // still zero corrupt reads, no reconstruction, no rebuild.
  for (const auto scheme : {mitigate::MitigationKind::kSecded,
                            mitigate::MitigationKind::kDected}) {
    board::Vcu128Board board(tiny_board());
    ASSERT_TRUE(board.set_hbm_voltage(Millivolts{950}).is_ok());
    runtime::FleetConfig config =
        with_kill(stripe_fleet(1024, 1, 11), board, 0, 70);
    config.scheme = scheme;
    runtime::ServingFleet fleet(board, config);
    auto result = fleet.run();
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    EXPECT_EQ(result.value().corrupt_reads, 0u);
    EXPECT_EQ(result.value().reconstructed_reads, 0u);
    EXPECT_EQ(result.value().rebuilt_beats, 0u);
    EXPECT_TRUE(fleet.channel(0).device_lost());
    EXPECT_GT(fleet.channel(0).stats().journal_served_reads, 0u);
  }
}

}  // namespace
}  // namespace hbmvolt
