// Unit tests for the INA226 model and driver: register map, datasheet
// calibration math, quantization, averaging.

#include <cmath>

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "pmbus/bus.hpp"
#include "sensors/ina226.hpp"

namespace hbmvolt {
namespace {

using sensors::Ina226;
using sensors::Ina226Driver;
using sensors::RailSample;

class Ina226Test : public ::testing::Test {
 protected:
  Ina226Test() : monitor_(make_config()) {
    EXPECT_TRUE(bus_.attach(&monitor_).is_ok());
  }

  static Ina226::Config make_config() {
    Ina226::Config config;
    config.shunt = Ohms{0.002};
    config.noise_sigma_amps = 0.0;  // deterministic unless a test opts in
    return config;
  }

  void set_rail(double volts, double amps) {
    monitor_.set_rail_probe([volts, amps]() {
      return RailSample{from_volts(volts), Amps{amps}};
    });
  }

  pmbus::Bus bus_;
  Ina226 monitor_;
};

TEST_F(Ina226Test, IdentificationRegisters) {
  auto mfr = bus_.read_word(0x40, Ina226::kRegManufacturerId);
  ASSERT_TRUE(mfr.is_ok());
  EXPECT_EQ(mfr.value(), 0x5449);  // "TI"
  auto die = bus_.read_word(0x40, Ina226::kRegDieId);
  ASSERT_TRUE(die.is_ok());
  EXPECT_EQ(die.value(), 0x2260);
}

TEST_F(Ina226Test, ConfigDefaultAndReset) {
  auto config = bus_.read_word(0x40, Ina226::kRegConfig);
  ASSERT_TRUE(config.is_ok());
  EXPECT_EQ(config.value(), Ina226::kConfigDefault);
  ASSERT_TRUE(bus_.write_word(0x40, Ina226::kRegConfig, 0x4200).is_ok());
  EXPECT_EQ(bus_.read_word(0x40, Ina226::kRegConfig).value(), 0x4200);
  // RST bit restores defaults.
  ASSERT_TRUE(bus_.write_word(0x40, Ina226::kRegConfig, 0x8000).is_ok());
  EXPECT_EQ(bus_.read_word(0x40, Ina226::kRegConfig).value(),
            Ina226::kConfigDefault);
}

TEST_F(Ina226Test, BusVoltageLsbIs1_25mV) {
  set_rail(1.2, 0.0);
  auto reg = bus_.read_word(0x40, Ina226::kRegBus);
  ASSERT_TRUE(reg.is_ok());
  EXPECT_EQ(reg.value(), 960);  // 1.2 V / 1.25 mV
}

TEST_F(Ina226Test, ShuntRegisterQuantizesTo2_5uV) {
  set_rail(1.2, 10.0);  // 10 A * 2 mOhm = 20 mV = 8000 counts
  auto reg = bus_.read_word(0x40, Ina226::kRegShunt);
  ASSERT_TRUE(reg.is_ok());
  EXPECT_EQ(static_cast<std::int16_t>(reg.value()), 8000);
}

TEST_F(Ina226Test, DriverCalibrationMatchesDatasheet) {
  Ina226Driver driver(bus_, 0x40);
  ASSERT_TRUE(driver.configure(40.0, Ohms{0.002}, 16).is_ok());
  // Current_LSB = 40/2^15 ~= 1.2207 mA; CAL = 0.00512/(LSB*0.002) ~= 2097.
  EXPECT_NEAR(driver.current_lsb(), 40.0 / 32768.0, 1e-9);
  auto cal = bus_.read_word(0x40, Ina226::kRegCalibration);
  ASSERT_TRUE(cal.is_ok());
  EXPECT_NEAR(cal.value(), 0.00512 / (driver.current_lsb() * 0.002), 1.0);
}

TEST_F(Ina226Test, CurrentAndPowerReadBack) {
  Ina226Driver driver(bus_, 0x40);
  ASSERT_TRUE(driver.configure(40.0, Ohms{0.002}, 1).is_ok());
  set_rail(1.2, 18.0);
  auto current = driver.read_current();
  ASSERT_TRUE(current.is_ok());
  EXPECT_NEAR(current.value().value, 18.0, 0.05);
  auto power = driver.read_power();
  ASSERT_TRUE(power.is_ok());
  EXPECT_NEAR(power.value().value, 18.0 * 1.2, 0.2);
  auto vbus = driver.read_bus_voltage();
  ASSERT_TRUE(vbus.is_ok());
  EXPECT_NEAR(vbus.value().volts(), 1.2, 0.002);
  auto ishunt = driver.read_shunt_current();
  ASSERT_TRUE(ishunt.is_ok());
  EXPECT_NEAR(ishunt.value().value, 18.0, 0.05);
}

class Ina226CurrentSweep : public Ina226Test,
                           public ::testing::WithParamInterface<double> {};

TEST_P(Ina226CurrentSweep, ReadsTrackTrueCurrent) {
  Ina226Driver driver(bus_, 0x40);
  ASSERT_TRUE(driver.configure(40.0, Ohms{0.002}, 1).is_ok());
  const double amps = GetParam();
  set_rail(0.98, amps);
  auto current = driver.read_current();
  ASSERT_TRUE(current.is_ok());
  // Quantization: shunt LSB 2.5 uV / 2 mOhm = 1.25 mA, plus CAL rounding.
  EXPECT_NEAR(current.value().value, amps, 0.05 + amps * 0.001);
}

INSTANTIATE_TEST_SUITE_P(Currents, Ina226CurrentSweep,
                         ::testing::Values(0.0, 0.5, 2.0, 7.5, 15.0, 25.0,
                                           39.0));

TEST_F(Ina226Test, AveragingReducesNoise) {
  Ina226::Config noisy = make_config();
  noisy.noise_sigma_amps = 0.5;
  noisy.address = 0x41;
  Ina226 monitor(noisy);
  monitor.set_rail_probe(
      []() { return RailSample{from_volts(1.2), Amps{10.0}}; });
  ASSERT_TRUE(bus_.attach(&monitor).is_ok());
  Ina226Driver driver(bus_, 0x41);

  const auto spread_with_avg = [&](unsigned averages) {
    EXPECT_TRUE(driver.configure(40.0, Ohms{0.002}, averages).is_ok());
    RunningStats stats;
    for (int i = 0; i < 200; ++i) {
      auto current = driver.read_current();
      EXPECT_TRUE(current.is_ok());
      stats.add(current.value().value);
    }
    return stats.stddev();
  };

  const double sigma1 = spread_with_avg(1);
  const double sigma256 = spread_with_avg(256);
  EXPECT_GT(sigma1, 4.0 * sigma256);  // ~sqrt(256)=16x in theory
}

TEST_F(Ina226Test, NoProbeReadsZero) {
  Ina226Driver driver(bus_, 0x40);
  ASSERT_TRUE(driver.configure(40.0, Ohms{0.002}, 1).is_ok());
  auto current = driver.read_current();
  ASSERT_TRUE(current.is_ok());
  EXPECT_DOUBLE_EQ(current.value().value, 0.0);
}

TEST_F(Ina226Test, ConfigureRejectsBadArguments) {
  Ina226Driver driver(bus_, 0x40);
  EXPECT_FALSE(driver.configure(0.0, Ohms{0.002}, 1).is_ok());
  EXPECT_FALSE(driver.configure(10.0, Ohms{0.0}, 1).is_ok());
  // Tiny current LSB overflows the CAL register.
  EXPECT_FALSE(driver.configure(0.0001, Ohms{10.0}, 1).is_ok());
}

TEST_F(Ina226Test, MaskAndAlertRegistersAreWritable) {
  ASSERT_TRUE(bus_.write_word(0x40, Ina226::kRegMaskEnable, 0x8000).is_ok());
  ASSERT_TRUE(bus_.write_word(0x40, Ina226::kRegAlertLimit, 0x1234).is_ok());
  EXPECT_EQ(bus_.read_word(0x40, Ina226::kRegMaskEnable).value(), 0x8000);
  EXPECT_EQ(bus_.read_word(0x40, Ina226::kRegAlertLimit).value(), 0x1234);
}

TEST_F(Ina226Test, UnknownRegisterNacks) {
  EXPECT_EQ(bus_.read_word(0x40, 0x10).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(bus_.write_word(0x40, 0x01, 0).code(), StatusCode::kNotFound);
}

TEST_F(Ina226Test, AveragingCountDecoding) {
  // CONFIG bits 11..9: 0->1, 1->4, ... 7->1024.
  const unsigned expected[8] = {1, 4, 16, 64, 128, 256, 512, 1024};
  for (unsigned bits = 0; bits < 8; ++bits) {
    const auto config = static_cast<std::uint16_t>(
        (Ina226::kConfigDefault & ~0x0E00) | (bits << 9));
    ASSERT_TRUE(bus_.write_word(0x40, Ina226::kRegConfig, config).is_ok());
    EXPECT_EQ(monitor_.averaging_count(), expected[bits]);
  }
}

}  // namespace
}  // namespace hbmvolt
