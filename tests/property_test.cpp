// Property-based tests: invariants that must hold over swept parameter
// spaces -- permutation bijectivity, fault-set monotonicity, black-box vs
// white-box consistency, format round-trips, end-to-end determinism.

#include <set>

#include <gtest/gtest.h>

#include "board/vcu128.hpp"
#include "common/prp.hpp"
#include "common/rng.hpp"
#include "core/reliability_tester.hpp"
#include "faults/fault_overlay.hpp"
#include "pmbus/linear.hpp"

namespace hbmvolt {
namespace {

// ---------------------------------------------------------- PRP property

struct PrpCase {
  std::uint64_t size;
  std::uint64_t seed;
};

class PrpProperty : public ::testing::TestWithParam<PrpCase> {};

TEST_P(PrpProperty, BijectionAndInverse) {
  const auto [n, seed] = GetParam();
  FeistelPermutation prp(n, seed);
  std::vector<bool> hit(n, false);
  for (std::uint64_t x = 0; x < n; ++x) {
    const std::uint64_t y = prp.forward(x);
    ASSERT_LT(y, n);
    ASSERT_FALSE(hit[y]);
    hit[y] = true;
    ASSERT_EQ(prp.inverse(y), x);
  }
}

std::vector<PrpCase> prp_cases() {
  std::vector<PrpCase> cases;
  for (const std::uint64_t n : {5ull, 64ull, 1000ull, 65536ull}) {
    for (const std::uint64_t seed : {0ull, 42ull, 0xFFFFFFFFull}) {
      cases.push_back({n, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, PrpProperty, ::testing::ValuesIn(prp_cases()));

// ----------------------------------------------- Fault-set monotonicity

class OverlayMonotonicity : public ::testing::TestWithParam<unsigned> {};

// As voltage descends, the stuck-cell set only ever grows, and every cell
// keeps its polarity -- the property that makes undervolting predictable
// enough for the Fig 6 trade-off to be actionable.
TEST_P(OverlayMonotonicity, StuckSetsAreNested) {
  const unsigned pc = GetParam();
  faults::FaultInjector injector(faults::FaultModel(
      hbm::HbmGeometry::test_tiny(), faults::FaultModelConfig{}));

  std::set<std::uint64_t> previous_sa0;
  std::set<std::uint64_t> previous_sa1;
  for (int mv = 980; mv >= 850; mv -= 10) {
    injector.set_voltage(Millivolts{mv});
    const auto& overlay = injector.overlay(pc);
    std::set<std::uint64_t> sa0;
    std::set<std::uint64_t> sa1;
    overlay.for_each([&](std::uint64_t bit, faults::StuckPolarity polarity) {
      (polarity == faults::StuckPolarity::kStuckAt0 ? sa0 : sa1).insert(bit);
    });
    for (const auto bit : previous_sa0) {
      ASSERT_TRUE(sa0.contains(bit)) << "pc " << pc << " lost sa0 cell at "
                                     << mv;
    }
    for (const auto bit : previous_sa1) {
      ASSERT_TRUE(sa1.contains(bit)) << "pc " << pc << " lost sa1 cell at "
                                     << mv;
    }
    previous_sa0 = std::move(sa0);
    previous_sa1 = std::move(sa1);
  }
}

INSTANTIATE_TEST_SUITE_P(SomePcs, OverlayMonotonicity,
                         ::testing::Values(0u, 4u, 9u, 18u, 25u, 31u));

// --------------------------------- Black-box test == white-box fault set

class BlackBoxWhiteBox : public ::testing::TestWithParam<int> {};

// Algorithm 1's measured flip counts must equal the injector's overlay
// counts exactly: the pattern test is a complete observer of stuck cells.
TEST_P(BlackBoxWhiteBox, PatternTestRecoversOverlayCounts) {
  const int mv = GetParam();
  board::BoardConfig config;
  config.geometry = hbm::HbmGeometry::test_tiny();
  board::Vcu128Board board(config);

  ASSERT_TRUE(board.set_hbm_voltage(Millivolts{mv}).is_ok());
  board.set_active_ports(board.total_ports());

  axi::TgCommand ones{axi::MacroOp::kWriteRead, 0, 0, hbm::kBeatAllOnes,
                      true};
  axi::TgCommand zeros{axi::MacroOp::kWriteRead, 0, 0, hbm::kBeatAllZeros,
                       true};
  const auto result_ones = board.run_traffic(ones);
  const auto result_zeros = board.run_traffic(zeros);

  const unsigned per_stack = board.geometry().pcs_per_stack();
  for (unsigned s = 0; s < 2; ++s) {
    for (unsigned p = 0; p < per_stack; ++p) {
      const unsigned pc = s * per_stack + p;
      const auto& overlay = board.injector().overlay(pc);
      EXPECT_EQ(result_ones[s].per_port[p].flips_1to0,
                overlay.count(faults::StuckPolarity::kStuckAt0))
          << "pc " << pc << " at " << mv;
      EXPECT_EQ(result_ones[s].per_port[p].flips_0to1, 0u);
      EXPECT_EQ(result_zeros[s].per_port[p].flips_0to1,
                overlay.count(faults::StuckPolarity::kStuckAt1))
          << "pc " << pc << " at " << mv;
      EXPECT_EQ(result_zeros[s].per_port[p].flips_1to0, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Voltages, BlackBoxWhiteBox,
                         ::testing::Values(1000, 970, 950, 930, 900, 870,
                                           845, 830));

// ----------------------------------------------- LINEAR11 random fuzzing

TEST(LinearFuzzTest, Linear11RoundTripRandomValues) {
  Xoshiro256 rng(77);
  for (int i = 0; i < 5000; ++i) {
    const double value = rng.uniform(-500.0, 500.0);
    const double decoded =
        pmbus::linear11_decode(pmbus::linear11_encode(value));
    ASSERT_NEAR(decoded, value, std::abs(value) / 500.0 + 1e-4) << value;
  }
}

TEST(LinearFuzzTest, Linear16RoundTripRandomVoltages) {
  Xoshiro256 rng(78);
  for (int i = 0; i < 5000; ++i) {
    const double value = rng.uniform(0.0, 2.0);
    auto mantissa = pmbus::linear16_encode(value, -12);
    ASSERT_TRUE(mantissa.is_ok());
    ASSERT_NEAR(pmbus::linear16_decode(mantissa.value(), -12), value,
                1.0 / 4096.0);
  }
}

// ---------------------------------------------- Memory array random fuzz

TEST(MemoryFuzzTest, RandomWritesReadBack) {
  hbm::MemoryArray array(1 << 14, 5);
  Xoshiro256 rng(6);
  std::vector<std::pair<std::uint64_t, hbm::Beat>> journal;
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t beat = rng.bounded(array.beats());
    const hbm::Beat data = {rng(), rng(), rng(), rng()};
    array.write_beat(beat, data);
    journal.emplace_back(beat, data);
  }
  // Replay forward: the LAST write to each beat wins.
  std::map<std::uint64_t, hbm::Beat> expected;
  for (const auto& [beat, data] : journal) expected[beat] = data;
  for (const auto& [beat, data] : expected) {
    ASSERT_EQ(array.read_beat(beat), data);
  }
}

// ------------------------------------------- End-to-end determinism

TEST(DeterminismTest, FullSweepBitIdentical) {
  const auto run_once = []() {
    board::BoardConfig config;
    config.geometry = hbm::HbmGeometry::test_tiny();
    board::Vcu128Board board(config);
    core::ReliabilityConfig rel;
    rel.sweep = {Millivolts{980}, Millivolts{860}, 20};
    rel.batch_size = 2;
    core::ReliabilityTester tester(board, rel);
    return std::move(tester.run()).value();
  };
  const auto a = run_once();
  const auto b = run_once();
  for (const auto v : a.voltages()) {
    for (unsigned pc = 0; pc < 32; ++pc) {
      ASSERT_EQ(a.pc_record(v, pc).flips_1to0, b.pc_record(v, pc).flips_1to0);
      ASSERT_EQ(a.pc_record(v, pc).flips_0to1, b.pc_record(v, pc).flips_0to1);
      ASSERT_EQ(a.pc_record(v, pc).bits_tested, b.pc_record(v, pc).bits_tested);
    }
  }
}

// Repeating the same batch at a fixed voltage gives identical fault counts
// every time: stuck-at faults are stable, not transient (which is what
// makes the paper's fault map usable at all).
TEST(DeterminismTest, RepeatedBatchesAgree) {
  board::BoardConfig config;
  config.geometry = hbm::HbmGeometry::test_tiny();
  board::Vcu128Board board(config);
  ASSERT_TRUE(board.set_hbm_voltage(Millivolts{905}).is_ok());
  board.set_active_ports(board.total_ports());
  axi::TgCommand command{axi::MacroOp::kWriteRead, 0, 0, hbm::kBeatAllOnes,
                         true};
  std::uint64_t first = 0;
  for (int batch = 0; batch < 5; ++batch) {
    std::uint64_t flips = 0;
    for (const auto& result : board.run_traffic(command)) {
      flips += result.totals().total_flips();
    }
    if (batch == 0) {
      first = flips;
      EXPECT_GT(first, 0u);
    } else {
      EXPECT_EQ(flips, first) << "batch " << batch;
    }
  }
}

// ------------------------------------------ Channel-level aggregation

TEST(FaultMapChannelTest, ChannelsSumToStack) {
  const auto g = hbm::HbmGeometry::test_tiny();
  faults::FaultMap map(g);
  Xoshiro256 rng(17);
  for (unsigned pc = 0; pc < g.total_pcs(); ++pc) {
    map.record(Millivolts{900},
               pc, {1000, rng.bounded(50), rng.bounded(50), 500, 500});
  }
  for (unsigned stack = 0; stack < g.stacks; ++stack) {
    faults::PcFaultRecord sum;
    for (unsigned channel = 0; channel < g.channels_per_stack; ++channel) {
      sum += map.channel_record(Millivolts{900}, stack, channel);
    }
    const auto whole = map.stack_record(Millivolts{900}, stack);
    EXPECT_EQ(sum.total_flips(), whole.total_flips());
    EXPECT_EQ(sum.bits_tested, whole.bits_tested);
  }
}

// ------------------------------------------ Seed (process-lot) robustness

class SeedRobustness : public ::testing::TestWithParam<std::uint64_t> {};

// The calibration anchors are properties of the *model*, not of one
// particular seed: every process lot must reproduce them.
TEST_P(SeedRobustness, AnchorsHoldForEveryLot) {
  faults::FaultModelConfig config;
  config.seed = GetParam();
  const faults::FaultModel model(hbm::HbmGeometry::test_tiny(), config);

  // Guardband clean, first flip at 0.97 V.
  std::uint64_t at_980 = 0;
  std::uint64_t at_970 = 0;
  unsigned fault_free_950 = 0;
  for (unsigned pc = 0; pc < 32; ++pc) {
    at_980 += model.stuck_count(pc, faults::StuckPolarity::kStuckAt0,
                                Millivolts{980}) +
              model.stuck_count(pc, faults::StuckPolarity::kStuckAt1,
                                Millivolts{980});
    at_970 += model.stuck_count(pc, faults::StuckPolarity::kStuckAt0,
                                Millivolts{970});
    if (model.stuck_fraction(pc, Millivolts{950}) == 0.0) ++fault_free_950;
  }
  EXPECT_EQ(at_980, 0u) << "seed " << GetParam();
  EXPECT_GT(at_970, 0u) << "seed " << GetParam();
  EXPECT_EQ(fault_free_950, 7u) << "seed " << GetParam();

  // All-faulty floor and alpha drop.
  EXPECT_DOUBLE_EQ(model.device_stuck_fraction(Millivolts{841}), 1.0);
  EXPECT_NEAR(model.alpha_multiplier(Millivolts{850}), 0.86, 0.035);

  // HBM1 worse on average (direction must never flip with the lot).
  double gap = 0.0;
  int samples = 0;
  for (int mv = 955; mv >= 850; mv -= 5) {
    const double r0 = model.stack_stuck_fraction(0, Millivolts{mv});
    const double r1 = model.stack_stuck_fraction(1, Millivolts{mv});
    if (r1 <= 0.0 || r1 >= 0.999) continue;
    gap += (r1 - r0) / r1;
    ++samples;
  }
  ASSERT_GT(samples, 5);
  EXPECT_GT(gap / samples, 0.0) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Lots, SeedRobustness,
                         ::testing::Values(1ull, 42ull, 0xB5C0FFEEull,
                                           0xDEADBEEFull, 987654321ull));

// -------------------------------------- Fault-rate ordering properties

TEST(OrderingTest, WeakPcsAlwaysAtOrAboveStrongPcs) {
  const faults::FaultModel model(hbm::HbmGeometry::test_tiny(),
                                 faults::FaultModelConfig{});
  for (int mv = 975; mv >= 855; mv -= 5) {
    double weak_min = 1.0;
    double strong_max = 0.0;
    for (const unsigned pc : faults::paper_weak_pcs()) {
      weak_min = std::min(weak_min, model.stuck_fraction(pc, Millivolts{mv}));
    }
    for (const unsigned pc : faults::paper_strong_pcs()) {
      strong_max =
          std::max(strong_max, model.stuck_fraction(pc, Millivolts{mv}));
    }
    // Outside the bulk-collapse zone, weak PCs dominate strong ones.
    if (mv >= 870) {
      EXPECT_GE(weak_min, strong_max) << "at " << mv;
    }
  }
}

TEST(OrderingTest, StackFractionBoundedByPcExtremes) {
  const faults::FaultModel model(hbm::HbmGeometry::test_tiny(),
                                 faults::FaultModelConfig{});
  for (int mv = 960; mv >= 850; mv -= 10) {
    for (unsigned stack = 0; stack < 2; ++stack) {
      double lo = 1.0;
      double hi = 0.0;
      for (unsigned p = 0; p < 16; ++p) {
        const double f =
            model.stuck_fraction(stack * 16 + p, Millivolts{mv});
        lo = std::min(lo, f);
        hi = std::max(hi, f);
      }
      const double avg = model.stack_stuck_fraction(stack, Millivolts{mv});
      EXPECT_GE(avg, lo - 1e-12);
      EXPECT_LE(avg, hi + 1e-12);
    }
  }
}

}  // namespace
}  // namespace hbmvolt
