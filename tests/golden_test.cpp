// Golden-figure regression suite: a fixed-seed campaign must reproduce
// the checked-in fig2/fig4/fig5 CSVs and headline numbers exactly,
// byte for byte.  Any intentional change to the model's numerics shows up
// here as a diff against tests/golden/ and must be reviewed by
// regenerating the goldens:
//
//   cmake --build build -j
//   HBMVOLT_REGEN_GOLDEN=1 ./build/tests/golden_test
//   git diff tests/golden/   # review, then commit
//
// The campaign runs on the serial reference path (threads = 1);
// tests/parallel_test.cpp separately proves every thread count matches
// that path, so together the suites pin the parallel engine's output.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "core/report.hpp"

#ifndef HBMVOLT_GOLDEN_DIR
#error "HBMVOLT_GOLDEN_DIR must point at tests/golden (set by CMake)"
#endif

namespace hbmvolt {
namespace {

board::BoardConfig tiny_board() {
  board::BoardConfig config;
  config.geometry = hbm::HbmGeometry::test_tiny();
  config.monitor_config.noise_sigma_amps = 0.0;
  return config;
}

core::CampaignConfig fast_campaign() {
  core::CampaignConfig config;
  config.reliability.sweep = {Millivolts{1200}, Millivolts{800}, 20};
  config.reliability.batch_size = 1;
  config.power.sweep = {Millivolts{1200}, Millivolts{850}, 50};
  config.power.samples = 2;
  config.power.traffic_beats = 4;
  config.dry_run = true;
  return config;
}

/// Canonical headline serialization at full double precision (%.17g
/// round-trips IEEE doubles exactly), so golden comparison pins every bit.
std::string headline_text(const core::HeadlineNumbers& h) {
  char buffer[128];
  std::ostringstream out;
  const auto field = [&](const char* name, double value) {
    std::snprintf(buffer, sizeof(buffer), "%s=%.17g\n", name, value);
    out << buffer;
  };
  out << "v_nom_mv=" << h.guardband.v_nom.value << "\n";
  out << "v_min_mv=" << h.guardband.v_min.value << "\n";
  out << "v_first_fault_mv=" << h.guardband.v_first_fault.value << "\n";
  out << "v_critical_mv=" << h.guardband.v_critical.value << "\n";
  out << "crash_observed=" << (h.guardband.crash_observed ? 1 : 0) << "\n";
  field("guardband_fraction", h.guardband.guardband_fraction);
  field("savings_at_vmin", h.savings_at_vmin);
  field("savings_at_850mv", h.savings_at_850mv);
  field("idle_fraction", h.idle_fraction);
  field("alpha_drop_at_850mv", h.alpha_drop_at_850mv);
  out << "better_stack=" << h.stack_variation.better_stack << "\n";
  field("stack_average_gap", h.stack_variation.average_gap);
  out << "stack_samples=" << h.stack_variation.samples << "\n";
  out << "first_1to0_mv="
      << (h.pattern_variation.first_1to0
              ? h.pattern_variation.first_1to0->value
              : -1)
      << "\n";
  out << "first_0to1_mv="
      << (h.pattern_variation.first_0to1
              ? h.pattern_variation.first_0to1->value
              : -1)
      << "\n";
  field("average_0to1_excess", h.pattern_variation.average_0to1_excess);
  out << "pattern_samples=" << h.pattern_variation.samples << "\n";
  return out.str();
}

class GoldenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    board::Vcu128Board board(tiny_board());
    core::Campaign campaign(board, fast_campaign());
    auto run = campaign.run();
    ASSERT_TRUE(run.is_ok()) << run.status().to_string();
    result_ = new core::CampaignResult(std::move(run).value());
  }

  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }

  /// Compares `actual` against the golden file, or rewrites the golden
  /// when HBMVOLT_REGEN_GOLDEN is set in the environment.
  static void check(const std::string& name, const std::string& actual) {
    const std::string path = std::string(HBMVOLT_GOLDEN_DIR) + "/" + name;
    if (std::getenv("HBMVOLT_REGEN_GOLDEN") != nullptr) {
      std::ofstream out(path, std::ios::binary);
      ASSERT_TRUE(out.good()) << "cannot write " << path;
      out << actual;
      ASSERT_TRUE(out.good()) << "write failed: " << path;
      GTEST_SKIP() << "regenerated " << path;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden " << path
        << " -- run with HBMVOLT_REGEN_GOLDEN=1 to create it";
    std::ostringstream expected;
    expected << in.rdbuf();
    // EXPECT_EQ on the whole string: a failure prints the first diverging
    // bytes, and the regen command above produces the reviewable diff.
    EXPECT_EQ(actual, expected.str()) << "golden mismatch: " << name;
  }

  static core::CampaignResult* result_;
};

core::CampaignResult* GoldenTest::result_ = nullptr;

TEST_F(GoldenTest, Fig2PowerCsvMatches) {
  check("fig2.csv", core::to_csv_fig2(result_->power));
}

TEST_F(GoldenTest, Fig4FaultRateCsvMatches) {
  check("fig4.csv", core::to_csv_fig4(result_->fault_map));
}

TEST_F(GoldenTest, Fig5PerPcCsvMatches) {
  check("fig5.csv", core::to_csv_fig5(result_->fault_map));
}

TEST_F(GoldenTest, HeadlineNumbersMatch) {
  check("headline.txt", headline_text(result_->headline));
}

}  // namespace
}  // namespace hbmvolt
