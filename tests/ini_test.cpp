// Unit tests for the INI parser and the BoardConfig <-> INI mapping.

#include <gtest/gtest.h>

#include "board/config_io.hpp"
#include "common/ini.hpp"

namespace hbmvolt {
namespace {

TEST(IniTest, ParsesSectionsAndKeys) {
  auto ini = IniFile::parse(
      "top = 1\n"
      "[geometry]\n"
      "stacks = 2\n"
      "bits_per_pc = 16384   ; inline comment\n"
      "\n"
      "# full-line comment\n"
      "[power]\n"
      "idle_fraction = 0.333\n");
  ASSERT_TRUE(ini.is_ok());
  EXPECT_EQ(ini.value().get("", "top"), "1");
  EXPECT_EQ(ini.value().get("geometry", "stacks"), "2");
  EXPECT_EQ(ini.value().get("geometry", "bits_per_pc"), "16384");
  EXPECT_EQ(ini.value().get("power", "idle_fraction"), "0.333");
  EXPECT_FALSE(ini.value().get("power", "missing").has_value());
}

TEST(IniTest, TrimsWhitespace) {
  auto ini = IniFile::parse("[ s ]\n  key with spaces   =   value text  \n");
  ASSERT_TRUE(ini.is_ok());
  EXPECT_EQ(ini.value().get("s", "key with spaces"), "value text");
}

TEST(IniTest, LaterDuplicateWins) {
  auto ini = IniFile::parse("[a]\nk = 1\nk = 2\n");
  ASSERT_TRUE(ini.is_ok());
  EXPECT_EQ(ini.value().get("a", "k"), "2");
}

TEST(IniTest, SyntaxErrorsReportLineNumbers) {
  auto missing_eq = IniFile::parse("[a]\njust a token\n");
  ASSERT_FALSE(missing_eq.is_ok());
  EXPECT_NE(missing_eq.status().message().find("line 2"), std::string::npos);

  auto bad_section = IniFile::parse("[unterminated\n");
  ASSERT_FALSE(bad_section.is_ok());
  EXPECT_NE(bad_section.status().message().find("line 1"),
            std::string::npos);

  auto empty_key = IniFile::parse("[a]\n = value\n");
  EXPECT_FALSE(empty_key.is_ok());
}

TEST(IniTest, TypedGetters) {
  auto parsed = IniFile::parse(
      "[t]\n"
      "d = 1.5\n"
      "i = -42\n"
      "u = 0x10\n"
      "b1 = true\n"
      "b2 = Off\n"
      "bad = zzz\n");
  ASSERT_TRUE(parsed.is_ok());
  const auto& ini = parsed.value();
  EXPECT_DOUBLE_EQ(ini.get_double("t", "d").value(), 1.5);
  EXPECT_EQ(ini.get_int("t", "i").value(), -42);
  EXPECT_EQ(ini.get_uint64("t", "u").value(), 16u);
  EXPECT_TRUE(ini.get_bool("t", "b1").value());
  EXPECT_FALSE(ini.get_bool("t", "b2").value());
  EXPECT_EQ(ini.get_double("t", "bad").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ini.get_double("t", "absent").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ini.get_uint64("t", "i").status().code(),
            StatusCode::kInvalidArgument);  // negative
}

TEST(IniTest, OrGettersFallBackOnlyWhenAbsent) {
  auto parsed = IniFile::parse("[t]\nbad = zzz\ngood = 2\n");
  ASSERT_TRUE(parsed.is_ok());
  const auto& ini = parsed.value();
  EXPECT_DOUBLE_EQ(ini.get_double_or("t", "absent", 7.0).value(), 7.0);
  EXPECT_DOUBLE_EQ(ini.get_double_or("t", "good", 7.0).value(), 2.0);
  EXPECT_FALSE(ini.get_double_or("t", "bad", 7.0).is_ok());
}

TEST(IniTest, RoundTripThroughToString) {
  IniFile ini;
  ini.set("alpha", "x", "1");
  ini.set("beta", "y", "hello world");
  ini.set("", "global", "g");
  auto reparsed = IniFile::parse(ini.to_string());
  ASSERT_TRUE(reparsed.is_ok());
  EXPECT_EQ(reparsed.value().get("alpha", "x"), "1");
  EXPECT_EQ(reparsed.value().get("beta", "y"), "hello world");
  EXPECT_EQ(reparsed.value().get("", "global"), "g");
}

TEST(IniTest, SectionAndKeyEnumeration) {
  auto parsed = IniFile::parse("[b]\nk2 = 2\nk1 = 1\n[a]\nk = 0\n");
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().sections(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(parsed.value().keys("b"),
            (std::vector<std::string>{"k1", "k2"}));
}

TEST(IniTest, LoadMissingFileIsNotFound) {
  EXPECT_EQ(IniFile::load("/nonexistent/file.ini").status().code(),
            StatusCode::kNotFound);
}

// --------------------------------------------------------- BoardConfig IO

TEST(ConfigIoTest, EmptyIniGivesDefaults) {
  auto config = board::board_config_from_ini(IniFile{});
  ASSERT_TRUE(config.is_ok());
  EXPECT_EQ(config.value().geometry.total_pcs(), 32u);
  EXPECT_EQ(config.value().fault_config.v_first_flip.value, 970);
}

TEST(ConfigIoTest, OverridesApply) {
  auto ini = IniFile::parse(
      "[geometry]\n"
      "bits_per_pc = 16384\n"
      "banks_per_pc = 2\n"
      "beats_per_row = 8\n"
      "[faults]\n"
      "temperature_c = 85\n"
      "v_first_flip_mv = 960\n"
      "[power]\n"
      "p_full_load_w = 30\n"
      "[board]\n"
      "seed = 99\n");
  ASSERT_TRUE(ini.is_ok());
  auto config = board::board_config_from_ini(ini.value());
  ASSERT_TRUE(config.is_ok());
  EXPECT_EQ(config.value().geometry.bits_per_pc, 16384u);
  EXPECT_DOUBLE_EQ(config.value().fault_config.temperature_c, 85.0);
  EXPECT_EQ(config.value().fault_config.v_first_flip.value, 960);
  EXPECT_DOUBLE_EQ(config.value().power_config.p_full_load.value, 30.0);
  EXPECT_EQ(config.value().seed, 99u);
}

TEST(ConfigIoTest, InvalidGeometryRejected) {
  auto ini = IniFile::parse("[geometry]\nbits_per_pc = 1000\n");
  ASSERT_TRUE(ini.is_ok());
  EXPECT_FALSE(board::board_config_from_ini(ini.value()).is_ok());
}

TEST(ConfigIoTest, ParseErrorPropagates) {
  auto ini = IniFile::parse("[power]\nidle_fraction = abc\n");
  ASSERT_TRUE(ini.is_ok());
  EXPECT_EQ(board::board_config_from_ini(ini.value()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ConfigIoTest, FullRoundTrip) {
  board::BoardConfig original;
  original.geometry = hbm::HbmGeometry::test_tiny();
  original.fault_config.temperature_c = 55.0;
  original.power_config.idle_fraction = 0.25;
  original.seed = 0xABCDEF;
  original.port_efficiency = 0.5;
  original.weak_config.cluster_count = 3;

  const IniFile ini = board::board_config_to_ini(original);
  auto reparsed = IniFile::parse(ini.to_string());
  ASSERT_TRUE(reparsed.is_ok());
  auto loaded = board::board_config_from_ini(reparsed.value());
  ASSERT_TRUE(loaded.is_ok());
  const auto& config = loaded.value();

  EXPECT_EQ(config.geometry.bits_per_pc, original.geometry.bits_per_pc);
  EXPECT_EQ(config.geometry.banks_per_pc, original.geometry.banks_per_pc);
  EXPECT_DOUBLE_EQ(config.fault_config.temperature_c, 55.0);
  EXPECT_DOUBLE_EQ(config.power_config.idle_fraction, 0.25);
  EXPECT_EQ(config.seed, 0xABCDEFu);
  EXPECT_DOUBLE_EQ(config.port_efficiency, 0.5);
  EXPECT_EQ(config.weak_config.cluster_count, 3u);
  // A board built from the round-tripped config behaves identically.
  board::Vcu128Board a(original);
  board::Vcu128Board b(config);
  (void)a.set_hbm_voltage(Millivolts{900});
  (void)b.set_hbm_voltage(Millivolts{900});
  EXPECT_EQ(a.injector().overlay(18).total_count(),
            b.injector().overlay(18).total_count());
}

}  // namespace
}  // namespace hbmvolt
