// Unit tests for src/hbm: geometry/addressing, memory arrays, and the
// stack state machine.

#include <vector>

#include <gtest/gtest.h>

#include "axi/controller.hpp"
#include "faults/fault_overlay.hpp"
#include "hbm/geometry.hpp"
#include "hbm/ip_registers.hpp"
#include "hbm/memory_array.hpp"
#include "hbm/stack.hpp"

namespace hbmvolt {
namespace {

using hbm::Beat;
using hbm::HbmGeometry;
using hbm::HbmStack;
using hbm::MemoryArray;
using hbm::PcId;

// -------------------------------------------------------------- Geometry

TEST(GeometryTest, Vcu128MatchesBoardSpec) {
  const auto g = HbmGeometry::vcu128();
  EXPECT_TRUE(g.validate().is_ok());
  EXPECT_EQ(g.stacks, 2u);
  EXPECT_EQ(g.pcs_per_stack(), 16u);       // 8 MCs x 2 PCs
  EXPECT_EQ(g.total_pcs(), 32u);           // paper: 32 AXI ports
  EXPECT_EQ(g.bits_per_pc, 1ull << 31);    // 256 MB per PC
  EXPECT_EQ(g.bits_per_stack(), 32ull << 30);  // 4 GB per stack
  EXPECT_EQ(g.total_bits(), 64ull << 30);      // 8 GB total
  // Paper: memSize = 256M beats for the whole HBM = 8M per PC.
  EXPECT_EQ(g.beats_per_pc(), 8ull << 20);
  EXPECT_EQ(g.beats_per_pc() * g.total_pcs(), 256ull << 20);
}

TEST(GeometryTest, DefaultsValidate) {
  EXPECT_TRUE(HbmGeometry::simulation_default().validate().is_ok());
  EXPECT_TRUE(HbmGeometry::test_tiny().validate().is_ok());
}

struct BadGeometryCase {
  const char* name;
  HbmGeometry geometry;
};

class GeometryValidation : public ::testing::TestWithParam<BadGeometryCase> {};

TEST_P(GeometryValidation, RejectsBadConfig) {
  EXPECT_FALSE(GetParam().geometry.validate().is_ok()) << GetParam().name;
}

std::vector<BadGeometryCase> bad_geometries() {
  std::vector<BadGeometryCase> cases;
  {
    auto g = HbmGeometry::test_tiny();
    g.stacks = 0;
    cases.push_back({"zero stacks", g});
  }
  {
    auto g = HbmGeometry::test_tiny();
    g.bits_per_beat = 100;  // not a multiple of 64
    cases.push_back({"beat width", g});
  }
  {
    auto g = HbmGeometry::test_tiny();
    g.bits_per_pc = 1000;  // not a multiple of beat width
    cases.push_back({"capacity", g});
  }
  {
    auto g = HbmGeometry::test_tiny();
    g.banks_per_pc = 0;
    cases.push_back({"banks", g});
  }
  {
    auto g = HbmGeometry::test_tiny();
    g.beats_per_row = 7;  // does not tile beats_per_pc
    cases.push_back({"rows", g});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Bad, GeometryValidation,
                         ::testing::ValuesIn(bad_geometries()),
                         [](const auto& info) {
                           std::string name = info.param.name;
                           for (auto& c : name) {
                             if (c == ' ') c = '_';
                           }
                           return name;
                         });

TEST(GeometryTest, PcIdRoundTrip) {
  const auto g = HbmGeometry::simulation_default();
  for (unsigned global = 0; global < g.total_pcs(); ++global) {
    const PcId id = PcId::from_global(g, global);
    EXPECT_EQ(id.global(g), global);
    EXPECT_LT(id.stack, g.stacks);
    EXPECT_LT(id.index, g.pcs_per_stack());
  }
}

TEST(GeometryTest, PcIdChannelMapping) {
  const auto g = HbmGeometry::simulation_default();
  // Two consecutive PCs share a memory channel.
  EXPECT_EQ((PcId{0, 0}.channel(g)), 0u);
  EXPECT_EQ((PcId{0, 1}.channel(g)), 0u);
  EXPECT_EQ((PcId{0, 2}.channel(g)), 1u);
  EXPECT_EQ((PcId{0, 15}.channel(g)), 7u);
}

TEST(GeometryTest, BeatDecomposeComposeRoundTrip) {
  const auto g = HbmGeometry::simulation_default();
  for (std::uint64_t beat = 0; beat < g.beats_per_pc(); ++beat) {
    const auto loc = hbm::decompose_beat(g, beat);
    EXPECT_LT(loc.bank, g.banks_per_pc);
    EXPECT_LT(loc.row, g.rows_per_bank());
    EXPECT_LT(loc.column, g.beats_per_row);
    EXPECT_EQ(hbm::compose_beat(g, loc), beat);
  }
}

TEST(GeometryTest, ColumnBitsAreLowest) {
  const auto g = HbmGeometry::simulation_default();
  // Consecutive beats within a row differ only in column.
  const auto a = hbm::decompose_beat(g, 0);
  const auto b = hbm::decompose_beat(g, 1);
  EXPECT_EQ(a.bank, b.bank);
  EXPECT_EQ(a.row, b.row);
  EXPECT_EQ(b.column, a.column + 1);
  // Crossing beats_per_row switches bank before row.
  const auto c = hbm::decompose_beat(g, g.beats_per_row);
  EXPECT_EQ(c.bank, 1u);
  EXPECT_EQ(c.row, 0u);
  EXPECT_EQ(c.column, 0u);
}

// ----------------------------------------------------------- MemoryArray

TEST(MemoryArrayTest, BeatsRoundTrip) {
  MemoryArray array(1 << 14, 1);
  const Beat pattern = {0x0123456789ABCDEFull, ~0ull, 0, 0x5555AAAA5555AAAAull};
  array.write_beat(3, pattern);
  EXPECT_EQ(array.read_beat(3), pattern);
}

TEST(MemoryArrayTest, BitAccessorsMatchBeatView) {
  MemoryArray array(1 << 12, 2);
  array.fill(hbm::kBeatAllZeros);
  array.write_bit(256 + 65, true);  // beat 1, word 1, bit 1
  const Beat beat = array.read_beat(1);
  EXPECT_EQ(beat[1], 2ull);
  EXPECT_TRUE(array.read_bit(256 + 65));
  array.write_bit(256 + 65, false);
  EXPECT_FALSE(array.read_bit(256 + 65));
}

TEST(MemoryArrayTest, PowerUpContentIsSeedDeterministic) {
  MemoryArray a(1 << 12, 42);
  MemoryArray b(1 << 12, 42);
  MemoryArray c(1 << 12, 43);
  EXPECT_EQ(a.read_beat(0), b.read_beat(0));
  EXPECT_NE(a.read_beat(0), c.read_beat(0));
}

TEST(MemoryArrayTest, FillCoversWholeArray) {
  MemoryArray array(1 << 12, 3);
  array.fill(hbm::kBeatAllOnes);
  for (std::uint64_t beat = 0; beat < array.beats(); ++beat) {
    EXPECT_EQ(array.read_beat(beat), hbm::kBeatAllOnes);
  }
}

TEST(MemoryArrayTest, ScrambleLosesData) {
  MemoryArray array(1 << 12, 4);
  array.fill(hbm::kBeatAllOnes);
  array.scramble(99);
  bool all_ones = true;
  for (std::uint64_t beat = 0; beat < array.beats() && all_ones; ++beat) {
    all_ones = array.read_beat(beat) == hbm::kBeatAllOnes;
  }
  EXPECT_FALSE(all_ones);
}

TEST(MemoryArrayTest, BackingStoreIsLazy) {
  MemoryArray array(1 << 12, 5);
  EXPECT_FALSE(array.materialized());
  // First touch materializes and yields the same power-up contents an
  // eager twin would have had.
  MemoryArray twin(1 << 12, 5);
  (void)twin.words();
  EXPECT_EQ(array.read_beat(2), twin.read_beat(2));
  EXPECT_TRUE(array.materialized());
  // Scramble drops the store again; contents still follow the new seed.
  array.scramble(77);
  EXPECT_FALSE(array.materialized());
  MemoryArray reseeded(1 << 12, 77);
  EXPECT_EQ(array.read_beat(0), reseeded.read_beat(0));
}

TEST(MemoryArrayTest, WholeArrayFillSkipsPowerUpScramble) {
  MemoryArray array(1 << 12, 6);
  ASSERT_FALSE(array.materialized());
  array.fill(hbm::kBeatAllOnes);  // no point scrambling: all overwritten
  EXPECT_TRUE(array.materialized());
  for (std::uint64_t beat = 0; beat < array.beats(); ++beat) {
    ASSERT_EQ(array.read_beat(beat), hbm::kBeatAllOnes);
  }
}

TEST(MemoryArrayTest, FillRangeMatchesPerBeatWrites) {
  MemoryArray bulk(1 << 12, 7);
  MemoryArray reference(1 << 12, 7);
  const auto pattern = hbm::WordPattern::hashed(31);
  bulk.fill_range(3, 5, pattern);
  for (std::uint64_t beat = 3; beat < 8; ++beat) {
    Beat data;
    for (unsigned w = 0; w < 4; ++w) data[w] = pattern.word(beat * 4 + w);
    reference.write_beat(beat, data);
  }
  for (std::uint64_t beat = 0; beat < bulk.beats(); ++beat) {
    ASSERT_EQ(bulk.read_beat(beat), reference.read_beat(beat)) << beat;
  }
}

TEST(MemoryArrayTest, CompareRangeCountsFlipsAndDiffs) {
  MemoryArray array(1 << 12, 8);
  array.fill(hbm::kBeatAllZeros);
  array.write_bit(4 * 256 + 7, true);    // beat 4: one 0->1 "flip"
  array.write_bit(6 * 256 + 200, true);  // beat 6
  const auto zeros = hbm::WordPattern::repeat(hbm::kBeatAllZeros);
  std::vector<std::uint64_t> diff(array.beats() * 4, 0);
  const auto flips = array.compare_range(0, array.beats(), zeros, diff.data());
  EXPECT_EQ(flips.flips_0to1, 2u);
  EXPECT_EQ(flips.flips_1to0, 0u);
  EXPECT_EQ(flips.mismatched_beats, 2u);
  EXPECT_EQ(diff[4 * 4 + 0], 1ull << 7);
  EXPECT_EQ(diff[6 * 4 + 3], 1ull << (200 - 192));
  // Against all-ones, every other bit is a 1->0 flip.
  const auto ones = hbm::WordPattern::repeat(hbm::kBeatAllOnes);
  const auto inverse = array.compare_range(0, array.beats(), ones);
  EXPECT_EQ(inverse.flips_1to0, (1u << 12) - 2);
  EXPECT_EQ(inverse.mismatched_beats, array.beats());
}

// ----------------------------------------------------------------- Stack

class StackTest : public ::testing::Test {
 protected:
  StackTest()
      : geometry_(HbmGeometry::test_tiny()),
        injector_(faults::FaultModel(geometry_, make_fault_config())),
        stack_(geometry_, 0, injector_, 7) {}

  static faults::FaultModelConfig make_fault_config() {
    return faults::FaultModelConfig{};  // paper-calibrated defaults
  }

  void set_voltage(Millivolts v) {
    injector_.set_voltage(v);
    stack_.on_voltage_change(v);
  }

  HbmGeometry geometry_;
  faults::FaultInjector injector_;
  HbmStack stack_;
};

TEST_F(StackTest, StartsOperationalAtNominal) {
  EXPECT_EQ(stack_.state(), HbmStack::State::kOperational);
  EXPECT_TRUE(stack_.responding());
}

TEST_F(StackTest, WriteReadRoundTripAtNominal) {
  const Beat pattern = {1, 2, 3, 4};
  ASSERT_TRUE(stack_.write_beat(5, 17, pattern).is_ok());
  auto data = stack_.read_beat(5, 17);
  ASSERT_TRUE(data.is_ok());
  EXPECT_EQ(data.value(), pattern);
}

TEST_F(StackTest, OutOfRangeAccessRejected) {
  EXPECT_EQ(stack_.write_beat(99, 0, hbm::kBeatAllOnes).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(stack_.write_beat(0, geometry_.beats_per_pc(), hbm::kBeatAllOnes)
                .code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(stack_.read_beat(0, geometry_.beats_per_pc()).status().code(),
            StatusCode::kOutOfRange);
}

TEST_F(StackTest, CrashesBelowCritical) {
  set_voltage(Millivolts{800});
  EXPECT_EQ(stack_.state(), HbmStack::State::kCrashed);
  EXPECT_EQ(stack_.write_beat(0, 0, hbm::kBeatAllOnes).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(stack_.read_beat(0, 0).status().code(), StatusCode::kUnavailable);
}

TEST_F(StackTest, CrashLatchesAcrossVoltageRestore) {
  set_voltage(Millivolts{800});
  set_voltage(Millivolts{1200});
  EXPECT_EQ(stack_.state(), HbmStack::State::kCrashed);
}

TEST_F(StackTest, PowerCycleRecoversFromCrash) {
  set_voltage(Millivolts{800});
  set_voltage(Millivolts{0});
  EXPECT_EQ(stack_.state(), HbmStack::State::kPoweredOff);
  set_voltage(Millivolts{1200});
  EXPECT_EQ(stack_.state(), HbmStack::State::kOperational);
}

TEST_F(StackTest, PowerLossScramblesContents) {
  ASSERT_TRUE(stack_.write_beat(0, 0, hbm::kBeatAllOnes).is_ok());
  set_voltage(Millivolts{0});
  set_voltage(Millivolts{1200});
  auto data = stack_.read_beat(0, 0);
  ASSERT_TRUE(data.is_ok());
  EXPECT_NE(data.value(), hbm::kBeatAllOnes);
}

TEST_F(StackTest, PoweredOffRejectsAccess) {
  set_voltage(Millivolts{0});
  EXPECT_EQ(stack_.read_beat(0, 0).status().code(), StatusCode::kUnavailable);
}

TEST_F(StackTest, GuardbandVoltageReadsAreClean) {
  const Beat pattern = hbm::kBeatAllOnes;
  set_voltage(Millivolts{980});
  for (unsigned pc = 0; pc < geometry_.pcs_per_stack(); ++pc) {
    ASSERT_TRUE(stack_.write_beat(pc, 0, pattern).is_ok());
    auto data = stack_.read_beat(pc, 0);
    ASSERT_TRUE(data.is_ok());
    EXPECT_EQ(data.value(), pattern) << "PC " << pc;
  }
}

TEST_F(StackTest, DeepUndervoltFlipsBits) {
  set_voltage(Millivolts{850});
  std::uint64_t flips = 0;
  for (unsigned pc = 0; pc < geometry_.pcs_per_stack(); ++pc) {
    for (std::uint64_t beat = 0; beat < geometry_.beats_per_pc(); ++beat) {
      ASSERT_TRUE(stack_.write_beat(pc, beat, hbm::kBeatAllOnes).is_ok());
      auto data = stack_.read_beat(pc, beat);
      ASSERT_TRUE(data.is_ok());
      for (int w = 0; w < 4; ++w) {
        flips += static_cast<unsigned>(
            __builtin_popcountll(~data.value()[w]));
      }
    }
  }
  EXPECT_GT(flips, 0u);
}

TEST_F(StackTest, GlobalPcIndexing) {
  HbmStack stack1(geometry_, 1, injector_, 8);
  EXPECT_EQ(stack_.global_pc(3), 3u);
  EXPECT_EQ(stack1.global_pc(3), geometry_.pcs_per_stack() + 3);
}

// -------------------------------------------------------------- IP core

class IpCoreTest : public StackTest {
 protected:
  IpCoreTest() : controller_(stack_), ip_(controller_, Celsius{35.0}) {}

  axi::StackController controller_;
  hbm::HbmIpCore ip_;
};

TEST_F(IpCoreTest, IdAndStatus) {
  EXPECT_EQ(ip_.read(hbm::HbmIpCore::kRegId).value(),
            hbm::HbmIpCore::kIdValue);
  const auto status = ip_.read(hbm::HbmIpCore::kRegStatus).value();
  EXPECT_TRUE(status & hbm::HbmIpCore::kStatusInitDone);
  EXPECT_TRUE(status & hbm::HbmIpCore::kStatusResponding);
  EXPECT_FALSE(status & hbm::HbmIpCore::kStatusCattrip);
}

TEST_F(IpCoreTest, PortEnableRegisterDrivesController) {
  ASSERT_TRUE(ip_.write(hbm::HbmIpCore::kRegPortEnable, 0x0F0F).is_ok());
  EXPECT_EQ(controller_.enabled_ports(), 8u);
  EXPECT_EQ(ip_.read(hbm::HbmIpCore::kRegPortEnable).value(), 0x0F0Fu);
}

TEST_F(IpCoreTest, CtrlSwitchEnableAndSoftReset) {
  ASSERT_TRUE(ip_.write(hbm::HbmIpCore::kRegCtrl,
                        hbm::HbmIpCore::kCtrlSwitchEnable)
                  .is_ok());
  EXPECT_TRUE(controller_.switch_network().enabled());
  EXPECT_TRUE(ip_.read(hbm::HbmIpCore::kRegCtrl).value() &
              hbm::HbmIpCore::kCtrlSwitchEnable);

  // Route a port, then soft-reset: stats and routes clear.
  ASSERT_TRUE(controller_.switch_network().route(0, 5).is_ok());
  controller_.set_enabled_count(2);
  (void)controller_.run({axi::MacroOp::kWrite, 0, 4, hbm::kBeatAllOnes,
                         false});
  ASSERT_TRUE(ip_.write(hbm::HbmIpCore::kRegCtrl,
                        hbm::HbmIpCore::kCtrlSoftReset)
                  .is_ok());
  EXPECT_EQ(controller_.aggregate_stats().beats_written, 0u);
  EXPECT_EQ(controller_.switch_network().target_pc(0), 0u);
}

TEST_F(IpCoreTest, BeatCountersAccumulate) {
  controller_.set_enabled_count(2);
  (void)controller_.run({axi::MacroOp::kWriteRead, 0, 8, hbm::kBeatAllOnes,
                         false});
  const std::uint64_t beats =
      ip_.read(hbm::HbmIpCore::kRegBeatCountLo).value() |
      (static_cast<std::uint64_t>(
           ip_.read(hbm::HbmIpCore::kRegBeatCountHi).value())
       << 32);
  EXPECT_EQ(beats, 2u * 8 * 2);  // 2 ports x 8 beats x (write+read)
}

TEST_F(IpCoreTest, TemperatureAndCattrip) {
  EXPECT_EQ(ip_.read(hbm::HbmIpCore::kRegTemperature).value(), 35u);
  ip_.set_temperature(Celsius{106.0});
  EXPECT_EQ(ip_.read(hbm::HbmIpCore::kRegTemperature).value(), 106u);
  EXPECT_TRUE(ip_.read(hbm::HbmIpCore::kRegStatus).value() &
              hbm::HbmIpCore::kStatusCattrip);
}

TEST_F(IpCoreTest, SlverrCounterSeesCrash) {
  set_voltage(Millivolts{800});
  controller_.set_enabled_count(1);
  (void)controller_.run({axi::MacroOp::kWrite, 0, 1, hbm::kBeatAllOnes,
                         false});
  EXPECT_GT(ip_.read(hbm::HbmIpCore::kRegSlverrCount).value(), 0u);
  const auto status = ip_.read(hbm::HbmIpCore::kRegStatus).value();
  EXPECT_FALSE(status & hbm::HbmIpCore::kStatusResponding);
}

TEST_F(IpCoreTest, ReadOnlyAndUnknownRegisters) {
  EXPECT_EQ(ip_.write(hbm::HbmIpCore::kRegId, 1).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ip_.write(hbm::HbmIpCore::kRegStatus, 1).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ip_.read(0x100).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(ip_.write(0x100, 0).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace hbmvolt
