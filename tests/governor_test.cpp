// Tests for the adaptive undervolting governor.

#include <gtest/gtest.h>

#include "chaos/chaos.hpp"
#include "core/governor.hpp"

namespace hbmvolt {
namespace {

using core::GovernorConfig;
using core::GovernorResult;
using core::GovernorStep;
using core::UndervoltGovernor;

board::BoardConfig tiny_board() {
  board::BoardConfig config;
  config.geometry = hbm::HbmGeometry::test_tiny();
  config.monitor_config.noise_sigma_amps = 0.0;
  return config;
}

GovernorConfig fast_governor() {
  GovernorConfig config;
  config.probe_beats = 0;  // replaced per test
  config.probe_beats = 64;
  config.settle_probes = 2;
  return config;
}

TEST(GovernorTest, ZeroToleranceSettlesAtGuardbandEdge) {
  board::Vcu128Board board(tiny_board());
  GovernorConfig config = fast_governor();
  config.tolerable_rate = 0.0;
  // Probe the whole PC so every stuck cell is visible to the probe.
  config.probe_beats = board.geometry().beats_per_pc();
  UndervoltGovernor governor(board, config);
  auto result = governor.run();
  ASSERT_TRUE(result.is_ok());
  const GovernorResult& r = result.value();
  EXPECT_TRUE(r.converged);
  // First fault at 0.97V, one-step backoff -> settle at 0.98V = V_min.
  EXPECT_EQ(r.settled.value, 980);
  EXPECT_NEAR(r.savings_factor, 1.5, 0.01);
  // The board is left at the settled voltage and operational.
  EXPECT_EQ(board.hbm_voltage().value, 980);
  EXPECT_TRUE(board.responding());
}

TEST(GovernorTest, ToleranceBuysDepth) {
  board::Vcu128Board board(tiny_board());
  GovernorConfig strict = fast_governor();
  strict.tolerable_rate = 0.0;
  strict.probe_beats = board.geometry().beats_per_pc();
  auto strict_result = UndervoltGovernor(board, strict).run();
  ASSERT_TRUE(strict_result.is_ok());

  GovernorConfig loose = fast_governor();
  loose.tolerable_rate = 1e-3;
  loose.probe_beats = board.geometry().beats_per_pc();
  auto loose_result = UndervoltGovernor(board, loose).run();
  ASSERT_TRUE(loose_result.is_ok());

  EXPECT_LT(loose_result.value().settled.value,
            strict_result.value().settled.value);
  EXPECT_GT(loose_result.value().savings_factor,
            strict_result.value().savings_factor);
}

TEST(GovernorTest, FloorStopsDescent) {
  board::Vcu128Board board(tiny_board());
  GovernorConfig config = fast_governor();
  config.tolerable_rate = 1.0;  // tolerate anything
  config.floor = Millivolts{900};
  UndervoltGovernor governor(board, config);
  auto result = governor.run();
  ASSERT_TRUE(result.is_ok());
  EXPECT_TRUE(result.value().converged);
  EXPECT_EQ(result.value().settled.value, 900);
}

TEST(GovernorTest, CrashRecoveryHoldsAboveCriticalRegion) {
  board::Vcu128Board board(tiny_board());
  GovernorConfig config = fast_governor();
  config.tolerable_rate = 1.0;  // rides all the way into the crash
  config.floor = Millivolts{790};
  UndervoltGovernor governor(board, config);
  auto result = governor.run();
  ASSERT_TRUE(result.is_ok());
  const GovernorResult& r = result.value();
  EXPECT_TRUE(r.converged);
  // A crash happened somewhere in the trace...
  bool saw_crash = false;
  for (const auto& step : r.trace) {
    saw_crash = saw_crash || step.crashed;
  }
  EXPECT_TRUE(saw_crash);
  // ...and the governor recovered to a working voltage.
  EXPECT_TRUE(board.responding());
  EXPECT_GE(r.settled.value, 810);
}

TEST(GovernorTest, TraceIsWellFormed) {
  board::Vcu128Board board(tiny_board());
  GovernorConfig config = fast_governor();
  config.probe_beats = board.geometry().beats_per_pc();
  UndervoltGovernor governor(board, config);
  auto result = governor.run();
  ASSERT_TRUE(result.is_ok());
  const auto& trace = result.value().trace;
  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(trace.front().voltage.value, 1200);
  // Voltages only move in step_mv quanta.
  for (const auto& step : trace) {
    EXPECT_EQ((1200 - step.voltage.value) % config.step_mv, 0);
  }
  EXPECT_EQ(result.value().probes, trace.size());
}

TEST(GovernorTest, SpuriousCrashesDoNotInflateSettledVoltage) {
  // A chaos-injected spurious crash is indistinguishable from a genuine
  // undervolt crash at the moment it happens.  The crash watchdog
  // (power-cycle + recheck at the same voltage) must tell them apart, so
  // the governor settles exactly where the chaos-free run does instead
  // of backing off from phantom crashes.
  GovernorConfig config = fast_governor();
  config.tolerable_rate = 0.0;

  board::Vcu128Board clean_board(tiny_board());
  config.probe_beats = clean_board.geometry().beats_per_pc();
  auto clean = UndervoltGovernor(clean_board, config).run();
  ASSERT_TRUE(clean.is_ok());

  board::Vcu128Board board(tiny_board());
  chaos::ChaosConfig chaos_config;
  chaos_config.seed = 77;
  chaos_config.spurious_crash_rate = 0.2;
  chaos::ChaosInjector injector(board, chaos_config);
  auto stormy = UndervoltGovernor(board, config).run();
  ASSERT_TRUE(stormy.is_ok()) << stormy.status().to_string();

  EXPECT_TRUE(stormy.value().converged);
  EXPECT_EQ(stormy.value().settled.value, clean.value().settled.value)
      << "spurious crashes inflated the settled voltage";
  EXPECT_GT(injector.injected(chaos::FaultKind::kSpuriousCrash), 0u);
  // The recoveries are visible in the trace as retry steps.
  bool saw_retry = false;
  for (const auto& step : stormy.value().trace) {
    if (step.action == GovernorStep::Action::kRetry) {
      EXPECT_TRUE(step.spurious);
      EXPECT_TRUE(step.crashed);
      saw_retry = true;
    }
  }
  EXPECT_TRUE(saw_retry);
  EXPECT_TRUE(board.responding());
}

TEST(GovernorTest, ProbeBudgetBoundsRuntime) {
  board::Vcu128Board board(tiny_board());
  GovernorConfig config = fast_governor();
  config.max_probes = 3;
  config.settle_probes = 100;  // can never settle
  UndervoltGovernor governor(board, config);
  auto result = governor.run();
  ASSERT_TRUE(result.is_ok());
  EXPECT_FALSE(result.value().converged);
  EXPECT_EQ(result.value().probes, 3u);
}

}  // namespace
}  // namespace hbmvolt
