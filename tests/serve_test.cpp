// Multi-tenant request plane: admission control, deadlines, retry
// budgets, and brownout shedding over the ServingFleet.
//
// The headline claims pinned here:
//
//  * Accounting conservation: every beat of tenant demand ends up in
//    exactly one bucket (served / hedged / stale / shed.*) -- nothing is
//    silently dropped.
//  * Determinism: fleet and tenant fingerprints are byte-identical at
//    any thread count, chaos on or off.
//  * QoS under a whole-PC kill at 950 mV: guaranteed tenants keep their
//    model-latency SLO with zero corrupt reads (journal hedge), while
//    best-effort tenants show nonzero brownout shed.
//  * Retry budgets are a hard per-(slot, tenant) bound, so fault storms
//    cannot amplify retries.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "board/vcu128.hpp"
#include "chaos/chaos.hpp"
#include "runtime/fleet.hpp"
#include "runtime/health.hpp"
#include "serve/plane.hpp"
#include "serve/tenant.hpp"

namespace hbmvolt {
namespace {

using serve::PlaneConfig;
using serve::QosClass;
using serve::RequestPlane;
using serve::TenantSpec;
using serve::TenantStats;
using serve::WorkloadMix;

board::BoardConfig tiny_board() {
  board::BoardConfig config;
  config.geometry = hbm::HbmGeometry::test_tiny();
  config.monitor_config.noise_sigma_amps = 0.0;
  return config;
}

PlaneConfig plane_config(std::uint64_t seed) {
  PlaneConfig config;
  config.tenants = serve::make_tenant_set(
      4,
      {WorkloadMix::kZipfian, WorkloadMix::kStreaming,
       WorkloadMix::kPointerChase, WorkloadMix::kUniform},
      /*ops=*/1500, /*footprint_beats=*/256, /*quota_per_epoch=*/128);
  config.seed = seed;
  config.chunk_beats = 16;
  return config;
}

runtime::FleetConfig fleet_config(RequestPlane& plane, unsigned threads,
                                  std::uint64_t seed) {
  runtime::FleetConfig config;
  config.scheme = mitigate::MitigationKind::kSecded;
  config.ops_per_epoch = 64;
  config.seed = seed;
  config.threads = threads;
  config.source = &plane;
  return config;
}

// ---------------------------------------------------------------------------
// Tenant model
// ---------------------------------------------------------------------------

TEST(TenantTest, ParseQosAndMixNameAcceptedValues) {
  EXPECT_EQ(serve::parse_qos("guaranteed").value(), QosClass::kGuaranteed);
  EXPECT_EQ(serve::parse_qos("best_effort").value(), QosClass::kBestEffort);
  const auto bad_qos = serve::parse_qos("gold");
  ASSERT_FALSE(bad_qos.is_ok());
  EXPECT_NE(bad_qos.status().message().find("guaranteed"), std::string::npos);

  EXPECT_EQ(serve::parse_mix("zipfian").value(), WorkloadMix::kZipfian);
  EXPECT_EQ(serve::parse_mix("pointer_chase").value(),
            WorkloadMix::kPointerChase);
  const auto bad_mix = serve::parse_mix("random");
  ASSERT_FALSE(bad_mix.is_ok());
  EXPECT_NE(bad_mix.status().message().find("streaming"), std::string::npos);
}

TEST(TenantTest, MakeTenantSetAlternatesQosAndCyclesMixes) {
  const std::vector<TenantSpec> set = serve::make_tenant_set(
      4, {WorkloadMix::kZipfian, WorkloadMix::kUniform}, 1024, 128, 64);
  ASSERT_EQ(set.size(), 4u);
  EXPECT_EQ(set[0].qos, QosClass::kGuaranteed);
  EXPECT_EQ(set[1].qos, QosClass::kBestEffort);
  EXPECT_EQ(set[2].qos, QosClass::kGuaranteed);
  EXPECT_EQ(set[0].mix, WorkloadMix::kZipfian);
  EXPECT_EQ(set[1].mix, WorkloadMix::kUniform);
  EXPECT_EQ(set[2].mix, WorkloadMix::kZipfian);
  EXPECT_EQ(set[3].name, "t3");
  EXPECT_EQ(set[0].burst_tokens, 128u);
}

// ---------------------------------------------------------------------------
// Accounting conservation
// ---------------------------------------------------------------------------

TEST(RequestPlaneTest, ServesEveryMixToCompletionWithConservedAccounting) {
  board::Vcu128Board board(tiny_board());
  RequestPlane plane(plane_config(11));
  runtime::FleetConfig config = fleet_config(plane, 1, 11);
  config.pcs = {0, 1, 2, 3, 4, 5, 6, 7};
  runtime::ServingFleet fleet(board, config);

  auto result = fleet.run();
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const runtime::FleetReport& report = result.value();

  EXPECT_EQ(report.corrupt_reads, 0u);
  EXPECT_TRUE(plane.exhausted());
  EXPECT_NE(report.tenant_fingerprint, 0u);
  EXPECT_NE(report.fingerprint, 0u);

  for (std::size_t t = 0; t < plane.tenant_count(); ++t) {
    const TenantStats& s = plane.stats(t);
    // The generators may round the demand; the spec records the realized
    // trace size, and by completion every record was offered exactly once.
    EXPECT_EQ(s.demand, plane.spec(t).ops) << "tenant " << t;
    // Demand splits into admitted + admission-time sheds...
    EXPECT_EQ(s.demand, s.admitted + s.shed_admission + s.shed_brownout)
        << "tenant " << t;
    // ...and every admitted beat lands in exactly one outcome bucket.
    EXPECT_EQ(s.admitted, s.served_reads + s.served_writes + s.hedged +
                              s.stale_served + s.shed_hot_shard +
                              s.shed_queue + s.shed_deadline)
        << "tenant " << t;
    EXPECT_GT(s.served_reads + s.served_writes, 0u) << "tenant " << t;
    EXPECT_GT(plane.latency(t).count(), 0u) << "tenant " << t;
  }

  // The source mode appends the shed-rate burn alert to the defaults.
  bool found = false;
  for (const telemetry::AlertRule& rule : fleet.alerts().rules()) {
    found = found || rule.name == "shed_burn";
  }
  EXPECT_TRUE(found) << "source mode must install the shed_burn rule";
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

TEST(RequestPlaneTest, FingerprintsInvariantAcrossThreadsAndChaos) {
  struct Run {
    std::uint64_t fleet_fp = 0;
    std::uint64_t tenant_fp = 0;
  };
  const auto run_once = [](unsigned threads, bool with_chaos) {
    board::Vcu128Board board(tiny_board());
    chaos::ChaosConfig chaos_config;
    chaos_config.seed = 404;
    if (with_chaos) {
      chaos_config.bit_rot_rate = 5e-4;
      chaos_config.pc_kill_rate = 2e-4;
      chaos_config.tenant_surge_rate = 0.05;
      chaos_config.surge_multiplier = 4;
    }
    chaos::ChaosInjector injector(board, chaos_config);
    PlaneConfig pc = plane_config(21);
    pc.chaos = &injector;
    RequestPlane plane(pc);
    runtime::FleetConfig config = fleet_config(plane, threads, 21);
    if (with_chaos) {
      config.storm_hook = [&injector](unsigned pc_global, std::uint64_t tick) {
        return injector.storm_tick(pc_global, tick);
      };
    }
    runtime::ServingFleet fleet(board, config);
    auto result = fleet.run();
    EXPECT_TRUE(result.is_ok()) << result.status().to_string();
    EXPECT_EQ(result.value().corrupt_reads, 0u);
    return Run{result.value().fingerprint, result.value().tenant_fingerprint};
  };

  for (const bool with_chaos : {false, true}) {
    const Run serial = run_once(1, with_chaos);
    const Run parallel = run_once(4, with_chaos);
    EXPECT_EQ(serial.fleet_fp, parallel.fleet_fp)
        << "chaos=" << with_chaos << ": fleet fingerprint diverged";
    EXPECT_EQ(serial.tenant_fp, parallel.tenant_fp)
        << "chaos=" << with_chaos << ": tenant fingerprint diverged";
    EXPECT_NE(serial.tenant_fp, 0u);
  }
}

// ---------------------------------------------------------------------------
// Brownout QoS: whole-PC kill at 950 mV
// ---------------------------------------------------------------------------

TEST(RequestPlaneTest, KillAt950KeepsGuaranteedSloAndShedsBestEffort) {
  board::Vcu128Board board(tiny_board());
  ASSERT_TRUE(board.set_hbm_voltage(Millivolts{950}).is_ok());

  PlaneConfig pc = plane_config(42);
  RequestPlane plane(pc);
  runtime::FleetConfig config = fleet_config(plane, 1, 42);
  config.pcs = {0, 1, 2, 3};
  // Kill global PC 0 from its own worker a few requests in -- the same
  // PC-local mutation discipline as ChaosInjector::storm_tick.
  config.storm_hook = [&board](unsigned pc_global, std::uint64_t tick) {
    if (pc_global == 0 && tick == 5) {
      const hbm::PcId id = hbm::PcId::from_global(board.geometry(), 0);
      board.stack(id.stack).kill_pc(id.index);
    }
    return false;
  };
  runtime::ServingFleet fleet(board, config);

  auto result = fleet.run();
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const runtime::FleetReport& report = result.value();

  // The headline invariant survives the kill.
  EXPECT_EQ(report.corrupt_reads, 0u);
  // An unstriped device loss means no silicon redundancy: level 2.
  EXPECT_EQ(plane.brownout_level(), 2u);

  std::uint64_t guaranteed_hedged = 0;
  std::uint64_t best_effort_brownout_shed = 0;
  for (std::size_t t = 0; t < plane.tenant_count(); ++t) {
    const TenantStats& s = plane.stats(t);
    if (plane.spec(t).qos == QosClass::kGuaranteed) {
      guaranteed_hedged += s.hedged;
      // Guaranteed tenants are never brownout-shed and keep their SLO:
      // the journal hedge replaces the lost device's slow path.
      EXPECT_EQ(s.shed_brownout, 0u) << "tenant " << t;
      EXPECT_TRUE(plane.slo_met(t))
          << "tenant " << t << " p99 " << plane.latency(t).quantiles().p99
          << " over SLO " << plane.spec(t).slo_model_ns;
    } else {
      best_effort_brownout_shed += s.shed_brownout;
    }
  }
  EXPECT_GT(guaranteed_hedged, 0u)
      << "guaranteed traffic on the dead slot must hedge to the journal";
  EXPECT_GT(best_effort_brownout_shed, 0u)
      << "best-effort demand must shed during the level-2 brownout";
}

// ---------------------------------------------------------------------------
// Tenant-surge storms
// ---------------------------------------------------------------------------

TEST(RequestPlaneTest, TenantSurgeShedsExcessAtAdmission) {
  board::Vcu128Board board(tiny_board());
  chaos::ChaosConfig chaos_config;
  chaos_config.tenant_surge_rate = 1.0;  // every (tenant, epoch) surges
  chaos_config.surge_multiplier = 4;
  chaos::ChaosInjector injector(board, chaos_config);

  PlaneConfig pc = plane_config(7);
  for (TenantSpec& spec : pc.tenants) {
    spec.burst_tokens = spec.quota_per_epoch;  // no burst headroom
  }
  pc.chaos = &injector;
  RequestPlane plane(pc);
  runtime::FleetConfig config = fleet_config(plane, 1, 7);
  runtime::ServingFleet fleet(board, config);

  auto result = fleet.run();
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value().corrupt_reads, 0u);
  EXPECT_GT(injector.injected(chaos::FaultKind::kTenantSurge), 0u);

  for (std::size_t t = 0; t < plane.tenant_count(); ++t) {
    const TenantStats& s = plane.stats(t);
    EXPECT_GT(s.surges, 0u) << "tenant " << t;
    // A 4x surge against a bucket with no burst headroom must shed.
    EXPECT_GT(s.shed_admission, 0u) << "tenant " << t;
    EXPECT_EQ(s.demand, s.admitted + s.shed_admission + s.shed_brownout)
        << "tenant " << t;
  }
}

// ---------------------------------------------------------------------------
// Retry budgets
// ---------------------------------------------------------------------------

TEST(RequestPlaneTest, RetryBudgetIsABoundedPerSlotSlice) {
  board::Vcu128Board board(tiny_board());
  PlaneConfig pc;
  TenantSpec spec;
  spec.name = "t0";
  spec.mix = WorkloadMix::kUniform;
  spec.ops = 1024;
  spec.footprint_beats = 256;
  spec.quota_per_epoch = 256;
  spec.burst_tokens = 256;
  pc.tenants = {spec};
  pc.seed = 3;
  pc.chunk_beats = 16;
  pc.retry_budget_fraction = 0.10;
  RequestPlane plane(pc);

  // A bare fleet binds the plane's geometry; no run() needed to probe
  // the serial admission step directly.
  runtime::FleetConfig config;
  config.seed = 3;
  runtime::ServingFleet fleet(board, config);
  plane.begin_epoch(fleet, 1);

  bool probed = false;
  for (std::size_t slot = 0; slot < fleet.channels(); ++slot) {
    if (plane.front(slot) == nullptr) continue;
    probed = true;
    std::uint64_t spends = 0;
    while (plane.spend_retry(slot, 0)) ++spends;
    // The slice is max(2, ~10% of the beats queued on the slot): a storm
    // can never burn more escalation rounds than that here.
    EXPECT_GE(spends, 2u) << "slot " << slot;
    EXPECT_LE(spends, 256 / 10 + 2) << "slot " << slot;
    EXPECT_FALSE(plane.spend_retry(slot, 0)) << "budget must stay dry";
  }
  EXPECT_TRUE(probed) << "admission must have queued work somewhere";
}

// ---------------------------------------------------------------------------
// Observability surfaces
// ---------------------------------------------------------------------------

TEST(RequestPlaneTest, HealthDashboardAndJsonExposeTenantRows) {
  board::Vcu128Board board(tiny_board());
  RequestPlane plane(plane_config(5));
  runtime::FleetConfig config = fleet_config(plane, 2, 5);
  config.pcs = {0, 1, 2, 3};
  runtime::ServingFleet fleet(board, config);
  auto result = fleet.run();
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();

  const std::vector<runtime::TenantHealth>& rows = fleet.health().tenants();
  ASSERT_EQ(rows.size(), plane.tenant_count());
  EXPECT_EQ(rows[0].name, "t0");
  EXPECT_EQ(rows[0].qos, "guaranteed");
  EXPECT_EQ(rows[1].qos, "best_effort");
  EXPECT_GT(rows[0].served, 0u);

  const std::string json = fleet.health().to_json();
  EXPECT_NE(json.find("\"tenants\":["), std::string::npos);
  EXPECT_NE(json.find("\"slo_ok\""), std::string::npos);

  const std::string dashboard = runtime::render_dashboard(fleet.health());
  EXPECT_NE(dashboard.find("tenant"), std::string::npos);
  EXPECT_NE(dashboard.find("t0"), std::string::npos);

  const std::string plane_json = plane.to_json();
  EXPECT_NE(plane_json.find("\"qos\""), std::string::npos);
  EXPECT_NE(plane_json.find("\"fingerprint\""), std::string::npos);
}

}  // namespace
}  // namespace hbmvolt
