// Equivalence suite for the batched beat-range engine: every observable
// of the batched path (TgStats field by field, stored array words, fault
// fingerprints, March results) must be byte-identical to the per-beat
// reference loop, across pattern kinds, voltages (empty / sparse / dense
// overlays), range offsets, and macro ops.
//
// The tests run "twin universes": two identical injector+stack pairs
// built from the same seeds, one driven through the batched engine and
// one forced onto the per-beat loop with EnginePath::kPerBeat.

#include <gtest/gtest.h>

#include "axi/traffic_gen.hpp"
#include "board/vcu128.hpp"
#include "core/reliability_tester.hpp"
#include "faults/fault_map.hpp"
#include "hbm/stack.hpp"
#include "hbm/word_pattern.hpp"
#include "memtest/march.hpp"

namespace hbmvolt {
namespace {

using axi::EnginePath;
using axi::MacroOp;
using axi::PatternKind;
using axi::TgCommand;
using axi::TgStats;
using axi::TrafficGenerator;
using board::BoardConfig;
using board::Vcu128Board;
using hbm::HbmGeometry;

void expect_stats_eq(const TgStats& batched, const TgStats& reference,
                     const std::string& what) {
  EXPECT_EQ(batched.beats_written, reference.beats_written) << what;
  EXPECT_EQ(batched.beats_read, reference.beats_read) << what;
  EXPECT_EQ(batched.flips_1to0, reference.flips_1to0) << what;
  EXPECT_EQ(batched.flips_0to1, reference.flips_0to1) << what;
  EXPECT_EQ(batched.bits_checked, reference.bits_checked) << what;
  EXPECT_EQ(batched.slverr, reference.slverr) << what;
  EXPECT_EQ(batched.busy_time, reference.busy_time) << what;
}

/// Two identical universes: (a) runs the batched engine, (b) the per-beat
/// reference.  Anything observable must stay in lockstep.
class TwinTest : public ::testing::Test {
 protected:
  TwinTest()
      : geometry_(HbmGeometry::test_tiny()),
        injector_a_(faults::FaultModel(geometry_, faults::FaultModelConfig{})),
        injector_b_(faults::FaultModel(geometry_, faults::FaultModelConfig{})),
        stack_a_(geometry_, 0, injector_a_, 3),
        stack_b_(geometry_, 0, injector_b_, 3) {}

  void set_voltage(Millivolts v) {
    injector_a_.set_voltage(v);
    stack_a_.on_voltage_change(v);
    injector_b_.set_voltage(v);
    stack_b_.on_voltage_change(v);
  }

  /// Runs `command` through both universes on `pc` and checks stats and
  /// stored contents stay identical.
  void run_twin(unsigned pc, const TgCommand& command,
                const std::string& what) {
    TrafficGenerator batched(stack_a_, pc);
    TrafficGenerator reference(stack_b_, pc);
    reference.set_engine(EnginePath::kPerBeat);
    const Status status_a = batched.run(command);
    const Status status_b = reference.run(command);
    EXPECT_EQ(status_a.code(), status_b.code()) << what;
    expect_stats_eq(batched.stats(), reference.stats(), what);
    const auto words_a = stack_a_.array(pc).words();
    const auto words_b = stack_b_.array(pc).words();
    ASSERT_EQ(words_a.size(), words_b.size());
    for (std::size_t i = 0; i < words_a.size(); ++i) {
      ASSERT_EQ(words_a[i], words_b[i]) << what << " word " << i;
    }
  }

  HbmGeometry geometry_;
  faults::FaultInjector injector_a_;
  faults::FaultInjector injector_b_;
  hbm::HbmStack stack_a_;
  hbm::HbmStack stack_b_;
};

// -------------------------------------------- WordPattern == command_data

TEST(WordPatternTest, MatchesCommandDataForEveryKind) {
  TgCommand command;
  command.pattern = {0x0123456789ABCDEFull, ~0ull, 0, 0xF0F0F0F0F0F0F0F0ull};
  command.pattern_seed = 99;
  for (const auto kind :
       {PatternKind::kSolid, PatternKind::kCheckerboard,
        PatternKind::kAddressAsData, PatternKind::kRandom}) {
    command.kind = kind;
    const hbm::WordPattern pattern = axi::word_pattern(command);
    for (std::uint64_t beat = 0; beat < 64; ++beat) {
      const hbm::Beat data = axi::command_data(command, beat);
      for (unsigned w = 0; w < 4; ++w) {
        ASSERT_EQ(pattern.word(beat * 4 + w), data[w])
            << "kind " << static_cast<int>(kind) << " beat " << beat
            << " word " << w;
      }
    }
  }
}

TEST(WordPatternTest, BitAgreesWithWord) {
  const auto pattern = hbm::WordPattern::hashed(7);
  for (std::uint64_t bit = 0; bit < 4096; bit += 37) {
    EXPECT_EQ(pattern.bit(bit),
              ((pattern.word(bit / 64) >> (bit % 64)) & 1) != 0);
  }
}

// ------------------------------------------------- TG property sweep

TEST_F(TwinTest, StatsAndContentsIdenticalAcrossTheMatrix) {
  const std::uint64_t total = geometry_.beats_per_pc();
  struct Range {
    std::uint64_t start, beats;
  };
  const Range ranges[] = {{0, 0},  // whole PC
                          {3, 17},
                          {5, 1},
                          {total - 9, 9}};
  // 1200: empty overlay; 960/920: sparse; 855: dense (most cells stuck).
  const int voltages[] = {1200, 960, 920, 855};
  const PatternKind kinds[] = {PatternKind::kSolid, PatternKind::kCheckerboard,
                               PatternKind::kAddressAsData,
                               PatternKind::kRandom};
  const MacroOp ops[] = {MacroOp::kWriteRead, MacroOp::kWrite, MacroOp::kRead};

  for (const int mv : voltages) {
    set_voltage(Millivolts{mv});
    for (const auto kind : kinds) {
      for (const auto& range : ranges) {
        for (const auto op : ops) {
          TgCommand command;
          command.op = op;
          command.start_beat = range.start;
          command.beats = range.beats;
          command.pattern = hbm::kBeatAllOnes;
          command.check = true;
          command.kind = kind;
          command.pattern_seed = 11;
          run_twin(4, command,
                   "mv=" + std::to_string(mv) +
                       " kind=" + std::to_string(static_cast<int>(kind)) +
                       " start=" + std::to_string(range.start) +
                       " beats=" + std::to_string(range.beats) +
                       " op=" + std::to_string(static_cast<int>(op)));
        }
      }
    }
  }
}

TEST_F(TwinTest, UncheckedReadsAndSolidZerosAgree) {
  set_voltage(Millivolts{920});
  TgCommand command;
  command.op = MacroOp::kRead;
  command.check = false;
  command.beats = 16;
  run_twin(0, command, "unchecked read");
  command.op = MacroOp::kWriteRead;
  command.pattern = hbm::kBeatAllZeros;
  command.check = true;
  run_twin(0, command, "solid zeros");
}

TEST_F(TwinTest, CrashedStackAgrees) {
  set_voltage(Millivolts{800});
  TgCommand command;
  TrafficGenerator batched(stack_a_, 0);
  TrafficGenerator reference(stack_b_, 0);
  reference.set_engine(EnginePath::kPerBeat);
  EXPECT_EQ(batched.run(command).code(), StatusCode::kUnavailable);
  EXPECT_EQ(reference.run(command).code(), StatusCode::kUnavailable);
  expect_stats_eq(batched.stats(), reference.stats(), "crashed");
}

TEST_F(TwinTest, FallbackPathsStillUsed) {
  // random_order and command-level timing must bypass the batched engine
  // (per-beat state matters there); kAuto on eligible commands must not.
  TrafficGenerator tg(stack_a_, 0);
  EXPECT_EQ(tg.engine(), EnginePath::kAuto);
  TgCommand shuffled;
  shuffled.random_order = true;
  shuffled.order_seed = 5;
  ASSERT_TRUE(tg.run(shuffled).is_ok());
  TrafficGenerator timed(stack_a_, 1);
  timed.set_timing_mode(axi::TimingMode::kCommandLevel);
  ASSERT_TRUE(timed.run(TgCommand{}).is_ok());
  // The composed timing model reports more elapsed time than the flat
  // batched path would -- proof the fallback actually ran.
  TrafficGenerator flat(stack_a_, 2);
  ASSERT_TRUE(flat.run(TgCommand{}).is_ok());
  EXPECT_GT(timed.stats().busy_time, flat.stats().busy_time);
}

// ------------------------------------------------- Fault fingerprints

BoardConfig tiny_config() {
  BoardConfig config;
  config.geometry = HbmGeometry::test_tiny();
  config.monitor_config.noise_sigma_amps = 0.0;
  return config;
}

TEST(BatchedFingerprintTest, ReliabilitySweepIdenticalToPerBeat) {
  Vcu128Board batched_board(tiny_config());
  Vcu128Board reference_board(tiny_config());
  for (unsigned s = 0; s < 2; ++s) {
    auto& controller = reference_board.controller(s);
    for (unsigned p = 0; p < controller.port_count(); ++p) {
      controller.port(p).set_engine(EnginePath::kPerBeat);
    }
  }

  core::ReliabilityConfig config;
  config.sweep = {Millivolts{1000}, Millivolts{880}, 20};
  config.batch_size = 1;
  core::ReliabilityTester batched_tester(batched_board, config);
  core::ReliabilityTester reference_tester(reference_board, config);
  const auto map_a = std::move(batched_tester.run()).value();
  const auto map_b = std::move(reference_tester.run()).value();

  const auto voltages = map_a.voltages();
  ASSERT_EQ(voltages.size(), map_b.voltages().size());
  for (const auto v : voltages) {
    for (unsigned pc = 0; pc < map_a.geometry().total_pcs(); ++pc) {
      const auto record_a = map_a.pc_record(v, pc);
      const auto record_b = map_b.pc_record(v, pc);
      EXPECT_EQ(record_a.bits_tested, record_b.bits_tested)
          << v.value << " pc " << pc;
      EXPECT_EQ(record_a.flips_1to0, record_b.flips_1to0)
          << v.value << " pc " << pc;
      EXPECT_EQ(record_a.flips_0to1, record_b.flips_0to1)
          << v.value << " pc " << pc;
      EXPECT_EQ(record_a.bits_tested_ones, record_b.bits_tested_ones);
      EXPECT_EQ(record_a.bits_tested_zeros, record_b.bits_tested_zeros);
    }
  }
}

// ------------------------------------------------------ March equivalence

TEST_F(TwinTest, MarchResultsIdenticalForEveryAlgorithm) {
  for (const int mv : {1200, 960, 920, 855}) {
    set_voltage(Millivolts{mv});
    for (const auto& algorithm : memtest::all_march_algorithms()) {
      memtest::MarchRunner batched(stack_a_, 4);
      memtest::MarchRunner reference(stack_b_, 4);
      reference.set_batched(false);
      ASSERT_TRUE(batched.batched());
      const auto result_a = std::move(batched.run(algorithm)).value();
      const auto result_b = std::move(reference.run(algorithm)).value();
      const std::string what = algorithm.name + " at " + std::to_string(mv);
      EXPECT_EQ(result_a.cells, result_b.cells) << what;
      EXPECT_EQ(result_a.read_ops, result_b.read_ops) << what;
      EXPECT_EQ(result_a.write_ops, result_b.write_ops) << what;
      EXPECT_EQ(result_a.mismatched_reads, result_b.mismatched_reads) << what;
      EXPECT_EQ(result_a.faulty_cells, result_b.faulty_cells) << what;
    }
  }
}

}  // namespace
}  // namespace hbmvolt
