// Unit tests for the SECDED(72,64) codec and the ECC-protected channel.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ecc/ecc_channel.hpp"
#include "ecc/secded.hpp"
#include "faults/fault_overlay.hpp"
#include "hbm/stack.hpp"

namespace hbmvolt {
namespace {

using ecc::DecodeStatus;
using ecc::EccChannel;
using ecc::secded_decode;
using ecc::secded_encode;

// ---------------------------------------------------------------- codec

TEST(SecdedTest, CleanWordsDecodeClean) {
  for (const std::uint64_t data :
       {0ull, ~0ull, 0x1ull, 0x8000000000000000ull, 0xDEADBEEFCAFEF00Dull}) {
    const auto check = secded_encode(data);
    const auto result = secded_decode(data, check);
    EXPECT_EQ(result.status, DecodeStatus::kClean);
    EXPECT_EQ(result.data, data);
  }
}

class SecdedSingleBit : public ::testing::TestWithParam<int> {};

// Every single data-bit error is corrected.
TEST_P(SecdedSingleBit, DataBitErrorCorrected) {
  const int bit = GetParam();
  const std::uint64_t data = 0xA5A5A5A5F00F0FF0ull;
  const auto check = secded_encode(data);
  const std::uint64_t corrupted = data ^ (1ull << bit);
  const auto result = secded_decode(corrupted, check);
  EXPECT_EQ(result.status, DecodeStatus::kCorrectedData);
  EXPECT_EQ(result.data, data);
}

INSTANTIATE_TEST_SUITE_P(AllBits, SecdedSingleBit, ::testing::Range(0, 64));

TEST(SecdedTest, CheckBitErrorLeavesDataIntact) {
  const std::uint64_t data = 0x0123456789ABCDEFull;
  const auto check = secded_encode(data);
  for (int bit = 0; bit < 8; ++bit) {
    const auto corrupted_check =
        static_cast<std::uint8_t>(check ^ (1u << bit));
    const auto result = secded_decode(data, corrupted_check);
    EXPECT_EQ(result.status, DecodeStatus::kCorrectedCheck) << bit;
    EXPECT_EQ(result.data, data);
  }
}

TEST(SecdedTest, DoubleBitErrorsDetected) {
  Xoshiro256 rng(123);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::uint64_t data = rng();
    const auto check = secded_encode(data);
    // Flip two distinct bits anywhere in the 72-bit codeword.
    const unsigned a = static_cast<unsigned>(rng.bounded(72));
    unsigned b = static_cast<unsigned>(rng.bounded(71));
    if (b >= a) ++b;
    std::uint64_t bad_data = data;
    std::uint8_t bad_check = check;
    for (const unsigned position : {a, b}) {
      if (position < 64) {
        bad_data ^= 1ull << position;
      } else {
        bad_check ^= static_cast<std::uint8_t>(1u << (position - 64));
      }
    }
    const auto result = secded_decode(bad_data, bad_check);
    EXPECT_EQ(result.status, DecodeStatus::kUncorrectable)
        << "bits " << a << "," << b;
  }
}

TEST(SecdedTest, RandomRoundTripFuzz) {
  Xoshiro256 rng(321);
  for (int trial = 0; trial < 5000; ++trial) {
    const std::uint64_t data = rng();
    const auto result = secded_decode(data, secded_encode(data));
    ASSERT_EQ(result.status, DecodeStatus::kClean);
    ASSERT_EQ(result.data, data);
  }
}

// -------------------------------------------------------------- channel

class EccChannelTest : public ::testing::Test {
 protected:
  EccChannelTest()
      : geometry_(hbm::HbmGeometry::test_tiny()),
        injector_(faults::FaultModel(geometry_, faults::FaultModelConfig{})),
        stack_(geometry_, 0, injector_, 11) {}

  void set_voltage(Millivolts v) {
    injector_.set_voltage(v);
    stack_.on_voltage_change(v);
  }

  hbm::HbmGeometry geometry_;
  faults::FaultInjector injector_;
  hbm::HbmStack stack_;
};

TEST_F(EccChannelTest, LayoutReservesParityRegion) {
  EccChannel channel(stack_, 0);
  EXPECT_LT(channel.data_beats(), geometry_.beats_per_pc());
  // data + parity fits: data/8 parity beats.
  EXPECT_LE(channel.data_beats() + (channel.data_beats() + 7) / 8,
            geometry_.beats_per_pc());
  EXPECT_EQ(channel.data_beats() % EccChannel::kBeatsPerParityBeat, 0u);
}

TEST_F(EccChannelTest, CleanRoundTripAtNominal) {
  EccChannel channel(stack_, 0);
  Xoshiro256 rng(5);
  for (std::uint64_t beat = 0; beat < channel.data_beats(); ++beat) {
    const hbm::Beat data = {rng(), rng(), rng(), rng()};
    ASSERT_TRUE(channel.write_beat(beat, data).is_ok());
    auto outcome = channel.read_beat(beat);
    ASSERT_TRUE(outcome.is_ok());
    EXPECT_EQ(outcome.value().data, data);
    EXPECT_EQ(outcome.value().corrected, 0u);
  }
  EXPECT_EQ(channel.stats().uncorrectable, 0u);
  EXPECT_EQ(channel.stats().words_clean, channel.stats().words_read);
}

TEST_F(EccChannelTest, RangeChecked) {
  EccChannel channel(stack_, 0);
  EXPECT_FALSE(channel.write_beat(channel.data_beats(), hbm::kBeatAllOnes)
                   .is_ok());
  EXPECT_FALSE(channel.read_beat(channel.data_beats()).is_ok());
}

TEST_F(EccChannelTest, SingleStuckCellsAreCorrected) {
  // Just below the weak PC's onset there are only a handful of stuck
  // cells -- at most one per 64-bit word -- so ECC must fully clean them.
  EccChannel channel(stack_, 4);  // PC4 is weak
  set_voltage(Millivolts{950});
  const auto& overlay = injector_.overlay(4);
  ASSERT_GT(overlay.total_count(), 0u);
  ASSERT_LT(overlay.total_count(), 20u);

  std::uint64_t corrupted_words = 0;
  for (std::uint64_t beat = 0; beat < channel.data_beats(); ++beat) {
    ASSERT_TRUE(channel.write_beat(beat, hbm::kBeatAllOnes).is_ok());
    auto outcome = channel.read_beat(beat);
    ASSERT_TRUE(outcome.is_ok());
    EXPECT_EQ(outcome.value().data, hbm::kBeatAllOnes) << beat;
    corrupted_words += outcome.value().corrected;
  }
  EXPECT_GT(channel.stats().corrected_data + channel.stats().corrected_check,
            0u);
  EXPECT_EQ(channel.stats().uncorrectable, 0u);
  EXPECT_GT(corrupted_words, 0u);
}

TEST_F(EccChannelTest, DeepUndervoltOverwhelmsEcc) {
  EccChannel channel(stack_, 4);
  set_voltage(Millivolts{855});  // bulk collapse: many errors per word
  for (std::uint64_t beat = 0; beat < channel.data_beats(); ++beat) {
    ASSERT_TRUE(channel.write_beat(beat, hbm::kBeatAllOnes).is_ok());
    auto outcome = channel.read_beat(beat);
    ASSERT_TRUE(outcome.is_ok());
  }
  EXPECT_GT(channel.stats().uncorrectable, 0u);
  EXPECT_GT(channel.stats().uncorrectable_rate(), 0.01);
}

TEST_F(EccChannelTest, CrashPropagates) {
  EccChannel channel(stack_, 0);
  set_voltage(Millivolts{800});
  EXPECT_EQ(channel.write_beat(0, hbm::kBeatAllOnes).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(channel.read_beat(0).status().code(), StatusCode::kUnavailable);
}

TEST_F(EccChannelTest, EccExtendsTheUsableVoltageFloor) {
  // The extension experiment in miniature: at a voltage where raw reads
  // of a weak PC already fail, ECC still returns correct data.
  EccChannel channel(stack_, 5);  // weak PC5
  set_voltage(Millivolts{956});   // a few stuck cells on PC5
  const auto& overlay = injector_.overlay(5);
  ASSERT_GT(overlay.total_count(), 0u);
  ASSERT_LT(overlay.total_count(), 20u);

  bool raw_fault_seen = false;
  bool ecc_data_wrong = false;
  for (std::uint64_t beat = 0; beat < channel.data_beats(); ++beat) {
    ASSERT_TRUE(channel.write_beat(beat, hbm::kBeatAllOnes).is_ok());
    auto raw = stack_.read_beat(5, beat);
    ASSERT_TRUE(raw.is_ok());
    raw_fault_seen |= raw.value() != hbm::kBeatAllOnes;
    auto corrected = channel.read_beat(beat);
    ASSERT_TRUE(corrected.is_ok());
    ecc_data_wrong |= corrected.value().data != hbm::kBeatAllOnes;
  }
  EXPECT_TRUE(raw_fault_seen);
  EXPECT_FALSE(ecc_data_wrong);
  EXPECT_EQ(channel.stats().uncorrectable, 0u);
}

// --------------------------------------------------------------- dected

// Flips one of the 79 live DECTED codeword positions: 0..13 the BCH
// check bits, 14..77 the data bits, 78 the overall parity bit.
void dected_flip(unsigned pos, std::uint64_t* data, std::uint16_t* check) {
  if (pos < 14) {
    *check = static_cast<std::uint16_t>(*check ^ (1u << pos));
  } else if (pos < 78) {
    *data ^= 1ull << (pos - 14);
  } else {
    *check = static_cast<std::uint16_t>(*check ^ 0x4000u);
  }
}

TEST(DectedTest, CleanWordsDecodeClean) {
  for (const std::uint64_t data :
       {0ull, ~0ull, 0x1ull, 0x8000000000000000ull, 0xDEADBEEFCAFEF00Dull}) {
    const std::uint16_t check = ecc::dected_encode(data);
    EXPECT_EQ(check, ecc::dected_encode_reference(data));
    EXPECT_TRUE(ecc::dected_clean(data, check));
    const auto result = ecc::dected_decode(data, check);
    EXPECT_EQ(result.status, DecodeStatus::kClean);
    EXPECT_EQ(result.data, data);
  }
}

TEST(DectedTest, EncoderMatchesReferenceFuzz) {
  Xoshiro256 rng(777);
  for (int trial = 0; trial < 5000; ++trial) {
    const std::uint64_t data = rng();
    ASSERT_EQ(ecc::dected_encode(data), ecc::dected_encode_reference(data));
  }
}

TEST(DectedTest, PadBitIsIgnored) {
  const std::uint64_t data = 0x0123456789ABCDEFull;
  const std::uint16_t check = ecc::dected_encode(data);
  const auto result =
      ecc::dected_decode(data, static_cast<std::uint16_t>(check | 0x8000u));
  EXPECT_EQ(result.status, DecodeStatus::kClean);
  EXPECT_EQ(result.data, data);
}

// The ISSUE-mandated harness: replay every 0-, 1-, 2-, and 3-bit flip
// over the 79 live positions against the reference decoder.  Distance 6
// guarantees 1- and 2-bit errors correct back to the original word and
// every 3-bit error is detected (never miscorrected); the table decoder
// must agree with the linear-scan reference on status AND data.
TEST(DectedTest, ExhaustiveFlipEquivalenceWithReference) {
  for (const std::uint64_t word : {0xA5A5A5A5F00F0FF0ull, 0ull}) {
    const std::uint16_t check = ecc::dected_encode(word);

    // 1- and 2-bit flips: corrected, both decoders restore the data.
    for (unsigned a = 0; a < 79; ++a) {
      std::uint64_t d1 = word;
      std::uint16_t c1 = check;
      dected_flip(a, &d1, &c1);
      const auto fast1 = ecc::dected_decode(d1, c1);
      const auto ref1 = ecc::dected_decode_reference(d1, c1);
      ASSERT_EQ(fast1.status, ref1.status) << "single flip at " << a;
      ASSERT_EQ(fast1.data, ref1.data) << "single flip at " << a;
      ASSERT_NE(fast1.status, DecodeStatus::kUncorrectable);
      ASSERT_EQ(fast1.data, word);

      for (unsigned b = a + 1; b < 79; ++b) {
        std::uint64_t d2 = d1;
        std::uint16_t c2 = c1;
        dected_flip(b, &d2, &c2);
        const auto fast2 = ecc::dected_decode(d2, c2);
        const auto ref2 = ecc::dected_decode_reference(d2, c2);
        ASSERT_EQ(fast2.status, ref2.status) << a << "," << b;
        ASSERT_EQ(fast2.data, ref2.data) << a << "," << b;
        ASSERT_NE(fast2.status, DecodeStatus::kUncorrectable);
        ASSERT_EQ(fast2.data, word);
      }
    }

    // 3-bit flips: every C(79,3) pattern detected as uncorrectable.
    for (unsigned a = 0; a < 79; ++a) {
      std::uint64_t da = word;
      std::uint16_t ca = check;
      dected_flip(a, &da, &ca);
      for (unsigned b = a + 1; b < 79; ++b) {
        std::uint64_t db = da;
        std::uint16_t cb = ca;
        dected_flip(b, &db, &cb);
        for (unsigned c = b + 1; c < 79; ++c) {
          std::uint64_t d3 = db;
          std::uint16_t c3 = cb;
          dected_flip(c, &d3, &c3);
          const auto fast3 = ecc::dected_decode(d3, c3);
          const auto ref3 = ecc::dected_decode_reference(d3, c3);
          ASSERT_EQ(fast3.status, DecodeStatus::kUncorrectable)
              << a << "," << b << "," << c;
          ASSERT_EQ(ref3.status, DecodeStatus::kUncorrectable)
              << a << "," << b << "," << c;
        }
      }
    }
  }
}

TEST_F(EccChannelTest, DectedChannelRoundTripAtNominal) {
  EccChannel channel(stack_, 0, ecc::WordCodec::kDected);
  EXPECT_EQ(channel.check_bytes_per_word(), 2u);
  Xoshiro256 rng(6);
  for (std::uint64_t beat = 0; beat < channel.data_beats(); ++beat) {
    const hbm::Beat data = {rng(), rng(), rng(), rng()};
    ASSERT_TRUE(channel.write_beat(beat, data).is_ok());
    auto outcome = channel.read_beat(beat);
    ASSERT_TRUE(outcome.is_ok());
    EXPECT_EQ(outcome.value().data, data);
  }
  EXPECT_EQ(channel.stats().uncorrectable, 0u);
}

TEST_F(EccChannelTest, DectedCorrectsTheDoubleUpsetSecdedCannot) {
  // The zoo's reason to exist, deterministically: plant the same 2-bit
  // upset in a stored data word under each codec.  SECDED detects and
  // loses the word; DECTED corrects it.
  const hbm::Beat payload = {0x1111222233334444ull, 0x5555666677778888ull,
                            0x9999AAAABBBBCCCCull, 0xDDDDEEEEFFFF0000ull};
  auto plant_double_flip = [this](unsigned pc) {
    // Data beat 0 word 0 lives at array word 0 (identity data layout).
    const std::uint64_t raw = stack_.array(pc).read_word(0);
    const std::uint64_t upset = raw ^ 0x0000000000000041ull;  // bits 0, 6
    stack_.array(pc).write_words(0, 1, &upset);
  };

  EccChannel secded(stack_, 0, ecc::WordCodec::kSecded);
  ASSERT_TRUE(secded.write_beat(0, payload).is_ok());
  plant_double_flip(0);
  auto blocked = secded.read_beat(0);
  ASSERT_TRUE(blocked.is_ok());
  EXPECT_EQ(blocked.value().uncorrectable, 1u);
  EXPECT_EQ(secded.stats().uncorrectable, 1u);

  EccChannel dected(stack_, 1, ecc::WordCodec::kDected);
  ASSERT_TRUE(dected.write_beat(0, payload).is_ok());
  plant_double_flip(1);
  auto corrected = dected.read_beat(0);
  ASSERT_TRUE(corrected.is_ok());
  EXPECT_EQ(corrected.value().uncorrectable, 0u);
  EXPECT_EQ(corrected.value().data, payload);
  EXPECT_GT(corrected.value().corrected, 0u);
  EXPECT_EQ(dected.stats().uncorrectable, 0u);
}

}  // namespace
}  // namespace hbmvolt
