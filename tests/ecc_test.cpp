// Unit tests for the SECDED(72,64) codec and the ECC-protected channel.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ecc/ecc_channel.hpp"
#include "ecc/secded.hpp"
#include "faults/fault_overlay.hpp"
#include "hbm/stack.hpp"

namespace hbmvolt {
namespace {

using ecc::DecodeStatus;
using ecc::EccChannel;
using ecc::secded_decode;
using ecc::secded_encode;

// ---------------------------------------------------------------- codec

TEST(SecdedTest, CleanWordsDecodeClean) {
  for (const std::uint64_t data :
       {0ull, ~0ull, 0x1ull, 0x8000000000000000ull, 0xDEADBEEFCAFEF00Dull}) {
    const auto check = secded_encode(data);
    const auto result = secded_decode(data, check);
    EXPECT_EQ(result.status, DecodeStatus::kClean);
    EXPECT_EQ(result.data, data);
  }
}

class SecdedSingleBit : public ::testing::TestWithParam<int> {};

// Every single data-bit error is corrected.
TEST_P(SecdedSingleBit, DataBitErrorCorrected) {
  const int bit = GetParam();
  const std::uint64_t data = 0xA5A5A5A5F00F0FF0ull;
  const auto check = secded_encode(data);
  const std::uint64_t corrupted = data ^ (1ull << bit);
  const auto result = secded_decode(corrupted, check);
  EXPECT_EQ(result.status, DecodeStatus::kCorrectedData);
  EXPECT_EQ(result.data, data);
}

INSTANTIATE_TEST_SUITE_P(AllBits, SecdedSingleBit, ::testing::Range(0, 64));

TEST(SecdedTest, CheckBitErrorLeavesDataIntact) {
  const std::uint64_t data = 0x0123456789ABCDEFull;
  const auto check = secded_encode(data);
  for (int bit = 0; bit < 8; ++bit) {
    const auto corrupted_check =
        static_cast<std::uint8_t>(check ^ (1u << bit));
    const auto result = secded_decode(data, corrupted_check);
    EXPECT_EQ(result.status, DecodeStatus::kCorrectedCheck) << bit;
    EXPECT_EQ(result.data, data);
  }
}

TEST(SecdedTest, DoubleBitErrorsDetected) {
  Xoshiro256 rng(123);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::uint64_t data = rng();
    const auto check = secded_encode(data);
    // Flip two distinct bits anywhere in the 72-bit codeword.
    const unsigned a = static_cast<unsigned>(rng.bounded(72));
    unsigned b = static_cast<unsigned>(rng.bounded(71));
    if (b >= a) ++b;
    std::uint64_t bad_data = data;
    std::uint8_t bad_check = check;
    for (const unsigned position : {a, b}) {
      if (position < 64) {
        bad_data ^= 1ull << position;
      } else {
        bad_check ^= static_cast<std::uint8_t>(1u << (position - 64));
      }
    }
    const auto result = secded_decode(bad_data, bad_check);
    EXPECT_EQ(result.status, DecodeStatus::kUncorrectable)
        << "bits " << a << "," << b;
  }
}

TEST(SecdedTest, RandomRoundTripFuzz) {
  Xoshiro256 rng(321);
  for (int trial = 0; trial < 5000; ++trial) {
    const std::uint64_t data = rng();
    const auto result = secded_decode(data, secded_encode(data));
    ASSERT_EQ(result.status, DecodeStatus::kClean);
    ASSERT_EQ(result.data, data);
  }
}

// -------------------------------------------------------------- channel

class EccChannelTest : public ::testing::Test {
 protected:
  EccChannelTest()
      : geometry_(hbm::HbmGeometry::test_tiny()),
        injector_(faults::FaultModel(geometry_, faults::FaultModelConfig{})),
        stack_(geometry_, 0, injector_, 11) {}

  void set_voltage(Millivolts v) {
    injector_.set_voltage(v);
    stack_.on_voltage_change(v);
  }

  hbm::HbmGeometry geometry_;
  faults::FaultInjector injector_;
  hbm::HbmStack stack_;
};

TEST_F(EccChannelTest, LayoutReservesParityRegion) {
  EccChannel channel(stack_, 0);
  EXPECT_LT(channel.data_beats(), geometry_.beats_per_pc());
  // data + parity fits: data/8 parity beats.
  EXPECT_LE(channel.data_beats() + (channel.data_beats() + 7) / 8,
            geometry_.beats_per_pc());
  EXPECT_EQ(channel.data_beats() % EccChannel::kBeatsPerParityBeat, 0u);
}

TEST_F(EccChannelTest, CleanRoundTripAtNominal) {
  EccChannel channel(stack_, 0);
  Xoshiro256 rng(5);
  for (std::uint64_t beat = 0; beat < channel.data_beats(); ++beat) {
    const hbm::Beat data = {rng(), rng(), rng(), rng()};
    ASSERT_TRUE(channel.write_beat(beat, data).is_ok());
    auto outcome = channel.read_beat(beat);
    ASSERT_TRUE(outcome.is_ok());
    EXPECT_EQ(outcome.value().data, data);
    EXPECT_EQ(outcome.value().corrected, 0u);
  }
  EXPECT_EQ(channel.stats().uncorrectable, 0u);
  EXPECT_EQ(channel.stats().words_clean, channel.stats().words_read);
}

TEST_F(EccChannelTest, RangeChecked) {
  EccChannel channel(stack_, 0);
  EXPECT_FALSE(channel.write_beat(channel.data_beats(), hbm::kBeatAllOnes)
                   .is_ok());
  EXPECT_FALSE(channel.read_beat(channel.data_beats()).is_ok());
}

TEST_F(EccChannelTest, SingleStuckCellsAreCorrected) {
  // Just below the weak PC's onset there are only a handful of stuck
  // cells -- at most one per 64-bit word -- so ECC must fully clean them.
  EccChannel channel(stack_, 4);  // PC4 is weak
  set_voltage(Millivolts{950});
  const auto& overlay = injector_.overlay(4);
  ASSERT_GT(overlay.total_count(), 0u);
  ASSERT_LT(overlay.total_count(), 20u);

  std::uint64_t corrupted_words = 0;
  for (std::uint64_t beat = 0; beat < channel.data_beats(); ++beat) {
    ASSERT_TRUE(channel.write_beat(beat, hbm::kBeatAllOnes).is_ok());
    auto outcome = channel.read_beat(beat);
    ASSERT_TRUE(outcome.is_ok());
    EXPECT_EQ(outcome.value().data, hbm::kBeatAllOnes) << beat;
    corrupted_words += outcome.value().corrected;
  }
  EXPECT_GT(channel.stats().corrected_data + channel.stats().corrected_check,
            0u);
  EXPECT_EQ(channel.stats().uncorrectable, 0u);
  EXPECT_GT(corrupted_words, 0u);
}

TEST_F(EccChannelTest, DeepUndervoltOverwhelmsEcc) {
  EccChannel channel(stack_, 4);
  set_voltage(Millivolts{855});  // bulk collapse: many errors per word
  for (std::uint64_t beat = 0; beat < channel.data_beats(); ++beat) {
    ASSERT_TRUE(channel.write_beat(beat, hbm::kBeatAllOnes).is_ok());
    auto outcome = channel.read_beat(beat);
    ASSERT_TRUE(outcome.is_ok());
  }
  EXPECT_GT(channel.stats().uncorrectable, 0u);
  EXPECT_GT(channel.stats().uncorrectable_rate(), 0.01);
}

TEST_F(EccChannelTest, CrashPropagates) {
  EccChannel channel(stack_, 0);
  set_voltage(Millivolts{800});
  EXPECT_EQ(channel.write_beat(0, hbm::kBeatAllOnes).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(channel.read_beat(0).status().code(), StatusCode::kUnavailable);
}

TEST_F(EccChannelTest, EccExtendsTheUsableVoltageFloor) {
  // The extension experiment in miniature: at a voltage where raw reads
  // of a weak PC already fail, ECC still returns correct data.
  EccChannel channel(stack_, 5);  // weak PC5
  set_voltage(Millivolts{956});   // a few stuck cells on PC5
  const auto& overlay = injector_.overlay(5);
  ASSERT_GT(overlay.total_count(), 0u);
  ASSERT_LT(overlay.total_count(), 20u);

  bool raw_fault_seen = false;
  bool ecc_data_wrong = false;
  for (std::uint64_t beat = 0; beat < channel.data_beats(); ++beat) {
    ASSERT_TRUE(channel.write_beat(beat, hbm::kBeatAllOnes).is_ok());
    auto raw = stack_.read_beat(5, beat);
    ASSERT_TRUE(raw.is_ok());
    raw_fault_seen |= raw.value() != hbm::kBeatAllOnes;
    auto corrected = channel.read_beat(beat);
    ASSERT_TRUE(corrected.is_ok());
    ecc_data_wrong |= corrected.value().data != hbm::kBeatAllOnes;
  }
  EXPECT_TRUE(raw_fault_seen);
  EXPECT_FALSE(ecc_data_wrong);
  EXPECT_EQ(channel.stats().uncorrectable, 0u);
}

}  // namespace
}  // namespace hbmvolt
