// Unit tests for src/faults: the calibrated fault model, weak-cell
// ordering, overlays, the injector, and the fault map.

#include <bit>
#include <set>
#include <span>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "faults/fault_map.hpp"
#include "faults/fault_model.hpp"
#include "faults/fault_overlay.hpp"
#include "faults/weak_cells.hpp"
#include "hbm/geometry.hpp"

namespace hbmvolt {
namespace {

using faults::FaultInjector;
using faults::FaultMap;
using faults::FaultModel;
using faults::FaultModelConfig;
using faults::FaultOverlay;
using faults::PcFaultRecord;
using faults::StuckPolarity;
using faults::WeakCellConfig;
using faults::WeakCellOrder;
using hbm::HbmGeometry;

FaultModel make_model(HbmGeometry geometry = HbmGeometry::test_tiny()) {
  return FaultModel(geometry, FaultModelConfig{});
}

// ------------------------------------------------------------ FaultModel

TEST(FaultModelTest, GuardbandIsFaultFree) {
  const auto model = make_model();
  for (int mv = 1200; mv >= 980; mv -= 10) {
    for (unsigned pc = 0; pc < model.geometry().total_pcs(); ++pc) {
      EXPECT_EQ(model.stuck_count(pc, StuckPolarity::kStuckAt0,
                                  Millivolts{mv}),
                0u)
          << "pc " << pc << " at " << mv;
      EXPECT_EQ(model.stuck_count(pc, StuckPolarity::kStuckAt1,
                                  Millivolts{mv}),
                0u);
    }
  }
}

TEST(FaultModelTest, FirstFlipVoltagesMatchPaper) {
  const auto model = make_model();
  // Device-level onset: some PC faults (stuck-at-0) exactly at 0.97 V...
  std::uint64_t sa0_at_970 = 0;
  std::uint64_t sa1_at_970 = 0;
  std::uint64_t sa1_at_960 = 0;
  for (unsigned pc = 0; pc < model.geometry().total_pcs(); ++pc) {
    sa0_at_970 +=
        model.stuck_count(pc, StuckPolarity::kStuckAt0, Millivolts{970});
    sa1_at_970 +=
        model.stuck_count(pc, StuckPolarity::kStuckAt1, Millivolts{970});
    sa1_at_960 +=
        model.stuck_count(pc, StuckPolarity::kStuckAt1, Millivolts{960});
  }
  EXPECT_GT(sa0_at_970, 0u);   // first 1->0 flips at 0.97 V
  EXPECT_EQ(sa1_at_970, 0u);   // no 0->1 flips yet
  EXPECT_GT(sa1_at_960, 0u);   // first 0->1 flips at 0.96 V
}

TEST(FaultModelTest, OnsetAtExactlyOneCell) {
  const auto model = make_model();
  // At its onset voltage each PC has exactly one stuck-at-0 cell
  // (kappa(V_onset) = 1), independent of simulated capacity.
  const unsigned pc = 18;  // pinned weakest PC
  EXPECT_EQ(model.onset_voltage(pc).value, 970);
  EXPECT_EQ(model.stuck_count(pc, StuckPolarity::kStuckAt0, Millivolts{970}),
            1u);
}

TEST(FaultModelTest, CountsGrowExponentially) {
  const auto model = make_model();
  const unsigned pc = 18;
  // In the tail regime, each 10 mV step multiplies counts by roughly
  // exp(k * 0.01); check the growth is at least 1.5x per step.
  std::uint64_t prev =
      model.stuck_count(pc, StuckPolarity::kStuckAt0, Millivolts{950});
  for (int mv = 940; mv >= 900; mv -= 10) {
    const std::uint64_t next =
        model.stuck_count(pc, StuckPolarity::kStuckAt0, Millivolts{mv});
    EXPECT_GT(static_cast<double>(next), 1.5 * static_cast<double>(prev))
        << "at " << mv;
    prev = next;
  }
}

class FaultMonotonicity : public ::testing::TestWithParam<unsigned> {};

TEST_P(FaultMonotonicity, CountsNeverDecreaseAsVoltageDrops) {
  const auto model = make_model();
  const unsigned pc = GetParam();
  for (const auto polarity :
       {StuckPolarity::kStuckAt0, StuckPolarity::kStuckAt1}) {
    std::uint64_t prev = 0;
    for (int mv = 1200; mv >= 811; mv -= 1) {
      const std::uint64_t count =
          model.stuck_count(pc, polarity, Millivolts{mv});
      EXPECT_GE(count, prev) << "pc " << pc << " at " << mv;
      prev = count;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPcs, FaultMonotonicity,
                         ::testing::Range(0u, 32u));

TEST(FaultModelTest, AllCellsFaultyAtAndBelow841) {
  const auto model = make_model();
  const std::uint64_t n = model.geometry().bits_per_pc;
  for (const int mv : {841, 830, 820, 811}) {
    for (unsigned pc = 0; pc < model.geometry().total_pcs(); ++pc) {
      EXPECT_DOUBLE_EQ(model.stuck_fraction(pc, Millivolts{mv}), 1.0)
          << "pc " << pc << " at " << mv;
      EXPECT_EQ(model.stuck_count(pc, StuckPolarity::kStuckAt0,
                                  Millivolts{mv}),
                n);
    }
  }
}

TEST(FaultModelTest, CrashPredicate) {
  const auto model = make_model();
  EXPECT_FALSE(model.is_crash_voltage(Millivolts{810}));  // V_critical works
  EXPECT_TRUE(model.is_crash_voltage(Millivolts{809}));
  EXPECT_TRUE(model.is_crash_voltage(Millivolts{500}));
  EXPECT_FALSE(model.is_crash_voltage(Millivolts{0}));    // powered off
  EXPECT_FALSE(model.is_crash_voltage(Millivolts{1200}));
}

TEST(FaultModelTest, WeakPcsHaveHighestOnsets) {
  const auto model = make_model();
  int min_weak_onset = 2000;
  int max_other_onset = 0;
  const auto weak = faults::paper_weak_pcs();
  for (unsigned pc = 0; pc < 32; ++pc) {
    const int onset = model.onset_voltage(pc).value;
    const bool is_weak =
        std::find(weak.begin(), weak.end(), pc) != weak.end();
    if (is_weak) {
      min_weak_onset = std::min(min_weak_onset, onset);
    } else {
      max_other_onset = std::max(max_other_onset, onset);
    }
  }
  EXPECT_GT(min_weak_onset, max_other_onset);
}

TEST(FaultModelTest, StrongPcsAreFaultFreeAt950) {
  const auto model = make_model();
  // Fig 6 anchor: the 7 strong PCs still have zero faults at 0.95 V.
  for (const unsigned pc : faults::paper_strong_pcs()) {
    EXPECT_DOUBLE_EQ(model.stuck_fraction(pc, Millivolts{950}), 0.0)
        << "pc " << pc;
  }
  // And they are exactly the fault-free set at 0.95 V.
  unsigned fault_free = 0;
  for (unsigned pc = 0; pc < 32; ++pc) {
    if (model.stuck_fraction(pc, Millivolts{950}) == 0.0) ++fault_free;
  }
  EXPECT_EQ(fault_free, 7u);
}

TEST(FaultModelTest, Hbm1IsWorseOnAverage) {
  const auto model = make_model();
  double gap_sum = 0.0;
  int samples = 0;
  for (int mv = 960; mv >= 845; mv -= 5) {
    const double r0 = model.stack_stuck_fraction(0, Millivolts{mv});
    const double r1 = model.stack_stuck_fraction(1, Millivolts{mv});
    if (r1 <= 0.0 || r1 >= 0.999) continue;
    gap_sum += (r1 - r0) / r1;
    ++samples;
  }
  ASSERT_GT(samples, 5);
  const double average_gap = gap_sum / samples;
  // Paper anchor: ~13% average gap; allow a generous band.
  EXPECT_GT(average_gap, 0.05);
  EXPECT_LT(average_gap, 0.35);
}

TEST(FaultModelTest, StuckAt1ShareYields21PercentExcess) {
  const FaultModelConfig config;
  EXPECT_NEAR(config.stuck_at_one_share / (1.0 - config.stuck_at_one_share),
              1.21, 0.01);
}

TEST(FaultModelTest, AlphaMultiplierMatchesPaperAt850) {
  const auto model = make_model();
  // Guardband: no degradation.
  EXPECT_DOUBLE_EQ(model.alpha_multiplier(Millivolts{1200}), 1.0);
  EXPECT_DOUBLE_EQ(model.alpha_multiplier(Millivolts{980}), 1.0);
  // Paper: alpha*C_L*f is ~14% below nominal at 0.85 V.
  EXPECT_NEAR(model.alpha_multiplier(Millivolts{850}), 0.86, 0.03);
}

TEST(FaultModelTest, DeviceFractionAveragesStacks) {
  const auto model = make_model();
  const Millivolts v{870};
  const double expected = (model.stack_stuck_fraction(0, v) +
                           model.stack_stuck_fraction(1, v)) /
                          2.0;
  EXPECT_DOUBLE_EQ(model.device_stuck_fraction(v), expected);
}

TEST(FaultModelTest, DeterministicAcrossInstances) {
  const auto a = make_model();
  const auto b = make_model();
  for (unsigned pc = 0; pc < 32; ++pc) {
    EXPECT_EQ(a.onset_voltage(pc).value, b.onset_voltage(pc).value);
    EXPECT_EQ(a.stuck_count(pc, StuckPolarity::kStuckAt0, Millivolts{900}),
              b.stuck_count(pc, StuckPolarity::kStuckAt0, Millivolts{900}));
  }
}

TEST(FaultModelTest, SeedChangesJitterButNotAnchors) {
  FaultModelConfig other;
  other.seed = 0x12345;
  const FaultModel a(HbmGeometry::test_tiny(), FaultModelConfig{});
  const FaultModel b(HbmGeometry::test_tiny(), other);
  // The pinned weakest PC onset is an anchor, not jitter.
  EXPECT_EQ(a.onset_voltage(18).value, 970);
  EXPECT_EQ(b.onset_voltage(18).value, 970);
  // But some other PC's onset differs between lots.
  int differing = 0;
  for (unsigned pc = 0; pc < 32; ++pc) {
    differing += a.onset_voltage(pc).value != b.onset_voltage(pc).value;
  }
  EXPECT_GT(differing, 4);
}

TEST(FaultModelTest, NonStandardGeometryStillWorks) {
  HbmGeometry g = HbmGeometry::test_tiny();
  g.channels_per_stack = 2;  // 8 PCs total
  ASSERT_TRUE(g.validate().is_ok());
  const FaultModel model(g, FaultModelConfig{});
  std::uint64_t at_first_flip = 0;
  for (unsigned pc = 0; pc < g.total_pcs(); ++pc) {
    EXPECT_EQ(model.stuck_fraction(pc, Millivolts{1000}), 0.0);
    at_first_flip +=
        model.stuck_count(pc, StuckPolarity::kStuckAt0, Millivolts{970});
  }
  EXPECT_GT(at_first_flip, 0u);  // the pinned first-flip PC exists
}

// --------------------------------------------------------- WeakCellOrder

TEST(WeakCellOrderTest, OrdersPartitionAllCells) {
  const auto g = HbmGeometry::test_tiny();
  const WeakCellOrder order(g, 42, WeakCellConfig{});
  const auto& sa0 = order.order(StuckPolarity::kStuckAt0);
  const auto& sa1 = order.order(StuckPolarity::kStuckAt1);
  EXPECT_EQ(sa0.size() + sa1.size(), g.bits_per_pc);
  std::set<std::uint32_t> seen(sa0.begin(), sa0.end());
  seen.insert(sa1.begin(), sa1.end());
  EXPECT_EQ(seen.size(), g.bits_per_pc);  // no duplicates, full coverage
}

TEST(WeakCellOrderTest, PolaritySharesMatchConfig) {
  const auto g = HbmGeometry::test_tiny();
  WeakCellConfig config;
  config.stuck_at_one_share = 0.5475;
  const WeakCellOrder order(g, 42, config);
  const double share1 =
      static_cast<double>(order.order(StuckPolarity::kStuckAt1).size()) /
      static_cast<double>(g.bits_per_pc);
  EXPECT_NEAR(share1, 0.5475, 0.02);
}

TEST(WeakCellOrderTest, EarlyRanksAreClustered) {
  const auto g = HbmGeometry::test_tiny();
  const WeakCellOrder order(g, 42, WeakCellConfig{});
  // Most of the first 100 cells in each order lie inside cluster windows.
  unsigned in_cluster = 0;
  for (const auto polarity :
       {StuckPolarity::kStuckAt0, StuckPolarity::kStuckAt1}) {
    const auto& cells = order.order(polarity);
    for (std::size_t i = 0; i < 100 && i < cells.size(); ++i) {
      in_cluster += order.in_cluster(cells[i]) ? 1 : 0;
    }
  }
  EXPECT_GT(in_cluster, 120u);  // >60% of 200
}

TEST(WeakCellOrderTest, ClusteringDisabledGivesUniformEarlyRanks) {
  const auto g = HbmGeometry::test_tiny();
  WeakCellConfig config;
  config.cluster_count = 0;
  const WeakCellOrder order(g, 42, config);
  EXPECT_TRUE(order.clusters().empty());
  EXPECT_FALSE(order.in_cluster(0));
}

TEST(WeakCellOrderDeathTest, RejectsCapacityBeyond32BitCellIndices) {
  // Cell ranks are stored as uint32; a PC larger than 2^32 bits would
  // silently truncate them, so construction must abort instead.
  HbmGeometry g = HbmGeometry::test_tiny();
  g.bits_per_pc = 1ull << 33;
  EXPECT_DEATH(WeakCellOrder(g, 42, WeakCellConfig{}), "2\\^32");
}

TEST(WeakCellOrderTest, DeterministicPerSeed) {
  const auto g = HbmGeometry::test_tiny();
  const WeakCellOrder a(g, 42, WeakCellConfig{});
  const WeakCellOrder b(g, 42, WeakCellConfig{});
  const WeakCellOrder c(g, 43, WeakCellConfig{});
  EXPECT_EQ(a.order(StuckPolarity::kStuckAt0),
            b.order(StuckPolarity::kStuckAt0));
  EXPECT_NE(a.order(StuckPolarity::kStuckAt0),
            c.order(StuckPolarity::kStuckAt0));
}

// ---------------------------------------------------------- FaultOverlay

class OverlayTest : public ::testing::Test {
 protected:
  OverlayTest()
      : geometry_(HbmGeometry::test_tiny()),
        order_(geometry_, 42, WeakCellConfig{}) {}

  HbmGeometry geometry_;
  WeakCellOrder order_;
};

TEST_F(OverlayTest, EmptyOverlayIsIdentity) {
  const FaultOverlay overlay;
  EXPECT_TRUE(overlay.empty());
  hbm::Beat data = {1, 2, 3, 4};
  overlay.apply(0, data);
  EXPECT_EQ(data, (hbm::Beat{1, 2, 3, 4}));
}

TEST_F(OverlayTest, CountsAreClampedToOrderSizes) {
  const auto overlay = FaultOverlay::build(order_, ~0ull, ~0ull);
  EXPECT_EQ(overlay.total_count(), geometry_.bits_per_pc);
}

TEST_F(OverlayTest, SparseAndDenseAgree) {
  // Same stuck set, forced into both representations by building with
  // counts around the switch threshold and comparing per-bit behavior.
  const std::uint64_t k = geometry_.bits_per_pc / 64;  // sparse boundary
  const auto sparse = FaultOverlay::build(order_, k / 2, k / 2 - 1);
  const auto dense = FaultOverlay::build(order_, k / 2, k / 2 - 1 + 64);
  ASSERT_FALSE(sparse.dense());
  ASSERT_TRUE(dense.dense());
  // Every cell stuck in `sparse` must be stuck with the same value in
  // `dense` (dense is a superset by monotonicity).
  sparse.for_each([&](std::uint64_t bit, StuckPolarity polarity) {
    EXPECT_TRUE(dense.is_stuck(bit));
    EXPECT_EQ(dense.stuck_value(bit),
              polarity == StuckPolarity::kStuckAt1);
  });
}

TEST_F(OverlayTest, ApplyMatchesIsStuck) {
  const auto overlay = FaultOverlay::build(order_, 200, 300);
  for (std::uint64_t beat = 0; beat < geometry_.beats_per_pc(); ++beat) {
    hbm::Beat ones = hbm::kBeatAllOnes;
    hbm::Beat zeros = hbm::kBeatAllZeros;
    overlay.apply(beat, ones);
    overlay.apply(beat, zeros);
    for (unsigned bit = 0; bit < 256; ++bit) {
      const std::uint64_t cell = beat * 256 + bit;
      const bool one_read = (ones[bit / 64] >> (bit % 64)) & 1;
      const bool zero_read = (zeros[bit / 64] >> (bit % 64)) & 1;
      if (overlay.is_stuck(cell)) {
        EXPECT_EQ(one_read, overlay.stuck_value(cell));
        EXPECT_EQ(zero_read, overlay.stuck_value(cell));
      } else {
        EXPECT_TRUE(one_read);
        EXPECT_FALSE(zero_read);
      }
    }
  }
}

TEST_F(OverlayTest, ForEachVisitsExactlyTheStuckSet) {
  const auto overlay = FaultOverlay::build(order_, 150, 250);
  std::uint64_t visited = 0;
  std::uint64_t sa0 = 0;
  overlay.for_each([&](std::uint64_t bit, StuckPolarity polarity) {
    ++visited;
    sa0 += polarity == StuckPolarity::kStuckAt0 ? 1 : 0;
    EXPECT_TRUE(overlay.is_stuck(bit));
  });
  EXPECT_EQ(visited, 400u);
  EXPECT_EQ(sa0, 150u);
  EXPECT_EQ(overlay.count(StuckPolarity::kStuckAt0), 150u);
  EXPECT_EQ(overlay.count(StuckPolarity::kStuckAt1), 250u);
}

TEST_F(OverlayTest, LowerVoltageSetContainsHigherVoltageSet) {
  const auto small = FaultOverlay::build(order_, 50, 60);
  const auto large = FaultOverlay::build(order_, 500, 600);
  small.for_each([&](std::uint64_t bit, StuckPolarity) {
    EXPECT_TRUE(large.is_stuck(bit));
  });
}

// ----------------------------------------------- FaultOverlay range ops

/// Reference flip count: per-beat apply + per-word popcount, the loop the
/// bulk verifies replace.
hbm::RangeFlips reference_verify(const FaultOverlay& overlay,
                                 std::uint64_t start_beat,
                                 std::uint64_t beats,
                                 const hbm::WordPattern& pattern,
                                 std::span<const std::uint64_t> stored) {
  hbm::RangeFlips flips;
  for (std::uint64_t b = 0; b < beats; ++b) {
    hbm::Beat data;
    for (unsigned w = 0; w < 4; ++w) data[w] = stored[b * 4 + w];
    overlay.apply(start_beat + b, data);
    bool any = false;
    for (unsigned w = 0; w < 4; ++w) {
      const std::uint64_t expected = pattern.word((start_beat + b) * 4 + w);
      const std::uint64_t diff = data[w] ^ expected;
      any = any || diff != 0;
      flips.flips_1to0 += static_cast<unsigned>(std::popcount(diff & expected));
      flips.flips_0to1 +=
          static_cast<unsigned>(std::popcount(diff & ~expected));
    }
    if (any) ++flips.mismatched_beats;
  }
  return flips;
}

class RangeOpsTest : public OverlayTest,
                     public ::testing::WithParamInterface<bool> {
 protected:
  /// Sparse (220 stuck <= 256 words) or dense (500 stuck) per the param.
  FaultOverlay make_overlay() const {
    return GetParam() ? FaultOverlay::build(order_, 200, 300)
                      : FaultOverlay::build(order_, 100, 120);
  }
};

TEST_P(RangeOpsTest, ApplyRangeMatchesPerBeatApply) {
  const auto overlay = make_overlay();
  ASSERT_EQ(overlay.dense(), GetParam());
  const auto pattern = hbm::WordPattern::hashed(13);
  const std::uint64_t beats = geometry_.beats_per_pc();
  for (const auto& [start, count] :
       std::vector<std::pair<std::uint64_t, std::uint64_t>>{
           {0, beats}, {7, 12}, {beats - 3, 3}}) {
    std::vector<std::uint64_t> bulk(count * 4);
    for (std::uint64_t i = 0; i < bulk.size(); ++i) {
      bulk[i] = pattern.word(start * 4 + i);
    }
    overlay.apply_range(start, count, bulk);
    for (std::uint64_t b = 0; b < count; ++b) {
      hbm::Beat data;
      for (unsigned w = 0; w < 4; ++w) {
        data[w] = pattern.word((start + b) * 4 + w);
      }
      overlay.apply(start + b, data);
      for (unsigned w = 0; w < 4; ++w) {
        ASSERT_EQ(bulk[b * 4 + w], data[w]) << "beat " << b << " word " << w;
      }
    }
  }
}

TEST_P(RangeOpsTest, VerifyAfterFillMatchesReference) {
  const auto overlay = make_overlay();
  const std::uint64_t beats = geometry_.beats_per_pc();
  for (const auto& pattern :
       {hbm::WordPattern::repeat(hbm::kBeatAllOnes),
        hbm::WordPattern::repeat(hbm::kBeatAllZeros),
        hbm::WordPattern::address(), hbm::WordPattern::hashed(5)}) {
    for (const auto& [start, count] :
         std::vector<std::pair<std::uint64_t, std::uint64_t>>{
             {0, beats}, {9, 20}, {beats - 1, 1}}) {
      // After a matching fill, stored == pattern over the range.
      std::vector<std::uint64_t> stored(count * 4);
      for (std::uint64_t i = 0; i < stored.size(); ++i) {
        stored[i] = pattern.word(start * 4 + i);
      }
      const auto expected =
          reference_verify(overlay, start, count, pattern, stored);
      std::vector<std::uint64_t> diff(count * 4, 0);
      const auto got = overlay.verify_after_fill(start, count, pattern,
                                                 diff.data());
      EXPECT_EQ(got.flips_1to0, expected.flips_1to0);
      EXPECT_EQ(got.flips_0to1, expected.flips_0to1);
      EXPECT_EQ(got.mismatched_beats, expected.mismatched_beats);
      // diff_out: OR of observed^expected per word.
      std::uint64_t diff_bits = 0;
      for (const auto word : diff) {
        diff_bits += static_cast<unsigned>(std::popcount(word));
      }
      EXPECT_EQ(diff_bits, got.flips_1to0 + got.flips_0to1);
    }
  }
}

TEST_P(RangeOpsTest, VerifyStoredMatchesReference) {
  const auto overlay = make_overlay();
  const std::uint64_t beats = geometry_.beats_per_pc();
  // Stored contents deliberately different from the expected pattern:
  // the general verify must count pattern mismatches and stuck cells.
  const auto stored_pattern = hbm::WordPattern::hashed(21);
  const auto expected_pattern = hbm::WordPattern::repeat(hbm::kBeatAllOnes);
  for (const auto& [start, count] :
       std::vector<std::pair<std::uint64_t, std::uint64_t>>{
           {0, beats}, {11, 30}, {beats - 2, 2}}) {
    std::vector<std::uint64_t> stored(count * 4);
    for (std::uint64_t i = 0; i < stored.size(); ++i) {
      stored[i] = stored_pattern.word(start * 4 + i);
    }
    const auto expected =
        reference_verify(overlay, start, count, expected_pattern, stored);
    const auto got =
        overlay.verify_stored(start, count, stored, expected_pattern);
    EXPECT_EQ(got.flips_1to0, expected.flips_1to0);
    EXPECT_EQ(got.flips_0to1, expected.flips_0to1);
    EXPECT_EQ(got.mismatched_beats, expected.mismatched_beats);
  }
}

TEST_F(OverlayTest, EmptyOverlayBulkVerifyIsClean) {
  const FaultOverlay overlay;
  const auto flips =
      overlay.verify_after_fill(0, 8, hbm::WordPattern::hashed(3));
  EXPECT_EQ(flips.flips_1to0 + flips.flips_0to1, 0u);
  EXPECT_EQ(flips.mismatched_beats, 0u);
}

INSTANTIATE_TEST_SUITE_P(SparseAndDense, RangeOpsTest, ::testing::Bool());

// --------------------------------------------------------- FaultInjector

TEST(FaultInjectorTest, OverlayTracksVoltage) {
  FaultInjector injector(make_model());
  injector.set_voltage(Millivolts{1200});
  EXPECT_TRUE(injector.overlay(18).empty());
  injector.set_voltage(Millivolts{900});
  const auto count_900 = injector.overlay(18).total_count();
  EXPECT_GT(count_900, 0u);
  injector.set_voltage(Millivolts{870});
  EXPECT_GT(injector.overlay(18).total_count(), count_900);
  injector.set_voltage(Millivolts{1200});
  EXPECT_TRUE(injector.overlay(18).empty());
}

TEST(FaultInjectorTest, OverlayMatchesModelCounts) {
  FaultInjector injector(make_model());
  for (const int mv : {965, 940, 910, 880, 850}) {
    injector.set_voltage(Millivolts{mv});
    for (const unsigned pc : {4u, 18u, 0u}) {
      const auto& overlay = injector.overlay(pc);
      EXPECT_EQ(overlay.count(StuckPolarity::kStuckAt0),
                std::min(injector.model().stuck_count(
                             pc, StuckPolarity::kStuckAt0, Millivolts{mv}),
                         injector.order(pc)
                             .order(StuckPolarity::kStuckAt0)
                             .size()))
          << "pc " << pc << " at " << mv;
    }
  }
}

// -------------------------------------------------------------- FaultMap

TEST(FaultMapTest, RecordAndQuery) {
  FaultMap map(HbmGeometry::test_tiny());
  map.record(Millivolts{950}, 3, {1000, 5, 7});
  map.record(Millivolts{950}, 3, {1000, 1, 0});  // accumulates
  const auto record = map.pc_record(Millivolts{950}, 3);
  EXPECT_EQ(record.bits_tested, 2000u);
  EXPECT_EQ(record.flips_1to0, 6u);
  EXPECT_EQ(record.flips_0to1, 7u);
  EXPECT_DOUBLE_EQ(record.rate(), 13.0 / 2000.0);
}

TEST(FaultMapTest, AggregationAcrossStacksAndDevice) {
  const auto g = HbmGeometry::test_tiny();
  FaultMap map(g);
  map.record(Millivolts{900}, 0, {100, 1, 0});                    // stack 0
  map.record(Millivolts{900}, g.pcs_per_stack(), {100, 0, 3});    // stack 1
  EXPECT_EQ(map.stack_record(Millivolts{900}, 0).total_flips(), 1u);
  EXPECT_EQ(map.stack_record(Millivolts{900}, 1).total_flips(), 3u);
  EXPECT_EQ(map.device_record(Millivolts{900}).total_flips(), 4u);
  EXPECT_EQ(map.device_record(Millivolts{900}).bits_tested, 200u);
}

TEST(FaultMapTest, VoltagesSortedDescending) {
  FaultMap map(HbmGeometry::test_tiny());
  map.record(Millivolts{900}, 0, {1, 0, 0});
  map.record(Millivolts{1100}, 0, {1, 0, 0});
  map.record(Millivolts{1000}, 0, {1, 0, 0});
  const auto voltages = map.voltages();
  ASSERT_EQ(voltages.size(), 3u);
  EXPECT_EQ(voltages[0].value, 1100);
  EXPECT_EQ(voltages[1].value, 1000);
  EXPECT_EQ(voltages[2].value, 900);
}

TEST(FaultMapTest, ObservedOnsetAndHighestFaulty) {
  FaultMap map(HbmGeometry::test_tiny());
  map.record(Millivolts{1000}, 5, {100, 0, 0});
  map.record(Millivolts{970}, 5, {100, 2, 0});
  map.record(Millivolts{960}, 5, {100, 9, 1});
  map.record(Millivolts{970}, 6, {100, 0, 0});
  ASSERT_TRUE(map.observed_onset(5).has_value());
  EXPECT_EQ(map.observed_onset(5)->value, 970);
  EXPECT_FALSE(map.observed_onset(6).has_value());
  ASSERT_TRUE(map.highest_faulty_voltage().has_value());
  EXPECT_EQ(map.highest_faulty_voltage()->value, 970);
}

TEST(FaultMapTest, UsablePcsThreshold) {
  const auto g = HbmGeometry::test_tiny();
  FaultMap map(g);
  for (unsigned pc = 0; pc < g.total_pcs(); ++pc) {
    // PC i has i flips out of 1000 bits.
    map.record(Millivolts{900}, pc, {1000, pc, 0});
  }
  EXPECT_EQ(map.usable_pcs(Millivolts{900}, 0.0), 1u);       // only PC0
  EXPECT_EQ(map.usable_pcs(Millivolts{900}, 0.005), 6u);     // PCs 0..5
  EXPECT_EQ(map.usable_pcs(Millivolts{900}, 1.0), g.total_pcs());
}

TEST(FaultMapTest, CrashRecording) {
  FaultMap map(HbmGeometry::test_tiny());
  map.record_crash(Millivolts{800});
  const auto* observation = map.at(Millivolts{800});
  ASSERT_NE(observation, nullptr);
  EXPECT_TRUE(observation->crashed);
  EXPECT_EQ(map.usable_pcs(Millivolts{800}, 1.0), 0u);
}

TEST(FaultMapTest, MissingVoltageGivesEmptyRecord) {
  FaultMap map(HbmGeometry::test_tiny());
  EXPECT_EQ(map.at(Millivolts{999}), nullptr);
  EXPECT_EQ(map.pc_record(Millivolts{999}, 0).bits_tested, 0u);
}

// ---------------------------------------------------- Clustering analysis

TEST(ClusteringTest, ClusteredFaultsConcentrateInFewRows) {
  const auto g = HbmGeometry::test_tiny();
  const WeakCellOrder clustered(g, 42, WeakCellConfig{});
  const auto overlay = FaultOverlay::build(clustered, 100, 120);
  const auto stats = analyze_clustering(g, overlay);
  EXPECT_EQ(stats.faults, 220u);
  // With 6 windows x 2 rows out of 16 total rows, the densest 5% of rows
  // can't hold everything, but clustering must far exceed uniform.
  EXPECT_GT(stats.fraction_in_densest_5pct_rows, 0.15);
  EXPECT_LT(stats.mean_gap, stats.uniform_expected_gap);
}

TEST(ClusteringTest, UniformFaultsSpreadAcrossRows) {
  const auto g = HbmGeometry::test_tiny();
  WeakCellConfig config;
  config.cluster_count = 0;
  const WeakCellOrder uniform(g, 42, config);
  const auto overlay = FaultOverlay::build(uniform, 100, 120);
  const auto stats = analyze_clustering(g, overlay);
  // ~5% of mass in the densest 5% of rows (with slack for small samples).
  EXPECT_LT(stats.fraction_in_densest_5pct_rows, 0.25);
  EXPECT_NEAR(stats.mean_gap, stats.uniform_expected_gap,
              stats.uniform_expected_gap * 0.5);
}

TEST(ClusteringTest, EmptyOverlayGivesZeroStats) {
  const auto stats =
      analyze_clustering(HbmGeometry::test_tiny(), FaultOverlay{});
  EXPECT_EQ(stats.faults, 0u);
  EXPECT_EQ(stats.rows_with_faults, 0u);
}

}  // namespace
}  // namespace hbmvolt
