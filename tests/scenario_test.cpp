// Cross-module scenario tests: the user stories a downstream system
// would actually implement, composed from the library's pieces.

#include <gtest/gtest.h>

#include "board/config_io.hpp"
#include "board/vcu128.hpp"
#include "core/governor.hpp"
#include "core/reliability_tester.hpp"
#include "core/tradeoff.hpp"
#include "ecc/ecc_channel.hpp"
#include "memtest/march.hpp"
#include "mitigate/remap.hpp"
#include "mitigate/row_retirement.hpp"

namespace hbmvolt {
namespace {

board::BoardConfig tiny_board() {
  board::BoardConfig config;
  config.geometry = hbm::HbmGeometry::test_tiny();
  config.monitor_config.noise_sigma_amps = 0.0;
  return config;
}

// Story 1: characterize offline, plan an operating point, deploy it, and
// verify in the field with a March test.
TEST(ScenarioTest, CharacterizePlanDeployVerify) {
  board::Vcu128Board board(tiny_board());

  // Characterize.
  core::ReliabilityConfig rel;
  rel.sweep = {Millivolts{1000}, Millivolts{850}, 10};
  rel.batch_size = 1;
  core::ReliabilityTester tester(board, rel);
  const auto map = std::move(tester.run()).value();

  // Plan: 8 PCs, tolerate 1e-3.
  core::TradeoffAnalyzer analyzer(map, Millivolts{1200});
  const auto plan = analyzer.plan(8, 1e-3);
  ASSERT_TRUE(plan.has_value());

  // Deploy.
  ASSERT_TRUE(board.set_hbm_voltage(plan->voltage).is_ok());
  ASSERT_TRUE(board.responding());

  // Verify each planned PC with March C-.  Unit note: the fault map's
  // rate() is flips per *tested bit* (each cell contributes two tested
  // bits, one per pattern, and a stuck cell flips under exactly one), so
  // the equivalent of March's unique-faulty-cell count is
  // faulty_cells / (2 * cells).
  const unsigned per_stack = board.geometry().pcs_per_stack();
  for (const unsigned pc : plan->pcs) {
    memtest::MarchRunner runner(board.stack(pc / per_stack),
                                pc % per_stack);
    auto result = runner.run(memtest::march_c_minus());
    ASSERT_TRUE(result.is_ok());
    const double equivalent_rate =
        static_cast<double>(result.value().faulty_cells) /
        (2.0 * static_cast<double>(result.value().cells));
    EXPECT_LE(equivalent_rate, 1e-3) << "pc " << pc;
  }
}

// Story 2: ECC-aware retirement keeps more capacity than naive
// retirement while remaining error-free end to end.
TEST(ScenarioTest, EccAwareRetirementComposition) {
  board::Vcu128Board board(tiny_board());
  const Millivolts v{905};  // deep enough for multi-fault rows
  auto& injector = board.injector();

  const auto naive = mitigate::RetirementMap::build(injector, v);
  const auto ecc_aware =
      mitigate::RetirementMap::build_filtered(injector, v, 2);
  ASSERT_GT(naive.rows_retired_total(), 0u);
  // Filtering keeps strictly more capacity whenever single-fault rows
  // exist (they do at this voltage on this seed).
  EXPECT_LT(ecc_aware.rows_retired_total(), naive.rows_retired_total());

  // Compose: remap around the ECC-aware retirement, protect the rest
  // with SECDED.  The weak PC18 (stack 1, local 2) is the stress case.
  ASSERT_TRUE(board.set_hbm_voltage(v).is_ok());
  auto& stack = board.stack(1);
  mitigate::RemappedChannel remapped(stack, 2, ecc_aware);
  ecc::EccChannel ecc_channel(stack, 2);

  // Walk the remapped space through the ECC layer: logical -> physical
  // via the remap, then SECDED over the physical beat.  Everything in
  // the surviving space decodes clean or corrected -- never lost.
  std::uint64_t checked = 0;
  for (std::uint64_t logical = 0; logical < remapped.usable_beats();
       ++logical) {
    const std::uint64_t physical = remapped.physical_beat(logical).value();
    if (physical >= ecc_channel.data_beats()) continue;  // parity region
    ASSERT_TRUE(ecc_channel.write_beat(physical, hbm::kBeatAllOnes).is_ok());
    auto outcome = ecc_channel.read_beat(physical);
    ASSERT_TRUE(outcome.is_ok());
    EXPECT_EQ(outcome.value().data, hbm::kBeatAllOnes) << physical;
    EXPECT_EQ(outcome.value().uncorrectable, 0u) << physical;
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

// Story 3: a hot deployment loads its own INI profile; the governor
// lands at a shallower point than on the 35 degC lab board.
TEST(ScenarioTest, HotBoardGovernsShallower) {
  auto ini = IniFile::parse(
      "[geometry]\n"
      "bits_per_pc = 16384\nbanks_per_pc = 2\nbeats_per_row = 8\n"
      "[faults]\n"
      "temperature_c = 85\n"
      "[monitor]\n"
      "noise_sigma_amps = 0\n");
  ASSERT_TRUE(ini.is_ok());
  auto hot_config = board::board_config_from_ini(ini.value());
  ASSERT_TRUE(hot_config.is_ok());
  board::Vcu128Board hot(hot_config.value());
  board::Vcu128Board lab(tiny_board());

  core::GovernorConfig governor_config;
  governor_config.tolerable_rate = 0.0;
  governor_config.probe_beats = lab.geometry().beats_per_pc();
  governor_config.settle_probes = 2;

  auto hot_result = core::UndervoltGovernor(hot, governor_config).run();
  auto lab_result = core::UndervoltGovernor(lab, governor_config).run();
  ASSERT_TRUE(hot_result.is_ok());
  ASSERT_TRUE(lab_result.is_ok());
  EXPECT_EQ(lab_result.value().settled.value, 980);
  EXPECT_GT(hot_result.value().settled.value,
            lab_result.value().settled.value);
}

// Story 4: after a crash mid-experiment, the full pipeline still
// completes and the crash is visible in the record.
TEST(ScenarioTest, CrashMidSweepIsRecoverable) {
  board::Vcu128Board board(tiny_board());
  core::ReliabilityConfig rel;
  rel.sweep = {Millivolts{830}, Millivolts{795}, 5};
  rel.batch_size = 1;
  rel.crash_policy = core::CrashPolicy::kPowerCycleAndContinue;
  core::ReliabilityTester tester(board, rel);
  const auto map = std::move(tester.run()).value();

  unsigned crashes = 0;
  for (const auto v : map.voltages()) {
    const auto* observation = map.at(v);
    if (observation != nullptr && observation->crashed) ++crashes;
  }
  EXPECT_GE(crashes, 2u);  // 805, 800, 795 are below V_critical
  EXPECT_TRUE(board.responding());
  EXPECT_EQ(board.hbm_voltage().value, 1200);
  // Data at surviving voltages is intact.
  EXPECT_GT(map.device_record(Millivolts{830}).bits_tested, 0u);
}

}  // namespace
}  // namespace hbmvolt
