// Fleet health plane suite: HDR histogram properties, labeled metric
// families, the burn-rate alert engine, and the per-PC health registry
// with its dashboard rendering.
//
// The properties pinned here are the ones the observability layer leans
// on: HDR quantiles over-report by at most one bucket width (~1/32
// relative), merge is grouping-invariant (what makes per-thread latency
// recording deterministic), alert event streams are a pure function of
// the epoch sample sequence (thread-count invariant on a real fleet),
// and the dashboard/health.json renderings are byte-stable goldens.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "board/vcu128.hpp"
#include "chaos/chaos.hpp"
#include "runtime/fleet.hpp"
#include "runtime/health.hpp"
#include "runtime/reliable_channel.hpp"
#include "telemetry/alerts.hpp"
#include "telemetry/clock.hpp"
#include "telemetry/hdr_histogram.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"
#include "workload/trace.hpp"

namespace hbmvolt {
namespace {

using telemetry::AlertEngine;
using telemetry::AlertRule;
using telemetry::AlertSignal;
using telemetry::EpochRing;
using telemetry::EpochSample;
using telemetry::HdrHistogram;
using telemetry::MetricRegistry;

// Deterministic value stream spanning the linear region, several octaves,
// and the far tail (splitmix-style, no <random>).
std::vector<std::uint64_t> sample_values(std::size_t n) {
  std::vector<std::uint64_t> values;
  values.reserve(n);
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  for (std::size_t i = 0; i < n; ++i) {
    state += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    // Mix magnitudes: every third value small, every seventh huge.
    if (i % 3 == 0) {
      values.push_back(z % 64);
    } else if (i % 7 == 0) {
      values.push_back(z % (1ull << 30));
    } else {
      values.push_back(z % 100000);
    }
  }
  return values;
}

// ---------------------------------------------------------------------------
// HdrHistogram properties
// ---------------------------------------------------------------------------

TEST(HdrHistogramTest, BucketEdgeIsTightUpperBound) {
  // value_at(index_of(v)) >= v, and never more than one bucket width
  // above: width 1 in the linear region, <= v/32 beyond it.
  std::vector<std::uint64_t> probes;
  for (std::uint64_t v = 0; v < 2048; ++v) probes.push_back(v);
  for (unsigned bit = 11; bit < 40; ++bit) {
    probes.push_back((1ull << bit) - 1);
    probes.push_back(1ull << bit);
    probes.push_back((1ull << bit) + 1);
  }
  for (std::uint64_t v : sample_values(512)) probes.push_back(v);
  for (std::uint64_t v : probes) {
    const std::uint64_t edge = HdrHistogram::value_at(HdrHistogram::index_of(v));
    ASSERT_GE(edge, v) << "value " << v;
    const std::uint64_t width =
        std::max<std::uint64_t>(1, v / HdrHistogram::kSubBucketCount);
    ASSERT_LE(edge - v, width) << "value " << v;
  }
}

TEST(HdrHistogramTest, BucketIndicesAreMonotone) {
  // index_of is non-decreasing, so quantile's cumulative walk visits
  // values in order.
  std::size_t prev = 0;
  for (std::uint64_t v = 0; v < (1ull << 16); ++v) {
    const std::size_t index = HdrHistogram::index_of(v);
    ASSERT_GE(index, prev) << "value " << v;
    prev = index;
  }
}

TEST(HdrHistogramTest, QuantileBracketsExactRank) {
  const std::vector<std::uint64_t> values = sample_values(5000);
  HdrHistogram h;
  for (std::uint64_t v : values) h.record(v);

  std::vector<std::uint64_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    if (rank < 1) rank = 1;
    const std::uint64_t exact = sorted[rank - 1];
    const std::uint64_t got = h.quantile(q);
    // Never under the exact rank value; over by at most one bucket width
    // (and clamped to the observed max).
    ASSERT_GE(got, exact) << "q=" << q;
    const std::uint64_t width =
        std::max<std::uint64_t>(1, exact / HdrHistogram::kSubBucketCount);
    ASSERT_LE(got, std::min(exact + width, sorted.back())) << "q=" << q;
  }
  EXPECT_EQ(h.quantile(1.0), sorted.back());
  EXPECT_EQ(h.min(), sorted.front());
  EXPECT_EQ(h.max(), sorted.back());
}

TEST(HdrHistogramTest, MergeIsGroupingInvariant) {
  // Any partition of the samples into per-thread histograms merges to the
  // same buckets -- the determinism claim behind per-worker recording.
  const std::vector<std::uint64_t> values = sample_values(4000);
  HdrHistogram all;
  for (std::uint64_t v : values) all.record(v);

  for (std::size_t parts : {2u, 3u, 7u}) {
    std::vector<HdrHistogram> shards(parts);
    for (std::size_t i = 0; i < values.size(); ++i) {
      shards[i % parts].record(values[i]);
    }
    // Left fold and a nested (tree-ish) fold.
    HdrHistogram left;
    for (const HdrHistogram& s : shards) left.merge(s);
    HdrHistogram tree;
    HdrHistogram tail;
    tree.merge(shards[0]);
    for (std::size_t i = 1; i < parts; ++i) tail.merge(shards[i]);
    tree.merge(tail);

    for (const HdrHistogram* merged : {&left, &tree}) {
      EXPECT_EQ(merged->counts(), all.counts()) << parts << " shards";
      EXPECT_EQ(merged->count(), all.count());
      EXPECT_EQ(merged->sum(), all.sum());
      EXPECT_EQ(merged->min(), all.min());
      EXPECT_EQ(merged->max(), all.max());
      EXPECT_EQ(merged->quantile(0.999), all.quantile(0.999));
    }
  }
}

TEST(HdrHistogramTest, RecordNMatchesRepeatedRecord) {
  HdrHistogram bulk;
  HdrHistogram loop;
  bulk.record_n(77, 100);
  bulk.record_n(1234, 3);
  for (int i = 0; i < 100; ++i) loop.record(77);
  for (int i = 0; i < 3; ++i) loop.record(1234);
  EXPECT_EQ(bulk.counts(), loop.counts());
  EXPECT_EQ(bulk.count(), loop.count());
  EXPECT_EQ(bulk.sum(), loop.sum());
}

TEST(HdrHistogramTest, OverflowCountsButDoesNotBucket) {
  HdrHistogram h(1 << 10);
  h.record(100);
  h.record((1 << 10) + 1);  // above max_value
  h.record(1ull << 20);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.max(), 1ull << 20);
  // Ranks landing in the overflow region report the observed max; low
  // ranks report the bucket upper edge of the in-range sample (100 lands
  // in the [100,101] bucket).
  EXPECT_EQ(h.quantile(1.0), 1ull << 20);
  EXPECT_EQ(h.quantile(0.01), 101u);
}

TEST(HdrHistogramTest, EmptyAndClear) {
  HdrHistogram h;
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.min(), 0u);
  h.record(42);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.99), 0u);
}

// ---------------------------------------------------------------------------
// Fixed-bucket interpolated quantiles
// ---------------------------------------------------------------------------

TEST(HistogramQuantileTest, InterpolatesWithinBucket) {
  telemetry::HistogramSnapshot snap;
  snap.bounds = {10, 20, 30};
  snap.buckets = {0, 10, 0, 0};  // ten samples in (10, 20]
  snap.count = 10;
  // Rank q*10 interpolated across the (10, 20] bucket.
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), 15.0);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 20.0);
}

TEST(HistogramQuantileTest, OverflowBucketReportsTopBound) {
  telemetry::HistogramSnapshot snap;
  snap.bounds = {10, 20};
  snap.buckets = {0, 0, 5};  // all overflow
  snap.count = 5;
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), 20.0);
}

// ---------------------------------------------------------------------------
// Labeled metric families
// ---------------------------------------------------------------------------

TEST(MetricFamilyTest, SlotsAreIndependentAndTotalled) {
  MetricRegistry registry;
  auto& family = registry.counter_family("runtime.reads", "pc", 4);
  family.at(0).add(5);
  family.at(3).add(7);
  const auto snapshots = registry.counter_family_values();
  ASSERT_EQ(snapshots.size(), 1u);
  EXPECT_EQ(snapshots[0].name, "runtime.reads");
  EXPECT_EQ(snapshots[0].label_key, "pc");
  EXPECT_EQ(snapshots[0].values, (std::vector<std::uint64_t>{5, 0, 0, 7}));
  EXPECT_EQ(snapshots[0].total, 12u);
  EXPECT_EQ(telemetry::family_slot_name("runtime.reads", "pc", 3),
            "runtime.reads{pc=3}");
}

TEST(MetricFamilyTest, GaugeFamilyExportsOnlyTouchedSlots) {
  MetricRegistry registry;
  auto& family = registry.gauge_family("runtime.spares_free", "pc", 3);
  family.at(1).set(0);  // legitimately zero -- must still export
  const auto snapshots = registry.gauge_family_values();
  ASSERT_EQ(snapshots.size(), 1u);
  ASSERT_EQ(snapshots[0].slots.size(), 1u);
  EXPECT_EQ(snapshots[0].slots[0].first, 1u);
  EXPECT_EQ(snapshots[0].slots[0].second.value, 0);
}

TEST(MetricFamilyTest, HdrFamilyMergesSlotsInIndexOrder) {
  MetricRegistry registry;
  auto& family = registry.hdr_family("latency.read", "pc", 2);
  HdrHistogram local;
  local.record(100);
  local.record(300);
  family.merge_into(0, local);
  HdrHistogram other;
  other.record(200);
  family.merge_into(1, other);

  const auto snapshots = registry.hdr_family_values();
  ASSERT_EQ(snapshots.size(), 1u);
  ASSERT_EQ(snapshots[0].slots.size(), 2u);
  EXPECT_EQ(snapshots[0].slots[0].second.count, 2u);
  EXPECT_EQ(snapshots[0].slots[1].second.count, 1u);
  EXPECT_EQ(snapshots[0].merged.count, 3u);
  EXPECT_EQ(snapshots[0].merged.sum, 600u);
}

TEST(MetricFamilyDeathTest, ShapeMismatchAborts) {
  MetricRegistry registry;
  registry.counter_family("runtime.reads", "pc", 4);
  EXPECT_DEATH(registry.counter_family("runtime.reads", "pc", 8),
               "different label key or slots");
  registry.hdr_family("latency.read", "pc", 4);
  EXPECT_DEATH(registry.hdr_family("latency.read", "pc", 4, 1 << 20),
               "different shape");
}

// ---------------------------------------------------------------------------
// Epoch ring + alert engine
// ---------------------------------------------------------------------------

EpochSample sample(std::uint64_t epoch, std::uint64_t reads,
                   std::uint64_t corrected, std::uint64_t journal = 0) {
  EpochSample s;
  s.epoch = epoch;
  s.reads = reads;
  s.corrected = corrected;
  s.journal_served = journal;
  return s;
}

TEST(EpochRingTest, KeepsNewestSamplesAfterWraparound) {
  EpochRing ring(4);
  for (std::uint64_t e = 0; e < 6; ++e) ring.push(sample(e, 100, 0));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.pushed(), 6u);
  EXPECT_EQ(ring.recent(0).epoch, 5u);
  EXPECT_EQ(ring.recent(3).epoch, 2u);
}

AlertRule test_rule() {
  // Fires at 4x SLO on one epoch AND 2x over four epochs.
  return {"corrected_burn", AlertSignal::kCorrectedRate,
          /*slo=*/0.01,     /*fast_epochs=*/1,
          /*fast_burn=*/4.0, /*slow_epochs=*/4,
          /*slow_burn=*/2.0};
}

TEST(AlertEngineTest, OneEpochSpikeIsFilteredBySlowWindow) {
  AlertEngine engine({test_rule()});
  for (std::uint64_t e = 0; e < 3; ++e) engine.tick(sample(e, 1000, 0));
  engine.tick(sample(3, 1000, 50));  // 5% corrected: fast 5x, slow 1.25x
  EXPECT_FALSE(engine.firing("corrected_burn"));
  EXPECT_TRUE(engine.events().empty());
}

TEST(AlertEngineTest, SustainedBurnFiresOnceAndResolvesOnce) {
  AlertEngine engine({test_rule()});
  for (std::uint64_t e = 0; e < 4; ++e) engine.tick(sample(e, 1000, 50));
  EXPECT_TRUE(engine.firing("corrected_burn"));
  // Still firing: no duplicate events while the state holds.
  engine.tick(sample(4, 1000, 50));
  // Recovery: fast window drops to zero.
  engine.tick(sample(5, 1000, 0));
  EXPECT_FALSE(engine.firing("corrected_burn"));

  ASSERT_EQ(engine.events().size(), 2u);
  EXPECT_TRUE(engine.events()[0].firing);
  EXPECT_FALSE(engine.events()[1].firing);
  EXPECT_GE(engine.events()[0].fast_burn, 4.0);

  const std::string jsonl = engine.to_jsonl();
  EXPECT_NE(jsonl.find("\"type\":\"alert\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"rule\":\"corrected_burn\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"firing\":true"), std::string::npos);
  EXPECT_NE(jsonl.find("\"firing\":false"), std::string::npos);
}

TEST(AlertEngineTest, EdgesEmitCountersIntoActiveTelemetry) {
  telemetry::Telemetry instance;
  telemetry::ScopedTelemetry scope(instance);
  AlertEngine engine({test_rule()});
  for (std::uint64_t e = 0; e < 4; ++e) engine.tick(sample(e, 1000, 50));
  engine.tick(sample(4, 1000, 0));

  std::uint64_t fired = 0;
  std::uint64_t resolved = 0;
  for (const auto& [name, value] : instance.metrics().counter_values()) {
    if (name == "alert.corrected_burn.fired") fired = value;
    if (name == "alert.corrected_burn.resolved") resolved = value;
  }
  EXPECT_EQ(fired, 1u);
  EXPECT_EQ(resolved, 1u);
}

TEST(AlertEngineTest, JournalServedSignalUsesJournalNumerator) {
  AlertRule rule{"journal_served", AlertSignal::kJournalServedRate, 0.01,
                 1,                4.0,
                 1,                4.0};
  AlertEngine engine({rule});
  engine.tick(sample(0, 1000, 500, /*journal=*/0));
  EXPECT_FALSE(engine.firing("journal_served"));
  engine.tick(sample(1, 1000, 0, /*journal=*/50));
  EXPECT_TRUE(engine.firing("journal_served"));
}

// ---------------------------------------------------------------------------
// Health registry + dashboard goldens
// ---------------------------------------------------------------------------

runtime::PcHealth crafted_health(unsigned pc) {
  runtime::PcHealth h;
  h.pc = pc;
  h.voltage_mv = 950;
  h.last_rung = pc == 1 ? runtime::LadderRung::kRaiseVoltage
                        : runtime::LadderRung::kCorrect;
  h.last_rung_op = pc == 1 ? 2048 : 0;
  h.burn_fraction = pc == 1 ? 1.5 : 0.0;
  h.budget_burns = pc;
  h.spares_free = 14 - pc;
  h.parked_beats = pc;
  h.scrub_lag_beats = 34;
  h.reads = 3000 + pc;
  h.writes = 1000;
  h.corrected = 19 * pc;
  h.uncorrectable_blocked = 0;
  h.journal_served = pc;
  h.reconstructed = 7 * pc;
  h.scheme = pc == 1 ? "stripe" : "secded";
  h.stripe = pc == 1 ? "rebuilding" : "-";
  return h;
}

TEST(HealthRegistryTest, JsonGolden) {
  runtime::HealthRegistry health;
  health.reset(2);
  health.set(0, crafted_health(0));
  health.set(1, crafted_health(1));

  const std::string expected =
      "{\"epoch\":0,\"pcs\":[\n"
      "{\"pc\":0,\"voltage_mv\":950,\"last_rung\":\"correct\","
      "\"last_rung_op\":0,\"burn_fraction\":0,\"budget_burns\":0,"
      "\"spares_free\":14,\"parked_beats\":0,\"scrub_lag_beats\":34,"
      "\"reads\":3000,\"writes\":1000,\"corrected\":0,"
      "\"uncorrectable_blocked\":0,\"journal_served\":0,"
      "\"reconstructed\":0,\"scheme\":\"secded\",\"stripe\":\"-\"},\n"
      "{\"pc\":1,\"voltage_mv\":950,\"last_rung\":\"raise_voltage\","
      "\"last_rung_op\":2048,\"burn_fraction\":1.5,\"budget_burns\":1,"
      "\"spares_free\":13,\"parked_beats\":1,\"scrub_lag_beats\":34,"
      "\"reads\":3001,\"writes\":1000,\"corrected\":19,"
      "\"uncorrectable_blocked\":0,\"journal_served\":1,"
      "\"reconstructed\":7,\"scheme\":\"stripe\","
      "\"stripe\":\"rebuilding\"}\n"
      "]}\n";
  EXPECT_EQ(health.to_json(), expected);
}

TEST(HealthRegistryTest, DashboardGolden) {
  runtime::HealthRegistry health;
  health.reset(2);
  health.set(0, crafted_health(0));
  health.set(1, crafted_health(1));

  MetricRegistry metrics;
  auto& family = metrics.hdr_family("latency.read", "pc", 2);
  HdrHistogram local;
  local.record_n(100, 10);
  family.merge_into(0, local);

  AlertEngine alerts({test_rule()});
  alerts.tick(sample(0, 1000, 0));

  const std::string expected =
      "fleet health @ epoch 0\n"
      "+----+-----+--------+------------+---------------+------+-------+"
      "--------+--------+-----------+-------+------+-----+------+-------+\n"
      "| pc | mV  | scheme | stripe     | rung          | burn | burns |"
      " spares | parked | scrub-lag | reads | corr | unc | jrnl | recon |\n"
      "+----+-----+--------+------------+---------------+------+-------+"
      "--------+--------+-----------+-------+------+-----+------+-------+\n"
      "| 0  | 950 | secded | -          | correct       | 0    | 0     |"
      " 14     | 0      | 34        | 3000  | 0    | 0   | 0    | 0     |\n"
      "| 1  | 950 | stripe | rebuilding | raise_voltage | 1.5  | 1     |"
      " 13     | 1      | 34        | 3001  | 19   | 0   | 1    | 7     |\n"
      "+----+-----+--------+------------+---------------+------+-------+"
      "--------+--------+-----------+-------+------+-----+------+-------+\n"
      "latency read  p50 100 ns  p99 100 ns  p999 100 ns  max 100 ns  "
      "(n=10)\n"
      "alert corrected_burn  ok (fast 0x / slow 0x)\n";
  EXPECT_EQ(runtime::render_dashboard(health, &alerts, &metrics), expected);
}

// ---------------------------------------------------------------------------
// Fleet integration: latency recording, alert/health determinism
// ---------------------------------------------------------------------------

board::BoardConfig tiny_board() {
  board::BoardConfig config;
  config.geometry = hbm::HbmGeometry::test_tiny();
  config.monitor_config.noise_sigma_amps = 0.0;
  return config;
}

// Advances a fixed step on every read, so op durations are a pure
// function of how many clock reads the op performs -- identical ops get
// identical latencies at any wall speed.
class TickClock final : public telemetry::Clock {
 public:
  std::uint64_t now_ns() override { return now_ += 10; }

 private:
  std::uint64_t now_ = 0;
};

TEST(LatencyRecordingTest, DeterministicQuantilesUnderManualClock) {
  board::Vcu128Board board(tiny_board());
  ASSERT_TRUE(board.set_hbm_voltage(Millivolts{1200}).is_ok());

  TickClock clock;
  telemetry::Telemetry instance({}, &clock);
  telemetry::ScopedTelemetry scope(instance);

  runtime::ReliableChannel channel(board, 0, {});
  constexpr std::uint64_t kOps = 16;
  for (std::uint64_t i = 0; i < kOps; ++i) {
    ASSERT_TRUE(channel.write(i, runtime::make_payload(1, 0, i)).is_ok());
  }
  for (std::uint64_t i = 0; i < kOps; ++i) {
    ASSERT_TRUE(channel.read(i).is_ok());
  }
  channel.flush_telemetry();

  bool saw_read = false;
  bool saw_write = false;
  for (const auto& family : instance.metrics().hdr_family_values()) {
    if (family.name != "latency.read" && family.name != "latency.write") {
      continue;
    }
    (family.name == "latency.read" ? saw_read : saw_write) = true;
    EXPECT_EQ(family.merged.count, kOps);
    ASSERT_EQ(family.slots.size(), 1u);
    EXPECT_EQ(family.slots[0].first, 0u);  // the served PC's global index
    // Identical ops on a fault-free channel take identical tick counts,
    // so the distribution is a single spike: every quantile reports it.
    EXPECT_GT(family.merged.min, 0u);
    EXPECT_EQ(family.merged.min, family.merged.max);
    EXPECT_EQ(family.merged.q.p50, family.merged.q.p999);
    EXPECT_EQ(family.merged.q.p999, family.merged.max);
  }
  EXPECT_TRUE(saw_read);
  EXPECT_TRUE(saw_write);
}

chaos::ChaosConfig storm_chaos() {
  chaos::ChaosConfig config;
  config.seed = 404;
  config.weak_burst_rate = 1e-4;
  config.bit_rot_rate = 1e-3;
  config.burst_cells = 4;
  return config;
}

struct StormObservations {
  std::uint64_t fingerprint = 0;
  std::string alerts_jsonl;
  std::string health_json;
  std::uint64_t epochs_hooked = 0;
};

StormObservations run_storm(unsigned threads, bool with_telemetry) {
  board::Vcu128Board board(tiny_board());
  EXPECT_TRUE(board.set_hbm_voltage(Millivolts{940}).is_ok());
  chaos::ChaosInjector injector(board, storm_chaos());

  runtime::FleetConfig config;
  config.ops_per_pc = 2048;
  config.ops_per_epoch = 512;
  config.seed = 101;
  config.threads = threads;
  config.channel.spare_fraction = 0.25;
  config.storm_hook = [&injector](unsigned pc, std::uint64_t tick) {
    return injector.storm_tick(pc, tick);
  };

  StormObservations out;
  config.epoch_hook = [&out](const runtime::EpochStatus& status) {
    EXPECT_NE(status.health, nullptr);
    EXPECT_NE(status.alerts, nullptr);
    ++out.epochs_hooked;
  };

  telemetry::Telemetry instance;
  std::optional<telemetry::ScopedTelemetry> scope;
  if (with_telemetry) scope.emplace(instance);

  runtime::ServingFleet fleet(board, config);
  auto report = fleet.run();
  EXPECT_TRUE(report.is_ok()) << report.status().to_string();
  if (report.is_ok()) out.fingerprint = report.value().fingerprint;
  out.alerts_jsonl = fleet.alerts().to_jsonl();
  out.health_json = fleet.health().to_json();
  return out;
}

TEST(FleetObservabilityTest, AlertsAndHealthAreThreadCountInvariant) {
  const StormObservations serial = run_storm(1, true);
  const StormObservations parallel = run_storm(4, true);
  EXPECT_EQ(serial.fingerprint, parallel.fingerprint);
  EXPECT_EQ(serial.alerts_jsonl, parallel.alerts_jsonl);
  EXPECT_EQ(serial.health_json, parallel.health_json);
  EXPECT_GT(serial.epochs_hooked, 0u);
  EXPECT_EQ(serial.epochs_hooked, parallel.epochs_hooked);
}

TEST(FleetObservabilityTest, TelemetryDoesNotPerturbFingerprintOrHealth) {
  const StormObservations with = run_storm(4, true);
  const StormObservations without = run_storm(4, false);
  EXPECT_EQ(with.fingerprint, without.fingerprint);
  EXPECT_EQ(with.alerts_jsonl, without.alerts_jsonl);
  EXPECT_EQ(with.health_json, without.health_json);
}

}  // namespace
}  // namespace hbmvolt
