file(REMOVE_RECURSE
  "CMakeFiles/approximate_inference.dir/approximate_inference.cpp.o"
  "CMakeFiles/approximate_inference.dir/approximate_inference.cpp.o.d"
  "approximate_inference"
  "approximate_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approximate_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
