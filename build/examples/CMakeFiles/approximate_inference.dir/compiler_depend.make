# Empty compiler generated dependencies file for approximate_inference.
# This may be replaced when dependencies are built.
