# Empty dependencies file for full_characterization.
# This may be replaced when dependencies are built.
