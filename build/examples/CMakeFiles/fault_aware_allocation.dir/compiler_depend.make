# Empty compiler generated dependencies file for fault_aware_allocation.
# This may be replaced when dependencies are built.
