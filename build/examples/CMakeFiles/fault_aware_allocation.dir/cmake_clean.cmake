file(REMOVE_RECURSE
  "CMakeFiles/fault_aware_allocation.dir/fault_aware_allocation.cpp.o"
  "CMakeFiles/fault_aware_allocation.dir/fault_aware_allocation.cpp.o.d"
  "fault_aware_allocation"
  "fault_aware_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_aware_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
