file(REMOVE_RECURSE
  "CMakeFiles/pmbus_test.dir/pmbus_test.cpp.o"
  "CMakeFiles/pmbus_test.dir/pmbus_test.cpp.o.d"
  "pmbus_test"
  "pmbus_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmbus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
