# Empty compiler generated dependencies file for pmbus_test.
# This may be replaced when dependencies are built.
