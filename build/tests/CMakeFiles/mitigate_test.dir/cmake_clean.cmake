file(REMOVE_RECURSE
  "CMakeFiles/mitigate_test.dir/mitigate_test.cpp.o"
  "CMakeFiles/mitigate_test.dir/mitigate_test.cpp.o.d"
  "mitigate_test"
  "mitigate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitigate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
