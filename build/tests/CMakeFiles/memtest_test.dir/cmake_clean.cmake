file(REMOVE_RECURSE
  "CMakeFiles/memtest_test.dir/memtest_test.cpp.o"
  "CMakeFiles/memtest_test.dir/memtest_test.cpp.o.d"
  "memtest_test"
  "memtest_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memtest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
