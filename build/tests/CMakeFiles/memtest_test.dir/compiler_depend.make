# Empty compiler generated dependencies file for memtest_test.
# This may be replaced when dependencies are built.
