# Empty compiler generated dependencies file for axi_test.
# This may be replaced when dependencies are built.
