file(REMOVE_RECURSE
  "CMakeFiles/board_test.dir/board_test.cpp.o"
  "CMakeFiles/board_test.dir/board_test.cpp.o.d"
  "board_test"
  "board_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/board_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
