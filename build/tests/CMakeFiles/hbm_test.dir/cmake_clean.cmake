file(REMOVE_RECURSE
  "CMakeFiles/hbm_test.dir/hbm_test.cpp.o"
  "CMakeFiles/hbm_test.dir/hbm_test.cpp.o.d"
  "hbm_test"
  "hbm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
