# Empty dependencies file for hbm_test.
# This may be replaced when dependencies are built.
