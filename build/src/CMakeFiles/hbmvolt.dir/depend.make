# Empty dependencies file for hbmvolt.
# This may be replaced when dependencies are built.
