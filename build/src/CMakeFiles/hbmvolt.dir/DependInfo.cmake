
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/axi/controller.cpp" "src/CMakeFiles/hbmvolt.dir/axi/controller.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/axi/controller.cpp.o.d"
  "/root/repo/src/axi/switch.cpp" "src/CMakeFiles/hbmvolt.dir/axi/switch.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/axi/switch.cpp.o.d"
  "/root/repo/src/axi/traffic_gen.cpp" "src/CMakeFiles/hbmvolt.dir/axi/traffic_gen.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/axi/traffic_gen.cpp.o.d"
  "/root/repo/src/board/config_io.cpp" "src/CMakeFiles/hbmvolt.dir/board/config_io.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/board/config_io.cpp.o.d"
  "/root/repo/src/board/vcu128.cpp" "src/CMakeFiles/hbmvolt.dir/board/vcu128.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/board/vcu128.cpp.o.d"
  "/root/repo/src/common/ini.cpp" "src/CMakeFiles/hbmvolt.dir/common/ini.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/common/ini.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/hbmvolt.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/common/log.cpp.o.d"
  "/root/repo/src/common/plot.cpp" "src/CMakeFiles/hbmvolt.dir/common/plot.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/common/plot.cpp.o.d"
  "/root/repo/src/common/prp.cpp" "src/CMakeFiles/hbmvolt.dir/common/prp.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/common/prp.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/hbmvolt.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/hbmvolt.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/common/stats.cpp.o.d"
  "/root/repo/src/common/status.cpp" "src/CMakeFiles/hbmvolt.dir/common/status.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/common/status.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/CMakeFiles/hbmvolt.dir/common/table.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/common/table.cpp.o.d"
  "/root/repo/src/core/campaign.cpp" "src/CMakeFiles/hbmvolt.dir/core/campaign.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/core/campaign.cpp.o.d"
  "/root/repo/src/core/fault_characterizer.cpp" "src/CMakeFiles/hbmvolt.dir/core/fault_characterizer.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/core/fault_characterizer.cpp.o.d"
  "/root/repo/src/core/governor.cpp" "src/CMakeFiles/hbmvolt.dir/core/governor.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/core/governor.cpp.o.d"
  "/root/repo/src/core/guardband.cpp" "src/CMakeFiles/hbmvolt.dir/core/guardband.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/core/guardband.cpp.o.d"
  "/root/repo/src/core/power_characterizer.cpp" "src/CMakeFiles/hbmvolt.dir/core/power_characterizer.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/core/power_characterizer.cpp.o.d"
  "/root/repo/src/core/reliability_tester.cpp" "src/CMakeFiles/hbmvolt.dir/core/reliability_tester.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/core/reliability_tester.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/hbmvolt.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/core/report.cpp.o.d"
  "/root/repo/src/core/tradeoff.cpp" "src/CMakeFiles/hbmvolt.dir/core/tradeoff.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/core/tradeoff.cpp.o.d"
  "/root/repo/src/core/voltage_sweep.cpp" "src/CMakeFiles/hbmvolt.dir/core/voltage_sweep.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/core/voltage_sweep.cpp.o.d"
  "/root/repo/src/dram/bank.cpp" "src/CMakeFiles/hbmvolt.dir/dram/bank.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/dram/bank.cpp.o.d"
  "/root/repo/src/dram/scheduler.cpp" "src/CMakeFiles/hbmvolt.dir/dram/scheduler.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/dram/scheduler.cpp.o.d"
  "/root/repo/src/ecc/ecc_channel.cpp" "src/CMakeFiles/hbmvolt.dir/ecc/ecc_channel.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/ecc/ecc_channel.cpp.o.d"
  "/root/repo/src/ecc/secded.cpp" "src/CMakeFiles/hbmvolt.dir/ecc/secded.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/ecc/secded.cpp.o.d"
  "/root/repo/src/faults/fault_map.cpp" "src/CMakeFiles/hbmvolt.dir/faults/fault_map.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/faults/fault_map.cpp.o.d"
  "/root/repo/src/faults/fault_model.cpp" "src/CMakeFiles/hbmvolt.dir/faults/fault_model.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/faults/fault_model.cpp.o.d"
  "/root/repo/src/faults/fault_overlay.cpp" "src/CMakeFiles/hbmvolt.dir/faults/fault_overlay.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/faults/fault_overlay.cpp.o.d"
  "/root/repo/src/faults/weak_cells.cpp" "src/CMakeFiles/hbmvolt.dir/faults/weak_cells.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/faults/weak_cells.cpp.o.d"
  "/root/repo/src/hbm/geometry.cpp" "src/CMakeFiles/hbmvolt.dir/hbm/geometry.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/hbm/geometry.cpp.o.d"
  "/root/repo/src/hbm/ip_registers.cpp" "src/CMakeFiles/hbmvolt.dir/hbm/ip_registers.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/hbm/ip_registers.cpp.o.d"
  "/root/repo/src/hbm/memory_array.cpp" "src/CMakeFiles/hbmvolt.dir/hbm/memory_array.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/hbm/memory_array.cpp.o.d"
  "/root/repo/src/hbm/stack.cpp" "src/CMakeFiles/hbmvolt.dir/hbm/stack.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/hbm/stack.cpp.o.d"
  "/root/repo/src/memtest/march.cpp" "src/CMakeFiles/hbmvolt.dir/memtest/march.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/memtest/march.cpp.o.d"
  "/root/repo/src/mitigate/remap.cpp" "src/CMakeFiles/hbmvolt.dir/mitigate/remap.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/mitigate/remap.cpp.o.d"
  "/root/repo/src/mitigate/row_retirement.cpp" "src/CMakeFiles/hbmvolt.dir/mitigate/row_retirement.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/mitigate/row_retirement.cpp.o.d"
  "/root/repo/src/pmbus/bus.cpp" "src/CMakeFiles/hbmvolt.dir/pmbus/bus.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/pmbus/bus.cpp.o.d"
  "/root/repo/src/pmbus/device.cpp" "src/CMakeFiles/hbmvolt.dir/pmbus/device.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/pmbus/device.cpp.o.d"
  "/root/repo/src/pmbus/isl68301.cpp" "src/CMakeFiles/hbmvolt.dir/pmbus/isl68301.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/pmbus/isl68301.cpp.o.d"
  "/root/repo/src/pmbus/linear.cpp" "src/CMakeFiles/hbmvolt.dir/pmbus/linear.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/pmbus/linear.cpp.o.d"
  "/root/repo/src/pmbus/pec.cpp" "src/CMakeFiles/hbmvolt.dir/pmbus/pec.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/pmbus/pec.cpp.o.d"
  "/root/repo/src/power/droop.cpp" "src/CMakeFiles/hbmvolt.dir/power/droop.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/power/droop.cpp.o.d"
  "/root/repo/src/power/power_model.cpp" "src/CMakeFiles/hbmvolt.dir/power/power_model.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/power/power_model.cpp.o.d"
  "/root/repo/src/power/rail.cpp" "src/CMakeFiles/hbmvolt.dir/power/rail.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/power/rail.cpp.o.d"
  "/root/repo/src/sensors/ina226.cpp" "src/CMakeFiles/hbmvolt.dir/sensors/ina226.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/sensors/ina226.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/CMakeFiles/hbmvolt.dir/workload/trace.cpp.o" "gcc" "src/CMakeFiles/hbmvolt.dir/workload/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
