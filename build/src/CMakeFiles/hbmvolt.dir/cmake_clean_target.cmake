file(REMOVE_RECURSE
  "libhbmvolt.a"
)
