file(REMOVE_RECURSE
  "CMakeFiles/ext_vrm_droop.dir/ext_vrm_droop.cpp.o"
  "CMakeFiles/ext_vrm_droop.dir/ext_vrm_droop.cpp.o.d"
  "ext_vrm_droop"
  "ext_vrm_droop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_vrm_droop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
