# Empty dependencies file for ext_vrm_droop.
# This may be replaced when dependencies are built.
