file(REMOVE_RECURSE
  "CMakeFiles/table_headline_numbers.dir/table_headline_numbers.cpp.o"
  "CMakeFiles/table_headline_numbers.dir/table_headline_numbers.cpp.o.d"
  "table_headline_numbers"
  "table_headline_numbers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_headline_numbers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
