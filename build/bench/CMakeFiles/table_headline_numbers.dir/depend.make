# Empty dependencies file for table_headline_numbers.
# This may be replaced when dependencies are built.
