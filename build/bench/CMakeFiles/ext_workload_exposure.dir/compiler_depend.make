# Empty compiler generated dependencies file for ext_workload_exposure.
# This may be replaced when dependencies are built.
