file(REMOVE_RECURSE
  "CMakeFiles/ext_workload_exposure.dir/ext_workload_exposure.cpp.o"
  "CMakeFiles/ext_workload_exposure.dir/ext_workload_exposure.cpp.o.d"
  "ext_workload_exposure"
  "ext_workload_exposure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_workload_exposure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
