file(REMOVE_RECURSE
  "CMakeFiles/fig2_power_vs_voltage.dir/fig2_power_vs_voltage.cpp.o"
  "CMakeFiles/fig2_power_vs_voltage.dir/fig2_power_vs_voltage.cpp.o.d"
  "fig2_power_vs_voltage"
  "fig2_power_vs_voltage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_power_vs_voltage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
