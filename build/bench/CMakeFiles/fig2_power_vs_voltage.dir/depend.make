# Empty dependencies file for fig2_power_vs_voltage.
# This may be replaced when dependencies are built.
