file(REMOVE_RECURSE
  "CMakeFiles/ablation_switch_network.dir/ablation_switch_network.cpp.o"
  "CMakeFiles/ablation_switch_network.dir/ablation_switch_network.cpp.o.d"
  "ablation_switch_network"
  "ablation_switch_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_switch_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
