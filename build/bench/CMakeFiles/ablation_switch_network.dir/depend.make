# Empty dependencies file for ablation_switch_network.
# This may be replaced when dependencies are built.
