file(REMOVE_RECURSE
  "CMakeFiles/fig5_pc_fault_map.dir/fig5_pc_fault_map.cpp.o"
  "CMakeFiles/fig5_pc_fault_map.dir/fig5_pc_fault_map.cpp.o.d"
  "fig5_pc_fault_map"
  "fig5_pc_fault_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_pc_fault_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
