# Empty dependencies file for fig5_pc_fault_map.
# This may be replaced when dependencies are built.
