# Empty dependencies file for ablation_access_order.
# This may be replaced when dependencies are built.
