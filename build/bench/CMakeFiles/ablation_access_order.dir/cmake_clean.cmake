file(REMOVE_RECURSE
  "CMakeFiles/ablation_access_order.dir/ablation_access_order.cpp.o"
  "CMakeFiles/ablation_access_order.dir/ablation_access_order.cpp.o.d"
  "ablation_access_order"
  "ablation_access_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_access_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
