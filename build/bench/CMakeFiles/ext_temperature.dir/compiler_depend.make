# Empty compiler generated dependencies file for ext_temperature.
# This may be replaced when dependencies are built.
