file(REMOVE_RECURSE
  "CMakeFiles/ext_temperature.dir/ext_temperature.cpp.o"
  "CMakeFiles/ext_temperature.dir/ext_temperature.cpp.o.d"
  "ext_temperature"
  "ext_temperature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_temperature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
