file(REMOVE_RECURSE
  "CMakeFiles/ext_adaptive_governor.dir/ext_adaptive_governor.cpp.o"
  "CMakeFiles/ext_adaptive_governor.dir/ext_adaptive_governor.cpp.o.d"
  "ext_adaptive_governor"
  "ext_adaptive_governor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_adaptive_governor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
