# Empty compiler generated dependencies file for ext_adaptive_governor.
# This may be replaced when dependencies are built.
