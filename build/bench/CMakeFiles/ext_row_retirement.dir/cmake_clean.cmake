file(REMOVE_RECURSE
  "CMakeFiles/ext_row_retirement.dir/ext_row_retirement.cpp.o"
  "CMakeFiles/ext_row_retirement.dir/ext_row_retirement.cpp.o.d"
  "ext_row_retirement"
  "ext_row_retirement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_row_retirement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
