# Empty compiler generated dependencies file for ext_row_retirement.
# This may be replaced when dependencies are built.
