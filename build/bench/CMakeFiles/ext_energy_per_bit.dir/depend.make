# Empty dependencies file for ext_energy_per_bit.
# This may be replaced when dependencies are built.
