file(REMOVE_RECURSE
  "CMakeFiles/ext_energy_per_bit.dir/ext_energy_per_bit.cpp.o"
  "CMakeFiles/ext_energy_per_bit.dir/ext_energy_per_bit.cpp.o.d"
  "ext_energy_per_bit"
  "ext_energy_per_bit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_energy_per_bit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
