file(REMOVE_RECURSE
  "CMakeFiles/ablation_batch_size.dir/ablation_batch_size.cpp.o"
  "CMakeFiles/ablation_batch_size.dir/ablation_batch_size.cpp.o.d"
  "ablation_batch_size"
  "ablation_batch_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_batch_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
