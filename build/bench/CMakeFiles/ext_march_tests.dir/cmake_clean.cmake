file(REMOVE_RECURSE
  "CMakeFiles/ext_march_tests.dir/ext_march_tests.cpp.o"
  "CMakeFiles/ext_march_tests.dir/ext_march_tests.cpp.o.d"
  "ext_march_tests"
  "ext_march_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_march_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
