# Empty dependencies file for ext_march_tests.
# This may be replaced when dependencies are built.
