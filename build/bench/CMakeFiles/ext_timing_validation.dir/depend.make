# Empty dependencies file for ext_timing_validation.
# This may be replaced when dependencies are built.
