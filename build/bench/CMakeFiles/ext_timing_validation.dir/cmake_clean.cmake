file(REMOVE_RECURSE
  "CMakeFiles/ext_timing_validation.dir/ext_timing_validation.cpp.o"
  "CMakeFiles/ext_timing_validation.dir/ext_timing_validation.cpp.o.d"
  "ext_timing_validation"
  "ext_timing_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_timing_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
