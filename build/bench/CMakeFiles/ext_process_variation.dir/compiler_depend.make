# Empty compiler generated dependencies file for ext_process_variation.
# This may be replaced when dependencies are built.
