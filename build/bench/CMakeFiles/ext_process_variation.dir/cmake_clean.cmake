file(REMOVE_RECURSE
  "CMakeFiles/ext_process_variation.dir/ext_process_variation.cpp.o"
  "CMakeFiles/ext_process_variation.dir/ext_process_variation.cpp.o.d"
  "ext_process_variation"
  "ext_process_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_process_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
