# Empty dependencies file for fig3_active_capacitance.
# This may be replaced when dependencies are built.
