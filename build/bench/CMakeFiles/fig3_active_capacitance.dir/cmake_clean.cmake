file(REMOVE_RECURSE
  "CMakeFiles/fig3_active_capacitance.dir/fig3_active_capacitance.cpp.o"
  "CMakeFiles/fig3_active_capacitance.dir/fig3_active_capacitance.cpp.o.d"
  "fig3_active_capacitance"
  "fig3_active_capacitance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_active_capacitance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
