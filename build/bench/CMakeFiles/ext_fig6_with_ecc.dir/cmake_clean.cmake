file(REMOVE_RECURSE
  "CMakeFiles/ext_fig6_with_ecc.dir/ext_fig6_with_ecc.cpp.o"
  "CMakeFiles/ext_fig6_with_ecc.dir/ext_fig6_with_ecc.cpp.o.d"
  "ext_fig6_with_ecc"
  "ext_fig6_with_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_fig6_with_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
