# Empty compiler generated dependencies file for ext_fig6_with_ecc.
# This may be replaced when dependencies are built.
