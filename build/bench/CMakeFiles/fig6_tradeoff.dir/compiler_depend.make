# Empty compiler generated dependencies file for fig6_tradeoff.
# This may be replaced when dependencies are built.
