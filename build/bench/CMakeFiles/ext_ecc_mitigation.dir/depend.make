# Empty dependencies file for ext_ecc_mitigation.
# This may be replaced when dependencies are built.
