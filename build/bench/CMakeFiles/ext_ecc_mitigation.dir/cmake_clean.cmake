file(REMOVE_RECURSE
  "CMakeFiles/ext_ecc_mitigation.dir/ext_ecc_mitigation.cpp.o"
  "CMakeFiles/ext_ecc_mitigation.dir/ext_ecc_mitigation.cpp.o.d"
  "ext_ecc_mitigation"
  "ext_ecc_mitigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_ecc_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
