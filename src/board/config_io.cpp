#include "board/config_io.hpp"

#include <string>

#include "common/table.hpp"

namespace hbmvolt::board {
namespace {

// Pulls a typed value if present, assigning through `out`; propagates
// parse errors, ignores absence.
template <typename T, typename U>
Status apply(const IniFile& ini, const std::string& section,
             const std::string& key, Result<T> (IniFile::*getter)(
                 const std::string&, const std::string&) const,
             U& out) {
  if (!ini.has(section, key)) return Status::ok();
  auto value = (ini.*getter)(section, key);
  if (!value.is_ok()) return value.status();
  out = static_cast<U>(value.value());
  return Status::ok();
}

Status apply_mv(const IniFile& ini, const std::string& section,
                const std::string& key, Millivolts& out) {
  if (!ini.has(section, key)) return Status::ok();
  auto value = ini.get_int(section, key);
  if (!value.is_ok()) return value.status();
  out = Millivolts{static_cast<int>(value.value())};
  return Status::ok();
}

}  // namespace

Result<BoardConfig> board_config_from_ini(const IniFile& ini) {
  BoardConfig config;

  // [geometry]
  HBMVOLT_RETURN_IF_ERROR(apply(ini, "geometry", "stacks",
                                &IniFile::get_uint64,
                                config.geometry.stacks));
  HBMVOLT_RETURN_IF_ERROR(apply(ini, "geometry", "channels_per_stack",
                                &IniFile::get_uint64,
                                config.geometry.channels_per_stack));
  HBMVOLT_RETURN_IF_ERROR(apply(ini, "geometry", "pcs_per_channel",
                                &IniFile::get_uint64,
                                config.geometry.pcs_per_channel));
  HBMVOLT_RETURN_IF_ERROR(apply(ini, "geometry", "bits_per_pc",
                                &IniFile::get_uint64,
                                config.geometry.bits_per_pc));
  HBMVOLT_RETURN_IF_ERROR(apply(ini, "geometry", "banks_per_pc",
                                &IniFile::get_uint64,
                                config.geometry.banks_per_pc));
  HBMVOLT_RETURN_IF_ERROR(apply(ini, "geometry", "beats_per_row",
                                &IniFile::get_uint64,
                                config.geometry.beats_per_row));
  HBMVOLT_RETURN_IF_ERROR(
      config.geometry.validate());

  // [faults]
  auto& faults = config.fault_config;
  HBMVOLT_RETURN_IF_ERROR(apply_mv(ini, "faults", "v_min_mv", faults.v_min));
  HBMVOLT_RETURN_IF_ERROR(
      apply_mv(ini, "faults", "v_first_flip_mv", faults.v_first_flip));
  HBMVOLT_RETURN_IF_ERROR(
      apply_mv(ini, "faults", "v_all_faulty_mv", faults.v_all_faulty));
  HBMVOLT_RETURN_IF_ERROR(
      apply_mv(ini, "faults", "v_critical_mv", faults.v_critical));
  HBMVOLT_RETURN_IF_ERROR(apply(ini, "faults", "stuck_at_one_share",
                                &IniFile::get_double,
                                faults.stuck_at_one_share));
  HBMVOLT_RETURN_IF_ERROR(apply(ini, "faults", "bulk_mid_volts",
                                &IniFile::get_double,
                                faults.bulk_mid_volts));
  HBMVOLT_RETURN_IF_ERROR(apply(ini, "faults", "bulk_sigma_volts",
                                &IniFile::get_double,
                                faults.bulk_sigma_volts));
  HBMVOLT_RETURN_IF_ERROR(apply(ini, "faults", "tail_k_weak",
                                &IniFile::get_double, faults.tail_k_weak));
  HBMVOLT_RETURN_IF_ERROR(apply(ini, "faults", "tail_k_medium",
                                &IniFile::get_double, faults.tail_k_medium));
  HBMVOLT_RETURN_IF_ERROR(apply(ini, "faults", "tail_k_strong",
                                &IniFile::get_double, faults.tail_k_strong));
  HBMVOLT_RETURN_IF_ERROR(apply(ini, "faults", "temperature_c",
                                &IniFile::get_double, faults.temperature_c));
  HBMVOLT_RETURN_IF_ERROR(apply(ini, "faults", "alpha_stuck_weight",
                                &IniFile::get_double,
                                faults.alpha_stuck_weight));

  // [clustering]
  HBMVOLT_RETURN_IF_ERROR(apply(ini, "clustering", "cluster_count",
                                &IniFile::get_uint64,
                                config.weak_config.cluster_count));
  HBMVOLT_RETURN_IF_ERROR(apply(ini, "clustering", "cluster_rows",
                                &IniFile::get_uint64,
                                config.weak_config.cluster_rows));
  HBMVOLT_RETURN_IF_ERROR(apply(ini, "clustering", "cluster_key_shift",
                                &IniFile::get_uint64,
                                config.weak_config.cluster_key_shift));

  // [power]
  if (ini.has("power", "p_full_load_w")) {
    auto value = ini.get_double("power", "p_full_load_w");
    if (!value.is_ok()) return value.status();
    config.power_config.p_full_load = Watts{value.value()};
  }
  HBMVOLT_RETURN_IF_ERROR(apply(ini, "power", "idle_fraction",
                                &IniFile::get_double,
                                config.power_config.idle_fraction));

  // [regulator]
  HBMVOLT_RETURN_IF_ERROR(apply_mv(ini, "regulator", "vout_default_mv",
                                   config.regulator_config.vout_default));
  HBMVOLT_RETURN_IF_ERROR(apply_mv(ini, "regulator", "vout_max_mv",
                                   config.regulator_config.vout_max));
  if (ini.has("regulator", "droop_ohms")) {
    auto value = ini.get_double("regulator", "droop_ohms");
    if (!value.is_ok()) return value.status();
    config.regulator_config.droop = Ohms{value.value()};
  }

  // [monitor]
  if (ini.has("monitor", "shunt_ohms")) {
    auto value = ini.get_double("monitor", "shunt_ohms");
    if (!value.is_ok()) return value.status();
    config.monitor_config.shunt = Ohms{value.value()};
  }
  HBMVOLT_RETURN_IF_ERROR(apply(ini, "monitor", "noise_sigma_amps",
                                &IniFile::get_double,
                                config.monitor_config.noise_sigma_amps));
  HBMVOLT_RETURN_IF_ERROR(apply(ini, "monitor", "max_amps",
                                &IniFile::get_double,
                                config.monitor_max_amps));

  // [axi]
  if (ini.has("axi", "clock_hz")) {
    auto value = ini.get_double("axi", "clock_hz");
    if (!value.is_ok()) return value.status();
    config.axi_clock = Hertz{value.value()};
  }
  HBMVOLT_RETURN_IF_ERROR(apply(ini, "axi", "port_efficiency",
                                &IniFile::get_double,
                                config.port_efficiency));

  // [board]
  HBMVOLT_RETURN_IF_ERROR(
      apply(ini, "board", "seed", &IniFile::get_uint64, config.seed));

  return config;
}

Result<BoardConfig> load_board_config(const std::string& path) {
  auto ini = IniFile::load(path);
  if (!ini.is_ok()) return ini.status();
  return board_config_from_ini(ini.value());
}

IniFile board_config_to_ini(const BoardConfig& config) {
  IniFile ini;
  const auto set_u64 = [&ini](const char* section, const char* key,
                              std::uint64_t value) {
    ini.set(section, key, std::to_string(value));
  };
  const auto set_f = [&ini](const char* section, const char* key,
                            double value) {
    ini.set(section, key, format_double(value, 10));
  };

  set_u64("geometry", "stacks", config.geometry.stacks);
  set_u64("geometry", "channels_per_stack",
          config.geometry.channels_per_stack);
  set_u64("geometry", "pcs_per_channel", config.geometry.pcs_per_channel);
  set_u64("geometry", "bits_per_pc", config.geometry.bits_per_pc);
  set_u64("geometry", "banks_per_pc", config.geometry.banks_per_pc);
  set_u64("geometry", "beats_per_row", config.geometry.beats_per_row);

  const auto& faults = config.fault_config;
  set_u64("faults", "v_min_mv", static_cast<std::uint64_t>(faults.v_min.value));
  set_u64("faults", "v_first_flip_mv",
          static_cast<std::uint64_t>(faults.v_first_flip.value));
  set_u64("faults", "v_all_faulty_mv",
          static_cast<std::uint64_t>(faults.v_all_faulty.value));
  set_u64("faults", "v_critical_mv",
          static_cast<std::uint64_t>(faults.v_critical.value));
  set_f("faults", "stuck_at_one_share", faults.stuck_at_one_share);
  set_f("faults", "bulk_mid_volts", faults.bulk_mid_volts);
  set_f("faults", "bulk_sigma_volts", faults.bulk_sigma_volts);
  set_f("faults", "tail_k_weak", faults.tail_k_weak);
  set_f("faults", "tail_k_medium", faults.tail_k_medium);
  set_f("faults", "tail_k_strong", faults.tail_k_strong);
  set_f("faults", "temperature_c", faults.temperature_c);
  set_f("faults", "alpha_stuck_weight", faults.alpha_stuck_weight);

  set_u64("clustering", "cluster_count", config.weak_config.cluster_count);
  set_u64("clustering", "cluster_rows", config.weak_config.cluster_rows);
  set_u64("clustering", "cluster_key_shift",
          config.weak_config.cluster_key_shift);

  set_f("power", "p_full_load_w", config.power_config.p_full_load.value);
  set_f("power", "idle_fraction", config.power_config.idle_fraction);

  set_u64("regulator", "vout_default_mv",
          static_cast<std::uint64_t>(config.regulator_config.vout_default.value));
  set_u64("regulator", "vout_max_mv",
          static_cast<std::uint64_t>(config.regulator_config.vout_max.value));
  set_f("regulator", "droop_ohms", config.regulator_config.droop.value);

  set_f("monitor", "shunt_ohms", config.monitor_config.shunt.value);
  set_f("monitor", "noise_sigma_amps", config.monitor_config.noise_sigma_amps);
  set_f("monitor", "max_amps", config.monitor_max_amps);

  set_f("axi", "clock_hz", config.axi_clock.value);
  set_f("axi", "port_efficiency", config.port_efficiency);

  set_u64("board", "seed", config.seed);
  return ini;
}

}  // namespace hbmvolt::board
