// The full test platform: a behavioral model of the Xilinx VCU128 board
// as the paper's experiments see it.
//
//   host (this API / the core:: experiment drivers)
//     | PMBus
//     +-- ISL68301 regulator  ----> VCC_HBM rail ----> 2x HbmStack
//     +-- INA226 power monitor <--- senses the rail
//     |
//     +-- 2x StackController, each with 16 AXI traffic generators
//
// The board wires the regulator's output to the fault injector and both
// stacks, the rail's load model back to the regulator, and the INA226's
// probe to the rail -- so setting a voltage over PMBus changes fault
// behavior, and reading power goes through real register math.

#pragma once

#include <cstdint>
#include <memory>

#include "axi/controller.hpp"
#include "common/retry.hpp"
#include "common/status.hpp"
#include "common/units.hpp"
#include "faults/fault_overlay.hpp"
#include "hbm/ip_registers.hpp"
#include "hbm/stack.hpp"
#include "pmbus/bus.hpp"
#include "pmbus/isl68301.hpp"
#include "power/rail.hpp"
#include "sensors/ina226.hpp"

namespace hbmvolt::core {
class ThreadPool;
}

namespace hbmvolt::board {

struct BoardConfig {
  hbm::HbmGeometry geometry = hbm::HbmGeometry::simulation_default();
  faults::FaultModelConfig fault_config;
  faults::WeakCellConfig weak_config;
  power::PowerModelConfig power_config;
  power::Isl68301::Config regulator_config;
  sensors::Ina226::Config monitor_config;
  Hertz axi_clock{axi::TrafficGenerator::kDefaultClockHz};
  double port_efficiency = axi::TrafficGenerator::kDefaultEfficiency;
  /// Full-scale current for INA226 calibration.
  double monitor_max_amps = 40.0;
  std::uint64_t seed = 0xB0A2D;
};

class Vcu128Board {
 public:
  explicit Vcu128Board(BoardConfig config = {});

  // Non-copyable, non-movable: peripherals hold references into the board.
  Vcu128Board(const Vcu128Board&) = delete;
  Vcu128Board& operator=(const Vcu128Board&) = delete;

  [[nodiscard]] const BoardConfig& config() const noexcept { return config_; }
  [[nodiscard]] const hbm::HbmGeometry& geometry() const noexcept {
    return config_.geometry;
  }

  // Component access.
  [[nodiscard]] pmbus::Bus& bus() noexcept { return bus_; }
  [[nodiscard]] power::Isl68301Driver& regulator() noexcept {
    return *regulator_driver_;
  }
  [[nodiscard]] sensors::Ina226Driver& power_monitor() noexcept {
    return *monitor_driver_;
  }
  [[nodiscard]] hbm::HbmStack& stack(unsigned index);
  [[nodiscard]] axi::StackController& controller(unsigned index);
  /// APB register interface of a stack's HBM IP core.
  [[nodiscard]] hbm::HbmIpCore& ip_core(unsigned index);
  [[nodiscard]] faults::FaultInjector& injector() noexcept {
    return *injector_;
  }
  [[nodiscard]] power::PowerRail& rail() noexcept { return *rail_; }
  [[nodiscard]] const power::PowerModel& power_model() const noexcept {
    return rail_->model();
  }
  /// The regulator *model* (the slave device itself, not the host driver);
  /// chaos injection hangs its vout listener here.
  [[nodiscard]] power::Isl68301& regulator_model() noexcept {
    return *regulator_;
  }

  // ---- Host-level operations the experiments use ----

  /// Commands VCC_HBM over PMBus.  The regulator's UV fault limit is
  /// lowered during board bring-up, so any voltage down to 0 V is allowed.
  Status set_hbm_voltage(Millivolts v);
  [[nodiscard]] Millivolts hbm_voltage() const;

  /// Reads the rail power from the INA226 (register path: quantization
  /// and measurement noise included).
  Result<Watts> measure_power();
  /// Averages `samples` INA226 readings (sequential bus transactions; the
  /// monitor's noise generator advances once per reading).
  Result<Watts> measure_power_averaged(unsigned samples);
  /// Snapshot measurement for the parallel sweep pipeline: freezes the
  /// rail state once, then computes `samples` INA-path readings whose
  /// noise comes from counter-seeded per-sample streams.  Workers never
  /// observe a torn rail state or share a generator, so the average is
  /// byte-identical at any thread count (including the serial pool-less
  /// path).
  Result<Watts> measure_power_snapshot(unsigned samples,
                                       core::ThreadPool* pool = nullptr);

  /// Enables `count` of the 32 AXI ports (spread evenly across stacks)
  /// and updates the rail's bandwidth utilization accordingly.
  void set_active_ports(unsigned count);
  [[nodiscard]] unsigned active_ports() const;
  [[nodiscard]] unsigned total_ports() const noexcept {
    return config_.geometry.total_pcs();
  }
  /// Utilization = active ports / total ports.
  [[nodiscard]] double utilization() const;

  /// Broadcasts a macro command to the enabled ports of both stacks;
  /// returns combined per-run results (index 0 = stack 0).  With a pool,
  /// every enabled port of *both* stacks runs concurrently (the paper's
  /// 32 simultaneous traffic generators); per-PC state is disjoint and
  /// aggregation is serial in (stack, port) order, so results are
  /// byte-identical to the pool-less path.
  std::vector<axi::RunResult> run_traffic(const axi::TgCommand& command,
                                          core::ThreadPool* pool = nullptr);

  /// Fault-injection hook consulted before each per-port traffic dispatch.
  /// Called with (run sequence number, stack, port, attempt); a non-OK
  /// return fails that dispatch attempt, which the board retries under
  /// the traffic retry policy.  Must be a pure function of its arguments
  /// (it runs concurrently from sweep workers).  Pass nullptr to clear.
  using AxiFaultHook = std::function<Status(
      std::uint64_t run, unsigned stack, unsigned port, unsigned attempt)>;
  void set_axi_fault_hook(AxiFaultHook hook) {
    axi_fault_hook_ = std::move(hook);
  }

  /// Retry knobs for per-port traffic dispatch under the AXI fault hook.
  void set_traffic_retry_policy(RetryPolicy policy) noexcept {
    traffic_retry_ = policy;
  }

  /// True while every stack responds.
  [[nodiscard]] bool responding() const;

  /// Snapshot-measurement sequence number.  Each measure_power_snapshot
  /// call consumes one; the checkpoint records it so a resumed campaign
  /// replays the exact per-sample noise streams of the original run.
  [[nodiscard]] std::uint64_t power_snapshot_seq() const noexcept {
    return power_snapshot_id_;
  }
  void set_power_snapshot_seq(std::uint64_t seq) noexcept {
    power_snapshot_id_ = seq;
  }

  /// Power-down / restart: OPERATION off then on via PMBus, which clears
  /// a crash (contents are lost).  Restores the previous voltage? No --
  /// the regulator comes back at its default (nominal) voltage, matching
  /// a real power cycle.
  Status power_cycle();

 private:
  BoardConfig config_;
  pmbus::Bus bus_;
  std::unique_ptr<faults::FaultInjector> injector_;
  std::unique_ptr<power::PowerRail> rail_;
  std::unique_ptr<power::Isl68301> regulator_;
  std::unique_ptr<sensors::Ina226> monitor_;
  std::unique_ptr<power::Isl68301Driver> regulator_driver_;
  std::unique_ptr<sensors::Ina226Driver> monitor_driver_;
  std::vector<std::unique_ptr<hbm::HbmStack>> stacks_;
  std::vector<std::unique_ptr<axi::StackController>> controllers_;
  std::vector<std::unique_ptr<hbm::HbmIpCore>> ip_cores_;
  AxiFaultHook axi_fault_hook_;
  RetryPolicy traffic_retry_;
  RetryPolicy pmbus_retry_;
  /// Serial per-run_traffic sequence number fed to the AXI fault hook.
  std::uint64_t traffic_run_seq_ = 0;
  /// Distinguishes the noise streams of successive snapshot measurements.
  std::uint64_t power_snapshot_id_ = 0;
};

}  // namespace hbmvolt::board
