#include "board/vcu128.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "core/parallel.hpp"
#include "telemetry/telemetry.hpp"
#include "faults/fault_model.hpp"
#include "power/power_model.hpp"

namespace hbmvolt::board {

Vcu128Board::Vcu128Board(BoardConfig config) : config_(std::move(config)) {
  HBMVOLT_REQUIRE(config_.geometry.validate().is_ok(), "invalid geometry");

  // Fault machinery: one injector spanning every PC of both stacks.
  faults::FaultModelConfig fault_config = config_.fault_config;
  fault_config.seed = mix_seed(config_.seed, 0xFA017);
  injector_ = std::make_unique<faults::FaultInjector>(
      faults::FaultModel(config_.geometry, fault_config),
      config_.weak_config);

  // Power rail: the alpha(v) hook couples stuck cells to power draw.
  const faults::FaultModel* model = &injector_->model();
  rail_ = std::make_unique<power::PowerRail>(power::PowerModel(
      config_.power_config,
      [model](Millivolts v) { return model->alpha_multiplier(v); }));

  // Regulator with its load model and output listeners.
  regulator_ = std::make_unique<power::Isl68301>(config_.regulator_config);
  regulator_->set_load_model(
      [this](Millivolts v) { return rail_->load_current(v); });

  // HBM stacks react to the regulated voltage.
  for (unsigned s = 0; s < config_.geometry.stacks; ++s) {
    stacks_.push_back(std::make_unique<hbm::HbmStack>(
        config_.geometry, s, *injector_, mix_seed(config_.seed, 0x57AC + s)));
  }
  regulator_->add_vout_listener([this](Millivolts v) {
    rail_->on_voltage(v);
    injector_->set_voltage(v);
    for (auto& stack : stacks_) stack->on_voltage_change(v);
  });

  // Power monitor senses the rail.
  monitor_ = std::make_unique<sensors::Ina226>(config_.monitor_config);
  monitor_->set_rail_probe([this]() { return rail_->sample(); });

  // Attach peripherals to the host PMBus.
  HBMVOLT_REQUIRE(bus_.attach(regulator_.get()).is_ok(),
                  "regulator bus attach failed");
  HBMVOLT_REQUIRE(bus_.attach(monitor_.get()).is_ok(),
                  "monitor bus attach failed");

  // Controllers (16 TGs per stack) and their IP-core register interfaces.
  for (unsigned s = 0; s < config_.geometry.stacks; ++s) {
    controllers_.push_back(std::make_unique<axi::StackController>(
        *stacks_[s], config_.axi_clock, config_.port_efficiency));
    ip_cores_.push_back(std::make_unique<hbm::HbmIpCore>(
        *controllers_.back(),
        Celsius{config_.fault_config.temperature_c}));
  }

  // Host drivers + board bring-up: calibrate the INA226 and drop the
  // regulator's UV fault limit so undervolting experiments are possible.
  regulator_driver_ = std::make_unique<power::Isl68301Driver>(
      bus_, config_.regulator_config.address);
  monitor_driver_ = std::make_unique<sensors::Ina226Driver>(
      bus_, config_.monitor_config.address);
  HBMVOLT_REQUIRE(regulator_driver_->probe().is_ok(), "regulator probe failed");
  HBMVOLT_REQUIRE(
      regulator_driver_->set_uv_fault_limit(Millivolts{0}).is_ok(),
      "UV limit setup failed");
  HBMVOLT_REQUIRE(monitor_driver_
                      ->configure(config_.monitor_max_amps,
                                  config_.monitor_config.shunt,
                                  /*averages=*/16)
                      .is_ok(),
                  "INA226 calibration failed");

  // Propagate the initial (nominal) voltage to all listeners.
  HBMVOLT_REQUIRE(
      regulator_driver_->set_vout(config_.regulator_config.vout_default)
          .is_ok(),
      "initial voltage set failed");

  // The board comes up idle; workloads enable ports explicitly.
  set_active_ports(0);
}

hbm::HbmStack& Vcu128Board::stack(unsigned index) {
  HBMVOLT_REQUIRE(index < stacks_.size(), "stack index out of range");
  return *stacks_[index];
}

axi::StackController& Vcu128Board::controller(unsigned index) {
  HBMVOLT_REQUIRE(index < controllers_.size(), "controller index out of range");
  return *controllers_[index];
}

hbm::HbmIpCore& Vcu128Board::ip_core(unsigned index) {
  HBMVOLT_REQUIRE(index < ip_cores_.size(), "IP core index out of range");
  return *ip_cores_[index];
}

Status Vcu128Board::set_hbm_voltage(Millivolts v) {
  return regulator_driver_->set_vout(v);
}

Millivolts Vcu128Board::hbm_voltage() const {
  return regulator_->vout_nominal();
}

Result<Watts> Vcu128Board::measure_power() {
  return monitor_driver_->read_power();
}

Result<Watts> Vcu128Board::measure_power_averaged(unsigned samples) {
  if (samples == 0) return invalid_argument("need at least one sample");
  double sum = 0.0;
  for (unsigned i = 0; i < samples; ++i) {
    auto p = monitor_driver_->read_power();
    if (!p.is_ok()) return p.status();
    sum += p.value().value;
  }
  return Watts{sum / samples};
}

Result<Watts> Vcu128Board::measure_power_snapshot(unsigned samples,
                                                  core::ThreadPool* pool) {
  if (samples == 0) return invalid_argument("need at least one sample");
  // Freeze the rail once: every sample of this step sees one physical
  // operating point, so workers never race the regulator or the rail's
  // latched registers.  Only the measurement noise varies per sample.
  telemetry::Span span("power.snapshot", samples);
  if (auto* tel = telemetry::Telemetry::active()) {
    tel->count("power.samples", samples);
  }
  const sensors::RailSample snap = rail_->sample();
  const std::uint64_t id = power_snapshot_id_++;
  const double lsb = monitor_driver_->current_lsb();
  std::vector<double> watts(samples, 0.0);
  core::parallel_for_each(pool, samples, [&](std::size_t i) {
    // Per-sample counter-seeded noise stream: value depends only on
    // (monitor seed, snapshot, sample index), never on thread schedule.
    Xoshiro256 rng(stream_seed(config_.monitor_config.seed, 0x50A9, id, i));
    const std::uint16_t reg = monitor_->power_register_for(snap, rng.normal());
    watts[i] = reg * 25.0 * lsb;
  });
  double sum = 0.0;
  for (const double w : watts) sum += w;  // fixed order: FP-deterministic
  return Watts{sum / samples};
}

void Vcu128Board::set_active_ports(unsigned count) {
  HBMVOLT_REQUIRE(count <= total_ports(), "more ports than exist");
  // Spread enabled ports evenly: fill stacks round-robin so 16 active
  // ports engage 8 PCs on each stack.
  const unsigned stacks = config_.geometry.stacks;
  std::vector<unsigned> per_stack(stacks, 0);
  for (unsigned i = 0; i < count; ++i) ++per_stack[i % stacks];
  for (unsigned s = 0; s < stacks; ++s) {
    controllers_[s]->set_enabled_count(per_stack[s]);
  }
  rail_->set_utilization(utilization());
}

unsigned Vcu128Board::active_ports() const {
  unsigned count = 0;
  for (const auto& controller : controllers_) {
    count += controller->enabled_ports();
  }
  return count;
}

double Vcu128Board::utilization() const {
  return static_cast<double>(active_ports()) /
         static_cast<double>(total_ports());
}

std::vector<axi::RunResult> Vcu128Board::run_traffic(
    const axi::TgCommand& command, core::ThreadPool* pool) {
  const unsigned stacks = static_cast<unsigned>(controllers_.size());

  // Phase 1 (serial): route every enabled port of both stacks and build
  // the flat (stack, port) work list — up to 32 items, one per TG.
  struct Item {
    unsigned stack;
    unsigned port;
    std::size_t slot;  // index into this stack's ports/deltas vectors
  };
  const std::uint64_t run = traffic_run_seq_++;
  std::vector<std::vector<unsigned>> ports(stacks);
  std::vector<Item> items;
  for (unsigned s = 0; s < stacks; ++s) {
    ports[s] = controllers_[s]->enabled_port_list();
    controllers_[s]->route_ports(ports[s]);
    for (std::size_t k = 0; k < ports[s].size(); ++k) {
      items.push_back({s, ports[s][k], k});
    }
  }

  // Phase 2 (parallel): each item owns its output slot and touches only
  // its own TG + PC state, so any schedule produces the same deltas.
  // Under the AXI fault hook, a failed dispatch attempt never reaches the
  // TG (no state advances), so a retried transient yields the same delta
  // as a clean run; an exhausted retry reports the port as NAKed.  A
  // genuine NAK (crashed stack) returns OK with the nak flag set and is
  // never retried — retrying cannot un-crash a stack.
  std::vector<std::vector<axi::TgStats>> deltas(stacks);
  std::vector<std::vector<std::uint8_t>> naks(stacks);
  for (unsigned s = 0; s < stacks; ++s) {
    deltas[s].resize(ports[s].size());
    naks[s].assign(ports[s].size(), 0);
  }
  core::parallel_for_each(pool, items.size(), [&](std::size_t i) {
    const Item& item = items[i];
    bool nak = false;
    if (axi_fault_hook_) {
      unsigned attempt = 0;
      Status dispatched =
          retry_status(traffic_retry_, "axi.dispatch", [&]() -> Status {
            const unsigned a = attempt++;
            HBMVOLT_RETURN_IF_ERROR(
                axi_fault_hook_(run, item.stack, item.port, a));
            nak = false;
            deltas[item.stack][item.slot] =
                controllers_[item.stack]->run_routed_port(item.port, command,
                                                          &nak);
            return Status::ok();
          });
      if (!dispatched.is_ok()) nak = true;
    } else {
      deltas[item.stack][item.slot] =
          controllers_[item.stack]->run_routed_port(item.port, command, &nak);
    }
    naks[item.stack][item.slot] = nak ? 1 : 0;
  });

  // Phase 3 (serial, ascending stack order): assemble per-stack results.
  // The stacks run concurrently: wall-clock is the slower one, not the
  // sum, and rail energy integrates over that shared interval.
  std::vector<axi::RunResult> results;
  results.reserve(stacks);
  SimTime elapsed = 0;
  for (unsigned s = 0; s < stacks; ++s) {
    const bool responding =
        std::none_of(naks[s].begin(), naks[s].end(),
                     [](std::uint8_t nak) { return nak != 0; });
    axi::RunResult result =
        controllers_[s]->assemble_result(ports[s], deltas[s], responding);
    elapsed = std::max(elapsed, result.elapsed);
    results.push_back(std::move(result));
  }
  rail_->advance(to_seconds(elapsed));
  return results;
}

bool Vcu128Board::responding() const {
  for (const auto& stack : stacks_) {
    if (!stack->responding()) return false;
  }
  return true;
}

Status Vcu128Board::power_cycle() {
  HBMVOLT_LOG_INFO("power-cycling VCC_HBM");
  if (auto* tel = telemetry::Telemetry::active()) {
    tel->count("board.power_cycles");
  }
  // Every leg of the cycle retries: a transient NACK during recovery must
  // not strand the board half-restarted.  clear_faults and set_vout go
  // through the regulator driver, which carries its own retry + read-back
  // verify; the raw OPERATION writes retry here.
  HBMVOLT_RETURN_IF_ERROR(retry_status(pmbus_retry_, "board.operation", [&] {
    return bus_.write_byte(
        config_.regulator_config.address,
        static_cast<std::uint8_t>(pmbus::Command::kOperation), 0x00);
  }));
  HBMVOLT_RETURN_IF_ERROR(regulator_driver_->clear_faults());
  // Re-command nominal voltage while the output is still off: coming back
  // up at a stale undervolted setpoint would crash the stacks again.
  HBMVOLT_RETURN_IF_ERROR(
      regulator_driver_->set_vout(config_.regulator_config.vout_default));
  return retry_status(pmbus_retry_, "board.operation", [&] {
    return bus_.write_byte(
        config_.regulator_config.address,
        static_cast<std::uint8_t>(pmbus::Command::kOperation),
        pmbus::kOperationOn);
  });
}

}  // namespace hbmvolt::board
