// BoardConfig <-> INI file mapping, so the CLI tools can run
// parameterized studies ("what if the guardband were narrower?", "what
// does a hotter part look like?") without recompiling.
//
// Every key is optional; absent keys keep the paper-calibrated defaults.
// `board_config_to_ini` writes the complete key set, so generating a
// template is: save defaults, edit, load.

#pragma once

#include "board/vcu128.hpp"
#include "common/ini.hpp"
#include "common/status.hpp"

namespace hbmvolt::board {

/// Applies the INI file's keys on top of default BoardConfig values.
[[nodiscard]] Result<BoardConfig> board_config_from_ini(const IniFile& ini);

/// Loads and applies a config file.
[[nodiscard]] Result<BoardConfig> load_board_config(const std::string& path);

/// Serializes a config as INI (full key set).
[[nodiscard]] IniFile board_config_to_ini(const BoardConfig& config);

}  // namespace hbmvolt::board
