#include "axi/switch.hpp"

#include <cstdlib>
#include <numeric>

namespace hbmvolt::axi {

SwitchNetwork::SwitchNetwork(unsigned ports) : ports_(ports), routes_(ports) {
  HBMVOLT_REQUIRE(ports > 0, "switch needs at least one port");
  reset_routes();
}

void SwitchNetwork::reset_routes() {
  std::iota(routes_.begin(), routes_.end(), 0u);
}

Status SwitchNetwork::route(unsigned port, unsigned pc) {
  if (port >= ports_ || pc >= ports_) {
    return out_of_range("switch port/PC index out of range");
  }
  if (!enabled_ && pc != port) {
    return failed_precondition(
        "non-identity routing requires the switching network enabled");
  }
  routes_[port] = pc;
  return Status::ok();
}

unsigned SwitchNetwork::target_pc(unsigned port) const {
  HBMVOLT_REQUIRE(port < ports_, "switch port out of range");
  return enabled_ ? routes_[port] : port;
}

double SwitchNetwork::throughput_derate(unsigned port) const {
  HBMVOLT_REQUIRE(port < ports_, "switch port out of range");
  if (!enabled_) return 1.0;
  // Hop distance between 4-port switch groups.
  const int group_a = static_cast<int>(port / 4);
  const int group_b = static_cast<int>(routes_[port] / 4);
  const int hops = std::abs(group_a - group_b);
  double derate = kEnabledDerate - kPerHopDerate * hops;
  return derate < 0.5 ? 0.5 : derate;
}

}  // namespace hbmvolt::axi
