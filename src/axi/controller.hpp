// Per-stack HBM controller, mirroring the paper's host-programmable
// controllers (§II-B): one per stack, each owning 16 AXI traffic
// generators (one per AXI port / pseudo-channel), the stack's switching
// network, and the logic to broadcast macro commands, gather responses,
// and report statistics back to the host.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "axi/switch.hpp"
#include "axi/traffic_gen.hpp"
#include "common/status.hpp"
#include "common/units.hpp"
#include "hbm/stack.hpp"

namespace hbmvolt::core {
class ThreadPool;
}

namespace hbmvolt::axi {

/// Outcome of broadcasting one macro command over the enabled ports.
struct RunResult {
  /// Wall-clock of the run: ports operate concurrently, so this is the
  /// maximum per-port busy time.
  SimTime elapsed = 0;
  /// Per-port statistics deltas for this run (indexed by port).
  std::vector<TgStats> per_port;
  /// Bytes moved per second across all enabled ports during the run.
  GigabytesPerSecond aggregate_bandwidth{0.0};
  unsigned ports_active = 0;
  /// False when the stack NAKed traffic (crashed / powered off).
  bool stack_responding = true;

  [[nodiscard]] TgStats totals() const noexcept;
};

class StackController {
 public:
  StackController(hbm::HbmStack& stack,
                  Hertz clock = Hertz{TrafficGenerator::kDefaultClockHz},
                  double efficiency = TrafficGenerator::kDefaultEfficiency);

  [[nodiscard]] hbm::HbmStack& stack() noexcept { return stack_; }
  [[nodiscard]] unsigned port_count() const noexcept {
    return static_cast<unsigned>(ports_.size());
  }

  [[nodiscard]] TrafficGenerator& port(unsigned index);
  [[nodiscard]] SwitchNetwork& switch_network() noexcept { return switch_; }

  /// Enables exactly the ports whose mask bit is set.
  void set_enabled_mask(std::uint32_t mask);
  /// Enables the first `count` ports, disables the rest.
  void set_enabled_count(unsigned count);
  [[nodiscard]] unsigned enabled_ports() const;

  /// Clears all TG statistics (Algorithm 1's reset_axi_ports()).
  void reset_ports();

  /// Broadcasts `command` to every enabled port.  Each port targets the
  /// PC the switching network routes it to.  With a pool, the enabled
  /// ports run concurrently (the paper's 32-TGs-at-once access model);
  /// results are byte-identical to the serial path because each port owns
  /// its slot and aggregation happens afterwards in port order.
  RunResult run(const TgCommand& command, core::ThreadPool* pool = nullptr);

  /// Runs a command on one specific port only (per-PC tests, Fig 5).
  RunResult run_on_port(unsigned index, const TgCommand& command);

  /// Cumulative stats summed over all ports.
  [[nodiscard]] TgStats aggregate_stats() const;

  // ---- Split-phase API for board-level fan-out across both stacks ----
  // Phases: route_ports (serial: enable + switch routing + baseline
  // stats), run_routed_port (safe to call concurrently for *distinct*
  // indices), assemble_result (serial, ascending port order).  run() is
  // these three phases over one stack; the board flattens (stack, port)
  // pairs through the same phases to fan 32 wide.

  /// Ports currently enabled, ascending.
  [[nodiscard]] std::vector<unsigned> enabled_port_list() const;

  /// Enables `ports` and applies switch routing/derate.  Must precede
  /// run_routed_port for those indices.
  void route_ports(const std::vector<unsigned>& ports);

  /// Executes `command` on one routed port and returns this run's stats
  /// delta.  Touches only that port's state (plus its PC's array and
  /// overlay slot), so distinct indices may run on different threads.
  /// Sets *unavailable when the stack NAKed the traffic.
  TgStats run_routed_port(unsigned index, const TgCommand& command,
                          bool* unavailable);

  /// Builds the RunResult from per-port deltas (parallel to `ports`),
  /// aggregating in ascending port order.
  [[nodiscard]] RunResult assemble_result(
      const std::vector<unsigned>& ports, const std::vector<TgStats>& deltas,
      bool stack_responding) const;

 private:
  RunResult run_ports(const TgCommand& command,
                      const std::vector<unsigned>& ports,
                      core::ThreadPool* pool);

  hbm::HbmStack& stack_;
  SwitchNetwork switch_;
  std::vector<std::unique_ptr<TrafficGenerator>> ports_;
};

}  // namespace hbmvolt::axi
