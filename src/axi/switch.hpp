// Model of the AXI switching network inside the Xilinx HBM IP.
//
// When enabled, the crossbar lets any AXI port reach any pseudo-channel of
// its stack at the cost of extra latency and reduced sustained bandwidth;
// when disabled (the paper's configuration, §II-C: "we disable the
// switching network [to remove] any impact ... on the results"), each port
// is hardwired to its own PC at full throughput.  The ablation bench
// quantifies the cost the paper avoided.

#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"

namespace hbmvolt::axi {

class SwitchNetwork {
 public:
  /// Sustained-bandwidth multiplier when the crossbar is in the path.
  static constexpr double kEnabledDerate = 0.85;
  /// Additional derate per routing hop away from the home PC (the
  /// crossbar is a 4x4 mesh of switches; distant PCs cross more stages).
  static constexpr double kPerHopDerate = 0.03;

  explicit SwitchNetwork(unsigned ports);

  void set_enabled(bool enabled) noexcept { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Routes `port` to `pc`.  Non-identity routes require the switch to be
  /// enabled.
  Status route(unsigned port, unsigned pc);

  /// Restores the identity routing.
  void reset_routes();

  /// PC a port currently targets (identity when disabled).
  [[nodiscard]] unsigned target_pc(unsigned port) const;

  /// Throughput multiplier for a port under the current configuration.
  [[nodiscard]] double throughput_derate(unsigned port) const;

 private:
  unsigned ports_;
  bool enabled_ = false;
  std::vector<unsigned> routes_;
};

}  // namespace hbmvolt::axi
