#include "axi/controller.hpp"

#include <algorithm>

#include "core/parallel.hpp"

namespace hbmvolt::axi {

TgStats RunResult::totals() const noexcept {
  TgStats total;
  for (const auto& stats : per_port) total += stats;
  return total;
}

StackController::StackController(hbm::HbmStack& stack, Hertz clock,
                                 double efficiency)
    : stack_(stack), switch_(stack.geometry().pcs_per_stack()) {
  const unsigned ports = stack_.geometry().pcs_per_stack();
  ports_.reserve(ports);
  for (unsigned i = 0; i < ports; ++i) {
    ports_.push_back(
        std::make_unique<TrafficGenerator>(stack_, i, clock, efficiency));
  }
}

TrafficGenerator& StackController::port(unsigned index) {
  HBMVOLT_REQUIRE(index < ports_.size(), "port index out of range");
  return *ports_[index];
}

void StackController::set_enabled_mask(std::uint32_t mask) {
  for (unsigned i = 0; i < ports_.size(); ++i) {
    ports_[i]->set_enabled((mask >> i) & 1u);
  }
}

void StackController::set_enabled_count(unsigned count) {
  for (unsigned i = 0; i < ports_.size(); ++i) {
    ports_[i]->set_enabled(i < count);
  }
}

unsigned StackController::enabled_ports() const {
  unsigned count = 0;
  for (const auto& port : ports_) {
    if (port->enabled()) ++count;
  }
  return count;
}

void StackController::reset_ports() {
  for (const auto& port : ports_) port->reset_stats();
}

RunResult StackController::run(const TgCommand& command,
                               core::ThreadPool* pool) {
  return run_ports(command, enabled_port_list(), pool);
}

RunResult StackController::run_on_port(unsigned index,
                                       const TgCommand& command) {
  HBMVOLT_REQUIRE(index < ports_.size(), "port index out of range");
  return run_ports(command, {index}, nullptr);
}

std::vector<unsigned> StackController::enabled_port_list() const {
  std::vector<unsigned> enabled;
  for (unsigned i = 0; i < ports_.size(); ++i) {
    if (ports_[i]->enabled()) enabled.push_back(i);
  }
  return enabled;
}

void StackController::route_ports(const std::vector<unsigned>& ports) {
  for (const unsigned index : ports) {
    HBMVOLT_REQUIRE(index < ports_.size(), "port index out of range");
    TrafficGenerator& tg = *ports_[index];
    if (!tg.enabled()) tg.set_enabled(true);  // explicit single-port runs
    tg.set_pc_local(switch_.target_pc(index));
    tg.set_throughput_derate(switch_.throughput_derate(index));
  }
}

TgStats StackController::run_routed_port(unsigned index,
                                         const TgCommand& command,
                                         bool* unavailable) {
  TrafficGenerator& tg = *ports_[index];
  const TgStats before = tg.stats();
  const Status status = tg.run(command);
  const TgStats after = tg.stats();

  TgStats delta = after;
  delta.beats_written -= before.beats_written;
  delta.beats_read -= before.beats_read;
  delta.flips_1to0 -= before.flips_1to0;
  delta.flips_0to1 -= before.flips_0to1;
  delta.bits_checked -= before.bits_checked;
  delta.slverr -= before.slverr;
  delta.busy_time -= before.busy_time;

  if (unavailable != nullptr) {
    *unavailable = status.code() == StatusCode::kUnavailable;
  }
  return delta;
}

RunResult StackController::assemble_result(const std::vector<unsigned>& ports,
                                           const std::vector<TgStats>& deltas,
                                           bool stack_responding) const {
  RunResult result;
  result.per_port.resize(ports_.size());
  result.stack_responding = stack_responding;
  std::uint64_t bytes = 0;
  for (std::size_t i = 0; i < ports.size(); ++i) {
    const TgStats& delta = deltas[i];
    result.per_port[ports[i]] = delta;
    result.elapsed = std::max(result.elapsed, delta.busy_time);
    bytes += (delta.beats_written + delta.beats_read) *
             (stack_.geometry().bits_per_beat / 8);
    ++result.ports_active;
  }
  if (result.elapsed > 0) {
    result.aggregate_bandwidth = GigabytesPerSecond{
        static_cast<double>(bytes) / to_seconds(result.elapsed).value / 1e9};
  }
  return result;
}

RunResult StackController::run_ports(const TgCommand& command,
                                     const std::vector<unsigned>& ports,
                                     core::ThreadPool* pool) {
  route_ports(ports);
  std::vector<TgStats> deltas(ports.size());
  std::vector<std::uint8_t> unavailable(ports.size(), 0);
  core::parallel_for_each(pool, ports.size(), [&](std::size_t i) {
    bool nak = false;
    deltas[i] = run_routed_port(ports[i], command, &nak);
    unavailable[i] = nak ? 1 : 0;
  });
  const bool responding =
      std::none_of(unavailable.begin(), unavailable.end(),
                   [](std::uint8_t nak) { return nak != 0; });
  return assemble_result(ports, deltas, responding);
}

TgStats StackController::aggregate_stats() const {
  TgStats total;
  for (const auto& port : ports_) total += port->stats();
  return total;
}

}  // namespace hbmvolt::axi
