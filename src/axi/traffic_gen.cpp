#include "axi/traffic_gen.hpp"

#include <algorithm>
#include <bit>
#include <optional>

#include "common/prp.hpp"
#include "common/rng.hpp"
#include "dram/scheduler.hpp"
#include "telemetry/telemetry.hpp"

namespace hbmvolt::axi {

hbm::Beat command_data(const TgCommand& command,
                       std::uint64_t beat) noexcept {
  switch (command.kind) {
    case PatternKind::kSolid:
      return command.pattern;
    case PatternKind::kCheckerboard:
      return (beat & 1) ? hbm::beat_of_all(0xAAAAAAAAAAAAAAAAull)
                        : hbm::beat_of_all(0x5555555555555555ull);
    case PatternKind::kAddressAsData: {
      hbm::Beat data;
      for (unsigned w = 0; w < 4; ++w) data[w] = beat * 4 + w;
      return data;
    }
    case PatternKind::kRandom: {
      hbm::Beat data;
      for (unsigned w = 0; w < 4; ++w) {
        data[w] = splitmix64(command.pattern_seed ^ (beat * 4 + w));
      }
      return data;
    }
  }
  return command.pattern;
}

hbm::WordPattern word_pattern(const TgCommand& command) noexcept {
  switch (command.kind) {
    case PatternKind::kSolid:
      return hbm::WordPattern::repeat(command.pattern);
    case PatternKind::kCheckerboard:
      return hbm::WordPattern::alternate(
          hbm::beat_of_all(0x5555555555555555ull),
          hbm::beat_of_all(0xAAAAAAAAAAAAAAAAull));
    case PatternKind::kAddressAsData:
      return hbm::WordPattern::address();
    case PatternKind::kRandom:
      return hbm::WordPattern::hashed(command.pattern_seed);
  }
  return hbm::WordPattern::repeat(command.pattern);
}

TgStats& TgStats::operator+=(const TgStats& other) noexcept {
  beats_written += other.beats_written;
  beats_read += other.beats_read;
  flips_1to0 += other.flips_1to0;
  flips_0to1 += other.flips_0to1;
  bits_checked += other.bits_checked;
  slverr += other.slverr;
  busy_time += other.busy_time;
  return *this;
}

void count_flips(const hbm::Beat& observed, const hbm::Beat& expected,
                 std::uint64_t& flips_1to0,
                 std::uint64_t& flips_0to1) noexcept {
  for (int i = 0; i < 4; ++i) {
    const std::uint64_t diff = observed[i] ^ expected[i];
    // A differing bit that is 1 in `expected` was a 1->0 flip.
    flips_1to0 += static_cast<unsigned>(std::popcount(diff & expected[i]));
    flips_0to1 += static_cast<unsigned>(std::popcount(diff & ~expected[i]));
  }
}

TrafficGenerator::TrafficGenerator(hbm::HbmStack& stack, unsigned pc_local,
                                   Hertz clock, double efficiency)
    : stack_(stack),
      pc_local_(pc_local),
      clock_(clock),
      efficiency_(efficiency) {
  HBMVOLT_REQUIRE(clock.value > 0.0, "port clock must be positive");
  HBMVOLT_REQUIRE(efficiency > 0.0 && efficiency <= 1.0,
                  "efficiency must be in (0,1]");
}

SimTime TrafficGenerator::flat_time(std::uint64_t beats) const noexcept {
  // Sustained beats/second = clock * efficiency * derate.
  const double rate = clock_.value * efficiency_ * derate_;
  const double seconds = static_cast<double>(beats) / rate;
  return static_cast<SimTime>(seconds * static_cast<double>(kPicosPerSecond));
}

Status TrafficGenerator::run(const TgCommand& command) {
  if (!enabled_) return Status::ok();

  const std::uint64_t total = stack_.geometry().beats_per_pc();
  if (command.start_beat >= total) {
    return out_of_range("TG start beat beyond PC capacity");
  }
  std::uint64_t beats = command.beats == 0 ? total - command.start_beat
                                           : command.beats;
  if (command.start_beat + beats > total) {
    return out_of_range("TG range beyond PC capacity");
  }

  // Identity visit order under flat timing needs no per-beat state, so it
  // dispatches to the batched beat-range engine; random order and
  // command-level DRAM timing keep the per-beat reference loop.
  if (engine_ == EnginePath::kAuto && timing_mode_ == TimingMode::kFlatEfficiency &&
      !(command.random_order && beats > 1)) {
    telemetry::Span span("tg.pattern_test", pc_local_);
    if (auto* tel = telemetry::Telemetry::active()) {
      tel->count("tg.dispatch_batched");
    }
    return run_batched(command, beats);
  }
  telemetry::Span span("tg.pattern_test", pc_local_);
  if (auto* tel = telemetry::Telemetry::active()) {
    tel->count("tg.dispatch_per_beat");
  }
  // The reference loop counts beats one at a time; telemetry totals come
  // from the stats delta so the inner loop stays un-instrumented.
  const TgStats before = stats_;

  // Visit order: identity, or a seeded permutation of the range.
  std::optional<FeistelPermutation> order;
  if (command.random_order && beats > 1) {
    order.emplace(beats, command.order_seed);
  }
  const auto nth_beat = [&](std::uint64_t i) {
    return command.start_beat + (order ? order->forward(i) : i);
  };

  // Optional command-level DRAM timing alongside the flat port model.
  std::optional<dram::PcScheduler> scheduler;
  if (timing_mode_ == TimingMode::kCommandLevel) {
    scheduler.emplace(stack_.geometry(), dram_timings_);
  }
  std::uint64_t beats_transferred = 0;

  if (command.op == MacroOp::kWrite || command.op == MacroOp::kWriteRead) {
    for (std::uint64_t i = 0; i < beats; ++i) {
      const std::uint64_t beat = nth_beat(i);
      const Status status =
          stack_.write_beat(pc_local_, beat, command_data(command, beat));
      if (!status.is_ok()) {
        ++stats_.slverr;
        return status;  // a crashed stack NAKs everything: abort the macro
      }
      if (scheduler) scheduler->access(true, beat);
      ++stats_.beats_written;
      ++beats_transferred;
    }
  }

  if (command.op == MacroOp::kRead || command.op == MacroOp::kWriteRead) {
    for (std::uint64_t i = 0; i < beats; ++i) {
      const std::uint64_t beat = nth_beat(i);
      auto data = stack_.read_beat(pc_local_, beat);
      if (!data.is_ok()) {
        ++stats_.slverr;
        return data.status();
      }
      if (scheduler) scheduler->access(false, beat);
      ++stats_.beats_read;
      ++beats_transferred;
      if (command.check) {
        count_flips(data.value(), command_data(command, beat),
                    stats_.flips_1to0, stats_.flips_0to1);
        stats_.bits_checked += stack_.geometry().bits_per_beat;
      }
    }
  }

  // Elapsed time: the slower of the AXI port domain and (when modelled)
  // the DRAM command domain -- two pipelined resources, so the
  // bottleneck sets the rate.
  SimTime elapsed = flat_time(beats_transferred);
  if (scheduler) {
    const dram::AccessStats dram_stats = scheduler->finish();
    const double seconds = static_cast<double>(dram_stats.cycles) /
                           dram_timings_.clock_hz;
    elapsed = std::max(elapsed,
                       static_cast<SimTime>(
                           seconds * static_cast<double>(kPicosPerSecond)));
  }
  stats_.busy_time += elapsed;

  if (auto* tel = telemetry::Telemetry::active()) {
    tel->count("tg.beats_written", stats_.beats_written - before.beats_written);
    tel->count("tg.beats_read", stats_.beats_read - before.beats_read);
    tel->count("tg.words_compared",
               (stats_.bits_checked - before.bits_checked) / 64);
    tel->count("tg.flips", (stats_.flips_1to0 - before.flips_1to0) +
                               (stats_.flips_0to1 - before.flips_0to1));
  }
  return Status::ok();
}

Status TrafficGenerator::run_batched(const TgCommand& command,
                                     std::uint64_t beats) {
  const hbm::WordPattern pattern = word_pattern(command);
  const TgStats before = stats_;
  std::uint64_t transferred = 0;

  if (command.op == MacroOp::kWrite || command.op == MacroOp::kWriteRead) {
    const Status status =
        stack_.write_range(pc_local_, command.start_beat, beats, pattern);
    if (!status.is_ok()) {
      ++stats_.slverr;
      return status;
    }
    stats_.beats_written += beats;
    transferred += beats;
  }

  if (command.op == MacroOp::kRead || command.op == MacroOp::kWriteRead) {
    if (command.check) {
      // A kWriteRead just filled the range with this very pattern, so the
      // verify reduces to stuck cells only (zero memory traffic).
      auto flips = stack_.read_verify_range(
          pc_local_, command.start_beat, beats, pattern,
          /*after_matching_write=*/command.op == MacroOp::kWriteRead);
      if (!flips.is_ok()) {
        ++stats_.slverr;
        return flips.status();
      }
      stats_.flips_1to0 += flips.value().flips_1to0;
      stats_.flips_0to1 += flips.value().flips_0to1;
      stats_.bits_checked += beats * stack_.geometry().bits_per_beat;
    } else {
      // Unchecked reads move data nobody looks at; only the access check
      // and the counters are observable.
      const Status status =
          stack_.check_range(pc_local_, command.start_beat, beats);
      if (!status.is_ok()) {
        ++stats_.slverr;
        return status;
      }
    }
    stats_.beats_read += beats;
    transferred += beats;
  }

  stats_.busy_time += flat_time(transferred);
  if (auto* tel = telemetry::Telemetry::active()) {
    tel->count("tg.beats_written", stats_.beats_written - before.beats_written);
    tel->count("tg.beats_read", stats_.beats_read - before.beats_read);
    tel->count("tg.words_compared",
               (stats_.bits_checked - before.bits_checked) / 64);
    tel->count("tg.flips", (stats_.flips_1to0 - before.flips_1to0) +
                               (stats_.flips_0to1 - before.flips_0to1));
  }
  return Status::ok();
}

GigabytesPerSecond TrafficGenerator::sustained_bandwidth() const noexcept {
  if (stats_.busy_time == 0) return GigabytesPerSecond{0.0};
  const double bytes = static_cast<double>(
      (stats_.beats_written + stats_.beats_read) *
      (stack_.geometry().bits_per_beat / 8));
  const double seconds = to_seconds(stats_.busy_time).value;
  return GigabytesPerSecond{bytes / seconds / 1e9};
}

GigabytesPerSecond TrafficGenerator::peak_bandwidth() const noexcept {
  const double bytes_per_beat = stack_.geometry().bits_per_beat / 8;
  return GigabytesPerSecond{clock_.value * efficiency_ * derate_ *
                            bytes_per_beat / 1e9};
}

}  // namespace hbmvolt::axi
