// AXI traffic generator, modelled after the Xilinx AXI TG cores the paper
// instantiates (one per AXI port, §II-B): each TG executes macro commands
// (sequential or strided write/read sweeps with a programmable data
// pattern), checks read data on the FPGA side, and reports raw statistics
// back to the host -- the paper deliberately keeps per-beat data on the
// FPGA because HBM bandwidth dwarfs the host link.
//
// Timing model: an AXI port moves one 256-bit beat per port clock at best;
// the sustained rate is derated by an efficiency factor calibrated so
// 32 ports reach the paper's 310 GB/s aggregate (429 GB/s theoretical).

#pragma once

#include <cstdint>

#include "common/status.hpp"
#include "common/units.hpp"
#include "dram/timing.hpp"
#include "hbm/memory_array.hpp"
#include "hbm/stack.hpp"

namespace hbmvolt::axi {

enum class MacroOp : std::uint8_t {
  kWrite,      // write the pattern over the range
  kRead,       // read the range, check against the pattern if `check`
  kWriteRead,  // write then read-back-check (one Algorithm-1 batch body)
};

/// Data-pattern generators, per standard memory-test practice.  kSolid is
/// what the paper's Algorithm 1 uses (all 1s / all 0s); the others are
/// provided for pattern-sensitivity studies (bench/ablation_patterns).
enum class PatternKind : std::uint8_t {
  kSolid,          // every beat = `pattern`
  kCheckerboard,   // alternating 0x55../0xAA.. per beat
  kAddressAsData,  // word value = global word index (catches addressing)
  kRandom,         // reproducible per-address pseudo-random data
};

struct TgCommand {
  MacroOp op = MacroOp::kWriteRead;
  std::uint64_t start_beat = 0;
  /// Number of beats; 0 means "to the end of the PC".
  std::uint64_t beats = 0;
  hbm::Beat pattern = hbm::kBeatAllZeros;  // used by kSolid
  /// Verify reads against the pattern and count bit flips.
  bool check = true;
  PatternKind kind = PatternKind::kSolid;
  std::uint64_t pattern_seed = 1;  // used by kRandom
  /// Visit the range in a pseudo-random order (a seeded permutation, so
  /// every beat is still touched exactly once and read-back checking
  /// works).  Stuck-at fault counts are order-independent; DRAM-level
  /// timing is not -- see TimingMode.
  bool random_order = false;
  std::uint64_t order_seed = 1;
};

/// How the TG models elapsed time.
enum class TimingMode : std::uint8_t {
  /// Flat sustained rate: clock * efficiency (calibrated to the paper's
  /// 310 GB/s aggregate).  Fast; the default.
  kFlatEfficiency,
  /// Command-level DRAM timing (dram::PcScheduler) composed with the AXI
  /// port limit: elapsed = max(port-domain time, DRAM-domain time).  For
  /// the paper's sequential tests the port domain binds (same results as
  /// kFlatEfficiency); for random order the DRAM binds.
  kCommandLevel,
};

/// The data a command writes (and expects back) at a given beat.
[[nodiscard]] hbm::Beat command_data(const TgCommand& command,
                                     std::uint64_t beat) noexcept;

/// The same data as a closed-form word pattern (command_data(c, beat)[w]
/// == word_pattern(c).word(beat * 4 + w) for every beat and word), which
/// is what lets the batched engine fill and verify ranges word-wise.
[[nodiscard]] hbm::WordPattern word_pattern(const TgCommand& command) noexcept;

/// Which execution engine TrafficGenerator::run uses.
enum class EnginePath : std::uint8_t {
  /// Batched beat-range engine for eligible commands (identity visit
  /// order, flat timing); per-beat loop otherwise.  The default.
  kAuto,
  /// Always the per-beat reference loop (equivalence tests, benchmarks).
  kPerBeat,
};

struct TgStats {
  std::uint64_t beats_written = 0;
  std::uint64_t beats_read = 0;
  std::uint64_t flips_1to0 = 0;   // expected 1, observed 0
  std::uint64_t flips_0to1 = 0;   // expected 0, observed 1
  std::uint64_t bits_checked = 0;
  std::uint64_t slverr = 0;       // AXI error responses (stack not responding)
  SimTime busy_time = 0;          // picoseconds the port spent transferring

  [[nodiscard]] std::uint64_t total_flips() const noexcept {
    return flips_1to0 + flips_0to1;
  }

  TgStats& operator+=(const TgStats& other) noexcept;
};

class TrafficGenerator {
 public:
  /// Default port clock: 450 MHz x 32 B/beat = 14.4 GB/s theoretical.
  static constexpr double kDefaultClockHz = 450e6;
  /// Sustained efficiency so that 32 ports reach ~310 GB/s (anchor 12).
  static constexpr double kDefaultEfficiency = 0.673;

  TrafficGenerator(hbm::HbmStack& stack, unsigned pc_local,
                   Hertz clock = Hertz{kDefaultClockHz},
                   double efficiency = kDefaultEfficiency);

  [[nodiscard]] unsigned pc_local() const noexcept { return pc_local_; }
  /// Retargets the TG at a different PC of the same stack (used by the
  /// switching network when non-identity routing is configured).
  void set_pc_local(unsigned pc_local) noexcept { pc_local_ = pc_local; }

  void set_enabled(bool enabled) noexcept { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Extra throughput derate applied on top of the port efficiency (the
  /// switching network sets this when enabled).
  void set_throughput_derate(double derate) noexcept { derate_ = derate; }

  /// Selects the timing model (see TimingMode); kCommandLevel uses the
  /// given DRAM timing parameters.
  void set_timing_mode(TimingMode mode, dram::DramTimings timings = {}) {
    timing_mode_ = mode;
    dram_timings_ = timings;
  }
  [[nodiscard]] TimingMode timing_mode() const noexcept {
    return timing_mode_;
  }

  /// Selects the execution engine; kPerBeat forces the reference loop the
  /// batched path is proven byte-identical to (tests/batched_test.cpp).
  void set_engine(EnginePath path) noexcept { engine_ = path; }
  [[nodiscard]] EnginePath engine() const noexcept { return engine_; }

  /// Executes one macro command, accumulating into the running stats.
  /// Disabled ports return OK and do nothing.  A non-responding stack
  /// records SLVERRs and returns UNAVAILABLE.
  Status run(const TgCommand& command);

  [[nodiscard]] const TgStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = TgStats{}; }

  /// Achieved bytes per second while busy.
  [[nodiscard]] GigabytesPerSecond sustained_bandwidth() const noexcept;

  /// Peak sustained rate of this port (clock * 32 B * efficiency * derate).
  [[nodiscard]] GigabytesPerSecond peak_bandwidth() const noexcept;

 private:
  /// Flat-rate time for `beats` transfers, in picoseconds.
  [[nodiscard]] SimTime flat_time(std::uint64_t beats) const noexcept;

  /// The batched beat-range path: bulk fill + overlay-aware bulk verify,
  /// byte-identical stats to the per-beat loop.
  Status run_batched(const TgCommand& command, std::uint64_t beats);

  hbm::HbmStack& stack_;
  unsigned pc_local_;
  Hertz clock_;
  double efficiency_;
  double derate_ = 1.0;
  bool enabled_ = true;
  TimingMode timing_mode_ = TimingMode::kFlatEfficiency;
  EnginePath engine_ = EnginePath::kAuto;
  dram::DramTimings dram_timings_;
  TgStats stats_;
};

/// Counts mismatched bits between observed and expected beats, split by
/// flip direction.
void count_flips(const hbm::Beat& observed, const hbm::Beat& expected,
                 std::uint64_t& flips_1to0, std::uint64_t& flips_0to1) noexcept;

}  // namespace hbmvolt::axi
