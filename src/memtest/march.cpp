#include "memtest/march.hpp"

#include <bit>
#include <optional>
#include <vector>

#include "hbm/word_pattern.hpp"
#include "telemetry/telemetry.hpp"

namespace hbmvolt::memtest {

std::uint64_t MarchAlgorithm::ops_per_cell() const noexcept {
  std::uint64_t total = 0;
  for (const auto& element : elements) total += element.ops.size();
  return total;
}

bool MarchAlgorithm::reads_both_states() const noexcept {
  bool r0 = false;
  bool r1 = false;
  for (const auto& element : elements) {
    for (const auto op : element.ops) {
      r0 = r0 || op == Op::kR0;
      r1 = r1 || op == Op::kR1;
    }
  }
  return r0 && r1;
}

MarchAlgorithm mats_plus() {
  return {"MATS+",
          {{Direction::kEither, {Op::kW0}},
           {Direction::kUp, {Op::kR0, Op::kW1}},
           {Direction::kDown, {Op::kR1, Op::kW0}}}};
}

MarchAlgorithm march_x() {
  return {"March X",
          {{Direction::kEither, {Op::kW0}},
           {Direction::kUp, {Op::kR0, Op::kW1}},
           {Direction::kDown, {Op::kR1, Op::kW0}},
           {Direction::kEither, {Op::kR0}}}};
}

MarchAlgorithm march_y() {
  return {"March Y",
          {{Direction::kEither, {Op::kW0}},
           {Direction::kUp, {Op::kR0, Op::kW1, Op::kR1}},
           {Direction::kDown, {Op::kR1, Op::kW0, Op::kR0}},
           {Direction::kEither, {Op::kR0}}}};
}

MarchAlgorithm march_b() {
  return {"March B",
          {{Direction::kEither, {Op::kW0}},
           {Direction::kUp,
            {Op::kR0, Op::kW1, Op::kR1, Op::kW0, Op::kR0, Op::kW1}},
           {Direction::kUp, {Op::kR1, Op::kW0, Op::kW1}},
           {Direction::kDown, {Op::kR1, Op::kW0, Op::kW1, Op::kW0}},
           {Direction::kDown, {Op::kR0, Op::kW1, Op::kW0}}}};
}

MarchAlgorithm march_c_minus() {
  return {"March C-",
          {{Direction::kEither, {Op::kW0}},
           {Direction::kUp, {Op::kR0, Op::kW1}},
           {Direction::kUp, {Op::kR1, Op::kW0}},
           {Direction::kDown, {Op::kR0, Op::kW1}},
           {Direction::kDown, {Op::kR1, Op::kW0}},
           {Direction::kEither, {Op::kR0}}}};
}

MarchAlgorithm solid_patterns() {
  return {"Algorithm 1 (solids)",
          {{Direction::kUp, {Op::kW1}},
           {Direction::kUp, {Op::kR1}},
           {Direction::kUp, {Op::kW0}},
           {Direction::kUp, {Op::kR0}}}};
}

std::vector<MarchAlgorithm> all_march_algorithms() {
  return {solid_patterns(), mats_plus(), march_x(),
          march_y(),        march_b(),   march_c_minus()};
}

MarchRunner::MarchRunner(hbm::HbmStack& stack, unsigned pc_local)
    : stack_(stack), pc_local_(pc_local) {}

Result<MarchResult> MarchRunner::run(const MarchAlgorithm& algorithm) {
  telemetry::Span span("march.run", pc_local_);
  auto result = batched_ ? run_batched(algorithm) : run_per_beat(algorithm);
  if (auto* tel = telemetry::Telemetry::active()) {
    tel->count(batched_ ? "march.dispatch_batched" : "march.dispatch_per_beat");
    if (result.is_ok()) {
      tel->count("march.read_ops", result.value().read_ops);
      tel->count("march.write_ops", result.value().write_ops);
    }
  }
  return result;
}

Result<MarchResult> MarchRunner::run_batched(const MarchAlgorithm& algorithm) {
  const std::uint64_t beats = stack_.geometry().beats_per_pc();
  const unsigned bits = stack_.geometry().bits_per_beat;

  MarchResult result;
  result.cells = beats * bits;
  std::vector<std::uint64_t> faulty(stack_.geometry().bits_per_pc / 64, 0);

  // Beats are independent under the stuck-at model, so each op can sweep
  // the whole range before the next one and every beat still sees the ops
  // in element order.  Direction therefore doesn't matter either -- the
  // bulk ops always go up.
  const hbm::WordPattern zeros = hbm::WordPattern::repeat(hbm::kBeatAllZeros);
  const hbm::WordPattern ones = hbm::WordPattern::repeat(hbm::kBeatAllOnes);
  // The pattern of the most recent whole-range write, if any: a read whose
  // expected value matches it verifies against stuck cells alone, with no
  // memory traffic (HbmStack::read_verify_range).
  std::optional<hbm::WordPattern> last_fill;

  for (const auto& element : algorithm.elements) {
    for (const auto op : element.ops) {
      switch (op) {
        case Op::kW0:
        case Op::kW1: {
          const auto& pattern = op == Op::kW1 ? ones : zeros;
          HBMVOLT_RETURN_IF_ERROR(
              stack_.write_range(pc_local_, 0, beats, pattern));
          last_fill = pattern;
          result.write_ops += beats;
          break;
        }
        case Op::kR0:
        case Op::kR1: {
          const auto& expected = op == Op::kR1 ? ones : zeros;
          auto flips = stack_.read_verify_range(
              pc_local_, 0, beats, expected,
              /*after_matching_write=*/last_fill == expected, faulty.data());
          if (!flips.is_ok()) return flips.status();
          result.read_ops += beats;
          result.mismatched_reads += flips.value().mismatched_beats;
          break;
        }
      }
    }
  }

  for (const auto word : faulty) {
    result.faulty_cells += static_cast<unsigned>(std::popcount(word));
  }
  return result;
}

Result<MarchResult> MarchRunner::run_per_beat(const MarchAlgorithm& algorithm) {
  const std::uint64_t beats = stack_.geometry().beats_per_pc();
  const unsigned bits = stack_.geometry().bits_per_beat;

  MarchResult result;
  result.cells = beats * bits;
  // Faulty-cell bitmap (one bit per cell of the PC).
  std::vector<std::uint64_t> faulty(stack_.geometry().bits_per_pc / 64, 0);

  for (const auto& element : algorithm.elements) {
    const bool descending = element.direction == Direction::kDown;
    for (std::uint64_t i = 0; i < beats; ++i) {
      const std::uint64_t beat = descending ? beats - 1 - i : i;
      // March semantics: the whole op sequence applies to one address
      // before moving on (beat granularity: 256 cells share an address).
      for (const auto op : element.ops) {
        switch (op) {
          case Op::kW0:
          case Op::kW1: {
            const auto& pattern =
                op == Op::kW1 ? hbm::kBeatAllOnes : hbm::kBeatAllZeros;
            HBMVOLT_RETURN_IF_ERROR(
                stack_.write_beat(pc_local_, beat, pattern));
            ++result.write_ops;
            break;
          }
          case Op::kR0:
          case Op::kR1: {
            auto data = stack_.read_beat(pc_local_, beat);
            if (!data.is_ok()) return data.status();
            ++result.read_ops;
            const std::uint64_t expected = op == Op::kR1 ? ~0ull : 0ull;
            bool any_flip = false;
            for (unsigned w = 0; w < bits / 64; ++w) {
              const std::uint64_t diff = data.value()[w] ^ expected;
              if (diff != 0) {
                any_flip = true;
                faulty[beat * (bits / 64) + w] |= diff;
              }
            }
            if (any_flip) ++result.mismatched_reads;
            break;
          }
        }
      }
    }
  }

  for (const auto word : faulty) {
    result.faulty_cells +=
        static_cast<unsigned>(__builtin_popcountll(word));
  }
  return result;
}

}  // namespace hbmvolt::memtest
