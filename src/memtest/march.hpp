// March memory-test algorithms (van de Goor's notation) over an HBM
// pseudo-channel.
//
// A March test is a sequence of elements; each element walks the address
// space in a direction applying a fixed op sequence per cell, e.g.
// March C-:  up(w0); up(r0,w1); up(r1,w0); down(r0,w1); down(r1,w0); down(r0)
//
// The paper's Algorithm 1 is the two-solid-pattern test (write-all/read-
// all per pattern), which is complete for the stuck-at faults undervolting
// produces.  The March runner lets the claim be checked against the
// classical algorithms -- every March test that reads each cell in both
// states must find exactly the same stuck-cell set -- and quantifies
// their op-count cost (bench/ext_march_tests).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "hbm/stack.hpp"

namespace hbmvolt::memtest {

enum class Op : std::uint8_t { kW0, kW1, kR0, kR1 };

enum class Direction : std::uint8_t {
  kUp,      // ascending addresses
  kDown,    // descending addresses
  kEither,  // direction irrelevant (notated as an up-down arrow)
};

struct MarchElement {
  Direction direction = Direction::kEither;
  std::vector<Op> ops;
};

struct MarchAlgorithm {
  std::string name;
  std::vector<MarchElement> elements;

  /// Total operations applied per cell.
  [[nodiscard]] std::uint64_t ops_per_cell() const noexcept;
  /// Whether every cell is read at least once in each logic state --
  /// the condition for complete stuck-at-fault coverage.
  [[nodiscard]] bool reads_both_states() const noexcept;
};

// Classical algorithms.
[[nodiscard]] MarchAlgorithm mats_plus();      // 5n, all SAFs + AFs
[[nodiscard]] MarchAlgorithm march_x();        // 6n, adds transition faults
[[nodiscard]] MarchAlgorithm march_y();        // 8n, adds linked TFs
[[nodiscard]] MarchAlgorithm march_c_minus();  // 10n, adds coupling faults
[[nodiscard]] MarchAlgorithm march_b();        // 17n, adds linked CFs
/// The paper's Algorithm 1 expressed as a March test: up(w1); up(r1);
/// up(w0); up(r0) -- 4n.
[[nodiscard]] MarchAlgorithm solid_patterns();

/// Every algorithm above, for catalog-style sweeps.
[[nodiscard]] std::vector<MarchAlgorithm> all_march_algorithms();

struct MarchResult {
  std::uint64_t cells = 0;
  std::uint64_t read_ops = 0;
  std::uint64_t write_ops = 0;
  std::uint64_t mismatched_reads = 0;
  /// Distinct cells that failed at least one read.
  std::uint64_t faulty_cells = 0;
};

class MarchRunner {
 public:
  MarchRunner(hbm::HbmStack& stack, unsigned pc_local);

  /// Routes ops through the per-beat reference loop instead of the
  /// batched range engine (equivalence testing; see docs/performance.md).
  /// Results are byte-identical either way: march ops on distinct beats
  /// are independent under the stuck-at model, so applying one op across
  /// the whole range before the next preserves each beat's op order.
  void set_batched(bool batched) noexcept { batched_ = batched; }
  [[nodiscard]] bool batched() const noexcept { return batched_; }

  /// Runs the algorithm over the whole PC.  UNAVAILABLE if the stack
  /// stops responding.
  Result<MarchResult> run(const MarchAlgorithm& algorithm);

 private:
  Result<MarchResult> run_batched(const MarchAlgorithm& algorithm);
  Result<MarchResult> run_per_beat(const MarchAlgorithm& algorithm);

  hbm::HbmStack& stack_;
  unsigned pc_local_;
  bool batched_ = true;
};

}  // namespace hbmvolt::memtest
