// SECDED Hamming(72,64) codec: single-error-correcting, double-error-
// detecting code over 64-bit words -- the standard DRAM-side ECC.
//
// The paper's related work (Salami et al., PDP'19 [57]; Chang et al. [12])
// mitigates undervolting faults with exactly this class of code; the
// ext_ecc_mitigation bench quantifies how much deeper SECDED lets the
// supply voltage go on this model.
//
// Construction: 8 check bits; check bit i covers the data bits whose
// 7-bit "code position" has bit i set, in the extended-Hamming layout
// (positions 1..71 skipping powers of two for data, overall parity as
// the 8th check bit).  Any single-bit error yields a nonzero syndrome
// with odd overall parity (correctable); any double-bit error yields a
// nonzero syndrome with even overall parity (detected, uncorrectable).

#pragma once

#include <cstdint>

namespace hbmvolt::ecc {

/// Result of decoding one 72-bit codeword.
enum class DecodeStatus : std::uint8_t {
  kClean = 0,          // syndrome zero: no error
  kCorrectedData,      // single-bit error in the data word, corrected
  kCorrectedCheck,     // single-bit error in the check bits, data intact
  kUncorrectable,      // double (or worse) error detected
};

struct DecodeResult {
  std::uint64_t data = 0;
  DecodeStatus status = DecodeStatus::kClean;
};

/// Computes the 8 check bits for a 64-bit data word.
[[nodiscard]] std::uint8_t secded_encode(std::uint64_t data) noexcept;

/// Decodes a (data, check) pair, correcting a single-bit error anywhere
/// in the 72-bit codeword.
[[nodiscard]] DecodeResult secded_decode(std::uint64_t data,
                                         std::uint8_t check) noexcept;

}  // namespace hbmvolt::ecc
