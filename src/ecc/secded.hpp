// SECDED Hamming(72,64) codec: single-error-correcting, double-error-
// detecting code over 64-bit words -- the standard DRAM-side ECC.
//
// The paper's related work (Salami et al., PDP'19 [57]; Chang et al. [12])
// mitigates undervolting faults with exactly this class of code; the
// ext_ecc_mitigation bench quantifies how much deeper SECDED lets the
// supply voltage go on this model.
//
// Construction: 8 check bits; check bit i covers the data bits whose
// 7-bit "code position" has bit i set, in the extended-Hamming layout
// (positions 1..71 skipping powers of two for data, overall parity as
// the 8th check bit).  Any single-bit error yields a nonzero syndrome
// with odd overall parity (correctable); any double-bit error yields a
// nonzero syndrome with even overall parity (detected, uncorrectable).
//
// Syndrome computation is bit-sliced: check bit i of the syndrome is the
// parity of (data & column_mask[i]), where column_mask[i] collects every
// data bit whose code position has bit i set.  Seven masked popcounts
// replace the per-set-bit position-XOR walk (~32 table lookups per word),
// the same closed-form trick hbm/word_pattern.hpp uses for pattern words.
// The codec is header-inline so bulk decode loops (ecc_channel
// decode_range/scrub_range) vectorize it; secded.cpp keeps the original
// per-set-bit walk as the reference implementation for equivalence tests.

#pragma once

#include <array>
#include <bit>
#include <cstdint>

namespace hbmvolt::ecc {

/// Result of decoding one 72-bit codeword.
enum class DecodeStatus : std::uint8_t {
  kClean = 0,          // syndrome zero: no error
  kCorrectedData,      // single-bit error in the data word, corrected
  kCorrectedCheck,     // single-bit error in the check bits, data intact
  kUncorrectable,      // double (or worse) error detected
};

struct DecodeResult {
  std::uint64_t data = 0;
  DecodeStatus status = DecodeStatus::kClean;
};

namespace detail {

constexpr bool is_power_of_two(unsigned x) { return (x & (x - 1)) == 0; }

/// Code position (1..71, skipping powers of two) of each data bit.
constexpr std::array<std::uint8_t, 64> make_positions() {
  std::array<std::uint8_t, 64> positions{};
  unsigned next = 0;
  for (unsigned position = 1; position <= 71 && next < 64; ++position) {
    if (!is_power_of_two(position)) {
      positions[next++] = static_cast<std::uint8_t>(position);
    }
  }
  return positions;
}

/// Inverse map: code position -> data bit index (0xFF for check bits).
constexpr std::array<std::uint8_t, 72> make_inverse() {
  std::array<std::uint8_t, 72> inverse{};
  for (auto& entry : inverse) entry = 0xFF;
  const auto positions = make_positions();
  for (unsigned d = 0; d < 64; ++d) {
    inverse[positions[d]] = static_cast<std::uint8_t>(d);
  }
  return inverse;
}

/// Column masks for the bit-sliced syndrome: kColumns[i] has bit d set iff
/// check bit i covers data bit d (code position of d has bit i set).
constexpr std::array<std::uint64_t, 7> make_columns() {
  std::array<std::uint64_t, 7> columns{};
  const auto positions = make_positions();
  for (unsigned d = 0; d < 64; ++d) {
    for (unsigned i = 0; i < 7; ++i) {
      if ((positions[d] >> i) & 1u) columns[i] |= 1ull << d;
    }
  }
  return columns;
}

constexpr auto kPositions = make_positions();
constexpr auto kInverse = make_inverse();
constexpr auto kColumns = make_columns();

}  // namespace detail

/// XOR of the code positions of all set data bits -- the 7-bit Hamming
/// syndrome contribution of the data word, computed transpose-free as
/// seven masked parities (closed form; no per-bit walk).
[[nodiscard]] inline std::uint8_t data_syndrome(std::uint64_t data) noexcept {
  unsigned syndrome = 0;
  syndrome |= (std::popcount(data & detail::kColumns[0]) & 1) << 0;
  syndrome |= (std::popcount(data & detail::kColumns[1]) & 1) << 1;
  syndrome |= (std::popcount(data & detail::kColumns[2]) & 1) << 2;
  syndrome |= (std::popcount(data & detail::kColumns[3]) & 1) << 3;
  syndrome |= (std::popcount(data & detail::kColumns[4]) & 1) << 4;
  syndrome |= (std::popcount(data & detail::kColumns[5]) & 1) << 5;
  syndrome |= (std::popcount(data & detail::kColumns[6]) & 1) << 6;
  return static_cast<std::uint8_t>(syndrome);
}

/// Computes the 8 check bits for a 64-bit data word.
[[nodiscard]] inline std::uint8_t secded_encode(std::uint64_t data) noexcept {
  const std::uint8_t hamming = data_syndrome(data) & 0x7F;
  // Overall parity bit makes the whole 72-bit codeword even-parity.
  const bool overall =
      ((std::popcount(data) ^ std::popcount<unsigned>(hamming)) & 1) != 0;
  return static_cast<std::uint8_t>(hamming | (overall ? 0x80 : 0x00));
}

/// Decodes a (data, check) pair, correcting a single-bit error anywhere
/// in the 72-bit codeword.
[[nodiscard]] inline DecodeResult secded_decode(std::uint64_t data,
                                                std::uint8_t check) noexcept {
  DecodeResult result;
  result.data = data;

  const std::uint8_t syndrome =
      static_cast<std::uint8_t>((data_syndrome(data) ^ check) & 0x7F);
  const bool parity_mismatch =
      ((std::popcount(data) ^ std::popcount<unsigned>(check)) & 1) != 0;

  if (syndrome == 0 && !parity_mismatch) {
    result.status = DecodeStatus::kClean;
    return result;
  }
  if (!parity_mismatch) {
    // Nonzero syndrome with intact overall parity: >= 2 bit errors.
    result.status = DecodeStatus::kUncorrectable;
    return result;
  }
  if (syndrome == 0) {
    // The overall parity bit itself flipped; data is intact.
    result.status = DecodeStatus::kCorrectedCheck;
    return result;
  }
  if (syndrome < 72 && detail::kInverse[syndrome] != 0xFF) {
    result.data = data ^ (1ull << detail::kInverse[syndrome]);
    result.status = DecodeStatus::kCorrectedData;
    return result;
  }
  if (syndrome < 72 && detail::is_power_of_two(syndrome)) {
    // A Hamming check bit flipped; data is intact.
    result.status = DecodeStatus::kCorrectedCheck;
    return result;
  }
  // Syndrome points outside the codeword: multi-bit corruption.
  result.status = DecodeStatus::kUncorrectable;
  return result;
}

/// Reference codec (the original per-set-bit position walk), kept for
/// equivalence tests against the bit-sliced fast path above.
[[nodiscard]] std::uint8_t secded_encode_reference(
    std::uint64_t data) noexcept;
[[nodiscard]] DecodeResult secded_decode_reference(std::uint64_t data,
                                                   std::uint8_t check) noexcept;

}  // namespace hbmvolt::ecc
