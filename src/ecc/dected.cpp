#include "ecc/dected.hpp"

#include <cstdlib>
#include <vector>

namespace hbmvolt::ecc {

namespace dected_detail {
namespace {

/// Flips codeword position p (0..78) in a working (data, check) pair.
/// Check positions land in the stored check bits, the parity bit at
/// stored bit 14.
void flip_position(unsigned p, std::uint64_t* data, std::uint16_t* check) {
  if (p >= kCheckBits && p < kCheckBits + kDataBits) {
    *data ^= 1ull << (p - kCheckBits);
  } else if (p < kCheckBits) {
    *check ^= static_cast<std::uint16_t>(1u << p);
  } else {
    *check ^= 0x4000;  // overall parity bit
  }
}

/// 2^14-entry syndrome table over every 1- and 2-position error pattern
/// among the 78 syndrome-bearing positions.  BCH designed distance 5
/// means no two such patterns share a syndrome; a collision here would
/// falsify the generator construction, so the build aborts on one.
std::vector<std::uint32_t> build_pattern_table() {
  std::vector<std::uint32_t> table(1u << kCheckBits, 0);
  for (unsigned p = 0; p < kPositions - 1; ++p) {
    const std::uint16_t syndrome = position_column(p);
    if (syndrome == 0 || table[syndrome] != 0) std::abort();
    table[syndrome] = kPatternSingle | p;
  }
  for (unsigned p = 0; p + 1 < kPositions - 1; ++p) {
    for (unsigned q = p + 1; q < kPositions - 1; ++q) {
      const std::uint16_t syndrome =
          static_cast<std::uint16_t>(position_column(p) ^ position_column(q));
      if (syndrome == 0 || table[syndrome] != 0) std::abort();
      table[syndrome] = kPatternPair | (p << 8) | q;
    }
  }
  return table;
}

}  // namespace

std::uint32_t pattern_for(std::uint16_t syndrome) noexcept {
  static const std::vector<std::uint32_t> table = build_pattern_table();
  return table[syndrome];
}

}  // namespace dected_detail

namespace {

using namespace dected_detail;

/// Applies a decoded error pattern and classifies the correction: any
/// flipped data bit makes the whole correction kCorrectedData.
DecodeResult corrected(std::uint64_t data, unsigned p1, bool has_p2,
                       unsigned p2) {
  std::uint16_t scratch = 0;
  bool touched_data = false;
  flip_position(p1, &data, &scratch);
  touched_data |= p1 >= kCheckBits && p1 < kCheckBits + kDataBits;
  if (has_p2) {
    flip_position(p2, &data, &scratch);
    touched_data |= p2 >= kCheckBits && p2 < kCheckBits + kDataBits;
  }
  return {data, touched_data ? DecodeStatus::kCorrectedData
                             : DecodeStatus::kCorrectedCheck};
}

}  // namespace

DecodeResult dected_decode(std::uint64_t data, std::uint16_t check) noexcept {
  const std::uint16_t syndrome = static_cast<std::uint16_t>(
      dected_data_syndrome(data) ^ (check & kCheckMask));
  const bool odd_parity =
      ((std::popcount(data) ^ std::popcount<unsigned>(check & 0x7FFFu)) &
       1) != 0;

  if (syndrome == 0) {
    if (!odd_parity) return {data, DecodeStatus::kClean};
    // Zero BCH syndrome with odd parity: the parity bit itself flipped
    // (three BCH-position errors summing to zero would be a weight-3
    // codeword, impossible at distance >= 5).
    return {data, DecodeStatus::kCorrectedCheck};
  }

  const std::uint32_t pattern = pattern_for(syndrome);
  const std::uint32_t kind = pattern & kPatternKindMask;
  if (odd_parity) {
    // An odd number of live-position errors.  A lone single-position
    // pattern is the only correctable case; a pair-pattern syndrome with
    // odd parity is two BCH errors plus the parity bit = three errors.
    if (kind != kPatternSingle) return {data, DecodeStatus::kUncorrectable};
    return corrected(data, pattern & 0xFF, false, 0);
  }
  // Even parity with a nonzero syndrome: either two BCH-position errors
  // (pair pattern) or one BCH-position error plus the parity bit.
  if (kind == kPatternPair) {
    return corrected(data, (pattern >> 8) & 0xFF, true, pattern & 0xFF);
  }
  if (kind == kPatternSingle) {
    return corrected(data, pattern & 0xFF, false, 0);
  }
  return {data, DecodeStatus::kUncorrectable};
}

std::uint16_t dected_encode_reference(std::uint64_t data) noexcept {
  // Long division of x^14 * m(x) by g(x), one message bit per step.
  std::uint32_t rem = 0;
  for (int i = 63; i >= 0; --i) {
    const unsigned feedback = ((rem >> (kCheckBits - 1)) ^
                               static_cast<unsigned>(data >> i)) &
                              1u;
    rem = (rem << 1) & kCheckMask;
    if (feedback != 0) rem ^= kGenerator & kCheckMask;
  }
  unsigned ones = std::popcount(data);
  ones += std::popcount(rem);
  return static_cast<std::uint16_t>(rem | ((ones & 1u) != 0 ? 0x4000 : 0));
}

DecodeResult dected_decode_reference(std::uint64_t data,
                                     std::uint16_t check) noexcept {
  // Syndrome by per-set-bit accumulation instead of bit-sliced popcounts.
  std::uint16_t syndrome = static_cast<std::uint16_t>(check & kCheckMask);
  for (unsigned i = 0; i < kDataBits; ++i) {
    if ((data >> i) & 1u) syndrome ^= kRemainders[i];
  }
  unsigned ones = std::popcount(data);
  ones += std::popcount<unsigned>(check & 0x7FFFu);
  const bool odd_parity = (ones & 1u) != 0;

  if (syndrome == 0) {
    if (!odd_parity) return {data, DecodeStatus::kClean};
    return {data, DecodeStatus::kCorrectedCheck};
  }

  // Linear scan over all single- then two-position patterns.  A single
  // column matching with even parity means that position plus the parity
  // bit flipped; the parity bit carries no data so the fix is the same.
  for (unsigned p = 0; p < kPositions - 1; ++p) {
    if (position_column(p) != syndrome) continue;
    std::uint64_t fixed = data;
    std::uint16_t scratch = 0;
    flip_position(p, &fixed, &scratch);
    return {fixed, p >= kCheckBits && p < kCheckBits + kDataBits
                       ? DecodeStatus::kCorrectedData
                       : DecodeStatus::kCorrectedCheck};
  }
  if (!odd_parity) {
    for (unsigned p = 0; p + 1 < kPositions - 1; ++p) {
      for (unsigned q = p + 1; q < kPositions - 1; ++q) {
        if (static_cast<std::uint16_t>(position_column(p) ^
                                       position_column(q)) != syndrome) {
          continue;
        }
        std::uint64_t fixed = data;
        std::uint16_t scratch = 0;
        flip_position(p, &fixed, &scratch);
        flip_position(q, &fixed, &scratch);
        const bool touched_data =
            (p >= kCheckBits && p < kCheckBits + kDataBits) ||
            (q >= kCheckBits && q < kCheckBits + kDataBits);
        return {fixed, touched_data ? DecodeStatus::kCorrectedData
                                    : DecodeStatus::kCorrectedCheck};
      }
    }
  }
  return {data, DecodeStatus::kUncorrectable};
}

}  // namespace hbmvolt::ecc
