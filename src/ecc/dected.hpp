// DECTED codec: double-error-correcting, triple-error-detecting code over
// 64-bit words -- the next rung up from SECDED in the mitigation zoo.
//
// Salami et al. (PDP'19) show the reachable V_min depends on how many
// stuck bits per codeword the deployed code absorbs; SECDED dies on the
// second stuck cell in a word, DECTED on the third.  The ext_mitigation
// bench family quantifies that trade against the doubled check storage.
//
// Construction: a shortened binary BCH code over GF(2^7) (primitive
// polynomial x^7 + x^3 + 1) with designed distance 5 -- generator
// g(x) = m1(x) * m3(x), degree 14 -- plus an overall parity bit, for
// minimum distance 6: any 1- or 2-bit error is corrected, any 3-bit
// error is detected.  The codeword has 79 live positions:
//
//   polynomial degrees  0..13   the 14 BCH check bits
//   polynomial degrees 14..77   the 64 data bits (data bit i at 14 + i)
//   position 78                 the overall parity bit
//
// Stored check bits are 16 (two bytes per word): bits [0,14) the BCH
// remainder, bit 14 the overall parity, bit 15 a pad that is always
// written zero and ignored on decode.
//
// Syndrome computation is bit-sliced exactly like secded.hpp: the 14-bit
// remainder contribution of the data word is 14 masked popcounts against
// constexpr column masks (column j collects the data bits whose
// x^{14+i} mod g(x) has coefficient j set).  Correction uses a lazily
// built 2^14-entry syndrome table enumerating every 1- and 2-position
// error pattern -- BCH distance >= 5 guarantees the patterns collide
// nowhere, which the table build asserts.  dected.cpp keeps the original
// long-division encoder and a linear-scan decoder as the reference pair
// for the exhaustive 0/1/2/3-bit flip equivalence tests.

#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "ecc/secded.hpp"  // DecodeStatus / DecodeResult

namespace hbmvolt::ecc {

namespace dected_detail {

/// GF(2^7) carry-less multiply modulo x^7 + x^3 + 1.
constexpr unsigned gf_mul(unsigned a, unsigned b) {
  unsigned r = 0;
  for (unsigned i = 0; i < 7; ++i) {
    if ((b >> i) & 1u) r ^= a << i;
  }
  for (int d = 12; d >= 7; --d) {
    if ((r >> d) & 1u) r ^= 0x89u << (d - 7);
  }
  return r;
}

/// Minimal polynomial of alpha^3: product of (x + alpha^{3*2^k}) over the
/// cyclotomic coset, degree 7 with coefficients in GF(2).
constexpr std::uint32_t make_m3() {
  unsigned coeffs[9] = {1, 0, 0, 0, 0, 0, 0, 0, 0};
  unsigned deg = 0;
  unsigned root = 8;  // alpha^3 = x^3
  for (unsigned k = 0; k < 7; ++k) {
    unsigned next[9] = {};
    for (unsigned i = 0; i <= deg; ++i) {
      next[i + 1] ^= coeffs[i];
      next[i] ^= gf_mul(coeffs[i], root);
    }
    ++deg;
    for (unsigned i = 0; i <= deg; ++i) coeffs[i] = next[i];
    root = gf_mul(root, root);
  }
  std::uint32_t m3 = 0;
  for (unsigned i = 0; i <= 7; ++i) m3 |= (coeffs[i] & 1u) << i;
  return m3;
}

/// Generator g(x) = m1(x) * m3(x): degree 14, GF(2) product of the
/// minimal polynomials of alpha (x^7 + x^3 + 1) and alpha^3.
constexpr std::uint32_t make_generator() {
  const std::uint32_t m3 = make_m3();
  std::uint32_t g = 0;
  for (unsigned i = 0; i < 8; ++i) {
    if ((0x89u >> i) & 1u) g ^= m3 << i;
  }
  return g;
}

inline constexpr std::uint32_t kGenerator = make_generator();
inline constexpr std::uint32_t kCheckMask = 0x3FFF;  // 14 BCH check bits
inline constexpr unsigned kCheckBits = 14;
inline constexpr unsigned kDataBits = 64;
/// Live codeword positions: 14 check + 64 data + 1 overall parity.
inline constexpr unsigned kPositions = 79;
inline constexpr unsigned kParityPos = 78;

/// x^{14+i} mod g(x) for each data bit i -- its syndrome column.
constexpr std::array<std::uint16_t, 64> make_remainders() {
  std::array<std::uint16_t, 64> r{};
  std::uint32_t cur = kGenerator & kCheckMask;  // x^14 mod g
  for (unsigned i = 0; i < 64; ++i) {
    r[i] = static_cast<std::uint16_t>(cur);
    cur <<= 1;
    if (cur & (1u << kCheckBits)) cur ^= kGenerator;
  }
  return r;
}

/// Bit-sliced transpose of the remainder table: column j has data bit i
/// set iff x^{14+i} mod g has coefficient j.
constexpr std::array<std::uint64_t, 14> make_columns() {
  const auto remainders = make_remainders();
  std::array<std::uint64_t, 14> columns{};
  for (unsigned d = 0; d < 64; ++d) {
    for (unsigned j = 0; j < 14; ++j) {
      if ((remainders[d] >> j) & 1u) columns[j] |= 1ull << d;
    }
  }
  return columns;
}

inline constexpr auto kRemainders = make_remainders();
inline constexpr auto kColumns = make_columns();

/// Syndrome column of codeword position p (0..77; the parity bit has no
/// BCH column).  Check positions are unit vectors (x^p mod g = x^p).
[[nodiscard]] constexpr std::uint16_t position_column(unsigned p) noexcept {
  return p < kCheckBits ? static_cast<std::uint16_t>(1u << p)
                        : kRemainders[p - kCheckBits];
}

/// Syndrome-table lookup result, packed: kind in the top 2 bits
/// (0 = no pattern, 1 = single, 2 = pair), positions below.
[[nodiscard]] std::uint32_t pattern_for(std::uint16_t syndrome) noexcept;

inline constexpr std::uint32_t kPatternSingle = 1u << 30;
inline constexpr std::uint32_t kPatternPair = 2u << 30;
inline constexpr std::uint32_t kPatternKindMask = 3u << 30;

}  // namespace dected_detail

/// 14-bit BCH remainder contribution of the data word (bit-sliced, no
/// per-bit walk) -- the dected sibling of data_syndrome().
[[nodiscard]] inline std::uint16_t dected_data_syndrome(
    std::uint64_t data) noexcept {
  unsigned syndrome = 0;
  for (unsigned j = 0; j < 14; ++j) {
    syndrome |=
        (std::popcount(data & dected_detail::kColumns[j]) & 1u) << j;
  }
  return static_cast<std::uint16_t>(syndrome);
}

/// Computes the 16 stored check bits for a 64-bit data word.
[[nodiscard]] inline std::uint16_t dected_encode(std::uint64_t data) noexcept {
  const std::uint16_t rem = dected_data_syndrome(data);
  const bool overall =
      ((std::popcount(data) ^ std::popcount<unsigned>(rem)) & 1) != 0;
  return static_cast<std::uint16_t>(rem | (overall ? 0x4000 : 0x0000));
}

/// Decodes a (data, check) pair, correcting up to two bit errors anywhere
/// in the 79 live codeword positions and detecting any three.  Bit 15 of
/// `check` (the pad) is ignored.
[[nodiscard]] DecodeResult dected_decode(std::uint64_t data,
                                         std::uint16_t check) noexcept;

/// True when the received word has zero BCH syndrome and intact overall
/// parity -- the bulk-decode all-clean fast test.
[[nodiscard]] inline bool dected_clean(std::uint64_t data,
                                       std::uint16_t check) noexcept {
  const std::uint16_t syndrome = static_cast<std::uint16_t>(
      dected_data_syndrome(data) ^ (check & dected_detail::kCheckMask));
  const bool parity_mismatch =
      ((std::popcount(data) ^
        std::popcount<unsigned>(check & 0x7FFFu)) &
       1) != 0;
  return syndrome == 0 && !parity_mismatch;
}

/// Reference codec: long-division encoder and linear-scan decoder (no
/// syndrome table), kept for the exhaustive flip equivalence tests.
[[nodiscard]] std::uint16_t dected_encode_reference(
    std::uint64_t data) noexcept;
[[nodiscard]] DecodeResult dected_decode_reference(
    std::uint64_t data, std::uint16_t check) noexcept;

}  // namespace hbmvolt::ecc
