// Reference SECDED codec: the per-set-bit position-XOR walk the fast
// bit-sliced header implementation replaced.  Kept verbatim so tests can
// prove the closed-form column masks compute identical syndromes (and
// therefore identical encodes/decodes) over the whole input space they
// sample.

#include "ecc/secded.hpp"

namespace hbmvolt::ecc {
namespace {

std::uint8_t data_syndrome_reference(std::uint64_t data) noexcept {
  std::uint8_t syndrome = 0;
  while (data != 0) {
    const int bit = std::countr_zero(data);
    data &= data - 1;
    syndrome ^= detail::kPositions[static_cast<unsigned>(bit)];
  }
  return syndrome;
}

bool parity64(std::uint64_t x) noexcept { return std::popcount(x) & 1; }

}  // namespace

std::uint8_t secded_encode_reference(std::uint64_t data) noexcept {
  const std::uint8_t hamming = data_syndrome_reference(data) & 0x7F;
  const bool overall =
      parity64(data) ^ (std::popcount<unsigned>(hamming) & 1);
  return static_cast<std::uint8_t>(hamming | (overall ? 0x80 : 0x00));
}

DecodeResult secded_decode_reference(std::uint64_t data,
                                     std::uint8_t check) noexcept {
  DecodeResult result;
  result.data = data;

  const std::uint8_t syndrome = static_cast<std::uint8_t>(
      (data_syndrome_reference(data) ^ check) & 0x7F);
  const bool parity_mismatch =
      parity64(data) ^ (std::popcount<unsigned>(check) & 1);

  if (syndrome == 0 && !parity_mismatch) {
    result.status = DecodeStatus::kClean;
    return result;
  }
  if (!parity_mismatch) {
    result.status = DecodeStatus::kUncorrectable;
    return result;
  }
  if (syndrome == 0) {
    result.status = DecodeStatus::kCorrectedCheck;
    return result;
  }
  if (syndrome < 72 && detail::kInverse[syndrome] != 0xFF) {
    result.data = data ^ (1ull << detail::kInverse[syndrome]);
    result.status = DecodeStatus::kCorrectedData;
    return result;
  }
  if (syndrome < 72 && detail::is_power_of_two(syndrome)) {
    result.status = DecodeStatus::kCorrectedCheck;
    return result;
  }
  result.status = DecodeStatus::kUncorrectable;
  return result;
}

}  // namespace hbmvolt::ecc
