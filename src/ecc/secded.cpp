#include "ecc/secded.hpp"

#include <array>
#include <bit>

namespace hbmvolt::ecc {
namespace {

constexpr bool is_power_of_two(unsigned x) { return (x & (x - 1)) == 0; }

/// Code position (1..71, skipping powers of two) of each data bit.
constexpr std::array<std::uint8_t, 64> make_positions() {
  std::array<std::uint8_t, 64> positions{};
  unsigned next = 0;
  for (unsigned position = 1; position <= 71 && next < 64; ++position) {
    if (!is_power_of_two(position)) {
      positions[next++] = static_cast<std::uint8_t>(position);
    }
  }
  return positions;
}

/// Inverse map: code position -> data bit index (0xFF for check bits).
constexpr std::array<std::uint8_t, 72> make_inverse() {
  std::array<std::uint8_t, 72> inverse{};
  for (auto& entry : inverse) entry = 0xFF;
  const auto positions = make_positions();
  for (unsigned d = 0; d < 64; ++d) inverse[positions[d]] = static_cast<std::uint8_t>(d);
  return inverse;
}

constexpr auto kPositions = make_positions();
constexpr auto kInverse = make_inverse();

/// XOR of the code positions of all set data bits = the 7-bit Hamming
/// syndrome contribution of the data word.
std::uint8_t data_syndrome(std::uint64_t data) noexcept {
  std::uint8_t syndrome = 0;
  while (data != 0) {
    const int bit = std::countr_zero(data);
    data &= data - 1;
    syndrome ^= kPositions[static_cast<unsigned>(bit)];
  }
  return syndrome;
}

bool parity64(std::uint64_t x) noexcept { return std::popcount(x) & 1; }

}  // namespace

std::uint8_t secded_encode(std::uint64_t data) noexcept {
  const std::uint8_t hamming = data_syndrome(data) & 0x7F;
  // Overall parity bit makes the whole 72-bit codeword even-parity.
  const bool overall =
      parity64(data) ^ (std::popcount<unsigned>(hamming) & 1);
  return static_cast<std::uint8_t>(hamming | (overall ? 0x80 : 0x00));
}

DecodeResult secded_decode(std::uint64_t data, std::uint8_t check) noexcept {
  DecodeResult result;
  result.data = data;

  const std::uint8_t syndrome =
      static_cast<std::uint8_t>((data_syndrome(data) ^ check) & 0x7F);
  const bool parity_mismatch =
      parity64(data) ^ (std::popcount<unsigned>(check) & 1);

  if (syndrome == 0 && !parity_mismatch) {
    result.status = DecodeStatus::kClean;
    return result;
  }
  if (!parity_mismatch) {
    // Nonzero syndrome with intact overall parity: >= 2 bit errors.
    result.status = DecodeStatus::kUncorrectable;
    return result;
  }
  if (syndrome == 0) {
    // The overall parity bit itself flipped; data is intact.
    result.status = DecodeStatus::kCorrectedCheck;
    return result;
  }
  if (syndrome < 72 && kInverse[syndrome] != 0xFF) {
    result.data = data ^ (1ull << kInverse[syndrome]);
    result.status = DecodeStatus::kCorrectedData;
    return result;
  }
  if (syndrome < 72 && is_power_of_two(syndrome)) {
    // A Hamming check bit flipped; data is intact.
    result.status = DecodeStatus::kCorrectedCheck;
    return result;
  }
  // Syndrome points outside the codeword: multi-bit corruption.
  result.status = DecodeStatus::kUncorrectable;
  return result;
}

}  // namespace hbmvolt::ecc
