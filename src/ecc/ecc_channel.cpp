#include "ecc/ecc_channel.hpp"

#include <cstring>

namespace hbmvolt::ecc {

const char* to_string(WordCodec codec) noexcept {
  switch (codec) {
    case WordCodec::kSecded:
      return "secded";
    case WordCodec::kDected:
      return "dected";
  }
  return "unknown";
}

EccChannel::EccChannel(hbm::HbmStack& stack, unsigned pc_local,
                       WordCodec codec)
    : stack_(stack), pc_local_(pc_local), codec_(codec) {
  check_bytes_per_word_ = codec_ == WordCodec::kDected ? 2 : 1;
  // Each 32-byte parity beat holds the check bytes of a full group of
  // data beats under either codec: 8 x 4 B (SECDED) or 4 x 8 B (DECTED).
  beats_per_parity_ = 32 / (4 * check_bytes_per_word_);
  const std::uint64_t total = stack_.geometry().beats_per_pc();
  // data + ceil(data/group) <= total, data a multiple of the group size.
  data_beats_padded_ = (total * beats_per_parity_ / (beats_per_parity_ + 1)) /
                       beats_per_parity_ * beats_per_parity_;
  HBMVOLT_REQUIRE(data_beats_padded_ > 0, "PC too small for ECC layout");
  data_beats_ = data_beats_padded_;
  shadow_checks_.assign(data_beats_ * 4 * check_bytes_per_word_, 0);
}

DecodeResult EccChannel::decode_word(std::uint64_t word,
                                     const std::uint8_t* checks) const {
  if (codec_ == WordCodec::kSecded) return secded_decode(word, checks[0]);
  return dected_decode(
      word, static_cast<std::uint16_t>(checks[0] |
                                       (static_cast<unsigned>(checks[1]) << 8)));
}

bool EccChannel::word_clean(std::uint64_t word,
                            const std::uint8_t* checks) const {
  if (codec_ == WordCodec::kSecded) {
    const std::uint8_t syndrome =
        static_cast<std::uint8_t>((data_syndrome(word) ^ checks[0]) & 0x7F);
    const bool parity_mismatch =
        ((std::popcount(word) ^ std::popcount<unsigned>(checks[0])) & 1) != 0;
    return syndrome == 0 && !parity_mismatch;
  }
  return dected_clean(
      word, static_cast<std::uint16_t>(checks[0] |
                                       (static_cast<unsigned>(checks[1]) << 8)));
}

void EccChannel::encode_word(std::uint64_t word, std::uint8_t* checks) const {
  if (codec_ == WordCodec::kSecded) {
    checks[0] = secded_encode(word);
    return;
  }
  const std::uint16_t check = dected_encode(word);
  checks[0] = static_cast<std::uint8_t>(check);
  checks[1] = static_cast<std::uint8_t>(check >> 8);
}

Status EccChannel::write_beat(std::uint64_t beat, const hbm::Beat& data) {
  if (beat >= data_beats_) {
    return out_of_range("ECC data beat out of range");
  }
  HBMVOLT_RETURN_IF_ERROR(stack_.write_beat(pc_local_, beat, data));

  // Update the shadow check bytes for this beat.
  const unsigned cbw = check_bytes_per_word_;
  for (unsigned w = 0; w < 4; ++w) {
    encode_word(data[w], shadow_checks_.data() + (beat * 4 + w) * cbw);
  }

  // Write the full parity beat (32 check bytes covering one beat group)
  // from the shadow -- atomic with the data write, like the extra ECC
  // devices on a DIMM.
  const std::uint64_t group = beat / beats_per_parity_;
  hbm::Beat parity{};
  std::memcpy(parity.data(), shadow_checks_.data() + group * 32, 32);
  return stack_.write_beat(pc_local_, parity_beat_of(beat), parity);
}

Result<EccChannel::ReadOutcome> EccChannel::read_beat(std::uint64_t beat) {
  if (beat >= data_beats_) {
    return out_of_range("ECC data beat out of range");
  }
  auto data = stack_.read_beat(pc_local_, beat);
  if (!data.is_ok()) return data.status();
  // This beat's check bytes (4 or 8) fit inside one 64-bit word of the
  // parity beat; fetch just that word instead of the whole beat (the
  // demand-read hot path -- scrubbing still reads full parity beats).
  const unsigned cbw = check_bytes_per_word_;
  const std::uint64_t slot = beat % beats_per_parity_;
  const std::uint64_t byte_off = slot * 4 * cbw;
  auto parity_word = stack_.read_word(
      pc_local_, parity_beat_of(beat) * 4 + byte_off / 8);
  if (!parity_word.is_ok()) return parity_word.status();
  std::uint8_t check_bytes[8];
  const std::uint64_t raw = parity_word.value() >> ((byte_off % 8) * 8);
  for (unsigned b = 0; b < 4 * cbw; ++b) {
    check_bytes[b] = static_cast<std::uint8_t>(raw >> (b * 8));
  }

  ReadOutcome outcome;
  for (unsigned w = 0; w < 4; ++w) {
    const DecodeResult decoded =
        decode_word(data.value()[w], check_bytes + w * cbw);
    outcome.data[w] = decoded.data;
    ++stats_.words_read;
    switch (decoded.status) {
      case DecodeStatus::kClean:
        ++stats_.words_clean;
        break;
      case DecodeStatus::kCorrectedData:
        ++stats_.corrected_data;
        ++outcome.corrected;
        break;
      case DecodeStatus::kCorrectedCheck:
        // Data intact: counted as a check-byte event only, never folded
        // into `corrected` (a beat with both a data and a check error used
        // to report two corrected data words when only one was repaired).
        ++stats_.corrected_check;
        ++outcome.corrected_check;
        break;
      case DecodeStatus::kUncorrectable:
        ++stats_.uncorrectable;
        ++outcome.uncorrectable;
        break;
    }
  }
  return outcome;
}

Result<ScrubOutcome> EccChannel::scrub_beat(std::uint64_t beat) {
  if (beat >= data_beats_) {
    return out_of_range("ECC data beat out of range");
  }
  auto data = stack_.read_beat(pc_local_, beat);
  if (!data.is_ok()) return data.status();
  auto parity = stack_.read_beat(pc_local_, parity_beat_of(beat));
  if (!parity.is_ok()) return parity.status();

  const unsigned cbw = check_bytes_per_word_;
  const auto* check_bytes =
      reinterpret_cast<const std::uint8_t*>(parity.value().data()) +
      (beat % beats_per_parity_) * 4 * cbw;

  ScrubOutcome outcome;
  hbm::Beat repaired = data.value();
  bool data_dirty = false;
  bool parity_dirty = false;
  for (unsigned w = 0; w < 4; ++w) {
    const DecodeResult decoded =
        decode_word(data.value()[w], check_bytes + w * cbw);
    switch (decoded.status) {
      case DecodeStatus::kClean:
        break;
      case DecodeStatus::kCorrectedData:
        ++outcome.corrected_data;
        repaired[w] = decoded.data;
        data_dirty = true;
        break;
      case DecodeStatus::kCorrectedCheck:
        ++outcome.corrected_check;
        parity_dirty = true;
        break;
      case DecodeStatus::kUncorrectable:
        // Nothing trustworthy to write back for this word; leave the
        // stored value alone so a later voltage raise can still recover it.
        ++outcome.uncorrectable;
        break;
    }
  }

  if (data_dirty) {
    HBMVOLT_RETURN_IF_ERROR(stack_.write_beat(pc_local_, beat, repaired));
  }
  if (parity_dirty) {
    // Refresh the whole parity beat from the host-side shadow; this also
    // repairs rot in the check bytes of the sibling data beats.
    const std::uint64_t group = beat / beats_per_parity_;
    hbm::Beat fresh{};
    std::memcpy(fresh.data(), shadow_checks_.data() + group * 32, 32);
    HBMVOLT_RETURN_IF_ERROR(
        stack_.write_beat(pc_local_, parity_beat_of(beat), fresh));
  }
  outcome.wrote_back = data_dirty || parity_dirty;
  return outcome;
}

Status EccChannel::encode_range(std::uint64_t start, std::uint64_t count,
                                const hbm::Beat* data) {
  if (count == 0) return Status::ok();
  if (start >= data_beats_ || count > data_beats_ - start) {
    return out_of_range("ECC data beat range out of range");
  }
  static_assert(sizeof(hbm::Beat) == 32, "Beat must be 4 packed words");
  HBMVOLT_RETURN_IF_ERROR(stack_.write_range_words(
      pc_local_, start, count,
      reinterpret_cast<const std::uint64_t*>(data)));
  const unsigned cbw = check_bytes_per_word_;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t beat = start + i;
    for (unsigned w = 0; w < 4; ++w) {
      encode_word(data[i][w], shadow_checks_.data() + (beat * 4 + w) * cbw);
    }
  }
  // Each touched parity beat once, from the updated shadow -- the same
  // final state as the per-beat path's repeated group rewrites.
  const std::uint64_t g0 = start / beats_per_parity_;
  const std::uint64_t g1 = (start + count - 1) / beats_per_parity_;
  const std::uint64_t groups = g1 - g0 + 1;
  scratch_parity_.resize(groups * 4);
  std::memcpy(scratch_parity_.data(), shadow_checks_.data() + g0 * 32,
              groups * 32);
  return stack_.write_range_words(pc_local_, data_beats_padded_ + g0, groups,
                                  scratch_parity_.data());
}

Status EccChannel::decode_range(std::uint64_t start, std::uint64_t count,
                                hbm::Beat* out,
                                std::vector<RangeBeatEvent>& events) {
  if (count == 0) return Status::ok();
  if (start >= data_beats_ || count > data_beats_ - start) {
    return out_of_range("ECC data beat range out of range");
  }
  HBMVOLT_RETURN_IF_ERROR(stack_.read_range_words(
      pc_local_, start, count, reinterpret_cast<std::uint64_t*>(out)));
  const std::uint64_t g0 = start / beats_per_parity_;
  const std::uint64_t g1 = (start + count - 1) / beats_per_parity_;
  scratch_parity_.resize((g1 - g0 + 1) * 4);
  HBMVOLT_RETURN_IF_ERROR(
      stack_.read_range_words(pc_local_, data_beats_padded_ + g0, g1 - g0 + 1,
                              scratch_parity_.data()));
  const auto* parity_bytes =
      reinterpret_cast<const std::uint8_t*>(scratch_parity_.data());

  const unsigned cbw = check_bytes_per_word_;
  std::uint64_t clean_words = 0;
  std::uint64_t corrected_data = 0;
  std::uint64_t corrected_check = 0;
  std::uint64_t uncorrectable = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t beat = start + i;
    const std::uint64_t slot = beat % beats_per_parity_;
    const std::uint8_t* checks =
        parity_bytes + (beat / beats_per_parity_ - g0) * 32 + slot * 4 * cbw;
    hbm::Beat& words = out[i];
    // Fast all-clean exit: zero syndrome and intact parity on all four
    // words covers the overwhelming majority of beats.
    bool clean = true;
    for (unsigned w = 0; w < 4; ++w) {
      if (!word_clean(words[w], checks + w * cbw)) {
        clean = false;
        break;
      }
    }
    if (clean) {
      clean_words += 4;
      continue;
    }
    RangeBeatEvent event;
    event.beat = beat;
    for (unsigned w = 0; w < 4; ++w) {
      const DecodeResult decoded = decode_word(words[w], checks + w * cbw);
      words[w] = decoded.data;
      switch (decoded.status) {
        case DecodeStatus::kClean:
          ++clean_words;
          break;
        case DecodeStatus::kCorrectedData:
          ++corrected_data;
          ++event.corrected;
          break;
        case DecodeStatus::kCorrectedCheck:
          ++corrected_check;
          ++event.corrected_check;
          break;
        case DecodeStatus::kUncorrectable:
          ++uncorrectable;
          ++event.uncorrectable;
          break;
      }
    }
    events.push_back(event);
  }
  stats_.words_read += count * 4;
  stats_.words_clean += clean_words;
  stats_.corrected_data += corrected_data;
  stats_.corrected_check += corrected_check;
  stats_.uncorrectable += uncorrectable;
  return Status::ok();
}

Status EccChannel::scrub_range(std::uint64_t start, std::uint64_t count,
                               std::vector<RangeBeatEvent>& events) {
  if (count == 0) return Status::ok();
  if (start >= data_beats_ || count > data_beats_ - start) {
    return out_of_range("ECC data beat range out of range");
  }
  scratch_data_.resize(count * 4);
  HBMVOLT_RETURN_IF_ERROR(stack_.read_range_words(pc_local_, start, count,
                                                  scratch_data_.data()));
  const std::uint64_t g0 = start / beats_per_parity_;
  const std::uint64_t g1 = (start + count - 1) / beats_per_parity_;
  scratch_parity_.resize((g1 - g0 + 1) * 4);
  HBMVOLT_RETURN_IF_ERROR(
      stack_.read_range_words(pc_local_, data_beats_padded_ + g0, g1 - g0 + 1,
                              scratch_parity_.data()));
  auto* parity_bytes =
      reinterpret_cast<std::uint8_t*>(scratch_parity_.data());

  const unsigned cbw = check_bytes_per_word_;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t beat = start + i;
    const std::uint64_t group = beat / beats_per_parity_;
    const std::uint64_t slot = beat % beats_per_parity_;
    const std::uint8_t* checks =
        parity_bytes + (group - g0) * 32 + slot * 4 * cbw;
    const std::uint64_t* words = scratch_data_.data() + i * 4;
    bool clean = true;
    for (unsigned w = 0; w < 4; ++w) {
      if (!word_clean(words[w], checks + w * cbw)) {
        clean = false;
        break;
      }
    }
    if (clean) continue;

    RangeBeatEvent event;
    event.beat = beat;
    hbm::Beat repaired{words[0], words[1], words[2], words[3]};
    bool data_dirty = false;
    bool parity_dirty = false;
    for (unsigned w = 0; w < 4; ++w) {
      const DecodeResult decoded = decode_word(words[w], checks + w * cbw);
      switch (decoded.status) {
        case DecodeStatus::kClean:
          break;
        case DecodeStatus::kCorrectedData:
          ++event.corrected;
          repaired[w] = decoded.data;
          data_dirty = true;
          break;
        case DecodeStatus::kCorrectedCheck:
          ++event.corrected_check;
          parity_dirty = true;
          break;
        case DecodeStatus::kUncorrectable:
          ++event.uncorrectable;
          break;
      }
    }
    if (data_dirty) {
      HBMVOLT_RETURN_IF_ERROR(stack_.write_beat(pc_local_, beat, repaired));
    }
    if (parity_dirty) {
      // Refresh the whole parity beat from the shadow, then re-read it
      // through the stack so later siblings in this group decode against
      // the refreshed-and-overlaid bytes, exactly like the per-beat path.
      hbm::Beat fresh{};
      std::memcpy(fresh.data(), shadow_checks_.data() + group * 32, 32);
      HBMVOLT_RETURN_IF_ERROR(
          stack_.write_beat(pc_local_, parity_beat_of(beat), fresh));
      auto reread = stack_.read_beat(pc_local_, parity_beat_of(beat));
      if (!reread.is_ok()) return reread.status();
      std::memcpy(parity_bytes + (group - g0) * 32, reread.value().data(),
                  32);
    }
    event.wrote_back = data_dirty || parity_dirty;
    events.push_back(event);
  }
  return Status::ok();
}

void EccChannel::restore_state(const std::vector<std::uint8_t>& shadow,
                               const EccStats& stats) {
  HBMVOLT_REQUIRE(shadow.size() == shadow_checks_.size(),
                  "shadow checkpoint layout mismatch");
  shadow_checks_ = shadow;
  stats_ = stats;
}

}  // namespace hbmvolt::ecc
