#include "ecc/ecc_channel.hpp"

#include <cstring>

namespace hbmvolt::ecc {

EccChannel::EccChannel(hbm::HbmStack& stack, unsigned pc_local)
    : stack_(stack), pc_local_(pc_local) {
  const std::uint64_t total = stack_.geometry().beats_per_pc();
  // data + ceil(data/8) <= total, data a multiple of 8.
  data_beats_padded_ = (total * kBeatsPerParityBeat /
                        (kBeatsPerParityBeat + 1)) /
                       kBeatsPerParityBeat * kBeatsPerParityBeat;
  HBMVOLT_REQUIRE(data_beats_padded_ > 0, "PC too small for ECC layout");
  data_beats_ = data_beats_padded_;
  shadow_checks_.assign(data_beats_ * 4, 0);
}

Status EccChannel::write_beat(std::uint64_t beat, const hbm::Beat& data) {
  if (beat >= data_beats_) {
    return out_of_range("ECC data beat out of range");
  }
  HBMVOLT_RETURN_IF_ERROR(stack_.write_beat(pc_local_, beat, data));

  // Update the shadow check bytes for this beat.
  for (unsigned w = 0; w < 4; ++w) {
    shadow_checks_[beat * 4 + w] = secded_encode(data[w]);
  }

  // Write the full parity beat (32 check bytes covering 8 data beats)
  // from the shadow -- atomic with the data write, like the extra ECC
  // devices on a DIMM.
  const std::uint64_t group = beat / kBeatsPerParityBeat;
  hbm::Beat parity{};
  std::memcpy(parity.data(),
              shadow_checks_.data() + group * kBeatsPerParityBeat * 4, 32);
  return stack_.write_beat(pc_local_, parity_beat_of(beat), parity);
}

Result<EccChannel::ReadOutcome> EccChannel::read_beat(std::uint64_t beat) {
  if (beat >= data_beats_) {
    return out_of_range("ECC data beat out of range");
  }
  auto data = stack_.read_beat(pc_local_, beat);
  if (!data.is_ok()) return data.status();
  auto parity = stack_.read_beat(pc_local_, parity_beat_of(beat));
  if (!parity.is_ok()) return parity.status();

  const auto* check_bytes =
      reinterpret_cast<const std::uint8_t*>(parity.value().data()) +
      (beat % kBeatsPerParityBeat) * 4;

  ReadOutcome outcome;
  for (unsigned w = 0; w < 4; ++w) {
    const DecodeResult decoded =
        secded_decode(data.value()[w], check_bytes[w]);
    outcome.data[w] = decoded.data;
    ++stats_.words_read;
    switch (decoded.status) {
      case DecodeStatus::kClean:
        ++stats_.words_clean;
        break;
      case DecodeStatus::kCorrectedData:
        ++stats_.corrected_data;
        ++outcome.corrected;
        break;
      case DecodeStatus::kCorrectedCheck:
        // Data intact: counted as a check-byte event only, never folded
        // into `corrected` (a beat with both a data and a check error used
        // to report two corrected data words when only one was repaired).
        ++stats_.corrected_check;
        ++outcome.corrected_check;
        break;
      case DecodeStatus::kUncorrectable:
        ++stats_.uncorrectable;
        ++outcome.uncorrectable;
        break;
    }
  }
  return outcome;
}

Result<ScrubOutcome> EccChannel::scrub_beat(std::uint64_t beat) {
  if (beat >= data_beats_) {
    return out_of_range("ECC data beat out of range");
  }
  auto data = stack_.read_beat(pc_local_, beat);
  if (!data.is_ok()) return data.status();
  auto parity = stack_.read_beat(pc_local_, parity_beat_of(beat));
  if (!parity.is_ok()) return parity.status();

  const auto* check_bytes =
      reinterpret_cast<const std::uint8_t*>(parity.value().data()) +
      (beat % kBeatsPerParityBeat) * 4;

  ScrubOutcome outcome;
  hbm::Beat repaired = data.value();
  bool data_dirty = false;
  bool parity_dirty = false;
  for (unsigned w = 0; w < 4; ++w) {
    const DecodeResult decoded =
        secded_decode(data.value()[w], check_bytes[w]);
    switch (decoded.status) {
      case DecodeStatus::kClean:
        break;
      case DecodeStatus::kCorrectedData:
        ++outcome.corrected_data;
        repaired[w] = decoded.data;
        data_dirty = true;
        break;
      case DecodeStatus::kCorrectedCheck:
        ++outcome.corrected_check;
        parity_dirty = true;
        break;
      case DecodeStatus::kUncorrectable:
        // Nothing trustworthy to write back for this word; leave the
        // stored value alone so a later voltage raise can still recover it.
        ++outcome.uncorrectable;
        break;
    }
  }

  if (data_dirty) {
    HBMVOLT_RETURN_IF_ERROR(stack_.write_beat(pc_local_, beat, repaired));
  }
  if (parity_dirty) {
    // Refresh the whole parity beat from the host-side shadow; this also
    // repairs rot in the check bytes of the 7 sibling data beats.
    const std::uint64_t group = beat / kBeatsPerParityBeat;
    hbm::Beat fresh{};
    std::memcpy(fresh.data(),
                shadow_checks_.data() + group * kBeatsPerParityBeat * 4, 32);
    HBMVOLT_RETURN_IF_ERROR(
        stack_.write_beat(pc_local_, parity_beat_of(beat), fresh));
  }
  outcome.wrote_back = data_dirty || parity_dirty;
  return outcome;
}

}  // namespace hbmvolt::ecc
