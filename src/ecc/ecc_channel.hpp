// ECC-protected view of one pseudo-channel.
//
// Carves the PC into a data region and a parity region.  Under SECDED
// each 256-bit data beat needs 4 check bytes (8 data beats per parity
// beat); under DECTED it needs 8 (4 data beats per parity beat, double
// the storage for double the correction reach).  Check bytes live in the
// same undervolted DRAM as the data, so they suffer stuck-at faults too
// -- matching how on-die/side-band ECC really behaves under voltage
// underscaling.
//
// The channel keeps a host-side shadow of the check bytes it wrote so
// that parity writes are atomic with data writes (no read-modify-write
// through faulty memory); reads always fetch the *stored* (possibly
// corrupted) check bytes.

#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "ecc/dected.hpp"
#include "ecc/secded.hpp"
#include "hbm/stack.hpp"

namespace hbmvolt::ecc {

/// Per-word codec deployed by an EccChannel.  The mitigation registry
/// (mitigate/scheme.hpp) maps scheme names onto these.
enum class WordCodec : unsigned {
  kSecded = 0,  // Hamming(72,64): 1 check byte/word, corrects 1, detects 2
  kDected = 1,  // BCH+parity(80,64): 2 check bytes/word, corrects 2, detects 3
};

[[nodiscard]] const char* to_string(WordCodec codec) noexcept;

struct EccStats {
  std::uint64_t words_read = 0;
  std::uint64_t words_clean = 0;
  std::uint64_t corrected_data = 0;   // single-bit data errors fixed
  std::uint64_t corrected_check = 0;  // check-bit errors (data intact)
  std::uint64_t uncorrectable = 0;    // detected multi-bit errors

  /// Residual word-error rate after correction.
  [[nodiscard]] double uncorrectable_rate() const noexcept {
    return words_read == 0 ? 0.0
                           : static_cast<double>(uncorrectable) /
                                 static_cast<double>(words_read);
  }

  /// Accounting invariant: every decoded word lands in exactly one bucket.
  [[nodiscard]] bool consistent() const noexcept {
    return words_read ==
           words_clean + corrected_data + corrected_check + uncorrectable;
  }
};

/// Result of one patrol-scrub pass over a beat (see scrub_beat).
struct ScrubOutcome {
  unsigned corrected_data = 0;   // data words repaired and written back
  unsigned corrected_check = 0;  // check-byte errors (parity rewritten)
  unsigned uncorrectable = 0;    // words the scrubber could not repair
  /// Whether the scrubber wrote anything back (data beat and/or parity).
  bool wrote_back = false;
};

class EccChannel {
 public:
  /// SECDED beats per parity beat: 8 data beats x 4 words x 1 check byte
  /// = 32 B.  (DECTED packs 4 data beats x 4 words x 2 check bytes into
  /// the same 32 B; see beats_per_parity_beat().)
  static constexpr std::uint64_t kBeatsPerParityBeat = 8;

  EccChannel(hbm::HbmStack& stack, unsigned pc_local,
             WordCodec codec = WordCodec::kSecded);

  /// Usable data beats (the parity region consumes 1/9 of the PC under
  /// SECDED, 1/5 under DECTED).
  [[nodiscard]] std::uint64_t data_beats() const noexcept {
    return data_beats_;
  }

  [[nodiscard]] WordCodec codec() const noexcept { return codec_; }

  /// Check bytes per 64-bit data word: 1 (SECDED) or 2 (DECTED).
  [[nodiscard]] unsigned check_bytes_per_word() const noexcept {
    return check_bytes_per_word_;
  }

  /// Data beats covered by one 32-byte parity beat: 8 (SECDED), 4 (DECTED).
  [[nodiscard]] std::uint64_t beats_per_parity_beat() const noexcept {
    return beats_per_parity_;
  }

  Status write_beat(std::uint64_t beat, const hbm::Beat& data);

  struct ReadOutcome {
    hbm::Beat data;
    /// Data words that needed correction in this beat.  Check-byte-only
    /// errors are counted in `corrected_check` instead: the data word was
    /// intact, and folding both into one count double-counted beats that
    /// had both a data and a check error (they reported two corrupted
    /// words when only one data word was repaired).
    unsigned corrected = 0;
    unsigned corrected_check = 0;  // check-byte errors (data intact)
    unsigned uncorrectable = 0;    // words lost in this beat
  };
  Result<ReadOutcome> read_beat(std::uint64_t beat);

  /// Patrol-scrub one beat: decode every word and *write back* the
  /// corrections -- read_beat's corrections are transient (the stored data
  /// stays corrupt), which lets independent single-bit upsets accumulate
  /// into uncorrectable words.  Repaired data words are rewritten to the
  /// array; a beat with any check-byte error gets its parity beat
  /// refreshed from the host-side shadow (repairing bit-rot in the parity
  /// region).  Stuck-at cells re-corrupt the written-back value on the
  /// next read, as on real hardware -- write-back targets *transient*
  /// corruption, the stuck cells are the retirement ladder's job.
  /// Scrub traffic is accounted in the ScrubOutcome only; it never inflates
  /// the demand-read EccStats.
  Result<ScrubOutcome> scrub_beat(std::uint64_t beat);

  // ---- Batched range engine ----
  // Bulk siblings of write_beat/read_beat/scrub_beat over contiguous beat
  // ranges, built on HbmStack's raw word-range ops and the bit-sliced
  // SECDED codec (secded.hpp).  Results and final memory state are
  // byte-identical to the equivalent per-beat call sequence in ascending
  // beat order; non-clean beats are reported as sparse events so callers
  // pay O(faults), not O(beats), for the exception bookkeeping.

  /// One non-clean beat from decode_range/scrub_range, in ascending beat
  /// order.  Clean beats produce no event -- the all-clean fast exit.
  struct RangeBeatEvent {
    std::uint64_t beat = 0;            // absolute ECC data-beat index
    std::uint8_t corrected = 0;        // data words repaired
    std::uint8_t corrected_check = 0;  // check-byte errors (data intact)
    std::uint8_t uncorrectable = 0;    // words lost
    bool wrote_back = false;           // scrub_range: repairs written back
  };

  /// Bulk encode+write of [start, start+count): data beats via one raw
  /// range write, then each touched parity beat once from the shadow.
  /// Final memory state identical to count write_beat calls.
  Status encode_range(std::uint64_t start, std::uint64_t count,
                      const hbm::Beat* data);

  /// Bulk decode of [start, start+count) into `out` (count beats).  A beat
  /// whose four words all have zero syndrome and intact parity is passed
  /// through untouched (the common case costs 7 masked popcounts per word
  /// and no branch misses); everything else appends a RangeBeatEvent.
  Status decode_range(std::uint64_t start, std::uint64_t count,
                      hbm::Beat* out, std::vector<RangeBeatEvent>& events);

  /// Bulk patrol scrub of [start, start+count): per-beat semantics of
  /// scrub_beat, including the parity-group refresh -- when a beat's
  /// check bytes are rewritten from the shadow, later sibling beats in
  /// the same parity group decode against the *refreshed* (re-read, so
  /// overlay-corrupted exactly like a demand fetch) parity beat, matching
  /// the per-beat call sequence bit for bit.
  Status scrub_range(std::uint64_t start, std::uint64_t count,
                     std::vector<RangeBeatEvent>& events);

  [[nodiscard]] const EccStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = EccStats{}; }

  /// Host-side shadow of every written check byte (checkpoint seam).
  [[nodiscard]] const std::vector<std::uint8_t>& shadow_checks()
      const noexcept {
    return shadow_checks_;
  }
  /// Restores a checkpointed shadow + stats onto a freshly constructed
  /// channel of identical layout (fleet checkpoint/restore).
  void restore_state(const std::vector<std::uint8_t>& shadow,
                     const EccStats& stats);

  /// Physical beat that stores `beat`'s check bytes.  Exposed so retirement
  /// planners can tell whether a data beat's protection lives on a healthy
  /// row: a fault-free data beat whose parity row is retired still can't be
  /// served through ECC.
  [[nodiscard]] std::uint64_t parity_beat_of(std::uint64_t beat) const {
    return data_beats_padded_ + beat / beats_per_parity_;
  }

 private:
  /// Decode/encode/clean-test one 64-bit word against its stored check
  /// bytes (`checks` points at check_bytes_per_word_ little-endian bytes).
  [[nodiscard]] DecodeResult decode_word(std::uint64_t word,
                                         const std::uint8_t* checks) const;
  [[nodiscard]] bool word_clean(std::uint64_t word,
                                const std::uint8_t* checks) const;
  void encode_word(std::uint64_t word, std::uint8_t* checks) const;

  hbm::HbmStack& stack_;
  unsigned pc_local_;
  WordCodec codec_;
  unsigned check_bytes_per_word_ = 1;
  std::uint64_t beats_per_parity_ = kBeatsPerParityBeat;
  std::uint64_t data_beats_ = 0;         // exposed capacity
  std::uint64_t data_beats_padded_ = 0;  // rounded to parity granularity
  std::vector<std::uint8_t> shadow_checks_;  // 4 or 8 bytes per data beat
  EccStats stats_;
  // Reusable scratch for the range engine (parity words / scrub data),
  // so bulk calls allocate only on high-water growth.
  std::vector<std::uint64_t> scratch_parity_;
  std::vector<std::uint64_t> scratch_data_;
};

}  // namespace hbmvolt::ecc
