// Named metric primitives: atomic counters, gauges, and fixed-bucket
// histograms, owned by a MetricRegistry.  Registration (name lookup) takes
// a mutex; updates through the returned handle are lock-free atomics, so
// the sweep hot paths pay one indexed fetch_add per *bulk* event (beats
// are counted per range, never per beat -- see docs/observability.md).

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace hbmvolt::telemetry {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value plus its high-water mark (e.g. pool queue depth).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
    std::int64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Fixed upper-bound buckets: bucket i counts observations v with
/// bounds[i-1] < v <= bounds[i]; the extra last bucket counts overflow
/// (v > bounds.back()).  Bounds are fixed at registration.
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> bounds);

  void observe(std::uint64_t v) noexcept {
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  [[nodiscard]] const std::vector<std::uint64_t>& bounds() const noexcept {
    return bounds_;
  }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<std::uint64_t> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

struct GaugeSnapshot {
  std::string name;
  std::int64_t value = 0;
  std::int64_t max = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::vector<std::uint64_t> bounds;
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
};

/// Thread-safe name -> metric registry.  Returned references stay valid
/// for the registry's lifetime (metrics are heap nodes, never rehashed).
/// Snapshots iterate in name order, so exports are deterministic.
class MetricRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// First registration fixes the bounds; later calls with the same name
  /// return the existing histogram regardless of `bounds`.
  Histogram& histogram(std::string_view name,
                       std::vector<std::uint64_t> bounds = default_bounds());

  /// Default bounds for duration-style histograms, in microseconds:
  /// 1us .. 10s decades.
  [[nodiscard]] static std::vector<std::uint64_t> default_bounds();

  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  counter_values() const;
  [[nodiscard]] std::vector<GaugeSnapshot> gauge_values() const;
  [[nodiscard]] std::vector<HistogramSnapshot> histogram_values() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace hbmvolt::telemetry
