// Named metric primitives: atomic counters, gauges, and fixed-bucket
// histograms, owned by a MetricRegistry.  Registration (name lookup) takes
// a mutex; updates through the returned handle are lock-free atomics, so
// the sweep hot paths pay one indexed fetch_add per *bulk* event (beats
// are counted per range, never per beat -- see docs/observability.md).

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/hdr_histogram.hpp"

namespace hbmvolt::telemetry {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value plus its high-water mark (e.g. pool queue depth).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
    touched_.store(true, std::memory_order_relaxed);
    std::int64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  /// Whether set() ever ran -- how family exports tell an idle slot from
  /// one legitimately sitting at zero.
  [[nodiscard]] bool touched() const noexcept {
    return touched_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
  std::atomic<bool> touched_{false};
};

/// Fixed upper-bound buckets: bucket i counts observations v with
/// bounds[i-1] < v <= bounds[i]; the extra last bucket counts overflow
/// (v > bounds.back()).  Bounds are fixed at registration.
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> bounds);

  void observe(std::uint64_t v) noexcept {
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  [[nodiscard]] const std::vector<std::uint64_t>& bounds() const noexcept {
    return bounds_;
  }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<std::uint64_t> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Labeled counter family: one name, one label key, a fixed number of
/// slots (e.g. `runtime.reads{pc=17}` = slot 17 of a 32-slot family).
/// Slots are a flat array fixed at registration, so the hot path is the
/// same single relaxed fetch_add as a plain Counter -- no per-update name
/// lookup, no map, no lock.
class CounterFamily {
 public:
  CounterFamily(std::string label_key, std::size_t slots);

  /// Unchecked in release-style hot paths is tempting, but slots are
  /// caller-controlled indices (PC numbers): keep the bounds REQUIRE.
  [[nodiscard]] Counter& at(std::size_t label);

  [[nodiscard]] const std::string& label_key() const noexcept {
    return label_key_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  std::string label_key_;
  std::size_t size_;
  std::unique_ptr<Counter[]> slots_;
};

/// Labeled gauge family (e.g. `runtime.spares_free{pc=N}`): without the
/// label, per-PC gauges collapse to last-writer-wins and the export shows
/// whichever channel flushed last.
class GaugeFamily {
 public:
  GaugeFamily(std::string label_key, std::size_t slots);

  [[nodiscard]] Gauge& at(std::size_t label);

  [[nodiscard]] const std::string& label_key() const noexcept {
    return label_key_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  std::string label_key_;
  std::size_t size_;
  std::unique_ptr<Gauge[]> slots_;
};

/// Labeled HDR-histogram family (e.g. `latency.read{pc=N}`).  Not a hot
/// path: workers record into private HdrHistograms and merge_into() here
/// at sync points (epoch barriers), under one mutex.
class HdrFamily {
 public:
  HdrFamily(std::string label_key, std::size_t slots,
            std::uint64_t max_value);

  void merge_into(std::size_t label, const HdrHistogram& local);

  [[nodiscard]] const std::string& label_key() const noexcept {
    return label_key_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }
  [[nodiscard]] std::uint64_t max_value() const noexcept {
    return max_value_;
  }
  /// Copy of one slot / the index-order merge of all slots (lock held).
  [[nodiscard]] HdrHistogram slot(std::size_t label) const;
  [[nodiscard]] HdrHistogram merged() const;

 private:
  mutable std::mutex mutex_;
  std::string label_key_;
  std::uint64_t max_value_;
  std::vector<HdrHistogram> slots_;
};

struct GaugeSnapshot {
  std::string name;
  std::int64_t value = 0;
  std::int64_t max = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::vector<std::uint64_t> bounds;
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  /// Bucket-interpolated quantile: finds the bucket holding rank q*count
  /// and interpolates linearly inside it (overflow bucket reports the top
  /// bound -- the histogram has no upper edge there).  Coarser than the
  /// HDR exact-rank quantile; exported alongside it for every fixed-bucket
  /// histogram.
  [[nodiscard]] double quantile(double q) const;
};

struct CounterFamilySnapshot {
  std::string name;
  std::string label_key;
  std::vector<std::uint64_t> values;  // slot-indexed
  std::uint64_t total = 0;
};

struct GaugeFamilySnapshot {
  std::string name;
  std::string label_key;
  /// (slot index, snapshot) for every slot set() ever touched; .name is
  /// left empty.
  std::vector<std::pair<std::size_t, GaugeSnapshot>> slots;
};

struct HdrSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::uint64_t overflow = 0;
  HdrHistogram::Quantiles q;
};

struct HdrFamilySnapshot {
  std::string name;
  std::string label_key;
  /// (slot index, snapshot) for every slot with count > 0.
  std::vector<std::pair<std::size_t, HdrSnapshot>> slots;
  /// Index-order merge across all slots (the fleet-wide distribution).
  HdrSnapshot merged;
};

/// Canonical rendering of one family slot: "name{key=label}".
[[nodiscard]] std::string family_slot_name(std::string_view name,
                                           std::string_view label_key,
                                           std::size_t label);

/// Thread-safe name -> metric registry.  Returned references stay valid
/// for the registry's lifetime (metrics are heap nodes, never rehashed).
/// Snapshots iterate in name order, so exports are deterministic.
class MetricRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Existing histogram, or a new one with the default duration bounds.
  Histogram& histogram(std::string_view name);
  /// Explicit bounds.  First registration fixes them; re-registering the
  /// same name with different bounds aborts (HBMVOLT_REQUIRE) naming both
  /// bound sets -- a silent mismatch used to hand the caller buckets it
  /// never asked for.
  Histogram& histogram(std::string_view name,
                       std::vector<std::uint64_t> bounds);

  /// Labeled families.  First registration fixes (label_key, slots[,
  /// max_value]); re-registering with a different shape aborts.
  CounterFamily& counter_family(std::string_view name,
                                std::string_view label_key,
                                std::size_t slots);
  GaugeFamily& gauge_family(std::string_view name, std::string_view label_key,
                            std::size_t slots);
  HdrFamily& hdr_family(
      std::string_view name, std::string_view label_key, std::size_t slots,
      std::uint64_t max_value = HdrHistogram::kDefaultMaxValue);

  /// Default bounds for duration-style histograms, in microseconds:
  /// 1us .. 10s decades.
  [[nodiscard]] static std::vector<std::uint64_t> default_bounds();

  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  counter_values() const;
  [[nodiscard]] std::vector<GaugeSnapshot> gauge_values() const;
  [[nodiscard]] std::vector<HistogramSnapshot> histogram_values() const;
  [[nodiscard]] std::vector<CounterFamilySnapshot> counter_family_values()
      const;
  [[nodiscard]] std::vector<GaugeFamilySnapshot> gauge_family_values() const;
  [[nodiscard]] std::vector<HdrFamilySnapshot> hdr_family_values() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<CounterFamily>, std::less<>>
      counter_families_;
  std::map<std::string, std::unique_ptr<GaugeFamily>, std::less<>>
      gauge_families_;
  std::map<std::string, std::unique_ptr<HdrFamily>, std::less<>>
      hdr_families_;
};

}  // namespace hbmvolt::telemetry
