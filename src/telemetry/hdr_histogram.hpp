// Mergeable log-linear (HDR-style) histogram for latency quantiles.
//
// The fixed-bucket Histogram in metrics.hpp asks the caller to guess the
// interesting decades up front; this one covers [0, max_value] with
// bounded *relative* error instead.  Values below kSubBucketCount are
// counted exactly (linear region); every power-of-two octave above it is
// split into kSubBucketCount sub-buckets, so a bucket is never wider than
// 1/kSubBucketCount of its value (~3.1% at 32 sub-buckets).  Quantiles
// are exact-rank: the reported value is the upper edge of the bucket that
// holds the rank-th sample (clamped to the observed min/max), never an
// interpolation across buckets -- p999 of a bimodal latency distribution
// cannot land between the modes.
//
// Concurrency follows the repo-wide discipline: workers record into a
// private instance (plain integer adds, no atomics), and sync points
// merge those into the shared registry (MetricRegistry::hdr_family) in
// index order.  merge() is commutative and associative, so any grouping
// of per-thread histograms yields identical buckets -- pinned by
// tests/observability_test.cpp.

#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

namespace hbmvolt::telemetry {

class HdrHistogram {
 public:
  /// Sub-buckets per octave.  5 bits -> 32 sub-buckets -> worst-case
  /// relative bucket width 1/32.
  static constexpr unsigned kSubBucketBits = 5;
  static constexpr std::uint64_t kSubBucketCount = 1ull << kSubBucketBits;
  /// Default ceiling: 2^40 ns (~18 minutes) -- far beyond any sane per-op
  /// latency.  Larger values land in the overflow bucket.
  static constexpr std::uint64_t kDefaultMaxValue = 1ull << 40;

  explicit HdrHistogram(std::uint64_t max_value = kDefaultMaxValue);

  void record(std::uint64_t v) { record_n(v, 1); }
  /// Folds n samples of value v in O(1) -- how a coalesced bulk run of n
  /// ops records its per-op latency (duration / n) without a loop.
  void record_n(std::uint64_t v, std::uint64_t n);

  /// Index-order bucket add.  Requires equal max_value.  Commutative and
  /// associative: any merge tree over the same samples gives the same
  /// buckets, which is what makes per-thread recording deterministic.
  void merge(const HdrHistogram& other);
  void clear();

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  /// Smallest / largest recorded value (0 when empty).
  [[nodiscard]] std::uint64_t min() const noexcept {
    return count_ > 0 ? min_ : 0;
  }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  /// Samples above max_value(), counted but not bucketed.
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::uint64_t max_value() const noexcept { return max_value_; }
  /// Raw bucket counts (index-aligned with index_of); for tests/merges.
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept {
    return counts_;
  }

  /// Exact-rank quantile: the value at rank ceil(q * count) in the sorted
  /// sample sequence, rounded up to its bucket edge and clamped to
  /// [min(), max()].  q outside [0,1] is clamped; empty histogram -> 0.
  [[nodiscard]] std::uint64_t quantile(double q) const;

  struct Quantiles {
    std::uint64_t p50 = 0;
    std::uint64_t p90 = 0;
    std::uint64_t p99 = 0;
    std::uint64_t p999 = 0;
  };
  [[nodiscard]] Quantiles quantiles() const;

  /// Bucket index of a value (pure; exposed for the property tests).
  [[nodiscard]] static std::size_t index_of(std::uint64_t v) noexcept {
    if (v < kSubBucketCount) return static_cast<std::size_t>(v);
    const unsigned exp =
        static_cast<unsigned>(std::bit_width(v)) - kSubBucketBits - 1;
    return ((static_cast<std::size_t>(exp) + 1) << kSubBucketBits) +
           static_cast<std::size_t>((v >> exp) - kSubBucketCount);
  }
  /// Largest value mapping to bucket `index` (the bucket's upper edge):
  /// value_at(index_of(v)) >= v, and reporting it can only round a
  /// quantile *up* within one bucket width.
  [[nodiscard]] static std::uint64_t value_at(std::size_t index) noexcept {
    if (index < kSubBucketCount) return index;
    const unsigned exp = static_cast<unsigned>(index >> kSubBucketBits) - 1;
    const std::uint64_t sub = index & (kSubBucketCount - 1);
    return ((kSubBucketCount + sub) << exp) + ((1ull << exp) - 1);
  }

 private:
  std::uint64_t max_value_;
  std::vector<std::uint64_t> counts_;  // grown lazily to the touched index
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = UINT64_MAX;
  std::uint64_t max_ = 0;
  std::uint64_t overflow_ = 0;
};

/// "1.234 us"-style rendering for nanosecond durations (dashboard + soak
/// summary).
[[nodiscard]] std::string format_duration_ns(std::uint64_t ns);

}  // namespace hbmvolt::telemetry
