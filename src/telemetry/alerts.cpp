#include "telemetry/alerts.hpp"

#include <algorithm>

#include "common/status.hpp"
#include "common/table.hpp"
#include "telemetry/telemetry.hpp"

namespace hbmvolt::telemetry {

EpochRing::EpochRing(std::size_t capacity) : capacity_(capacity) {
  HBMVOLT_REQUIRE(capacity_ > 0, "epoch ring needs capacity");
  ring_.reserve(capacity_);
}

void EpochRing::push(const EpochSample& sample) {
  if (ring_.size() < capacity_) {
    ring_.push_back(sample);
  } else {
    ring_[next_] = sample;
  }
  next_ = (next_ + 1) % capacity_;
  ++pushed_;
}

std::size_t EpochRing::size() const noexcept { return ring_.size(); }

const EpochSample& EpochRing::recent(std::size_t i) const {
  HBMVOLT_REQUIRE(i < ring_.size(), "epoch ring index out of range");
  // next_ points at the oldest slot once the ring is full; the newest is
  // one behind it either way.
  const std::size_t newest = (next_ + ring_.size() - 1) % ring_.size();
  return ring_[(newest + ring_.size() - i) % ring_.size()];
}

const char* to_string(AlertSignal signal) noexcept {
  switch (signal) {
    case AlertSignal::kCorrectedRate: return "corrected_rate";
    case AlertSignal::kJournalServedRate: return "journal_served_rate";
    case AlertSignal::kReconstructedRate: return "reconstructed_rate";
    case AlertSignal::kShedRate: return "shed_rate";
  }
  return "unknown";
}

AlertEngine::AlertEngine(std::vector<AlertRule> rules,
                         std::size_t ring_capacity)
    : rules_(std::move(rules)),
      firing_(rules_.size(), 0),
      ring_(ring_capacity) {
  for (const AlertRule& rule : rules_) {
    HBMVOLT_REQUIRE(rule.slo > 0.0, "alert rule needs a positive SLO");
    HBMVOLT_REQUIRE(rule.fast_epochs > 0 && rule.slow_epochs > 0,
                    "alert rule windows need at least one epoch");
  }
}

double AlertEngine::burn_rate(const AlertRule& rule,
                              std::size_t window_epochs) const {
  std::uint64_t numerator = 0;
  std::uint64_t denominator = 0;
  const std::size_t window = std::min(window_epochs, ring_.size());
  for (std::size_t i = 0; i < window; ++i) {
    const EpochSample& sample = ring_.recent(i);
    switch (rule.signal) {
      case AlertSignal::kCorrectedRate:
        numerator += sample.corrected;
        denominator += sample.reads;
        break;
      case AlertSignal::kJournalServedRate:
        numerator += sample.journal_served;
        denominator += sample.reads;
        break;
      case AlertSignal::kReconstructedRate:
        numerator += sample.reconstructed;
        denominator += sample.reads;
        break;
      case AlertSignal::kShedRate:
        // Shed fraction of the *offered* tenant load, not of served
        // reads: a plane shedding everything would otherwise divide by
        // the very traffic it refused to serve.
        numerator += sample.shed;
        denominator += sample.admitted + sample.shed;
        break;
    }
  }
  if (denominator == 0) return 0.0;
  const double fraction =
      static_cast<double>(numerator) / static_cast<double>(denominator);
  return fraction / rule.slo;
}

void AlertEngine::tick(const EpochSample& sample) {
  ring_.push(sample);
  Telemetry* tel = Telemetry::active();
  for (std::size_t r = 0; r < rules_.size(); ++r) {
    const AlertRule& rule = rules_[r];
    const double fast = burn_rate(rule, rule.fast_epochs);
    const double slow = burn_rate(rule, rule.slow_epochs);
    const bool now = fast >= rule.fast_burn && slow >= rule.slow_burn;
    if (now == static_cast<bool>(firing_[r])) continue;
    firing_[r] = now ? 1 : 0;
    events_.push_back({rule.name, sample.epoch, now, fast, slow});
    if (tel != nullptr) {
      tel->count("alert." + rule.name + (now ? ".fired" : ".resolved"));
    }
  }
}

bool AlertEngine::firing(std::string_view rule) const {
  for (std::size_t r = 0; r < rules_.size(); ++r) {
    if (rules_[r].name == rule) return firing_[r] != 0;
  }
  return false;
}

std::string AlertEngine::to_jsonl() const {
  std::string out;
  for (const AlertEvent& event : events_) {
    out += "{\"type\":\"alert\",\"rule\":" + json_quoted(event.rule) +
           ",\"epoch\":" + std::to_string(event.epoch) +
           ",\"firing\":" + (event.firing ? "true" : "false") +
           ",\"fast_burn\":" + format_double(event.fast_burn, 3) +
           ",\"slow_burn\":" + format_double(event.slow_burn, 3) + "}\n";
  }
  return out;
}

}  // namespace hbmvolt::telemetry
