#include "telemetry/hdr_histogram.hpp"

#include <cmath>

#include "common/status.hpp"
#include "common/table.hpp"

namespace hbmvolt::telemetry {

HdrHistogram::HdrHistogram(std::uint64_t max_value) : max_value_(max_value) {
  HBMVOLT_REQUIRE(max_value_ >= kSubBucketCount,
                  "hdr histogram max_value below the linear region");
}

void HdrHistogram::record_n(std::uint64_t v, std::uint64_t n) {
  if (n == 0) return;
  count_ += n;
  sum_ += v * n;
  if (v < min_) min_ = v;
  if (v > max_) max_ = v;
  if (v > max_value_) {
    overflow_ += n;
    return;
  }
  const std::size_t index = index_of(v);
  if (index >= counts_.size()) counts_.resize(index + 1, 0);
  counts_[index] += n;
}

void HdrHistogram::merge(const HdrHistogram& other) {
  HBMVOLT_REQUIRE(max_value_ == other.max_value_,
                  "hdr histogram merge requires equal max_value");
  if (other.count_ == 0) return;
  if (other.counts_.size() > counts_.size()) {
    counts_.resize(other.counts_.size(), 0);
  }
  for (std::size_t i = 0; i < other.counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  overflow_ += other.overflow_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

void HdrHistogram::clear() {
  counts_.clear();
  count_ = 0;
  sum_ = 0;
  min_ = UINT64_MAX;
  max_ = 0;
  overflow_ = 0;
}

std::uint64_t HdrHistogram::quantile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_)));
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= rank) {
      const std::uint64_t edge = value_at(i);
      return edge < max_ ? edge : max_;
    }
  }
  // Rank lies in the overflow region; the only honest point value there
  // is the observed maximum.
  return max_;
}

HdrHistogram::Quantiles HdrHistogram::quantiles() const {
  return {quantile(0.50), quantile(0.90), quantile(0.99), quantile(0.999)};
}

std::string format_duration_ns(std::uint64_t ns) {
  const double v = static_cast<double>(ns);
  if (ns < 1000) return std::to_string(ns) + " ns";
  if (ns < 1000000) return format_double(v / 1e3, 2) + " us";
  if (ns < 1000000000) return format_double(v / 1e6, 2) + " ms";
  return format_double(v / 1e9, 2) + " s";
}

}  // namespace hbmvolt::telemetry
