#include "telemetry/metrics.hpp"

#include "common/status.hpp"

namespace hbmvolt::telemetry {
namespace {

std::string join_bounds(const std::vector<std::uint64_t>& bounds) {
  std::string out = "[";
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(bounds[i]);
  }
  out += ']';
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  HBMVOLT_REQUIRE(!bounds_.empty(), "histogram needs at least one bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    HBMVOLT_REQUIRE(bounds_[i - 1] < bounds_[i],
                    "histogram bounds must ascend");
  }
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(count);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const double in_bucket = static_cast<double>(buckets[i]);
    if (in_bucket > 0.0 && cumulative + in_bucket >= rank) {
      if (i >= bounds.size()) {
        // Overflow bucket: no upper edge to interpolate toward.
        return static_cast<double>(bounds.back());
      }
      const double lower = i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
      const double upper = static_cast<double>(bounds[i]);
      const double fraction = (rank - cumulative) / in_bucket;
      return lower + fraction * (upper - lower);
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(bounds.back());
}

CounterFamily::CounterFamily(std::string label_key, std::size_t slots)
    : label_key_(std::move(label_key)),
      size_(slots),
      slots_(new Counter[slots]) {
  HBMVOLT_REQUIRE(slots > 0, "counter family needs at least one slot");
}

Counter& CounterFamily::at(std::size_t label) {
  HBMVOLT_REQUIRE(label < size_, "counter family label out of range");
  return slots_[label];
}

GaugeFamily::GaugeFamily(std::string label_key, std::size_t slots)
    : label_key_(std::move(label_key)),
      size_(slots),
      slots_(new Gauge[slots]) {
  HBMVOLT_REQUIRE(slots > 0, "gauge family needs at least one slot");
}

Gauge& GaugeFamily::at(std::size_t label) {
  HBMVOLT_REQUIRE(label < size_, "gauge family label out of range");
  return slots_[label];
}

HdrFamily::HdrFamily(std::string label_key, std::size_t slots,
                     std::uint64_t max_value)
    : label_key_(std::move(label_key)), max_value_(max_value) {
  HBMVOLT_REQUIRE(slots > 0, "hdr family needs at least one slot");
  slots_.reserve(slots);
  for (std::size_t i = 0; i < slots; ++i) slots_.emplace_back(max_value);
}

void HdrFamily::merge_into(std::size_t label, const HdrHistogram& local) {
  HBMVOLT_REQUIRE(label < slots_.size(), "hdr family label out of range");
  std::lock_guard<std::mutex> lock(mutex_);
  slots_[label].merge(local);
}

HdrHistogram HdrFamily::slot(std::size_t label) const {
  HBMVOLT_REQUIRE(label < slots_.size(), "hdr family label out of range");
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_[label];
}

HdrHistogram HdrFamily::merged() const {
  std::lock_guard<std::mutex> lock(mutex_);
  HdrHistogram out(max_value_);
  for (const HdrHistogram& slot : slots_) out.merge(slot);
  return out;
}

std::string family_slot_name(std::string_view name, std::string_view label_key,
                             std::size_t label) {
  std::string out(name);
  out += '{';
  out += label_key;
  out += '=';
  out += std::to_string(label);
  out += '}';
  return out;
}

std::vector<std::uint64_t> MetricRegistry::default_bounds() {
  return {1, 10, 100, 1000, 10000, 100000, 1000000, 10000000};
}

Counter& MetricRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricRegistry::histogram(std::string_view name) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = histograms_.find(name);
    if (it != histograms_.end()) return *it->second;
  }
  return histogram(name, default_bounds());
}

Histogram& MetricRegistry::histogram(std::string_view name,
                                     std::vector<std::uint64_t> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    if (it->second->bounds() != bounds) {
      const std::string what =
          "histogram '" + std::string(name) +
          "' re-registered with different bounds: existing " +
          join_bounds(it->second->bounds()) + " vs requested " +
          join_bounds(bounds);
      HBMVOLT_REQUIRE(false, what.c_str());
    }
    return *it->second;
  }
  it = histograms_
           .emplace(std::string(name),
                    std::make_unique<Histogram>(std::move(bounds)))
           .first;
  return *it->second;
}

CounterFamily& MetricRegistry::counter_family(std::string_view name,
                                              std::string_view label_key,
                                              std::size_t slots) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counter_families_.find(name);
  if (it != counter_families_.end()) {
    HBMVOLT_REQUIRE(
        it->second->label_key() == label_key && it->second->size() == slots,
        "counter family re-registered with a different label key or slots");
    return *it->second;
  }
  it = counter_families_
           .emplace(std::string(name), std::make_unique<CounterFamily>(
                                           std::string(label_key), slots))
           .first;
  return *it->second;
}

GaugeFamily& MetricRegistry::gauge_family(std::string_view name,
                                          std::string_view label_key,
                                          std::size_t slots) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauge_families_.find(name);
  if (it != gauge_families_.end()) {
    HBMVOLT_REQUIRE(
        it->second->label_key() == label_key && it->second->size() == slots,
        "gauge family re-registered with a different label key or slots");
    return *it->second;
  }
  it = gauge_families_
           .emplace(std::string(name), std::make_unique<GaugeFamily>(
                                           std::string(label_key), slots))
           .first;
  return *it->second;
}

HdrFamily& MetricRegistry::hdr_family(std::string_view name,
                                      std::string_view label_key,
                                      std::size_t slots,
                                      std::uint64_t max_value) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = hdr_families_.find(name);
  if (it != hdr_families_.end()) {
    HBMVOLT_REQUIRE(it->second->label_key() == label_key &&
                        it->second->size() == slots &&
                        it->second->max_value() == max_value,
                    "hdr family re-registered with a different shape");
    return *it->second;
  }
  it = hdr_families_
           .emplace(std::string(name),
                    std::make_unique<HdrFamily>(std::string(label_key), slots,
                                                max_value))
           .first;
  return *it->second;
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricRegistry::counter_values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

std::vector<GaugeSnapshot> MetricRegistry::gauge_values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<GaugeSnapshot> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.push_back({name, gauge->value(), gauge->max()});
  }
  return out;
}

std::vector<HistogramSnapshot> MetricRegistry::histogram_values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<HistogramSnapshot> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.push_back({name, histogram->bounds(), histogram->bucket_counts(),
                   histogram->count(), histogram->sum()});
  }
  return out;
}

std::vector<CounterFamilySnapshot> MetricRegistry::counter_family_values()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CounterFamilySnapshot> out;
  out.reserve(counter_families_.size());
  for (const auto& [name, family] : counter_families_) {
    CounterFamilySnapshot snapshot;
    snapshot.name = name;
    snapshot.label_key = family->label_key();
    snapshot.values.resize(family->size());
    for (std::size_t i = 0; i < family->size(); ++i) {
      snapshot.values[i] = family->at(i).value();
      snapshot.total += snapshot.values[i];
    }
    out.push_back(std::move(snapshot));
  }
  return out;
}

std::vector<GaugeFamilySnapshot> MetricRegistry::gauge_family_values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<GaugeFamilySnapshot> out;
  out.reserve(gauge_families_.size());
  for (const auto& [name, family] : gauge_families_) {
    GaugeFamilySnapshot snapshot;
    snapshot.name = name;
    snapshot.label_key = family->label_key();
    for (std::size_t i = 0; i < family->size(); ++i) {
      const Gauge& slot = family->at(i);
      if (!slot.touched()) continue;
      snapshot.slots.emplace_back(
          i, GaugeSnapshot{"", slot.value(), slot.max()});
    }
    out.push_back(std::move(snapshot));
  }
  return out;
}

namespace {

HdrSnapshot snapshot_of(const HdrHistogram& h) {
  return {h.count(), h.sum(), h.min(), h.max(), h.overflow(), h.quantiles()};
}

}  // namespace

std::vector<HdrFamilySnapshot> MetricRegistry::hdr_family_values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<HdrFamilySnapshot> out;
  out.reserve(hdr_families_.size());
  for (const auto& [name, family] : hdr_families_) {
    HdrFamilySnapshot snapshot;
    snapshot.name = name;
    snapshot.label_key = family->label_key();
    HdrHistogram merged(family->max_value());
    for (std::size_t i = 0; i < family->size(); ++i) {
      const HdrHistogram slot = family->slot(i);
      if (slot.count() > 0) snapshot.slots.emplace_back(i, snapshot_of(slot));
      merged.merge(slot);
    }
    snapshot.merged = snapshot_of(merged);
    out.push_back(std::move(snapshot));
  }
  return out;
}

}  // namespace hbmvolt::telemetry
