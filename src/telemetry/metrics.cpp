#include "telemetry/metrics.hpp"

#include "common/status.hpp"

namespace hbmvolt::telemetry {

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  HBMVOLT_REQUIRE(!bounds_.empty(), "histogram needs at least one bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    HBMVOLT_REQUIRE(bounds_[i - 1] < bounds_[i],
                    "histogram bounds must ascend");
  }
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

std::vector<std::uint64_t> MetricRegistry::default_bounds() {
  return {1, 10, 100, 1000, 10000, 100000, 1000000, 10000000};
}

Counter& MetricRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricRegistry::histogram(std::string_view name,
                                     std::vector<std::uint64_t> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricRegistry::counter_values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

std::vector<GaugeSnapshot> MetricRegistry::gauge_values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<GaugeSnapshot> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.push_back({name, gauge->value(), gauge->max()});
  }
  return out;
}

std::vector<HistogramSnapshot> MetricRegistry::histogram_values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<HistogramSnapshot> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.push_back({name, histogram->bounds(), histogram->bucket_counts(),
                   histogram->count(), histogram->sum()});
  }
  return out;
}

}  // namespace hbmvolt::telemetry
