#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>

#include "common/table.hpp"

namespace hbmvolt::telemetry {
namespace {

/// The installed-and-enabled instance.  Relaxed is sufficient: installs
/// happen-before the work they scope (thread-pool task handoff provides
/// the ordering), and a stale null only means an event is dropped at the
/// install boundary, never a torn read.
std::atomic<Telemetry*> g_active{nullptr};

/// Per-thread track hint (worker index + label), independent of any
/// particular Telemetry instance so pool workers label themselves once.
struct TrackHint {
  int index = -1;  // -1 = unassigned
  std::string label;
};
thread_local TrackHint t_hint;

/// Fallback indices for threads that never called set_thread_track; kept
/// far above real worker indices so they sort after them.
std::atomic<int> g_anonymous_index{1000};

/// Cache of the calling thread's track in the most recent instance it
/// recorded into (instances are long-lived, so thrash is not a concern).
/// Keyed on (address, instance id): a destroyed instance's address can be
/// reused by the next one (stack-allocated campaigns back to back), so the
/// address alone would hit on a dangling track pointer.
struct TrackCache {
  const Telemetry* owner = nullptr;
  std::uint64_t owner_id = 0;
  void* track = nullptr;
};
thread_local TrackCache t_track_cache;

/// Monotonic instance ids for the cache key above.
std::atomic<std::uint64_t> g_instance_id{1};

void json_escape(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
}

std::string format_ms(std::uint64_t ns) {
  return format_double(static_cast<double>(ns) / 1e6, 4);
}

}  // namespace

std::string json_quoted(std::string_view s) {
  std::string out = "\"";
  json_escape(out, s);
  out += '"';
  return out;
}

Telemetry::Telemetry(TelemetryConfig config, Clock* clock)
    : config_(config),
      clock_(clock != nullptr ? clock : &steady_clock_),
      epoch_ns_(clock_->now_ns()),
      id_(g_instance_id.fetch_add(1, std::memory_order_relaxed)) {}

Telemetry::~Telemetry() {
  // Installing scopes must unwind before the instance dies; if one did
  // not (programming error), fail closed rather than dangle.
  Telemetry* self = this;
  g_active.compare_exchange_strong(self, nullptr);
}

Telemetry* Telemetry::active() noexcept {
  return g_active.load(std::memory_order_relaxed);
}

void Telemetry::set_thread_track(int index, std::string label) {
  t_hint.index = index;
  t_hint.label = std::move(label);
  // The hint names the *thread*, not a recorded track: drop any cached
  // track so the next span re-resolves under the new identity.
  t_track_cache = {};
}

Telemetry::ThreadTrack& Telemetry::track() {
  if (t_track_cache.owner == this && t_track_cache.owner_id == id_) {
    return *static_cast<ThreadTrack*>(t_track_cache.track);
  }
  const std::thread::id self = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(tracks_mutex_);
  for (auto& existing : tracks_) {
    if (existing.thread == self) {
      t_track_cache = {this, id_, &existing};
      return existing;
    }
  }
  if (t_hint.index < 0) {
    t_hint.index = g_anonymous_index.fetch_add(1, std::memory_order_relaxed);
    t_hint.label = "thread " + std::to_string(t_hint.index);
  }
  tracks_.push_back(ThreadTrack{self, t_hint.index, t_hint.label, 0, {}});
  t_track_cache = {this, id_, &tracks_.back()};
  return tracks_.back();
}

std::vector<const Telemetry::ThreadTrack*> Telemetry::sorted_tracks() const {
  std::lock_guard<std::mutex> lock(tracks_mutex_);
  std::vector<const ThreadTrack*> sorted;
  sorted.reserve(tracks_.size());
  for (const auto& track : tracks_) sorted.push_back(&track);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const ThreadTrack* a, const ThreadTrack* b) {
                     return a->index < b->index;
                   });
  return sorted;
}

std::vector<SpanStat> Telemetry::span_stats() const {
  // Merge in worker-index order (sorted_tracks), then emit in name order:
  // both orders are schedule-independent, so the aggregate is
  // deterministic whenever the recorded durations are.
  std::map<std::string, SpanStat> by_name;
  for (const ThreadTrack* track : sorted_tracks()) {
    for (const SpanEvent& span : track->spans) {
      SpanStat& stat = by_name[span.name];
      stat.name = span.name;
      ++stat.count;
      stat.total_ns += span.dur_ns;
    }
  }
  std::vector<SpanStat> out;
  out.reserve(by_name.size());
  for (auto& [name, stat] : by_name) out.push_back(std::move(stat));
  return out;
}

std::string Telemetry::summary() const {
  std::string out = "Telemetry summary\n";

  const auto stats = span_stats();
  if (!stats.empty()) {
    AsciiTable spans;
    spans.set_header({"span", "count", "total ms", "mean ms"});
    for (const SpanStat& stat : stats) {
      spans.add_row({stat.name, std::to_string(stat.count),
                     format_ms(stat.total_ns),
                     format_ms(stat.count > 0 ? stat.total_ns / stat.count
                                              : 0)});
    }
    out += spans.to_string();
  }

  AsciiTable metrics;
  metrics.set_header({"metric", "kind", "value"});
  for (const auto& [name, value] : metrics_.counter_values()) {
    metrics.add_row({name, "counter", std::to_string(value)});
  }
  for (const auto& gauge : metrics_.gauge_values()) {
    metrics.add_row({gauge.name, "gauge",
                     std::to_string(gauge.value) + " (max " +
                         std::to_string(gauge.max) + ")"});
  }
  for (const auto& histogram : metrics_.histogram_values()) {
    metrics.add_row({histogram.name, "histogram",
                     "n=" + std::to_string(histogram.count) +
                         " sum=" + std::to_string(histogram.sum) +
                         " p50=" + format_double(histogram.quantile(0.50), 1) +
                         " p90=" + format_double(histogram.quantile(0.90), 1) +
                         " p99=" + format_double(histogram.quantile(0.99), 1) +
                         " p999=" +
                         format_double(histogram.quantile(0.999), 1)});
  }
  // Families: one row per live slot plus a bare-name total/merged row, so
  // the un-labeled name keeps meaning what it always did.
  for (const auto& family : metrics_.counter_family_values()) {
    for (std::size_t i = 0; i < family.values.size(); ++i) {
      if (family.values[i] == 0) continue;
      metrics.add_row({family_slot_name(family.name, family.label_key, i),
                       "counter", std::to_string(family.values[i])});
    }
    metrics.add_row({family.name, "counter", std::to_string(family.total)});
  }
  for (const auto& family : metrics_.gauge_family_values()) {
    for (const auto& [label, slot] : family.slots) {
      metrics.add_row({family_slot_name(family.name, family.label_key, label),
                       "gauge",
                       std::to_string(slot.value) + " (max " +
                           std::to_string(slot.max) + ")"});
    }
  }
  const auto hdr_row = [](const HdrSnapshot& snapshot) {
    return "n=" + std::to_string(snapshot.count) +
           " p50=" + std::to_string(snapshot.q.p50) +
           " p90=" + std::to_string(snapshot.q.p90) +
           " p99=" + std::to_string(snapshot.q.p99) +
           " p999=" + std::to_string(snapshot.q.p999) +
           " max=" + std::to_string(snapshot.max);
  };
  for (const auto& family : metrics_.hdr_family_values()) {
    for (const auto& [label, snapshot] : family.slots) {
      metrics.add_row({family_slot_name(family.name, family.label_key, label),
                       "hdr", hdr_row(snapshot)});
    }
    metrics.add_row({family.name, "hdr", hdr_row(family.merged)});
  }
  if (metrics.rows() > 0) out += metrics.to_string();
  return out;
}

std::string Telemetry::to_jsonl() const {
  std::string out;
  for (const ThreadTrack* track : sorted_tracks()) {
    for (const SpanEvent& span : track->spans) {
      out += "{\"type\":\"span\",\"name\":" + json_quoted(span.name) +
             ",\"tid\":" + std::to_string(track->index) +
             ",\"thread\":" + json_quoted(track->label) +
             ",\"start_ns\":" + std::to_string(span.start_ns) +
             ",\"dur_ns\":" + std::to_string(span.dur_ns) +
             ",\"depth\":" + std::to_string(span.depth) +
             ",\"detail\":" + std::to_string(span.detail) + "}\n";
    }
  }
  for (const auto& [name, value] : metrics_.counter_values()) {
    out += "{\"type\":\"counter\",\"name\":" + json_quoted(name) +
           ",\"value\":" + std::to_string(value) + "}\n";
  }
  for (const auto& gauge : metrics_.gauge_values()) {
    out += "{\"type\":\"gauge\",\"name\":" + json_quoted(gauge.name) +
           ",\"value\":" + std::to_string(gauge.value) +
           ",\"max\":" + std::to_string(gauge.max) + "}\n";
  }
  for (const auto& histogram : metrics_.histogram_values()) {
    out += "{\"type\":\"histogram\",\"name\":" + json_quoted(histogram.name) +
           ",\"bounds\":[";
    for (std::size_t i = 0; i < histogram.bounds.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(histogram.bounds[i]);
    }
    out += "],\"counts\":[";
    for (std::size_t i = 0; i < histogram.buckets.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(histogram.buckets[i]);
    }
    out += "],\"count\":" + std::to_string(histogram.count) +
           ",\"sum\":" + std::to_string(histogram.sum) +
           ",\"p50\":" + format_double(histogram.quantile(0.50), 3) +
           ",\"p90\":" + format_double(histogram.quantile(0.90), 3) +
           ",\"p99\":" + format_double(histogram.quantile(0.99), 3) +
           ",\"p999\":" + format_double(histogram.quantile(0.999), 3) +
           "}\n";
  }
  for (const auto& family : metrics_.counter_family_values()) {
    for (std::size_t i = 0; i < family.values.size(); ++i) {
      if (family.values[i] == 0) continue;
      out += "{\"type\":\"counter\",\"name\":" +
             json_quoted(family_slot_name(family.name, family.label_key, i)) +
             ",\"value\":" + std::to_string(family.values[i]) + "}\n";
    }
    out += "{\"type\":\"counter\",\"name\":" + json_quoted(family.name) +
           ",\"value\":" + std::to_string(family.total) + "}\n";
  }
  for (const auto& family : metrics_.gauge_family_values()) {
    for (const auto& [label, slot] : family.slots) {
      out += "{\"type\":\"gauge\",\"name\":" +
             json_quoted(
                 family_slot_name(family.name, family.label_key, label)) +
             ",\"value\":" + std::to_string(slot.value) +
             ",\"max\":" + std::to_string(slot.max) + "}\n";
    }
  }
  const auto hdr_line = [](const std::string& name,
                           const HdrSnapshot& snapshot) {
    return "{\"type\":\"hdr\",\"name\":" + json_quoted(name) +
           ",\"count\":" + std::to_string(snapshot.count) +
           ",\"sum\":" + std::to_string(snapshot.sum) +
           ",\"min\":" + std::to_string(snapshot.min) +
           ",\"max\":" + std::to_string(snapshot.max) +
           ",\"overflow\":" + std::to_string(snapshot.overflow) +
           ",\"p50\":" + std::to_string(snapshot.q.p50) +
           ",\"p90\":" + std::to_string(snapshot.q.p90) +
           ",\"p99\":" + std::to_string(snapshot.q.p99) +
           ",\"p999\":" + std::to_string(snapshot.q.p999) + "}\n";
  };
  for (const auto& family : metrics_.hdr_family_values()) {
    for (const auto& [label, snapshot] : family.slots) {
      out += hdr_line(family_slot_name(family.name, family.label_key, label),
                      snapshot);
    }
    out += hdr_line(family.name, family.merged);
  }
  return out;
}

std::string Telemetry::to_chrome_trace() const {
  // Trace-event format: "M" metadata rows name the process and the
  // per-worker tracks, "X" complete events carry the spans.  Timestamps
  // are microseconds (the format's unit) with nanosecond decimals.
  const auto us = [](std::uint64_t ns) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.3f",
                  static_cast<double>(ns) / 1e3);
    return std::string(buffer);
  };

  std::string out = "{\"traceEvents\":[\n";
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
         "\"args\":{\"name\":\"hbmvolt\"}}";
  for (const ThreadTrack* track : sorted_tracks()) {
    out += ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
           std::to_string(track->index) +
           ",\"args\":{\"name\":" + json_quoted(track->label) + "}}";
    out += ",\n{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,"
           "\"tid\":" +
           std::to_string(track->index) +
           ",\"args\":{\"sort_index\":" + std::to_string(track->index) +
           "}}";
  }
  for (const ThreadTrack* track : sorted_tracks()) {
    for (const SpanEvent& span : track->spans) {
      out += ",\n{\"name\":" + json_quoted(span.name) +
             ",\"ph\":\"X\",\"pid\":1,\"tid\":" +
             std::to_string(track->index) + ",\"ts\":" + us(span.start_ns) +
             ",\"dur\":" + us(span.dur_ns) +
             ",\"args\":{\"detail\":" + std::to_string(span.detail) + "}}";
    }
  }
  out += "\n]}\n";
  return out;
}

ScopedTelemetry::ScopedTelemetry(Telemetry& telemetry)
    : previous_(g_active.load(std::memory_order_relaxed)) {
  // Default the installing thread to track 0 ("main") unless it already
  // chose an identity.
  if (t_hint.index < 0) Telemetry::set_thread_track(0, "main");
  g_active.store(telemetry.config_.enabled ? &telemetry : nullptr,
                 std::memory_order_relaxed);
}

ScopedTelemetry::~ScopedTelemetry() {
  g_active.store(previous_, std::memory_order_relaxed);
}

Span::Span(const char* name, std::int64_t detail)
    : telemetry_(Telemetry::active()), name_(name), detail_(detail) {
  if (telemetry_ == nullptr) return;
  depth_ = telemetry_->track().depth++;
  start_ns_ = telemetry_->clock().now_ns();
}

Span::~Span() {
  if (telemetry_ == nullptr) return;
  const std::uint64_t end = telemetry_->clock().now_ns();
  Telemetry::ThreadTrack& track = telemetry_->track();
  --track.depth;
  track.spans.push_back(SpanEvent{
      name_, start_ns_ - telemetry_->epoch_ns_,
      end >= start_ns_ ? end - start_ns_ : 0, depth_, detail_});
}

}  // namespace hbmvolt::telemetry
