// Telemetry: the instrumentation layer of the sweep pipeline.
//
// A Telemetry instance owns a MetricRegistry plus per-thread span tracks,
// and is made visible to instrumentation sites by installing it as the
// process-wide active instance (ScopedTelemetry).  Design rules:
//
//  * Disabled costs one branch.  Telemetry::active() is a single relaxed
//    atomic load; it returns nullptr unless an instance is installed AND
//    enabled, so every call site reduces to `if (active()) ...`.  The
//    perf CI gate (BM_TelemetryOverhead) enforces that a disabled-registry
//    sweep stays within 3% of the no-telemetry baseline.
//  * Telemetry never alters results.  No RNG, no shared mutable state
//    with the model: golden artifacts are byte-identical with telemetry
//    on or off (tests/telemetry_test.cpp proves it at threads 1 and 4).
//  * Deterministic aggregation.  Spans land in per-thread tracks (only
//    the owning thread appends -- no locks on the recording path); export
//    and summary merge tracks in worker-index order, like PR 1's fault
//    merge, and metrics iterate in name order.
//
// Sinks: summary() (human table via common/table), to_jsonl() (one JSON
// object per span/metric), to_chrome_trace() (chrome://tracing / Perfetto,
// one track per worker thread).  See docs/observability.md.

#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "telemetry/clock.hpp"
#include "telemetry/metrics.hpp"

namespace hbmvolt::telemetry {

struct TelemetryConfig {
  /// Master switch: when false the instance can be installed but
  /// Telemetry::active() stays null, so instrumentation costs one branch.
  bool enabled = true;
};

/// JSON string literal (quotes + escapes) -- shared by the sinks here and
/// hand-assembled JSON elsewhere (the campaign's manifest.json).
[[nodiscard]] std::string json_quoted(std::string_view s);

/// One closed span, as recorded on the thread that ran it.
struct SpanEvent {
  std::string name;
  std::uint64_t start_ns = 0;  // relative to the instance's creation
  std::uint64_t dur_ns = 0;
  std::uint32_t depth = 0;  // nesting level within the thread
  std::int64_t detail = 0;  // free-form scalar (e.g. millivolts, port)
};

/// Aggregate over all tracks, for summary() and the run manifest.
struct SpanStat {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryConfig config = {}, Clock* clock = nullptr);
  ~Telemetry();

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// The installed-and-enabled instance, or nullptr.  One relaxed atomic
  /// load: this is the whole disabled-path cost at every call site.
  [[nodiscard]] static Telemetry* active() noexcept;

  /// Labels the calling thread's track (worker index + display name) for
  /// every Telemetry instance it subsequently records into.  ThreadPool
  /// workers call this with index i+1; the installing thread gets (0,
  /// "main") by default.  Tracks merge in index order at export.
  static void set_thread_track(int index, std::string label);

  [[nodiscard]] const TelemetryConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] MetricRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const MetricRegistry& metrics() const noexcept {
    return metrics_;
  }
  [[nodiscard]] Clock& clock() noexcept { return *clock_; }

  // Convenience recorders (callers hold the active() pointer).
  void count(std::string_view name, std::uint64_t n = 1) {
    metrics_.counter(name).add(n);
  }
  void gauge_set(std::string_view name, std::int64_t v) {
    metrics_.gauge(name).set(v);
  }
  void observe(std::string_view name, std::uint64_t value) {
    metrics_.histogram(name).observe(value);
  }

  // ---- Sinks.  Call after all recording threads have joined. ----

  /// Human-readable table: span aggregates + every metric.
  [[nodiscard]] std::string summary() const;
  /// JSONL event stream: one {"type":"span"|"counter"|"gauge"|"histogram"
  /// |"hdr"} object per line; family slots appear as "name{key=label}"
  /// entries next to a bare-name total/merged line.
  [[nodiscard]] std::string to_jsonl() const;
  /// Chrome trace-event JSON ("X" complete events, one tid per worker
  /// track); open in chrome://tracing or https://ui.perfetto.dev.
  [[nodiscard]] std::string to_chrome_trace() const;
  /// Span aggregates merged across tracks in worker-index order.
  [[nodiscard]] std::vector<SpanStat> span_stats() const;

 private:
  friend class Span;
  friend class ScopedTelemetry;

  struct ThreadTrack {
    std::thread::id thread;
    int index = 0;
    std::string label;
    std::uint32_t depth = 0;           // live nesting on the owning thread
    std::vector<SpanEvent> spans;      // appended only by the owning thread
  };

  /// The calling thread's track in this instance (created on first use;
  /// cached in a thread_local so the hot path is pointer-compare cheap).
  ThreadTrack& track();
  /// Tracks sorted by (index, creation order); locks tracks_mutex_.
  [[nodiscard]] std::vector<const ThreadTrack*> sorted_tracks() const;

  TelemetryConfig config_;
  SteadyClock steady_clock_;
  Clock* clock_;  // never null; defaults to &steady_clock_
  std::uint64_t epoch_ns_;
  std::uint64_t id_;  // process-unique; keys the per-thread track cache
  MetricRegistry metrics_;

  mutable std::mutex tracks_mutex_;
  std::deque<ThreadTrack> tracks_;  // deque: stable addresses
};

/// Installs a Telemetry instance as the process-wide active one for the
/// scope (restores the previous instance on destruction).  A disabled
/// instance installs as nullptr, so call sites see no telemetry at all.
class ScopedTelemetry {
 public:
  explicit ScopedTelemetry(Telemetry& telemetry);
  ~ScopedTelemetry();

  ScopedTelemetry(const ScopedTelemetry&) = delete;
  ScopedTelemetry& operator=(const ScopedTelemetry&) = delete;

 private:
  Telemetry* previous_;
};

/// RAII scoped timer.  Construction snapshots the active instance; if
/// telemetry is disabled the whole object is a no-op (one branch).  Spans
/// nest per thread and close correctly during exception unwind.  A Span
/// must not outlive the Telemetry instance it started under.
class Span {
 public:
  explicit Span(const char* name, std::int64_t detail = 0);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Telemetry* telemetry_;  // null when telemetry was inactive at entry
  const char* name_;
  std::int64_t detail_;
  std::uint64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
};

}  // namespace hbmvolt::telemetry
