// Deterministic multi-window burn-rate alerting over per-epoch samples.
//
// SRE-style burn-rate logic: a signal with an SLO (e.g. "at most 1% of
// read words need correction") burns its error budget at rate 1.0 when
// the observed rate exactly equals the SLO.  A rule watches the same
// signal over a FAST window (catches sharp spikes quickly) and a SLOW
// window (filters one-epoch blips) and fires only when BOTH windows
// exceed their thresholds; it resolves as soon as either recovers.  This
// is the standard way to page before a budget is gone without paging on
// noise -- here it fronts the degradation ladder, flagging channels whose
// corrected or journal-served rates are trending toward the budget the
// ladder acts on.
//
// Everything is keyed to epoch ticks, never wall time: samples are
// aggregated at the fleet's serial barrier in PC index order, so the
// event stream is a pure function of the sample sequence and is
// byte-identical at any thread count (tests/observability_test.cpp).
// Alert counters are emitted into the active Telemetry instance when one
// is installed; the engine itself runs either way and never touches the
// memory model, so fingerprints cannot depend on it.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hbmvolt::telemetry {

/// One epoch's worth of fleet-wide deltas, gathered at the barrier.
struct EpochSample {
  std::uint64_t epoch = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t corrected = 0;       // data + check-word corrections
  std::uint64_t uncorrectable = 0;   // reads blocked as kDataLoss
  std::uint64_t journal_served = 0;  // reads served from the host journal
  std::uint64_t reconstructed = 0;   // reads served by stripe reconstruction
  std::uint64_t parked = 0;          // total parked beats at the barrier
  double budget_burn = 0.0;          // max per-PC window burn fraction / SLO
  // Request-plane deltas (zero unless a tenant plane drives the fleet,
  // src/serve/plane.hpp): offered load admitted past the token buckets,
  // and requests shed by admission, brownout, hot-shard throttling,
  // queue aging, or deadline overrun.
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
};

/// Fixed-capacity ring of the most recent samples (the windowed
/// time-series the dashboard and burn-rate windows read from).
class EpochRing {
 public:
  explicit EpochRing(std::size_t capacity);

  void push(const EpochSample& sample);
  /// Samples currently retained (<= capacity).
  [[nodiscard]] std::size_t size() const noexcept;
  /// Samples ever pushed.
  [[nodiscard]] std::uint64_t pushed() const noexcept { return pushed_; }
  /// Newest-first access: recent(0) is the latest sample.
  [[nodiscard]] const EpochSample& recent(std::size_t i) const;

 private:
  std::size_t capacity_;
  std::vector<EpochSample> ring_;
  std::size_t next_ = 0;
  std::uint64_t pushed_ = 0;
};

/// What a rule's windows measure.  The device-side signals are fractions
/// of served reads; kShedRate is the fraction of *offered* tenant load
/// (admitted + shed) the request plane refused.
enum class AlertSignal : unsigned {
  kCorrectedRate = 0,      // corrected words / read words
  kJournalServedRate = 1,  // journal-served reads / reads
  kReconstructedRate = 2,  // stripe-reconstructed reads / reads
  kShedRate = 3,           // shed requests / (admitted + shed)
};

[[nodiscard]] const char* to_string(AlertSignal signal) noexcept;

struct AlertRule {
  std::string name;
  AlertSignal signal = AlertSignal::kCorrectedRate;
  /// Budgeted fraction: burn rate = observed fraction / slo.
  double slo = 0.01;
  /// Fire when fast-window burn >= fast_burn AND slow-window burn >=
  /// slow_burn.  Windows are epoch counts (clamped to available samples).
  std::size_t fast_epochs = 1;
  double fast_burn = 4.0;
  std::size_t slow_epochs = 4;
  double slow_burn = 1.0;
};

/// Edge-triggered state change (fired or resolved), with the window burns
/// that caused it.
struct AlertEvent {
  std::string rule;
  std::uint64_t epoch = 0;
  bool firing = false;
  double fast_burn = 0.0;
  double slow_burn = 0.0;
};

class AlertEngine {
 public:
  explicit AlertEngine(std::vector<AlertRule> rules,
                       std::size_t ring_capacity = 256);

  /// Feed one barrier sample; evaluates every rule.  Emits
  /// `alert.<rule>.fired` / `alert.<rule>.resolved` counters into the
  /// active Telemetry instance (if any) on edges.
  void tick(const EpochSample& sample);

  [[nodiscard]] const std::vector<AlertRule>& rules() const noexcept {
    return rules_;
  }
  [[nodiscard]] const std::vector<AlertEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] bool firing(std::string_view rule) const;
  [[nodiscard]] const EpochRing& ring() const noexcept { return ring_; }

  /// Burn rate of a rule's signal over the newest `window_epochs` samples
  /// (public so the dashboard can show live burns between edges).
  [[nodiscard]] double burn_rate(const AlertRule& rule,
                                 std::size_t window_epochs) const;

  /// One JSON object per event, newest last -- the soak's alerts.jsonl.
  [[nodiscard]] std::string to_jsonl() const;

 private:
  std::vector<AlertRule> rules_;
  std::vector<char> firing_;  // parallel to rules_
  EpochRing ring_;
  std::vector<AlertEvent> events_;
};

}  // namespace hbmvolt::telemetry
