// Monotonic time source for the telemetry layer.  Every timestamp the
// instrumentation records flows through this interface so tests can swap
// in a ManualClock and assert exact durations (tests/telemetry_test.cpp);
// production uses SteadyClock (std::chrono::steady_clock).

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace hbmvolt::telemetry {

class Clock {
 public:
  virtual ~Clock() = default;
  /// Monotonic nanoseconds since an arbitrary epoch.
  [[nodiscard]] virtual std::uint64_t now_ns() = 0;
};

class SteadyClock final : public Clock {
 public:
  [[nodiscard]] std::uint64_t now_ns() override {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

/// Deterministic clock for tests: time only moves when advanced, and may
/// be advanced from any thread.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(std::uint64_t start_ns = 0) : now_(start_ns) {}

  [[nodiscard]] std::uint64_t now_ns() override {
    return now_.load(std::memory_order_relaxed);
  }
  void advance_ns(std::uint64_t delta) noexcept {
    now_.fetch_add(delta, std::memory_order_relaxed);
  }
  void set_ns(std::uint64_t t) noexcept {
    now_.store(t, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> now_;
};

}  // namespace hbmvolt::telemetry
