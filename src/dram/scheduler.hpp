// Per-pseudo-channel DRAM command scheduler.
//
// Models one PC's memory controller at command granularity: open-page
// policy, per-bank timing gates (dram/bank.hpp), a shared data bus with
// read/write turnaround penalties, ACT-to-ACT rank constraints (tRRD),
// and periodic all-bank refresh.  Bank preparation (PRE/ACT) is scheduled
// eagerly -- as soon as the bank's own gates allow -- so row switches in
// one bank hide under other banks' bursts, as in an FR-FCFS controller
// with in-order data return.
//
// Used by bench/ext_timing_validation to check that the flat
// "efficiency" factor of the AXI-level traffic generators is consistent
// with actual DRAM timing for the paper's sequential workloads.

#pragma once

#include <cstdint>
#include <vector>

#include "dram/bank.hpp"
#include "dram/timing.hpp"
#include "hbm/geometry.hpp"

namespace hbmvolt::dram {

struct AccessStats {
  Cycles cycles = 0;        // makespan of the processed stream
  std::uint64_t requests = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;
  std::uint64_t activations = 0;
  std::uint64_t refreshes = 0;
  std::uint64_t turnarounds = 0;

  /// Achieved bandwidth for 32 B requests.
  [[nodiscard]] double bandwidth_gbs(const DramTimings& t) const noexcept {
    if (cycles == 0) return 0.0;
    const double seconds = static_cast<double>(cycles) / t.clock_hz;
    return static_cast<double>(requests) * 32.0 / seconds / 1e9;
  }
  /// Fraction of cycles the data bus was transferring.
  [[nodiscard]] double bus_utilization(const DramTimings& t) const noexcept {
    if (cycles == 0) return 0.0;
    return static_cast<double>(requests * t.burst) /
           static_cast<double>(cycles);
  }
};

class PcScheduler {
 public:
  PcScheduler(const hbm::HbmGeometry& geometry, DramTimings timings);

  /// Processes one 32 B request (a beat read or write), in order.
  void access(bool is_write, std::uint64_t beat);

  /// Completes outstanding work and returns the final statistics.
  [[nodiscard]] AccessStats finish();

  [[nodiscard]] const AccessStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const DramTimings& timings() const noexcept {
    return timings_;
  }

 private:
  void refresh_if_due();

  hbm::HbmGeometry geometry_;
  DramTimings timings_;
  std::vector<Bank> banks_;

  Cycles now_ = 0;        // issue time of the most recent data command
  Cycles bus_ready_ = 0;  // data bus free from this cycle
  Cycles rrd_gate_ = 0;   // earliest next ACT anywhere in the rank
  Cycles next_refresh_;
  bool last_was_write_ = false;
  bool any_data_yet_ = false;
  AccessStats stats_;
};

}  // namespace hbmvolt::dram
