#include "dram/scheduler.hpp"

#include <algorithm>

namespace hbmvolt::dram {

PcScheduler::PcScheduler(const hbm::HbmGeometry& geometry, DramTimings timings)
    : geometry_(geometry),
      timings_(timings),
      next_refresh_(timings.t_refi) {
  HBMVOLT_REQUIRE(geometry_.validate().is_ok(), "invalid geometry");
  banks_.assign(geometry_.banks_per_pc, Bank(timings_));
}

void PcScheduler::refresh_if_due() {
  while (now_ >= next_refresh_) {
    // All banks must be precharged, then REF occupies the rank for tRFC.
    Cycles ref_start = std::max(now_, next_refresh_);
    for (auto& bank : banks_) {
      if (bank.active()) {
        const Cycles pre_at =
            std::max(ref_start, bank.earliest_issue(Command::kPrecharge));
        ref_start = std::max(ref_start, bank.issue(Command::kPrecharge, pre_at));
      }
    }
    for (auto& bank : banks_) {
      ref_start = std::max(ref_start, bank.earliest_issue(Command::kRefresh));
    }
    for (auto& bank : banks_) {
      (void)bank.issue(Command::kRefresh, ref_start);
    }
    bus_ready_ = std::max(bus_ready_, ref_start + timings_.t_rfc);
    now_ = std::max(now_, ref_start + timings_.t_rfc);
    next_refresh_ += timings_.t_refi;
    ++stats_.refreshes;
  }
}

void PcScheduler::access(bool is_write, std::uint64_t beat) {
  refresh_if_due();

  const auto loc = hbm::decompose_beat(geometry_, beat);
  Bank& bank = banks_[loc.bank];

  // Bank preparation, scheduled eagerly against the bank's own gates
  // (command-bus bandwidth is not the bottleneck at PC scope).
  if (!bank.active() || *bank.open_row() != loc.row) {
    if (bank.active()) {
      const Cycles pre_at = bank.earliest_issue(Command::kPrecharge);
      (void)bank.issue(Command::kPrecharge, pre_at);
    }
    const Cycles act_at =
        std::max(bank.earliest_issue(Command::kActivate), rrd_gate_);
    (void)bank.issue(Command::kActivate, act_at, loc.row);
    rrd_gate_ = act_at + timings_.t_rrd;
    ++stats_.row_misses;
    ++stats_.activations;
  } else {
    ++stats_.row_hits;
    bank.note_row_hit();
  }

  // Data command: bank ready, bus free, turnaround honored.
  Cycles start =
      std::max(bank.earliest_issue(is_write ? Command::kWrite : Command::kRead),
               bus_ready_);
  if (any_data_yet_ && is_write != last_was_write_) {
    start += last_was_write_ ? timings_.t_wtr : timings_.t_rtw;
    ++stats_.turnarounds;
  }
  const Cycles done = bank.issue(
      is_write ? Command::kWrite : Command::kRead, start, loc.row);
  bus_ready_ = done;
  now_ = start;
  last_was_write_ = is_write;
  any_data_yet_ = true;
  ++stats_.requests;
}

AccessStats PcScheduler::finish() {
  stats_.cycles = std::max(now_, bus_ready_);
  return stats_;
}

}  // namespace hbmvolt::dram
