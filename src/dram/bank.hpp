// One DRAM bank's state machine and timing bookkeeping.
//
// A bank is Idle (no open row) or Active (one open row).  Commands are
// legal only when the bank is in the right state AND the current cycle
// has passed every relevant timing gate; issuing a command advances the
// gates.  This is the standard earliest-issue-time formulation used by
// cycle-level DRAM simulators.

#pragma once

#include <cstdint>
#include <optional>

#include "common/status.hpp"
#include "dram/timing.hpp"

namespace hbmvolt::dram {

enum class Command : std::uint8_t {
  kActivate,
  kRead,
  kWrite,
  kPrecharge,
  kRefresh,  // all-bank refresh, issued at rank scope but gated per bank
};

class Bank {
 public:
  explicit Bank(const DramTimings& timings) : timings_(&timings) {}

  [[nodiscard]] bool active() const noexcept { return open_row_.has_value(); }
  [[nodiscard]] std::optional<std::uint64_t> open_row() const noexcept {
    return open_row_;
  }

  /// Earliest cycle at which `command` may legally issue (for kActivate /
  /// kRead / kWrite the caller must also respect bus/rank constraints).
  [[nodiscard]] Cycles earliest_issue(Command command) const;

  /// Whether `command` is legal *ever* in the current state (e.g. kRead
  /// requires an open row).
  [[nodiscard]] bool legal(Command command) const noexcept;

  /// Issues the command at cycle `now` (must be >= earliest_issue and
  /// legal); updates state and timing gates.  Returns the cycle at which
  /// the command's data/effect completes (end of burst for RD/WR, bank
  /// ready time for ACT/PRE/REF).
  Cycles issue(Command command, Cycles now, std::uint64_t row = 0);

  // Statistics.
  [[nodiscard]] std::uint64_t activations() const noexcept { return acts_; }
  [[nodiscard]] std::uint64_t row_hits() const noexcept { return row_hits_; }

  void note_row_hit() noexcept { ++row_hits_; }

 private:
  const DramTimings* timings_;
  std::optional<std::uint64_t> open_row_;

  Cycles last_act_ = 0;
  bool ever_activated_ = false;
  Cycles ready_act_ = 0;   // earliest next ACT (tRP/tRC after PRE/ACT)
  Cycles ready_rdwr_ = 0;  // earliest next RD/WR (tRCD after ACT, tCCD)
  Cycles ready_pre_ = 0;   // earliest next PRE (tRAS, tWR, tRTP)
  std::uint64_t acts_ = 0;
  std::uint64_t row_hits_ = 0;
};

}  // namespace hbmvolt::dram
