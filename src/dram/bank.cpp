#include "dram/bank.hpp"

#include <algorithm>

namespace hbmvolt::dram {

bool Bank::legal(Command command) const noexcept {
  switch (command) {
    case Command::kActivate:
      return !active();
    case Command::kRead:
    case Command::kWrite:
    case Command::kPrecharge:
      return active();
    case Command::kRefresh:
      return !active();  // banks must be precharged before REF
  }
  return false;
}

Cycles Bank::earliest_issue(Command command) const {
  switch (command) {
    case Command::kActivate:
    case Command::kRefresh:
      return ready_act_;
    case Command::kRead:
    case Command::kWrite:
      return ready_rdwr_;
    case Command::kPrecharge:
      return ready_pre_;
  }
  return 0;
}

Cycles Bank::issue(Command command, Cycles now, std::uint64_t row) {
  HBMVOLT_REQUIRE(legal(command), "illegal DRAM command for bank state");
  HBMVOLT_REQUIRE(now >= earliest_issue(command),
                  "DRAM timing constraint violated");
  const DramTimings& t = *timings_;
  switch (command) {
    case Command::kActivate:
      open_row_ = row;
      last_act_ = now;
      ever_activated_ = true;
      ++acts_;
      ready_rdwr_ = now + t.t_rcd;
      ready_pre_ = now + t.t_ras;
      ready_act_ = now + t.t_rc;  // same-bank ACT-to-ACT
      return now + t.t_rcd;
    case Command::kRead:
      ready_rdwr_ = now + t.t_ccd;
      ready_pre_ = std::max(ready_pre_, now + t.t_rtp);
      return now + t.burst;
    case Command::kWrite:
      ready_rdwr_ = now + t.t_ccd;
      ready_pre_ = std::max(ready_pre_, now + t.burst + t.t_wr);
      return now + t.burst;
    case Command::kPrecharge:
      open_row_.reset();
      ready_act_ = std::max(ready_act_, now + t.t_rp);
      return now + t.t_rp;
    case Command::kRefresh:
      ready_act_ = std::max(ready_act_, now + t.t_rfc);
      return now + t.t_rfc;
  }
  return now;
}

}  // namespace hbmvolt::dram
