// HBM2 DRAM timing parameters, in memory-clock cycles.
//
// The paper's platform runs the HBM arrays at 900 MHz (1800 MT/s DDR,
// §II-B).  One pseudo-channel column access moves 32 B (64-bit PC x burst
// length 4) in 2 clock cycles.  Values below are representative HBM2
// numbers at a 1.11 ns clock, rounded up -- close to JESD235 class
// timings; they are configuration, not silicon truth, and the tests
// exercise the *constraints*, not the exact figures.

#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace hbmvolt::dram {

/// Memory-clock cycle count.
using Cycles = std::uint64_t;

struct DramTimings {
  double clock_hz = 900e6;

  Cycles burst = 2;       // BL4 on a 64-bit PC: 2 clocks per column access
  Cycles t_rcd = 13;      // ACT -> RD/WR            (~14 ns)
  Cycles t_rp = 13;       // PRE -> ACT              (~14 ns)
  Cycles t_ras = 30;      // ACT -> PRE              (~33 ns)
  Cycles t_rc = 43;       // ACT -> ACT same bank    (~47 ns)
  Cycles t_ccd = 2;       // column-to-column (same as burst for BL4)
  Cycles t_rrd = 4;       // ACT -> ACT different bank
  Cycles t_wr = 14;       // end of write burst -> PRE (write recovery)
  Cycles t_wtr = 7;       // write burst -> read command
  Cycles t_rtw = 6;       // read burst -> write command (bus turnaround)
  Cycles t_rtp = 4;       // read -> PRE
  Cycles t_rfc = 234;     // refresh cycle time       (~260 ns)
  Cycles t_refi = 3510;   // refresh interval         (~3.9 us)

  [[nodiscard]] Seconds cycle_time() const noexcept {
    return Seconds{1.0 / clock_hz};
  }
  /// Peak column-access bandwidth of one PC (32 B per `burst` cycles).
  [[nodiscard]] GigabytesPerSecond peak_bandwidth() const noexcept {
    return GigabytesPerSecond{32.0 * clock_hz /
                              static_cast<double>(burst) / 1e9};
  }
};

}  // namespace hbmvolt::dram
