// Behavioral model of the Intersil/Renesas ISL68301 PMBus voltage
// regulator that supplies VCC_HBM on the Xilinx VCU128 board, plus the
// host-side driver the experiments use to command it.
//
// Modelled behavior:
//  * VOUT_COMMAND / VOUT_MODE in LINEAR16 with a configurable exponent.
//  * OPERATION on/off and margin-high/low states.
//  * VOUT_MAX clamp, OV/UV warn and fault limits with STATUS_VOUT /
//    STATUS_BYTE / STATUS_WORD reporting.  A UV *fault* latches the output
//    off until CLEAR_FAULTS -- so host code must first lower
//    VOUT_UV_FAULT_LIMIT before undervolting, exactly as on real hardware.
//  * Load-line droop (Vout sags with load current).
//  * Telemetry: READ_VOUT / READ_IOUT / READ_POUT / READ_TEMPERATURE_1,
//    with currents and powers reported in LINEAR11.
//
// The regulator is wired to the rest of the system through two hooks: a
// LoadModel (asks the downstream rail how much current it draws at a given
// output voltage) and VoutListeners (notified when the output changes, so
// HBM stacks can react).

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/retry.hpp"
#include "common/status.hpp"
#include "common/units.hpp"
#include "pmbus/commands.hpp"
#include "pmbus/device.hpp"

namespace hbmvolt::pmbus {
class Bus;
}

namespace hbmvolt::power {

class Isl68301 : public pmbus::SlaveDevice {
 public:
  struct Config {
    std::uint8_t address = 0x60;
    int vout_exponent = -12;           // VOUT_MODE: 1/4096 V resolution
    Millivolts vout_default{1200};     // VCC_HBM nominal
    Millivolts vout_max{1500};
    Millivolts ov_fault_limit{1320};   // +10% of nominal
    Millivolts ov_warn_limit{1260};
    Millivolts uv_warn_limit{1140};    // -5% of nominal
    Millivolts uv_fault_limit{1080};   // -10%: must be lowered to undervolt
    Millivolts margin_high{1260};
    Millivolts margin_low{1140};
    Ohms droop{0.0002};                // load-line resistance
    Celsius temperature{35.0};         // paper: 35 +/- 1 degC
  };

  explicit Isl68301(Config config);

  /// Downstream current draw as a function of the present output voltage.
  using LoadModel = std::function<Amps(Millivolts)>;
  void set_load_model(LoadModel model) { load_model_ = std::move(model); }

  /// Notification that the regulated output changed.
  using VoutListener = std::function<void(Millivolts)>;
  void add_vout_listener(VoutListener listener) {
    listeners_.push_back(std::move(listener));
  }

  /// Regulated output (0 mV when off or latched off by a fault), before
  /// load-line droop.
  [[nodiscard]] Millivolts vout_nominal() const noexcept;
  /// Output at the sense point including droop under the present load.
  [[nodiscard]] Millivolts vout_sensed() const;
  /// Present load current per the load model.
  [[nodiscard]] Amps iout() const;

  [[nodiscard]] bool output_enabled() const noexcept { return output_on_; }
  [[nodiscard]] bool uv_fault_latched() const noexcept { return uv_faulted_; }

  /// Power-on-reset: restores defaults (used by Board::power_cycle).
  void reset();

  // SlaveDevice interface.
  [[nodiscard]] std::uint8_t address() const noexcept override {
    return config_.address;
  }
  Result<std::uint8_t> read_byte(std::uint8_t command) override;
  Status write_byte(std::uint8_t command, std::uint8_t value) override;
  Result<std::uint16_t> read_word(std::uint8_t command) override;
  Status write_word(std::uint8_t command, std::uint16_t value) override;
  Result<std::vector<std::uint8_t>> read_block(std::uint8_t command) override;
  Status send_byte(std::uint8_t command) override;

 private:
  void update_output();
  void notify();
  [[nodiscard]] Millivolts commanded_target() const noexcept;

  Config config_;
  LoadModel load_model_;
  std::vector<VoutListener> listeners_;

  Millivolts vout_command_{1200};
  Millivolts vout_max_{1500};
  Millivolts ov_fault_limit_{1320};
  Millivolts ov_warn_limit_{1260};
  Millivolts uv_warn_limit_{1140};
  Millivolts uv_fault_limit_{1080};
  Millivolts margin_high_{1260};
  Millivolts margin_low_{1140};
  std::uint8_t operation_ = pmbus::kOperationOn;
  std::uint8_t status_vout_ = 0;
  bool output_on_ = true;
  bool uv_faulted_ = false;
  Millivolts last_notified_{-1};
};

/// Host-side convenience driver: speaks to the regulator over a Bus the
/// way the paper's "customized interface on the host" does.
///
/// Every transaction runs under a bounded RetryPolicy, and setpoint writes
/// verify by reading the register back: a NACKed or PEC-corrupted write
/// retries until the regulator provably holds the commanded value.  That
/// is what makes a voltage sweep robust against transient bus faults --
/// a silently-dropped VOUT_COMMAND would otherwise corrupt every
/// measurement taken at the "new" voltage.
class Isl68301Driver {
 public:
  Isl68301Driver(pmbus::Bus& bus, std::uint8_t address);

  /// Retry knobs for all driver transactions (default: 4 attempts).
  void set_retry_policy(RetryPolicy policy) noexcept { retry_ = policy; }
  [[nodiscard]] const RetryPolicy& retry_policy() const noexcept {
    return retry_;
  }

  /// Reads VOUT_MODE and caches the exponent.  Call before set_vout.
  Status probe();

  /// Commands a new output voltage via VOUT_COMMAND, then reads the
  /// register back and retries until it matches.
  Status set_vout(Millivolts target);

  /// Lowers the UV fault limit so deep undervolting does not latch the
  /// output off.  The experiments call this once during setup.
  Status set_uv_fault_limit(Millivolts limit);

  Result<Millivolts> read_vout();
  Result<Amps> read_iout();
  Result<Watts> read_pout();
  Result<Celsius> read_temperature();
  Result<std::uint8_t> read_status_vout();
  Status clear_faults();

 private:
  /// One write-then-verify retry unit for a LINEAR16 register.
  Status write_verified(pmbus::Command command, std::uint16_t mantissa,
                        const char* op);

  pmbus::Bus& bus_;
  std::uint8_t address_;
  RetryPolicy retry_;
  int vout_exponent_ = -12;
  bool probed_ = false;
};

}  // namespace hbmvolt::power
