// PMBus (SMBus) bus model.
//
// The bus routes master transactions to registered slave devices by 7-bit
// address and models the wire framing including Packet Error Checking:
// each transaction is serialized to its byte frame, the PEC CRC is
// computed over it, and an optional error-injection hook can corrupt bytes
// in flight so tests can verify that PEC catches the corruption -- the
// same end-to-end path a real host driver exercises.

#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "pmbus/device.hpp"

namespace hbmvolt::pmbus {

class Bus {
 public:
  /// Registers a slave.  The bus does not take ownership; the device must
  /// outlive the bus.  Fails if the address is already taken.
  Status attach(SlaveDevice* device);

  /// Removes the slave at `address` if present.
  void detach(std::uint8_t address);

  /// Enables PEC framing for all subsequent transactions.
  void set_pec_enabled(bool enabled) noexcept { pec_enabled_ = enabled; }
  [[nodiscard]] bool pec_enabled() const noexcept { return pec_enabled_; }

  /// Error-injection hook: called with the serialized frame before delivery;
  /// may mutate it (e.g. flip a bit).  Used by tests and fault-injection
  /// benches.  Pass nullptr to clear.
  using WireCorruptor = std::function<void(std::vector<std::uint8_t>&)>;
  void set_wire_corruptor(WireCorruptor corruptor) {
    corruptor_ = std::move(corruptor);
  }

  /// Fault-injection hook, consulted once at the start of every master
  /// transaction, *before* the address phase.  A non-OK return aborts the
  /// transaction with that status and no device is touched -- kNotFound
  /// models an address NACK, kUnavailable an unresponsive device.  This
  /// is what makes injected faults figure-neutral under retry: the slave
  /// never sees the failed attempt, so no device state (or RNG stream)
  /// advances.  Pass nullptr to clear.  See src/chaos/.
  using TransactionHook =
      std::function<Status(std::uint8_t address, std::uint8_t command)>;
  void set_transaction_hook(TransactionHook hook) {
    hook_ = std::move(hook);
  }

  // Master-side transactions.  kNotFound if no device ACKs the address.
  Status write_byte(std::uint8_t address, std::uint8_t command,
                    std::uint8_t value);
  Status write_word(std::uint8_t address, std::uint8_t command,
                    std::uint16_t value);
  Status send_byte(std::uint8_t address, std::uint8_t command);
  Result<std::uint8_t> read_byte(std::uint8_t address, std::uint8_t command);
  Result<std::uint16_t> read_word(std::uint8_t address, std::uint8_t command);

  /// Number of completed transactions (for test observability).
  [[nodiscard]] std::uint64_t transaction_count() const noexcept {
    return transactions_;
  }
  /// Number of transactions rejected due to PEC mismatch.
  [[nodiscard]] std::uint64_t pec_error_count() const noexcept {
    return pec_errors_;
  }
  /// Number of transactions that ended in an address NACK (kNotFound) --
  /// real (no device at the address) or injected.  Deliberately separate
  /// from pec_error_count(): a NACK means the transfer never happened,
  /// while a PEC error (kDataLoss) means it happened and arrived corrupt,
  /// and retry policy may treat the two differently.
  [[nodiscard]] std::uint64_t nack_count() const noexcept { return nacks_; }

 private:
  /// Pre-address-phase gate: runs the injection hook and accounts NACKs.
  Status begin_transaction(std::uint8_t address, std::uint8_t command);

  Result<SlaveDevice*> find(std::uint8_t address);

  /// Frames `payload` bytes, applies corruption, and validates PEC.
  /// Returns the (possibly corrupted) payload on success.
  Result<std::vector<std::uint8_t>> transfer(std::vector<std::uint8_t> frame);

  std::unordered_map<std::uint8_t, SlaveDevice*> devices_;
  bool pec_enabled_ = true;
  WireCorruptor corruptor_;
  TransactionHook hook_;
  std::uint64_t transactions_ = 0;
  std::uint64_t pec_errors_ = 0;
  std::uint64_t nacks_ = 0;
};

}  // namespace hbmvolt::pmbus
