// PMBus numeric data formats (PMBus spec part II, §7 and §8).
//
// LINEAR11: 16-bit word = 5-bit two's-complement exponent N (bits 15..11)
//           and 11-bit two's-complement mantissa Y (bits 10..0);
//           value = Y * 2^N.  Used for currents, powers, temperatures.
// LINEAR16 ("ULINEAR16"): 16-bit unsigned mantissa with the exponent
//           supplied out-of-band by VOUT_MODE (5-bit two's complement).
//           Used for output voltages.

#pragma once

#include <cstdint>

#include "common/status.hpp"

namespace hbmvolt::pmbus {

/// Encodes `value` into LINEAR11, choosing the exponent that maximizes
/// mantissa precision.  Values whose magnitude exceeds the format's range
/// (|Y| <= 1023, N in [-16, 15]) are clamped to the representable extreme.
[[nodiscard]] std::uint16_t linear11_encode(double value) noexcept;

/// Decodes a LINEAR11 word.
[[nodiscard]] double linear11_decode(std::uint16_t word) noexcept;

/// Encodes `value` into a LINEAR16 mantissa for the given VOUT_MODE
/// exponent (two's-complement 5-bit, typical regulators use -12 .. -8).
/// Returns an error if the value does not fit in 16 unsigned bits.
[[nodiscard]] Result<std::uint16_t> linear16_encode(double value,
                                                    int exponent);

/// Decodes a LINEAR16 mantissa with the given exponent.
[[nodiscard]] double linear16_decode(std::uint16_t mantissa,
                                     int exponent) noexcept;

/// Extracts the 5-bit two's-complement exponent from a VOUT_MODE byte
/// (mode bits 7..5 must be 000 = linear; otherwise an error).
[[nodiscard]] Result<int> vout_mode_exponent(std::uint8_t vout_mode);

/// Builds a linear-format VOUT_MODE byte from an exponent in [-16, 15].
[[nodiscard]] std::uint8_t make_vout_mode(int exponent);

}  // namespace hbmvolt::pmbus
