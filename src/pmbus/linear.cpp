#include "pmbus/linear.hpp"

#include <cmath>

namespace hbmvolt::pmbus {
namespace {

constexpr int kMantissaMax = 1023;    // 11-bit two's complement positive max
constexpr int kMantissaMin = -1024;
constexpr int kExponentMax = 15;      // 5-bit two's complement
constexpr int kExponentMin = -16;

std::uint16_t pack_linear11(int mantissa, int exponent) noexcept {
  const auto y = static_cast<std::uint16_t>(mantissa & 0x7FF);
  const auto n = static_cast<std::uint16_t>(exponent & 0x1F);
  return static_cast<std::uint16_t>((n << 11) | y);
}

}  // namespace

std::uint16_t linear11_encode(double value) noexcept {
  if (std::isnan(value)) return pack_linear11(0, 0);
  // Pick the smallest exponent at which the mantissa fits: this maximizes
  // resolution.  Walk up from kExponentMin.
  for (int exponent = kExponentMin; exponent <= kExponentMax; ++exponent) {
    const double scaled = value / std::ldexp(1.0, exponent);
    const double rounded = std::nearbyint(scaled);
    if (rounded >= kMantissaMin && rounded <= kMantissaMax) {
      return pack_linear11(static_cast<int>(rounded), exponent);
    }
  }
  // Out of range: clamp to the extreme of the format.
  return value > 0 ? pack_linear11(kMantissaMax, kExponentMax)
                   : pack_linear11(kMantissaMin, kExponentMax);
}

double linear11_decode(std::uint16_t word) noexcept {
  int mantissa = word & 0x7FF;
  if (mantissa & 0x400) mantissa -= 0x800;  // sign-extend 11 bits
  int exponent = (word >> 11) & 0x1F;
  if (exponent & 0x10) exponent -= 0x20;    // sign-extend 5 bits
  return static_cast<double>(mantissa) * std::ldexp(1.0, exponent);
}

Result<std::uint16_t> linear16_encode(double value, int exponent) {
  if (value < 0.0) {
    return invalid_argument("LINEAR16 encodes unsigned values only");
  }
  const double scaled = std::nearbyint(value / std::ldexp(1.0, exponent));
  if (scaled > 65535.0) {
    return out_of_range("value does not fit LINEAR16 mantissa");
  }
  return static_cast<std::uint16_t>(scaled);
}

double linear16_decode(std::uint16_t mantissa, int exponent) noexcept {
  return static_cast<double>(mantissa) * std::ldexp(1.0, exponent);
}

Result<int> vout_mode_exponent(std::uint8_t vout_mode) {
  if ((vout_mode & 0xE0) != 0) {
    return invalid_argument("VOUT_MODE is not linear format");
  }
  int exponent = vout_mode & 0x1F;
  if (exponent & 0x10) exponent -= 0x20;
  return exponent;
}

std::uint8_t make_vout_mode(int exponent) {
  HBMVOLT_REQUIRE(exponent >= kExponentMin && exponent <= kExponentMax,
                  "VOUT_MODE exponent out of 5-bit range");
  return static_cast<std::uint8_t>(exponent & 0x1F);
}

}  // namespace hbmvolt::pmbus
