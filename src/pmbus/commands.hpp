// PMBus command codes (PMBus spec part II, appendix I) -- the subset the
// ISL68301 model and the host driver use.

#pragma once

#include <cstdint>

namespace hbmvolt::pmbus {

enum class Command : std::uint8_t {
  kOperation = 0x01,
  kOnOffConfig = 0x02,
  kClearFaults = 0x03,
  kWriteProtect = 0x10,
  kVoutMode = 0x20,
  kVoutCommand = 0x21,
  kVoutMax = 0x24,
  kVoutMarginHigh = 0x25,
  kVoutMarginLow = 0x26,
  kVoutTransitionRate = 0x27,
  kVoutOvFaultLimit = 0x40,
  kVoutOvWarnLimit = 0x42,
  kVoutUvWarnLimit = 0x43,
  kVoutUvFaultLimit = 0x44,
  kIoutOcFaultLimit = 0x46,
  kIoutOcWarnLimit = 0x4A,
  kOtFaultLimit = 0x4F,
  kOtWarnLimit = 0x51,
  kStatusByte = 0x78,
  kStatusWord = 0x79,
  kStatusVout = 0x7A,
  kStatusIout = 0x7B,
  kStatusTemperature = 0x7D,
  kReadVin = 0x88,
  kReadVout = 0x8B,
  kReadIout = 0x8C,
  kReadTemperature1 = 0x8D,
  kReadPout = 0x96,
  kReadPin = 0x97,
  kPmbusRevision = 0x98,
  kMfrId = 0x99,
  kMfrModel = 0x9A,
};

// OPERATION register bits (PMBus part II §12.1).
inline constexpr std::uint8_t kOperationOn = 0x80;
inline constexpr std::uint8_t kOperationMarginLow = 0x18;
inline constexpr std::uint8_t kOperationMarginHigh = 0x28;

// STATUS_BYTE bits (PMBus part II §17.1).
inline constexpr std::uint8_t kStatusByteBusy = 0x80;
inline constexpr std::uint8_t kStatusByteOff = 0x40;
inline constexpr std::uint8_t kStatusByteVoutOv = 0x20;
inline constexpr std::uint8_t kStatusByteIoutOc = 0x10;
inline constexpr std::uint8_t kStatusByteVinUv = 0x08;
inline constexpr std::uint8_t kStatusByteTemperature = 0x04;
inline constexpr std::uint8_t kStatusByteCml = 0x02;
inline constexpr std::uint8_t kStatusByteOther = 0x01;

// STATUS_VOUT bits (PMBus part II §17.4).
inline constexpr std::uint8_t kStatusVoutOvFault = 0x80;
inline constexpr std::uint8_t kStatusVoutOvWarn = 0x40;
inline constexpr std::uint8_t kStatusVoutUvWarn = 0x20;
inline constexpr std::uint8_t kStatusVoutUvFault = 0x10;

}  // namespace hbmvolt::pmbus
