#include "pmbus/pec.hpp"

namespace hbmvolt::pmbus {

std::uint8_t pec_crc8_step(std::uint8_t crc, std::uint8_t byte) noexcept {
  crc ^= byte;
  for (int bit = 0; bit < 8; ++bit) {
    crc = (crc & 0x80) ? static_cast<std::uint8_t>((crc << 1) ^ 0x07)
                       : static_cast<std::uint8_t>(crc << 1);
  }
  return crc;
}

std::uint8_t pec_crc8(std::span<const std::uint8_t> bytes) noexcept {
  std::uint8_t crc = 0;
  for (const auto b : bytes) crc = pec_crc8_step(crc, b);
  return crc;
}

}  // namespace hbmvolt::pmbus
