#include "pmbus/isl68301.hpp"

#include <algorithm>

#include "pmbus/bus.hpp"
#include "pmbus/linear.hpp"

namespace hbmvolt::power {

using pmbus::Command;

Isl68301::Isl68301(Config config) : config_(config) { reset(); }

void Isl68301::reset() {
  vout_command_ = config_.vout_default;
  vout_max_ = config_.vout_max;
  ov_fault_limit_ = config_.ov_fault_limit;
  ov_warn_limit_ = config_.ov_warn_limit;
  uv_warn_limit_ = config_.uv_warn_limit;
  uv_fault_limit_ = config_.uv_fault_limit;
  margin_high_ = config_.margin_high;
  margin_low_ = config_.margin_low;
  operation_ = pmbus::kOperationOn;
  status_vout_ = 0;
  output_on_ = true;
  uv_faulted_ = false;
  last_notified_ = Millivolts{-1};
  update_output();
}

Millivolts Isl68301::commanded_target() const noexcept {
  const std::uint8_t margin = operation_ & 0x3C;
  if (margin == pmbus::kOperationMarginHigh) return margin_high_;
  if (margin == pmbus::kOperationMarginLow) return margin_low_;
  return vout_command_;
}

Millivolts Isl68301::vout_nominal() const noexcept {
  if (!output_on_ || uv_faulted_ || !(operation_ & pmbus::kOperationOn)) {
    return Millivolts{0};
  }
  return std::min(commanded_target(), vout_max_);
}

Millivolts Isl68301::vout_sensed() const {
  const Millivolts nominal = vout_nominal();
  if (nominal.value <= 0 || !load_model_) return nominal;
  const Amps i = load_model_(nominal);
  const double droop_mv = i.value * config_.droop.value * 1000.0;
  return Millivolts{nominal.value - static_cast<int>(droop_mv + 0.5)};
}

Amps Isl68301::iout() const {
  const Millivolts nominal = vout_nominal();
  if (nominal.value <= 0 || !load_model_) return Amps{0.0};
  return load_model_(nominal);
}

void Isl68301::update_output() {
  const Millivolts target = vout_nominal();
  // Evaluate protection thresholds against the regulation target.
  if (target.value > 0) {
    if (target >= ov_fault_limit_) {
      status_vout_ |= pmbus::kStatusVoutOvFault;
    } else if (target >= ov_warn_limit_) {
      status_vout_ |= pmbus::kStatusVoutOvWarn;
    }
    if (target < uv_fault_limit_) {
      // UV fault latches the output off until CLEAR_FAULTS.
      status_vout_ |= pmbus::kStatusVoutUvFault;
      uv_faulted_ = true;
    } else if (target < uv_warn_limit_) {
      status_vout_ |= pmbus::kStatusVoutUvWarn;
    }
  }
  notify();
}

void Isl68301::notify() {
  const Millivolts v = vout_nominal();
  if (v == last_notified_) return;
  last_notified_ = v;
  for (const auto& listener : listeners_) listener(v);
}

Result<std::uint8_t> Isl68301::read_byte(std::uint8_t command) {
  switch (static_cast<Command>(command)) {
    case Command::kOperation:
      return operation_;
    case Command::kVoutMode:
      return pmbus::make_vout_mode(config_.vout_exponent);
    case Command::kStatusByte: {
      std::uint8_t status = 0;
      if (vout_nominal().value == 0) status |= pmbus::kStatusByteOff;
      if (status_vout_ & pmbus::kStatusVoutOvFault) {
        status |= pmbus::kStatusByteVoutOv;
      }
      if (status_vout_ != 0) status |= pmbus::kStatusByteOther;
      return status;
    }
    case Command::kStatusVout:
      return status_vout_;
    case Command::kPmbusRevision:
      return std::uint8_t{0x22};  // PMBus rev 1.2 / 1.2
    default:
      return not_found("ISL68301: unsupported read_byte command");
  }
}

Status Isl68301::write_byte(std::uint8_t command, std::uint8_t value) {
  switch (static_cast<Command>(command)) {
    case Command::kOperation:
      operation_ = value;
      output_on_ = (value & pmbus::kOperationOn) != 0;
      update_output();
      return Status::ok();
    case Command::kOnOffConfig:
      return Status::ok();  // accepted; we model "respond to OPERATION"
    default:
      return not_found("ISL68301: unsupported write_byte command");
  }
}

Result<std::uint16_t> Isl68301::read_word(std::uint8_t command) {
  const int exp = config_.vout_exponent;
  auto vout_word = [exp](Millivolts v) -> Result<std::uint16_t> {
    return pmbus::linear16_encode(v.volts(), exp);
  };
  switch (static_cast<Command>(command)) {
    case Command::kVoutCommand:
      return vout_word(vout_command_);
    case Command::kVoutMax:
      return vout_word(vout_max_);
    case Command::kVoutMarginHigh:
      return vout_word(margin_high_);
    case Command::kVoutMarginLow:
      return vout_word(margin_low_);
    case Command::kVoutOvFaultLimit:
      return vout_word(ov_fault_limit_);
    case Command::kVoutOvWarnLimit:
      return vout_word(ov_warn_limit_);
    case Command::kVoutUvWarnLimit:
      return vout_word(uv_warn_limit_);
    case Command::kVoutUvFaultLimit:
      return vout_word(uv_fault_limit_);
    case Command::kReadVout:
      return vout_word(vout_sensed());
    case Command::kReadIout:
      return pmbus::linear11_encode(iout().value);
    case Command::kReadPout: {
      const Watts p = power_from(vout_sensed(), iout());
      return pmbus::linear11_encode(p.value);
    }
    case Command::kReadTemperature1:
      return pmbus::linear11_encode(config_.temperature.value);
    case Command::kStatusWord: {
      auto low = read_byte(static_cast<std::uint8_t>(Command::kStatusByte));
      std::uint16_t word = low.is_ok() ? low.value() : 0;
      if (status_vout_ != 0) word |= 0x8000;  // VOUT summary bit
      return word;
    }
    default:
      return not_found("ISL68301: unsupported read_word command");
  }
}

Status Isl68301::write_word(std::uint8_t command, std::uint16_t value) {
  const int exp = config_.vout_exponent;
  const auto as_mv = [exp](std::uint16_t mantissa) {
    return from_volts(pmbus::linear16_decode(mantissa, exp));
  };
  switch (static_cast<Command>(command)) {
    case Command::kVoutCommand: {
      const Millivolts target = as_mv(value);
      if (target > vout_max_) {
        return invalid_argument("VOUT_COMMAND above VOUT_MAX");
      }
      vout_command_ = target;
      update_output();
      return Status::ok();
    }
    case Command::kVoutMax:
      vout_max_ = as_mv(value);
      update_output();
      return Status::ok();
    case Command::kVoutMarginHigh:
      margin_high_ = as_mv(value);
      update_output();
      return Status::ok();
    case Command::kVoutMarginLow:
      margin_low_ = as_mv(value);
      update_output();
      return Status::ok();
    case Command::kVoutOvFaultLimit:
      ov_fault_limit_ = as_mv(value);
      update_output();
      return Status::ok();
    case Command::kVoutOvWarnLimit:
      ov_warn_limit_ = as_mv(value);
      update_output();
      return Status::ok();
    case Command::kVoutUvWarnLimit:
      uv_warn_limit_ = as_mv(value);
      update_output();
      return Status::ok();
    case Command::kVoutUvFaultLimit:
      uv_fault_limit_ = as_mv(value);
      update_output();
      return Status::ok();
    default:
      return not_found("ISL68301: unsupported write_word command");
  }
}

Result<std::vector<std::uint8_t>> Isl68301::read_block(std::uint8_t command) {
  switch (static_cast<Command>(command)) {
    case Command::kMfrId:
      return std::vector<std::uint8_t>{'R', 'E', 'N'};
    case Command::kMfrModel:
      return std::vector<std::uint8_t>{'I', 'S', 'L', '6', '8', '3', '0', '1'};
    default:
      return not_found("ISL68301: unsupported read_block command");
  }
}

Status Isl68301::send_byte(std::uint8_t command) {
  if (static_cast<Command>(command) == Command::kClearFaults) {
    status_vout_ = 0;
    uv_faulted_ = false;
    update_output();
    return Status::ok();
  }
  return not_found("ISL68301: unsupported send_byte command");
}

// --------------------------- Isl68301Driver -------------------------------

Isl68301Driver::Isl68301Driver(pmbus::Bus& bus, std::uint8_t address)
    : bus_(bus), address_(address) {}

Status Isl68301Driver::probe() {
  auto mode = retry_result(retry_, "isl68301.probe", [&] {
    return bus_.read_byte(address_,
                          static_cast<std::uint8_t>(Command::kVoutMode));
  });
  if (!mode.is_ok()) return mode.status();
  auto exponent = pmbus::vout_mode_exponent(mode.value());
  if (!exponent.is_ok()) return exponent.status();
  vout_exponent_ = exponent.value();
  probed_ = true;
  return Status::ok();
}

Status Isl68301Driver::write_verified(Command command, std::uint16_t mantissa,
                                      const char* op) {
  // Write + read-back is one retry unit: a transient fault on either frame
  // retries the pair, and success means the regulator provably holds the
  // value.  Read-back uses the same register, not READ_VOUT -- the sensed
  // output includes load-line droop and would never compare equal.
  return retry_status(retry_, op, [&]() -> Status {
    HBMVOLT_RETURN_IF_ERROR(bus_.write_word(
        address_, static_cast<std::uint8_t>(command), mantissa));
    auto echo =
        bus_.read_word(address_, static_cast<std::uint8_t>(command));
    if (!echo.is_ok()) return echo.status();
    if (echo.value() != mantissa) {
      return data_loss("register read-back mismatch after write");
    }
    return Status::ok();
  });
}

Status Isl68301Driver::set_vout(Millivolts target) {
  if (!probed_) HBMVOLT_RETURN_IF_ERROR(probe());
  auto mantissa = pmbus::linear16_encode(target.volts(), vout_exponent_);
  if (!mantissa.is_ok()) return mantissa.status();
  return write_verified(Command::kVoutCommand, mantissa.value(),
                        "isl68301.set_vout");
}

Status Isl68301Driver::set_uv_fault_limit(Millivolts limit) {
  if (!probed_) HBMVOLT_RETURN_IF_ERROR(probe());
  auto mantissa = pmbus::linear16_encode(limit.volts(), vout_exponent_);
  if (!mantissa.is_ok()) return mantissa.status();
  // Keep the warn limit at or above the fault limit so the warn threshold
  // never masks the fault threshold.
  HBMVOLT_RETURN_IF_ERROR(write_verified(Command::kVoutUvWarnLimit,
                                         mantissa.value(),
                                         "isl68301.set_uv_warn_limit"));
  return write_verified(Command::kVoutUvFaultLimit, mantissa.value(),
                        "isl68301.set_uv_fault_limit");
}

Result<Millivolts> Isl68301Driver::read_vout() {
  if (!probed_) HBMVOLT_RETURN_IF_ERROR(probe());
  auto word = retry_result(retry_, "isl68301.read_vout", [&] {
    return bus_.read_word(address_,
                          static_cast<std::uint8_t>(Command::kReadVout));
  });
  if (!word.is_ok()) return word.status();
  return from_volts(pmbus::linear16_decode(word.value(), vout_exponent_));
}

Result<Amps> Isl68301Driver::read_iout() {
  auto word = retry_result(retry_, "isl68301.read_iout", [&] {
    return bus_.read_word(address_,
                          static_cast<std::uint8_t>(Command::kReadIout));
  });
  if (!word.is_ok()) return word.status();
  return Amps{pmbus::linear11_decode(word.value())};
}

Result<Watts> Isl68301Driver::read_pout() {
  auto word = retry_result(retry_, "isl68301.read_pout", [&] {
    return bus_.read_word(address_,
                          static_cast<std::uint8_t>(Command::kReadPout));
  });
  if (!word.is_ok()) return word.status();
  return Watts{pmbus::linear11_decode(word.value())};
}

Result<Celsius> Isl68301Driver::read_temperature() {
  auto word = retry_result(retry_, "isl68301.read_temperature", [&] {
    return bus_.read_word(
        address_, static_cast<std::uint8_t>(Command::kReadTemperature1));
  });
  if (!word.is_ok()) return word.status();
  return Celsius{pmbus::linear11_decode(word.value())};
}

Result<std::uint8_t> Isl68301Driver::read_status_vout() {
  return retry_result(retry_, "isl68301.read_status_vout", [&] {
    return bus_.read_byte(address_,
                          static_cast<std::uint8_t>(Command::kStatusVout));
  });
}

Status Isl68301Driver::clear_faults() {
  return retry_status(retry_, "isl68301.clear_faults", [&] {
    return bus_.send_byte(address_,
                          static_cast<std::uint8_t>(Command::kClearFaults));
  });
}

}  // namespace hbmvolt::power
