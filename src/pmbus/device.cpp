#include "pmbus/device.hpp"

namespace hbmvolt::pmbus {

Result<std::uint8_t> SlaveDevice::read_byte(std::uint8_t) {
  return not_found("command not implemented (read_byte)");
}

Status SlaveDevice::write_byte(std::uint8_t, std::uint8_t) {
  return not_found("command not implemented (write_byte)");
}

Result<std::uint16_t> SlaveDevice::read_word(std::uint8_t) {
  return not_found("command not implemented (read_word)");
}

Status SlaveDevice::write_word(std::uint8_t, std::uint16_t) {
  return not_found("command not implemented (write_word)");
}

Result<std::vector<std::uint8_t>> SlaveDevice::read_block(std::uint8_t) {
  return not_found("command not implemented (read_block)");
}

Status SlaveDevice::send_byte(std::uint8_t) {
  return not_found("command not implemented (send_byte)");
}

}  // namespace hbmvolt::pmbus
