// PMBus/SMBus slave device abstraction.
//
// A device responds to byte/word/block transactions addressed to a command
// code.  Concrete models (ISL68301, INA226) override the handlers; the bus
// handles addressing and PEC framing.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.hpp"

namespace hbmvolt::pmbus {

class SlaveDevice {
 public:
  virtual ~SlaveDevice() = default;

  /// 7-bit bus address the device responds to.
  [[nodiscard]] virtual std::uint8_t address() const noexcept = 0;

  // Default handlers NACK (kNotFound), matching a device that does not
  // implement the command.
  virtual Result<std::uint8_t> read_byte(std::uint8_t command);
  virtual Status write_byte(std::uint8_t command, std::uint8_t value);
  virtual Result<std::uint16_t> read_word(std::uint8_t command);
  virtual Status write_word(std::uint8_t command, std::uint16_t value);
  virtual Result<std::vector<std::uint8_t>> read_block(std::uint8_t command);
  /// Send-byte transaction (command only, no data) -- e.g. CLEAR_FAULTS.
  virtual Status send_byte(std::uint8_t command);
};

}  // namespace hbmvolt::pmbus
