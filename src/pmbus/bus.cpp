#include "pmbus/bus.hpp"

#include <utility>

#include "pmbus/pec.hpp"
#include "telemetry/telemetry.hpp"

namespace hbmvolt::pmbus {

Status Bus::attach(SlaveDevice* device) {
  HBMVOLT_REQUIRE(device != nullptr, "cannot attach null device");
  const auto address = device->address();
  if (devices_.contains(address)) {
    return failed_precondition("bus address already in use");
  }
  devices_.emplace(address, device);
  return Status::ok();
}

void Bus::detach(std::uint8_t address) { devices_.erase(address); }

Status Bus::begin_transaction(std::uint8_t address, std::uint8_t command) {
  if (!hook_) return Status::ok();
  Status injected = hook_(address, command);
  if (injected.is_ok()) return injected;
  if (injected.code() == StatusCode::kNotFound) {
    ++nacks_;
    if (auto* tel = telemetry::Telemetry::active()) {
      tel->count("pmbus.nacks");
    }
  }
  return injected;
}

Result<SlaveDevice*> Bus::find(std::uint8_t address) {
  const auto it = devices_.find(address);
  if (it == devices_.end()) {
    ++nacks_;
    if (auto* tel = telemetry::Telemetry::active()) {
      tel->count("pmbus.nacks");
    }
    return not_found("no device ACKed the address");
  }
  return it->second;
}

Result<std::vector<std::uint8_t>> Bus::transfer(
    std::vector<std::uint8_t> frame) {
  ++transactions_;
  if (auto* tel = telemetry::Telemetry::active()) {
    tel->count("pmbus.transactions");
  }
  if (!pec_enabled_) {
    if (corruptor_) corruptor_(frame);
    return frame;
  }
  frame.push_back(pec_crc8(frame));
  if (corruptor_) corruptor_(frame);
  const std::uint8_t received_pec = frame.back();
  frame.pop_back();
  if (pec_crc8(frame) != received_pec) {
    ++pec_errors_;
    if (auto* tel = telemetry::Telemetry::active()) {
      tel->count("pmbus.pec_errors");
    }
    return data_loss("PEC mismatch on wire");
  }
  return frame;
}

Status Bus::write_byte(std::uint8_t address, std::uint8_t command,
                       std::uint8_t value) {
  HBMVOLT_RETURN_IF_ERROR(begin_transaction(address, command));
  auto device = find(address);
  if (!device.is_ok()) return device.status();
  // Frame: address(W), command, data.
  auto frame = transfer({static_cast<std::uint8_t>(address << 1), command,
                         value});
  if (!frame.is_ok()) return frame.status();
  const auto& bytes = frame.value();
  return device.value()->write_byte(bytes[1], bytes[2]);
}

Status Bus::write_word(std::uint8_t address, std::uint8_t command,
                       std::uint16_t value) {
  HBMVOLT_RETURN_IF_ERROR(begin_transaction(address, command));
  auto device = find(address);
  if (!device.is_ok()) return device.status();
  // Frame: address(W), command, data low, data high (SMBus little-endian).
  auto frame = transfer({static_cast<std::uint8_t>(address << 1), command,
                         static_cast<std::uint8_t>(value & 0xFF),
                         static_cast<std::uint8_t>(value >> 8)});
  if (!frame.is_ok()) return frame.status();
  const auto& bytes = frame.value();
  const auto word = static_cast<std::uint16_t>(bytes[2] | (bytes[3] << 8));
  return device.value()->write_word(bytes[1], word);
}

Status Bus::send_byte(std::uint8_t address, std::uint8_t command) {
  HBMVOLT_RETURN_IF_ERROR(begin_transaction(address, command));
  auto device = find(address);
  if (!device.is_ok()) return device.status();
  auto frame = transfer({static_cast<std::uint8_t>(address << 1), command});
  if (!frame.is_ok()) return frame.status();
  return device.value()->send_byte(frame.value()[1]);
}

Result<std::uint8_t> Bus::read_byte(std::uint8_t address,
                                    std::uint8_t command) {
  HBMVOLT_RETURN_IF_ERROR(begin_transaction(address, command));
  auto device = find(address);
  if (!device.is_ok()) return device.status();
  auto value = device.value()->read_byte(command);
  if (!value.is_ok()) return value.status();
  // Frame: address(W), command, address(R), data.
  auto frame = transfer({static_cast<std::uint8_t>(address << 1), command,
                         static_cast<std::uint8_t>((address << 1) | 1),
                         value.value()});
  if (!frame.is_ok()) return frame.status();
  return frame.value()[3];
}

Result<std::uint16_t> Bus::read_word(std::uint8_t address,
                                     std::uint8_t command) {
  HBMVOLT_RETURN_IF_ERROR(begin_transaction(address, command));
  auto device = find(address);
  if (!device.is_ok()) return device.status();
  auto value = device.value()->read_word(command);
  if (!value.is_ok()) return value.status();
  auto frame = transfer({static_cast<std::uint8_t>(address << 1), command,
                         static_cast<std::uint8_t>((address << 1) | 1),
                         static_cast<std::uint8_t>(value.value() & 0xFF),
                         static_cast<std::uint8_t>(value.value() >> 8)});
  if (!frame.is_ok()) return frame.status();
  const auto& bytes = frame.value();
  return static_cast<std::uint16_t>(bytes[3] | (bytes[4] << 8));
}

}  // namespace hbmvolt::pmbus
