// SMBus Packet Error Checking: CRC-8 with polynomial x^8 + x^2 + x + 1
// (0x07), initial value 0, no reflection, no final XOR (SMBus 2.0 §4.2).

#pragma once

#include <cstdint>
#include <span>

namespace hbmvolt::pmbus {

/// CRC-8/SMBus over a byte sequence.
[[nodiscard]] std::uint8_t pec_crc8(std::span<const std::uint8_t> bytes) noexcept;

/// Incrementally extends a CRC with one byte.
[[nodiscard]] std::uint8_t pec_crc8_step(std::uint8_t crc,
                                         std::uint8_t byte) noexcept;

}  // namespace hbmvolt::pmbus
