// Renderers that turn experiment results into the tables/series the
// paper's figures plot (ASCII for the terminal, CSV for archiving).

#pragma once

#include <string>
#include <vector>

#include "core/fault_characterizer.hpp"
#include "core/guardband.hpp"
#include "core/power_characterizer.hpp"
#include "core/tradeoff.hpp"
#include "faults/fault_map.hpp"

namespace hbmvolt::core {

/// Fig 2: normalized power vs voltage, one column per utilization series.
/// `display_step_mv` thins the rows like the paper's 50 mV display grid.
[[nodiscard]] std::string render_fig2(const PowerCharacterization& data,
                                      int display_step_mv = 50);

/// Fig 2 as an ASCII line chart (markers 0..4 = utilization series,
/// low to high).
[[nodiscard]] std::string render_fig2_chart(const PowerCharacterization& data);

/// Fig 4 as an ASCII chart with a log10 y-axis, the shape the paper
/// plots: flat zero, exponential wall, saturation (markers '0'/'1' per
/// stack).
[[nodiscard]] std::string render_fig4_chart(const faults::FaultMap& map);

/// Fig 3: normalized alpha*C_L*f vs voltage per series.
[[nodiscard]] std::string render_fig3(const PowerCharacterization& data,
                                      int display_step_mv = 50);

/// Fig 4: fraction of faulty bits per stack vs voltage.
[[nodiscard]] std::string render_fig4(const faults::FaultMap& map);

/// Fig 5: per-PC fault percentage at each voltage, one sub-table per flip
/// direction ("NF" = no fault, values < 1% print as 0%, like the paper).
[[nodiscard]] std::string render_fig5(const faults::FaultMap& map,
                                      int display_step_mv = 10);

/// Spatial fault map of one PC at one voltage: banks across, rows down,
/// one cell per (bank, row) showing stuck-cell density -- the "fault
/// map" of the paper's title, as a picture.  Density glyphs:
/// '.' = clean, '1'..'9' ~ log-ish counts, '#' = saturated.
[[nodiscard]] std::string render_pc_heatmap(
    const hbm::HbmGeometry& geometry, const faults::FaultOverlay& overlay);

/// Fig 6: usable PCs vs voltage per tolerable fault rate.
[[nodiscard]] std::string render_fig6(const std::vector<TradeoffPoint>& points,
                                      const TradeoffConfig& config);

/// Headline numbers table: paper's claim vs this run's measurement.
struct HeadlineNumbers {
  GuardbandResult guardband;
  double savings_at_vmin = 0.0;    // paper: 1.5x at 0.98 V
  double savings_at_850mv = 0.0;   // paper: 2.3x at 0.85 V
  double idle_fraction = 0.0;      // paper: ~1/3
  StackVariation stack_variation;  // paper: 13%
  PatternVariation pattern_variation;  // paper: 0.97 V / 0.96 V / +21%
  double alpha_drop_at_850mv = 0.0;    // paper: ~14%
};

[[nodiscard]] std::string render_headline(const HeadlineNumbers& numbers);

/// CSV exports (one row per (series, voltage) / (voltage, pc) etc.).
[[nodiscard]] std::string to_csv_fig2(const PowerCharacterization& data);
[[nodiscard]] std::string to_csv_fig4(const faults::FaultMap& map);
[[nodiscard]] std::string to_csv_fig5(const faults::FaultMap& map);
[[nodiscard]] std::string to_csv_fig6(const std::vector<TradeoffPoint>& points,
                                      const TradeoffConfig& config);

}  // namespace hbmvolt::core
