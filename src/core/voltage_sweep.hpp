// Voltage sweep driver: walks VCC_HBM down a millivolt grid (the paper's
// V_nom -> V_critical in 10 mV steps) and invokes a measurement body at
// each point, handling crashes per policy.
//
// Two robustness features live here:
//
//  * A crash watchdog.  A non-responding stack at a given voltage is
//    either a genuine undervolt crash (deterministic: the voltage is
//    below the stack's critical point, so a power cycle + re-set crashes
//    it again) or a spurious injected crash (see src/chaos/).  The
//    watchdog power-cycles and re-applies the voltage up to
//    `crash_retries` times; only a crash that survives the recheck is
//    recorded.  Extra power cycles are figure-neutral: the array
//    re-scramble is seed-deterministic and the fault model is
//    content-independent.
//
//  * Resumability.  `run_resumable` takes the list of grid points a
//    previous (interrupted) run already completed and skips them without
//    touching the board, plus an `on_step` callback after each completed
//    point -- the campaign checkpoints there.  `on_step` returning false
//    halts the sweep *without* the end-of-sweep restore, simulating the
//    process dying mid-campaign.

#pragma once

#include <functional>
#include <vector>

#include "board/vcu128.hpp"
#include "common/status.hpp"
#include "common/units.hpp"

namespace hbmvolt::core {

struct SweepConfig {
  Millivolts start{1200};
  Millivolts stop{810};
  int step_mv = 10;
};

/// Grid points from start down to stop, inclusive.
[[nodiscard]] std::vector<Millivolts> sweep_grid(const SweepConfig& config);

enum class CrashPolicy {
  kStop,                  // abort the sweep at the first crash
  kPowerCycleAndContinue  // record, power-cycle, keep sweeping
};

/// The crash watchdog, shared by the sweep and the adaptive governor.
/// While the board is unresponsive, power-cycles and re-applies `v`, up
/// to `retries` rounds.  Returns true when the board responds afterwards
/// (the crash was spurious and recovered -- or there was no crash at
/// all), false when the crash survives every recheck (a genuine
/// undervolt crash: deterministic, so re-applying `v` reproduces it).
/// Retry rounds and recoveries are counted in telemetry as
/// `<counter_prefix>.crash_retries` and
/// `<counter_prefix>.spurious_crashes_recovered`.
Result<bool> crash_watchdog_recover(board::Vcu128Board& board, Millivolts v,
                                    unsigned retries,
                                    const char* counter_prefix = "sweep");

/// One already-completed grid point, as recorded by a checkpoint.
struct SweepSkip {
  Millivolts v{0};
  /// The point completed *as a crash*: replay the policy decision (under
  /// kStop the sweep ends here) without re-touching the board.
  bool crashed = false;
};

class VoltageSweep {
 public:
  VoltageSweep(board::Vcu128Board& board, SweepConfig config,
               CrashPolicy policy = CrashPolicy::kStop);

  /// Crash-watchdog budget: how many power-cycle + re-apply rounds to try
  /// before believing a non-responding board really crashed (default 2).
  void set_crash_retries(unsigned retries) noexcept {
    crash_retries_ = retries;
  }

  /// Post-step callback: fires after each completed grid point (measured
  /// or crash-recorded).  Returning false halts the sweep immediately.
  using StepFn = std::function<bool(Millivolts)>;

  /// Runs `body(v)` at every grid voltage the device survives.  When a
  /// voltage crashes the stacks, `on_crash(v)` fires instead of body and
  /// the policy decides whether to continue.  The board is returned to
  /// nominal voltage afterwards (power-cycled if it crashed).
  Status run(const std::function<void(Millivolts)>& body,
             const std::function<void(Millivolts)>& on_crash = nullptr);

  /// run() plus resume support: grid points in `skip` are replayed from
  /// the checkpoint (body and on_crash do not fire for them), and
  /// `on_step` fires after each newly completed point.
  Status run_resumable(const std::vector<SweepSkip>& skip,
                       const std::function<void(Millivolts)>& body,
                       const std::function<void(Millivolts)>& on_crash,
                       const StepFn& on_step);

 private:
  board::Vcu128Board& board_;
  SweepConfig config_;
  CrashPolicy policy_;
  unsigned crash_retries_ = 2;
};

}  // namespace hbmvolt::core
