// Voltage sweep driver: walks VCC_HBM down a millivolt grid (the paper's
// V_nom -> V_critical in 10 mV steps) and invokes a measurement body at
// each point, handling crashes per policy.

#pragma once

#include <functional>
#include <vector>

#include "board/vcu128.hpp"
#include "common/status.hpp"
#include "common/units.hpp"

namespace hbmvolt::core {

struct SweepConfig {
  Millivolts start{1200};
  Millivolts stop{810};
  int step_mv = 10;
};

/// Grid points from start down to stop, inclusive.
[[nodiscard]] std::vector<Millivolts> sweep_grid(const SweepConfig& config);

enum class CrashPolicy {
  kStop,                  // abort the sweep at the first crash
  kPowerCycleAndContinue  // record, power-cycle, keep sweeping
};

class VoltageSweep {
 public:
  VoltageSweep(board::Vcu128Board& board, SweepConfig config,
               CrashPolicy policy = CrashPolicy::kStop);

  /// Runs `body(v)` at every grid voltage the device survives.  When a
  /// voltage crashes the stacks, `on_crash(v)` fires instead of body and
  /// the policy decides whether to continue.  The board is returned to
  /// nominal voltage afterwards (power-cycled if it crashed).
  Status run(const std::function<void(Millivolts)>& body,
             const std::function<void(Millivolts)>& on_crash = nullptr);

 private:
  board::Vcu128Board& board_;
  SweepConfig config_;
  CrashPolicy policy_;
};

}  // namespace hbmvolt::core
