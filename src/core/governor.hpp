// Adaptive undervolting governor: an online controller that finds and
// holds the deepest safe operating voltage, instead of relying on a
// static offline characterization.
//
// The paper's trade-off (Fig 6) assumes a fault map measured in the lab;
// production systems prefer closed-loop adaptive guardbanding (cf. Zu et
// al. [71], Papadimitriou et al. [42] from the paper's related work).
// This governor implements the canonical scheme on the HBM model:
//
//   probe:  run a quick pattern test at the current voltage
//   lower:  while measured fault rate <= tolerance, step down
//   raise:  on violation, step up `backoff_steps` and hold (hysteresis)
//   crash:  on a non-responding device, power-cycle and hold at the
//           last-known-good voltage plus margin
//
// The probe uses a small memory slice, so convergence costs a tiny
// fraction of a full Algorithm-1 sweep.

#pragma once

#include <cstdint>
#include <vector>

#include "board/vcu128.hpp"
#include "common/status.hpp"

namespace hbmvolt::core {

struct GovernorConfig {
  /// Acceptable fault rate during the probe (0 = fault-free operation).
  double tolerable_rate = 0.0;
  int step_mv = 10;
  /// Steps to back off above the first violating voltage.
  int backoff_steps = 1;
  /// Beats probed per PC per check (small on purpose).
  std::uint64_t probe_beats = 64;
  /// Lowest setpoint the governor may try.
  Millivolts floor{820};
  /// Consecutive clean probes required before declaring convergence.
  unsigned settle_probes = 3;
  /// Safety cap on total probes.
  unsigned max_probes = 200;
  /// Crash-watchdog budget (see core::crash_watchdog_recover): rounds of
  /// power-cycle + re-apply before a probe crash is believed.  Spurious
  /// injected crashes recover under the recheck and are re-probed at the
  /// same voltage, so they no longer inflate the settled voltage.
  unsigned crash_retries = 2;
};

struct GovernorStep {
  Millivolts voltage{0};
  double measured_rate = 0.0;
  bool crashed = false;
  /// The crash recovered under the watchdog recheck (chaos-injected, not
  /// a real undervolt crash); the probe is retried at the same voltage.
  bool spurious = false;
  enum class Action { kLower, kHold, kBackoff, kPowerCycle, kRetry } action;
};

struct GovernorResult {
  Millivolts settled{0};
  double savings_factor = 1.0;
  unsigned probes = 0;
  bool converged = false;
  std::vector<GovernorStep> trace;
};

class UndervoltGovernor {
 public:
  UndervoltGovernor(board::Vcu128Board& board, GovernorConfig config);

  /// Runs the control loop from nominal voltage until convergence (or
  /// the probe budget runs out).  Leaves the board at the settled
  /// voltage.
  Result<GovernorResult> run();

  /// Raises the board one `step_mv` above its current setpoint, capped at
  /// nominal -- the degradation ladder's "raise voltage" rung (see
  /// src/runtime/).  Returns the new setpoint.
  Result<Millivolts> raise_one_step();

 private:
  /// One probe at the current voltage: write/read the probe slice on
  /// every PC, return measured fault rate (or crash).
  Result<double> probe();

  board::Vcu128Board& board_;
  GovernorConfig config_;
};

}  // namespace hbmvolt::core
