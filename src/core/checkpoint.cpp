#include "core/checkpoint.hpp"

#include <bit>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/json.hpp"

namespace hbmvolt::core {

namespace {

std::string hex_bits(double value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64,
                std::bit_cast<std::uint64_t>(value));
  return buf;
}

std::string hex_u64(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, value);
  return buf;
}

Result<std::uint64_t> parse_hex_u64(const json::Value* value,
                                    const char* what) {
  if (value == nullptr || !value->is_string()) {
    return data_loss(std::string("checkpoint: missing hex field ") + what);
  }
  std::uint64_t bits = 0;
  for (const char c : value->string) {
    bits <<= 4;
    if (c >= '0' && c <= '9') {
      bits |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      bits |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return data_loss(std::string("checkpoint: bad hex digit in ") + what);
    }
  }
  return bits;
}

Result<std::int64_t> require_int(const json::Value* value, const char* what) {
  if (value == nullptr || !value->is_number()) {
    return data_loss(std::string("checkpoint: missing field ") + what);
  }
  return value->as_int();
}

}  // namespace

std::string checkpoint_to_json(const CampaignCheckpoint& ckpt) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"version\": " << CampaignCheckpoint::kVersion << ",\n";
  out << "  \"fingerprint\": \"" << hex_u64(ckpt.fingerprint) << "\",\n";
  out << "  \"reliability_done\": "
      << (ckpt.reliability_done ? "true" : "false") << ",\n";
  out << "  \"power_snapshot_seq\": " << ckpt.power_snapshot_seq << ",\n";
  out << "  \"reliability\": [";
  for (std::size_t i = 0; i < ckpt.reliability.size(); ++i) {
    const CheckpointFaultRow& row = ckpt.reliability[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"mv\": " << row.mv << ", \"crashed\": "
        << (row.crashed ? "true" : "false") << ", \"pcs\": [";
    for (std::size_t p = 0; p < row.pcs.size(); ++p) {
      const faults::PcFaultRecord& pc = row.pcs[p];
      if (p != 0) out << ", ";
      out << '[' << pc.bits_tested << ", " << pc.flips_1to0 << ", "
          << pc.flips_0to1 << ", " << pc.bits_tested_ones << ", "
          << pc.bits_tested_zeros << ']';
    }
    out << "]}";
  }
  out << (ckpt.reliability.empty() ? "],\n" : "\n  ],\n");
  out << "  \"power\": [";
  for (std::size_t i = 0; i < ckpt.power.size(); ++i) {
    const CheckpointPowerSeries& series = ckpt.power[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"ports\": " << series.ports << ", \"rows\": [";
    for (std::size_t r = 0; r < series.rows.size(); ++r) {
      if (r != 0) out << ", ";
      out << "{\"mv\": " << series.rows[r].mv << ", \"watts\": \""
          << hex_bits(series.rows[r].watts.value) << "\"}";
    }
    out << "]}";
  }
  out << (ckpt.power.empty() ? "]\n" : "\n  ]\n");
  out << "}\n";
  return out.str();
}

Result<CampaignCheckpoint> checkpoint_from_json(std::string_view text) {
  auto parsed = json::parse(text);
  if (!parsed.is_ok()) return parsed.status();
  const json::Value& root = parsed.value();
  if (!root.is_object()) return data_loss("checkpoint: root is not an object");

  auto version = require_int(root.find("version"), "version");
  if (!version.is_ok()) return version.status();
  if (version.value() != CampaignCheckpoint::kVersion) {
    return data_loss("checkpoint: unsupported version");
  }

  CampaignCheckpoint ckpt;
  auto fingerprint = parse_hex_u64(root.find("fingerprint"), "fingerprint");
  if (!fingerprint.is_ok()) return fingerprint.status();
  ckpt.fingerprint = fingerprint.value();

  const json::Value* done = root.find("reliability_done");
  if (done == nullptr || done->kind != json::Value::Kind::kBool) {
    return data_loss("checkpoint: missing field reliability_done");
  }
  ckpt.reliability_done = done->boolean;

  auto seq = require_int(root.find("power_snapshot_seq"),
                         "power_snapshot_seq");
  if (!seq.is_ok()) return seq.status();
  ckpt.power_snapshot_seq = static_cast<std::uint64_t>(seq.value());

  const json::Value* reliability = root.find("reliability");
  if (reliability == nullptr || !reliability->is_array()) {
    return data_loss("checkpoint: missing field reliability");
  }
  for (const json::Value& entry : reliability->items) {
    CheckpointFaultRow row;
    auto mv = require_int(entry.find("mv"), "reliability.mv");
    if (!mv.is_ok()) return mv.status();
    row.mv = static_cast<int>(mv.value());
    const json::Value* crashed = entry.find("crashed");
    if (crashed == nullptr || crashed->kind != json::Value::Kind::kBool) {
      return data_loss("checkpoint: missing field reliability.crashed");
    }
    row.crashed = crashed->boolean;
    const json::Value* pcs = entry.find("pcs");
    if (pcs == nullptr || !pcs->is_array()) {
      return data_loss("checkpoint: missing field reliability.pcs");
    }
    for (const json::Value& tuple : pcs->items) {
      if (!tuple.is_array() || tuple.items.size() != 5) {
        return data_loss("checkpoint: malformed PC record");
      }
      faults::PcFaultRecord pc;
      pc.bits_tested = tuple.items[0].as_uint();
      pc.flips_1to0 = tuple.items[1].as_uint();
      pc.flips_0to1 = tuple.items[2].as_uint();
      pc.bits_tested_ones = tuple.items[3].as_uint();
      pc.bits_tested_zeros = tuple.items[4].as_uint();
      row.pcs.push_back(pc);
    }
    ckpt.reliability.push_back(std::move(row));
  }

  const json::Value* power = root.find("power");
  if (power == nullptr || !power->is_array()) {
    return data_loss("checkpoint: missing field power");
  }
  for (const json::Value& entry : power->items) {
    CheckpointPowerSeries series;
    auto ports = require_int(entry.find("ports"), "power.ports");
    if (!ports.is_ok()) return ports.status();
    series.ports = static_cast<unsigned>(ports.value());
    const json::Value* rows = entry.find("rows");
    if (rows == nullptr || !rows->is_array()) {
      return data_loss("checkpoint: missing field power.rows");
    }
    for (const json::Value& row : rows->items) {
      CheckpointPowerRow out_row;
      auto mv = require_int(row.find("mv"), "power.rows.mv");
      if (!mv.is_ok()) return mv.status();
      out_row.mv = static_cast<int>(mv.value());
      auto bits = parse_hex_u64(row.find("watts"), "power.rows.watts");
      if (!bits.is_ok()) return bits.status();
      out_row.watts = Watts{std::bit_cast<double>(bits.value())};
      series.rows.push_back(out_row);
    }
    ckpt.power.push_back(std::move(series));
  }
  return ckpt;
}

Status save_checkpoint(const CampaignCheckpoint& ckpt,
                       const std::string& path) {
  // Atomic write: the previous checkpoint survives a kill at any point.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return unavailable("cannot open checkpoint tmp file: " + tmp);
    out << checkpoint_to_json(ckpt);
    if (!out.good()) return unavailable("checkpoint write failed: " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return unavailable("checkpoint rename failed: " + ec.message());
  }
  return Status::ok();
}

Result<CampaignCheckpoint> load_checkpoint(const std::string& path) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) {
    return not_found("no checkpoint at " + path);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return unavailable("cannot read checkpoint: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return checkpoint_from_json(buffer.str());
}

}  // namespace hbmvolt::core
