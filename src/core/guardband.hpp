// Guardband extraction (paper §I / §III-B): from a measured fault map,
// determine V_min (the floor of the fault-free guardband region),
// V_critical (the lowest voltage at which the device still responds), and
// the guardband as a fraction of nominal voltage.

#pragma once

#include <optional>

#include "board/vcu128.hpp"
#include "common/status.hpp"
#include "core/reliability_tester.hpp"
#include "faults/fault_map.hpp"

namespace hbmvolt::core {

struct GuardbandResult {
  Millivolts v_nom{1200};
  /// Lowest recorded voltage with zero faults anywhere: the bottom of the
  /// guardband region.
  Millivolts v_min{0};
  /// Highest recorded voltage with at least one flip (one step below
  /// v_min); 0 if no faults were observed.
  Millivolts v_first_fault{0};
  /// Lowest recorded voltage at which the device still responded.
  Millivolts v_critical{0};
  /// Whether a crash was observed below v_critical.
  bool crash_observed = false;
  /// (v_nom - v_min) / v_nom.
  double guardband_fraction = 0.0;
};

/// Derives the guardband landmarks from an existing fault map (the map
/// must cover a descending voltage range).
[[nodiscard]] GuardbandResult analyze_guardband(const faults::FaultMap& map,
                                                Millivolts v_nom);

/// Convenience: runs Algorithm 1 with the given config and analyzes the
/// result.  Uses a small batch (the guardband boundary is deterministic
/// in the model; silicon users would keep 130).
Result<GuardbandResult> find_guardband(board::Vcu128Board& board,
                                       ReliabilityConfig config);

}  // namespace hbmvolt::core
