// Fault characterization (paper §III-B, Figs 4 and 5): run Algorithm 1,
// then quantify the three variation categories the paper reports --
// across HBM chips, across pseudo-channels, and across data patterns --
// plus the spatial clustering of faults.

#pragma once

#include <optional>
#include <vector>

#include "board/vcu128.hpp"
#include "common/status.hpp"
#include "core/reliability_tester.hpp"
#include "faults/fault_map.hpp"

namespace hbmvolt::core {

/// Cross-stack variation: average relative excess of the worse stack's
/// fault rate over the better stack's, over voltages where both are in
/// (0, 1) (the paper reports HBM0 ~13% below HBM1).
struct StackVariation {
  unsigned better_stack = 0;
  unsigned worse_stack = 1;
  /// mean over voltages of (worse - better) / worse.
  double average_gap = 0.0;
  /// Number of voltages contributing.
  unsigned samples = 0;
};

/// Data-pattern variation: onset voltages per flip direction and the
/// average rate excess of 0->1 flips over 1->0 flips (paper: +21%).
struct PatternVariation {
  std::optional<Millivolts> first_1to0;
  std::optional<Millivolts> first_0to1;
  double average_0to1_excess = 0.0;  // mean of rate01/rate10 - 1
  unsigned samples = 0;
};

[[nodiscard]] StackVariation analyze_stack_variation(
    const faults::FaultMap& map);

[[nodiscard]] PatternVariation analyze_pattern_variation(
    const faults::FaultMap& map);

/// Per-PC onset table (Fig 5's leftmost non-NF column per PC).
[[nodiscard]] std::vector<std::optional<Millivolts>> per_pc_onsets(
    const faults::FaultMap& map);

class FaultCharacterizer {
 public:
  explicit FaultCharacterizer(board::Vcu128Board& board);

  /// Runs Algorithm 1 over the full device and returns the fault map.
  Result<faults::FaultMap> characterize(const ReliabilityConfig& config);

  /// Spatial clustering of the stuck-cell population of one PC at one
  /// voltage (white-box: reads the injector's overlay, which is exactly
  /// the cell set the black-box test would enumerate bit-by-bit).
  faults::ClusteringStats clustering(unsigned pc_global, Millivolts v);

 private:
  board::Vcu128Board& board_;
};

}  // namespace hbmvolt::core
