#include "core/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <utility>

#include "common/status.hpp"
#include "telemetry/telemetry.hpp"

namespace hbmvolt::core {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  HBMVOLT_REQUIRE(task != nullptr, "null task submitted to pool");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    HBMVOLT_REQUIRE(!stop_, "pool is shutting down");
    tasks_.push_back(std::move(task));
    if (auto* tel = telemetry::Telemetry::active()) {
      tel->gauge_set("pool.queue_depth",
                     static_cast<std::int64_t>(tasks_.size()));
    }
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop(unsigned index) {
  // Workers own telemetry track index+1 (the installing thread is track
  // 0), so the trace viewer shows one lane per pool worker and exports
  // merge deterministically in worker-index order.
  telemetry::Telemetry::set_thread_track(
      static_cast<int>(index) + 1, "worker " + std::to_string(index));
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
      if (auto* tel = telemetry::Telemetry::active()) {
        tel->gauge_set("pool.queue_depth",
                       static_cast<std::int64_t>(tasks_.size()));
      }
    }
    if (auto* tel = telemetry::Telemetry::active()) {
      tel->count("pool.tasks");
    }
    task();
  }
}

namespace {

/// State shared between the caller and the helper tasks of one fan-out.
/// The caller outlives every helper (it blocks on `pending`), so helpers
/// may reference the body through the raw pointer held here.
struct FanOut {
  explicit FanOut(std::size_t count,
                  const std::function<void(std::size_t)>& fn)
      : body(&fn), errors(count) {}

  const std::function<void(std::size_t)>* body;
  std::atomic<std::size_t> next{0};
  std::vector<std::exception_ptr> errors;  // slot per index: no sharing

  std::mutex mutex;
  std::condition_variable done;
  std::size_t pending = 0;

  /// Claims indices off the shared ticket until the range is exhausted.
  void drain() {
    const std::size_t count = errors.size();
    for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
         i < count; i = next.fetch_add(1, std::memory_order_relaxed)) {
      try {
        (*body)(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  }
};

void rethrow_lowest(std::vector<std::exception_ptr>& errors) {
  for (auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace

void parallel_for_each(ThreadPool* pool, std::size_t count,
                       const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  telemetry::Span span("pool.fanout", static_cast<std::int64_t>(count));
  if (pool == nullptr || pool->size() <= 1 || count == 1) {
    // Serial reference path: same run-all / lowest-index-throws semantics
    // as the fan-out so behavior is identical at every thread count.
    std::vector<std::exception_ptr> errors(count);
    for (std::size_t i = 0; i < count; ++i) {
      try {
        body(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
    rethrow_lowest(errors);
    return;
  }

  auto shared = std::make_shared<FanOut>(count, body);
  // The calling thread participates, so only size-1 helpers are needed at
  // most (and never more than there are indices).
  const std::size_t helpers =
      std::min<std::size_t>(pool->size(), count) - 1;
  shared->pending = helpers;
  for (std::size_t h = 0; h < helpers; ++h) {
    pool->submit([shared] {
      shared->drain();
      {
        std::lock_guard<std::mutex> lock(shared->mutex);
        --shared->pending;
      }
      shared->done.notify_one();
    });
  }
  shared->drain();
  {
    std::unique_lock<std::mutex> lock(shared->mutex);
    shared->done.wait(lock, [&] { return shared->pending == 0; });
  }
  rethrow_lowest(shared->errors);
}

}  // namespace hbmvolt::core
