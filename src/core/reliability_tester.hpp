// Algorithm 1 of the paper: reliability assessment via sequential access.
//
//   for voltage := V_nom downto V_critical in 10 mV steps:
//     VCC_HBM := voltage
//     for b := 0 .. batchSize-1:
//       reset_axi_ports()
//       write dataPattern over memSize beats; read back; count mismatches
//
// Both data patterns (all 1s -> exposes 1->0 flips, all 0s -> exposes
// 0->1 flips) run at every voltage, and flip counts are recorded per
// pseudo-channel into a FaultMap.  The batch size defaults to the paper's
// 130 runs (7% error margin at 90% confidence -- see common/stats.hpp);
// simulation callers typically lower it since the model's fault sets are
// deterministic at fixed voltage.

#pragma once

#include <vector>

#include "board/vcu128.hpp"
#include "common/status.hpp"
#include "core/voltage_sweep.hpp"
#include "faults/fault_map.hpp"

namespace hbmvolt::core {

class ThreadPool;

struct ReliabilityConfig {
  SweepConfig sweep{};                       // 1200 -> 810, 10 mV
  unsigned batch_size = 130;
  /// Beats tested per PC and batch; 0 = the whole PC (paper: memSize=256M
  /// beats for the full-HBM test, 8M for a single PC, at real capacity).
  std::uint64_t mem_beats = 0;
  /// Test the all-ones pattern (1->0 flips).
  bool pattern_ones = true;
  /// Test the all-zeros pattern (0->1 flips).
  bool pattern_zeros = true;
  CrashPolicy crash_policy = CrashPolicy::kStop;
  /// Crash-watchdog budget forwarded to the sweep (see VoltageSweep).
  unsigned crash_retries = 2;
};

/// Resume state for an interrupted run: the merged fault map of the
/// completed voltage steps plus which grid points they were.
struct ReliabilityResume {
  const faults::FaultMap* base = nullptr;
  std::vector<SweepSkip> completed;
};

class ReliabilityTester {
 public:
  ReliabilityTester(board::Vcu128Board& board, ReliabilityConfig config);

  /// Post-step checkpoint hook: fires after each completed voltage step
  /// with the map accumulated so far; returning false halts the run (the
  /// sweep returns kUnavailable and no fault map is produced).
  using StepFn = std::function<bool(Millivolts, const faults::FaultMap&)>;

  /// Full-device test: every AXI port of both stacks.  With a pool, the
  /// 32 per-PC pattern tests of each voltage step fan out across workers;
  /// the resulting FaultMap is byte-identical to the serial run.  With
  /// `resume`, the checkpointed steps are replayed from its map instead
  /// of re-measured.
  Result<faults::FaultMap> run(ThreadPool* pool = nullptr,
                               const ReliabilityResume* resume = nullptr,
                               const StepFn& on_step = nullptr);

  /// Single-PC test (the paper's per-PC variant of Algorithm 1).
  Result<faults::FaultMap> run_pc(unsigned pc_global);

 private:
  Result<faults::FaultMap> run_impl(int only_pc_global, ThreadPool* pool,
                                    const ReliabilityResume* resume,
                                    const StepFn& on_step);

  board::Vcu128Board& board_;
  ReliabilityConfig config_;
};

}  // namespace hbmvolt::core
