#include "core/governor.hpp"

#include "common/log.hpp"
#include "core/voltage_sweep.hpp"

namespace hbmvolt::core {

UndervoltGovernor::UndervoltGovernor(board::Vcu128Board& board,
                                     GovernorConfig config)
    : board_(board), config_(config) {
  HBMVOLT_REQUIRE(config_.step_mv > 0, "step must be positive");
  HBMVOLT_REQUIRE(config_.backoff_steps > 0, "backoff must be positive");
  HBMVOLT_REQUIRE(config_.probe_beats > 0, "probe needs at least one beat");
}

Result<double> UndervoltGovernor::probe() {
  if (!board_.responding()) {
    return unavailable("device not responding");
  }
  const std::uint64_t beats =
      std::min(config_.probe_beats, board_.geometry().beats_per_pc());
  std::uint64_t flips = 0;
  std::uint64_t bits = 0;
  for (const auto& pattern : {hbm::kBeatAllOnes, hbm::kBeatAllZeros}) {
    axi::TgCommand command{axi::MacroOp::kWriteRead, 0, beats, pattern,
                           /*check=*/true};
    for (const auto& result : board_.run_traffic(command)) {
      if (!result.stack_responding) {
        return unavailable("stack stopped responding during probe");
      }
      const auto totals = result.totals();
      flips += totals.total_flips();
      bits += totals.bits_checked;
    }
  }
  return bits == 0 ? 0.0
                   : static_cast<double>(flips) / static_cast<double>(bits);
}

Result<GovernorResult> UndervoltGovernor::run() {
  GovernorResult result;
  const Millivolts v_nom = board_.config().regulator_config.vout_default;
  HBMVOLT_RETURN_IF_ERROR(board_.set_hbm_voltage(v_nom));
  board_.set_active_ports(board_.total_ports());

  Millivolts current = v_nom;
  Millivolts last_good = v_nom;
  Millivolts hold{0};  // nonzero once we've backed off
  unsigned clean_in_a_row = 0;

  while (result.probes < config_.max_probes) {
    ++result.probes;
    auto rate = probe();

    GovernorStep step;
    step.voltage = current;

    if (!rate.is_ok()) {
      step.crashed = true;
      // Crash watchdog (shared with VoltageSweep): a chaos-injected crash
      // recovers under a power-cycle + re-apply recheck, and the governor
      // re-probes the same voltage instead of backing off -- spurious
      // crashes must not inflate the settled voltage.
      auto recovered = crash_watchdog_recover(
          board_, current, config_.crash_retries, "governor");
      if (!recovered.is_ok()) return recovered.status();
      board_.set_active_ports(board_.total_ports());
      if (recovered.value()) {
        step.spurious = true;
        step.action = GovernorStep::Action::kRetry;
        result.trace.push_back(step);
        continue;
      }
      // Genuine crash: power-cycle, return to last-known-good + margin,
      // hold.
      step.action = GovernorStep::Action::kPowerCycle;
      result.trace.push_back(step);
      HBMVOLT_RETURN_IF_ERROR(board_.power_cycle());
      board_.set_active_ports(board_.total_ports());
      hold = Millivolts{last_good.value + config_.step_mv};
      current = hold;
      HBMVOLT_RETURN_IF_ERROR(board_.set_hbm_voltage(current));
      clean_in_a_row = 0;
      continue;
    }
    step.measured_rate = rate.value();

    if (rate.value() > config_.tolerable_rate) {
      // Violation: back off and hold there.
      hold = Millivolts{current.value +
                        config_.step_mv * config_.backoff_steps};
      if (hold > v_nom) hold = v_nom;
      step.action = GovernorStep::Action::kBackoff;
      result.trace.push_back(step);
      current = hold;
      HBMVOLT_RETURN_IF_ERROR(board_.set_hbm_voltage(current));
      clean_in_a_row = 0;
      continue;
    }

    last_good = current;
    if (hold.value != 0 || current <= config_.floor) {
      // Holding (post-backoff or at the floor): count clean probes.
      step.action = GovernorStep::Action::kHold;
      result.trace.push_back(step);
      if (++clean_in_a_row >= config_.settle_probes) {
        result.converged = true;
        break;
      }
      continue;
    }

    // Still exploring downwards.
    step.action = GovernorStep::Action::kLower;
    result.trace.push_back(step);
    current = Millivolts{current.value - config_.step_mv};
    if (current < config_.floor) current = config_.floor;
    HBMVOLT_RETURN_IF_ERROR(board_.set_hbm_voltage(current));
  }

  result.settled = board_.hbm_voltage();
  const double v = result.settled.volts();
  if (v > 0) {
    const double nominal = v_nom.volts();
    result.savings_factor = (nominal / v) * (nominal / v);
  }
  return result;
}

Result<Millivolts> UndervoltGovernor::raise_one_step() {
  const Millivolts v_nom = board_.config().regulator_config.vout_default;
  Millivolts next{board_.hbm_voltage().value + config_.step_mv};
  if (next > v_nom) next = v_nom;
  HBMVOLT_RETURN_IF_ERROR(board_.set_hbm_voltage(next));
  return next;
}

}  // namespace hbmvolt::core
