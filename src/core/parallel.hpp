// Deterministic fan-out engine for the sweep pipeline.
//
// The paper's platform runs all 32 AXI traffic generators concurrently
// (one per pseudo-channel) at every voltage step; this pool is the host
// side of that concurrency.  Design rules that keep results byte-identical
// at any thread count (enforced by tests/parallel_test.cpp):
//
//  * work is addressed by index: parallel_for_each(pool, n, body) calls
//    body(0..n-1) exactly once each, and every output slot is owned by
//    exactly one index -- workers never share mutable state;
//  * aggregation happens on the calling thread, in ascending index order,
//    after the fan-out joins -- no locks on the hot path, no
//    reduction-order dependence;
//  * randomness consumed inside a worker comes from a counter-seeded
//    stream derived from the index (see stream_seed in common/rng.hpp),
//    never from a shared generator.
//
// The pool is deliberately work-stealing-free: a shared atomic ticket is
// all the scheduling the 32-wide fan-outs here need, and the simple
// structure keeps the ThreadSanitizer lane clean.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hbmvolt::core {

class ThreadPool {
 public:
  /// `threads` = 0 picks std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues a task for any worker.  Tasks must not throw (fan-outs wrap
  /// their bodies; see parallel_for_each).
  void submit(std::function<void()> task);

 private:
  void worker_loop(unsigned index);

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Runs body(0) .. body(count-1), each exactly once, distributed over the
/// pool's workers plus the calling thread; returns after all complete.
///
/// A null pool (or a single-thread pool) runs inline -- this is the serial
/// reference path, and it executes the same code as the parallel one.
/// Exception semantics are identical at every thread count: all indices
/// run to completion, and the exception thrown by the *lowest* failing
/// index is rethrown afterwards.
void parallel_for_each(ThreadPool* pool, std::size_t count,
                       const std::function<void(std::size_t)>& body);

}  // namespace hbmvolt::core
