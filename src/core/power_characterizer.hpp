// Power measurement experiments (paper §II-C.1 and §III-A, Figs 2 and 3):
// sweep VCC_HBM while running traffic at several bandwidth-utilization
// rates (by enabling subsets of the 32 AXI ports) and record INA226 power
// readings.  Derived quantities: normalized power (Fig 2), normalized
// alpha*C_L*f = P/V^2 (Fig 3), and savings factors at the paper's
// landmark voltages.

#pragma once

#include <optional>
#include <vector>

#include "board/vcu128.hpp"
#include "common/status.hpp"
#include "core/voltage_sweep.hpp"

namespace hbmvolt::core {

class ThreadPool;

struct PowerSweepConfig {
  SweepConfig sweep{};                      // 1200 -> 810, 10 mV
  /// Port counts to measure; the paper plots 0/25/50/75/100% utilization.
  std::vector<unsigned> port_counts = {0, 8, 16, 24, 32};
  /// Host-side samples averaged per reading (on top of INA averaging).
  unsigned samples = 8;
  /// Beats of traffic run per enabled port before each reading, to put
  /// real transactions on the wire during the measurement.
  std::uint64_t traffic_beats = 64;
};

/// One measured series: power vs voltage at a fixed port count.
struct PowerSeries {
  unsigned ports = 0;
  double utilization = 0.0;
  std::vector<Millivolts> voltages;  // descending
  std::vector<Watts> power;

  [[nodiscard]] std::optional<Watts> power_at(Millivolts v) const;
};

struct PowerCharacterization {
  std::vector<PowerSeries> series;
  /// Normalization reference: power at v_nom in the highest-ports series
  /// (the paper normalizes to 1.2 V at 310 GB/s).
  Watts reference{0.0};
  Millivolts v_nom{1200};

  /// Fig 2 value: P(series, v) / reference.
  [[nodiscard]] double normalized(const PowerSeries& s, std::size_t i) const;
  /// Fig 3 value: (P/V^2) normalized to the same series' value at v_nom.
  [[nodiscard]] double alpha_clf_normalized(const PowerSeries& s,
                                            std::size_t i) const;
  /// Power-savings factor P(v_nom)/P(v) within one series.
  [[nodiscard]] std::optional<double> savings_factor(const PowerSeries& s,
                                                     Millivolts v) const;
};

/// Resume state for an interrupted run: the (possibly partial) series
/// measured so far, matched to the config's port counts by `ports`.
struct PowerResume {
  std::vector<PowerSeries> series;
};

class PowerCharacterizer {
 public:
  PowerCharacterizer(board::Vcu128Board& board, PowerSweepConfig config);

  /// Post-row checkpoint hook: fires after each measured (voltage, power)
  /// row with the in-progress series; returning false halts the run (it
  /// returns kUnavailable).
  using StepFn = std::function<bool(const PowerSeries&)>;

  /// Runs the sweep.  Measurements go through the board's snapshot path
  /// (per-step frozen rail + counter-seeded per-sample noise) whether or
  /// not a pool is given, so serial and parallel runs agree bit-for-bit.
  /// With `resume`, already-measured rows are replayed instead of
  /// re-measured (the caller must also restore the board's power-snapshot
  /// sequence number so later samples draw the original noise streams).
  Result<PowerCharacterization> run(ThreadPool* pool = nullptr,
                                    const PowerResume* resume = nullptr,
                                    const StepFn& on_step = nullptr);

 private:
  board::Vcu128Board& board_;
  PowerSweepConfig config_;
};

}  // namespace hbmvolt::core
