#include "core/campaign.hpp"

#include <climits>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <optional>

#include "common/log.hpp"
#include "core/parallel.hpp"

#ifndef HBMVOLT_GIT_DESCRIBE
#define HBMVOLT_GIT_DESCRIBE "unknown"
#endif

namespace hbmvolt::core {
namespace {

/// Run manifest: everything needed to identify and compare runs -- the
/// knobs, the build, the phase timing, and the metric totals.
std::string manifest_json(const CampaignConfig& config,
                          const CampaignResult& result,
                          const telemetry::Telemetry& telemetry) {
  using telemetry::json_quoted;
  const auto sweep = [](const SweepConfig& s) {
    return "{\"start_mv\":" + std::to_string(s.start.value) +
           ",\"stop_mv\":" + std::to_string(s.stop.value) +
           ",\"step_mv\":" + std::to_string(s.step_mv) + "}";
  };

  std::string out = "{\n";
  out += "  \"tool\": \"hbmvolt\",\n";
  out += "  \"git\": " + json_quoted(HBMVOLT_GIT_DESCRIBE) + ",\n";
  out += "  \"config\": {\n";
  out += "    \"output_dir\": " + json_quoted(config.output_dir) + ",\n";
  out += "    \"threads\": " + std::to_string(config.threads) + ",\n";
  out += "    \"telemetry\": " +
         std::string(config.telemetry.enabled ? "true" : "false") + ",\n";
  out += "    \"reliability_sweep\": " + sweep(config.reliability.sweep) +
         ",\n";
  out += "    \"reliability_batch_size\": " +
         std::to_string(config.reliability.batch_size) + ",\n";
  out += "    \"power_sweep\": " + sweep(config.power.sweep) + ",\n";
  out += "    \"power_samples\": " + std::to_string(config.power.samples) +
         "\n";
  out += "  },\n";

  out += "  \"timing\": [";
  bool first = true;
  for (const telemetry::SpanStat& stat : telemetry.span_stats()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"span\": " + json_quoted(stat.name) +
           ", \"count\": " + std::to_string(stat.count) +
           ", \"total_ns\": " + std::to_string(stat.total_ns) + "}";
  }
  out += first ? "],\n" : "\n  ],\n";

  out += "  \"metrics\": {";
  first = true;
  for (const auto& [name, value] : telemetry.metrics().counter_values()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + json_quoted(name) + ": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"files\": [";
  first = true;
  for (const std::string& file : result.files_written) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + json_quoted(file);
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace

HeadlineNumbers collect_headline_numbers(const faults::FaultMap& map,
                                         const PowerCharacterization& power,
                                         Millivolts v_nom) {
  HeadlineNumbers numbers;
  numbers.guardband = analyze_guardband(map, v_nom);
  numbers.stack_variation = analyze_stack_variation(map);
  numbers.pattern_variation = analyze_pattern_variation(map);

  if (!power.series.empty()) {
    const auto& full = power.series.back();
    // Snap landmark voltages to the nearest measured grid point so coarse
    // power sweeps still yield headline numbers.
    const auto nearest = [&full](Millivolts target) -> Millivolts {
      Millivolts best{0};
      int distance = INT_MAX;
      for (const Millivolts v : full.voltages) {
        const int d = std::abs(v.value - target.value);
        if (d < distance) {
          distance = d;
          best = v;
        }
      }
      return best;
    };
    numbers.savings_at_vmin =
        power.savings_factor(full, nearest(numbers.guardband.v_min))
            .value_or(0.0);
    const Millivolts near_850 = nearest(Millivolts{850});
    numbers.savings_at_850mv =
        power.savings_factor(full, near_850).value_or(0.0);
    const auto idle_nominal = power.series.front().power_at(v_nom);
    if (idle_nominal.has_value() && power.reference.value > 0) {
      numbers.idle_fraction = idle_nominal->value / power.reference.value;
    }
    for (std::size_t i = 0; i < full.voltages.size(); ++i) {
      if (full.voltages[i] == near_850) {
        numbers.alpha_drop_at_850mv =
            1.0 - power.alpha_clf_normalized(full, i);
      }
    }
  }
  return numbers;
}

Campaign::Campaign(board::Vcu128Board& board, CampaignConfig config)
    : board_(board), config_(std::move(config)) {}

Result<CampaignResult> Campaign::run() {
  // The telemetry scope covers the whole run.  A disabled config installs
  // nothing, so every instrumentation site below costs one branch.
  telemetry::Telemetry telemetry(config_.telemetry);
  telemetry::ScopedTelemetry scoped(telemetry);

  // threads == 1 keeps the serial reference path (no pool at all); any
  // other value fans the per-PC work out, with byte-identical results.
  std::unique_ptr<ThreadPool> pool;
  if (config_.threads != 1) {
    pool = std::make_unique<ThreadPool>(config_.threads);
  }

  std::optional<CampaignResult> result;
  {
    telemetry::Span campaign_span("campaign");

    std::optional<Result<faults::FaultMap>> map;
    {
      telemetry::Span span("campaign.reliability");
      HBMVOLT_LOG_INFO("campaign: reliability sweep (Algorithm 1)");
      ReliabilityTester tester(board_, config_.reliability);
      map.emplace(tester.run(pool.get()));
    }
    if (!map->is_ok()) return map->status();

    std::optional<Result<PowerCharacterization>> power;
    {
      telemetry::Span span("campaign.power");
      HBMVOLT_LOG_INFO("campaign: power sweep");
      PowerCharacterizer characterizer(board_, config_.power);
      power.emplace(characterizer.run(pool.get()));
    }
    if (!power->is_ok()) return power->status();

    telemetry::Span analyze_span("campaign.analyze");
    const Millivolts v_nom = board_.config().regulator_config.vout_default;

    result.emplace(CampaignResult{
        /*guardband=*/analyze_guardband(map->value(), v_nom),
        /*headline=*/
        collect_headline_numbers(map->value(), power->value(), v_nom),
        /*fault_map=*/std::move(*map).value(),
        /*power=*/std::move(*power).value(),
        /*tradeoff_points=*/{},
        /*files_written=*/{},
        /*telemetry_summary=*/{}});
    // The analyzer must reference the map's final home (result->fault_map),
    // not the moved-from local.
    TradeoffAnalyzer analyzer(result->fault_map, v_nom,
                              &board_.power_model());
    result->tradeoff_points = analyzer.analyze(config_.tradeoff);
  }

  // Join the workers before export so every span track is final.
  pool.reset();

  if (!config_.dry_run) {
    HBMVOLT_RETURN_IF_ERROR(write_artifacts(*result, telemetry));
  }
  if (config_.telemetry.enabled) {
    result->telemetry_summary = telemetry.summary();
  }
  return std::move(*result);
}

Status Campaign::write_artifacts(CampaignResult& result,
                                 telemetry::Telemetry& telemetry) const {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(config_.output_dir, ec);
  if (ec) {
    return unavailable("cannot create output directory: " + ec.message());
  }

  const auto write_file = [&](const std::string& name,
                              const std::string& content) -> Status {
    const fs::path path = fs::path(config_.output_dir) / name;
    std::ofstream out(path);
    if (!out) return unavailable("cannot open " + path.string());
    out << content;
    if (!out.good()) return unavailable("write failed: " + path.string());
    result.files_written.push_back(path.string());
    return Status::ok();
  };

  {
    // Scoped so the span lands in the exports below.
    telemetry::Span span("campaign.artifacts");
    HBMVOLT_RETURN_IF_ERROR(
        write_file("fig2.csv", to_csv_fig2(result.power)));
    HBMVOLT_RETURN_IF_ERROR(
        write_file("fig4.csv", to_csv_fig4(result.fault_map)));
    HBMVOLT_RETURN_IF_ERROR(
        write_file("fig5.csv", to_csv_fig5(result.fault_map)));
    HBMVOLT_RETURN_IF_ERROR(write_file(
        "fig6.csv", to_csv_fig6(result.tradeoff_points, config_.tradeoff)));

    std::string summary;
    summary += render_headline(result.headline);
    summary += "\n";
    summary += render_fig2(result.power);
    summary += "\n";
    summary += render_fig3(result.power);
    summary += "\n";
    summary += render_fig4(result.fault_map);
    summary += "\n";
    summary += render_fig5(result.fault_map, 20);
    summary += "\n";
    summary += render_fig6(result.tradeoff_points, config_.tradeoff);
    HBMVOLT_RETURN_IF_ERROR(write_file("summary.txt", summary));
  }

  // Observability artifacts: the raw event stream and the Chrome trace
  // when enabled, and the run manifest always (it lists the files above,
  // so it goes last and is not in its own list).
  if (config_.telemetry.enabled) {
    HBMVOLT_RETURN_IF_ERROR(
        write_file("telemetry.jsonl", telemetry.to_jsonl()));
    HBMVOLT_RETURN_IF_ERROR(
        write_file("trace.json", telemetry.to_chrome_trace()));
  }
  return write_file("manifest.json",
                    manifest_json(config_, result, telemetry));
}

}  // namespace hbmvolt::core
