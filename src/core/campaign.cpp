#include "core/campaign.hpp"

#include <climits>
#include <cmath>
#include <filesystem>
#include <fstream>

#include "common/log.hpp"
#include "core/parallel.hpp"

namespace hbmvolt::core {

HeadlineNumbers collect_headline_numbers(const faults::FaultMap& map,
                                         const PowerCharacterization& power,
                                         Millivolts v_nom) {
  HeadlineNumbers numbers;
  numbers.guardband = analyze_guardband(map, v_nom);
  numbers.stack_variation = analyze_stack_variation(map);
  numbers.pattern_variation = analyze_pattern_variation(map);

  if (!power.series.empty()) {
    const auto& full = power.series.back();
    // Snap landmark voltages to the nearest measured grid point so coarse
    // power sweeps still yield headline numbers.
    const auto nearest = [&full](Millivolts target) -> Millivolts {
      Millivolts best{0};
      int distance = INT_MAX;
      for (const Millivolts v : full.voltages) {
        const int d = std::abs(v.value - target.value);
        if (d < distance) {
          distance = d;
          best = v;
        }
      }
      return best;
    };
    numbers.savings_at_vmin =
        power.savings_factor(full, nearest(numbers.guardband.v_min))
            .value_or(0.0);
    const Millivolts near_850 = nearest(Millivolts{850});
    numbers.savings_at_850mv =
        power.savings_factor(full, near_850).value_or(0.0);
    const auto idle_nominal = power.series.front().power_at(v_nom);
    if (idle_nominal.has_value() && power.reference.value > 0) {
      numbers.idle_fraction = idle_nominal->value / power.reference.value;
    }
    for (std::size_t i = 0; i < full.voltages.size(); ++i) {
      if (full.voltages[i] == near_850) {
        numbers.alpha_drop_at_850mv =
            1.0 - power.alpha_clf_normalized(full, i);
      }
    }
  }
  return numbers;
}

Campaign::Campaign(board::Vcu128Board& board, CampaignConfig config)
    : board_(board), config_(std::move(config)) {}

Result<CampaignResult> Campaign::run() {
  // threads == 1 keeps the serial reference path (no pool at all); any
  // other value fans the per-PC work out, with byte-identical results.
  std::unique_ptr<ThreadPool> pool;
  if (config_.threads != 1) {
    pool = std::make_unique<ThreadPool>(config_.threads);
  }

  HBMVOLT_LOG_INFO("campaign: reliability sweep (Algorithm 1)");
  ReliabilityTester tester(board_, config_.reliability);
  auto map = tester.run(pool.get());
  if (!map.is_ok()) return map.status();

  HBMVOLT_LOG_INFO("campaign: power sweep");
  PowerCharacterizer characterizer(board_, config_.power);
  auto power = characterizer.run(pool.get());
  if (!power.is_ok()) return power.status();

  const Millivolts v_nom = board_.config().regulator_config.vout_default;

  CampaignResult result{
      /*guardband=*/analyze_guardband(map.value(), v_nom),
      /*headline=*/
      collect_headline_numbers(map.value(), power.value(), v_nom),
      /*fault_map=*/std::move(map).value(),
      /*power=*/std::move(power).value(),
      /*tradeoff_points=*/{},
      /*files_written=*/{}};
  // The analyzer must reference the map's final home (result.fault_map),
  // not the moved-from local.
  TradeoffAnalyzer analyzer(result.fault_map, v_nom, &board_.power_model());
  result.tradeoff_points = analyzer.analyze(config_.tradeoff);

  if (!config_.dry_run) {
    HBMVOLT_RETURN_IF_ERROR(write_artifacts(result));
  }
  return result;
}

Status Campaign::write_artifacts(CampaignResult& result) const {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(config_.output_dir, ec);
  if (ec) {
    return unavailable("cannot create output directory: " + ec.message());
  }

  const auto write_file = [&](const std::string& name,
                              const std::string& content) -> Status {
    const fs::path path = fs::path(config_.output_dir) / name;
    std::ofstream out(path);
    if (!out) return unavailable("cannot open " + path.string());
    out << content;
    if (!out.good()) return unavailable("write failed: " + path.string());
    result.files_written.push_back(path.string());
    return Status::ok();
  };

  HBMVOLT_RETURN_IF_ERROR(write_file("fig2.csv", to_csv_fig2(result.power)));
  HBMVOLT_RETURN_IF_ERROR(
      write_file("fig4.csv", to_csv_fig4(result.fault_map)));
  HBMVOLT_RETURN_IF_ERROR(
      write_file("fig5.csv", to_csv_fig5(result.fault_map)));
  HBMVOLT_RETURN_IF_ERROR(write_file(
      "fig6.csv", to_csv_fig6(result.tradeoff_points, config_.tradeoff)));

  std::string summary;
  summary += render_headline(result.headline);
  summary += "\n";
  summary += render_fig2(result.power);
  summary += "\n";
  summary += render_fig3(result.power);
  summary += "\n";
  summary += render_fig4(result.fault_map);
  summary += "\n";
  summary += render_fig5(result.fault_map, 20);
  summary += "\n";
  summary += render_fig6(result.tradeoff_points, config_.tradeoff);
  return write_file("summary.txt", summary);
}

}  // namespace hbmvolt::core
