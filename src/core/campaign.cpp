#include "core/campaign.hpp"

#include <bit>
#include <climits>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <optional>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "core/checkpoint.hpp"
#include "core/parallel.hpp"

#ifndef HBMVOLT_GIT_DESCRIBE
#define HBMVOLT_GIT_DESCRIBE "unknown"
#endif

namespace hbmvolt::core {
namespace {

/// Run manifest: everything needed to identify and compare runs -- the
/// knobs, the build, the phase timing, and the metric totals.
std::string manifest_json(const CampaignConfig& config,
                          const CampaignResult& result,
                          const telemetry::Telemetry& telemetry) {
  using telemetry::json_quoted;
  const auto sweep = [](const SweepConfig& s) {
    return "{\"start_mv\":" + std::to_string(s.start.value) +
           ",\"stop_mv\":" + std::to_string(s.stop.value) +
           ",\"step_mv\":" + std::to_string(s.step_mv) + "}";
  };

  std::string out = "{\n";
  out += "  \"tool\": \"hbmvolt\",\n";
  out += "  \"git\": " + json_quoted(HBMVOLT_GIT_DESCRIBE) + ",\n";
  out += "  \"config\": {\n";
  out += "    \"output_dir\": " + json_quoted(config.output_dir) + ",\n";
  out += "    \"threads\": " + std::to_string(config.threads) + ",\n";
  out += "    \"telemetry\": " +
         std::string(config.telemetry.enabled ? "true" : "false") + ",\n";
  out += "    \"reliability_sweep\": " + sweep(config.reliability.sweep) +
         ",\n";
  out += "    \"reliability_batch_size\": " +
         std::to_string(config.reliability.batch_size) + ",\n";
  out += "    \"power_sweep\": " + sweep(config.power.sweep) + ",\n";
  out += "    \"power_samples\": " + std::to_string(config.power.samples) +
         "\n";
  out += "  },\n";

  out += "  \"timing\": [";
  bool first = true;
  for (const telemetry::SpanStat& stat : telemetry.span_stats()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"span\": " + json_quoted(stat.name) +
           ", \"count\": " + std::to_string(stat.count) +
           ", \"total_ns\": " + std::to_string(stat.total_ns) + "}";
  }
  out += first ? "],\n" : "\n  ],\n";

  out += "  \"metrics\": {";
  first = true;
  for (const auto& [name, value] : telemetry.metrics().counter_values()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + json_quoted(name) + ": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"errors\": [";
  first = true;
  for (const std::string& error : result.errors) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + json_quoted(error);
  }
  out += first ? "],\n" : "\n  ],\n";

  out += "  \"files\": [";
  first = true;
  for (const std::string& file : result.files_written) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + json_quoted(file);
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace

HeadlineNumbers collect_headline_numbers(const faults::FaultMap& map,
                                         const PowerCharacterization& power,
                                         Millivolts v_nom) {
  HeadlineNumbers numbers;
  numbers.guardband = analyze_guardband(map, v_nom);
  numbers.stack_variation = analyze_stack_variation(map);
  numbers.pattern_variation = analyze_pattern_variation(map);

  if (!power.series.empty()) {
    const auto& full = power.series.back();
    // Snap landmark voltages to the nearest measured grid point so coarse
    // power sweeps still yield headline numbers.
    const auto nearest = [&full](Millivolts target) -> Millivolts {
      Millivolts best{0};
      int distance = INT_MAX;
      for (const Millivolts v : full.voltages) {
        const int d = std::abs(v.value - target.value);
        if (d < distance) {
          distance = d;
          best = v;
        }
      }
      return best;
    };
    numbers.savings_at_vmin =
        power.savings_factor(full, nearest(numbers.guardband.v_min))
            .value_or(0.0);
    const Millivolts near_850 = nearest(Millivolts{850});
    numbers.savings_at_850mv =
        power.savings_factor(full, near_850).value_or(0.0);
    const auto idle_nominal = power.series.front().power_at(v_nom);
    if (idle_nominal.has_value() && power.reference.value > 0) {
      numbers.idle_fraction = idle_nominal->value / power.reference.value;
    }
    for (std::size_t i = 0; i < full.voltages.size(); ++i) {
      if (full.voltages[i] == near_850) {
        numbers.alpha_drop_at_850mv =
            1.0 - power.alpha_clf_normalized(full, i);
      }
    }
  }
  return numbers;
}

Campaign::Campaign(board::Vcu128Board& board, CampaignConfig config)
    : board_(board), config_(std::move(config)) {}

std::uint64_t Campaign::config_fingerprint() const {
  const auto& board = board_.config();
  std::uint64_t fp = 0xC4A05F1;
  const auto fold = [&fp](std::uint64_t value) { fp = mix_seed(fp, value); };
  const auto fold_double = [&fold](double value) {
    fold(std::bit_cast<std::uint64_t>(value));
  };
  const auto fold_sweep = [&fold](const SweepConfig& sweep) {
    fold(static_cast<std::uint64_t>(sweep.start.value));
    fold(static_cast<std::uint64_t>(sweep.stop.value));
    fold(static_cast<std::uint64_t>(sweep.step_mv));
  };
  // Board physics.
  fold(board.seed);
  fold(board.geometry.stacks);
  fold(board.geometry.channels_per_stack);
  fold(board.geometry.pcs_per_channel);
  fold(board.geometry.bits_per_pc);
  fold(board.monitor_config.seed);
  fold_double(board.monitor_config.noise_sigma_amps);
  fold(static_cast<std::uint64_t>(board.regulator_config.vout_default.value));
  // Reliability sweep.
  fold_sweep(config_.reliability.sweep);
  fold(config_.reliability.batch_size);
  fold(config_.reliability.mem_beats);
  fold(config_.reliability.pattern_ones ? 1 : 0);
  fold(config_.reliability.pattern_zeros ? 1 : 0);
  fold(static_cast<std::uint64_t>(config_.reliability.crash_policy));
  fold(config_.reliability.crash_retries);
  // Power sweep.
  fold_sweep(config_.power.sweep);
  for (const unsigned ports : config_.power.port_counts) fold(ports);
  fold(config_.power.samples);
  fold(config_.power.traffic_beats);
  // Chaos schedule: a different schedule is a different run -- resuming
  // across one would splice fault histories.
  fold(config_.chaos.seed);
  fold_double(config_.chaos.pmbus_nack_rate);
  fold_double(config_.chaos.wire_corrupt_rate);
  fold_double(config_.chaos.ina_dropout_rate);
  fold_double(config_.chaos.axi_fail_rate);
  fold_double(config_.chaos.spurious_crash_rate);
  fold(config_.chaos.cooldown);
  fold(static_cast<std::uint64_t>(config_.chaos.regulator_dies_after));
  fold(static_cast<std::uint64_t>(config_.chaos.monitor_dies_after));
  return fp;
}

namespace {

/// Rebuilds the merged FaultMap from checkpointed rows.
faults::FaultMap map_from_checkpoint(const hbm::HbmGeometry& geometry,
                                     const CampaignCheckpoint& ckpt) {
  faults::FaultMap map(geometry);
  for (const CheckpointFaultRow& row : ckpt.reliability) {
    const Millivolts v{row.mv};
    if (row.crashed) map.record_crash(v);
    for (unsigned pc = 0; pc < row.pcs.size(); ++pc) {
      map.record(v, pc, row.pcs[pc]);
    }
  }
  return map;
}

/// Rebuilds a (possibly partial) power characterization from checkpointed
/// rows -- the degraded-result path when the power phase died.
PowerCharacterization power_from_checkpoint(const board::Vcu128Board& board,
                                            const CampaignCheckpoint& ckpt,
                                            Millivolts v_nom) {
  PowerCharacterization out;
  out.v_nom = v_nom;
  const double total =
      static_cast<double>(board.geometry().total_pcs());
  for (const CheckpointPowerSeries& series : ckpt.power) {
    PowerSeries s;
    s.ports = series.ports;
    s.utilization = total > 0.0 ? series.ports / total : 0.0;
    for (const CheckpointPowerRow& row : series.rows) {
      s.voltages.push_back(Millivolts{row.mv});
      s.power.push_back(row.watts);
    }
    out.series.push_back(std::move(s));
  }
  if (!out.series.empty()) {
    const auto* max_series = &out.series.front();
    for (const auto& s : out.series) {
      if (s.ports > max_series->ports) max_series = &s;
    }
    if (const auto p = max_series->power_at(v_nom)) out.reference = *p;
  }
  return out;
}

}  // namespace

Result<CampaignResult> Campaign::run() {
  namespace fs = std::filesystem;
  // The telemetry scope covers the whole run.  A disabled config installs
  // nothing, so every instrumentation site below costs one branch.
  telemetry::Telemetry telemetry(config_.telemetry);
  telemetry::ScopedTelemetry scoped(telemetry);

  // Chaos goes in after board bring-up (the constructor's REQUIRE-guarded
  // setup must never see injected faults) and uninstalls on scope exit.
  std::optional<chaos::ChaosInjector> injector;
  if (config_.chaos.any()) {
    injector.emplace(board_, config_.chaos);
  }

  // threads == 1 keeps the serial reference path (no pool at all); any
  // other value fans the per-PC work out, with byte-identical results.
  std::unique_ptr<ThreadPool> pool;
  if (config_.threads != 1) {
    pool = std::make_unique<ThreadPool>(config_.threads);
  }

  // ---- Checkpoint load / resume ----
  const std::uint64_t fingerprint = config_fingerprint();
  const bool checkpointing = !config_.dry_run && config_.checkpoint;
  const std::string ckpt_path =
      (fs::path(config_.output_dir) / "checkpoint.json").string();
  CampaignCheckpoint ckpt;
  ckpt.fingerprint = fingerprint;
  bool resumed = false;
  if (checkpointing) {
    std::error_code ec;
    fs::create_directories(config_.output_dir, ec);
    auto loaded = load_checkpoint(ckpt_path);
    if (loaded.is_ok()) {
      if (loaded.value().fingerprint == fingerprint) {
        ckpt = std::move(loaded).value();
        resumed = true;
        HBMVOLT_LOG_INFO("campaign: resuming from %s (%zu reliability "
                         "steps, %zu power series)",
                         ckpt_path.c_str(), ckpt.reliability.size(),
                         ckpt.power.size());
        telemetry.count("checkpoint.loads");
      } else {
        HBMVOLT_LOG_WARN("campaign: checkpoint at %s belongs to a different "
                         "configuration; starting fresh",
                         ckpt_path.c_str());
      }
    } else if (loaded.status().code() != StatusCode::kNotFound) {
      HBMVOLT_LOG_WARN("campaign: unreadable checkpoint (%s); starting "
                       "fresh",
                       loaded.status().to_string().c_str());
    }
  }

  // Shared step bookkeeping: every completed sweep step saves the
  // checkpoint, and halt_after_steps simulates dying after step N.
  unsigned steps_completed = 0;
  bool halted = false;
  bool save_warned = false;
  const auto write_ckpt = [&]() -> bool {
    if (checkpointing) {
      const Status saved = save_checkpoint(ckpt, ckpt_path);
      if (saved.is_ok()) {
        telemetry.count("checkpoint.writes");
      } else {
        // A broken checkpoint disk must not kill the measurement run; the
        // campaign just loses resumability.
        telemetry.count("checkpoint.write_failures");
        if (!save_warned) {
          save_warned = true;
          HBMVOLT_LOG_WARN("campaign: checkpoint save failed (%s); "
                           "continuing without resumability",
                           saved.to_string().c_str());
        }
      }
    }
    ++steps_completed;
    if (config_.halt_after_steps > 0 &&
        steps_completed >= config_.halt_after_steps) {
      halted = true;
      return false;
    }
    return true;
  };

  std::vector<std::string> errors;
  std::optional<CampaignResult> result;
  {
    telemetry::Span campaign_span("campaign");
    const Millivolts v_nom = board_.config().regulator_config.vout_default;

    // ---- Reliability phase ----
    faults::FaultMap restored = map_from_checkpoint(board_.geometry(), ckpt);
    std::optional<Result<faults::FaultMap>> map;
    if (resumed && ckpt.reliability_done) {
      map.emplace(std::move(restored));
    } else {
      telemetry::Span span("campaign.reliability");
      HBMVOLT_LOG_INFO("campaign: reliability sweep (Algorithm 1)");
      ReliabilityTester tester(board_, config_.reliability);
      ReliabilityResume resume;
      resume.base = &restored;
      for (const CheckpointFaultRow& row : ckpt.reliability) {
        resume.completed.push_back({Millivolts{row.mv}, row.crashed});
      }
      ReliabilityTester::StepFn on_step;
      if (checkpointing || config_.halt_after_steps > 0) {
        on_step = [&](Millivolts v, const faults::FaultMap& m) {
          if (const faults::VoltageObservation* obs = m.at(v)) {
            ckpt.reliability.push_back({v.value, obs->crashed, obs->pcs});
          }
          return write_ckpt();
        };
      }
      map.emplace(tester.run(pool.get(), resumed ? &resume : nullptr,
                             on_step));
      if (map->is_ok()) {
        ckpt.reliability_done = true;
        if (checkpointing && !halted) (void)save_checkpoint(ckpt, ckpt_path);
      }
    }
    if (!map->is_ok() && !halted) {
      // Persistent fault mid-sweep: keep what was measured, report a
      // structured error, and continue with partial data.
      telemetry.count("campaign.phase_errors");
      errors.push_back("reliability: " + map->status().to_string());
      HBMVOLT_LOG_WARN("campaign: reliability phase failed (%s); degrading "
                       "to partial results",
                       map->status().to_string().c_str());
      map.emplace(map_from_checkpoint(board_.geometry(), ckpt));
    }

    // ---- Power phase ----
    std::optional<Result<PowerCharacterization>> power;
    if (!halted && errors.empty()) {
      telemetry::Span span("campaign.power");
      HBMVOLT_LOG_INFO("campaign: power sweep");
      PowerCharacterizer characterizer(board_, config_.power);
      PowerResume resume;
      if (resumed) {
        // Replay the snapshot sequence so resumed measurements draw the
        // original per-sample noise streams.
        board_.set_power_snapshot_seq(ckpt.power_snapshot_seq);
        resume.series =
            power_from_checkpoint(board_, ckpt, v_nom).series;
      }
      PowerCharacterizer::StepFn on_step;
      if (checkpointing || config_.halt_after_steps > 0) {
        on_step = [&](const PowerSeries& s) {
          CheckpointPowerSeries* slot = nullptr;
          for (CheckpointPowerSeries& existing : ckpt.power) {
            if (existing.ports == s.ports) {
              slot = &existing;
              break;
            }
          }
          if (slot == nullptr) {
            ckpt.power.push_back({s.ports, {}});
            slot = &ckpt.power.back();
          }
          slot->rows.clear();
          for (std::size_t i = 0; i < s.voltages.size(); ++i) {
            slot->rows.push_back({s.voltages[i].value, s.power[i]});
          }
          ckpt.power_snapshot_seq = board_.power_snapshot_seq();
          return write_ckpt();
        };
      }
      power.emplace(characterizer.run(pool.get(),
                                      resumed ? &resume : nullptr, on_step));
    }
    if (!power.has_value() || (!power->is_ok() && !halted)) {
      if (power.has_value() && !power->is_ok()) {
        telemetry.count("campaign.phase_errors");
        errors.push_back("power: " + power->status().to_string());
        HBMVOLT_LOG_WARN("campaign: power phase failed (%s); degrading to "
                         "partial results",
                         power->status().to_string().c_str());
      }
      power.emplace(power_from_checkpoint(board_, ckpt, v_nom));
    }

    if (halted) {
      // Simulated kill: the checkpoint is on disk, nothing else is
      // written.  A re-run against the same output_dir resumes.
      HBMVOLT_LOG_INFO("campaign: halted after %u step(s); checkpoint "
                       "retained",
                       steps_completed);
      CampaignResult out{/*guardband=*/{},
                         /*headline=*/{},
                         /*fault_map=*/map_from_checkpoint(
                             board_.geometry(), ckpt),
                         /*power=*/power_from_checkpoint(board_, ckpt,
                                                         v_nom),
                         /*tradeoff_points=*/{},
                         /*files_written=*/{},
                         /*telemetry_summary=*/{},
                         /*errors=*/std::move(errors),
                         /*halted=*/true};
      pool.reset();
      if (config_.telemetry.enabled) {
        out.telemetry_summary = telemetry.summary();
      }
      return out;
    }

    telemetry::Span analyze_span("campaign.analyze");
    result.emplace(CampaignResult{
        /*guardband=*/analyze_guardband(map->value(), v_nom),
        /*headline=*/
        collect_headline_numbers(map->value(), power->value(), v_nom),
        /*fault_map=*/std::move(*map).value(),
        /*power=*/std::move(*power).value(),
        /*tradeoff_points=*/{},
        /*files_written=*/{},
        /*telemetry_summary=*/{},
        /*errors=*/std::move(errors),
        /*halted=*/false});
    // The analyzer must reference the map's final home (result->fault_map),
    // not the moved-from local.
    TradeoffAnalyzer analyzer(result->fault_map, v_nom,
                              &board_.power_model());
    result->tradeoff_points = analyzer.analyze(config_.tradeoff);
  }

  // Join the workers before export so every span track is final.
  pool.reset();

  if (!config_.dry_run) {
    HBMVOLT_RETURN_IF_ERROR(write_artifacts(*result, telemetry));
  }
  if (checkpointing) {
    if (result->errors.empty()) {
      // Clean finish: the artifacts are complete, the checkpoint has
      // served its purpose.
      std::error_code ec;
      fs::remove(ckpt_path, ec);
    } else {
      HBMVOLT_LOG_WARN("campaign: finished with %zu error(s); checkpoint "
                       "kept for retry",
                       result->errors.size());
    }
  }
  if (config_.telemetry.enabled) {
    result->telemetry_summary = telemetry.summary();
  }
  return std::move(*result);
}

Status Campaign::write_artifacts(CampaignResult& result,
                                 telemetry::Telemetry& telemetry) const {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(config_.output_dir, ec);
  if (ec) {
    return unavailable("cannot create output directory: " + ec.message());
  }

  const auto write_file = [&](const std::string& name,
                              const std::string& content) -> Status {
    const fs::path path = fs::path(config_.output_dir) / name;
    std::ofstream out(path);
    if (!out) return unavailable("cannot open " + path.string());
    out << content;
    if (!out.good()) return unavailable("write failed: " + path.string());
    result.files_written.push_back(path.string());
    return Status::ok();
  };

  {
    // Scoped so the span lands in the exports below.
    telemetry::Span span("campaign.artifacts");
    HBMVOLT_RETURN_IF_ERROR(
        write_file("fig2.csv", to_csv_fig2(result.power)));
    HBMVOLT_RETURN_IF_ERROR(
        write_file("fig4.csv", to_csv_fig4(result.fault_map)));
    HBMVOLT_RETURN_IF_ERROR(
        write_file("fig5.csv", to_csv_fig5(result.fault_map)));
    HBMVOLT_RETURN_IF_ERROR(write_file(
        "fig6.csv", to_csv_fig6(result.tradeoff_points, config_.tradeoff)));

    std::string summary;
    summary += render_headline(result.headline);
    summary += "\n";
    summary += render_fig2(result.power);
    summary += "\n";
    summary += render_fig3(result.power);
    summary += "\n";
    summary += render_fig4(result.fault_map);
    summary += "\n";
    summary += render_fig5(result.fault_map, 20);
    summary += "\n";
    summary += render_fig6(result.tradeoff_points, config_.tradeoff);
    if (!result.errors.empty()) {
      // Only degraded runs grow this section, so a clean run under
      // transient chaos stays byte-identical to the fault-free summary.
      summary += "\nerrors\n------\n";
      for (const std::string& error : result.errors) {
        summary += error;
        summary += "\n";
      }
    }
    HBMVOLT_RETURN_IF_ERROR(write_file("summary.txt", summary));
  }

  // Observability artifacts: the raw event stream and the Chrome trace
  // when enabled, and the run manifest always (it lists the files above,
  // so it goes last and is not in its own list).
  if (config_.telemetry.enabled) {
    HBMVOLT_RETURN_IF_ERROR(
        write_file("telemetry.jsonl", telemetry.to_jsonl()));
    HBMVOLT_RETURN_IF_ERROR(
        write_file("trace.json", telemetry.to_chrome_trace()));
  }
  return write_file("manifest.json",
                    manifest_json(config_, result, telemetry));
}

}  // namespace hbmvolt::core
