#include "core/guardband.hpp"

namespace hbmvolt::core {

GuardbandResult analyze_guardband(const faults::FaultMap& map,
                                  Millivolts v_nom) {
  GuardbandResult result;
  result.v_nom = v_nom;

  const auto voltages = map.voltages();  // descending
  for (const Millivolts v : voltages) {
    const auto* observation = map.at(v);
    if (observation == nullptr) continue;
    if (observation->crashed) {
      result.crash_observed = true;
      continue;
    }
    result.v_critical = v;  // keeps updating: ends at the lowest survivor
    const auto record = map.device_record(v);
    if (record.total_flips() > 0) {
      if (result.v_first_fault.value == 0) result.v_first_fault = v;
    } else if (result.v_first_fault.value == 0) {
      result.v_min = v;  // lowest fault-free voltage seen so far
    }
  }
  if (result.v_min.value > 0) {
    result.guardband_fraction =
        static_cast<double>(v_nom.value - result.v_min.value) /
        static_cast<double>(v_nom.value);
  }
  return result;
}

Result<GuardbandResult> find_guardband(board::Vcu128Board& board,
                                       ReliabilityConfig config) {
  ReliabilityTester tester(board, config);
  auto map = tester.run();
  if (!map.is_ok()) return map.status();
  return analyze_guardband(map.value(),
                           board.config().regulator_config.vout_default);
}

}  // namespace hbmvolt::core
