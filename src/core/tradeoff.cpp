#include "core/tradeoff.hpp"

#include <algorithm>

#include "common/status.hpp"

namespace hbmvolt::core {

TradeoffAnalyzer::TradeoffAnalyzer(const faults::FaultMap& map,
                                   Millivolts v_nom,
                                   const power::PowerModel* power_model)
    : map_(map), v_nom_(v_nom), power_model_(power_model) {}

double TradeoffAnalyzer::savings_factor(Millivolts v) const {
  if (v.value <= 0) return 1.0;
  if (power_model_ != nullptr) {
    const double p_nom = power_model_->power(v_nom_, 1.0).value;
    const double p_v = power_model_->power(v, 1.0).value;
    return p_v > 0.0 ? p_nom / p_v : 1.0;
  }
  const double ratio = v_nom_.volts() / v.volts();
  return ratio * ratio;
}

std::vector<TradeoffPoint> TradeoffAnalyzer::analyze(
    const TradeoffConfig& config) const {
  HBMVOLT_REQUIRE(!config.tolerable_rates.empty(), "need at least one rate");
  std::vector<TradeoffPoint> points;
  for (const Millivolts v : map_.voltages()) {
    TradeoffPoint point;
    point.voltage = v;
    point.savings_factor = savings_factor(v);
    const auto* observation = map_.at(v);
    point.crashed = observation != nullptr && observation->crashed;
    point.usable_pcs.reserve(config.tolerable_rates.size());
    for (const double rate : config.tolerable_rates) {
      point.usable_pcs.push_back(point.crashed ? 0 : map_.usable_pcs(v, rate));
    }
    points.push_back(std::move(point));
  }
  return points;
}

std::optional<UndervoltPlan> TradeoffAnalyzer::plan(
    unsigned required_pcs, double tolerable_rate) const {
  std::optional<UndervoltPlan> best;
  for (const Millivolts v : map_.voltages()) {  // descending voltage
    const auto* observation = map_.at(v);
    if (observation == nullptr || observation->crashed) continue;

    std::vector<unsigned> usable;
    for (unsigned pc = 0; pc < map_.geometry().total_pcs(); ++pc) {
      if (map_.pc_record(v, pc).rate() <= tolerable_rate) {
        usable.push_back(pc);
      }
    }
    if (usable.size() < required_pcs) continue;

    // Lower voltage always saves more power, so keep overwriting: the
    // last satisfying voltage in the descending walk wins.
    UndervoltPlan plan;
    plan.voltage = v;
    plan.savings_factor = savings_factor(v);
    plan.tolerable_rate = tolerable_rate;
    // Keep only the required number of PCs, preferring the lowest rates.
    std::sort(usable.begin(), usable.end(), [&](unsigned a, unsigned b) {
      return map_.pc_record(v, a).rate() < map_.pc_record(v, b).rate();
    });
    usable.resize(required_pcs);
    std::sort(usable.begin(), usable.end());
    plan.pcs = std::move(usable);
    best = std::move(plan);
  }
  return best;
}

}  // namespace hbmvolt::core
