// Full characterization campaign: everything the paper measured, in one
// call, with all artifacts written to a directory.
//
//   reliability sweep (Algorithm 1)  -> fig4.csv, fig5.csv
//   power sweep (5 utilizations)     -> fig2.csv (incl. Fig 3 columns)
//   trade-off analysis               -> fig6.csv
//   guardband + variation analyses   -> summary.txt (headline table +
//                                       ASCII renderings of every figure)
//
// This is the entry point a lab would actually run against a new board
// revision; examples/full_characterization.cpp drives it.

#pragma once

#include <string>
#include <vector>

#include "board/vcu128.hpp"
#include "chaos/chaos.hpp"
#include "core/fault_characterizer.hpp"
#include "core/guardband.hpp"
#include "core/power_characterizer.hpp"
#include "core/reliability_tester.hpp"
#include "core/report.hpp"
#include "core/tradeoff.hpp"
#include "telemetry/telemetry.hpp"

namespace hbmvolt::core {

struct CampaignConfig {
  std::string output_dir = "artifacts";
  ReliabilityConfig reliability{
      .sweep = {Millivolts{1200}, Millivolts{800}, 10},
      .batch_size = 2,
      .crash_policy = CrashPolicy::kPowerCycleAndContinue};
  PowerSweepConfig power{.sweep = {Millivolts{1200}, Millivolts{810}, 10},
                         .samples = 8,
                         .traffic_beats = 32};
  TradeoffConfig tradeoff{};
  /// Skip writing files (analyses only).
  bool dry_run = false;
  /// Worker threads for the sweep fan-out.  1 = serial reference path
  /// (no pool), 0 = hardware_concurrency.  Results are byte-identical at
  /// any setting — see docs/parallelism.md.
  unsigned threads = 1;
  /// Observability: counters/spans for the whole run, exported as
  /// telemetry.jsonl + trace.json next to the figures.  Never alters the
  /// figures themselves — see docs/observability.md.
  telemetry::TelemetryConfig telemetry{};
  /// Chaos injection (see src/chaos/): transient faults are absorbed by
  /// the retry layer and never alter the figures; persistent faults
  /// degrade the campaign to partial artifacts plus structured errors.
  chaos::ChaosConfig chaos{};
  /// Write <output_dir>/checkpoint.json after every completed sweep step
  /// so a killed campaign resumes where it stopped with byte-identical
  /// final artifacts (ignored under dry_run).  See docs/robustness.md.
  bool checkpoint = true;
  /// Test/drill knob: simulate the process dying after this many
  /// checkpointed steps (0 = never).  The run returns with `halted` set,
  /// artifacts unwritten, and the checkpoint on disk.
  unsigned halt_after_steps = 0;
};

struct CampaignResult {
  GuardbandResult guardband;
  HeadlineNumbers headline;
  faults::FaultMap fault_map;
  PowerCharacterization power;
  std::vector<TradeoffPoint> tradeoff_points;
  std::vector<std::string> files_written;
  /// Human-readable telemetry table (empty when telemetry is disabled);
  /// the examples print it after their own output.
  std::string telemetry_summary;
  /// Structured phase errors (e.g. "reliability: UNAVAILABLE: ...") when a
  /// persistent fault degraded the run; the artifacts written are partial
  /// and the checkpoint is kept for a later retry.  Empty on clean runs.
  std::vector<std::string> errors;
  /// True when halt_after_steps stopped the run; resume by re-running the
  /// same campaign against the same output_dir.
  bool halted = false;
};

/// Collects the headline table from a finished fault map + power sweep
/// (shared by the campaign, the table bench, and tests).
[[nodiscard]] HeadlineNumbers collect_headline_numbers(
    const faults::FaultMap& map, const PowerCharacterization& power,
    Millivolts v_nom);

class Campaign {
 public:
  Campaign(board::Vcu128Board& board, CampaignConfig config);

  Result<CampaignResult> run();

 private:
  Status write_artifacts(CampaignResult& result,
                         telemetry::Telemetry& telemetry) const;
  /// Fingerprint of the physics-relevant configuration (board seed,
  /// geometry, sweep grids, chaos schedule...).  Deliberately excludes
  /// threads, telemetry, output_dir, and the checkpoint/halt knobs: those
  /// never change the figures, so a checkpoint stays resumable across
  /// them.
  [[nodiscard]] std::uint64_t config_fingerprint() const;

  board::Vcu128Board& board_;
  CampaignConfig config_;
};

}  // namespace hbmvolt::core
