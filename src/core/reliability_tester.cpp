#include "core/reliability_tester.hpp"

#include "common/log.hpp"
#include "telemetry/telemetry.hpp"

namespace hbmvolt::core {

ReliabilityTester::ReliabilityTester(board::Vcu128Board& board,
                                     ReliabilityConfig config)
    : board_(board), config_(config) {
  HBMVOLT_REQUIRE(config_.batch_size > 0, "batch size must be positive");
  HBMVOLT_REQUIRE(config_.pattern_ones || config_.pattern_zeros,
                  "at least one data pattern required");
}

Result<faults::FaultMap> ReliabilityTester::run(
    ThreadPool* pool, const ReliabilityResume* resume,
    const StepFn& on_step) {
  return run_impl(-1, pool, resume, on_step);
}

Result<faults::FaultMap> ReliabilityTester::run_pc(unsigned pc_global) {
  HBMVOLT_REQUIRE(pc_global < board_.geometry().total_pcs(),
                  "PC index out of range");
  return run_impl(static_cast<int>(pc_global), nullptr, nullptr, nullptr);
}

Result<faults::FaultMap> ReliabilityTester::run_impl(
    int only_pc_global, ThreadPool* pool, const ReliabilityResume* resume,
    const StepFn& on_step) {
  telemetry::Span run_span("reliability.run", only_pc_global);
  faults::FaultMap map(board_.geometry());
  if (resume != nullptr && resume->base != nullptr) {
    // Replay the completed steps from the checkpoint; the sweep skips
    // their grid points below.
    map.merge(*resume->base);
  }
  const unsigned per_stack = board_.geometry().pcs_per_stack();

  const auto record_telemetry = [](const faults::PcFaultRecord& record) {
    if (auto* tel = telemetry::Telemetry::active()) {
      tel->count("faults.recorded");
      tel->count("faults.stuck_bits_hit",
                 record.flips_1to0 + record.flips_0to1);
    }
  };

  std::vector<axi::TgCommand> commands;
  if (config_.pattern_ones) {
    commands.push_back({axi::MacroOp::kWriteRead, 0, config_.mem_beats,
                        hbm::kBeatAllOnes, true});
  }
  if (config_.pattern_zeros) {
    commands.push_back({axi::MacroOp::kWriteRead, 0, config_.mem_beats,
                        hbm::kBeatAllZeros, true});
  }

  // Whole-device runs drive every port.
  if (only_pc_global < 0) {
    board_.set_active_ports(board_.total_ports());
  }

  VoltageSweep sweep(board_, config_.sweep, config_.crash_policy);
  sweep.set_crash_retries(config_.crash_retries);
  VoltageSweep::StepFn step_hook;
  if (on_step) {
    step_hook = [&](Millivolts v) { return on_step(v, map); };
  }
  const Status status = sweep.run_resumable(
      resume != nullptr ? resume->completed : std::vector<SweepSkip>{},
      [&](Millivolts v) {
        for (unsigned b = 0; b < config_.batch_size; ++b) {
          if (auto* tel = telemetry::Telemetry::active()) {
            tel->count("reliability.batches");
          }
          // Algorithm 1: reset_axi_ports() before each batch.
          for (unsigned s = 0; s < board_.geometry().stacks; ++s) {
            board_.controller(s).reset_ports();
          }
          for (const auto& command : commands) {
            const bool ones_pattern = command.pattern == hbm::kBeatAllOnes;
            const auto make_record = [ones_pattern](
                                         const axi::TgStats& stats) {
              faults::PcFaultRecord record;
              record.bits_tested = stats.bits_checked;
              record.flips_1to0 = stats.flips_1to0;
              record.flips_0to1 = stats.flips_0to1;
              (ones_pattern ? record.bits_tested_ones
                            : record.bits_tested_zeros) = stats.bits_checked;
              return record;
            };
            if (only_pc_global >= 0) {
              const unsigned stack =
                  static_cast<unsigned>(only_pc_global) / per_stack;
              const unsigned local =
                  static_cast<unsigned>(only_pc_global) % per_stack;
              const axi::RunResult result =
                  board_.controller(stack).run_on_port(local, command);
              const auto record = make_record(result.per_port[local]);
              record_telemetry(record);
              map.record(v, static_cast<unsigned>(only_pc_global), record);
            } else {
              const auto results = board_.run_traffic(command, pool);
              for (unsigned s = 0; s < results.size(); ++s) {
                for (unsigned p = 0; p < results[s].per_port.size(); ++p) {
                  const axi::TgStats& stats = results[s].per_port[p];
                  if (stats.bits_checked == 0) continue;
                  const auto record = make_record(stats);
                  record_telemetry(record);
                  map.record(v, s * per_stack + p, record);
                }
              }
            }
          }
        }
      },
      [&](Millivolts v) { map.record_crash(v); }, step_hook);
  if (!status.is_ok()) return status;
  return map;
}

}  // namespace hbmvolt::core
