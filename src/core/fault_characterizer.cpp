#include "core/fault_characterizer.hpp"

namespace hbmvolt::core {

StackVariation analyze_stack_variation(const faults::FaultMap& map) {
  StackVariation out;
  HBMVOLT_REQUIRE(map.geometry().stacks == 2,
                  "stack variation analysis expects two stacks");

  // Decide which stack is better (lower average rate), then express the
  // gap relative to the worse stack.
  double sum0 = 0.0;
  double sum1 = 0.0;
  for (const Millivolts v : map.voltages()) {
    sum0 += map.stack_record(v, 0).rate();
    sum1 += map.stack_record(v, 1).rate();
  }
  out.better_stack = sum0 <= sum1 ? 0 : 1;
  out.worse_stack = 1 - out.better_stack;

  double gap_sum = 0.0;
  for (const Millivolts v : map.voltages()) {
    const double better = map.stack_record(v, out.better_stack).rate();
    const double worse = map.stack_record(v, out.worse_stack).rate();
    // Compare only in the interesting regime: both faulty, neither
    // saturated (at 100% both stacks are identical by definition).
    if (worse <= 0.0 || better <= 0.0 || worse >= 0.999) continue;
    gap_sum += (worse - better) / worse;
    ++out.samples;
  }
  if (out.samples > 0) out.average_gap = gap_sum / out.samples;
  return out;
}

PatternVariation analyze_pattern_variation(const faults::FaultMap& map) {
  PatternVariation out;
  // "Average rate" compares the mean of each direction's rate over the
  // faulty voltage range (the paper's 21% figure); the high-fault-count
  // region dominates, as it dominates any application's exposure.
  double sum_1to0 = 0.0;
  double sum_0to1 = 0.0;
  for (const Millivolts v : map.voltages()) {  // descending
    const auto record = map.device_record(v);
    if (record.flips_1to0 > 0 && !out.first_1to0.has_value()) {
      out.first_1to0 = v;
    }
    if (record.flips_0to1 > 0 && !out.first_0to1.has_value()) {
      out.first_0to1 = v;
    }
    if (record.total_flips() > 0) {
      sum_1to0 += record.rate_1to0();
      sum_0to1 += record.rate_0to1();
      ++out.samples;
    }
  }
  if (sum_1to0 > 0.0) out.average_0to1_excess = sum_0to1 / sum_1to0 - 1.0;
  return out;
}

std::vector<std::optional<Millivolts>> per_pc_onsets(
    const faults::FaultMap& map) {
  std::vector<std::optional<Millivolts>> onsets;
  onsets.reserve(map.geometry().total_pcs());
  for (unsigned pc = 0; pc < map.geometry().total_pcs(); ++pc) {
    onsets.push_back(map.observed_onset(pc));
  }
  return onsets;
}

FaultCharacterizer::FaultCharacterizer(board::Vcu128Board& board)
    : board_(board) {}

Result<faults::FaultMap> FaultCharacterizer::characterize(
    const ReliabilityConfig& config) {
  ReliabilityTester tester(board_, config);
  return tester.run();
}

faults::ClusteringStats FaultCharacterizer::clustering(unsigned pc_global,
                                                       Millivolts v) {
  auto& injector = board_.injector();
  const Millivolts restore = injector.voltage();
  injector.set_voltage(v);
  const auto stats =
      analyze_clustering(board_.geometry(), injector.overlay(pc_global));
  injector.set_voltage(restore);
  return stats;
}

}  // namespace hbmvolt::core
