#include "core/power_characterizer.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "telemetry/telemetry.hpp"

namespace hbmvolt::core {

std::optional<Watts> PowerSeries::power_at(Millivolts v) const {
  for (std::size_t i = 0; i < voltages.size(); ++i) {
    if (voltages[i] == v) return power[i];
  }
  return std::nullopt;
}

double PowerCharacterization::normalized(const PowerSeries& s,
                                         std::size_t i) const {
  return reference.value > 0.0 ? s.power[i].value / reference.value : 0.0;
}

double PowerCharacterization::alpha_clf_normalized(const PowerSeries& s,
                                                   std::size_t i) const {
  const auto at_nom = s.power_at(v_nom);
  if (!at_nom.has_value() || at_nom->value <= 0.0) return 0.0;
  const double clf = s.power[i].value /
                     (s.voltages[i].volts() * s.voltages[i].volts());
  const double clf_nom = at_nom->value / (v_nom.volts() * v_nom.volts());
  return clf / clf_nom;
}

std::optional<double> PowerCharacterization::savings_factor(
    const PowerSeries& s, Millivolts v) const {
  const auto at_nom = s.power_at(v_nom);
  const auto at_v = s.power_at(v);
  if (!at_nom.has_value() || !at_v.has_value() || at_v->value <= 0.0) {
    return std::nullopt;
  }
  return at_nom->value / at_v->value;
}

PowerCharacterizer::PowerCharacterizer(board::Vcu128Board& board,
                                       PowerSweepConfig config)
    : board_(board), config_(config) {
  HBMVOLT_REQUIRE(!config_.port_counts.empty(), "need at least one series");
  HBMVOLT_REQUIRE(config_.samples > 0, "need at least one sample");
}

Result<PowerCharacterization> PowerCharacterizer::run(
    ThreadPool* pool, const PowerResume* resume, const StepFn& on_step) {
  PowerCharacterization out;
  out.v_nom = board_.config().regulator_config.vout_default;

  for (const unsigned ports : config_.port_counts) {
    telemetry::Span series_span("power.series", ports);
    PowerSeries series;
    series.ports = ports;
    board_.set_active_ports(ports);
    series.utilization = board_.utilization();

    // Resume: adopt the checkpointed rows of this series and skip their
    // grid points.  Crash points are never checkpointed (no row was
    // measured), so a resumed sweep re-discovers them deterministically.
    std::vector<SweepSkip> skip;
    if (resume != nullptr) {
      for (const PowerSeries& prior : resume->series) {
        if (prior.ports != ports) continue;
        series.voltages = prior.voltages;
        series.power = prior.power;
        skip.reserve(prior.voltages.size());
        for (const Millivolts v : prior.voltages) {
          skip.push_back({v, /*crashed=*/false});
        }
        break;
      }
    }

    VoltageSweep sweep(board_, config_.sweep, CrashPolicy::kStop);
    // Checkpoint only after steps that measured a row; a step whose power
    // read failed (and was skipped with a warning) re-runs on resume.
    bool row_added = false;
    VoltageSweep::StepFn step_hook;
    if (on_step) {
      step_hook = [&](Millivolts) {
        if (!row_added) return true;
        row_added = false;
        return on_step(series);
      };
    }
    Status run_status = sweep.run_resumable(
        skip,
        [&](Millivolts v) {
          if (ports > 0 && config_.traffic_beats > 0) {
            // Keep live transactions flowing during the measurement window.
            axi::TgCommand command{axi::MacroOp::kWriteRead, 0,
                                   config_.traffic_beats, hbm::kBeatAllOnes,
                                   /*check=*/false};
            board_.run_traffic(command, pool);
          }
          auto power = board_.measure_power_snapshot(config_.samples, pool);
          if (!power.is_ok()) {
            HBMVOLT_LOG_WARN("power read failed at %d mV: %s", v.value,
                             power.status().to_string().c_str());
            return;
          }
          series.voltages.push_back(v);
          series.power.push_back(power.value());
          row_added = true;
        },
        nullptr, step_hook);
    if (!run_status.is_ok()) return run_status;
    out.series.push_back(std::move(series));
  }

  // Reference: nominal-voltage power of the series with the most ports.
  const auto* max_series = &out.series.front();
  for (const auto& s : out.series) {
    if (s.ports > max_series->ports) max_series = &s;
  }
  if (const auto p = max_series->power_at(out.v_nom)) out.reference = *p;

  board_.set_active_ports(0);
  return out;
}

}  // namespace hbmvolt::core
