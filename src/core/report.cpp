#include "core/report.hpp"

#include <cstdio>
#include <sstream>

#include "common/plot.hpp"
#include "common/table.hpp"

namespace hbmvolt::core {
namespace {

std::string format_factor(double x) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", x);
  return buf;
}

std::string format_volts_label(Millivolts v) {
  return format_millivolts(v.value);
}

bool on_display_grid(Millivolts v, int step) {
  return step <= 0 || v.value % step == 0;
}

/// Fig 5 cell: "NF" when no flip, "0%" for sub-1% rates (as in the paper),
/// otherwise a percentage.
std::string fig5_cell(std::uint64_t flips, double rate) {
  if (flips == 0) return "NF";
  const double pct = rate * 100.0;
  if (pct < 1.0) return "0%";
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.0f%%", pct);
  return buf;
}

}  // namespace

std::string render_fig2(const PowerCharacterization& data,
                        int display_step_mv) {
  AsciiTable table;
  std::vector<std::string> header = {"Voltage"};
  for (const auto& s : data.series) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%u ports (%.0f%% util)", s.ports,
                  s.utilization * 100.0);
    header.push_back(buf);
  }
  table.set_header(std::move(header));

  if (!data.series.empty()) {
    const auto& first = data.series.front();
    for (std::size_t i = 0; i < first.voltages.size(); ++i) {
      const Millivolts v = first.voltages[i];
      if (!on_display_grid(v, display_step_mv)) continue;
      std::vector<std::string> row = {format_volts_label(v)};
      for (const auto& s : data.series) {
        row.push_back(i < s.power.size()
                          ? format_double(data.normalized(s, i), 3)
                          : "-");
      }
      table.add_row(std::move(row));
    }
  }
  std::ostringstream os;
  os << "Fig 2: HBM power vs voltage, normalized to " << "1.20V @ max "
     << "utilization\n";
  table.render(os);
  return os.str();
}

std::string render_fig2_chart(const PowerCharacterization& data) {
  ChartOptions options;
  options.width = 60;
  options.height = 14;
  options.x_label = "V";
  options.y_label = "normalized power (vs 1.20V @ max util)";
  AsciiChart chart(options);
  char marker = '0';
  for (const auto& series : data.series) {
    std::vector<AsciiChart::Point> points;
    points.reserve(series.voltages.size());
    for (std::size_t i = 0; i < series.voltages.size(); ++i) {
      points.push_back(
          {series.voltages[i].volts(), data.normalized(series, i)});
    }
    chart.add_series(marker, std::move(points));
    marker = marker == '9' ? 'a' : static_cast<char>(marker + 1);
  }
  return chart.render();
}

std::string render_fig4_chart(const faults::FaultMap& map) {
  ChartOptions options;
  options.width = 60;
  options.height = 14;
  options.y_log = true;
  options.log_floor = 1e-9;
  options.x_label = "V";
  options.y_label = "faulty fraction (log scale; zero omitted)";
  AsciiChart chart(options);
  for (unsigned stack = 0; stack < map.geometry().stacks; ++stack) {
    std::vector<AsciiChart::Point> points;
    for (const Millivolts v : map.voltages()) {
      const auto record = map.stack_record(v, stack);
      if (record.bits_tested == 0) continue;
      points.push_back({v.volts(), record.rate()});
    }
    chart.add_series(static_cast<char>('0' + stack), std::move(points));
  }
  return chart.render();
}

std::string render_fig3(const PowerCharacterization& data,
                        int display_step_mv) {
  AsciiTable table;
  std::vector<std::string> header = {"Voltage"};
  for (const auto& s : data.series) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%u ports", s.ports);
    header.push_back(buf);
  }
  table.set_header(std::move(header));

  if (!data.series.empty()) {
    const auto& first = data.series.front();
    for (std::size_t i = 0; i < first.voltages.size(); ++i) {
      const Millivolts v = first.voltages[i];
      if (!on_display_grid(v, display_step_mv)) continue;
      std::vector<std::string> row = {format_volts_label(v)};
      for (const auto& s : data.series) {
        row.push_back(i < s.power.size()
                          ? format_double(data.alpha_clf_normalized(s, i), 3)
                          : "-");
      }
      table.add_row(std::move(row));
    }
  }
  std::ostringstream os;
  os << "Fig 3: normalized alpha*C_L*f (P/V^2, per-series normalization at "
        "1.20V)\n";
  table.render(os);
  return os.str();
}

std::string render_fig4(const faults::FaultMap& map) {
  AsciiTable table;
  std::vector<std::string> header = {"Voltage"};
  for (unsigned s = 0; s < map.geometry().stacks; ++s) {
    header.push_back("HBM" + std::to_string(s) + " faulty fraction");
  }
  header.push_back("status");
  table.set_header(std::move(header));

  for (const Millivolts v : map.voltages()) {
    std::vector<std::string> row = {format_volts_label(v)};
    const auto* observation = map.at(v);
    for (unsigned s = 0; s < map.geometry().stacks; ++s) {
      const auto record = map.stack_record(v, s);
      row.push_back(record.bits_tested == 0
                        ? "-"
                        : format_double(record.rate(), 3));
    }
    row.push_back(observation != nullptr && observation->crashed ? "CRASH"
                                                                 : "ok");
    table.add_row(std::move(row));
  }
  std::ostringstream os;
  os << "Fig 4: fraction of faulty bits per HBM stack vs voltage\n";
  table.render(os);
  return os.str();
}

std::string render_fig5(const faults::FaultMap& map, int display_step_mv) {
  std::ostringstream os;
  const unsigned total = map.geometry().total_pcs();

  const auto sub_table = [&](const char* title, auto rate_of,
                             auto flips_of) {
    AsciiTable table;
    std::vector<std::string> header = {"Voltage"};
    for (unsigned pc = 0; pc < total; ++pc) {
      header.push_back("PC" + std::to_string(pc));
    }
    table.set_header(std::move(header));
    for (const Millivolts v : map.voltages()) {
      if (!on_display_grid(v, display_step_mv)) continue;
      const auto* observation = map.at(v);
      if (observation == nullptr || observation->crashed) continue;
      bool any = false;
      std::vector<std::string> row = {format_volts_label(v)};
      for (unsigned pc = 0; pc < total; ++pc) {
        const auto record = map.pc_record(v, pc);
        row.push_back(fig5_cell(flips_of(record), rate_of(record)));
        any = any || record.bits_tested > 0;
      }
      if (any) table.add_row(std::move(row));
    }
    os << title << "\n";
    table.render(os);
  };

  os << "Fig 5: per-PC fault rates (NF = no fault; <1% rounds to 0%)\n";
  sub_table("  1->0 flips (all-ones pattern):",
            [](const faults::PcFaultRecord& r) { return r.rate_1to0(); },
            [](const faults::PcFaultRecord& r) { return r.flips_1to0; });
  sub_table("  0->1 flips (all-zeros pattern):",
            [](const faults::PcFaultRecord& r) { return r.rate_0to1(); },
            [](const faults::PcFaultRecord& r) { return r.flips_0to1; });
  return os.str();
}

std::string render_pc_heatmap(const hbm::HbmGeometry& geometry,
                              const faults::FaultOverlay& overlay) {
  const std::uint64_t rows = geometry.rows_per_bank();
  const unsigned banks = geometry.banks_per_pc;
  std::vector<std::uint32_t> counts(rows * banks, 0);
  overlay.for_each([&](std::uint64_t bit, faults::StuckPolarity) {
    const auto loc =
        hbm::decompose_beat(geometry, bit / geometry.bits_per_beat);
    ++counts[loc.row * banks + loc.bank];
  });

  const std::uint64_t bits_per_row_cell =
      static_cast<std::uint64_t>(geometry.beats_per_row) *
      geometry.bits_per_beat;
  const auto glyph = [bits_per_row_cell](std::uint32_t count) -> char {
    if (count == 0) return '.';
    if (count >= bits_per_row_cell / 2) return '#';
    // 1..9 on a coarse log scale.
    int g = 1;
    std::uint32_t threshold = 1;
    while (g < 9 && count > threshold) {
      threshold *= 3;
      ++g;
    }
    return static_cast<char>('0' + g);
  };

  std::ostringstream os;
  os << "rows \\ banks 0.." << banks - 1
     << "   ('.'=clean, 1-9=log density, '#'=saturated)\n";
  for (std::uint64_t row = 0; row < rows; ++row) {
    char label[24];
    std::snprintf(label, sizeof(label), "%4llu ",
                  static_cast<unsigned long long>(row));
    os << label;
    for (unsigned bank = 0; bank < banks; ++bank) {
      os << glyph(counts[row * banks + bank]);
    }
    os << '\n';
  }
  return os.str();
}

std::string render_fig6(const std::vector<TradeoffPoint>& points,
                        const TradeoffConfig& config) {
  AsciiTable table;
  std::vector<std::string> header = {"Voltage", "Savings"};
  for (const double rate : config.tolerable_rates) {
    header.push_back(rate <= 0.0 ? "0 (fault-free)" : format_double(rate, 2));
  }
  table.set_header(std::move(header));

  for (const auto& point : points) {
    std::vector<std::string> row = {format_volts_label(point.voltage),
                                    format_factor(point.savings_factor)};
    if (point.crashed) {
      for (std::size_t i = 0; i < point.usable_pcs.size(); ++i) {
        row.push_back("CRASH");
      }
    } else {
      for (const unsigned count : point.usable_pcs) {
        row.push_back(std::to_string(count));
      }
    }
    table.add_row(std::move(row));
  }
  std::ostringstream os;
  os << "Fig 6: usable PCs per tolerable fault rate vs voltage\n";
  table.render(os);
  return os.str();
}

std::string render_headline(const HeadlineNumbers& numbers) {
  AsciiTable table;
  table.set_header({"Quantity", "Paper", "This run"});
  const auto& guardband = numbers.guardband;

  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f%%",
                guardband.guardband_fraction * 100.0);
  table.add_row({"Voltage guardband (of nominal)", "~19%", buf});
  table.add_row({"V_min (guardband floor)", "0.98V",
                 format_volts_label(guardband.v_min)});
  table.add_row({"First faulty voltage", "0.97V",
                 format_volts_label(guardband.v_first_fault)});
  table.add_row({"V_critical (lowest working)", "0.81V",
                 format_volts_label(guardband.v_critical)});
  table.add_row({"Crash below V_critical", "yes",
                 guardband.crash_observed ? "yes" : "no"});
  table.add_row({"Power savings at V_min", "1.5x",
                 format_factor(numbers.savings_at_vmin)});
  table.add_row({"Power savings at 0.85V", "2.3x",
                 format_factor(numbers.savings_at_850mv)});
  std::snprintf(buf, sizeof(buf), "%.2f", numbers.idle_fraction);
  table.add_row({"Idle / full-load power", "~0.33", buf});
  std::snprintf(buf, sizeof(buf), "%.0f%% (HBM%u better)",
                numbers.stack_variation.average_gap * 100.0,
                numbers.stack_variation.better_stack);
  table.add_row({"Stack fault-rate gap", "13% (HBM0 better)", buf});
  table.add_row(
      {"First 1->0 flip", "0.97V",
       numbers.pattern_variation.first_1to0.has_value()
           ? format_volts_label(*numbers.pattern_variation.first_1to0)
           : "none"});
  table.add_row(
      {"First 0->1 flip", "0.96V",
       numbers.pattern_variation.first_0to1.has_value()
           ? format_volts_label(*numbers.pattern_variation.first_0to1)
           : "none"});
  std::snprintf(buf, sizeof(buf), "+%.0f%%",
                numbers.pattern_variation.average_0to1_excess * 100.0);
  table.add_row({"0->1 rate excess over 1->0", "+21%", buf});
  std::snprintf(buf, sizeof(buf), "-%.0f%%",
                numbers.alpha_drop_at_850mv * 100.0);
  table.add_row({"alpha*C_L*f drop at 0.85V", "-14%", buf});

  std::ostringstream os;
  os << "Headline numbers: paper vs this run\n";
  table.render(os);
  return os.str();
}

std::string to_csv_fig2(const PowerCharacterization& data) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.write_row({"ports", "utilization", "voltage_mv", "power_w",
                 "normalized", "alpha_clf_normalized"});
  for (const auto& s : data.series) {
    for (std::size_t i = 0; i < s.voltages.size(); ++i) {
      csv.write_row({std::to_string(s.ports), format_double(s.utilization, 4),
                     std::to_string(s.voltages[i].value),
                     format_double(s.power[i].value, 6),
                     format_double(data.normalized(s, i), 6),
                     format_double(data.alpha_clf_normalized(s, i), 6)});
    }
  }
  return os.str();
}

std::string to_csv_fig4(const faults::FaultMap& map) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.write_row({"voltage_mv", "stack", "bits_tested", "flips_1to0",
                 "flips_0to1", "rate", "crashed"});
  for (const Millivolts v : map.voltages()) {
    const auto* observation = map.at(v);
    const bool crashed = observation != nullptr && observation->crashed;
    for (unsigned s = 0; s < map.geometry().stacks; ++s) {
      const auto record = map.stack_record(v, s);
      csv.write_row({std::to_string(v.value), std::to_string(s),
                     std::to_string(record.bits_tested),
                     std::to_string(record.flips_1to0),
                     std::to_string(record.flips_0to1),
                     format_double(record.rate(), 8),
                     crashed ? "1" : "0"});
    }
  }
  return os.str();
}

std::string to_csv_fig5(const faults::FaultMap& map) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.write_row({"voltage_mv", "pc", "bits_tested", "flips_1to0",
                 "flips_0to1", "rate_1to0", "rate_0to1"});
  for (const Millivolts v : map.voltages()) {
    for (unsigned pc = 0; pc < map.geometry().total_pcs(); ++pc) {
      const auto record = map.pc_record(v, pc);
      if (record.bits_tested == 0) continue;
      csv.write_row({std::to_string(v.value), std::to_string(pc),
                     std::to_string(record.bits_tested),
                     std::to_string(record.flips_1to0),
                     std::to_string(record.flips_0to1),
                     format_double(record.rate_1to0(), 8),
                     format_double(record.rate_0to1(), 8)});
    }
  }
  return os.str();
}

std::string to_csv_fig6(const std::vector<TradeoffPoint>& points,
                        const TradeoffConfig& config) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.write_row({"voltage_mv", "savings_factor", "tolerable_rate",
                 "usable_pcs", "crashed"});
  for (const auto& point : points) {
    for (std::size_t i = 0; i < config.tolerable_rates.size(); ++i) {
      csv.write_row({std::to_string(point.voltage.value),
                     format_double(point.savings_factor, 4),
                     format_double(config.tolerable_rates[i], 6),
                     std::to_string(point.usable_pcs[i]),
                     point.crashed ? "1" : "0"});
    }
  }
  return os.str();
}

}  // namespace hbmvolt::core
