#include "core/voltage_sweep.hpp"

#include <string>

#include "common/log.hpp"
#include "telemetry/telemetry.hpp"

namespace hbmvolt::core {

std::vector<Millivolts> sweep_grid(const SweepConfig& config) {
  HBMVOLT_REQUIRE(config.step_mv > 0, "sweep step must be positive");
  HBMVOLT_REQUIRE(config.start >= config.stop, "sweep must descend");
  std::vector<Millivolts> grid;
  for (int mv = config.start.value; mv >= config.stop.value;
       mv -= config.step_mv) {
    grid.push_back(Millivolts{mv});
  }
  return grid;
}

VoltageSweep::VoltageSweep(board::Vcu128Board& board, SweepConfig config,
                           CrashPolicy policy)
    : board_(board), config_(config), policy_(policy) {}

Result<bool> crash_watchdog_recover(board::Vcu128Board& board, Millivolts v,
                                    unsigned retries,
                                    const char* counter_prefix) {
  unsigned recoveries = 0;
  while (!board.responding() && recoveries < retries) {
    ++recoveries;
    if (auto* tel = telemetry::Telemetry::active()) {
      tel->count(std::string(counter_prefix) + ".crash_retries");
    }
    HBMVOLT_RETURN_IF_ERROR(board.power_cycle());
    HBMVOLT_RETURN_IF_ERROR(board.set_hbm_voltage(v));
  }
  if (!board.responding()) return false;
  if (recoveries > 0) {
    HBMVOLT_LOG_INFO("spurious crash at %d mV recovered after %u power "
                     "cycle(s)",
                     v.value, recoveries);
    if (auto* tel = telemetry::Telemetry::active()) {
      tel->count(std::string(counter_prefix) +
                 ".spurious_crashes_recovered");
    }
  }
  return true;
}

Status VoltageSweep::run(const std::function<void(Millivolts)>& body,
                         const std::function<void(Millivolts)>& on_crash) {
  return run_resumable({}, body, on_crash, nullptr);
}

Status VoltageSweep::run_resumable(
    const std::vector<SweepSkip>& skip,
    const std::function<void(Millivolts)>& body,
    const std::function<void(Millivolts)>& on_crash, const StepFn& on_step) {
  bool crashed_any = false;
  for (const Millivolts v : sweep_grid(config_)) {
    // Resume: replay a checkpointed point without touching the board.
    // A checkpointed crash replays the policy decision too -- under kStop
    // the original run ended at this point, so the resumed one must.
    const SweepSkip* done = nullptr;
    for (const SweepSkip& s : skip) {
      if (s.v == v) {
        done = &s;
        break;
      }
    }
    if (done != nullptr) {
      if (done->crashed) {
        crashed_any = true;
        if (policy_ == CrashPolicy::kStop) break;
      }
      continue;
    }

    telemetry::Span step_span("sweep.step", v.value);
    HBMVOLT_RETURN_IF_ERROR(board_.set_hbm_voltage(v));
    // Crash watchdog: a genuine undervolt crash is deterministic -- a
    // power cycle and re-applied voltage crashes the stack again.  A
    // spurious (injected) crash recovers, and the retry rounds are
    // figure-neutral (seeded re-scramble, content-independent faults).
    auto recovered = crash_watchdog_recover(board_, v, crash_retries_);
    if (!recovered.is_ok()) return recovered.status();
    if (!recovered.value()) {
      HBMVOLT_LOG_INFO("HBM crashed at %d mV", v.value);
      crashed_any = true;
      if (auto* tel = telemetry::Telemetry::active()) {
        tel->count("sweep.crashes");
      }
      if (on_crash) on_crash(v);
      if (on_step && !on_step(v)) {
        return unavailable("sweep halted by step callback");
      }
      if (policy_ == CrashPolicy::kStop) break;
      HBMVOLT_RETURN_IF_ERROR(board_.power_cycle());
      // The power cycle restored nominal voltage; continue the sweep from
      // the next grid point (which will crash again if below critical --
      // callers normally stop their grids at V_critical).
      continue;
    }
    if (auto* tel = telemetry::Telemetry::active()) {
      const std::uint64_t start = tel->clock().now_ns();
      body(v);
      tel->count("sweep.steps");
      tel->observe("sweep.step_us", (tel->clock().now_ns() - start) / 1000);
    } else {
      body(v);
    }
    if (on_step && !on_step(v)) {
      // Halt *without* the restore below: the caller is simulating the
      // process dying here, and a resumed run must find board-independent
      // state (the checkpoint), not a tidied-up board.
      return unavailable("sweep halted by step callback");
    }
  }
  // Restore a sane state for whatever runs next.
  if (!board_.responding() || crashed_any) {
    HBMVOLT_RETURN_IF_ERROR(board_.power_cycle());
  }
  return board_.set_hbm_voltage(
      board_.config().regulator_config.vout_default);
}

}  // namespace hbmvolt::core
