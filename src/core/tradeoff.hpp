// The three-factor trade-off of paper §III-C / Fig 6: power savings vs
// fault rate vs usable memory capacity.
//
// From a measured fault map, the analyzer reports -- for every voltage
// and every tolerable fault rate -- how many of the 32 independently
// controllable pseudo-channels an application can keep enabled, and the
// power-savings factor that voltage buys.  It can also plan the deepest
// safe operating point for an application's (capacity, tolerable-rate)
// requirement, e.g. the paper's examples: 7 fault-free PCs at 0.95 V for
// 1.6x savings, or half capacity at 0.90 V for ~1.8x.

#pragma once

#include <optional>
#include <vector>

#include "common/units.hpp"
#include "faults/fault_map.hpp"
#include "power/power_model.hpp"

namespace hbmvolt::core {

struct TradeoffConfig {
  /// Tolerable fault-rate thresholds (fractions of tested bits).  Note:
  /// rates are relative to the *simulated* capacity; near the onset the
  /// model reproduces absolute fault counts, so small thresholds
  /// correspond to "a handful of faulty cells" exactly as on silicon.
  std::vector<double> tolerable_rates = {0.0, 1e-5, 1e-4, 1e-3, 1e-2, 0.5};
};

/// Fig 6 data for one voltage: usable-PC count per tolerable rate.
struct TradeoffPoint {
  Millivolts voltage{0};
  double savings_factor = 1.0;
  std::vector<unsigned> usable_pcs;  // parallel to tolerable_rates
  bool crashed = false;
};

/// An operating point chosen for an application.
struct UndervoltPlan {
  Millivolts voltage{0};
  double savings_factor = 1.0;
  double tolerable_rate = 0.0;
  std::vector<unsigned> pcs;  // global PC indices to keep enabled
};

class TradeoffAnalyzer {
 public:
  /// `power_model` refines the savings factor with the stuck-cell alpha
  /// effect; pass nullptr for the pure (v_nom/v)^2 factor.
  TradeoffAnalyzer(const faults::FaultMap& map, Millivolts v_nom,
                   const power::PowerModel* power_model = nullptr);

  /// Full Fig 6 table over every voltage in the map.
  [[nodiscard]] std::vector<TradeoffPoint> analyze(
      const TradeoffConfig& config) const;

  /// Power-savings factor of running at v instead of v_nom (equal
  /// utilization on both sides).
  [[nodiscard]] double savings_factor(Millivolts v) const;

  /// Deepest operating point with at least `required_pcs` PCs at or below
  /// `tolerable_rate`; nullopt if even nominal voltage cannot satisfy it.
  [[nodiscard]] std::optional<UndervoltPlan> plan(
      unsigned required_pcs, double tolerable_rate) const;

 private:
  const faults::FaultMap& map_;
  Millivolts v_nom_;
  const power::PowerModel* power_model_;
};

}  // namespace hbmvolt::core
