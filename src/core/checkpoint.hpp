// Campaign checkpoint: everything a killed-and-restarted campaign needs
// to resume and still produce byte-identical artifacts.
//
// The checkpoint is written to <output_dir>/checkpoint.json after every
// completed sweep step (atomically: tmp file + rename, so a kill mid-write
// leaves the previous checkpoint intact).  It records
//
//  * a config fingerprint -- resume silently starts fresh when the
//    campaign's physics-relevant configuration changed;
//  * per-voltage fault rows (the merged FaultMap so far) and per-series
//    power rows;
//  * the board's power-snapshot sequence number, so resumed measurements
//    draw the exact noise streams the original run would have.
//
// Serialization detail that byte-identity depends on: Watts values are
// stored as 16-digit hex bit patterns of the IEEE-754 double, never as
// decimal text -- a decimal round-trip is one ulp away from a diff in
// fig2.csv.  Counters are exact JSON integers.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"
#include "faults/fault_map.hpp"

namespace hbmvolt::core {

/// One completed reliability sweep step: the per-PC records at `mv`, or a
/// crash marker.
struct CheckpointFaultRow {
  int mv = 0;
  bool crashed = false;
  std::vector<faults::PcFaultRecord> pcs;
};

struct CheckpointPowerRow {
  int mv = 0;
  Watts watts{0.0};
};

/// One (possibly partial) power series at a fixed port count.
struct CheckpointPowerSeries {
  unsigned ports = 0;
  std::vector<CheckpointPowerRow> rows;
};

struct CampaignCheckpoint {
  static constexpr int kVersion = 1;
  /// Fingerprint of the physics-relevant campaign config (see
  /// campaign.cpp); a mismatch means the checkpoint belongs to a
  /// different experiment and resume must start fresh.
  std::uint64_t fingerprint = 0;
  bool reliability_done = false;
  std::vector<CheckpointFaultRow> reliability;
  std::vector<CheckpointPowerSeries> power;
  /// Board power-snapshot sequence number at checkpoint time.
  std::uint64_t power_snapshot_seq = 0;
};

/// Serializes to the checkpoint.json text (stable field order).
[[nodiscard]] std::string checkpoint_to_json(const CampaignCheckpoint& ckpt);

/// Parses checkpoint.json text; kDataLoss on malformed or
/// version-mismatched input.
[[nodiscard]] Result<CampaignCheckpoint> checkpoint_from_json(
    std::string_view text);

/// Atomically writes the checkpoint to `path` (tmp file + rename).
[[nodiscard]] Status save_checkpoint(const CampaignCheckpoint& ckpt,
                                     const std::string& path);

/// Loads a checkpoint; kNotFound when the file does not exist, kDataLoss
/// when it exists but cannot be parsed.
[[nodiscard]] Result<CampaignCheckpoint> load_checkpoint(
    const std::string& path);

}  // namespace hbmvolt::core
