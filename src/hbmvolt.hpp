// Umbrella header: the hbmvolt public API in one include.
//
//   #include "hbmvolt.hpp"
//
//   hbmvolt::board::Vcu128Board board;               // simulated VCU128
//   board.set_hbm_voltage(hbmvolt::Millivolts{900}); // undervolt via PMBus
//   ...
//
// For faster builds, include only the specific headers you use; this
// file exists for examples, experiments, and interactive exploration.

#pragma once

// Foundations.
#include "common/ini.hpp"
#include "common/plot.hpp"
#include "common/prp.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

// Platform substrates.
#include "axi/controller.hpp"
#include "axi/switch.hpp"
#include "axi/traffic_gen.hpp"
#include "dram/bank.hpp"
#include "dram/scheduler.hpp"
#include "dram/timing.hpp"
#include "hbm/geometry.hpp"
#include "hbm/ip_registers.hpp"
#include "hbm/memory_array.hpp"
#include "hbm/stack.hpp"
#include "pmbus/bus.hpp"
#include "pmbus/isl68301.hpp"
#include "pmbus/linear.hpp"
#include "pmbus/pec.hpp"
#include "sensors/ina226.hpp"

// Fault and power models.
#include "faults/fault_map.hpp"
#include "faults/fault_model.hpp"
#include "faults/fault_overlay.hpp"
#include "faults/weak_cells.hpp"
#include "power/droop.hpp"
#include "power/power_model.hpp"
#include "power/rail.hpp"

// The board.
#include "board/config_io.hpp"
#include "board/vcu128.hpp"

// Experiment framework (the paper's methodology).
#include "core/campaign.hpp"
#include "core/fault_characterizer.hpp"
#include "core/governor.hpp"
#include "core/guardband.hpp"
#include "core/power_characterizer.hpp"
#include "core/reliability_tester.hpp"
#include "core/report.hpp"
#include "core/tradeoff.hpp"
#include "core/voltage_sweep.hpp"

// Mitigations and test algorithms.
#include "ecc/ecc_channel.hpp"
#include "ecc/secded.hpp"
#include "memtest/march.hpp"
#include "mitigate/remap.hpp"
#include "mitigate/row_retirement.hpp"

// Resilient serving runtime (scrubbing, error budgets, the ladder).
#include "runtime/error_budget.hpp"
#include "runtime/fleet.hpp"
#include "runtime/reliable_channel.hpp"
