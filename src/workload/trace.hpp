// Access-trace infrastructure: synthetic workload generators, a compact
// text serialization, and a replay engine that measures *application-
// level fault exposure* on an undervolted PC.
//
// Algorithm 1 answers "which cells are stuck?"; an application cares
// about "how often do MY reads hit a stuck cell?".  The two differ by
// the workload's footprint and skew: a streaming scan touches every
// stuck cell once per pass, a hot-set workload may never touch one.
// Replay counts corrupted reads and distinct stuck cells touched, which
// feeds directly into the paper's tolerable-fault-rate axis (Fig 6).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"
#include "hbm/stack.hpp"

namespace hbmvolt::workload {

struct TraceRecord {
  bool write = false;
  std::uint32_t beat = 0;
};

class AccessTrace {
 public:
  void append(bool write, std::uint64_t beat);

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }
  [[nodiscard]] const TraceRecord& operator[](std::size_t i) const {
    return records_[i];
  }
  [[nodiscard]] std::vector<TraceRecord>::const_iterator begin() const {
    return records_.begin();
  }
  [[nodiscard]] std::vector<TraceRecord>::const_iterator end() const {
    return records_.end();
  }

  /// One record per line: "R <beat>" / "W <beat>"; '#' comments allowed.
  [[nodiscard]] std::string to_text() const;
  static Result<AccessTrace> from_text(std::string_view text);

 private:
  std::vector<TraceRecord> records_;
};

// ---- Synthetic workload generators (deterministic per seed) ----

/// Sequential scan: `passes` read sweeps over [0, beats).
[[nodiscard]] AccessTrace make_streaming(std::uint64_t beats,
                                         unsigned passes = 1);

/// Uniform random reads/writes over [0, beats).
[[nodiscard]] AccessTrace make_uniform_random(std::uint64_t beats,
                                              std::uint64_t accesses,
                                              double write_fraction,
                                              std::uint64_t seed);

/// Skewed workload: `hot_fraction` of the beats receive
/// `hot_access_fraction` of the accesses (e.g. 0.1 / 0.9 = 90% of traffic
/// on 10% of the footprint).
[[nodiscard]] AccessTrace make_hot_set(std::uint64_t beats,
                                       std::uint64_t accesses,
                                       double hot_fraction,
                                       double hot_access_fraction,
                                       std::uint64_t seed);

/// Fixed-stride reads (e.g. column walks); stride in beats.
[[nodiscard]] AccessTrace make_strided(std::uint64_t beats,
                                       std::uint64_t accesses,
                                       std::uint64_t stride);

// ---- Replay ----

struct ExposureResult {
  std::uint64_t accesses = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  /// Reads that returned at least one flipped bit.
  std::uint64_t corrupted_reads = 0;
  /// Total flipped bits observed across all reads.
  std::uint64_t flipped_bits = 0;
  /// Distinct stuck cells the workload actually touched.
  std::uint64_t distinct_stuck_cells_touched = 0;
  /// Distinct beats touched (the footprint).
  std::uint64_t footprint_beats = 0;

  [[nodiscard]] double corrupted_read_fraction() const noexcept {
    return reads == 0 ? 0.0
                      : static_cast<double>(corrupted_reads) /
                            static_cast<double>(reads);
  }
};

/// Replays `trace` against one PC of `stack` at its current voltage.
/// Writes store deterministic per-beat data (seeded); reads verify
/// against the last written data for that beat (beats read before any
/// write are skipped for corruption accounting but still counted).
Result<ExposureResult> replay_exposure(hbm::HbmStack& stack,
                                       unsigned pc_local,
                                       const AccessTrace& trace,
                                       std::uint64_t data_seed = 1);

}  // namespace hbmvolt::workload
