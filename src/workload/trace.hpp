// Access-trace infrastructure: synthetic workload generators, a compact
// text serialization, and a replay engine that measures *application-
// level fault exposure* on an undervolted PC.
//
// Algorithm 1 answers "which cells are stuck?"; an application cares
// about "how often do MY reads hit a stuck cell?".  The two differ by
// the workload's footprint and skew: a streaming scan touches every
// stuck cell once per pass, a hot-set workload may never touch one.
// Replay counts corrupted reads and distinct stuck cells touched, which
// feeds directly into the paper's tolerable-fault-rate axis (Fig 6).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"
#include "hbm/stack.hpp"

namespace hbmvolt::workload {

struct TraceRecord {
  bool write = false;
  std::uint32_t beat = 0;
};

class AccessTrace {
 public:
  void append(bool write, std::uint64_t beat);

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }
  [[nodiscard]] const TraceRecord& operator[](std::size_t i) const {
    return records_[i];
  }
  [[nodiscard]] std::vector<TraceRecord>::const_iterator begin() const {
    return records_.begin();
  }
  [[nodiscard]] std::vector<TraceRecord>::const_iterator end() const {
    return records_.end();
  }

  /// One record per line: "R <beat>" / "W <beat>"; '#' comments allowed.
  [[nodiscard]] std::string to_text() const;
  /// Strict parser: rejects overlong lines (> kMaxLineLength chars),
  /// duplicate direction tokens or any trailing garbage after the beat,
  /// and beats that do not fit in 32 bits -- each with a Status naming
  /// the offending line, never by silently truncating the record.
  static Result<AccessTrace> from_text(std::string_view text);

  /// Longest line from_text accepts (a well-formed record needs at most
  /// 12 characters; anything longer is a malformed or binary input).
  static constexpr std::size_t kMaxLineLength = 256;

 private:
  std::vector<TraceRecord> records_;
};

// ---- Synthetic workload generators (deterministic per seed) ----

/// Sequential scan: `passes` read sweeps over [0, beats).
[[nodiscard]] AccessTrace make_streaming(std::uint64_t beats,
                                         unsigned passes = 1);

/// Uniform random reads/writes over [0, beats).
[[nodiscard]] AccessTrace make_uniform_random(std::uint64_t beats,
                                              std::uint64_t accesses,
                                              double write_fraction,
                                              std::uint64_t seed);

/// Skewed workload: `hot_fraction` of the beats receive
/// `hot_access_fraction` of the accesses (e.g. 0.1 / 0.9 = 90% of traffic
/// on 10% of the footprint).
[[nodiscard]] AccessTrace make_hot_set(std::uint64_t beats,
                                       std::uint64_t accesses,
                                       double hot_fraction,
                                       double hot_access_fraction,
                                       std::uint64_t seed);

/// Fixed-stride reads (e.g. column walks); stride in beats.
[[nodiscard]] AccessTrace make_strided(std::uint64_t beats,
                                       std::uint64_t accesses,
                                       std::uint64_t stride);

/// Zipfian-skewed accesses over [0, beats): beat ranks are drawn with
/// probability proportional to 1 / rank^theta (theta ~0.99 is the classic
/// YCSB skew), then mapped through a seeded rank->beat shuffle so the hot
/// beats are scattered across the footprint.  First touch of a beat
/// writes; revisits follow `write_fraction`.
[[nodiscard]] AccessTrace make_zipfian(std::uint64_t beats,
                                       std::uint64_t accesses, double theta,
                                       double write_fraction,
                                       std::uint64_t seed);

/// Pointer-chase workload: a seeded random permutation cycle over the
/// footprint is written once (the "pointers"), then walked read-by-read
/// -- every access depends on the previous one, the shape that defeats
/// both caching and range coalescing.
[[nodiscard]] AccessTrace make_pointer_chase(std::uint64_t beats,
                                             std::uint64_t accesses,
                                             std::uint64_t seed);

// ---- Replay ----

struct ExposureResult {
  std::uint64_t accesses = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  /// Reads that returned at least one flipped bit.
  std::uint64_t corrupted_reads = 0;
  /// Total flipped bits observed across all reads.
  std::uint64_t flipped_bits = 0;
  /// Distinct stuck cells the workload actually touched.
  std::uint64_t distinct_stuck_cells_touched = 0;
  /// Distinct beats touched (the footprint).
  std::uint64_t footprint_beats = 0;

  [[nodiscard]] double corrupted_read_fraction() const noexcept {
    return reads == 0 ? 0.0
                      : static_cast<double>(corrupted_reads) /
                            static_cast<double>(reads);
  }
};

/// Replays `trace` against one PC of `stack` at its current voltage.
/// Writes store deterministic per-beat data (seeded); reads verify
/// against the last written data for that beat (beats read before any
/// write are skipped for corruption accounting but still counted).
Result<ExposureResult> replay_exposure(hbm::HbmStack& stack,
                                       unsigned pc_local,
                                       const AccessTrace& trace,
                                       std::uint64_t data_seed = 1);

}  // namespace hbmvolt::workload
