#include "workload/trace.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/rng.hpp"

namespace hbmvolt::workload {

void AccessTrace::append(bool write, std::uint64_t beat) {
  HBMVOLT_REQUIRE(beat <= 0xFFFFFFFFull, "trace beat exceeds 32 bits");
  records_.push_back({write, static_cast<std::uint32_t>(beat)});
}

std::string AccessTrace::to_text() const {
  std::string out;
  out.reserve(records_.size() * 12);
  for (const auto& record : records_) {
    out += record.write ? 'W' : 'R';
    out += ' ';
    out += std::to_string(record.beat);
    out += '\n';
  }
  return out;
}

Result<AccessTrace> AccessTrace::from_text(std::string_view text) {
  AccessTrace trace;
  std::size_t line_number = 0;
  std::size_t position = 0;
  while (position < text.size()) {
    std::size_t end = text.find('\n', position);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(position, end - position);
    position = end + 1;
    ++line_number;

    if (line.size() > kMaxLineLength) {
      return invalid_argument(
          "trace line " + std::to_string(line_number) + ": overlong line (" +
          std::to_string(line.size()) + " chars, max " +
          std::to_string(kMaxLineLength) + ")");
    }

    // Trim and skip blanks/comments.
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) {
      line.remove_prefix(1);
    }
    while (!line.empty() &&
           (line.back() == '\r' || line.back() == ' ' || line.back() == '\t')) {
      line.remove_suffix(1);
    }
    if (line.empty() || line.front() == '#') continue;

    if (line.size() < 3 || (line[0] != 'R' && line[0] != 'W') ||
        line[1] != ' ') {
      return invalid_argument("trace line " + std::to_string(line_number) +
                              ": expected 'R <beat>' or 'W <beat>'");
    }
    std::uint64_t beat = 0;
    std::size_t i = 2;
    while (i < line.size() && line[i] == ' ') ++i;  // "R  5" is fine
    const std::size_t digits_start = i;
    for (; i < line.size(); ++i) {
      const char c = line[i];
      if (c < '0' || c > '9') break;
      beat = beat * 10 + static_cast<std::uint64_t>(c - '0');
      if (beat > 0xFFFFFFFFull) {
        return invalid_argument("trace line " + std::to_string(line_number) +
                                ": beat does not fit in 32 bits");
      }
    }
    if (i == digits_start) {
      return invalid_argument("trace line " + std::to_string(line_number) +
                              ": bad beat number");
    }
    // Anything after the beat is a malformed record, not padding: the old
    // parser silently dropped it, turning "R 5 W 6" into "R 5".
    if (i < line.size()) {
      const bool duplicate_direction =
          line[i] == ' ' &&
          line.find_first_not_of(' ', i) != std::string_view::npos &&
          (line[line.find_first_not_of(' ', i)] == 'R' ||
           line[line.find_first_not_of(' ', i)] == 'W');
      return invalid_argument(
          "trace line " + std::to_string(line_number) +
          (duplicate_direction ? ": duplicate direction token after beat"
                               : ": trailing garbage after beat"));
    }
    trace.append(line[0] == 'W', beat);
  }
  return trace;
}

AccessTrace make_streaming(std::uint64_t beats, unsigned passes) {
  AccessTrace trace;
  for (unsigned pass = 0; pass < passes; ++pass) {
    for (std::uint64_t beat = 0; beat < beats; ++beat) {
      trace.append(pass == 0, beat);  // first pass writes, rest read
    }
  }
  return trace;
}

AccessTrace make_uniform_random(std::uint64_t beats, std::uint64_t accesses,
                                double write_fraction, std::uint64_t seed) {
  AccessTrace trace;
  Xoshiro256 rng(seed);
  for (std::uint64_t i = 0; i < accesses; ++i) {
    trace.append(rng.bernoulli(write_fraction), rng.bounded(beats));
  }
  return trace;
}

AccessTrace make_hot_set(std::uint64_t beats, std::uint64_t accesses,
                         double hot_fraction, double hot_access_fraction,
                         std::uint64_t seed) {
  HBMVOLT_REQUIRE(hot_fraction > 0.0 && hot_fraction <= 1.0,
                  "hot fraction must be in (0,1]");
  AccessTrace trace;
  Xoshiro256 rng(seed);
  const auto hot_beats = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(hot_fraction *
                                    static_cast<double>(beats)));
  // The hot set starts at a seeded offset, wrapping around.
  const std::uint64_t hot_base = rng.bounded(beats);
  for (std::uint64_t i = 0; i < accesses; ++i) {
    std::uint64_t beat;
    if (rng.bernoulli(hot_access_fraction)) {
      beat = (hot_base + rng.bounded(hot_beats)) % beats;
    } else {
      beat = rng.bounded(beats);
    }
    trace.append(rng.bernoulli(0.3), beat);
  }
  return trace;
}

AccessTrace make_strided(std::uint64_t beats, std::uint64_t accesses,
                         std::uint64_t stride) {
  HBMVOLT_REQUIRE(stride > 0, "stride must be positive");
  AccessTrace trace;
  // First touch of each position writes (initialization), revisits read.
  std::vector<bool> seen(beats, false);
  std::uint64_t beat = 0;
  for (std::uint64_t i = 0; i < accesses; ++i) {
    trace.append(!seen[beat], beat);
    seen[beat] = true;
    beat = (beat + stride) % beats;
  }
  return trace;
}

AccessTrace make_zipfian(std::uint64_t beats, std::uint64_t accesses,
                         double theta, double write_fraction,
                         std::uint64_t seed) {
  HBMVOLT_REQUIRE(beats > 0, "zipfian footprint must be non-empty");
  HBMVOLT_REQUIRE(theta >= 0.0, "zipfian exponent must be non-negative");
  AccessTrace trace;
  Xoshiro256 rng(seed);

  // Inverse-CDF sampling over the rank distribution: cumulative 1/r^theta
  // weights, binary-searched per access.  Footprints here are PC-sized
  // (thousands of beats), so the O(beats) table is cheap and exact.
  std::vector<double> cumulative(beats);
  double total = 0.0;
  for (std::uint64_t r = 0; r < beats; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), theta);
    cumulative[r] = total;
  }

  // Seeded rank -> beat shuffle so rank 0 is not always beat 0.
  std::vector<std::uint32_t> rank_to_beat(beats);
  for (std::uint64_t b = 0; b < beats; ++b) {
    rank_to_beat[b] = static_cast<std::uint32_t>(b);
  }
  for (std::uint64_t b = beats; b > 1; --b) {
    std::swap(rank_to_beat[b - 1], rank_to_beat[rng.bounded(b)]);
  }

  std::vector<bool> touched(beats, false);
  for (std::uint64_t i = 0; i < accesses; ++i) {
    const double u = rng.uniform() * total;
    const auto it =
        std::lower_bound(cumulative.begin(), cumulative.end(), u);
    const std::uint64_t rank =
        static_cast<std::uint64_t>(it - cumulative.begin());
    const std::uint32_t beat = rank_to_beat[rank < beats ? rank : beats - 1];
    const bool write = !touched[beat] || rng.bernoulli(write_fraction);
    touched[beat] = true;
    trace.append(write, beat);
  }
  return trace;
}

AccessTrace make_pointer_chase(std::uint64_t beats, std::uint64_t accesses,
                               std::uint64_t seed) {
  HBMVOLT_REQUIRE(beats > 0, "pointer-chase footprint must be non-empty");
  AccessTrace trace;
  Xoshiro256 rng(seed);

  // One random cycle over the footprint (Sattolo's algorithm): next[b] is
  // the beat the chase visits after b, and every beat is on the cycle.
  std::vector<std::uint32_t> next(beats);
  for (std::uint64_t b = 0; b < beats; ++b) {
    next[b] = static_cast<std::uint32_t>(b);
  }
  for (std::uint64_t b = beats - 1; b > 0; --b) {
    std::swap(next[b], next[rng.bounded(b)]);
  }

  // Write pass stores the "pointers", then the chase reads them back in
  // dependence order.
  std::uint64_t emitted = 0;
  for (std::uint64_t b = 0; b < beats && emitted < accesses; ++b, ++emitted) {
    trace.append(true, b);
  }
  std::uint32_t cursor = 0;
  for (; emitted < accesses; ++emitted) {
    trace.append(false, cursor);
    cursor = next[cursor];
  }
  return trace;
}

Result<ExposureResult> replay_exposure(hbm::HbmStack& stack,
                                       unsigned pc_local,
                                       const AccessTrace& trace,
                                       std::uint64_t data_seed) {
  const std::uint64_t beats = stack.geometry().beats_per_pc();
  ExposureResult result;

  // Written-data journal (beat -> generation), so reads verify against
  // what the workload last stored there.
  std::unordered_map<std::uint32_t, std::uint64_t> generation;
  std::unordered_set<std::uint64_t> stuck_touched;
  std::unordered_set<std::uint32_t> footprint;

  const auto data_for = [&](std::uint32_t beat, std::uint64_t gen) {
    hbm::Beat data;
    for (unsigned w = 0; w < 4; ++w) {
      data[w] = splitmix64(data_seed ^ (static_cast<std::uint64_t>(beat) *
                                            4 + w) ^ (gen << 40));
    }
    return data;
  };

  for (const auto& record : trace) {
    if (record.beat >= beats) {
      return out_of_range("trace beat beyond PC capacity");
    }
    footprint.insert(record.beat);
    ++result.accesses;
    if (record.write) {
      const std::uint64_t gen = ++generation[record.beat];
      HBMVOLT_RETURN_IF_ERROR(
          stack.write_beat(pc_local, record.beat, data_for(record.beat, gen)));
      ++result.writes;
    } else {
      auto data = stack.read_beat(pc_local, record.beat);
      if (!data.is_ok()) return data.status();
      ++result.reads;
      const auto it = generation.find(record.beat);
      if (it == generation.end()) continue;  // never written: skip check
      const hbm::Beat expected = data_for(record.beat, it->second);
      bool corrupted = false;
      for (unsigned w = 0; w < 4; ++w) {
        std::uint64_t diff = data.value()[w] ^ expected[w];
        if (diff == 0) continue;
        corrupted = true;
        result.flipped_bits +=
            static_cast<unsigned>(__builtin_popcountll(diff));
        while (diff != 0) {
          const int bit = __builtin_ctzll(diff);
          diff &= diff - 1;
          stuck_touched.insert(static_cast<std::uint64_t>(record.beat) * 256 +
                               w * 64 + static_cast<unsigned>(bit));
        }
      }
      result.corrupted_reads += corrupted ? 1 : 0;
    }
  }
  result.distinct_stuck_cells_touched = stuck_touched.size();
  result.footprint_beats = footprint.size();
  return result;
}

}  // namespace hbmvolt::workload
