#include "chaos/chaos.hpp"

#include "common/log.hpp"
#include "telemetry/telemetry.hpp"

namespace hbmvolt::chaos {

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kPmbusNack:
      return "pmbus_nack";
    case FaultKind::kWireCorrupt:
      return "wire_corrupt";
    case FaultKind::kInaDropout:
      return "ina_dropout";
    case FaultKind::kAxiFail:
      return "axi_fail";
    case FaultKind::kSpuriousCrash:
      return "spurious_crash";
    case FaultKind::kWeakCellBurst:
      return "weak_cell_burst";
    case FaultKind::kBitRot:
      return "bit_rot";
    case FaultKind::kPcKill:
      return "pc_kill";
    case FaultKind::kTenantSurge:
      return "tenant_surge";
  }
  return "unknown";
}

double ChaosSchedule::rate(FaultKind kind) const noexcept {
  switch (kind) {
    case FaultKind::kPmbusNack:
      return config_.pmbus_nack_rate;
    case FaultKind::kWireCorrupt:
      return config_.wire_corrupt_rate;
    case FaultKind::kInaDropout:
      return config_.ina_dropout_rate;
    case FaultKind::kAxiFail:
      return config_.axi_fail_rate;
    case FaultKind::kSpuriousCrash:
      return config_.spurious_crash_rate;
    case FaultKind::kWeakCellBurst:
      return config_.weak_burst_rate;
    case FaultKind::kBitRot:
      return config_.bit_rot_rate;
    case FaultKind::kPcKill:
      return config_.pc_kill_rate;
    case FaultKind::kTenantSurge:
      return config_.tenant_surge_rate;
  }
  return 0.0;
}

namespace {

std::uint64_t schedule_bits(std::uint64_t seed, FaultKind kind,
                            std::uint64_t salt, std::uint64_t a,
                            std::uint64_t b, std::uint64_t c) noexcept {
  const std::uint64_t kind_seed =
      mix_seed(seed, salt + static_cast<std::uint64_t>(kind));
  return splitmix64(stream_seed(kind_seed, a, b, c));
}

}  // namespace

bool ChaosSchedule::fires(FaultKind kind, std::uint64_t a, std::uint64_t b,
                          std::uint64_t c) const noexcept {
  const double r = rate(kind);
  if (r <= 0.0) return false;
  const std::uint64_t u =
      schedule_bits(config_.seed, kind, 0xF12E5, a, b, c);
  return (static_cast<double>(u >> 11) * 0x1.0p-53) < r;
}

std::uint64_t ChaosSchedule::draw(FaultKind kind, std::uint64_t a,
                                  std::uint64_t b,
                                  std::uint64_t c) const noexcept {
  return schedule_bits(config_.seed, kind, 0xD2A35, a, b, c);
}

bool ChaosInjector::Site::spin(const ChaosSchedule& schedule, FaultKind kind,
                               std::uint64_t key, unsigned cooldown_events) {
  const std::uint64_t event = events++;
  if (cooldown > 0) {
    --cooldown;
    return false;
  }
  if (!schedule.fires(kind, key, event, 0)) return false;
  cooldown = cooldown_events;
  return true;
}

ChaosInjector::ChaosInjector(board::Vcu128Board& board, ChaosConfig config)
    : board_(board),
      schedule_(config),
      alive_(std::make_shared<std::atomic<bool>>(true)) {
  const ChaosConfig& cfg = schedule_.config();
  if (cfg.pmbus_nack_rate > 0.0 || cfg.ina_dropout_rate > 0.0 ||
      cfg.regulator_dies_after >= 0 || cfg.monitor_dies_after >= 0) {
    board_.bus().set_transaction_hook(
        [this](std::uint8_t address, std::uint8_t command) {
          return on_transaction(address, command);
        });
  }
  if (cfg.wire_corrupt_rate > 0.0) {
    board_.bus().set_wire_corruptor(
        [this](std::vector<std::uint8_t>& frame) { on_frame(frame); });
  }
  if (cfg.axi_fail_rate > 0.0) {
    board_.set_axi_fault_hook([this](std::uint64_t run, unsigned stack,
                                     unsigned port, unsigned attempt) {
      return on_axi(run, stack, port, attempt);
    });
  }
  if (cfg.spurious_crash_rate > 0.0) {
    // The listener list is append-only, so this callback outlives the
    // injector -- it keeps the alive flag (by value) and bails once the
    // injector is gone.
    std::shared_ptr<std::atomic<bool>> alive = alive_;
    board_.regulator_model().add_vout_listener([this, alive](Millivolts v) {
      if (!alive->load(std::memory_order_acquire)) return;
      on_vout(v);
    });
  }
}

ChaosInjector::~ChaosInjector() {
  alive_->store(false, std::memory_order_release);
  board_.bus().set_transaction_hook(nullptr);
  board_.bus().set_wire_corruptor(nullptr);
  board_.set_axi_fault_hook(nullptr);
}

std::uint64_t ChaosInjector::total_injected() const noexcept {
  std::uint64_t total = 0;
  for (const auto& count : injected_) {
    total += count.load(std::memory_order_relaxed);
  }
  return total;
}

void ChaosInjector::note(FaultKind kind) {
  injected_[static_cast<unsigned>(kind)].fetch_add(1,
                                                   std::memory_order_relaxed);
  if (auto* tel = telemetry::Telemetry::active()) {
    switch (kind) {
      case FaultKind::kPmbusNack:
        tel->count("chaos.injected.pmbus_nack");
        break;
      case FaultKind::kWireCorrupt:
        tel->count("chaos.injected.wire_corrupt");
        break;
      case FaultKind::kInaDropout:
        tel->count("chaos.injected.ina_dropout");
        break;
      case FaultKind::kAxiFail:
        tel->count("chaos.injected.axi_fail");
        break;
      case FaultKind::kSpuriousCrash:
        tel->count("chaos.injected.spurious_crash");
        break;
      case FaultKind::kWeakCellBurst:
        tel->count("chaos.injected.weak_cell_burst");
        break;
      case FaultKind::kBitRot:
        tel->count("chaos.injected.bit_rot");
        break;
      case FaultKind::kPcKill:
        tel->count("chaos.injected.pc_kill");
        break;
      case FaultKind::kTenantSurge:
        tel->count("chaos.injected.tenant_surge");
        break;
    }
    tel->count("chaos.injected.total");
  }
}

Status ChaosInjector::on_transaction(std::uint8_t address,
                                     std::uint8_t command) {
  (void)command;
  const ChaosConfig& cfg = schedule_.config();
  const std::uint8_t regulator = board_.config().regulator_config.address;
  const std::uint8_t monitor = board_.config().monitor_config.address;

  // Persistent deaths first: once the transaction budget is spent the
  // component never answers again and no transient logic runs.
  if (address == regulator) {
    ++regulator_txns_;
    if (cfg.regulator_dies_after >= 0 &&
        regulator_txns_ >
            static_cast<std::uint64_t>(cfg.regulator_dies_after)) {
      note(FaultKind::kPmbusNack);
      return not_found("chaos: regulator permanently NACKs");
    }
  } else if (address == monitor) {
    ++monitor_txns_;
    if (cfg.monitor_dies_after >= 0 &&
        monitor_txns_ > static_cast<std::uint64_t>(cfg.monitor_dies_after)) {
      note(FaultKind::kInaDropout);
      return unavailable("chaos: power monitor permanently unresponsive");
    }
  }

  if (cfg.pmbus_nack_rate > 0.0 &&
      nack_sites_[address].spin(schedule_, FaultKind::kPmbusNack, address,
                                cfg.cooldown)) {
    note(FaultKind::kPmbusNack);
    return not_found("chaos: injected PMBus NACK");
  }
  if (address == monitor && cfg.ina_dropout_rate > 0.0 &&
      dropout_site_.spin(schedule_, FaultKind::kInaDropout, address,
                         cfg.cooldown)) {
    note(FaultKind::kInaDropout);
    return unavailable("chaos: injected power monitor dropout");
  }
  return Status::ok();
}

void ChaosInjector::on_frame(std::vector<std::uint8_t>& frame) {
  if (frame.empty()) return;
  // Only corrupt frames PEC will audit: without PEC a flipped bit would
  // be silently *delivered*, which is data corruption, not a transient
  // fault the retry layer can absorb.
  if (!board_.bus().pec_enabled()) return;
  if (!wire_site_.spin(schedule_, FaultKind::kWireCorrupt, 0,
                       schedule_.config().cooldown)) {
    return;
  }
  note(FaultKind::kWireCorrupt);
  // Single-bit flip at a drawn position: CRC-8 detects every single-bit
  // error, so the transaction always fails with kDataLoss and retries.
  const std::uint64_t u = schedule_.draw(FaultKind::kWireCorrupt,
                                         wire_site_.events, frame.size(), 0);
  const std::size_t byte = static_cast<std::size_t>(u % frame.size());
  const unsigned bit = static_cast<unsigned>((u >> 32) % 8);
  frame[byte] ^= static_cast<std::uint8_t>(1u << bit);
}

Status ChaosInjector::on_axi(std::uint64_t run, unsigned stack, unsigned port,
                             unsigned attempt) {
  // Pure decision (runs concurrently from sweep workers): only the first
  // attempt of a dispatch can fail, so one retry always recovers and the
  // retried attempt replays against untouched TG state.
  if (attempt != 0) return Status::ok();
  const std::uint64_t key =
      (static_cast<std::uint64_t>(stack) << 32) | port;
  if (!schedule_.fires(FaultKind::kAxiFail, run, key, 0)) {
    return Status::ok();
  }
  note(FaultKind::kAxiFail);
  return unavailable("chaos: injected AXI dispatch failure");
}

bool ChaosInjector::storm_tick(unsigned pc_global, std::uint64_t tick) {
  // Pure fire decisions from (seed, pc, tick) -- no Site state, so
  // distinct PCs can tick concurrently (mutations below are PC-local).
  bool fired = false;
  const hbm::HbmGeometry& geometry = board_.geometry();
  if (schedule_.fires(FaultKind::kWeakCellBurst, pc_global, tick, 0)) {
    note(FaultKind::kWeakCellBurst);
    const std::uint64_t cells = schedule_.config().burst_cells;
    board_.injector().add_burst(pc_global, cells, cells);
    HBMVOLT_LOG_INFO("chaos: weak-cell burst of %llu cells/polarity on PC %u",
                     static_cast<unsigned long long>(cells), pc_global);
    fired = true;
  }
  if (schedule_.fires(FaultKind::kBitRot, pc_global, tick, 1)) {
    note(FaultKind::kBitRot);
    const std::uint64_t u =
        schedule_.draw(FaultKind::kBitRot, pc_global, tick, 1);
    const std::uint64_t bit = u % geometry.bits_per_pc;
    const hbm::PcId pc = hbm::PcId::from_global(geometry, pc_global);
    hbm::MemoryArray& array = board_.stack(pc.stack).array(pc.index);
    array.write_bit(bit, !array.read_bit(bit));
    fired = true;
  }
  if (schedule_.fires(FaultKind::kPcKill, pc_global, tick, 2)) {
    const hbm::PcId pc = hbm::PcId::from_global(geometry, pc_global);
    hbm::HbmStack& stack = board_.stack(pc.stack);
    if (!stack.pc_killed(pc.index)) {
      note(FaultKind::kPcKill);
      HBMVOLT_LOG_INFO("chaos: pseudo-channel %u killed outright", pc_global);
      stack.kill_pc(pc.index);
      fired = true;
    }
  }
  return fired;
}

std::uint64_t ChaosInjector::surge_tick(std::uint64_t tenant,
                                        std::uint64_t epoch) {
  if (!schedule_.fires(FaultKind::kTenantSurge, tenant, epoch, 0)) return 1;
  note(FaultKind::kTenantSurge);
  const std::uint64_t multiplier = schedule_.config().surge_multiplier;
  return multiplier > 1 ? multiplier : 1;
}

void ChaosInjector::on_vout(Millivolts v) {
  // Power-down transitions are not crash opportunities: the stacks are
  // off, and counting them would let a power cycle burn the cooldown the
  // watchdog relies on.
  if (v.value <= 0) return;
  if (!crash_site_.spin(schedule_, FaultKind::kSpuriousCrash, 0,
                        schedule_.config().cooldown)) {
    return;
  }
  note(FaultKind::kSpuriousCrash);
  const std::uint64_t u =
      schedule_.draw(FaultKind::kSpuriousCrash, crash_site_.events, 0, 0);
  const unsigned stacks = board_.geometry().stacks;
  const unsigned victim = static_cast<unsigned>(u % stacks);
  HBMVOLT_LOG_INFO("chaos: spurious crash of stack %u at %d mV", victim,
                   v.value);
  board_.stack(victim).force_crash();
}

}  // namespace hbmvolt::chaos
